#!/bin/sh
# check_coverage.sh — the coverage gate run by CI: every package listed
# in scripts/coverage_thresholds.txt must meet its committed statement-
# coverage floor. A test deletion (or a swath of new untested code) in a
# gated package fails this gate.
# Run from the repository root: ./scripts/check_coverage.sh
set -eu

thresholds=scripts/coverage_thresholds.txt
[ -f "$thresholds" ] || {
    echo "check_coverage: $thresholds not found (run from the repository root)" >&2
    exit 1
}

fail=0
while read -r pkg min; do
    case "$pkg" in ''|'#'*) continue ;; esac
    out=$(go test -cover "$pkg") || {
        echo "check_coverage: tests failed in $pkg" >&2
        fail=1
        continue
    }
    pct=$(echo "$out" | sed -n 's/.*coverage: \([0-9.]*\)% of statements.*/\1/p')
    if [ -z "$pct" ]; then
        echo "check_coverage: no coverage figure in output for $pkg: $out" >&2
        fail=1
        continue
    fi
    if awk -v p="$pct" -v m="$min" 'BEGIN { exit !(p < m) }'; then
        echo "check_coverage: $pkg at ${pct}% — below the ${min}% floor" >&2
        fail=1
    else
        echo "check_coverage: $pkg ${pct}% >= ${min}% ok"
    fi
done < "$thresholds"

exit "$fail"
