#!/bin/sh
# check_metrics.sh — the observability smoke gate run by CI: build the
# real node binary, start it with -metrics-addr, drive a put and a get
# through the one-shot client, then scrape GET /metrics and
# GET /debug/status and validate them (scripts/promcheck). A malformed
# exposition, a missing metric family, a node that saw no traffic, or a
# broken status document all fail this gate.
# Run from the repository root: ./scripts/check_metrics.sh
set -eu

out=$(mktemp -d)
trap 'rm -rf "$out"' EXIT

go build -o "$out/dcdht-node" ./cmd/dcdht-node
go run ./scripts/promcheck -node "$out/dcdht-node"

echo "metrics check clean: live node scrape parses with all core families"
