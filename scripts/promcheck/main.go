// Command promcheck is the metrics smoke gate run by CI
// (scripts/check_metrics.sh): it starts a real dcdht-node with
// -metrics-addr, drives a put and a get through the one-shot CLI
// client, scrapes GET /metrics and GET /debug/status, and fails unless
//
//   - the exposition parses as strict Prometheus text format 0.0.4
//     (every series belongs to a declared # TYPE family, histogram
//     families expose cumulative le buckets plus _sum/_count, no
//     duplicate series);
//   - the core families from every instrumented layer are present:
//     operations, KTS, chord routing, repair, the WAL-backed store and
//     the TCP transport;
//   - the counters prove the ops actually flowed through the node —
//     connections were accepted, WAL records were appended, and a
//     timestamp grant (or its handoff arrival) reached this peer;
//   - /debug/status returns the documented JSON with the node's own
//     address, a durable-recovery summary, and the replicas and
//     counters the departed client handed off.
//
// Usage: promcheck -node path/to/dcdht-node [-keep-data dir]
// Exit status 0 when the node passes; 1 with diagnostics otherwise.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"time"
)

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "promcheck: "+format+"\n", args...)
	os.Exit(1)
}

// freePort reserves an ephemeral localhost port and releases it for the
// node to claim. The tiny reuse race is acceptable in a smoke gate.
func freePort() int {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fail("reserving port: %v", err)
	}
	defer l.Close()
	return l.Addr().(*net.TCPAddr).Port
}

func main() {
	nodeBin := flag.String("node", "", "path to the dcdht-node binary (required)")
	keepData := flag.String("keep-data", "", "use this data directory instead of a throwaway one")
	flag.Parse()
	if *nodeBin == "" {
		fail("-node is required")
	}

	dataDir := *keepData
	if dataDir == "" {
		d, err := os.MkdirTemp("", "promcheck-*")
		if err != nil {
			fail("temp dir: %v", err)
		}
		defer os.RemoveAll(d)
		dataDir = filepath.Join(d, "data")
	}

	listen := fmt.Sprintf("127.0.0.1:%d", freePort())
	metrics := fmt.Sprintf("127.0.0.1:%d", freePort())

	serve := exec.Command(*nodeBin, "serve",
		"-listen", listen,
		"-metrics-addr", metrics,
		"-data-dir", dataDir,
		"-replicas", "3",
		"-repair", "2s", "-read-repair",
		"-log-format", "json")
	serve.Stdout = os.Stderr
	serve.Stderr = os.Stderr
	if err := serve.Start(); err != nil {
		fail("starting node: %v", err)
	}
	defer func() {
		_ = serve.Process.Kill()
		_, _ = serve.Process.Wait()
	}()

	statusURL := "http://" + metrics + "/debug/status"
	metricsURL := "http://" + metrics + "/metrics"
	waitReady(statusURL)

	// One put and one get through the one-shot client; each joins the
	// ring as an ephemeral peer and leaves gracefully, handing its
	// replicas and counters off to the serve node — so by the time we
	// scrape, this node hosts the key no matter where the hashes landed.
	runClient(*nodeBin, "put", "-via", listen, "-replicas", "3", "smoke-key", "smoke-value")
	runClient(*nodeBin, "get", "-via", listen, "-replicas", "3", "smoke-key")

	text, contentType := scrape(metricsURL)
	if !strings.HasPrefix(contentType, "text/plain") {
		fail("/metrics Content-Type = %q, want text/plain", contentType)
	}
	families, values := parseExposition(text)

	required := []string{
		"dcdht_op_duration_seconds",
		"dcdht_op_verdicts_total",
		"dcdht_op_msgs_total",
		"dcdht_ops_inflight",
		"dcdht_kts_grants_total",
		"dcdht_kts_counters",
		"dcdht_chord_lookup_hops",
		"dcdht_chord_lookups_total",
		"dcdht_repair_rounds_total",
		"dcdht_store_items",
		"dcdht_store_wal_appends_total",
		"dcdht_store_wal_fsyncs_total",
		"dcdht_net_calls_total",
		"dcdht_net_conns_accepted_total",
	}
	for _, name := range required {
		if _, ok := families[name]; !ok {
			fail("/metrics missing required family %s", name)
		}
	}

	// Activity guaranteed by construction: the client joined (accepted
	// connection), its leave handed replicas and counters to this node
	// (WAL appends, hosted items), and the key's timestamp either was
	// granted here or arrived in the counter handoff.
	if values["dcdht_net_conns_accepted_total"] < 1 {
		fail("no connections accepted — did the client reach the node?")
	}
	if values["dcdht_store_wal_appends_total"] < 1 {
		fail("no WAL appends — durable store saw no writes")
	}
	if values["dcdht_store_items"] < 1 {
		fail("no hosted replicas after client handoff")
	}
	if values["dcdht_kts_grants_total"]+values["dcdht_kts_direct_arrivals_total"] < 1 {
		fail("no timestamp grant or counter arrival on this node")
	}

	checkStatus(statusURL, listen)

	// A graceful shutdown must leave cleanly under SIGTERM.
	if err := serve.Process.Signal(syscall.SIGTERM); err != nil {
		fail("signaling node: %v", err)
	}
	done := make(chan error, 1)
	go func() { done <- serve.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			fail("node exited with error after SIGTERM: %v", err)
		}
	case <-time.After(15 * time.Second):
		fail("node did not exit within 15s of SIGTERM")
	}

	fmt.Printf("promcheck clean: %d families, exposition parses, status OK\n", len(families))
}

func waitReady(statusURL string) {
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(statusURL)
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		time.Sleep(100 * time.Millisecond)
	}
	fail("node metrics endpoint not ready within 15s")
}

func runClient(nodeBin, op string, args ...string) {
	cmd := exec.Command(nodeBin, append([]string{op}, args...)...)
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		fail("client %s failed: %v", op, err)
	}
}

func scrape(url string) (body, contentType string) {
	resp, err := http.Get(url)
	if err != nil {
		fail("scraping %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		fail("scraping %s: HTTP %d", url, resp.StatusCode)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		fail("reading %s: %v", url, err)
	}
	return string(b), resp.Header.Get("Content-Type")
}

// parseExposition validates the text strictly and returns the declared
// families (name → type) and, for plain counter/gauge series, the sum
// of sample values per family name.
func parseExposition(text string) (families map[string]string, values map[string]float64) {
	families = make(map[string]string)
	values = make(map[string]float64)
	seen := make(map[string]bool) // duplicate-series guard: name+labels
	lines := strings.Split(text, "\n")
	for i, line := range lines {
		if line == "" {
			continue
		}
		lineNo := i + 1
		if strings.HasPrefix(line, "# HELP ") {
			if len(strings.SplitN(strings.TrimPrefix(line, "# HELP "), " ", 2)) < 1 {
				fail("line %d: malformed HELP: %s", lineNo, line)
			}
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(strings.TrimPrefix(line, "# TYPE "))
			if len(parts) != 2 {
				fail("line %d: malformed TYPE: %s", lineNo, line)
			}
			name, kind := parts[0], parts[1]
			if kind != "counter" && kind != "gauge" && kind != "histogram" {
				fail("line %d: unknown metric type %q", lineNo, kind)
			}
			if _, dup := families[name]; dup {
				fail("line %d: duplicate TYPE for %s", lineNo, name)
			}
			families[name] = kind
			continue
		}
		if strings.HasPrefix(line, "#") {
			fail("line %d: unexpected comment: %s", lineNo, line)
		}

		name, labels, value := parseSeries(line, lineNo)
		if seen[name+labels] {
			fail("line %d: duplicate series %s%s", lineNo, name, labels)
		}
		seen[name+labels] = true

		base := name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			trimmed := strings.TrimSuffix(name, suffix)
			if trimmed != name && families[trimmed] == "histogram" {
				base = trimmed
				break
			}
		}
		kind, ok := families[base]
		if !ok {
			fail("line %d: series %s has no TYPE declaration", lineNo, name)
		}
		if kind == "histogram" && base == name {
			fail("line %d: bare series for histogram family %s", lineNo, name)
		}
		if kind != "histogram" {
			values[name] += value
		}
	}
	// Every histogram family needs the +Inf bucket and _sum/_count for
	// each series set it exposed.
	for name, kind := range families {
		if kind != "histogram" {
			continue
		}
		hasInf, hasSum, hasCount := false, false, false
		for key := range seen {
			if strings.HasPrefix(key, name+"_bucket") && strings.Contains(key, `le="+Inf"`) {
				hasInf = true
			}
			if strings.HasPrefix(key, name+"_sum") {
				hasSum = true
			}
			if strings.HasPrefix(key, name+"_count") {
				hasCount = true
			}
		}
		if !hasInf || !hasSum || !hasCount {
			fail("histogram %s missing +Inf bucket, _sum or _count", name)
		}
	}
	return families, values
}

// parseSeries splits `name{labels} value` (labels optional), validating
// the label syntax and that the value parses as a float.
func parseSeries(line string, lineNo int) (name, labels string, value float64) {
	rest := line
	if i := strings.IndexAny(rest, "{ "); i < 0 {
		fail("line %d: malformed series: %s", lineNo, line)
	} else {
		name, rest = rest[:i], rest[i:]
	}
	if strings.HasPrefix(rest, "{") {
		end := strings.Index(rest, "} ")
		if end < 0 {
			fail("line %d: unterminated labels: %s", lineNo, line)
		}
		labels, rest = rest[:end+1], rest[end+1:]
		inner := labels[1 : len(labels)-1]
		for _, pair := range splitLabelPairs(inner) {
			eq := strings.Index(pair, "=")
			if eq <= 0 || !strings.HasPrefix(pair[eq+1:], `"`) || !strings.HasSuffix(pair, `"`) {
				fail("line %d: malformed label pair %q", lineNo, pair)
			}
		}
	}
	rest = strings.TrimPrefix(rest, " ")
	v, err := strconv.ParseFloat(rest, 64)
	if err != nil {
		fail("line %d: sample value %q: %v", lineNo, rest, err)
	}
	return name, labels, v
}

// splitLabelPairs splits `k1="v1",k2="v2"` on commas outside quotes.
func splitLabelPairs(s string) []string {
	var pairs []string
	start, inQuote := 0, false
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			if inQuote {
				i++
			}
		case '"':
			inQuote = !inQuote
		case ',':
			if !inQuote {
				pairs = append(pairs, s[start:i])
				start = i + 1
			}
		}
	}
	if start < len(s) {
		pairs = append(pairs, s[start:])
	}
	return pairs
}

func checkStatus(url, wantAddr string) {
	resp, err := http.Get(url)
	if err != nil {
		fail("fetching status: %v", err)
	}
	defer resp.Body.Close()
	var st struct {
		Addr     string `json:"addr"`
		ID       string `json:"id"`
		Replicas int    `json:"replicas"`
		Counters int    `json:"counters"`
		Durable  bool   `json:"durable"`
		Recovery *struct {
			Records int `json:"records"`
		} `json:"recovery"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		fail("decoding status JSON: %v", err)
	}
	if st.Addr != wantAddr {
		fail("status addr = %q, want %q", st.Addr, wantAddr)
	}
	if st.ID == "" {
		fail("status reports empty node ID")
	}
	if st.Replicas < 1 {
		fail("status reports no hosted replicas after handoff")
	}
	if st.Counters < 1 {
		fail("status reports no KTS counters after handoff")
	}
	if !st.Durable || st.Recovery == nil {
		fail("durable node must report durable=true with a recovery summary")
	}
}
