#!/bin/sh
# check_docs.sh — the docs/lint gate run by CI:
#   1. every file must be gofmt-clean;
#   2. every example program must build;
#   3. every exported identifier in the root dcdht package must carry a
#      doc comment (grep-based: an exported top-level func/type/var/const
#      declaration must be preceded by a comment line or live in a
#      commented group);
#   4. every relative markdown link in README.md and docs/*.md must
#      resolve to an existing file (anchors stripped; external and
#      absolute URLs skipped).
# Run from the repository root: ./scripts/check_docs.sh
set -eu

fail=0

# 1. gofmt
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    fail=1
fi

# 2. examples build
if ! go build ./examples/...; then
    echo "examples failed to build" >&2
    fail=1
fi

# 3. exported identifiers in the root package are documented
for f in *.go; do
    case "$f" in
    *_test.go) continue ;;
    esac
    missing=$(awk '
        # A pending group is fine if its first member line is a comment.
        pending != "" { if ($0 !~ /^[\t ]*\/\//) print pending; pending = "" }
        /^(func|type|var|const) [A-Z]/ && prev !~ /^\/\// { print FILENAME ":" FNR ": " $0 }
        # Exported methods on exported receiver types (an unexported
        # receiver keeps its methods out of the godoc surface).
        /^func \([a-zA-Z0-9_]+ \*?[A-Z][A-Za-z0-9_]*\) [A-Z]/ && prev !~ /^\/\// { print FILENAME ":" FNR ": " $0 }
        /^(var|const) \($/ && prev !~ /^\/\//             { pending = FILENAME ":" FNR ": " $0 }
        { prev = $0 }
        END { if (pending != "") print pending }
    ' "$f")
    if [ -n "$missing" ]; then
        echo "undocumented exported declarations:" >&2
        echo "$missing" >&2
        fail=1
    fi
done

# 4. relative links in README.md and docs/*.md resolve
for f in README.md docs/*.md; do
    [ -f "$f" ] || continue
    dir=$(dirname "$f")
    # Extract every "](target)" link target, one per line. `|| true`
    # keeps a link-free file from aborting the script under set -e;
    # splitting on newlines only keeps targets with spaces intact.
    targets=$(grep -oE '\]\([^)]+\)' "$f" | sed 's/^](//; s/)$//') || true
    oldIFS=$IFS
    IFS='
'
    for target in $targets; do
        case "$target" in
        http://*|https://*|mailto:*|/*|\#*) continue ;;
        esac
        path=${target%%#*}          # strip the anchor
        [ -n "$path" ] || continue  # pure-anchor link
        if [ ! -e "$dir/$path" ]; then
            echo "$f: broken relative link -> $target" >&2
            fail=1
        fi
    done
    IFS=$oldIFS
done

if [ "$fail" -ne 0 ]; then
    exit 1
fi
echo "docs check clean: gofmt, examples, exported doc comments, relative links"
