#!/bin/sh
# check_bench.sh — the bench smoke gate run by CI: regenerate the
# consistency figure at toy scale and validate the emitted
# BENCH_consistency.json against the documented schema and acceptance
# invariants (scripts/validate_bench). A schema drift, a broken figure,
# or a consistency level that stopped being cheaper than Current all
# fail this gate.
# Run from the repository root: ./scripts/check_bench.sh
set -eu

out=$(mktemp -d)
trap 'rm -rf "$out"' EXIT

go run ./cmd/dcdht-bench \
    -figure consistency \
    -consistency-peers 32 -consistency-queries 12 -consistency-duration 6m \
    -quiet \
    -consistency-json "$out/BENCH_consistency.json" > "$out/table.txt"

grep -q "Consistency: retrieval cost vs observed currency" "$out/table.txt" || {
    echo "check_bench: consistency table missing from bench output" >&2
    exit 1
}

go run ./scripts/validate_bench "$out/BENCH_consistency.json"
echo "bench check clean: consistency figure regenerates and validates at toy scale"
