#!/bin/sh
# check_bench.sh — the bench smoke gate run by CI: regenerate the
# consistency, recovery, workload, gateway, lookup and perf figures at
# toy scale and validate the emitted BENCH_*.json files against the
# documented schemas and acceptance invariants (scripts/validate_bench),
# byte-comparing the deterministic exports against committed baselines.
# A schema drift, a broken figure, a consistency level that stopped
# being cheaper than Current, a durable restart that stopped beating
# crash-and-forget, or a perf hot-path whose deterministic costs moved
# without a regenerated baseline all fail this gate.
# Run from the repository root: ./scripts/check_bench.sh
set -eu

out=$(mktemp -d)
trap 'rm -rf "$out"' EXIT

go run ./cmd/dcdht-bench \
    -figure consistency \
    -consistency-peers 32 -consistency-queries 12 -consistency-duration 6m \
    -quiet \
    -consistency-json "$out/BENCH_consistency.json" > "$out/table.txt"

grep -q "Consistency: retrieval cost vs observed currency" "$out/table.txt" || {
    echo "check_bench: consistency table missing from bench output" >&2
    exit 1
}

go run ./scripts/validate_bench "$out/BENCH_consistency.json"

go run ./cmd/dcdht-bench \
    -figure recovery \
    -recovery-peers 30 -recovery-queries 16 -recovery-duration 20m \
    -quiet \
    -recovery-json "$out/BENCH_recovery.json" > "$out/recovery.txt"

grep -q "Recovery: crash-and-forget vs durable restart" "$out/recovery.txt" || {
    echo "check_bench: recovery table missing from bench output" >&2
    exit 1
}

go run ./scripts/validate_bench "$out/BENCH_recovery.json"

# Workload baseline: regenerate the toy-scale workload figure and
# byte-compare against the committed BENCH_workload.json. The run is
# fully deterministic (simulated time, fixed seed), so any drift means
# the workload path changed behaviour — regenerate the baseline with
# the exact command below and commit it alongside the change.
go run ./cmd/dcdht-bench \
    -figure workload \
    -workload uniform \
    -workload-peers 32 -duration 45s -concurrency 3 \
    -quiet \
    -workload-json "$out/BENCH_workload.json" > "$out/workload.txt"

grep -q "Workload: throughput and latency quantiles" "$out/workload.txt" || {
    echo "check_bench: workload table missing from bench output" >&2
    exit 1
}

cmp -s "$out/BENCH_workload.json" BENCH_workload.json || {
    echo "check_bench: BENCH_workload.json drifted from the committed baseline" >&2
    diff "$out/BENCH_workload.json" BENCH_workload.json >&2 || true
    exit 1
}

# Gateway determinism: regenerate the toy-scale gateway figure twice on
# the same seed and require bit-identical JSON, then validate it (KTS
# strictly fewer through the gateway, coalescing at least 2x). Any
# nondeterminism in the coalescing/balancing path breaks the cmp.
go run ./cmd/dcdht-bench \
    -figure gateway \
    -gateway-peers 60 -gateway-ops 300 \
    -quiet \
    -gateway-json "$out/BENCH_gateway.json" > "$out/gateway.txt"

grep -q "Gateway: hot-key coalescing front-end" "$out/gateway.txt" || {
    echo "check_bench: gateway table missing from bench output" >&2
    exit 1
}

go run ./cmd/dcdht-bench \
    -figure gateway \
    -gateway-peers 60 -gateway-ops 300 \
    -quiet \
    -gateway-json "$out/BENCH_gateway2.json" > /dev/null

cmp -s "$out/BENCH_gateway.json" "$out/BENCH_gateway2.json" || {
    echo "check_bench: gateway figure is not deterministic across same-seed runs" >&2
    diff "$out/BENCH_gateway.json" "$out/BENCH_gateway2.json" >&2 || true
    exit 1
}

go run ./scripts/validate_bench "$out/BENCH_gateway.json"

# Lookup acceleration: regenerate the three-arm routing comparison
# (chord / chord+cache / onehop) at toy scale twice on the same seed,
# require bit-identical JSON, then validate the orderings (onehop within
# the 1.1-hop ceiling and strictly below chord; the cache never worse
# than the ring it wraps; zero wrong-owner resolutions).
go run ./cmd/dcdht-bench \
    -figure lookup \
    -lookup-peers 24 -lookup-samples 40 -lookup-churn 2 \
    -lookup-warmup 2m -lookup-maint 1m \
    -quiet \
    -lookup-json "$out/BENCH_lookup.json" > "$out/lookup.txt"

grep -q "Lookup acceleration: chord vs chord+cache vs onehop" "$out/lookup.txt" || {
    echo "check_bench: lookup table missing from bench output" >&2
    exit 1
}

go run ./cmd/dcdht-bench \
    -figure lookup \
    -lookup-peers 24 -lookup-samples 40 -lookup-churn 2 \
    -lookup-warmup 2m -lookup-maint 1m \
    -quiet \
    -lookup-json "$out/BENCH_lookup2.json" > /dev/null

cmp -s "$out/BENCH_lookup.json" "$out/BENCH_lookup2.json" || {
    echo "check_bench: lookup figure is not deterministic across same-seed runs" >&2
    diff "$out/BENCH_lookup.json" "$out/BENCH_lookup2.json" >&2 || true
    exit 1
}

go run ./scripts/validate_bench "$out/BENCH_lookup.json"

# Perf determinism and baseline: regenerate the toy-scale perf figure
# twice with the host-dependent timing fields stripped and require
# bit-identical JSON, then validate the deterministic fields against
# the committed BENCH_perf.json exactly. To refresh the baseline after
# an intended behaviour change, run the same command without
# -perf-strip-timing (keeping one machine's timing as a trajectory
# record) and commit the output as BENCH_perf.json:
#   go run ./cmd/dcdht-bench -figure perf \
#       -perf-ops 12 -perf-peers 32 -perf-kernel-events 10 \
#       -perf-macro-ops 120 -quiet -perf-json BENCH_perf.json
go run ./cmd/dcdht-bench \
    -figure perf \
    -perf-ops 12 -perf-peers 32 -perf-kernel-events 10 \
    -perf-macro-ops 120 \
    -perf-strip-timing \
    -quiet \
    -perf-json "$out/BENCH_perf.json" > "$out/perf.txt"

grep -q "Perf: hot-path costs" "$out/perf.txt" || {
    echo "check_bench: perf table missing from bench output" >&2
    exit 1
}

go run ./cmd/dcdht-bench \
    -figure perf \
    -perf-ops 12 -perf-peers 32 -perf-kernel-events 10 \
    -perf-macro-ops 120 \
    -perf-strip-timing \
    -quiet \
    -perf-json "$out/BENCH_perf2.json" > /dev/null

cmp -s "$out/BENCH_perf.json" "$out/BENCH_perf2.json" || {
    echo "check_bench: perf figure is not deterministic across same-seed runs" >&2
    diff "$out/BENCH_perf.json" "$out/BENCH_perf2.json" >&2 || true
    exit 1
}

go run ./scripts/validate_bench "$out/BENCH_perf.json" BENCH_perf.json

echo "bench check clean: consistency, recovery, workload, gateway, lookup and perf figures regenerate and validate at toy scale"
