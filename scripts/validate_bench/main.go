// Command validate_bench checks a BENCH_consistency.json emitted by
// `dcdht-bench -figure consistency` against the documented schema
// (docs/BENCHMARKS.md) and the acceptance invariants of the
// consistency-level API:
//
//   - every (level, repair) cell ran queries and reports sane costs;
//   - per repair mode, Eventual and Bounded retrieves cost strictly
//     fewer messages and strictly less response time than Current;
//   - Current reports Currency == Proven for every retrieve that found
//     a current replica at all (proven + stale + failed == run), and
//     never a weaker verdict;
//   - Eventual never claims currency.
//
// Usage: validate_bench BENCH_consistency.json
// Exit status 0 when the file conforms; 1 with diagnostics otherwise.
package main

import (
	"encoding/json"
	"fmt"
	"os"

	"repro/internal/exp"
)

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "validate_bench: "+format+"\n", args...)
	os.Exit(1)
}

func main() {
	if len(os.Args) != 2 {
		fail("usage: validate_bench BENCH_consistency.json")
	}
	data, err := os.ReadFile(os.Args[1])
	if err != nil {
		fail("%v", err)
	}
	var points []exp.ConsistencyPoint
	if err := json.Unmarshal(data, &points); err != nil {
		fail("not a consistency point array: %v", err)
	}
	if len(points) == 0 {
		fail("empty point set")
	}

	type cell = exp.ConsistencyPoint
	byKey := map[string]cell{}
	for i, p := range points {
		if p.Level != "current" && p.Level != "bounded" && p.Level != "eventual" {
			fail("point %d: unknown level %q", i, p.Level)
		}
		if p.QueriesRun <= 0 {
			fail("point %d (%s repair=%v): no queries ran", i, p.Level, p.Repair)
		}
		if p.Peers <= 0 || p.Clients <= 0 {
			fail("point %d (%s): missing deployment shape: peers=%d clients=%d", i, p.Level, p.Peers, p.Clients)
		}
		if p.MsgsPerRetrieve <= 0 || p.RespTimeSec <= 0 || p.ProbesPerRetrieve <= 0 {
			fail("point %d (%s): non-positive costs: msgs=%v resp=%v probes=%v",
				i, p.Level, p.MsgsPerRetrieve, p.RespTimeSec, p.ProbesPerRetrieve)
		}
		if got := p.Proven + p.WithinBound + p.SessionFloor + p.Unknown + p.StaleReturns + p.FailedQueries; got != p.QueriesRun {
			fail("point %d (%s repair=%v): verdicts %d do not account for %d queries", i, p.Level, p.Repair, got, p.QueriesRun)
		}
		byKey[fmt.Sprintf("%s/%v", p.Level, p.Repair)] = p
	}

	for _, repaired := range []bool{false, true} {
		cur, ok1 := byKey[fmt.Sprintf("current/%v", repaired)]
		bnd, ok2 := byKey[fmt.Sprintf("bounded/%v", repaired)]
		ev, ok3 := byKey[fmt.Sprintf("eventual/%v", repaired)]
		if !ok1 || !ok2 || !ok3 {
			// A restricted -levels run: only validate the cells present.
			continue
		}
		if !(ev.MsgsPerRetrieve < cur.MsgsPerRetrieve) || !(bnd.MsgsPerRetrieve < cur.MsgsPerRetrieve) {
			fail("repair=%v: messages not strictly ordered: eventual %.2f / bounded %.2f vs current %.2f",
				repaired, ev.MsgsPerRetrieve, bnd.MsgsPerRetrieve, cur.MsgsPerRetrieve)
		}
		if !(ev.RespTimeSec < cur.RespTimeSec) || !(bnd.RespTimeSec < cur.RespTimeSec) {
			fail("repair=%v: latency not strictly ordered: eventual %.3f / bounded %.3f vs current %.3f",
				repaired, ev.RespTimeSec, bnd.RespTimeSec, cur.RespTimeSec)
		}
		if cur.Proven+cur.StaleReturns+cur.FailedQueries != cur.QueriesRun ||
			cur.WithinBound+cur.SessionFloor+cur.Unknown != 0 {
			fail("repair=%v: current must prove currency whenever a current replica is reachable: %+v", repaired, cur)
		}
		if ev.Proven+ev.WithinBound+ev.SessionFloor != 0 {
			fail("repair=%v: eventual claims currency: %+v", repaired, ev)
		}
	}
	fmt.Printf("validate_bench: %s conforms (%d points)\n", os.Args[1], len(points))
}
