// Command validate_bench checks a machine-readable bench file emitted
// by dcdht-bench against the documented schema (docs/BENCHMARKS.md) and
// its figure's acceptance invariants. The figure is picked from the
// file name: a name containing "recovery", "gateway" or "lookup"
// validates as that figure's export; anything else as the consistency
// figure.
//
// Consistency (BENCH_consistency.json):
//
//   - every (level, repair) cell ran queries and reports sane costs;
//   - per repair mode, Eventual and Bounded retrieves cost strictly
//     fewer messages and strictly less response time than Current;
//   - Current reports Currency == Proven for every retrieve that found
//     a current replica at all (proven + stale + failed == run), and
//     never a weaker verdict;
//   - Eventual never claims currency.
//
// Recovery (BENCH_recovery.json):
//
//   - exactly the two storage modes, same seed and population;
//   - both modes played crash and restart waves and ran queries;
//   - on the same seed, durable currency is at least crash-and-forget's
//     and durable fails no more queries — retained state must never
//     make things worse.
//
// Gateway (BENCH_gateway.json):
//
//   - both arms ran the identical op count on the same seed and shape;
//   - the gateway arm issued strictly fewer KTS requests than direct;
//   - hot-key coalescing reached at least 2x (reads served per backend
//     read on the coalescing path), the figure's acceptance floor;
//   - the gateway's counters account: flights + coalesced + cache-served
//     gets cover at least the coalesced traffic, and backend errors
//     stayed at zero.
//
// Lookup (BENCH_lookup.json):
//
//   - every point ran lookups and resolved only true owners
//     (wrong_owner == 0);
//   - at every deployment size the onehop arm's mean hops stay within
//     the 1.1 acceptance ceiling and strictly below plain chord's;
//   - the chord+cache arm never costs more hops than plain chord, and
//     its cache actually engaged.
//
// Perf (BENCH_perf.json):
//
//   - the schema tag matches, every micro point ran operations, and
//     the consistency cost orderings hold (Eventual and Bounded reads
//     cost fewer messages than Current; Eventual never touches KTS;
//     every UMS insert pays at least one gen_ts grant; BRK reports no
//     KTS traffic at all);
//   - the kernel sweep covers increasing synthetic scales with
//     increasing event counts;
//   - with a second argument, the file's deterministic fields must
//     equal the committed baseline's exactly — same-seed simulation is
//     a pure function, so any drift is a behavior change that needs a
//     regenerated baseline (timing fields are never compared).
//
// Usage: validate_bench BENCH_<figure>.json [BASELINE.json]
// Exit status 0 when the file conforms; 1 with diagnostics otherwise.
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/exp"
	"repro/internal/perf"
)

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "validate_bench: "+format+"\n", args...)
	os.Exit(1)
}

func main() {
	if len(os.Args) != 2 && len(os.Args) != 3 {
		fail("usage: validate_bench BENCH_<figure>.json [BASELINE.json]")
	}
	data, err := os.ReadFile(os.Args[1])
	if err != nil {
		fail("%v", err)
	}
	base := strings.ToLower(filepath.Base(os.Args[1]))
	if len(os.Args) == 3 && !strings.Contains(base, "perf") {
		fail("a baseline argument is only supported for the perf figure")
	}
	switch {
	case strings.Contains(base, "recovery"):
		validateRecovery(data)
	case strings.Contains(base, "gateway"):
		validateGateway(data)
	case strings.Contains(base, "lookup"):
		validateLookup(data)
	case strings.Contains(base, "perf"):
		validatePerf(data)
	default:
		validateConsistency(data)
	}
}

// validatePerf checks a perf figure export against the schema and cost
// orderings (perf.Figure.Validate), and — when a baseline path was
// given — against the committed baseline's deterministic fields.
func validatePerf(data []byte) {
	var fig perf.Figure
	if err := json.Unmarshal(data, &fig); err != nil {
		fail("not a perf figure: %v", err)
	}
	if len(os.Args) == 3 {
		baseData, err := os.ReadFile(os.Args[2])
		if err != nil {
			fail("baseline: %v", err)
		}
		var baseline perf.Figure
		if err := json.Unmarshal(baseData, &baseline); err != nil {
			fail("baseline %s is not a perf figure: %v", os.Args[2], err)
		}
		if err := fig.ValidateAgainst(&baseline); err != nil {
			fail("%v (regenerate the baseline if the change is intended)", err)
		}
		fmt.Printf("validate_bench: %s conforms and matches baseline %s (%d op points, %d kernel scales)\n",
			os.Args[1], os.Args[2], len(fig.Ops), len(fig.Kernel))
		return
	}
	if err := fig.Validate(); err != nil {
		fail("%v", err)
	}
	fmt.Printf("validate_bench: %s conforms (%d op points, %d kernel scales)\n",
		os.Args[1], len(fig.Ops), len(fig.Kernel))
}

// validateLookup checks the lookup acceleration figure: every point is
// safe (wrong_owner == 0), and at each deployment size onehop stays at
// ~one hop and strictly below chord, while the path cache never costs
// more hops than the plain ring it wraps.
func validateLookup(data []byte) {
	var res exp.LookupResult
	if err := json.Unmarshal(data, &res); err != nil {
		fail("not a lookup result: %v", err)
	}
	if len(res.Points) == 0 {
		fail("empty point set")
	}
	if res.Samples <= 0 {
		fail("samples %d not positive", res.Samples)
	}
	byKey := map[string]exp.LookupPoint{}
	var sizes []int
	for i, p := range res.Points {
		switch p.Arm {
		case exp.LookupArmChord, exp.LookupArmCache, exp.LookupArmOneHop:
		default:
			fail("point %d: unknown arm %q", i, p.Arm)
		}
		if p.Peers <= 0 || p.Samples <= 0 {
			fail("point %d (%s): missing shape: peers=%d samples=%d", i, p.Arm, p.Peers, p.Samples)
		}
		if p.WrongOwner != 0 {
			fail("point %d (%s/n=%d): %d lookups resolved a node that does not own the target", i, p.Arm, p.Peers, p.WrongOwner)
		}
		if p.MeanHops < 0 || p.MeanLatencyMs < 0 || p.MaintMsgsPerPeerMin < 0 {
			fail("point %d (%s/n=%d): negative costs: hops=%v lat=%v maint=%v",
				i, p.Arm, p.Peers, p.MeanHops, p.MeanLatencyMs, p.MaintMsgsPerPeerMin)
		}
		key := fmt.Sprintf("%s/%d", p.Arm, p.Peers)
		if _, dup := byKey[key]; dup {
			fail("duplicate point %s", key)
		}
		byKey[key] = p
		if p.Arm == exp.LookupArmChord {
			sizes = append(sizes, p.Peers)
		}
	}
	sort.Ints(sizes)
	for _, n := range sizes {
		chord, ok1 := byKey[fmt.Sprintf("%s/%d", exp.LookupArmChord, n)]
		cache, ok2 := byKey[fmt.Sprintf("%s/%d", exp.LookupArmCache, n)]
		oneh, ok3 := byKey[fmt.Sprintf("%s/%d", exp.LookupArmOneHop, n)]
		if !ok1 || !ok2 || !ok3 {
			fail("n=%d: missing an arm (want chord, chord+cache and onehop)", n)
		}
		if oneh.MeanHops > 1.1 {
			fail("n=%d: onehop mean hops %.3f exceeds the 1.1 acceptance ceiling", n, oneh.MeanHops)
		}
		if !(oneh.MeanHops < chord.MeanHops) {
			fail("n=%d: onehop mean hops %.3f not strictly below chord's %.3f", n, oneh.MeanHops, chord.MeanHops)
		}
		if cache.MeanHops > chord.MeanHops {
			fail("n=%d: chord+cache mean hops %.3f worse than plain chord's %.3f", n, cache.MeanHops, chord.MeanHops)
		}
		if cache.CacheHitRate <= 0 {
			fail("n=%d: chord+cache reports a zero hit rate — the cache never engaged", n)
		}
		if oneh.OneHopTableSize <= 0 {
			fail("n=%d: onehop reports no routing table", n)
		}
	}
	fmt.Printf("validate_bench: %s conforms (%d points, onehop within one-hop ceiling at every size)\n",
		os.Args[1], len(res.Points))
}

// validateRecovery checks a recovery comparison: schema, provenance and
// the durable-never-worse orderings.
func validateRecovery(data []byte) {
	var points []exp.RecoveryPoint
	if err := json.Unmarshal(data, &points); err != nil {
		fail("not a recovery point array: %v", err)
	}
	if len(points) != 2 {
		fail("recovery wants exactly the two storage modes, got %d points", len(points))
	}
	byMode := map[string]exp.RecoveryPoint{}
	for i, p := range points {
		if p.Mode != "crash-forget" && p.Mode != "durable" {
			fail("point %d: unknown mode %q", i, p.Mode)
		}
		if p.QueriesRun <= 0 {
			fail("mode %q ran no queries", p.Mode)
		}
		if p.Peers <= 0 || p.DurationSec <= 0 {
			fail("mode %q: missing deployment shape: peers=%d duration=%v", p.Mode, p.Peers, p.DurationSec)
		}
		if p.Crashes <= 0 || p.Restarts <= 0 {
			fail("mode %q: crashes=%d restarts=%d, want both waves played", p.Mode, p.Crashes, p.Restarts)
		}
		if p.CurrentRate < 0 || p.CurrentRate > 1 {
			fail("mode %q: current_rate %v outside [0,1]", p.Mode, p.CurrentRate)
		}
		byMode[p.Mode] = p
	}
	cf, ok1 := byMode["crash-forget"]
	du, ok2 := byMode["durable"]
	if !ok1 || !ok2 {
		fail("missing a storage mode: have %v", []string{points[0].Mode, points[1].Mode})
	}
	if cf.Seed != du.Seed || cf.Peers != du.Peers || cf.DurationSec != du.DurationSec {
		fail("modes did not run the same experiment: %+v vs %+v", cf, du)
	}
	if du.CurrentRate < cf.CurrentRate {
		fail("durable currency %.3f below crash-and-forget %.3f on seed %d",
			du.CurrentRate, cf.CurrentRate, du.Seed)
	}
	if du.FailedQueries > cf.FailedQueries {
		fail("durable failed %d queries, crash-and-forget only %d on seed %d",
			du.FailedQueries, cf.FailedQueries, du.Seed)
	}
	fmt.Printf("validate_bench: %s conforms (%d points)\n", os.Args[1], len(points))
}

// validateConsistency checks a consistency figure export.
func validateConsistency(data []byte) {
	var points []exp.ConsistencyPoint
	if err := json.Unmarshal(data, &points); err != nil {
		fail("not a consistency point array: %v", err)
	}
	if len(points) == 0 {
		fail("empty point set")
	}

	type cell = exp.ConsistencyPoint
	byKey := map[string]cell{}
	for i, p := range points {
		if p.Level != "current" && p.Level != "bounded" && p.Level != "eventual" {
			fail("point %d: unknown level %q", i, p.Level)
		}
		if p.QueriesRun <= 0 {
			fail("point %d (%s repair=%v): no queries ran", i, p.Level, p.Repair)
		}
		if p.Peers <= 0 || p.Clients <= 0 {
			fail("point %d (%s): missing deployment shape: peers=%d clients=%d", i, p.Level, p.Peers, p.Clients)
		}
		if p.MsgsPerRetrieve <= 0 || p.RespTimeSec <= 0 || p.ProbesPerRetrieve <= 0 {
			fail("point %d (%s): non-positive costs: msgs=%v resp=%v probes=%v",
				i, p.Level, p.MsgsPerRetrieve, p.RespTimeSec, p.ProbesPerRetrieve)
		}
		if got := p.Proven + p.WithinBound + p.SessionFloor + p.Unknown + p.StaleReturns + p.FailedQueries; got != p.QueriesRun {
			fail("point %d (%s repair=%v): verdicts %d do not account for %d queries", i, p.Level, p.Repair, got, p.QueriesRun)
		}
		byKey[fmt.Sprintf("%s/%v", p.Level, p.Repair)] = p
	}

	for _, repaired := range []bool{false, true} {
		cur, ok1 := byKey[fmt.Sprintf("current/%v", repaired)]
		bnd, ok2 := byKey[fmt.Sprintf("bounded/%v", repaired)]
		ev, ok3 := byKey[fmt.Sprintf("eventual/%v", repaired)]
		if !ok1 || !ok2 || !ok3 {
			// A restricted -levels run: only validate the cells present.
			continue
		}
		if !(ev.MsgsPerRetrieve < cur.MsgsPerRetrieve) || !(bnd.MsgsPerRetrieve < cur.MsgsPerRetrieve) {
			fail("repair=%v: messages not strictly ordered: eventual %.2f / bounded %.2f vs current %.2f",
				repaired, ev.MsgsPerRetrieve, bnd.MsgsPerRetrieve, cur.MsgsPerRetrieve)
		}
		if !(ev.RespTimeSec < cur.RespTimeSec) || !(bnd.RespTimeSec < cur.RespTimeSec) {
			fail("repair=%v: latency not strictly ordered: eventual %.3f / bounded %.3f vs current %.3f",
				repaired, ev.RespTimeSec, bnd.RespTimeSec, cur.RespTimeSec)
		}
		if cur.Proven+cur.StaleReturns+cur.FailedQueries != cur.QueriesRun ||
			cur.WithinBound+cur.SessionFloor+cur.Unknown != 0 {
			fail("repair=%v: current must prove currency whenever a current replica is reachable: %+v", repaired, cur)
		}
		if ev.Proven+ev.WithinBound+ev.SessionFloor != 0 {
			fail("repair=%v: eventual claims currency: %+v", repaired, ev)
		}
	}
	fmt.Printf("validate_bench: %s conforms (%d points)\n", os.Args[1], len(points))
}

// validateGateway checks the gateway comparison: paired provenance,
// strictly-fewer KTS traffic, and the coalescing acceptance floor.
func validateGateway(data []byte) {
	var res exp.GatewayResult
	if err := json.Unmarshal(data, &res); err != nil {
		fail("not a gateway result: %v", err)
	}
	if res.Peers <= 0 || res.Backends <= 0 {
		fail("missing deployment shape: peers=%d backends=%d", res.Peers, res.Backends)
	}
	if res.ZipfS < 0.99 {
		fail("zipf skew %.2f below the 0.99 hot-key regime", res.ZipfS)
	}
	if res.Direct.Arm != "direct" || res.GW.Arm != "gateway" {
		fail("arm labels %q/%q, want direct/gateway", res.Direct.Arm, res.GW.Arm)
	}
	if res.Direct.Ops <= 0 || res.Direct.Ops != res.GW.Ops {
		fail("arms ran different op counts: direct %d vs gateway %d", res.Direct.Ops, res.GW.Ops)
	}
	directKTS := res.Direct.KTSGenTS + res.Direct.KTSLastTS
	gwKTS := res.GW.KTSGenTS + res.GW.KTSLastTS
	if !(gwKTS < directKTS) {
		fail("gateway KTS traffic %.0f not strictly below direct %.0f", gwKTS, directKTS)
	}
	st := res.GW.Gateway
	if st == nil {
		fail("gateway arm carries no gateway counters")
	}
	if st.Flights == 0 {
		fail("gateway arm reports zero flights")
	}
	if res.GW.CoalescingFactor < 2.0 {
		fail("coalescing factor %.2fx below the 2x acceptance floor", res.GW.CoalescingFactor)
	}
	if st.BackendErrors != 0 {
		fail("gateway arm saw %d backend errors", st.BackendErrors)
	}
	if st.CacheServedGets+st.CacheServedLastTS == 0 {
		fail("gateway cache served nothing under a hot-key zipf mix")
	}
	if res.KTSSavedPct <= 0 {
		fail("kts_saved_pct %.1f not positive", res.KTSSavedPct)
	}
	fmt.Printf("validate_bench: %s conforms (coalescing %.2fx, %.1f%% KTS saved)\n",
		os.Args[1], res.GW.CoalescingFactor, res.KTSSavedPct)
}
