package dcdht

import (
	"context"
)

// Client is the deployment-agnostic interface to a replicated DHT with
// data currency: one method set, implemented both by SimNetwork (the
// paper's simulation study) and by Node (the real TCP deployment), so
// applications, experiments and CLIs drive either world through the
// same code path.
//
// Every operation takes a context.Context that propagates end to end:
// its deadline bounds the whole operation across every ring lookup and
// RPC beneath it (mapped onto virtual time under simulation, onto
// socket deadlines over TCP), and its cancellation stops retries and
// probes at the next message boundary. An operation issued with an
// already-expired deadline fails promptly with an error wrapping both
// ErrTimeout and context.DeadlineExceeded.
//
// The replication protocol is selected per operation with OpOptions:
// the default is the paper's UMS (KTS timestamps, provable currency,
// early-stop probing); WithAlgorithm(AlgBRK) runs the BRICKS baseline
// (version numbers, read-all) for side-by-side comparisons. The
// UMS-Direct / UMS-Indirect axis is a deployment property (counter
// initialization strategy) and is chosen with SimConfig.Mode or
// NodeConfig.Mode.
type Client interface {
	// Put stores data under key with a fresh timestamp and replicates
	// it at the peers responsible under every replication hash function.
	Put(ctx context.Context, key Key, data []byte, opts ...OpOption) (Result, error)
	// Get returns the current replica of key. When no provably current
	// replica is reachable, the most recent available one is returned
	// together with an error wrapping ErrNoCurrentReplica (classify
	// with IsNoCurrent).
	Get(ctx context.Context, key Key, opts ...OpOption) (Result, error)
	// LastTS asks KTS for the last timestamp generated for key (zero
	// when the key was never stamped).
	LastTS(ctx context.Context, key Key) (Timestamp, error)
	// PutMulti stores a batch, fanning the writes out concurrently.
	// Per-key outcomes are isolated in the returned slice (index i
	// matches items[i]); the batch-level error is non-nil only when the
	// batch as a whole could not be issued.
	PutMulti(ctx context.Context, items []KV, opts ...OpOption) ([]MultiResult, error)
	// GetMulti retrieves a batch of keys concurrently, with the same
	// per-key error isolation as PutMulti.
	GetMulti(ctx context.Context, keys []Key, opts ...OpOption) ([]MultiResult, error)
}

// Compile-time interface conformance for both deployment styles.
var (
	_ Client = (*SimNetwork)(nil)
	_ Client = (*Node)(nil)
)

// Algorithm selects the replication protocol an operation runs.
type Algorithm int

const (
	// AlgUMS is the paper's Update Management Service: KTS timestamps,
	// provable currency, early-stop probing. The default.
	AlgUMS Algorithm = iota
	// AlgBRK is the BRICKS baseline: per-replica version numbers and
	// read-all retrieves, kept for side-by-side comparisons.
	AlgBRK
)

// String returns "UMS" or "BRK".
func (a Algorithm) String() string {
	if a == AlgBRK {
		return "BRK"
	}
	return "UMS"
}

// opConfig is the resolved per-operation configuration.
type opConfig struct {
	alg  Algorithm
	peer int // issuing peer index for SimNetwork; -1 picks a random live peer
}

// OpOption customises one operation.
type OpOption func(*opConfig)

// WithAlgorithm selects the replication protocol for this operation.
func WithAlgorithm(a Algorithm) OpOption {
	return func(c *opConfig) { c.alg = a }
}

// WithIssuer pins the operation to the i-th live peer (modulo the live
// population) instead of a random one. Only meaningful on SimNetwork,
// where the facade chooses the issuing peer; a Node always issues from
// itself and ignores it.
func WithIssuer(i int) OpOption {
	return func(c *opConfig) {
		if i >= 0 {
			c.peer = i
		}
	}
}

func resolveOpts(opts []OpOption) opConfig {
	c := opConfig{peer: -1}
	for _, o := range opts {
		o(&c)
	}
	return c
}

// KV is one key/data pair of a PutMulti batch.
type KV struct {
	// Key names the item; Data is the value to replicate under it.
	Key  Key
	Data []byte
}

// MultiResult is one key's outcome within a batched operation: the
// operation metrics plus the key's own error, isolated from its
// siblings (one missing key does not fail the batch).
type MultiResult struct {
	// Key names the item this outcome belongs to; the embedded Result
	// carries the operation's data and metrics.
	Key Key
	Result
	// Err is this key's outcome; classify with errors.Is (ErrNotFound,
	// ErrNoCurrentReplica, ErrTimeout, ...).
	Err error
}
