package dcdht

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/dht"
)

// Client is the deployment-agnostic interface to a replicated DHT with
// data currency: one method set, implemented both by SimNetwork (the
// paper's simulation study) and by Node (the real TCP deployment), so
// applications, experiments and CLIs drive either world through the
// same code path.
//
// Every operation takes a context.Context that propagates end to end:
// its deadline bounds the whole operation across every ring lookup and
// RPC beneath it (mapped onto virtual time under simulation, onto
// socket deadlines over TCP), and its cancellation stops retries and
// probes at the next message boundary. An operation issued with an
// already-expired deadline fails promptly with an error wrapping both
// ErrTimeout and context.DeadlineExceeded.
//
// The replication protocol is selected per operation with OpOptions:
// the default is the paper's UMS (KTS timestamps, provable currency,
// early-stop probing); WithAlgorithm(AlgBRK) runs the BRICKS baseline
// (version numbers, read-all) for side-by-side comparisons. The
// UMS-Direct / UMS-Indirect axis is a deployment property (counter
// initialization strategy) and is chosen with SimConfig.Mode or
// NodeConfig.Mode.
//
// Retrieves additionally take a consistency level
// (WithConsistency): Current — the default — proves currency against
// KTS, Bounded(d) accepts a replica within a staleness bound, Eventual
// takes the first reachable replica. Result.Currency reports what the
// operation could actually claim. NewSession opens a Session whose
// reads are guaranteed at least as fresh as the session's own writes
// and prior reads (read-your-writes, monotonic reads).
//
// An operation issued with invalid options (a negative issuer index, a
// negative staleness bound, an issuer pin on a TCP node) fails with an
// error wrapping ErrBadOption instead of silently ignoring the option.
type Client interface {
	// Put stores data under key with a fresh timestamp and replicates
	// it at the peers responsible under every replication hash function.
	Put(ctx context.Context, key Key, data []byte, opts ...OpOption) (Result, error)
	// Get returns the current replica of key. When no provably current
	// replica is reachable, the most recent available one is returned
	// together with an error wrapping ErrNoCurrentReplica (classify
	// with IsNoCurrent). WithConsistency relaxes what "current" must
	// mean for this read.
	Get(ctx context.Context, key Key, opts ...OpOption) (Result, error)
	// LastTS asks KTS for the last timestamp generated for key (zero
	// when the key was never stamped). WithIssuer selects the asking
	// peer under simulation; WithConsistency(Bounded(d)) or
	// WithConsistency(Eventual) may serve the answer from the issuing
	// peer's cache instead of a KTS round trip.
	LastTS(ctx context.Context, key Key, opts ...OpOption) (Timestamp, error)
	// NewSession opens a session over this client: per-key timestamp
	// floors provide read-your-writes and monotonic reads cheaply.
	NewSession(defaults ...OpOption) *Session
	// PutMulti stores a batch, fanning the writes out concurrently.
	// Per-key outcomes are isolated in the returned slice (index i
	// matches items[i]); the batch-level error is non-nil only when the
	// batch as a whole could not be issued.
	PutMulti(ctx context.Context, items []KV, opts ...OpOption) ([]MultiResult, error)
	// GetMulti retrieves a batch of keys concurrently, with the same
	// per-key error isolation as PutMulti.
	GetMulti(ctx context.Context, keys []Key, opts ...OpOption) ([]MultiResult, error)
}

// Compile-time interface conformance for both deployment styles and
// the front-end tier layered over them.
var (
	_ Client = (*SimNetwork)(nil)
	_ Client = (*Node)(nil)
	_ Client = (*Gateway)(nil)
)

// Algorithm selects the replication protocol an operation runs.
type Algorithm int

const (
	// AlgUMS is the paper's Update Management Service: KTS timestamps,
	// provable currency, early-stop probing. The default.
	AlgUMS Algorithm = iota
	// AlgBRK is the BRICKS baseline: per-replica version numbers and
	// read-all retrieves, kept for side-by-side comparisons.
	AlgBRK
)

// String returns "UMS" or "BRK".
func (a Algorithm) String() string {
	if a == AlgBRK {
		return "BRK"
	}
	return "UMS"
}

// ErrBadOption marks an operation issued with an invalid option
// combination — a negative issuer index, a negative staleness bound, an
// issuer pin on a TCP Node. The operation fails instead of silently
// dropping the option; classify with errors.Is(err, ErrBadOption).
var ErrBadOption = errors.New("invalid operation option")

// opConfig is the resolved per-operation configuration.
type opConfig struct {
	alg       Algorithm
	peer      int  // issuing peer index for SimNetwork; -1 picks a random live peer
	issuerSet bool // WithIssuer was given (Nodes must reject it)
	level     dht.Level
	levelSet  bool // WithConsistency was given explicitly
	bound     time.Duration
	floor     core.Timestamp // session floor (set by Session reads only)
	err       error          // first invalid option seen
}

// OpOption customises one operation.
type OpOption func(*opConfig)

// WithAlgorithm selects the replication protocol for this operation.
func WithAlgorithm(a Algorithm) OpOption {
	return func(c *opConfig) { c.alg = a }
}

// WithIssuer pins the operation to the i-th live peer (modulo the live
// population) instead of a random one. Only meaningful on SimNetwork,
// where the facade chooses the issuing peer; an operation on a Node —
// which always issues from itself — fails with ErrBadOption, as does a
// negative index.
func WithIssuer(i int) OpOption {
	return func(c *opConfig) {
		c.issuerSet = true
		if i < 0 {
			c.fail(fmt.Errorf("issuer index %d is negative: %w", i, ErrBadOption))
			return
		}
		c.peer = i
	}
}

// WithConsistency selects the consistency level for this operation's
// reads: Current (the default), Bounded(d) or Eventual. A malformed
// level — Bounded with a negative bound — fails the operation with
// ErrBadOption.
func WithConsistency(l Consistency) OpOption {
	return func(c *opConfig) {
		c.levelSet = true
		c.level, c.bound = l.level, l.bound
		if l.level == dht.LevelBounded && l.bound < 0 {
			c.fail(fmt.Errorf("bounded consistency with negative bound %v: %w", l.bound, ErrBadOption))
		}
	}
}

// withFloor carries a session's per-key floor into the operation. Kept
// unexported: floors are session bookkeeping, not a caller knob.
func withFloor(f Timestamp) OpOption {
	return func(c *opConfig) { c.floor = f }
}

// withPolicy replays an already-resolved read policy through the option
// machinery so a backend client re-derives exactly this policy from
// opConfig.readPolicy. Kept unexported: only the gateway's backend
// adapter uses it.
func withPolicy(p dht.ReadPolicy) OpOption {
	return func(c *opConfig) {
		c.level, c.bound, c.floor = p.Level, p.Bound, p.Floor
		c.levelSet = !p.FloorFirst
	}
}

// fail records the first invalid option; later ones keep the original
// diagnosis.
func (c *opConfig) fail(err error) {
	if c.err == nil {
		c.err = err
	}
}

// readPolicy translates the resolved options into the UMS acceptance
// predicate. A session floor with no explicit consistency level selects
// the floor-first fast path (satisfy the read from the floor before
// proving currency).
func (c opConfig) readPolicy() dht.ReadPolicy {
	p := dht.ReadPolicy{Level: c.level, Bound: c.bound, Floor: c.floor}
	if !c.levelSet && !c.floor.IsZero() {
		p.FloorFirst = true
	}
	return p
}

// resolveOpts folds the options into one configuration, reporting the
// first invalid option (or combination — checked after folding, so the
// outcome is independent of option order) as an error wrapping
// ErrBadOption.
func resolveOpts(opts []OpOption) (opConfig, error) {
	c := opConfig{peer: -1}
	for _, o := range opts {
		o(&c)
	}
	// The BRK baseline has no currency proof to relax and no floors to
	// enforce: combining it with a consistency level or a session read
	// must fail loudly, not silently drop the guarantee.
	if c.err == nil && c.alg == AlgBRK {
		if c.levelSet {
			c.fail(fmt.Errorf("BRK cannot honor a consistency level: %w", ErrBadOption))
		} else if !c.floor.IsZero() {
			c.fail(fmt.Errorf("session reads are not supported on BRK (no floor enforcement): %w", ErrBadOption))
		}
	}
	return c, c.err
}

// KV is one key/data pair of a PutMulti batch.
type KV struct {
	// Key names the item; Data is the value to replicate under it.
	Key  Key
	Data []byte
}

// MultiResult is one key's outcome within a batched operation: the
// operation metrics plus the key's own error, isolated from its
// siblings (one missing key does not fail the batch).
type MultiResult struct {
	// Key names the item this outcome belongs to; the embedded Result
	// carries the operation's data and metrics.
	Key Key
	Result
	// Err is this key's outcome; classify with errors.Is (ErrNotFound,
	// ErrNoCurrentReplica, ErrTimeout, ...).
	Err error
}
