// Quickstart: build a 64-peer simulated DHT, insert a value, update it,
// and retrieve the provably current replica — then watch the BRICKS
// baseline do the same work with every replica fetched.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	dcdht "repro"
)

func main() {
	// 64 peers, |Hr| = 10 replicas per data item, the paper's Table 1
	// network model (200 ms WAN latency, 56 kbps links). Everything runs
	// in deterministic virtual time.
	net := dcdht.NewSimNetwork(64, dcdht.SimConfig{Seed: 2024})
	defer net.Close()
	fmt.Printf("simulated network: %d peers up at virtual t=%s\n\n", net.Peers(), net.Now())

	// Every operation goes through the dcdht.Client interface and takes
	// a context; swap the SimNetwork for a TCP Node and this code runs
	// unchanged against a real cluster.
	ctx := context.Background()

	// Put: UMS stamps the value with a KTS timestamp and replicates it
	// at the peers responsible under each replication hash function.
	ins, err := net.Put(ctx, "motd", []byte("hello, replicated world"))
	if err != nil {
		log.Fatalf("insert: %v", err)
	}
	fmt.Printf("insert  : ts=%v stored=%d replicas in %s (%d msgs)\n",
		ins.TS, ins.Stored, ins.Elapsed.Round(time.Millisecond), ins.Msgs)

	// Update from some other peer: a fresh timestamp supersedes the old
	// replicas everywhere it lands.
	upd, err := net.Put(ctx, "motd", []byte("hello again — now with currency"))
	if err != nil {
		log.Fatalf("update: %v", err)
	}
	fmt.Printf("update  : ts=%v stored=%d replicas in %s (%d msgs)\n",
		upd.TS, upd.Stored, upd.Elapsed.Round(time.Millisecond), upd.Msgs)

	// Get: UMS asks KTS for the last timestamp, then probes replica
	// positions until one carries it. With all replicas fresh it stops
	// after ONE probe (Theorem 1: E[probes] < 1/pt).
	got, err := net.Get(ctx, "motd")
	if err != nil {
		log.Fatalf("retrieve: %v", err)
	}
	fmt.Printf("retrieve: %q\n", got.Data)
	fmt.Printf("          current=%v ts=%v probed=%d of 10 replicas, %d msgs, %s\n\n",
		got.Current(), got.TS, got.Probed, got.Msgs, got.Elapsed.Round(time.Millisecond))

	// Consistency is a per-read knob: an Eventual read takes the first
	// reachable replica and skips the KTS round trip entirely — the
	// cheapest read there is, for traffic that tolerates a little
	// staleness. Result.Currency reports what the read could claim.
	fast, err := net.Get(ctx, "motd", dcdht.WithConsistency(dcdht.Eventual))
	if err != nil {
		log.Fatalf("eventual retrieve: %v", err)
	}
	fmt.Printf("eventual: %q\n", fast.Data)
	fmt.Printf("          currency=%v, %d msgs vs %d for the proven read, %s vs %s\n\n",
		fast.Currency, fast.Msgs, got.Msgs,
		fast.Elapsed.Round(time.Millisecond), got.Elapsed.Round(time.Millisecond))

	// A Session gives read-your-writes and monotonic reads cheaply: it
	// tracks a per-key floor (the session's own writes and reads) and
	// satisfies reads from the first replica meeting it — typically one
	// probe and zero KTS messages.
	session := net.NewSession()
	if _, err := session.Put(ctx, "profile", []byte("theme=dark")); err != nil {
		log.Fatalf("session put: %v", err)
	}
	mine, err := session.Get(ctx, "profile")
	if err != nil {
		log.Fatalf("session get: %v", err)
	}
	fmt.Printf("session : %q currency=%v (guaranteed at least as fresh as our write, %d msgs)\n\n",
		mine.Data, mine.Currency, mine.Msgs)

	// The BRICKS baseline must fetch every replica and pick the highest
	// version — and still cannot PROVE the result is current. Same code
	// path; the algorithm is just an option.
	if _, err := net.Put(ctx, "motd-brk", []byte("same data, baseline protocol"), dcdht.WithAlgorithm(dcdht.AlgBRK)); err != nil {
		log.Fatalf("brk insert: %v", err)
	}
	brk, err := net.Get(ctx, "motd-brk", dcdht.WithAlgorithm(dcdht.AlgBRK))
	if err != nil {
		log.Fatalf("brk retrieve: %v", err)
	}
	fmt.Printf("baseline: BRK probed %d replicas, %d msgs, %s — currency provable: %v\n",
		brk.Probed, brk.Msgs, brk.Elapsed.Round(time.Millisecond), brk.Current())

	fmt.Printf("\nUMS answered with %d probes and %d msgs; BRK needed %d probes and %d msgs.\n",
		got.Probed, got.Msgs, brk.Probed, brk.Msgs)
}
