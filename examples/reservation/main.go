// Reservation management under failures — the paper's hardest setting
// (§5.4): peers crash without handing anything off, losing replicas and
// timestamp counters. UMS still returns the latest reservation state
// whenever any current replica survives, and says so explicitly when it
// can only offer the most recent available state.
//
//	go run ./examples/reservation
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	dcdht "repro"
)

func main() {
	net := dcdht.NewSimNetwork(120, dcdht.SimConfig{
		Seed:        5,
		Replicas:    10,
		FailureRate: dcdht.Float(1.0), // every departure in this demo is a crash
	})
	defer net.Close()
	ctx := context.Background()
	seat := dcdht.Key("reservation:flight-AF123:seat-12A")

	states := []string{
		"HELD by traveler-1 until 18:00",
		"CONFIRMED traveler-1 (paid)",
		"RELEASED (payment window expired)",
		"CONFIRMED traveler-2 (paid)",
	}
	fmt.Println("reservation state machine under crash failures:")
	for i, state := range states {
		r, err := net.Put(ctx, seat, []byte(state))
		if err != nil {
			log.Fatalf("transition %d: %v", i+1, err)
		}
		fmt.Printf("  ts=%v %s\n", r.TS, state)

		// Crash a couple of peers between transitions — replicas and
		// counters on them are gone for good.
		net.ChurnOne()
		net.ChurnOne()
		net.Advance(5 * time.Minute)
	}

	got, err := net.Get(ctx, seat)
	switch {
	case err == nil:
		fmt.Printf("\nfinal state: %q (provably current, ts=%v, %d probes)\n",
			got.Data, got.TS, got.Probed)
	case dcdht.IsNoCurrent(err):
		// Honest degradation: the paper's Figure 2 returns the most
		// recent AVAILABLE replica and the caller knows it might be
		// stale — crucial for a reservation system, which can re-verify
		// instead of double-selling the seat.
		fmt.Printf("\nfinal state: %q — currency NOT provable (crashes ate the current replicas)\n", got.Data)
	default:
		log.Fatalf("final read: %v", err)
	}
	if string(got.Data) != states[len(states)-1] {
		log.Fatalf("lost the newest reservation state: %q", got.Data)
	}

	// The analysis tells operators how much replication buys: with pt
	// the probability a replica is current and available, a retrieve
	// probes fewer than 1/pt replicas in expectation.
	fmt.Println("\ncapacity planning with the paper's closed forms:")
	for _, pt := range []float64{0.2, 0.35, 0.5} {
		fmt.Printf("  pt=%.2f: E[probes] = %.2f (bound %.2f), indirect-init success with 10 replicas = %.1f%%\n",
			pt, dcdht.ExpectedRetrievals(pt, 10), 1/pt, 100*dcdht.IndirectSuccessProb(pt, 10))
	}
	fmt.Printf("  replicas needed for 99%% indirect-init success at pt=0.3: %d (paper says 13)\n",
		dcdht.ReplicasForSuccess(0.3, 0.99))
}
