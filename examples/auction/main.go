// Cooperative auction management — another application the paper calls
// out (§1). Concurrent bids race to update one key; KTS's monotonic
// per-key timestamps ensure exactly one bid is the current one and every
// reader agrees which. The same race on the BRICKS baseline shows why
// version numbers are not enough: concurrent updates can collide on a
// version, leaving currency undecidable.
//
//	go run ./examples/auction
package main

import (
	"context"
	"fmt"
	"log"

	dcdht "repro"
)

func main() {
	net := dcdht.NewSimNetwork(80, dcdht.SimConfig{Seed: 99, Replicas: 10})
	defer net.Close()
	ctx := context.Background()
	lot := dcdht.Key("auction:lot-17")

	if _, err := net.Put(ctx, lot, []byte("opening price: 100")); err != nil {
		log.Fatalf("open auction: %v", err)
	}

	fmt.Println("five bidders race (each insert is issued from a different random peer):")
	bids := []string{"110 (dora)", "120 (erik)", "125 (fang)", "140 (gita)", "150 (hugo)"}
	var lastTS dcdht.Timestamp
	for _, bid := range bids {
		r, err := net.Put(ctx, lot, []byte("bid: "+bid))
		if err != nil {
			log.Fatalf("bid %s: %v", bid, err)
		}
		if !lastTS.Less(r.TS) {
			log.Fatalf("MONOTONICITY VIOLATION: %v after %v", r.TS, lastTS)
		}
		lastTS = r.TS
		fmt.Printf("  ts=%v %s\n", r.TS, bid)
	}

	got, err := net.Get(ctx, lot)
	if err != nil {
		log.Fatalf("read winning bid: %v", err)
	}
	fmt.Printf("\nwinning entry: %q (ts=%v, provably current=%v)\n", got.Data, got.TS, got.Current())
	if string(got.Data) != "bid: 150 (hugo)" {
		log.Fatalf("wrong winner: %q", got.Data)
	}

	// KTS's last_ts lets an auditor verify currency without fetching
	// anything else: the returned replica's timestamp IS the last one
	// generated for the key.
	ts, err := net.LastTS(ctx, lot)
	if err != nil {
		log.Fatalf("audit: %v", err)
	}
	fmt.Printf("audit: KTS last_ts=%v matches the retrieved replica: %v\n", ts, ts == got.TS)

	fmt.Println("\nsame auction on the BRICKS baseline (version numbers, read-all):")
	brkOpt := dcdht.WithAlgorithm(dcdht.AlgBRK)
	if _, err := net.Put(ctx, lot, []byte("opening price: 100"), brkOpt); err != nil {
		log.Fatalf("brk open: %v", err)
	}
	for _, bid := range bids[:2] {
		if _, err := net.Put(ctx, lot, []byte("bid: "+bid), brkOpt); err != nil {
			log.Fatalf("brk bid: %v", err)
		}
	}
	brk, err := net.Get(ctx, lot, brkOpt)
	if err != nil {
		log.Fatalf("brk read: %v", err)
	}
	fmt.Printf("  read %q with version %v after probing %d replicas —\n", brk.Data, brk.TS, brk.Probed)
	fmt.Println("  and no way to prove it is the latest bid (concurrent bids can share a version).")
}
