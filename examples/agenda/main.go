// Agenda management — one of the paper's motivating applications (§1):
// several assistants update a shared meeting slot while peers churn.
// Reading a stale agenda means a double-booked room; UMS guarantees the
// retrieved entry is the latest one.
//
//	go run ./examples/agenda
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	dcdht "repro"
)

func main() {
	net := dcdht.NewSimNetwork(100, dcdht.SimConfig{Seed: 7, Replicas: 10})
	defer net.Close()
	ctx := context.Background()
	slot := dcdht.Key("agenda:room-42:monday-10h")

	fmt.Println("A shared agenda slot, edited by three assistants while peers churn:")
	edits := []string{
		"design review (booked by alice)",
		"design review MOVED to 11h (bob)",
		"CANCELLED — merged into thursday sync (carol)",
	}
	for i, text := range edits {
		r, err := net.Put(ctx, slot, []byte(text))
		if err != nil {
			log.Fatalf("edit %d: %v", i+1, err)
		}
		fmt.Printf("  edit %d: ts=%v %q\n", i+1, r.TS, text)

		// Between edits the network lives its life: peers leave, fail
		// and are replaced; time passes.
		for j := 0; j < 5; j++ {
			net.ChurnOne()
		}
		net.Advance(10 * time.Minute)
	}

	// Whoever checks the agenda — from any peer, after any churn — must
	// see the cancellation, not a ghost meeting.
	got, err := net.Get(ctx, slot)
	switch {
	case err == nil:
		fmt.Printf("\nagenda check: %q\n", got.Data)
		fmt.Printf("  provably current (ts=%v), %d of 10 replicas probed, %s\n",
			got.TS, got.Probed, got.Elapsed.Round(time.Millisecond))
	case dcdht.IsNoCurrent(err):
		fmt.Printf("\nagenda check: %q\n", got.Data)
		fmt.Println("  WARNING: currency not provable right now (most recent available returned)")
	default:
		log.Fatalf("agenda check: %v", err)
	}

	if string(got.Data) != edits[len(edits)-1] {
		log.Fatalf("STALE AGENDA: got %q", got.Data)
	}
	fmt.Println("\nno double booking: the last edit won despite churn.")
}
