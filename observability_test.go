package dcdht

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

// TestNodeMetricsEndpoint drives real operations through a live TCP
// node and asserts the observability surface end to end: /metrics
// serves a Prometheus exposition carrying the core families with
// non-zero op activity, and /debug/status reports the node's ring
// position, holdings and recovery summary.
func TestNodeMetricsEndpoint(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	n := startDurable(t, "127.0.0.1:0", t.TempDir())
	n.CreateRing()
	defer n.Leave()

	srv, err := n.ServeMetrics("127.0.0.1:0")
	if err != nil {
		t.Fatalf("ServeMetrics: %v", err)
	}
	defer srv.Close()

	if _, err := n.Put(ctx, "obs-key", []byte("v1")); err != nil {
		t.Fatalf("put: %v", err)
	}
	if _, err := n.Get(ctx, "obs-key"); err != nil {
		t.Fatalf("get: %v", err)
	}

	resp, err := http.Get("http://" + srv.Addr() + "/metrics")
	if err != nil {
		t.Fatalf("scrape: %v", err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("read exposition: %v", err)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("unexpected content type %q", ct)
	}
	text := string(body)
	for _, family := range []string{
		"dcdht_op_duration_seconds",
		"dcdht_op_verdicts_total",
		"dcdht_op_msgs_total",
		"dcdht_kts_grants_total",
		"dcdht_kts_cache_hits_total",
		"dcdht_chord_lookup_hops",
		"dcdht_store_wal_appends_total",
		"dcdht_net_calls_total",
	} {
		if !strings.Contains(text, "# TYPE "+family) {
			t.Errorf("exposition missing family %s", family)
		}
	}
	// Real activity must show: one put and one get went through UMS.
	if !strings.Contains(text, `dcdht_op_duration_seconds_count{alg="ums",level="",op="put"} 1`) {
		t.Errorf("put latency not recorded:\n%s", grepLines(text, "dcdht_op_duration_seconds_count"))
	}
	if !strings.Contains(text, `dcdht_op_duration_seconds_count{alg="ums",level="current",op="get"} 1`) {
		t.Errorf("get latency not recorded:\n%s", grepLines(text, "dcdht_op_duration_seconds_count"))
	}
	if !strings.Contains(text, `dcdht_kts_grants_total 1`) {
		t.Errorf("KTS grant not counted:\n%s", grepLines(text, "dcdht_kts_grants_total"))
	}
	if !strings.Contains(text, `dcdht_op_verdicts_total{level="current",verdict="proven"} 1`) {
		t.Errorf("currency verdict not counted:\n%s", grepLines(text, "dcdht_op_verdicts_total"))
	}

	// WAL activity: FsyncAlways means every append fsynced.
	if strings.Contains(text, "dcdht_store_wal_appends_total 0") {
		t.Errorf("WAL appends stayed zero:\n%s", grepLines(text, "dcdht_store_wal"))
	}

	// /debug/status: ring position, holdings, recovery summary.
	resp, err = http.Get("http://" + srv.Addr() + "/debug/status")
	if err != nil {
		t.Fatalf("status: %v", err)
	}
	var st NodeStatus
	err = json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("decode status: %v", err)
	}
	if st.Addr != n.Addr() {
		t.Errorf("status addr %q, node addr %q", st.Addr, n.Addr())
	}
	if st.ID == "" {
		t.Error("status missing ring ID")
	}
	if st.Replicas == 0 {
		t.Error("status reports no hosted replicas after a put")
	}
	if st.Counters == 0 {
		t.Error("status reports no KTS counters after a put")
	}
	if !st.Durable || st.Recovery == nil {
		t.Errorf("durable node must report a recovery summary: %+v", st)
	}

	// /debug/pprof: the profiling endpoints ride on the same mux. The
	// index must list profiles and a heap snapshot must download.
	resp, err = http.Get("http://" + srv.Addr() + "/debug/pprof/")
	if err != nil {
		t.Fatalf("pprof index: %v", err)
	}
	body, err = io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof index: status %d err %v", resp.StatusCode, err)
	}
	if !strings.Contains(string(body), "goroutine") {
		t.Error("pprof index does not list the goroutine profile")
	}
	resp, err = http.Get("http://" + srv.Addr() + "/debug/pprof/heap")
	if err != nil {
		t.Fatalf("pprof heap: %v", err)
	}
	heap, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK || len(heap) == 0 {
		t.Fatalf("pprof heap: status %d, %d bytes, err %v", resp.StatusCode, len(heap), err)
	}
}

// grepLines extracts the exposition lines containing substr, for
// focused failure messages.
func grepLines(text, substr string) string {
	var out []string
	for _, line := range strings.Split(text, "\n") {
		if strings.Contains(line, substr) {
			out = append(out, line)
		}
	}
	return strings.Join(out, "\n")
}
