package dcdht_test

import (
	"fmt"

	dcdht "repro"
)

// Example shows the core loop: insert, update, retrieve-current on a
// simulated 32-peer network.
func Example() {
	net := dcdht.NewSimNetwork(32, dcdht.SimConfig{Replicas: 5, Seed: 7})
	defer net.Close()

	net.Insert("motd", []byte("v1"))
	net.Insert("motd", []byte("v2"))

	r, err := net.Retrieve("motd")
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("%s current=%v ts=%v probed=%d\n", r.Data, r.Current, r.TS, r.Probed)
	// Output: v2 current=true ts=ts(2) probed=1
}

// ExampleExpectedRetrievals reproduces the paper's §3.3 example: with
// 35% of replicas current and available, UMS retrieves fewer than 3
// replicas in expectation.
func ExampleExpectedRetrievals() {
	e := dcdht.ExpectedRetrievals(0.35, 10)
	fmt.Printf("E(X) = %.2f (< 3: %v)\n", e, e < 3)
	// Output: E(X) = 2.82 (< 3: true)
}

// ExampleReplicasForSuccess reproduces the §4.2.2 example: 13 replicas
// push the indirect algorithm's success probability above 99% at
// pt = 0.3.
func ExampleReplicasForSuccess() {
	n := dcdht.ReplicasForSuccess(0.3, 0.99)
	fmt.Printf("%d replicas, ps = %.4f\n", n, dcdht.IndirectSuccessProb(0.3, n))
	// Output: 13 replicas, ps = 0.9903
}

// ExampleSimNetwork_ChurnOne shows that data survives peer churn: every
// departure is replaced by a fresh joiner, and UMS still retrieves the
// latest value.
func ExampleSimNetwork_ChurnOne() {
	net := dcdht.NewSimNetwork(40, dcdht.SimConfig{Replicas: 8, Seed: 11})
	defer net.Close()

	net.Insert("doc", []byte("original"))
	for i := 0; i < 5; i++ {
		net.ChurnOne()
	}
	net.Insert("doc", []byte("revised"))

	r, err := net.Retrieve("doc")
	fmt.Printf("%s err=%v peers=%d\n", r.Data, err, net.Peers())
	// Output: revised err=<nil> peers=40
}
