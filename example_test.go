package dcdht_test

import (
	"context"
	"errors"
	"fmt"
	"time"

	dcdht "repro"
)

// Example shows the core loop: insert, update, retrieve-current on a
// simulated 32-peer network.
func Example() {
	net := dcdht.NewSimNetwork(32, dcdht.SimConfig{Replicas: 5, Seed: 7})
	defer net.Close()

	ctx := context.Background()
	net.Put(ctx, "motd", []byte("v1"))
	net.Put(ctx, "motd", []byte("v2"))

	r, err := net.Get(ctx, "motd")
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("%s current=%v ts=%v probed=%d\n", r.Data, r.Current(), r.TS, r.Probed)
	// Output: v2 current=true ts=ts(2) probed=1
}

// ExampleClient is the canonical usage of the deployment-agnostic
// Client interface: the same function serves a simulated network or a
// real TCP node, takes a per-request deadline through the context, and
// selects the protocol per operation.
func ExampleClient() {
	net := dcdht.NewSimNetwork(32, dcdht.SimConfig{Replicas: 5, Seed: 7})
	defer net.Close()

	// Everything below this line only sees the Client interface — pass
	// a *dcdht.Node instead and it drives a real TCP ring.
	var c dcdht.Client = net

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	if _, err := c.Put(ctx, "greeting", []byte("hello")); err != nil {
		fmt.Println("put:", err)
		return
	}
	r, err := c.Get(ctx, "greeting")
	if err != nil && !dcdht.IsNoCurrent(err) {
		fmt.Println("get:", err)
		return
	}
	ts, _ := c.LastTS(ctx, "greeting")
	fmt.Printf("%s current=%v audit=%v\n", r.Data, r.Current(), ts == r.TS)

	// The BRICKS baseline runs through the same code path: the
	// algorithm is an option, not another method set.
	c.Put(ctx, "greeting-brk", []byte("hi"), dcdht.WithAlgorithm(dcdht.AlgBRK))
	brk, _ := c.Get(ctx, "greeting-brk", dcdht.WithAlgorithm(dcdht.AlgBRK))
	fmt.Printf("baseline probed %d replicas, provable currency: %v\n", brk.Probed, brk.Current())
	// Output:
	// hello current=true audit=true
	// baseline probed 5 replicas, provable currency: false
}

// ExampleClient_getMulti shows the batched reads: keys fan out
// concurrently and each key's outcome is isolated — a missing key
// reports its own error without failing its siblings.
func ExampleClient_getMulti() {
	net := dcdht.NewSimNetwork(32, dcdht.SimConfig{Replicas: 5, Seed: 7})
	defer net.Close()
	ctx := context.Background()

	net.PutMulti(ctx, []dcdht.KV{
		{Key: "a", Data: []byte("alpha")},
		{Key: "b", Data: []byte("beta")},
	})
	results, _ := net.GetMulti(ctx, []dcdht.Key{"a", "missing", "b"})
	for _, r := range results {
		switch {
		case r.Err == nil:
			fmt.Printf("%s = %s\n", r.Key, r.Data)
		case errors.Is(r.Err, dcdht.ErrNotFound):
			fmt.Printf("%s not found\n", r.Key)
		}
	}
	// Output:
	// a = alpha
	// missing not found
	// b = beta
}

// ExampleWithConsistency shows the consistency spectrum on one key: a
// provably-current read (the default), an Eventual read that takes the
// first reachable replica with no KTS round trip, and a Bounded read
// served from the writer's cached last-ts floor. The relaxed levels
// cost strictly fewer messages; Result.Currency says what each read
// could actually claim.
func ExampleWithConsistency() {
	net := dcdht.NewSimNetwork(32, dcdht.SimConfig{Replicas: 5, Seed: 7})
	defer net.Close()
	ctx := context.Background()

	net.Put(ctx, "motd", []byte("v1"), dcdht.WithIssuer(1))

	cur, _ := net.Get(ctx, "motd")
	ev, _ := net.Get(ctx, "motd", dcdht.WithConsistency(dcdht.Eventual))
	bd, _ := net.Get(ctx, "motd", dcdht.WithIssuer(1), dcdht.WithConsistency(dcdht.Bounded(time.Minute)))

	fmt.Printf("current : %s %v\n", cur.Data, cur.Currency)
	fmt.Printf("eventual: %s %v cheaper=%v\n", ev.Data, ev.Currency, ev.Msgs < cur.Msgs)
	fmt.Printf("bounded : %s %v cheaper=%v\n", bd.Data, bd.Currency, bd.Msgs < cur.Msgs)
	// Output:
	// current : v1 proven
	// eventual: v1 unknown cheaper=true
	// bounded : v1 within-bound cheaper=true
}

// ExampleSession shows session guarantees: after the session's own
// write, its reads are guaranteed at least as fresh (read-your-writes)
// and never travel backwards (monotonic reads), satisfied directly from
// the session's per-key floor — no KTS round trip.
func ExampleSession() {
	net := dcdht.NewSimNetwork(32, dcdht.SimConfig{Replicas: 5, Seed: 7})
	defer net.Close()
	ctx := context.Background()

	s := net.NewSession()
	w, _ := s.Put(ctx, "cart", []byte("3 items"))
	r, _ := s.Get(ctx, "cart")

	floor, _ := s.Floor("cart")
	fmt.Printf("%s %v\n", r.Data, r.Currency)
	fmt.Printf("read-your-writes=%v floor=%v\n", !r.TS.Less(w.TS), floor == w.TS)
	// Output:
	// 3 items session-floor
	// read-your-writes=true floor=true
}

// ExampleExpectedRetrievals reproduces the paper's §3.3 example: with
// 35% of replicas current and available, UMS retrieves fewer than 3
// replicas in expectation.
func ExampleExpectedRetrievals() {
	e := dcdht.ExpectedRetrievals(0.35, 10)
	fmt.Printf("E(X) = %.2f (< 3: %v)\n", e, e < 3)
	// Output: E(X) = 2.82 (< 3: true)
}

// ExampleReplicasForSuccess reproduces the §4.2.2 example: 13 replicas
// push the indirect algorithm's success probability above 99% at
// pt = 0.3.
func ExampleReplicasForSuccess() {
	n := dcdht.ReplicasForSuccess(0.3, 0.99)
	fmt.Printf("%d replicas, ps = %.4f\n", n, dcdht.IndirectSuccessProb(0.3, n))
	// Output: 13 replicas, ps = 0.9903
}

// ExampleSimNetwork_RepairStats enables the replica-maintenance
// subsystem: a periodic anti-entropy sweep re-pushes current values to
// the replica set (healing replicas lost to crashes) and read-repair
// refreshes stale or missing replicas observed by retrieves. Both are
// monotone (PutIfNewer) and, under simulation, fully deterministic per
// seed.
func ExampleSimNetwork_RepairStats() {
	net := dcdht.NewSimNetwork(40, dcdht.SimConfig{
		Replicas:    5,
		Seed:        11,
		FailureRate: dcdht.Float(1.0), // every departure crashes (replicas lost)
		RepairEvery: 30 * time.Second, // anti-entropy sweep period
		ReadRepair:  true,             // refresh stale replicas seen by reads
	})
	defer net.Close()

	ctx := context.Background()
	net.Put(ctx, "doc", []byte("v1"))
	for i := 0; i < 8; i++ {
		net.ChurnOne()
		net.Advance(time.Minute) // sweeps run in virtual time
	}

	r, err := net.Get(ctx, "doc")
	st := net.RepairStats()
	fmt.Printf("data=%s err=%v current=%v rounds>0=%v\n",
		r.Data, err, r.Current(), st.Rounds > 0)
	// Output: data=v1 err=<nil> current=true rounds>0=true
}

// ExampleRunWorkload drives a reproducible Zipf-skewed, read-heavy
// workload against a simulated network: the run executes in virtual
// time and replays bit-identically per seed, reporting per-op-type
// latency quantiles from log-bucketed histograms.
func ExampleRunWorkload() {
	net := dcdht.NewSimNetwork(40, dcdht.SimConfig{Seed: 11})
	defer net.Close()

	rep, err := dcdht.RunWorkload(context.Background(), net, dcdht.WorkloadSpec{
		Pattern:     dcdht.WorkloadZipf,
		ReadRatio:   dcdht.Float(0.9), // 90% reads, 10% writes
		Keys:        12,
		Ops:         40,
		Concurrency: 4,
	})
	if err != nil {
		fmt.Println("workload:", err)
		return
	}
	fmt.Printf("ops=%d kinds-sum=%v quantiles-monotone=%v throughput>0=%v\n",
		rep.Ops, rep.Reads.Ops+rep.Writes.Ops == rep.Ops,
		rep.Reads.P50Ms <= rep.Reads.P99Ms, rep.OpsPerSec > 0)
	// Output: ops=40 kinds-sum=true quantiles-monotone=true throughput>0=true
}

// ExampleSimNetwork_ChurnOne shows that data survives peer churn: every
// departure is replaced by a fresh joiner, and UMS still retrieves the
// latest value.
func ExampleSimNetwork_ChurnOne() {
	net := dcdht.NewSimNetwork(40, dcdht.SimConfig{Replicas: 8, Seed: 11})
	defer net.Close()

	ctx := context.Background()
	net.Put(ctx, "doc", []byte("original"))
	for i := 0; i < 5; i++ {
		net.ChurnOne()
	}
	net.Put(ctx, "doc", []byte("revised"))

	r, err := net.Get(ctx, "doc")
	fmt.Printf("%s err=%v peers=%d\n", r.Data, err, net.Peers())
	// Output: revised err=<nil> peers=40
}
