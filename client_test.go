package dcdht

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"
)

// newTestRing starts a small TCP ring for client API tests and returns
// the nodes plus a cleanup function.
func newTestRing(t *testing.T, peers int) []*Node {
	t.Helper()
	cfg := NodeConfig{
		Replicas:       5,
		Seed:           11,
		StabilizeEvery: 100 * time.Millisecond,
		GraceDelay:     50 * time.Millisecond,
	}
	first, err := StartNode("127.0.0.1:0", cfg)
	if err != nil {
		t.Fatal(err)
	}
	first.CreateRing()
	nodes := []*Node{first}
	for i := 1; i < peers; i++ {
		nd, err := StartNode("127.0.0.1:0", cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := nd.Join(first.Addr()); err != nil {
			t.Fatalf("join %d: %v", i, err)
		}
		nodes = append(nodes, nd)
	}
	t.Cleanup(func() {
		for _, nd := range nodes {
			nd.Close()
		}
	})
	time.Sleep(500 * time.Millisecond) // a few stabilization rounds
	return nodes
}

// expiredCtx returns a context whose deadline has already passed.
func expiredCtx(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	t.Cleanup(cancel)
	return ctx
}

func TestSimExpiredDeadlineFailsPromptly(t *testing.T) {
	n := NewSimNetwork(24, SimConfig{Replicas: 5, Seed: 21})
	defer n.Close()
	if _, err := n.Put(context.Background(), "k", []byte("v")); err != nil {
		t.Fatal(err)
	}

	for name, op := range map[string]func(context.Context) error{
		"get":    func(ctx context.Context) error { _, err := n.Get(ctx, "k"); return err },
		"put":    func(ctx context.Context) error { _, err := n.Put(ctx, "k", []byte("v2")); return err },
		"lastts": func(ctx context.Context) error { _, err := n.LastTS(ctx, "k"); return err },
	} {
		start := time.Now()
		err := op(expiredCtx(t))
		if err == nil {
			t.Fatalf("%s: expected error from expired deadline", name)
		}
		if !errors.Is(err, ErrTimeout) || !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("%s: err = %v, want both ErrTimeout and context.DeadlineExceeded", name, err)
		}
		if wall := time.Since(start); wall > time.Second {
			t.Fatalf("%s: expired deadline took %v, want prompt failure", name, wall)
		}
	}
}

func TestSimCanceledContext(t *testing.T) {
	n := NewSimNetwork(24, SimConfig{Replicas: 5, Seed: 22})
	defer n.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := n.Get(ctx, "k"); !errors.Is(err, context.Canceled) {
		t.Fatalf("get with canceled ctx: err = %v, want context.Canceled", err)
	}
	if _, err := n.PutMulti(ctx, []KV{{Key: "a", Data: []byte("1")}}); !errors.Is(err, context.Canceled) {
		t.Fatalf("putmulti with canceled ctx: err = %v, want context.Canceled", err)
	}
}

func TestSimGetMultiFanOut(t *testing.T) {
	n := NewSimNetwork(32, SimConfig{Replicas: 5, Seed: 23})
	defer n.Close()
	ctx := context.Background()

	items := []KV{
		{Key: "multi-a", Data: []byte("va")},
		{Key: "multi-b", Data: []byte("vb")},
		{Key: "multi-c", Data: []byte("vc")},
	}
	puts, err := n.PutMulti(ctx, items)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range puts {
		if r.Key != items[i].Key {
			t.Fatalf("put result %d keyed %q, want %q", i, r.Key, items[i].Key)
		}
		if r.Err != nil {
			t.Fatalf("put %q: %v", r.Key, r.Err)
		}
		if r.Stored == 0 {
			t.Fatalf("put %q stored no replicas", r.Key)
		}
	}

	// One key of the batch was never inserted: its error must be
	// isolated and the sibling keys unaffected.
	keys := []Key{"multi-a", "ghost", "multi-b", "multi-c"}
	gets, err := n.GetMulti(ctx, keys)
	if err != nil {
		t.Fatal(err)
	}
	if len(gets) != len(keys) {
		t.Fatalf("got %d results for %d keys", len(gets), len(keys))
	}
	for i, r := range gets {
		if r.Key != keys[i] {
			t.Fatalf("result %d keyed %q, want %q", i, r.Key, keys[i])
		}
	}
	if !errors.Is(gets[1].Err, ErrNotFound) {
		t.Fatalf("ghost err = %v, want ErrNotFound", gets[1].Err)
	}
	for _, i := range []int{0, 2, 3} {
		if gets[i].Err != nil {
			t.Fatalf("%q: %v (ghost error leaked into sibling)", gets[i].Key, gets[i].Err)
		}
		want := "v" + string(gets[i].Key[len(gets[i].Key)-1])
		if string(gets[i].Data) != want {
			t.Fatalf("%q = %q, want %q", gets[i].Key, gets[i].Data, want)
		}
	}
}

func TestSimBaselineOption(t *testing.T) {
	n := NewSimNetwork(24, SimConfig{Replicas: 5, Seed: 24})
	defer n.Close()
	ctx := context.Background()
	if _, err := n.Put(ctx, "b", []byte("v1"), WithAlgorithm(AlgBRK)); err != nil {
		t.Fatal(err)
	}
	r, err := n.Get(ctx, "b", WithAlgorithm(AlgBRK))
	if err != nil {
		t.Fatal(err)
	}
	if string(r.Data) != "v1" {
		t.Fatalf("got %q", r.Data)
	}
	if r.Probed != 5 {
		t.Fatalf("BRK probed %d, want all 5 replicas", r.Probed)
	}
}

func TestSimWithIssuerPinsPeer(t *testing.T) {
	n := NewSimNetwork(24, SimConfig{Replicas: 5, Seed: 25})
	defer n.Close()
	ctx := context.Background()
	if _, err := n.Put(ctx, "pinned", []byte("v"), WithIssuer(3)); err != nil {
		t.Fatal(err)
	}
	r, err := n.Get(ctx, "pinned", WithIssuer(3))
	if err != nil {
		t.Fatal(err)
	}
	if string(r.Data) != "v" {
		t.Fatalf("got %q", r.Data)
	}
}

func TestTCPExpiredDeadlineFailsPromptly(t *testing.T) {
	if testing.Short() {
		t.Skip("tcp integration test")
	}
	nodes := newTestRing(t, 4)
	ctx := context.Background()
	if _, err := nodes[0].Put(ctx, "tcp-ctx", []byte("v")); err != nil {
		t.Fatal(err)
	}

	for name, op := range map[string]func(context.Context) error{
		"get":    func(ctx context.Context) error { _, err := nodes[1].Get(ctx, "tcp-ctx"); return err },
		"put":    func(ctx context.Context) error { _, err := nodes[2].Put(ctx, "tcp-ctx", []byte("v2")); return err },
		"lastts": func(ctx context.Context) error { _, err := nodes[3].LastTS(ctx, "tcp-ctx"); return err },
	} {
		start := time.Now()
		err := op(expiredCtx(t))
		if err == nil {
			t.Fatalf("%s: expected error from expired deadline", name)
		}
		if !errors.Is(err, ErrTimeout) || !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("%s: err = %v, want both ErrTimeout and context.DeadlineExceeded", name, err)
		}
		if wall := time.Since(start); wall > time.Second {
			t.Fatalf("%s: expired deadline took %v, want prompt failure", name, wall)
		}
	}
}

func TestTCPCanceledContextStopsOperation(t *testing.T) {
	if testing.Short() {
		t.Skip("tcp integration test")
	}
	nodes := newTestRing(t, 4)
	if _, err := nodes[0].Put(context.Background(), "tcp-cancel", []byte("v")); err != nil {
		t.Fatal(err)
	}
	// Cancel shortly after issuing: the operation must come back well
	// before the default RPC patience would let it linger.
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	for time.Since(start) < 2*time.Second {
		if _, err := nodes[1].Get(ctx, "tcp-cancel"); err != nil {
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("err = %v, want context.Canceled", err)
			}
			return
		}
	}
	t.Fatal("cancellation never surfaced")
}

func TestTCPGetMultiFanOut(t *testing.T) {
	if testing.Short() {
		t.Skip("tcp integration test")
	}
	nodes := newTestRing(t, 4)
	ctx := context.Background()

	items := make([]KV, 4)
	for i := range items {
		items[i] = KV{Key: Key(fmt.Sprintf("fan-%d", i)), Data: []byte(fmt.Sprintf("v%d", i))}
	}
	puts, err := nodes[0].PutMulti(ctx, items)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range puts {
		if r.Err != nil {
			t.Fatalf("put %q: %v", r.Key, r.Err)
		}
	}
	keys := []Key{"fan-0", "fan-1", "tcp-ghost", "fan-2", "fan-3"}
	gets, err := nodes[2].GetMulti(ctx, keys)
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(gets[2].Err, ErrNotFound) {
		t.Fatalf("ghost err = %v, want ErrNotFound", gets[2].Err)
	}
	for _, i := range []int{0, 1, 3, 4} {
		if gets[i].Err != nil {
			t.Fatalf("%q: %v", gets[i].Key, gets[i].Err)
		}
		if len(gets[i].Data) == 0 {
			t.Fatalf("%q returned no data", gets[i].Key)
		}
	}
}
