package dcdht

import (
	"context"
	"fmt"
	"testing"
	"time"
)

// churnOutcome captures everything observable about one simulated churn
// workload, so runs can be compared for quality (currency) and for
// bit-identical determinism (message and event counts).
type churnOutcome struct {
	current  int
	stale    int
	failed   int
	mismatch int // retrieves whose data was not the latest written payload
	regress  int // retrieves whose timestamp exceeded last_ts (impossible unless a repair regressed state)
	msgs     uint64
	events   uint64
	repair   RepairStats
}

// runChurnWorkload drives one SimNetwork through a sustained ChurnOne
// load: seed the working set, churn, update half-way (so stale data
// exists to regress to), churn more, then measure steady-state currency.
// Everything runs in virtual time off the config's seed, so two calls
// with the same config must be bit-identical.
func runChurnWorkload(t *testing.T, cfg SimConfig) churnOutcome {
	t.Helper()
	const keys = 12
	ctx := context.Background()
	n := NewSimNetwork(40, cfg)
	defer n.Close()

	payload := func(i, gen int) []byte { return []byte(fmt.Sprintf("k%d-gen%d", i, gen)) }
	for i := 0; i < keys; i++ {
		if _, err := n.Put(ctx, Key(fmt.Sprintf("k%d", i)), payload(i, 0)); err != nil {
			t.Fatalf("seed put k%d: %v", i, err)
		}
	}
	// Churn with interleaved reads shortly after each event — close
	// enough to observe the damage, which feeds read-repair when it is
	// enabled (the reads run identically, and harmlessly, when not).
	reads := 0
	churn := func(rounds int) {
		for r := 0; r < rounds; r++ {
			n.ChurnOne()
			n.Advance(10 * time.Second)
			for j := 0; j < 3; j++ {
				n.Get(ctx, Key(fmt.Sprintf("k%d", reads%keys)))
				reads++
			}
			n.Advance(50 * time.Second)
		}
	}
	churn(8)
	// Update every key so each has an old and a new version in play.
	for i := 0; i < keys; i++ {
		if _, err := n.Put(ctx, Key(fmt.Sprintf("k%d", i)), payload(i, 1)); err != nil {
			t.Fatalf("update put k%d: %v", i, err)
		}
	}
	churn(28)
	// Let in-flight maintenance settle before measuring steady state.
	n.Advance(2 * time.Minute)

	var out churnOutcome
	for i := 0; i < keys; i++ {
		k := Key(fmt.Sprintf("k%d", i))
		last, lerr := n.LastTS(ctx, k)
		r, err := n.Get(ctx, k)
		switch {
		case err == nil && r.Current():
			out.current++
			if string(r.Data) != string(payload(i, 1)) {
				out.mismatch++
			}
		case err == nil || IsNoCurrent(err):
			out.stale++
		default:
			out.failed++
		}
		// No replica may carry a timestamp past the last generated one —
		// PutIfNewer repairs can restore and advance, never invent.
		if lerr == nil && last.Less(r.TS) {
			out.regress++
		}
	}
	out.msgs = n.d.Net.TotalMessages()
	out.events = n.d.K.Events()
	out.repair = n.RepairStats()
	return out
}

// TestRepairImprovesCurrencyUnderChurn is the subsystem's acceptance
// test: on the same seeds and ChurnOne schedules, steady-state currency
// with maintenance enabled strictly exceeds maintenance-off, replays are
// bit-identical, and no repair ever pushed a replica past last_ts.
//
// One seed's outcome rides on a handful of keys, so the comparison
// aggregates four seeds; each individual run is still fully
// deterministic and compared against its own-seed counterpart's
// workload. (The aggregate was widened from two seeds when join-walk
// dead-hop exclusion made the maintenance-off runs healthier — fewer
// failed joins mean fewer failed queries even without repair, and the
// per-seed currency margins shrank accordingly.)
func TestRepairImprovesCurrencyUnderChurn(t *testing.T) {
	seeds := []int64{3, 4, 5, 6}
	configs := func(seed int64) (off, sweep, rrOnly, both SimConfig) {
		off = SimConfig{
			Replicas:    3,
			Seed:        seed,
			FailureRate: Float(1.0), // every departure crashes: replicas are really lost
		}
		sweep = off
		sweep.RepairEvery = 30 * time.Second
		rrOnly = off
		rrOnly.ReadRepair = true
		both = sweep
		both.ReadRepair = true
		return
	}

	var offSum, sweepSum, rrSum, bothSum int
	var sweepStats, rrStats, bothStats RepairStats
	for _, seed := range seeds {
		offCfg, sweepCfg, rrCfg, bothCfg := configs(seed)
		off := runChurnWorkload(t, offCfg)
		sweep := runChurnWorkload(t, sweepCfg)
		rrOnly := runChurnWorkload(t, rrCfg)
		both := runChurnWorkload(t, bothCfg)
		t.Logf("seed %d: off=%+v", seed, off)
		t.Logf("seed %d: sweep=%+v", seed, sweep)
		t.Logf("seed %d: rr-only=%+v", seed, rrOnly)
		t.Logf("seed %d: both=%+v", seed, both)

		if off.repair != (RepairStats{}) {
			t.Fatalf("seed %d: maintenance off but stats non-zero: %+v", seed, off.repair)
		}
		for name, o := range map[string]churnOutcome{"off": off, "sweep": sweep, "rr-only": rrOnly, "both": both} {
			if o.regress > 0 {
				t.Fatalf("seed %d %s: %d retrieves carried a timestamp past last_ts (a repair regressed state)", seed, name, o.regress)
			}
			if o.mismatch > 0 {
				t.Fatalf("seed %d %s: %d provably-current retrieves returned non-latest data", seed, name, o.mismatch)
			}
		}
		offSum += off.current
		sweepSum += sweep.current
		rrSum += rrOnly.current
		bothSum += both.current
		sweepStats.Add(sweep.repair)
		rrStats.Add(rrOnly.repair)
		bothStats.Add(both.repair)

		// Determinism: an identical config must replay bit-identically,
		// down to every message the network carried and every kernel
		// event — including all repair activity.
		if again := runChurnWorkload(t, bothCfg); again != both {
			t.Fatalf("seed %d replay diverged:\n first %+v\n again %+v", seed, both, again)
		}
	}

	if sweepStats.Rounds == 0 || sweepStats.Healed == 0 {
		t.Fatalf("sweep did no work: %+v", sweepStats)
	}
	if rrStats.ReadRepairs == 0 {
		t.Fatalf("read-repair did no work: %+v", rrStats)
	}
	if rrStats.Rounds != 0 {
		t.Fatalf("read-repair-only config ran sweep rounds: %+v", rrStats)
	}
	if sweepSum <= offSum {
		t.Fatalf("sweep currency %d does not exceed off %d", sweepSum, offSum)
	}
	if rrSum <= offSum {
		t.Fatalf("read-repair currency %d does not exceed off %d", rrSum, offSum)
	}
	if bothSum <= offSum {
		t.Fatalf("sweep+read-repair currency %d does not exceed off %d", bothSum, offSum)
	}
}
