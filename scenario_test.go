package dcdht

import (
	"context"
	"fmt"
	"reflect"
	"testing"
	"time"
)

// TestScenarioSplitHealKTSMonotone is the partition-semantics acceptance
// test: a 60/40 split with heal must leave KTS timestamping monotone —
// every post-heal insert draws a timestamp strictly past everything
// generated before the split — and the healed overlay must serve
// provably current retrieves from any issuer, which fails if the two
// sides were left as disjoint stabilized rings (the re-merge nudge is
// what makes it pass).
func TestScenarioSplitHealKTSMonotone(t *testing.T) {
	const keys = 5
	ctx := context.Background()
	// Inspection is on: inserts issued on the minority side during the
	// split can leave replicas stamped ahead of (or colliding with) the
	// merged responsible's counter — split-brain, the exact hazard
	// periodic inspection (§4.2.2) reconciles by raising counters to the
	// highest stored replica timestamp. Without it, post-heal currency
	// would stay broken until the counters caught up by accident.
	n := NewSimNetwork(24, SimConfig{Replicas: 3, Seed: 9, FailureRate: Float(0), Inspect: time.Minute})
	defer n.Close()

	key := func(i int) Key { return Key(fmt.Sprintf("sh%d", i)) }
	pre := make([]Timestamp, keys)
	for i := 0; i < keys; i++ {
		r, err := n.Put(ctx, key(i), []byte(fmt.Sprintf("pre-%d", i)))
		if err != nil {
			t.Fatalf("pre put %d: %v", i, err)
		}
		pre[i] = r.TS
	}

	sc := Scenario{Name: "split-heal-test", Events: []Event{
		{At: time.Minute, Kind: EventPartition, Groups: []float64{0.6, 0.4}},
		{At: 5 * time.Minute, Kind: EventHeal},
	}}
	if err := n.PlayScenario(sc); err != nil {
		t.Fatalf("PlayScenario: %v", err)
	}

	// Into the split: operations during the partition may fail, time out
	// or even observe split-brain timestamps — that is the regime the
	// scenario exists to expose; nothing here is asserted beyond "the
	// simulation keeps running".
	n.Advance(2 * time.Minute)
	for i := 0; i < keys; i++ {
		n.Put(ctx, key(i), []byte(fmt.Sprintf("during-%d", i)))
	}

	// Past the heal, then let stabilization and the re-merge nudges
	// converge the ring, and inspection reconcile any split-brain
	// counters against the stored replicas.
	n.Advance(15 * time.Minute)
	if !n.ScenarioDone() {
		t.Fatal("scenario events did not all apply")
	}
	tr, ok := n.ScenarioTrace()
	if !ok || len(tr.Applied) != 2 {
		t.Fatalf("trace = %+v, ok=%v, want the partition and the heal", tr, ok)
	}

	// Monotone through heal: a fresh insert must land strictly past
	// every pre-partition timestamp, and last_ts must agree.
	for i := 0; i < keys; i++ {
		payload := []byte(fmt.Sprintf("post-%d", i))
		r, err := n.Put(ctx, key(i), payload)
		if err != nil {
			t.Fatalf("post-heal put %d: %v", i, err)
		}
		if !pre[i].Less(r.TS) {
			t.Fatalf("key %d: post-heal ts %v not past pre-partition ts %v", i, r.TS, pre[i])
		}
		last, err := n.LastTS(ctx, key(i))
		if err != nil {
			t.Fatalf("post-heal last_ts %d: %v", i, err)
		}
		if last.Less(r.TS) {
			t.Fatalf("key %d: last_ts %v behind the insert's ts %v", i, last, r.TS)
		}
		// Any issuer on the healed overlay must find the current replica
		// — disjoint rings would leave ~40%% of issuers on a stale side.
		for probe := 0; probe < 3; probe++ {
			g, err := n.Get(ctx, key(i))
			if err != nil {
				t.Fatalf("post-heal get %d (probe %d): %v", i, probe, err)
			}
			if !g.Current() || string(g.Data) != string(payload) {
				t.Fatalf("post-heal get %d (probe %d): current=%v data=%q, want current %q",
					i, probe, g.Current(), g.Data, payload)
			}
		}
	}
}

// TestSimConfigScenarioReplaysBitIdentical plays a builtin scenario via
// SimConfig and asserts two same-seed networks replay it identically:
// the applied-event trace, every message the network carried, and every
// kernel event.
func TestSimConfigScenarioReplaysBitIdentical(t *testing.T) {
	run := func() (ScenarioTrace, uint64, uint64) {
		script, err := BuiltinScenario("churn-wave", 10*time.Minute)
		if err != nil {
			t.Fatalf("BuiltinScenario: %v", err)
		}
		n := NewSimNetwork(30, SimConfig{Replicas: 3, Seed: 21, Scenario: &script})
		defer n.Close()
		ctx := context.Background()
		for i := 0; i < 4; i++ {
			n.Put(ctx, Key(fmt.Sprintf("w%d", i)), []byte("v"))
		}
		n.Advance(12 * time.Minute)
		for i := 0; i < 4; i++ {
			n.Get(ctx, Key(fmt.Sprintf("w%d", i)))
		}
		tr, ok := n.ScenarioTrace()
		if !ok {
			t.Fatal("no scenario trace")
		}
		return tr, n.d.Net.TotalMessages(), n.d.K.Events()
	}
	tr1, msgs1, events1 := run()
	tr2, msgs2, events2 := run()
	if !reflect.DeepEqual(tr1, tr2) {
		t.Fatalf("traces diverged:\n%+v\nvs\n%+v", tr1, tr2)
	}
	if msgs1 != msgs2 || events1 != events2 {
		t.Fatalf("replay diverged: msgs %d vs %d, events %d vs %d", msgs1, msgs2, events1, events2)
	}
	if len(tr1.Applied) == 0 {
		t.Fatal("churn wave applied no events")
	}
}
