package dcdht

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// startDurable starts a node on addr with a WAL in dir, retrying the
// bind briefly (a just-crashed predecessor's port can take a beat to
// free up).
func startDurable(t *testing.T, addr, dir string) *Node {
	t.Helper()
	cfg := NodeConfig{
		Replicas:       3,
		StabilizeEvery: 100 * time.Millisecond,
		GraceDelay:     -1,
		DataDir:        dir,
		Fsync:          FsyncAlways,
	}
	var n *Node
	var err error
	for attempt := 0; attempt < 20; attempt++ {
		n, err = StartNode(addr, cfg)
		if err == nil {
			return n
		}
		time.Sleep(100 * time.Millisecond)
	}
	t.Fatalf("StartNode(%s): %v", addr, err)
	return nil
}

// TestNodeRestartServesPreCrashState is the PR's acceptance test: a TCP
// node killed without any handoff or flush (Close == SIGKILL semantics)
// and restarted on the same address and data directory serves its
// pre-crash replicas and grants strictly increasing timestamps for the
// keys it was responsible for.
func TestNodeRestartServesPreCrashState(t *testing.T) {
	dir := t.TempDir()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	n1 := startDurable(t, "127.0.0.1:0", dir)
	n1.CreateRing()
	addr := n1.Addr() // the restart must reuse it: the ring ID derives from the address

	if _, err := n1.Put(ctx, "meeting", []byte("draft")); err != nil {
		t.Fatalf("put 1: %v", err)
	}
	r2, err := n1.Put(ctx, "meeting", []byte("final"))
	if err != nil {
		t.Fatalf("put 2: %v", err)
	}
	n1.Close() // crash: no handoff, no flush

	n2 := startDurable(t, addr, dir)
	defer n2.Leave()
	n2.CreateRing()

	rec := n2.Recovered()
	if rec.Items == 0 || rec.Counters == 0 {
		t.Fatalf("recovered %+v, want replicas and counters", rec)
	}
	got, err := n2.Get(ctx, "meeting")
	if err != nil {
		t.Fatalf("get after restart: %v", err)
	}
	if string(got.Data) != "final" || got.TS != r2.TS {
		t.Fatalf("after restart got %q @ %v, want %q @ %v", got.Data, got.TS, "final", r2.TS)
	}

	// The restarted responsible must continue the counter, not restart
	// it: the next grant is exactly last+1, with no indirect re-init gap
	// and — critically — no duplicate of a pre-crash timestamp.
	r3, err := n2.Put(ctx, "meeting", []byte("amended"))
	if err != nil {
		t.Fatalf("put after restart: %v", err)
	}
	if !r2.TS.Less(r3.TS) {
		t.Fatalf("post-restart ts %v not above pre-crash %v", r3.TS, r2.TS)
	}
	if r3.TS != r2.TS.Next() {
		t.Fatalf("post-restart ts = %v, want exactly %v", r3.TS, r2.TS.Next())
	}

	// Self-recovery (§4.2.2) is a clean no-op here: the node is the
	// responsible for its own recovered counters.
	if _, err := n2.Recover(ctx); err != nil {
		t.Fatalf("recover: %v", err)
	}
}

// TestStartNodeSurfacesStorageErrors checks the typed startup errors: an
// unusable data dir classifies as ErrStorage, mid-log corruption as
// ErrCorruptLog, and a torn tail as no error at all.
func TestStartNodeSurfacesStorageErrors(t *testing.T) {
	base := t.TempDir()

	// A file where the directory should be.
	badDir := filepath.Join(base, "not-a-dir")
	if err := os.WriteFile(badDir, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := StartNode("127.0.0.1:0", NodeConfig{DataDir: badDir})
	if !errors.Is(err, ErrStorage) {
		t.Fatalf("bad data dir: err = %v, want ErrStorage", err)
	}
	if errors.Is(err, ErrCorruptLog) {
		t.Fatalf("bad data dir misclassified as corruption: %v", err)
	}

	// A log corrupted in the middle.
	dir := filepath.Join(base, "data")
	n := startDurable(t, "127.0.0.1:0", dir)
	n.CreateRing()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	for i := 0; i < 4; i++ {
		if _, err := n.Put(ctx, "k", []byte("v")); err != nil {
			t.Fatalf("put: %v", err)
		}
	}
	n.Close()
	walPath := filepath.Join(dir, "wal.dcdht")
	data, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	data[20] ^= 0xFF // inside the first record, well before the tail
	if err := os.WriteFile(walPath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = StartNode("127.0.0.1:0", NodeConfig{DataDir: dir})
	if !errors.Is(err, ErrCorruptLog) {
		t.Fatalf("mid-log corruption: err = %v, want ErrCorruptLog", err)
	}

	// A torn tail must start fine and report the truncation.
	dir2 := filepath.Join(base, "data2")
	n2 := startDurable(t, "127.0.0.1:0", dir2)
	n2.CreateRing()
	if _, err := n2.Put(ctx, "k", []byte("v")); err != nil {
		t.Fatalf("put: %v", err)
	}
	n2.Close()
	walPath2 := filepath.Join(dir2, "wal.dcdht")
	fi, err := os.Stat(walPath2)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(walPath2, fi.Size()-2); err != nil {
		t.Fatal(err)
	}
	n3 := startDurable(t, "127.0.0.1:0", dir2)
	if !n3.Recovered().TornTail {
		t.Fatal("torn tail not reported by Recovered")
	}
	n3.Close()
}
