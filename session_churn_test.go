package dcdht

import (
	"context"
	"fmt"
	"testing"
	"time"
)

// TestSessionGuaranteesUnderChurn is the session acceptance test: a
// scripted churn wave followed by a partition with heal plays against
// the network while sessions at every consistency level keep writing
// and reading. Through the whole script, every successful session read
// must satisfy read-your-writes (at least as fresh as the session's
// last write of that key) and monotonic reads (session reads of a key
// never travel backwards) — including reads issued at Eventual
// consistency, which must never violate the session floor. Reads and
// writes are allowed to fail mid-fault (partitions make peers
// unreachable); they are never allowed to succeed with stale data.
func TestSessionGuaranteesUnderChurn(t *testing.T) {
	levels := []struct {
		name     string
		defaults []OpOption
	}{
		{"default", nil}, // the session's floor-first fast path
		{"current", []OpOption{WithConsistency(Current)}},
		{"bounded", []OpOption{WithConsistency(Bounded(2 * time.Minute))}},
		{"eventual", []OpOption{WithConsistency(Eventual)}},
	}
	for _, lv := range levels {
		lv := lv
		t.Run(lv.name, func(t *testing.T) {
			net := NewSimNetwork(32, SimConfig{Replicas: 5, Seed: 31, FailureRate: Float(0.5)})
			defer net.Close()
			script := Scenario{Name: "session-" + lv.name, Events: []Event{
				{At: 30 * time.Second, Kind: EventCrashWave, Frac: 0.2, Over: 90 * time.Second},
				{At: 30 * time.Second, Kind: EventJoinWave, Frac: 0.2, Over: 90 * time.Second},
				{At: 3 * time.Minute, Kind: EventPartition, Groups: []float64{0.7, 0.3}},
				{At: 5 * time.Minute, Kind: EventHeal},
			}}
			if err := net.PlayScenario(script); err != nil {
				t.Fatalf("PlayScenario: %v", err)
			}

			ctx := context.Background()
			// Pin the session to an issuing peer, like a client holding a
			// connection to one application server.
			session := net.NewSession(append([]OpOption{WithIssuer(5)}, lv.defaults...)...)
			const key = Key("account")

			var lastWrite, lastRead Timestamp
			writes, reads, failedOps := 0, 0, 0
			step := func(i int) {
				if w, err := session.Put(ctx, key, []byte(fmt.Sprintf("balance-%d", i))); err == nil {
					writes++
					lastWrite = w.TS
				} else {
					failedOps++
				}
				for j := 0; j < 2; j++ {
					r, err := session.Get(ctx, key)
					if err != nil {
						failedOps++
						continue
					}
					reads++
					if r.TS.Less(lastWrite) {
						t.Fatalf("step %d: read-your-writes violated at %s: read ts=%v behind write ts=%v",
							i, lv.name, r.TS, lastWrite)
					}
					if r.TS.Less(lastRead) {
						t.Fatalf("step %d: monotonic reads violated at %s: read ts=%v behind previous read ts=%v",
							i, lv.name, r.TS, lastRead)
					}
					if f, ok := session.Floor(key); ok && r.TS.Less(f) {
						t.Fatalf("step %d: session floor violated at %s: read ts=%v below floor %v",
							i, lv.name, r.TS, f)
					}
					lastRead = r.TS
				}
			}

			// Drive operations through the whole script: the churn wave,
			// the split (where failures are expected and tolerated), and
			// past the heal.
			for i := 0; i < 12; i++ {
				step(i)
				net.Advance(35 * time.Second)
			}
			if !net.ScenarioDone() {
				t.Fatal("scenario events did not all apply")
			}
			// Let the overlay re-merge and stabilize, then the guarantees
			// must hold on a working network again.
			net.Advance(8 * time.Minute)
			step(100)
			if writes == 0 || reads == 0 {
				t.Fatalf("no successful traffic at %s: %d writes, %d reads (%d failures)",
					lv.name, writes, reads, failedOps)
			}
			t.Logf("%s: %d writes, %d reads ok, %d op failures under faults", lv.name, writes, reads, failedOps)
		})
	}
}
