package dcdht

import (
	"context"
	"errors"
	"testing"
	"time"
)

// TestBadOptionsRejected: invalid option combinations fail the
// operation with an error wrapping ErrBadOption instead of being
// silently dropped.
func TestBadOptionsRejected(t *testing.T) {
	net := NewSimNetwork(16, SimConfig{Replicas: 3, Seed: 3})
	defer net.Close()
	ctx := context.Background()

	if _, err := net.Get(ctx, "k", WithIssuer(-1)); !errors.Is(err, ErrBadOption) {
		t.Errorf("negative issuer: err = %v, want ErrBadOption", err)
	}
	if _, err := net.Put(ctx, "k", []byte("v"), WithIssuer(-7)); !errors.Is(err, ErrBadOption) {
		t.Errorf("negative issuer on put: err = %v, want ErrBadOption", err)
	}
	if _, err := net.Get(ctx, "k", WithConsistency(Bounded(-time.Second))); !errors.Is(err, ErrBadOption) {
		t.Errorf("negative bound: err = %v, want ErrBadOption", err)
	}
	if _, err := net.LastTS(ctx, "k", WithIssuer(-1)); !errors.Is(err, ErrBadOption) {
		t.Errorf("negative issuer on last_ts: err = %v, want ErrBadOption", err)
	}
	if _, err := net.GetMulti(ctx, []Key{"a", "b"}, WithConsistency(Bounded(-1))); !errors.Is(err, ErrBadOption) {
		t.Errorf("negative bound on batch: err = %v, want ErrBadOption", err)
	}
	// BRK has no currency proof to relax and no floor enforcement:
	// combining it with a consistency level — in either option order —
	// or issuing a floored session read through it fails loudly.
	if _, err := net.Get(ctx, "k", WithAlgorithm(AlgBRK), WithConsistency(Eventual)); !errors.Is(err, ErrBadOption) {
		t.Errorf("BRK+consistency: err = %v, want ErrBadOption", err)
	}
	if _, err := net.Get(ctx, "k", WithConsistency(Eventual), WithAlgorithm(AlgBRK)); !errors.Is(err, ErrBadOption) {
		t.Errorf("consistency+BRK: err = %v, want ErrBadOption", err)
	}
	brkSession := net.NewSession(WithAlgorithm(AlgBRK))
	if _, err := brkSession.Put(ctx, "brk-doc", []byte("v")); err != nil {
		t.Errorf("BRK session put: %v", err)
	}
	if _, err := brkSession.Get(ctx, "brk-doc"); !errors.Is(err, ErrBadOption) {
		t.Errorf("floored session read on BRK: err = %v, want ErrBadOption", err)
	}

	// Valid combinations still pass the validation layer.
	if _, err := net.Put(ctx, "k", []byte("v"), WithIssuer(2)); err != nil {
		t.Errorf("valid issuer rejected: %v", err)
	}
	if _, err := net.Get(ctx, "k", WithConsistency(Bounded(0))); err != nil && !IsNoCurrent(err) {
		t.Errorf("zero bound rejected: %v", err)
	}
}

// TestNodeRejectsIssuerOption: a TCP node always issues from itself, so
// WithIssuer — meaningful only under simulation — fails with
// ErrBadOption on every operation instead of being silently ignored.
func TestNodeRejectsIssuerOption(t *testing.T) {
	nodes := newTestRing(t, 3)
	ctx := context.Background()
	n := nodes[1]

	if _, err := n.Put(ctx, "k", []byte("v"), WithIssuer(0)); !errors.Is(err, ErrBadOption) {
		t.Errorf("put: err = %v, want ErrBadOption", err)
	}
	if _, err := n.Get(ctx, "k", WithIssuer(0)); !errors.Is(err, ErrBadOption) {
		t.Errorf("get: err = %v, want ErrBadOption", err)
	}
	if _, err := n.LastTS(ctx, "k", WithIssuer(0)); !errors.Is(err, ErrBadOption) {
		t.Errorf("last_ts: err = %v, want ErrBadOption", err)
	}
	if _, err := n.PutMulti(ctx, []KV{{Key: "k", Data: []byte("v")}}, WithIssuer(0)); !errors.Is(err, ErrBadOption) {
		t.Errorf("put multi: err = %v, want ErrBadOption", err)
	}
	if _, err := n.GetMulti(ctx, []Key{"k"}, WithIssuer(0)); !errors.Is(err, ErrBadOption) {
		t.Errorf("get multi: err = %v, want ErrBadOption", err)
	}
}

// TestLastTSTakesOptions: LastTS accepts the variadic options like
// every other Client operation — WithIssuer pins the asking peer under
// simulation, and the relaxed consistency levels may serve the answer
// from the issuer's cache without a network hop.
func TestLastTSTakesOptions(t *testing.T) {
	net := NewSimNetwork(24, SimConfig{Replicas: 5, Seed: 8})
	defer net.Close()
	ctx := context.Background()

	ins, err := net.Put(ctx, "k", []byte("v1"), WithIssuer(4))
	if err != nil {
		t.Fatalf("put: %v", err)
	}
	ts, err := net.LastTS(ctx, "k", WithIssuer(2))
	if err != nil {
		t.Fatalf("last_ts: %v", err)
	}
	if ts != ins.TS {
		t.Fatalf("last_ts = %v, want the insert's %v", ts, ins.TS)
	}
	// The writer's own cache serves a bounded last_ts with no hop: the
	// answer matches the authoritative one.
	cached, err := net.LastTS(ctx, "k", WithIssuer(4), WithConsistency(Bounded(time.Hour)))
	if err != nil {
		t.Fatalf("bounded last_ts: %v", err)
	}
	if cached != ins.TS {
		t.Fatalf("cached last_ts = %v, want %v", cached, ins.TS)
	}
}

// TestConsistencyLevelsThroughClient: the three levels work through the
// public Client surface with the verdicts they advertise.
func TestConsistencyLevelsThroughClient(t *testing.T) {
	net := NewSimNetwork(32, SimConfig{Replicas: 5, Seed: 21})
	defer net.Close()
	ctx := context.Background()

	if _, err := net.Put(ctx, "doc", []byte("v1"), WithIssuer(1)); err != nil {
		t.Fatalf("put: %v", err)
	}

	cur, err := net.Get(ctx, "doc")
	if err != nil {
		t.Fatalf("current get: %v", err)
	}
	if cur.Currency != CurrencyProven || !cur.Current() {
		t.Fatalf("current verdict = %v", cur.Currency)
	}

	ev, err := net.Get(ctx, "doc", WithConsistency(Eventual))
	if err != nil {
		t.Fatalf("eventual get: %v", err)
	}
	if ev.Currency != CurrencyUnknown || ev.Current() {
		t.Fatalf("eventual verdict = %v", ev.Currency)
	}
	if string(ev.Data) != "v1" {
		t.Fatalf("eventual data = %q", ev.Data)
	}
	if ev.Msgs >= cur.Msgs {
		t.Fatalf("eventual cost %d msgs >= current %d", ev.Msgs, cur.Msgs)
	}

	// Bounded from the writer's peer: the cache satisfies the read.
	bd, err := net.Get(ctx, "doc", WithIssuer(1), WithConsistency(Bounded(time.Hour)))
	if err != nil {
		t.Fatalf("bounded get: %v", err)
	}
	if bd.Currency != CurrencyWithinBound {
		t.Fatalf("bounded verdict = %v, want within-bound", bd.Currency)
	}
	if bd.Floor.IsZero() {
		t.Fatal("bounded result carries no floor evidence")
	}
}

// TestSessionReadYourWrites: a session read after a session write is
// satisfied from the floor — one probe, zero KTS messages, verdict
// SessionFloor — and always returns the write (or newer).
func TestSessionReadYourWrites(t *testing.T) {
	net := NewSimNetwork(32, SimConfig{Replicas: 5, Seed: 23})
	defer net.Close()
	ctx := context.Background()

	s := net.NewSession(WithIssuer(2))
	w, err := s.Put(ctx, "profile", []byte("v1"))
	if err != nil {
		t.Fatalf("session put: %v", err)
	}
	if f, ok := s.Floor("profile"); !ok || f != w.TS {
		t.Fatalf("floor = %v ok=%v, want the write's %v", f, ok, w.TS)
	}

	r, err := s.Get(ctx, "profile")
	if err != nil {
		t.Fatalf("session get: %v", err)
	}
	if r.TS.Less(w.TS) {
		t.Fatalf("read-your-writes violated: read %v < write %v", r.TS, w.TS)
	}
	if r.Currency != CurrencySessionFloor {
		t.Fatalf("session verdict = %v, want session-floor", r.Currency)
	}

	// The fast path is actually cheap: compare to a provably-current
	// read of the same key from the same issuer.
	cur, err := net.Get(ctx, "profile", WithIssuer(2))
	if err != nil {
		t.Fatalf("current get: %v", err)
	}
	if r.Msgs >= cur.Msgs {
		t.Fatalf("session read cost %d msgs >= current %d — the KTS round trip was not skipped", r.Msgs, cur.Msgs)
	}

	// An explicit level through the session still enforces the floor
	// below: eventual cannot return anything older than the write.
	ev, err := s.Get(ctx, "profile", WithConsistency(Eventual))
	if err != nil {
		t.Fatalf("session eventual get: %v", err)
	}
	if ev.TS.Less(w.TS) {
		t.Fatalf("session eventual read %v below floor %v", ev.TS, w.TS)
	}

	// A session over a key it never touched falls back to the full
	// provably-current path.
	if _, err := net.Put(ctx, "other", []byte("x")); err != nil {
		t.Fatalf("put other: %v", err)
	}
	o, err := s.Get(ctx, "other")
	if err != nil {
		t.Fatalf("session get other: %v", err)
	}
	if o.Currency != CurrencyProven {
		t.Fatalf("first-touch verdict = %v, want proven", o.Currency)
	}
}

// TestSessionMonotonicReads: session floors never move backwards, so
// two successive session reads can never travel back in time even when
// the second one lands on a staler replica set.
func TestSessionMonotonicReads(t *testing.T) {
	net := NewSimNetwork(32, SimConfig{Replicas: 5, Seed: 29})
	defer net.Close()
	ctx := context.Background()

	// Another writer updates the key; the session observes it on read.
	if _, err := net.Put(ctx, "feed", []byte("v1")); err != nil {
		t.Fatalf("put v1: %v", err)
	}
	s := net.NewSession()
	r1, err := s.Get(ctx, "feed")
	if err != nil {
		t.Fatalf("get 1: %v", err)
	}
	if _, err := net.Put(ctx, "feed", []byte("v2")); err != nil {
		t.Fatalf("put v2: %v", err)
	}
	r2, err := s.Get(ctx, "feed", WithConsistency(Current))
	if err != nil {
		t.Fatalf("get 2: %v", err)
	}
	if r2.TS.Less(r1.TS) {
		t.Fatalf("monotonic reads violated: %v after %v", r2.TS, r1.TS)
	}
	r3, err := s.Get(ctx, "feed")
	if err != nil {
		t.Fatalf("get 3: %v", err)
	}
	if r3.TS.Less(r2.TS) {
		t.Fatalf("monotonic reads violated: %v after %v", r3.TS, r2.TS)
	}
}
