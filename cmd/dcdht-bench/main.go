// Command dcdht-bench regenerates every table and figure of the paper's
// evaluation (§3.3 analysis, Figures 6–12), the ablations, and the
// post-paper figures (replica maintenance, workload engine), printing
// each as a series table and optionally writing CSV and machine-readable
// JSON.
//
// Usage:
//
//	dcdht-bench                 # quick sweeps (minutes)
//	dcdht-bench -full           # paper-scale axes (10,000 peers, 3h windows)
//	dcdht-bench -figure 7,8     # only selected figures
//	dcdht-bench -csv out/       # also write CSV per figure
//	dcdht-bench -figure repair -repair-json BENCH_repair.json
//	dcdht-bench -figure workload -workload zipf -ratio 0.9 -seed 1
//	dcdht-bench -figure scenario -scenario split-heal,lossy-wan
//	dcdht-bench -figure consistency -levels all -bound 5m
//	dcdht-bench -figure recovery -recovery-peers 120
//
// The workload figure drives YCSB-style load (see docs/BENCHMARKS.md)
// and writes BENCH_workload.json by default. The scenario figure plays
// the scripted fault scenarios of docs/SCENARIOS.md — churn waves,
// partitions with heal, degraded links — with replica maintenance off
// and on, and writes BENCH_scenario.json by default. The consistency
// figure measures retrieval cost vs observed currency per consistency
// level (Current / Bounded / Eventual, see docs/CONSISTENCY.md), with
// replica maintenance off and on, and writes BENCH_consistency.json by
// default. The recovery figure plays identical kill-and-restart waves
// with volatile (crash-and-forget) and durable (internal/store) peers
// on the same seed and writes BENCH_recovery.json by default (see
// docs/STORAGE.md). The gateway figure runs the identical Zipf
// hot-key workload directly against peers and through the coalescing
// gateway tier (internal/gateway, see docs/GATEWAY.md) on same-seed
// deployments, comparing KTS traffic, coalescing factor, and latency
// quantiles, and writes BENCH_gateway.json by default. The lookup
// figure races the three routing substrates head-to-head — plain
// chord, chord behind the lookup path cache, and the one-hop
// full-table ring — on same-seed deployments, comparing hops, latency
// and maintenance traffic (see docs/LOOKUP.md), and writes
// BENCH_lookup.json by default. The perf figure measures the hot paths
// themselves — per-op message and KTS costs by algorithm and
// consistency level, the bare sim kernel at 1k/10k/100k synthetic
// peers, and a closed-loop macro workload (see docs/PERFORMANCE.md) —
// and writes BENCH_perf.json by default; -perf-strip-timing zeroes the
// host-dependent fields so same-seed runs are byte-identical, and
// -cpuprofile/-memprofile capture pprof profiles of any run.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"repro/internal/exp"
	"repro/internal/perf"
)

// log is the process logger; main replaces it per -log-format before
// any figure runs.
var log = slog.New(slog.NewTextHandler(os.Stderr, nil))

// writeJSON serializes one figure's machine-readable points so CI and
// perf tracking can diff results across commits without parsing tables.
func writeJSON(what, path string, v any) {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		log.Error("json marshal failed", "figure", what, "err", err)
		os.Exit(1)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		log.Error("json write failed", "figure", what, "path", path, "err", err)
		os.Exit(1)
	}
	log.Info("wrote results", "figure", what, "path", path)
}

func main() {
	full := flag.Bool("full", false, "paper-scale axes: 10,000 peers, 3-hour simulated windows (slow; default is quick mode)")
	seed := flag.Int64("seed", 42, "simulation seed; every figure replays bit-identically per seed")
	figures := flag.String("figure", "all", "comma-separated figures to run: analysis,6,7,8,9,10,11,12,ablations,repair,workload,scenario,consistency,recovery,gateway,lookup,perf")
	csvDir := flag.String("csv", "", "directory to also write one CSV file per figure (empty disables)")
	repairJSON := flag.String("repair-json", "", "path for the machine-readable repair comparison, e.g. BENCH_repair.json (written when the repair figure runs; empty disables)")
	quiet := flag.Bool("quiet", false, "suppress per-run progress lines on stderr")

	// Workload-figure knobs (-figure workload).
	workloadName := flag.String("workload", "all", "workload pattern: uniform|zipf|hotkey-update|scan-recent|all")
	ratio := flag.Float64("ratio", 0.9, "read fraction of the workload mix, in [0,1]")
	zipfS := flag.Float64("zipf", 1.1, "Zipf skew exponent s (>1; larger is more skewed) for the zipf workload")
	rate := flag.Float64("rate", 0, "open-loop target throughput in ops per simulated second; 0 selects the closed-loop driver")
	concurrency := flag.Int("concurrency", 8, "closed-loop worker count")
	duration := flag.Duration("duration", 2*time.Minute, "measured window of simulated time per workload run, e.g. 2m")
	workloadPeers := flag.Int("workload-peers", 0, "deployment size for the workload figure; 0 selects the default (200 quick, 2000 full)")
	workloadJSON := flag.String("workload-json", "BENCH_workload.json", "path for the machine-readable workload results (written when the workload figure runs; empty disables)")

	// Scenario-figure knobs (-figure scenario).
	scenarioNames := flag.String("scenario", "all", "comma-separated scripted scenarios: calm|churn-wave|split-heal|lossy-wan|mass-crash|all")
	scenarioPeers := flag.Int("scenario-peers", 0, "deployment size for the scenario figure; 0 selects the default (400 quick, base full)")
	scenarioJSON := flag.String("scenario-json", "BENCH_scenario.json", "path for the machine-readable scenario results (written when the scenario figure runs; empty disables)")

	// Consistency-figure knobs (-figure consistency).
	levels := flag.String("levels", "all", "comma-separated consistency levels for the consistency figure: current|bounded|eventual|all")
	bound := flag.Duration("bound", 5*time.Minute, "staleness bound for bounded-consistency reads, in simulated time")
	consistencyPeers := flag.Int("consistency-peers", 0, "deployment size for the consistency figure; 0 selects the default (120 quick, 1000 full)")
	consistencyQueries := flag.Int("consistency-queries", 0, "measured retrieves per consistency point; 0 selects the default (60 quick, 200 full)")
	consistencyWindow := flag.Duration("consistency-duration", 0, "measured window of simulated time per consistency point; 0 selects the default (12m quick, 1h full)")
	consistencyJSON := flag.String("consistency-json", "BENCH_consistency.json", "path for the machine-readable consistency results (written when the consistency figure runs; empty disables)")

	// Gateway-figure knobs (-figure gateway).
	gatewayBackends := flag.Int("gateway-backends", 0, "gateway backend pool size; 0 selects the default (4)")
	gatewayZipf := flag.Float64("gateway-zipf", 0, "Zipf skew exponent for the gateway figure; 0 selects the default (1.6)")
	gatewayConcurrency := flag.Int("gateway-concurrency", 0, "closed-loop worker count for the gateway figure; 0 selects the default (24)")
	gatewayOps := flag.Int("gateway-ops", 0, "operations per gateway arm; 0 selects the default (600)")
	gatewayKeys := flag.Int("gateway-keys", 0, "keyspace size for the gateway figure; 0 selects the default (8)")
	gatewayBoundedFrac := flag.Float64("gateway-bounded-frac", 0.15, "fraction of gateway-figure reads issued at Bounded consistency")
	gatewayEventualFrac := flag.Float64("gateway-eventual-frac", 0.05, "fraction of gateway-figure reads issued at Eventual consistency")
	gatewayBound := flag.Duration("gateway-bound", 0, "staleness bound for the gateway figure's Bounded reads; 0 selects the default (30s)")
	gatewayPeers := flag.Int("gateway-peers", 0, "deployment size for the gateway figure; 0 selects the default (100 quick, 400 full)")
	gatewayJSON := flag.String("gateway-json", "BENCH_gateway.json", "path for the machine-readable gateway results (written when the gateway figure runs; empty disables)")

	// Lookup-figure knobs (-figure lookup).
	lookupPeersFlag := flag.String("lookup-peers", "", "comma-separated deployment sizes for the lookup figure, e.g. 100,1000; empty selects the default (100,300,1000 quick / 100,1000,10000 full)")
	lookupSamples := flag.Int("lookup-samples", 0, "measured lookups per (arm, size) point; 0 selects the default (200)")
	lookupCache := flag.Int("lookup-cache", 0, "path-cache capacity in arcs for the chord+cache arm; 0 selects the default (256)")
	lookupChurn := flag.Int("lookup-churn", 0, "leave+join pairs inside the maintenance window; 0 selects the default (3)")
	lookupWarmup := flag.Duration("lookup-warmup", 0, "settle window of simulated time before (and after) the churn window; 0 selects the default (30s)")
	lookupMaint := flag.Duration("lookup-maint", 0, "churn-and-maintenance observation window of simulated time; 0 selects the default (1m)")
	lookupJSON := flag.String("lookup-json", "BENCH_lookup.json", "path for the machine-readable lookup results (written when the lookup figure runs; empty disables)")

	// Recovery-figure knobs (-figure recovery).
	recoveryPeers := flag.Int("recovery-peers", 0, "deployment size for the recovery figure; 0 selects the default (120 quick, base full)")
	recoveryQueries := flag.Int("recovery-queries", 0, "measured retrieves per recovery mode; 0 selects the default (60)")
	recoveryWindow := flag.Duration("recovery-duration", 0, "measured window of simulated time per recovery mode; 0 selects the shared figure default")
	recoveryJSON := flag.String("recovery-json", "BENCH_recovery.json", "path for the machine-readable recovery results (written when the recovery figure runs; empty disables)")

	// Perf-figure knobs (-figure perf).
	perfOps := flag.Int("perf-ops", 0, "operations per perf micro point; 0 selects the default (30 quick, 200 full)")
	perfPeers := flag.Int("perf-peers", 0, "deployment size for the perf micro and macro points; 0 selects the default (48 quick, 1000 full)")
	perfKernelPeers := flag.String("perf-kernel-peers", "", "comma-separated synthetic scales for the kernel benchmark, e.g. 1000,10000,100000; empty selects the default")
	perfKernelEvents := flag.Int("perf-kernel-events", 0, "kernel-benchmark chain length per synthetic peer; 0 selects the default (10 quick, 50 full)")
	perfMacroOps := flag.Int("perf-macro-ops", 0, "macro workload operation count; 0 selects the default (300 quick, 1000000 full), negative skips the macro point")
	perfStripTiming := flag.Bool("perf-strip-timing", false, "zero the host-dependent timing fields of the perf export so same-seed runs are byte-identical (CI determinism checks)")
	perfJSON := flag.String("perf-json", "BENCH_perf.json", "path for the machine-readable perf results (written when the perf figure runs; empty disables)")

	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the whole run to this file (inspect with go tool pprof)")
	memProfile := flag.String("memprofile", "", "write a heap profile at exit to this file (inspect with go tool pprof)")
	logFormat := flag.String("log-format", "text", "log output format for diagnostics on stderr: text or json")
	flag.Parse()

	switch *logFormat {
	case "", "text":
		// the default handler set at package level
	case "json":
		log = slog.New(slog.NewJSONHandler(os.Stderr, nil))
	default:
		log.Error("unknown -log-format (want text or json)", "got", *logFormat)
		os.Exit(2)
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			log.Error("cpu profile create failed", "path", *cpuProfile, "err", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Error("cpu profile start failed", "err", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}

	opts := exp.Options{Full: *full, Seed: *seed}
	if !*quiet {
		opts.Progress = func(line string) { fmt.Fprintln(os.Stderr, line) }
	}

	want := map[string]bool{}
	for _, f := range strings.Split(*figures, ",") {
		want[strings.TrimSpace(f)] = true
	}
	wanted := func(tags ...string) bool {
		if want["all"] {
			return true
		}
		for _, t := range tags {
			if want[t] {
				return true
			}
		}
		return false
	}

	var tables []*exp.Table
	emit := func(t *exp.Table) {
		t.Render(os.Stdout)
		fmt.Println()
		tables = append(tables, t)
	}

	if wanted("analysis") {
		emit(exp.AnalysisExpectedRetrievals(opts))
		emit(exp.AnalysisIndirectSuccess(opts))
	}
	if wanted("6") {
		emit(exp.Figure6(opts))
	}
	if wanted("7", "8") {
		t7, t8 := exp.Figures7And8(opts)
		if wanted("7") {
			emit(t7)
		}
		if wanted("8") {
			emit(t8)
		}
	}
	if wanted("9", "10") {
		t9, t10 := exp.Figures9And10(opts)
		if wanted("9") {
			emit(t9)
		}
		if wanted("10") {
			emit(t10)
		}
	}
	if wanted("11") {
		emit(exp.Figure11(opts))
	}
	if wanted("12") {
		emit(exp.Figure12(opts))
	}
	if wanted("ablations") {
		emit(exp.AblationRLU(opts))
		emit(exp.AblationGraceDelay(opts))
		emit(exp.AblationSuccessorList(opts))
		emit(exp.AblationDataHandoff(opts))
	}
	var repairPoints []exp.RepairPoint
	if wanted("repair") {
		t, points := exp.FigureRepair(opts)
		emit(t)
		repairPoints = points
	}
	var workloadPoints []exp.WorkloadPoint
	if wanted("workload") {
		if *ratio < 0 || *ratio > 1 {
			log.Error("-ratio outside [0,1]", "ratio", *ratio)
			os.Exit(2)
		}
		t, points, err := exp.FigureWorkload(opts, exp.WorkloadOptions{
			Pattern:     *workloadName,
			ReadRatio:   ratio,
			ZipfS:       *zipfS,
			Rate:        *rate,
			Concurrency: *concurrency,
			Duration:    *duration,
			Peers:       *workloadPeers,
		})
		if err != nil {
			log.Error("workload figure failed", "err", err)
			os.Exit(2)
		}
		emit(t)
		workloadPoints = points
	}
	var scenarioPoints []exp.ScenarioPoint
	if wanted("scenario") {
		names := []string{}
		for _, n := range strings.Split(*scenarioNames, ",") {
			if n = strings.TrimSpace(n); n != "" {
				names = append(names, n)
			}
		}
		t, points, err := exp.FigureScenario(opts, exp.ScenarioOptions{
			Names: names,
			Peers: *scenarioPeers,
		})
		if err != nil {
			log.Error("scenario figure failed", "err", err)
			os.Exit(2)
		}
		emit(t)
		scenarioPoints = points
	}
	var consistencyPoints []exp.ConsistencyPoint
	if wanted("consistency") {
		names := []string{}
		if *levels != "all" {
			for _, n := range strings.Split(*levels, ",") {
				if n = strings.TrimSpace(n); n != "" && n != "all" {
					names = append(names, n)
				}
			}
		}
		t, points, err := exp.FigureConsistency(opts, exp.ConsistencyOptions{
			Levels:   names,
			Bound:    *bound,
			Peers:    *consistencyPeers,
			Queries:  *consistencyQueries,
			Duration: *consistencyWindow,
		})
		if err != nil {
			log.Error("consistency figure failed", "err", err)
			os.Exit(2)
		}
		emit(t)
		consistencyPoints = points
	}
	var gatewayResult *exp.GatewayResult
	if wanted("gateway") {
		t, res, err := exp.FigureGateway(opts, exp.GatewayOptions{
			Backends:     *gatewayBackends,
			ZipfS:        *gatewayZipf,
			Concurrency:  *gatewayConcurrency,
			Ops:          *gatewayOps,
			Keys:         *gatewayKeys,
			BoundedFrac:  *gatewayBoundedFrac,
			EventualFrac: *gatewayEventualFrac,
			Bound:        *gatewayBound,
			Peers:        *gatewayPeers,
		})
		if err != nil {
			log.Error("gateway figure failed", "err", err)
			os.Exit(2)
		}
		emit(t)
		gatewayResult = res
	}
	var lookupResult *exp.LookupResult
	if wanted("lookup") {
		var sizes []int
		for _, s := range strings.Split(*lookupPeersFlag, ",") {
			if s = strings.TrimSpace(s); s != "" {
				var n int
				if _, err := fmt.Sscanf(s, "%d", &n); err != nil || n <= 0 {
					log.Error("bad -lookup-peers entry", "got", s)
					os.Exit(2)
				}
				sizes = append(sizes, n)
			}
		}
		t, res, err := exp.FigureLookup(opts, exp.LookupOptions{
			Peers:       sizes,
			Samples:     *lookupSamples,
			CacheSize:   *lookupCache,
			ChurnEvents: *lookupChurn,
			Warmup:      *lookupWarmup,
			MaintWindow: *lookupMaint,
		})
		if err != nil {
			log.Error("lookup figure failed", "err", err)
			os.Exit(2)
		}
		emit(t)
		lookupResult = res
	}
	var perfFigure *perf.Figure
	if wanted("perf") {
		var kernelPeers []int
		for _, s := range strings.Split(*perfKernelPeers, ",") {
			if s = strings.TrimSpace(s); s != "" {
				var n int
				if _, err := fmt.Sscanf(s, "%d", &n); err != nil || n <= 0 {
					log.Error("bad -perf-kernel-peers entry", "got", s)
					os.Exit(2)
				}
				kernelPeers = append(kernelPeers, n)
			}
		}
		t, fig, err := exp.FigurePerf(opts, exp.PerfOptions{
			MicroOps:            *perfOps,
			Peers:               *perfPeers,
			KernelPeers:         kernelPeers,
			KernelEventsPerPeer: *perfKernelEvents,
			MacroOps:            *perfMacroOps,
		})
		if err != nil {
			log.Error("perf figure failed", "err", err)
			os.Exit(2)
		}
		if *perfStripTiming {
			fig.StripTiming()
		}
		emit(t)
		perfFigure = fig
	}
	var recoveryPoints []exp.RecoveryPoint
	if wanted("recovery") {
		t, points, err := exp.FigureRecovery(opts, exp.RecoveryOptions{
			Peers:    *recoveryPeers,
			Queries:  *recoveryQueries,
			Duration: *recoveryWindow,
		})
		if err != nil {
			log.Error("recovery figure failed", "err", err)
			os.Exit(2)
		}
		emit(t)
		recoveryPoints = points
	}

	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			log.Error("csv dir create failed", "dir", *csvDir, "err", err)
			os.Exit(1)
		}
		for i, t := range tables {
			name := fmt.Sprintf("table%02d.csv", i)
			if idx := strings.Index(t.Title, ":"); idx > 0 {
				name = strings.ToLower(strings.ReplaceAll(
					strings.ReplaceAll(t.Title[:idx], " ", "_"), "§", "s")) + ".csv"
			}
			f, err := os.Create(filepath.Join(*csvDir, name))
			if err != nil {
				log.Error("csv create failed", "file", name, "err", err)
				os.Exit(1)
			}
			t.CSV(f)
			f.Close()
		}
		log.Info("wrote CSV files", "count", len(tables), "dir", *csvDir)
	}
	// Last, after every other output is safely on disk: a failure here
	// must not discard a long run's figures.
	if repairPoints != nil && *repairJSON != "" {
		writeJSON("repair", *repairJSON, repairPoints)
	}
	if workloadPoints != nil && *workloadJSON != "" {
		writeJSON("workload", *workloadJSON, workloadPoints)
	}
	if scenarioPoints != nil && *scenarioJSON != "" {
		writeJSON("scenario", *scenarioJSON, scenarioPoints)
	}
	if consistencyPoints != nil && *consistencyJSON != "" {
		writeJSON("consistency", *consistencyJSON, consistencyPoints)
	}
	if recoveryPoints != nil && *recoveryJSON != "" {
		writeJSON("recovery", *recoveryJSON, recoveryPoints)
	}
	if gatewayResult != nil && *gatewayJSON != "" {
		writeJSON("gateway", *gatewayJSON, gatewayResult)
	}
	if lookupResult != nil && *lookupJSON != "" {
		writeJSON("lookup", *lookupJSON, lookupResult)
	}
	if perfFigure != nil && *perfJSON != "" {
		writeJSON("perf", *perfJSON, perfFigure)
	}
	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			log.Error("mem profile create failed", "path", *memProfile, "err", err)
			os.Exit(1)
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			log.Error("mem profile write failed", "err", err)
			os.Exit(1)
		}
		f.Close()
		log.Info("wrote heap profile", "path", *memProfile)
	}
}
