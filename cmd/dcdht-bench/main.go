// Command dcdht-bench regenerates every table and figure of the paper's
// evaluation (§3.3 analysis, Figures 6–12) and prints them as series
// tables, optionally writing CSV files.
//
// Usage:
//
//	dcdht-bench                 # quick sweeps (minutes)
//	dcdht-bench -full           # paper-scale axes (10,000 peers, 3h windows)
//	dcdht-bench -figure 7,8     # only selected figures
//	dcdht-bench -csv out/       # also write CSV per figure
//	dcdht-bench -figure repair  # replica-maintenance comparison + BENCH_repair.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/exp"
)

// writeRepairJSON serializes the repair comparison so CI and perf
// tracking can diff currency/cost across commits without parsing tables.
func writeRepairJSON(path string, points []exp.RepairPoint) {
	data, err := json.MarshalIndent(points, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "repair json: %v\n", err)
		os.Exit(1)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "repair json %s: %v\n", path, err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "wrote repair comparison to %s\n", path)
}

func main() {
	full := flag.Bool("full", false, "paper-scale axes (10,000 peers, 3-hour windows; slow)")
	seed := flag.Int64("seed", 42, "simulation seed")
	figures := flag.String("figure", "all", "comma-separated list: analysis,6,7,8,9,10,11,12,ablations,repair")
	csvDir := flag.String("csv", "", "directory to write per-figure CSV files")
	repairJSON := flag.String("json", "", "path for the machine-readable repair comparison, e.g. BENCH_repair.json (written when the repair figure runs)")
	quiet := flag.Bool("quiet", false, "suppress per-run progress lines")
	flag.Parse()

	opts := exp.Options{Full: *full, Seed: *seed}
	if !*quiet {
		opts.Progress = func(line string) { fmt.Fprintln(os.Stderr, line) }
	}

	want := map[string]bool{}
	for _, f := range strings.Split(*figures, ",") {
		want[strings.TrimSpace(f)] = true
	}
	wanted := func(tags ...string) bool {
		if want["all"] {
			return true
		}
		for _, t := range tags {
			if want[t] {
				return true
			}
		}
		return false
	}

	var tables []*exp.Table
	emit := func(t *exp.Table) {
		t.Render(os.Stdout)
		fmt.Println()
		tables = append(tables, t)
	}

	if wanted("analysis") {
		emit(exp.AnalysisExpectedRetrievals(opts))
		emit(exp.AnalysisIndirectSuccess(opts))
	}
	if wanted("6") {
		emit(exp.Figure6(opts))
	}
	if wanted("7", "8") {
		t7, t8 := exp.Figures7And8(opts)
		if wanted("7") {
			emit(t7)
		}
		if wanted("8") {
			emit(t8)
		}
	}
	if wanted("9", "10") {
		t9, t10 := exp.Figures9And10(opts)
		if wanted("9") {
			emit(t9)
		}
		if wanted("10") {
			emit(t10)
		}
	}
	if wanted("11") {
		emit(exp.Figure11(opts))
	}
	if wanted("12") {
		emit(exp.Figure12(opts))
	}
	if wanted("ablations") {
		emit(exp.AblationRLU(opts))
		emit(exp.AblationGraceDelay(opts))
		emit(exp.AblationSuccessorList(opts))
		emit(exp.AblationDataHandoff(opts))
	}
	var repairPoints []exp.RepairPoint
	if wanted("repair") {
		t, points := exp.FigureRepair(opts)
		emit(t)
		repairPoints = points
	}

	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "csv dir: %v\n", err)
			os.Exit(1)
		}
		for i, t := range tables {
			name := fmt.Sprintf("table%02d.csv", i)
			if idx := strings.Index(t.Title, ":"); idx > 0 {
				name = strings.ToLower(strings.ReplaceAll(
					strings.ReplaceAll(t.Title[:idx], " ", "_"), "§", "s")) + ".csv"
			}
			f, err := os.Create(filepath.Join(*csvDir, name))
			if err != nil {
				fmt.Fprintf(os.Stderr, "csv %s: %v\n", name, err)
				os.Exit(1)
			}
			t.CSV(f)
			f.Close()
		}
		fmt.Fprintf(os.Stderr, "wrote %d CSV files to %s\n", len(tables), *csvDir)
	}
	// Last, after every other output is safely on disk: a failure here
	// must not discard a long run's figures.
	if repairPoints != nil && *repairJSON != "" {
		writeRepairJSON(*repairJSON, repairPoints)
	}
}
