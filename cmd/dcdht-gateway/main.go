// Command dcdht-gateway runs the coalescing front-end tier: an HTTP
// gateway that pools a few ephemeral ring clients, single-flights
// concurrent hot-key reads, and answers Bounded/Eventual reads from its
// last-timestamp cache without touching the KTS tier (see
// docs/GATEWAY.md).
//
// Usage:
//
//	dcdht-gateway serve -listen 127.0.0.1:8080 -backends 127.0.0.1:4000,127.0.0.1:4001
//	dcdht-gateway serve -backends 127.0.0.1:4000 -replicas 5 -cooldown 5s
//
// The listener binds before any ring contact, so an occupied -listen
// fails fast (exit 1); flag and -backends syntax errors exit 2. The
// chosen listen address is printed on stdout as "listening ADDR".
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	dcdht "repro"
)

// newLogger builds the process logger from the -log-format flag. Logs
// go to stderr so the "listening ADDR" line stays clean on stdout.
func newLogger(format string) (*slog.Logger, error) {
	switch format {
	case "", "text":
		return slog.New(slog.NewTextHandler(os.Stderr, nil)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, nil)), nil
	default:
		return nil, fmt.Errorf("unknown -log-format %q (want text or json)", format)
	}
}

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "serve":
		serve(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: dcdht-gateway serve [flags]")
	os.Exit(2)
}

// parseBackends validates the comma-separated -backends list: at least
// one element, each a syntactically valid host:port.
func parseBackends(s string) ([]string, error) {
	if strings.TrimSpace(s) == "" {
		return nil, fmt.Errorf("-backends is required: comma-separated host:port ring members")
	}
	var addrs []string
	for _, part := range strings.Split(s, ",") {
		a := strings.TrimSpace(part)
		if a == "" {
			return nil, fmt.Errorf("-backends has an empty element in %q", s)
		}
		if _, _, err := net.SplitHostPort(a); err != nil {
			return nil, fmt.Errorf("-backends element %q: %v", a, err)
		}
		addrs = append(addrs, a)
	}
	return addrs, nil
}

func serve(args []string) {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	listen := fs.String("listen", "127.0.0.1:8080", "HTTP address to listen on, host:port (port 0 picks a free one)")
	backends := fs.String("backends", "", "comma-separated host:port ring members the gateway pools over (required)")
	replicas := fs.Int("replicas", 10, "|Hr|: replicas per data item (must match every ring member)")
	poll := fs.Duration("poll", 0, "waiter re-check interval for coalesced flights (0 selects the default, 1ms)")
	cooldownAfter := fs.Int("cooldown-after", 0, "consecutive backend errors before the balancer benches a backend (0 selects the default, 3)")
	cooldown := fs.Duration("cooldown", 0, "how long a benched backend sits out, e.g. 2s (0 selects the default)")
	seed := fs.Int64("seed", 0, "seed for the gateway's derived streams; 0 derives one from the clock")
	logFormat := fs.String("log-format", "text", "log output format: text or json")
	fs.Parse(args)

	log, err := newLogger(*logFormat)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	addrs, err := parseBackends(*backends)
	if err != nil {
		log.Error("bad -backends", "err", err)
		os.Exit(2)
	}

	// Bind before any ring contact so an occupied -listen fails fast.
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Error("listen failed", "addr", *listen, "err", err)
		os.Exit(1)
	}
	fmt.Printf("listening %s\n", ln.Addr())

	// One ephemeral client peer per backend address: each joins the
	// ring via its address, and the gateway balances over them.
	var nodes []*dcdht.Node
	leaveAll := func() {
		for _, nd := range nodes {
			nd.Leave()
		}
	}
	clients := make([]dcdht.Client, 0, len(addrs))
	for _, a := range addrs {
		nd, err := dcdht.StartNode("127.0.0.1:0", dcdht.NodeConfig{
			Replicas:       *replicas,
			Seed:           *seed,
			StabilizeEvery: 200 * time.Millisecond,
			GraceDelay:     100 * time.Millisecond,
		})
		if err != nil {
			log.Error("backend client start failed", "err", err)
			leaveAll()
			os.Exit(1)
		}
		nodes = append(nodes, nd)
		if err := nd.Join(a); err != nil {
			log.Error("join failed", "via", a, "err", err)
			leaveAll()
			os.Exit(1)
		}
		clients = append(clients, nd)
	}
	// One stabilization round so the ephemeral peers are fully linked.
	time.Sleep(500 * time.Millisecond)

	gw, err := dcdht.NewGateway(clients, dcdht.GatewayConfig{
		Poll:          *poll,
		CooldownAfter: *cooldownAfter,
		Cooldown:      *cooldown,
		Seed:          *seed,
	})
	if err != nil {
		log.Error("gateway start failed", "err", err)
		leaveAll()
		os.Exit(1)
	}
	srv := &http.Server{Handler: gw}
	go srv.Serve(ln)
	log.Info("gateway up", "listen", ln.Addr().String(), "backends", len(clients),
		"endpoints", "/v1/kv /v1/last /metrics /debug/gateway")

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	st := gw.Stats()
	log.Info("gateway summary",
		"flights", st.Flights, "coalesced", st.Coalesced,
		"cache_served", st.CacheServedGets+st.CacheServedLastTS,
		"backend_ops", st.BackendOps, "backend_errors", st.BackendErrors)
	srv.Close()
	gw.Close()
	leaveAll()
}
