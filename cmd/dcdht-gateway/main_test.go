package main

import (
	"bufio"
	"bytes"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"strings"
	"testing"
	"time"

	dcdht "repro"
)

// TestMain lets the test binary impersonate the command: when the guard
// variable is set, run main() with the test binary's own arguments.
// Tests re-exec themselves with the guard set to observe real exit
// codes and output without building the command separately.
func TestMain(m *testing.M) {
	if os.Getenv("DCDHT_GATEWAY_BE_MAIN") == "1" {
		main()
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// runMain re-executes the test binary as dcdht-gateway and returns its
// combined stderr, stdout and exit code.
func runMain(t *testing.T, args ...string) (stdout, stderr string, code int) {
	t.Helper()
	cmd := exec.Command(os.Args[0], args...)
	cmd.Env = append(os.Environ(), "DCDHT_GATEWAY_BE_MAIN=1")
	var outBuf, errBuf bytes.Buffer
	cmd.Stdout, cmd.Stderr = &outBuf, &errBuf
	err := cmd.Run()
	code = 0
	if err != nil {
		ee, ok := err.(*exec.ExitError)
		if !ok {
			t.Fatalf("run %v: %v", args, err)
		}
		code = ee.ExitCode()
	}
	return outBuf.String(), errBuf.String(), code
}

func TestUsageExitsTwo(t *testing.T) {
	_, stderr, code := runMain(t)
	if code != 2 {
		t.Errorf("no args: exit %d, want 2", code)
	}
	if !strings.Contains(stderr, "usage: dcdht-gateway serve") {
		t.Errorf("no args stderr = %q, want usage line", stderr)
	}
	if _, stderr, code = runMain(t, "sideways"); code != 2 || !strings.Contains(stderr, "usage:") {
		t.Errorf("bad subcommand: exit %d stderr %q, want 2 + usage", code, stderr)
	}
}

func TestFlagHelp(t *testing.T) {
	_, stderr, code := runMain(t, "serve", "-h")
	if code != 0 {
		t.Errorf("-h: exit %d, want 0 (flag.ExitOnError help)", code)
	}
	for _, flagName := range []string{"-listen", "-backends", "-replicas", "-cooldown", "-poll", "-log-format"} {
		if !strings.Contains(stderr, flagName) {
			t.Errorf("-h output missing %s:\n%s", flagName, stderr)
		}
	}
}

func TestBadBackendsExitsTwo(t *testing.T) {
	cases := []struct{ name, backends string }{
		{"empty", ""},
		{"blank element", "127.0.0.1:4000,,127.0.0.1:4001"},
		{"no port", "127.0.0.1"},
		{"garbage", "not an address"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, stderr, code := runMain(t, "serve", "-backends", tc.backends)
			if code != 2 {
				t.Errorf("-backends %q: exit %d, want 2 (stderr: %s)", tc.backends, code, stderr)
			}
			if !strings.Contains(stderr, "bad -backends") {
				t.Errorf("-backends %q stderr = %q, want bad -backends diagnostic", tc.backends, stderr)
			}
		})
	}
	// Unknown flags are also usage errors (flag.ExitOnError).
	if _, _, code := runMain(t, "serve", "-no-such-flag"); code != 2 {
		t.Errorf("unknown flag: exit %d, want 2", code)
	}
	if _, stderr, code := runMain(t, "serve", "-backends", "127.0.0.1:1", "-log-format", "yaml"); code != 2 ||
		!strings.Contains(stderr, "log-format") {
		t.Errorf("bad -log-format: exit %d stderr %q, want 2", code, stderr)
	}
}

func TestOccupiedListenExitsOne(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	// The listener binds before any ring contact, so the syntactically
	// valid backend address is never dialed.
	_, stderr, code := runMain(t, "serve",
		"-listen", ln.Addr().String(), "-backends", "127.0.0.1:1")
	if code != 1 {
		t.Errorf("occupied -listen: exit %d, want 1 (stderr: %s)", code, stderr)
	}
	if !strings.Contains(stderr, "listen failed") {
		t.Errorf("occupied -listen stderr = %q, want listen failed diagnostic", stderr)
	}
}

// TestServeEndToEnd boots a tiny ring in-process, re-execs the command
// against it, and drives one PUT/GET through the subprocess's HTTP
// front-end.
func TestServeEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess ring smoke in -short mode")
	}
	cfg := dcdht.NodeConfig{
		Replicas:       3,
		Seed:           17,
		StabilizeEvery: 100 * time.Millisecond,
		GraceDelay:     20 * time.Millisecond,
	}
	first, err := dcdht.StartNode("127.0.0.1:0", cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer first.Close()
	first.CreateRing()
	second, err := dcdht.StartNode("127.0.0.1:0", cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer second.Close()
	if err := second.Join(first.Addr()); err != nil {
		t.Fatal(err)
	}
	time.Sleep(500 * time.Millisecond)

	cmd := exec.Command(os.Args[0], "serve",
		"-listen", "127.0.0.1:0", "-replicas", "3",
		"-backends", first.Addr()+","+second.Addr())
	cmd.Env = append(os.Environ(), "DCDHT_GATEWAY_BE_MAIN=1")
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		cmd.Process.Signal(os.Interrupt)
		cmd.Wait()
	}()

	// The command prints its bound address before joining the ring.
	var addr string
	if _, err := fmt.Fscanf(bufio.NewReader(stdout), "listening %s\n", &addr); err != nil {
		t.Fatalf("reading listen line: %v", err)
	}

	// The listener is up immediately; the gateway handler attaches
	// after the backends join, so retry until the first 200.
	base := "http://" + addr
	client := &http.Client{Timeout: 5 * time.Second}
	deadline := time.Now().Add(15 * time.Second)
	var resp *http.Response
	for {
		req, _ := http.NewRequest(http.MethodPut, base+"/v1/kv/cmd-key", strings.NewReader("via-subprocess"))
		resp, err = client.Do(req)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("gateway never came up: %v", err)
		}
		time.Sleep(200 * time.Millisecond)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("PUT status %d", resp.StatusCode)
	}
	resp, err = client.Get(base + "/v1/kv/cmd-key")
	if err != nil {
		t.Fatal(err)
	}
	var body bytes.Buffer
	body.ReadFrom(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(body.String(), "proven") {
		t.Errorf("GET status %d body %s, want 200 with proven currency", resp.StatusCode, body.String())
	}
}
