// Command dcdht-sim runs one simulated scenario with explicit knobs and
// prints the aggregate metrics — a workbench for exploring the design
// space beyond the paper's fixed sweeps.
//
// Example:
//
//	dcdht-sim -peers 2000 -alg UMS-Direct -replicas 10 -duration 1h \
//	          -churn 1 -fail 0.05 -updates 1 -queries 30
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"time"

	"repro/internal/can"
	"repro/internal/exp"
	"repro/internal/network/simwire"
	"repro/internal/onehop"
	"repro/internal/scenario"
)

// newLogger builds the process logger from -log-format ("text" or
// "json"). Diagnostics go to stderr; the report stays on stdout.
func newLogger(format string) (*slog.Logger, error) {
	switch format {
	case "", "text":
		return slog.New(slog.NewTextHandler(os.Stderr, nil)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, nil)), nil
	default:
		return nil, fmt.Errorf("unknown -log-format %q (want text or json)", format)
	}
}

func main() {
	peers := flag.Int("peers", 1000, "number of simulated peers")
	alg := flag.String("alg", "UMS-Direct", "algorithm: BRK, UMS-Indirect or UMS-Direct")
	replicas := flag.Int("replicas", 10, "|Hr|: replicas per data item")
	keys := flag.Int("keys", 20, "working-set size in keys")
	duration := flag.Duration("duration", time.Hour, "measured window of simulated time, e.g. 1h")
	queries := flag.Int("queries", 30, "retrieve operations at uniform times over the window (paper: 30)")
	churn := flag.Float64("churn", 1, "peer departures per simulated second (Table 1: 1)")
	fail := flag.Float64("fail", 0.05, "fraction of departures that are failures, in [0,1] (Table 1: 0.05)")
	updates := flag.Float64("updates", 1, "updates per key per simulated hour (Table 1: 1)")
	seed := flag.Int64("seed", 1, "simulation seed; the run replays bit-identically per seed")
	cluster := flag.Bool("cluster", false, "use the LAN cluster profile instead of Table 1's WAN model")
	ring := flag.String("ring", "chord", "overlay substrate: chord, can or onehop (see docs/LOOKUP.md)")
	pathCache := flag.Int("path-cache", 0, "per-peer lookup path cache capacity in arcs; 0 disables it")
	republish := flag.Duration("republish", 0, "periodic republish interval (peers re-push replicas they no longer own); 0 disables it")
	scen := flag.String("scenario", "", "scripted scenario to play over the window: calm, churn-wave, split-heal, lossy-wan or mass-crash (see docs/SCENARIOS.md); empty plays none")
	metricsOut := flag.String("metrics-out", "", "write the run's aggregated metrics snapshot as JSON to this file (see docs/OBSERVABILITY.md)")
	logFormat := flag.String("log-format", "text", "log output format: text or json")
	flag.Parse()

	log, err := newLogger(*logFormat)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	var algorithm exp.Algorithm
	switch *alg {
	case string(exp.AlgBRK):
		algorithm = exp.AlgBRK
	case string(exp.AlgUMSIndirect):
		algorithm = exp.AlgUMSIndirect
	case string(exp.AlgUMSDirect):
		algorithm = exp.AlgUMSDirect
	default:
		log.Error("unknown algorithm", "alg", *alg)
		os.Exit(2)
	}

	sc := exp.Table1Scenario(algorithm, *peers, *seed)
	sc.Replicas = *replicas
	sc.Keys = *keys
	sc.Duration = *duration
	sc.Queries = *queries
	sc.ChurnRate = *churn
	sc.FailRate = *fail
	sc.UpdateRate = *updates
	switch exp.RingKind(*ring) {
	case exp.RingChord, exp.RingCAN, exp.RingOneHop:
		sc.Ring = exp.RingKind(*ring)
	default:
		log.Error("unknown -ring (want chord, can or onehop)", "ring", *ring)
		os.Exit(2)
	}
	sc.PathCache = *pathCache
	sc.RepublishEvery = *republish
	if *cluster {
		sc.Net = simwire.Cluster()
		sc.Chord.RPCTimeout = 250 * time.Millisecond
		sc.Chord.StabilizeEvery = 2 * time.Second
		sc.Chord.FixFingersEvery = 2 * time.Second
		sc.Chord.CheckPredEvery = 2 * time.Second
		sc.Grace = 10 * time.Millisecond
	}
	// The alternative substrates track chord's maintenance cadence.
	sc.CAN = can.Config{PingEvery: sc.Chord.CheckPredEvery, RPCTimeout: sc.Chord.RPCTimeout}
	sc.OneHop = onehop.Config{PingEvery: sc.Chord.CheckPredEvery, RPCTimeout: sc.Chord.RPCTimeout}

	if *scen != "" {
		script, err := scenario.Builtin(*scen, sc.Duration)
		if err != nil {
			log.Error("bad -scenario", "err", err)
			os.Exit(2)
		}
		sc.Script = &script
	}

	log.Info("running", "alg", string(algorithm), "ring", string(sc.Ring), "peers", sc.Peers,
		"replicas", sc.Replicas, "keys", sc.Keys, "duration", sc.Duration,
		"churn_per_sec", sc.ChurnRate, "fail_rate", sc.FailRate,
		"updates_per_hour", sc.UpdateRate)
	r := exp.Run(sc)

	if *metricsOut != "" {
		blob, err := json.MarshalIndent(r.Obs, "", "  ")
		if err == nil {
			err = os.WriteFile(*metricsOut, append(blob, '\n'), 0o644)
		}
		if err != nil {
			log.Error("metrics snapshot write failed", "path", *metricsOut, "err", err)
			os.Exit(1)
		}
		log.Info("metrics snapshot written", "path", *metricsOut)
	}

	fmt.Printf("algorithm          %s\n", algorithm)
	fmt.Printf("response time      %.3f s (stddev %.3f, min %.3f, max %.3f)\n",
		r.RespTime.Mean(), r.RespTime.StdDev(), r.RespTime.Min(), r.RespTime.Max())
	fmt.Printf("messages/retrieve  %.1f (stddev %.1f)\n", r.Msgs.Mean(), r.Msgs.StdDev())
	fmt.Printf("replicas probed    %.2f (nums)\n", r.Probed.Mean())
	fmt.Printf("provably current   %.0f%%\n", 100*r.CurrentRate)
	fmt.Printf("stale fallbacks    %d\n", r.StaleReturns)
	fmt.Printf("failed queries     %d / %d\n", r.QueriesFailed, r.QueriesRun)
	fmt.Printf("updates run        %d (failed %d)\n", r.UpdatesRun, r.UpdatesFailed)
	fmt.Printf("churn events       %d (failures %d)\n", r.ChurnEvents, r.FailEvents)
	if r.Trace != nil {
		fmt.Printf("scenario           %s: %d events applied\n", r.Trace.Script, len(r.Trace.Applied))
	}
	fmt.Printf("network messages   %d total\n", r.TotalNetMsgs)
	fmt.Printf("simulation         %d events in %s wall time\n", r.SimEvents, r.WallTime.Round(time.Millisecond))
}
