// Command dcdht-node runs a real peer over TCP — the deployment unit of
// the paper's 64-node cluster experiment — or performs one-shot client
// operations through an ephemeral peer.
//
// Usage:
//
//	dcdht-node serve -listen 127.0.0.1:4000                  # first node
//	dcdht-node serve -listen 127.0.0.1:4001 -join 127.0.0.1:4000
//	dcdht-node serve -join 127.0.0.1:4000 -repair 30s -read-repair -inspect 1m
//	dcdht-node serve -listen 127.0.0.1:4000 -data-dir /var/lib/dcdht -fsync batch
//	dcdht-node serve -listen 127.0.0.1:4000 -metrics-addr 127.0.0.1:9090 -log-format json
//	dcdht-node put  -via 127.0.0.1:4000 agenda:mon "standup 9am"
//	dcdht-node get  -via 127.0.0.1:4000 agenda:mon
//	dcdht-node last -via 127.0.0.1:4000 agenda:mon           # KTS last_ts
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"syscall"
	"time"

	dcdht "repro"
)

// newLogger builds the process logger from the -log-format flag:
// "text" for human-readable key=value lines, "json" for one JSON
// object per line (machine-ingestable). Both write to stderr so data
// output (put/get results) stays clean on stdout.
func newLogger(format string) (*slog.Logger, error) {
	switch format {
	case "", "text":
		return slog.New(slog.NewTextHandler(os.Stderr, nil)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, nil)), nil
	default:
		return nil, fmt.Errorf("unknown -log-format %q (want text or json)", format)
	}
}

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "serve":
		serve(os.Args[2:])
	case "put", "get", "last":
		client(os.Args[1], os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: dcdht-node serve|put|get|last [flags] [args]")
	os.Exit(2)
}

func serve(args []string) {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	listen := fs.String("listen", "127.0.0.1:0", "TCP address to listen on, host:port (port 0 picks a free one)")
	join := fs.String("join", "", "host:port of any ring member to join via; empty creates a new ring")
	ring := fs.String("ring", "chord", "overlay substrate: chord, can or onehop (must match every ring member; see docs/LOOKUP.md)")
	replicas := fs.Int("replicas", 10, "|Hr|: replicas per data item (must match every ring member)")
	indirect := fs.Bool("indirect", false, "use the indirect counter initialization (§4.2.2) instead of direct")
	seed := fs.Int64("seed", 0, "seed for the node's jitter streams; 0 derives one from the clock")
	repairEvery := fs.Duration("repair", 0, "anti-entropy sweep period as a duration, e.g. 30s (0 disables replica maintenance)")
	repairBudget := fs.Int("repair-budget", 0, "keys repaired per sweep round (0 selects the default, 8)")
	readRepair := fs.Bool("read-repair", false, "refresh stale/missing replicas observed by retrieves")
	inspect := fs.Duration("inspect", 0, "KTS periodic inspection period as a duration, e.g. 1m (0 disables)")
	inspectBudget := fs.Int("inspect-budget", 0, "counters re-read per inspection round (0 selects the default, 4)")
	pathCache := fs.Int("path-cache", 0, "lookup path cache capacity in arcs (0 disables; see docs/LOOKUP.md)")
	republish := fs.Duration("republish", 0, "periodic republish interval: re-push replicas this node no longer owns to the current responsible (0 disables)")
	dataDir := fs.String("data-dir", "", "directory for the write-ahead log; replicas and counters survive restarts (empty = volatile)")
	fsync := fs.String("fsync", "os", "log durability: always (fsync per append), batch (periodic flush) or os (page cache)")
	metricsAddr := fs.String("metrics-addr", "", "HTTP address serving GET /metrics (Prometheus) and GET /debug/status (JSON); empty disables")
	logFormat := fs.String("log-format", "text", "log output format: text or json")
	fs.Parse(args)

	log, err := newLogger(*logFormat)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	policy, err := dcdht.ParseFsyncPolicy(*fsync)
	if err != nil {
		log.Error("bad -fsync", "err", err)
		os.Exit(2)
	}
	ringKind, err := dcdht.ParseRing(*ring)
	if err != nil {
		log.Error("bad -ring", "err", err)
		os.Exit(2)
	}
	cfg := dcdht.NodeConfig{
		Replicas:        *replicas,
		Ring:            ringKind,
		Seed:            *seed,
		RepairEvery:     *repairEvery,
		RepairPerRound:  *repairBudget,
		ReadRepair:      *readRepair,
		Inspect:         *inspect,
		InspectPerRound: *inspectBudget,
		PathCache:       *pathCache,
		RepublishEvery:  *republish,
		DataDir:         *dataDir,
		Fsync:           policy,
	}
	if *indirect {
		cfg.Mode = dcdht.ModeIndirect
	}
	node, err := dcdht.StartNode(*listen, cfg)
	if err != nil {
		switch {
		case errors.Is(err, dcdht.ErrCorruptLog):
			log.Error("start: corrupt log — recovery refuses to replay it; move the data directory aside or restore a backup",
				"data_dir", *dataDir, "err", err)
		case errors.Is(err, dcdht.ErrStorage):
			log.Error("start: data directory unusable", "data_dir", *dataDir, "err", err)
		default:
			log.Error("start failed", "err", err)
		}
		os.Exit(1)
	}
	if *dataDir != "" {
		rec := node.Recovered()
		log.Info("durable store opened",
			"data_dir", *dataDir, "fsync", policy,
			"recovered_replicas", rec.Items, "recovered_counters", rec.Counters,
			"torn_tail", rec.TornTail)
	}
	if *metricsAddr != "" {
		srv, err := node.ServeMetrics(*metricsAddr)
		if err != nil {
			log.Error("metrics server failed", "err", err)
			os.Exit(1)
		}
		defer srv.Close()
		log.Info("metrics server up", "addr", srv.Addr(),
			"endpoints", "/metrics /debug/status")
	}
	if *join == "" {
		node.CreateRing()
		log.Info("created ring", "listen", node.Addr())
	} else {
		if err := node.Join(*join); err != nil {
			log.Error("join failed", "via", *join, "err", err)
			os.Exit(1)
		}
		log.Info("joined ring", "via", *join, "listen", node.Addr())
	}
	if *repairEvery > 0 || *readRepair {
		log.Info("replica maintenance on", "sweep", *repairEvery, "read_repair", *readRepair)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	if st := node.RepairStats(); st.Rounds > 0 || st.ReadRepairs > 0 {
		log.Info("repair summary",
			"rounds", st.Rounds, "healed", st.Healed,
			"read_repairs", st.ReadRepairs, "msgs", st.Msgs)
	}
	log.Info("leaving gracefully (handing off replicas and counters)")
	if err := node.Leave(); err != nil {
		log.Error("leave failed", "err", err)
	}
}

func client(op string, args []string) {
	fs := flag.NewFlagSet(op, flag.ExitOnError)
	via := fs.String("via", "", "host:port of any ring member (required)")
	replicas := fs.Int("replicas", 10, "|Hr|: replicas per data item (must match every ring member)")
	timeout := fs.Duration("timeout", 30*time.Second, "deadline for the whole operation as a duration, e.g. 30s")
	baseline := fs.Bool("brk", false, "run the BRICKS baseline protocol instead of UMS")
	ring := fs.String("ring", "chord", "routing substrate the ring runs: chord, can or onehop (must match every ring member)")
	logFormat := fs.String("log-format", "text", "log output format: text or json")
	fs.Parse(args)
	log, err := newLogger(*logFormat)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if *via == "" || fs.NArg() < 1 {
		fmt.Fprintf(os.Stderr, "usage: dcdht-node %s -via addr key [value]\n", op)
		os.Exit(2)
	}
	ringKind, err := dcdht.ParseRing(*ring)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	key := dcdht.Key(fs.Arg(0))

	node, err := dcdht.StartNode("127.0.0.1:0", dcdht.NodeConfig{
		Replicas:       *replicas,
		StabilizeEvery: 200 * time.Millisecond,
		GraceDelay:     100 * time.Millisecond,
		Ring:           ringKind,
	})
	if err != nil {
		log.Error("start failed", "err", err)
		os.Exit(1)
	}
	defer func() {
		node.Leave()
	}()
	if err := node.Join(*via); err != nil {
		log.Error("join failed", "via", *via, "err", err)
		os.Exit(1)
	}
	// One stabilization round so the ephemeral peer is fully linked.
	time.Sleep(500 * time.Millisecond)

	// One Client code path for both protocols: the algorithm is an
	// option, the deadline rides on the context.
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	var opts []dcdht.OpOption
	if *baseline {
		opts = append(opts, dcdht.WithAlgorithm(dcdht.AlgBRK))
	}

	switch op {
	case "put":
		if fs.NArg() < 2 {
			fmt.Fprintln(os.Stderr, "put needs a value")
			os.Exit(2)
		}
		r, err := node.Put(ctx, key, []byte(fs.Arg(1)), opts...)
		if err != nil {
			log.Error("put failed", "key", key, "err", err)
			os.Exit(1)
		}
		fmt.Printf("stored %d/%d replicas with %v in %s (%d msgs)\n",
			r.Stored, *replicas, r.TS, r.Elapsed.Round(time.Millisecond), r.Msgs)
	case "get":
		r, err := node.Get(ctx, key, opts...)
		if err != nil && !dcdht.IsNoCurrent(err) {
			log.Error("get failed", "key", key, "err", err)
			os.Exit(1)
		}
		status := "CURRENT"
		if !r.Current() {
			status = "most recent available (currency not provable)"
		}
		fmt.Printf("%s\n  status: %s, %v, probed %d replicas, %d msgs, %s\n",
			r.Data, status, r.TS, r.Probed, r.Msgs, r.Elapsed.Round(time.Millisecond))
	case "last":
		ts, err := node.LastTS(ctx, key)
		if err != nil {
			log.Error("last_ts failed", "key", key, "err", err)
			os.Exit(1)
		}
		fmt.Printf("last timestamp for %q: %v\n", key, ts)
	}
}
