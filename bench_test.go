package dcdht

// One benchmark per table/figure of the paper's evaluation (§5) plus the
// analysis tables of §3.3/§4.2.2. Each benchmark regenerates its figure
// as a series table printed to stdout — the same rows the paper plots —
// and reports headline values via b.ReportMetric.
//
// The benches run the scaled-down "quick" sweeps so the whole suite
// finishes in minutes; `go run ./cmd/dcdht-bench -full` reproduces the
// paper-scale axes (10,000 peers, 3-hour windows). Figures sharing runs
// (7/8 and 9/10) compute once and are cached across benchmarks.

import (
	"context"
	"fmt"
	"os"
	"sync"
	"testing"
	"time"

	"repro/internal/exp"
)

var benchOpts = exp.Options{Seed: 42}

var (
	scaleOnce sync.Once
	fig7      *exp.Table
	fig8      *exp.Table

	replOnce sync.Once
	fig9     *exp.Table
	fig10    *exp.Table
)

func scaleTables() (*exp.Table, *exp.Table) {
	scaleOnce.Do(func() { fig7, fig8 = exp.Figures7And8(benchOpts) })
	return fig7, fig8
}

func replicaTables() (*exp.Table, *exp.Table) {
	replOnce.Do(func() { fig9, fig10 = exp.Figures9And10(benchOpts) })
	return fig9, fig10
}

// report prints the table once and pushes a couple of its headline cells
// into the benchmark metrics.
func report(b *testing.B, t *exp.Table, metric string) {
	b.Helper()
	t.Render(os.Stdout)
	last := t.XS[len(t.XS)-1]
	for _, s := range t.Series {
		if v, ok := t.Get(last, s); ok {
			b.ReportMetric(v, fmt.Sprintf("%s/%s", metric, sanitize(s)))
		}
	}
}

func sanitize(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		switch r {
		case ' ', '(', ')', ',', '|', '=':
			out = append(out, '_')
		default:
			out = append(out, r)
		}
	}
	return string(out)
}

// BenchmarkAnalysisExpectedRetrievals regenerates the §3.3 cost model
// table: E(X) vs pt with the 1/pt bound and a Monte Carlo cross-check
// (paper example: pt=0.35 ⇒ E(X) < 3).
func BenchmarkAnalysisExpectedRetrievals(b *testing.B) {
	var t *exp.Table
	for i := 0; i < b.N; i++ {
		t = exp.AnalysisExpectedRetrievals(benchOpts)
	}
	report(b, t, "EX")
}

// BenchmarkAnalysisIndirectSuccess regenerates the §4.2.2 table:
// ps = 1-(1-pt)^|Hr| (paper example: pt=0.3, |Hr|=13 ⇒ ps > 99%).
func BenchmarkAnalysisIndirectSuccess(b *testing.B) {
	var t *exp.Table
	for i := 0; i < b.N; i++ {
		t = exp.AnalysisIndirectSuccess(benchOpts)
	}
	report(b, t, "ps")
}

// BenchmarkFigure6ClusterResponseTime regenerates Figure 6: response
// time vs peers (10–60) on the cluster network profile.
func BenchmarkFigure6ClusterResponseTime(b *testing.B) {
	var t *exp.Table
	for i := 0; i < b.N; i++ {
		t = exp.Figure6(benchOpts)
	}
	report(b, t, "resp_s")
}

// BenchmarkFigure7ScaleResponseTime regenerates Figure 7: response time
// vs number of peers under Table 1.
func BenchmarkFigure7ScaleResponseTime(b *testing.B) {
	var t *exp.Table
	for i := 0; i < b.N; i++ {
		scaleOnce = sync.Once{}
		t, _ = scaleTables()
	}
	report(b, t, "resp_s")
}

// BenchmarkFigure8ScaleMessages regenerates Figure 8: communication cost
// vs number of peers (shares Figure 7's runs when already computed).
func BenchmarkFigure8ScaleMessages(b *testing.B) {
	var t *exp.Table
	for i := 0; i < b.N; i++ {
		_, t = scaleTables()
	}
	report(b, t, "msgs")
}

// BenchmarkFigure9ReplicasResponseTime regenerates Figure 9: response
// time vs number of replicas.
func BenchmarkFigure9ReplicasResponseTime(b *testing.B) {
	var t *exp.Table
	for i := 0; i < b.N; i++ {
		replOnce = sync.Once{}
		t, _ = replicaTables()
	}
	report(b, t, "resp_s")
}

// BenchmarkFigure10ReplicasMessages regenerates Figure 10: communication
// cost vs number of replicas (shares Figure 9's runs when already
// computed).
func BenchmarkFigure10ReplicasMessages(b *testing.B) {
	var t *exp.Table
	for i := 0; i < b.N; i++ {
		_, t = replicaTables()
	}
	report(b, t, "msgs")
}

// BenchmarkFigure11FailureRate regenerates Figure 11: response time vs
// failure rate.
func BenchmarkFigure11FailureRate(b *testing.B) {
	var t *exp.Table
	for i := 0; i < b.N; i++ {
		t = exp.Figure11(benchOpts)
	}
	report(b, t, "resp_s")
}

// BenchmarkFigure12UpdateFrequency regenerates Figure 12: response time
// vs update frequency for the two UMS variants.
func BenchmarkFigure12UpdateFrequency(b *testing.B) {
	var t *exp.Table
	for i := 0; i < b.N; i++ {
		t = exp.Figure12(benchOpts)
	}
	report(b, t, "resp_s")
}

// BenchmarkAblationRLU compares RLA counter management with the §4.3
// RLU fallback (drop the counter after every timestamp).
func BenchmarkAblationRLU(b *testing.B) {
	var t *exp.Table
	for i := 0; i < b.N; i++ {
		t = exp.AblationRLU(benchOpts)
	}
	report(b, t, "rlu")
}

// BenchmarkAblationGraceDelay sweeps the indirect algorithm's pre-read
// wait (§4.2.2 "waits a while").
func BenchmarkAblationGraceDelay(b *testing.B) {
	var t *exp.Table
	for i := 0; i < b.N; i++ {
		t = exp.AblationGraceDelay(benchOpts)
	}
	report(b, t, "grace")
}

// BenchmarkAblationSuccessorList sweeps Chord's failure budget under 50%
// failures.
func BenchmarkAblationSuccessorList(b *testing.B) {
	var t *exp.Table
	for i := 0; i < b.N; i++ {
		t = exp.AblationSuccessorList(benchOpts)
	}
	report(b, t, "succs")
}

// BenchmarkAblationDataHandoff contrasts the paper's no-handoff DHT
// model with this library's replica handoff extension.
func BenchmarkAblationDataHandoff(b *testing.B) {
	var t *exp.Table
	for i := 0; i < b.N; i++ {
		t = exp.AblationDataHandoff(benchOpts)
	}
	report(b, t, "handoff")
}

// BenchmarkRetrieveOpSimulated measures the harness itself: wall-clock
// cost of one simulated UMS retrieve (network of 256 peers, |Hr|=10).
func BenchmarkRetrieveOpSimulated(b *testing.B) {
	n := NewSimNetwork(256, SimConfig{Seed: 9})
	defer n.Close()
	if _, err := n.Put(context.Background(), "bench", []byte("payload")); err != nil {
		b.Fatal(err)
	}
	var simElapsed time.Duration
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := n.Get(context.Background(), "bench")
		if err != nil {
			b.Fatal(err)
		}
		simElapsed += r.Elapsed
	}
	b.ReportMetric(simElapsed.Seconds()/float64(b.N), "simsec/op")
}
