package dcdht

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/analysis"
	"repro/internal/can"
	"repro/internal/core"
	"repro/internal/dht"
	"repro/internal/exp"
	"repro/internal/kts"
	"repro/internal/network"
	"repro/internal/network/simwire"
	"repro/internal/onehop"
	"repro/internal/repair"
	"repro/internal/scenario"
)

// Key names a data item.
type Key = core.Key

// Timestamp is the 128-bit KTS logical timestamp.
type Timestamp = core.Timestamp

// Result reports one operation's outcome and cost (response time,
// messages, replicas probed, currency).
type Result = dht.OpResult

// Errors re-exported for callers to classify with errors.Is.
var (
	// ErrNotFound marks a key no reachable replica holds.
	ErrNotFound = core.ErrNotFound
	// ErrNoCurrentReplica marks a retrieve that fell back to the most
	// recent available replica because currency could not be proven;
	// classify with IsNoCurrent.
	ErrNoCurrentReplica = core.ErrNoCurrentReplica
	// ErrUnreachable marks an operation that could not reach any
	// responsible peer.
	ErrUnreachable = core.ErrUnreachable
	// ErrTimeout marks an operation that exceeded its deadline (also
	// wraps context.DeadlineExceeded when the context set it).
	ErrTimeout = core.ErrTimeout
)

// Mode selects the KTS counter initialization strategy.
type Mode = kts.InitMode

// Ring selects the overlay substrate a deployment runs on. All three
// substrates implement the same dht.Ring contract, so KTS/UMS/BRK run
// on any of them unchanged.
type Ring = exp.RingKind

// The ring substrates.
const (
	// RingChord is the paper's primary substrate: O(log n) finger-table
	// routing (default).
	RingChord = exp.RingChord
	// RingCAN is the d-dimensional coordinate-space overlay (§4.2.1.1).
	RingCAN = exp.RingCAN
	// RingOneHop keeps a full routing table per node via membership
	// event propagation: O(1) lookups bought with O(n) event fan-out
	// under churn (the D1HT trade).
	RingOneHop = exp.RingOneHop
)

// ParseRing parses the -ring flag spellings "chord", "can" and
// "onehop" (empty means the chord default).
func ParseRing(s string) (Ring, error) {
	switch Ring(s) {
	case "", RingChord:
		return RingChord, nil
	case RingCAN:
		return RingCAN, nil
	case RingOneHop:
		return RingOneHop, nil
	}
	return "", fmt.Errorf("dcdht: unknown ring %q (want chord, can or onehop)", s)
}

// RepairStats reports the replica-maintenance subsystem's cumulative
// work: sweep rounds run, replicas actually healed (pushes kept under
// PutIfNewer), read-repair refreshes, and the maintenance traffic in
// messages and bytes. Aggregated across peers on SimNetwork; per node on
// Node.
type RepairStats = repair.Stats

// PathCacheStats reports the lookup path cache's counters: hits,
// misses, stale fallbacks and the arcs currently cached. Per peer on
// Node; aggregate with MetricsSnapshot on SimNetwork.
type PathCacheStats = dht.PathCacheStats

// The two UMS variants of the paper's evaluation.
const (
	// ModeDirect transfers KTS counters directly on responsibility
	// changes (§4.2.1) — the default and the paper's best performer.
	ModeDirect = kts.ModeDirect
	// ModeIndirect re-initializes counters from the stored replicas
	// after a grace delay (§4.2.2) — cheaper joins, slower timestamping.
	ModeIndirect = kts.ModeIndirect
)

// IsNoCurrent reports whether err is the "stale but available" retrieve
// outcome: no replica carried the last generated timestamp, so the most
// recent available one was returned (Figure 2's data_mr path).
func IsNoCurrent(err error) bool { return errors.Is(err, core.ErrNoCurrentReplica) }

// Analysis helpers (§3.3, §4.2.2 closed forms).
var (
	// ExpectedRetrievals is E(X), the expected number of replicas UMS
	// probes given the probability of currency and availability.
	ExpectedRetrievals = analysis.ExpectedRetrievals
	// IndirectSuccessProb is ps = 1-(1-pt)^|Hr|.
	IndirectSuccessProb = analysis.IndirectSuccessProb
	// ReplicasForSuccess inverts ps for a target probability.
	ReplicasForSuccess = analysis.ReplicasForSuccess
)

// Float returns a pointer to v, for the optional float knobs (e.g.
// SimConfig.FailureRate) whose zero value must stay expressible:
// dcdht.Float(0) means "no failures", nil means "use the default".
func Float(v float64) *float64 { return &v }

// SimConfig tunes a simulated network. The zero value gives the paper's
// Table 1 environment with 10 replicas and the direct algorithm.
type SimConfig struct {
	// Replicas is |Hr|. Default 10 (Table 1). Zero is not a meaningful
	// replication factor, so the zero value selects the default.
	Replicas int
	// Mode selects UMS-Direct or UMS-Indirect. Default direct.
	Mode Mode
	// Seed makes the whole simulation reproducible. Default 1 (seed 0
	// itself is reserved as "unset"; every other value is used as given).
	Seed int64
	// Cluster selects the LAN profile instead of Table 1's WAN model.
	Cluster bool
	// Ring picks the overlay substrate. The zero value keeps the
	// paper's Chord.
	Ring Ring
	// PathCache gives every peer a lookup path cache with this many
	// arcs: resolved lookups are remembered per key range and re-used
	// after a liveness-and-ownership probe, cutting repeat-lookup hops
	// on any substrate. Zero disables it.
	PathCache int
	// RepublishEvery enables the periodic republisher with the given
	// period: peers re-push replicas they still hold but no longer own
	// to the current responsible, restoring reachability under the
	// paper's no-handoff data model. Zero disables it.
	RepublishEvery time.Duration
	// RepublishPerRound caps how many keys one republish round pushes
	// per peer. Default 16.
	RepublishPerRound int
	// FailureRate is the fraction of ChurnOne departures that crash
	// instead of leaving gracefully. nil selects Table 1's 0.05; use
	// Float(0) for a network whose departures are all graceful — a plain
	// float64 could not express that (its zero value meant the default).
	FailureRate *float64
	// GraceDelay overrides the indirect algorithm's wait. Zero selects
	// the KTS default (500ms); a negative value means "no wait".
	GraceDelay time.Duration
	// Inspect enables KTS periodic inspection with the given period.
	Inspect time.Duration
	// RepairEvery enables the replica-maintenance subsystem's
	// anti-entropy sweep with the given period: each peer periodically
	// re-pushes the current value of the keys it hosts to the current
	// replica set, healing replicas lost to churn. Zero disables it.
	RepairEvery time.Duration
	// RepairPerRound caps how many keys one sweep round repairs per
	// peer. Default 8.
	RepairPerRound int
	// ReadRepair enables opportunistic read-repair: a retrieve that
	// observes stale or missing replicas among the probed positions
	// refreshes them asynchronously with the value it found.
	ReadRepair bool
	// Scenario plays a scripted fault-and-condition schedule against
	// the network: events fire in virtual time, relative to the moment
	// NewSimNetwork returns, as the caller advances the clock. Build
	// one from Event values or BuiltinScenario. NewSimNetwork panics on
	// an invalid scenario (use Scenario.Validate to check one first);
	// nil plays nothing.
	Scenario *Scenario
}

// repairConfig translates the facade knobs for the subsystem.
func (c SimConfig) repairConfig() repair.Config {
	return repair.Config{Every: c.RepairEvery, PerRound: c.RepairPerRound, ReadRepair: c.ReadRepair}
}

// SimNetwork is a simulated deployment of peers running Chord + KTS +
// UMS + BRK. All methods drive virtual time; a retrieve that takes 6
// simulated seconds returns in microseconds of wall time.
type SimNetwork struct {
	cfg      SimConfig
	failRate float64
	d        *exp.Deployment
	rng      interface{ Intn(int) int }
	eng      *scenario.Engine // most recent scenario playback, nil if none
}

// NewSimNetwork builds and assembles a simulated network of n peers.
func NewSimNetwork(n int, cfg SimConfig) *SimNetwork {
	if n <= 0 {
		panic("dcdht: network needs at least one peer")
	}
	if cfg.Replicas == 0 {
		cfg.Replicas = 10
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	failRate := 0.05 // Table 1
	if cfg.FailureRate != nil {
		failRate = *cfg.FailureRate
	}
	net := simwire.Table1()
	sc := exp.Table1Scenario(exp.AlgUMSDirect, n, cfg.Seed)
	chordCfg := sc.Chord
	// The alternative substrates' maintenance timers track chord's: one
	// liveness/update probe period and the shared RPC patience.
	canCfg := can.Config{PingEvery: chordCfg.CheckPredEvery, RPCTimeout: chordCfg.RPCTimeout}
	hopCfg := onehop.Config{PingEvery: chordCfg.CheckPredEvery, RPCTimeout: chordCfg.RPCTimeout}
	if cfg.Cluster {
		net = simwire.Cluster()
		chordCfg.RPCTimeout = 250 * time.Millisecond
		chordCfg.StabilizeEvery = 2 * time.Second
		chordCfg.FixFingersEvery = 2 * time.Second
		chordCfg.CheckPredEvery = 2 * time.Second
		canCfg = can.Config{PingEvery: 2 * time.Second, RPCTimeout: 250 * time.Millisecond}
		hopCfg = onehop.Config{PingEvery: 2 * time.Second, RPCTimeout: 250 * time.Millisecond}
	}
	d := exp.NewDeployment(exp.DeployConfig{
		Peers:             n,
		Replicas:          cfg.Replicas,
		Seed:              cfg.Seed,
		Net:               net,
		Ring:              cfg.Ring,
		Chord:             chordCfg,
		CAN:               canCfg,
		OneHop:            hopCfg,
		PathCache:         cfg.PathCache,
		RepublishEvery:    cfg.RepublishEvery,
		RepublishPerRound: cfg.RepublishPerRound,
		KTSMode:           cfg.Mode,
		GraceDelay:        cfg.GraceDelay,
		InspectEvery:      cfg.Inspect,
		Repair:            cfg.repairConfig(),
	})
	sim := &SimNetwork{cfg: cfg, failRate: failRate, d: d, rng: d.K.NewRand("facade")}
	// Let maintenance settle before handing the network to the caller.
	d.RunFor(time.Minute)
	if cfg.Scenario != nil {
		if err := sim.PlayScenario(*cfg.Scenario); err != nil {
			panic(err)
		}
	}
	return sim
}

// Peers returns the number of live peers.
func (s *SimNetwork) Peers() int { return len(s.d.LivePeers()) }

// Now returns the current virtual time.
func (s *SimNetwork) Now() time.Duration { return s.d.K.Now() }

// Advance runs the simulation for d of virtual time (churn timers,
// stabilization, background repair all progress).
func (s *SimNetwork) Advance(d time.Duration) { s.d.RunFor(d) }

// Put implements Client: it stores data under key with a fresh
// timestamp, issued from a random (or pinned, see WithIssuer) live
// peer. The context's deadline is honored across every simulated RPC.
func (s *SimNetwork) Put(ctx context.Context, key Key, data []byte, opts ...OpOption) (Result, error) {
	oc, err := resolveOpts(opts)
	if err != nil {
		return Result{}, fmt.Errorf("dcdht: put(%q): %w", key, err)
	}
	return s.op(ctx, oc, func(ctx context.Context, p *exp.Peer) (Result, error) {
		if oc.alg == AlgBRK {
			return p.BRK.Insert(ctx, key, data)
		}
		return p.UMS.Insert(ctx, key, data)
	})
}

// Get implements Client: it returns the current replica of key, issued
// from a random (or pinned) live peer, at the requested consistency
// level (WithConsistency; provably current by default).
func (s *SimNetwork) Get(ctx context.Context, key Key, opts ...OpOption) (Result, error) {
	oc, err := resolveOpts(opts)
	if err != nil {
		return Result{}, fmt.Errorf("dcdht: get(%q): %w", key, err)
	}
	return s.op(ctx, oc, func(ctx context.Context, p *exp.Peer) (Result, error) {
		if oc.alg == AlgBRK {
			return p.BRK.Retrieve(ctx, key)
		}
		return p.UMS.RetrieveWith(ctx, key, oc.readPolicy())
	})
}

// LastTS implements Client: it asks KTS for the last timestamp
// generated for key. WithIssuer selects the asking peer; with
// WithConsistency(Bounded(d)) a cached answer observed at most d ago is
// served without a network hop (and Eventual serves any cached answer).
func (s *SimNetwork) LastTS(ctx context.Context, key Key, opts ...OpOption) (Timestamp, error) {
	oc, err := resolveOpts(opts)
	if err != nil {
		return Timestamp{}, fmt.Errorf("dcdht: last_ts(%q): %w", key, err)
	}
	res, err := s.op(ctx, oc, func(ctx context.Context, p *exp.Peer) (Result, error) {
		if ts, ok := cachedLastTS(p.KTS, key, oc); ok {
			return Result{TS: ts}, nil
		}
		t, lerr := p.KTS.LastTS(ctx, key)
		return Result{TS: t}, lerr
	})
	if err != nil {
		return Timestamp{}, err
	}
	return res.TS, nil
}

// cachedLastTS consults a peer's last-ts cache for the relaxed
// consistency levels: Bounded(d) serves an entry no older than d,
// Eventual serves any entry. Current (the default) never uses it.
func cachedLastTS(svc *kts.Service, key Key, oc opConfig) (Timestamp, bool) {
	if !oc.levelSet || oc.level == dht.LevelCurrent {
		return Timestamp{}, false
	}
	ts, age, ok := svc.Cached(key)
	if !ok {
		return Timestamp{}, false
	}
	if oc.level == dht.LevelBounded && age > oc.bound {
		return Timestamp{}, false
	}
	return ts, true
}

// PutMulti implements Client: UMS writes share one batched KTS round
// per responsible (kts.GenTSBatch) issued from a single live peer, then
// replicate concurrently, with per-key error isolation. BRK has no KTS
// round to batch, so its writes fan out per key as before.
func (s *SimNetwork) PutMulti(ctx context.Context, items []KV, opts ...OpOption) ([]MultiResult, error) {
	oc, err := resolveOpts(opts)
	if err != nil {
		return nil, fmt.Errorf("dcdht: put multi: %w", err)
	}
	keys := make([]Key, len(items))
	for i, it := range items {
		keys[i] = it.Key
	}
	if oc.alg == AlgBRK {
		return s.multi(ctx, keys, func(ctx context.Context, i int, p *exp.Peer) (Result, error) {
			return p.BRK.Insert(ctx, items[i].Key, items[i].Data)
		}, oc)
	}
	return s.batchMulti(ctx, keys, oc, func(ctx context.Context, p *exp.Peer) ([]Result, []error) {
		datas := make([][]byte, len(items))
		for i := range items {
			datas[i] = items[i].Data
		}
		return p.UMS.InsertMulti(ctx, keys, datas)
	})
}

// GetMulti implements Client: UMS reads at the provably-current level
// share one batched KTS last_ts round per responsible
// (kts.LastTSBatch) issued from a single live peer; the relaxed levels
// and BRK have no KTS round to batch and fan out per key.
func (s *SimNetwork) GetMulti(ctx context.Context, keys []Key, opts ...OpOption) ([]MultiResult, error) {
	oc, err := resolveOpts(opts)
	if err != nil {
		return nil, fmt.Errorf("dcdht: get multi: %w", err)
	}
	if oc.alg == AlgBRK {
		return s.multi(ctx, keys, func(ctx context.Context, i int, p *exp.Peer) (Result, error) {
			return p.BRK.Retrieve(ctx, keys[i])
		}, oc)
	}
	return s.batchMulti(ctx, keys, oc, func(ctx context.Context, p *exp.Peer) ([]Result, []error) {
		return p.UMS.RetrieveMulti(ctx, keys, oc.readPolicy())
	})
}

// ChurnOne makes one random peer depart (gracefully or by failure per
// FailureRate) and joins a fresh replacement, keeping the population
// constant — one event of the paper's churn process.
func (s *SimNetwork) ChurnOne() {
	s.d.Do(func() {
		victim := s.d.RandomLivePeer(s.rng)
		if victim == nil {
			return
		}
		fail := s.rng.Intn(10000) < int(s.failRate*10000)
		s.d.Depart(victim, fail)
		s.d.SpawnJoin(s.rng)
	})
}

// FailOne crashes one random peer without replacement (drops the
// population by one, losing its replicas and counters).
func (s *SimNetwork) FailOne() {
	s.d.Do(func() {
		if victim := s.d.RandomLivePeer(s.rng); victim != nil {
			s.d.Depart(victim, true)
		}
	})
}

// RepairStats aggregates the replica-maintenance counters over every
// peer (zero when RepairEvery and ReadRepair are both off).
func (s *SimNetwork) RepairStats() RepairStats { return s.d.RepairStats() }

// MetricsSnapshot captures the deployment-wide metrics registry: every
// peer registers the same families, so the counters aggregate
// cluster-wide. All timings are virtual and no RNG is consumed, so the
// snapshot is bit-identical across replays of the same seed (see
// docs/OBSERVABILITY.md).
func (s *SimNetwork) MetricsSnapshot() *MetricsSnapshot { return s.d.Obs.Snapshot() }

// Close stops the simulation.
func (s *SimNetwork) Close() { s.d.K.Stop() }

// pickPeer selects the issuing peer for one operation: a random live
// peer, or the pinned index (modulo the live population).
func (s *SimNetwork) pickPeer(oc opConfig) *exp.Peer {
	if oc.peer >= 0 {
		live := s.d.LivePeers()
		if len(live) == 0 {
			return nil
		}
		return live[oc.peer%len(live)]
	}
	return s.d.RandomLivePeer(s.rng)
}

// op runs one operation as a simulation process, driving virtual time
// until it completes. A context that is already done is rejected before
// the simulation is touched, so expired deadlines fail promptly.
func (s *SimNetwork) op(ctx context.Context, oc opConfig, fn func(context.Context, *exp.Peer) (Result, error)) (Result, error) {
	if err := network.CtxError(ctx); err != nil {
		return Result{}, fmt.Errorf("dcdht: %w", err)
	}
	p := s.pickPeer(oc)
	if p == nil {
		return Result{}, fmt.Errorf("dcdht: no live peer: %w", core.ErrUnreachable)
	}
	var res Result
	var err error
	if !s.d.Do(func() { res, err = fn(ctx, p) }) {
		return res, fmt.Errorf("dcdht: simulation stalled: %w", core.ErrTimeout)
	}
	return res, err
}

// batchMulti runs a whole multi-operation from one issuing peer as a
// single simulation process: the batched KTS round inside run is what
// turns n per-key round trips into one round per replica set. Per-key
// outcomes keep their error isolation.
func (s *SimNetwork) batchMulti(ctx context.Context, keys []Key, oc opConfig, run func(context.Context, *exp.Peer) ([]Result, []error)) ([]MultiResult, error) {
	out := make([]MultiResult, len(keys))
	if err := network.CtxError(ctx); err != nil {
		return nil, fmt.Errorf("dcdht: %w", err)
	}
	for i := range keys {
		out[i].Key = keys[i]
	}
	if len(keys) == 0 {
		return out, nil
	}
	p := s.pickPeer(oc)
	if p == nil {
		for i := range out {
			out[i].Err = fmt.Errorf("dcdht: no live peer: %w", core.ErrUnreachable)
		}
		return out, nil
	}
	var results []Result
	var errs []error
	if !s.d.Do(func() { results, errs = run(ctx, p) }) {
		return out, fmt.Errorf("dcdht: simulation stalled: %w", core.ErrTimeout)
	}
	for i := range out {
		out[i].Result, out[i].Err = results[i], errs[i]
	}
	return out, nil
}

// multi fans n sub-operations out as concurrent simulation processes
// and drives virtual time until all have completed. Issuing peers are
// chosen up front so the deterministic RNG stream is consumed in a
// reproducible order.
func (s *SimNetwork) multi(ctx context.Context, keys []Key, issue func(context.Context, int, *exp.Peer) (Result, error), oc opConfig) ([]MultiResult, error) {
	out := make([]MultiResult, len(keys))
	if err := network.CtxError(ctx); err != nil {
		return nil, fmt.Errorf("dcdht: %w", err)
	}
	if len(keys) == 0 {
		return out, nil
	}
	peers := make([]*exp.Peer, len(keys))
	for i := range keys {
		peers[i] = s.pickPeer(oc)
	}
	ok := s.d.Do(func() {
		network.GoJoin(s.d.Net.Env(), len(keys), 10*time.Millisecond, func(i int) {
			out[i].Key = keys[i]
			if peers[i] == nil {
				out[i].Err = fmt.Errorf("dcdht: no live peer: %w", core.ErrUnreachable)
				return
			}
			out[i].Result, out[i].Err = issue(ctx, i, peers[i])
		})
	})
	if !ok {
		return out, fmt.Errorf("dcdht: simulation stalled: %w", core.ErrTimeout)
	}
	return out, nil
}
