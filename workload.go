package dcdht

import (
	"context"
	"fmt"

	"repro/internal/dht"
	"repro/internal/network"
	"repro/internal/workload"
)

// WorkloadSpec configures one workload run: the key-popularity pattern
// (uniform, zipf, hotkey-update, scan-recent), the read/write mix, the
// keyspace, and the driver — closed-loop (Concurrency workers issuing
// back to back) or open-loop (operations issued at Rate per second
// regardless of completions). The zero value is a read-heavy uniform
// workload of 500 operations; see the field docs on workload.Spec.
type WorkloadSpec = workload.Spec

// WorkloadReport is one workload run's outcome: throughput, per-op-type
// latency quantiles (p50/p95/p99/p999 from log-bucketed histograms),
// and error/staleness counts. It serializes to the BENCH_workload.json
// schema documented in docs/BENCHMARKS.md.
type WorkloadReport = workload.Report

// WorkloadOpStats is one operation kind's slice of a WorkloadReport.
type WorkloadOpStats = workload.OpStats

// WorkloadPattern names a key-popularity pattern.
type WorkloadPattern = workload.Pattern

// The built-in workload patterns.
const (
	// WorkloadUniform draws reads and writes uniformly over the keyspace
	// — the paper's own access model.
	WorkloadUniform = workload.Uniform
	// WorkloadZipf draws both from a Zipf distribution (skew
	// WorkloadSpec.ZipfS), concentrating traffic on a few hot keys.
	WorkloadZipf = workload.Zipf
	// WorkloadHotKeyUpdate hammers writes on a small hot set while reads
	// stay uniform — stresses timestamping of contended keys.
	WorkloadHotKeyUpdate = workload.HotKeyUpdate
	// WorkloadScanRecent writes round-robin and reads the most recently
	// written keys — stresses currency of fresh updates.
	WorkloadScanRecent = workload.ScanRecent
)

// WorkloadRunner is implemented by clients that run workloads natively:
// SimNetwork executes the whole run as virtual-time processes (so a
// seed replays bit-identically), Node on its own environment. The
// package-level RunWorkload prefers this interface when present.
type WorkloadRunner interface {
	RunWorkload(ctx context.Context, spec WorkloadSpec) (*WorkloadReport, error)
}

// Compile-time conformance: both deployment styles run workloads
// natively.
var (
	_ WorkloadRunner = (*SimNetwork)(nil)
	_ WorkloadRunner = (*Node)(nil)
)

// RunWorkload drives spec against any Client. Clients that implement
// WorkloadRunner (both SimNetwork and Node do) run it natively;
// anything else is driven by wall-clock goroutines through the plain
// Put/Get surface. Cancelling ctx stops issuing new operations at the
// next boundary.
func RunWorkload(ctx context.Context, c Client, spec WorkloadSpec) (*WorkloadReport, error) {
	if r, ok := c.(WorkloadRunner); ok {
		return r.RunWorkload(ctx, spec)
	}
	env := network.NewRealEnv(spec.Seed)
	defer env.Close()
	return workload.Run(ctx, env, genericWorkloadClient{c}, spec)
}

// genericWorkloadClient adapts a plain Client for the workload engine,
// translating the engine's read policies back into WithConsistency
// options so consistency-mix specs work against any Client.
type genericWorkloadClient struct{ c Client }

func (a genericWorkloadClient) Put(ctx context.Context, key Key, data []byte) (Result, error) {
	return a.c.Put(ctx, key, data)
}

func (a genericWorkloadClient) Get(ctx context.Context, key Key) (Result, error) {
	return a.c.Get(ctx, key)
}

func (a genericWorkloadClient) GetWith(ctx context.Context, key Key, pol dht.ReadPolicy) (Result, error) {
	switch pol.Level {
	case dht.LevelEventual:
		return a.c.Get(ctx, key, WithConsistency(Eventual))
	case dht.LevelBounded:
		return a.c.Get(ctx, key, WithConsistency(Bounded(pol.Bound)))
	default:
		return a.c.Get(ctx, key)
	}
}

// RunWorkload implements WorkloadRunner: the generator, the issuing
// peers and every latency sample run in virtual time, so the same spec
// and seed replay the identical report bit for bit (asserted by the
// determinism tests). When spec.Seed is zero the network's own seed is
// used, keeping one knob for full reproducibility. A context that is
// already done is rejected before the simulation is touched.
func (s *SimNetwork) RunWorkload(ctx context.Context, spec WorkloadSpec) (*WorkloadReport, error) {
	if err := network.CtxError(ctx); err != nil {
		return nil, fmt.Errorf("dcdht: %w", err)
	}
	if spec.Seed == 0 {
		spec.Seed = s.cfg.Seed
	}
	return s.d.RunWorkload(ctx, spec)
}

// RunWorkload implements WorkloadRunner: the workload issues every
// operation from this node over TCP, measuring wall-clock latency.
func (n *Node) RunWorkload(ctx context.Context, spec WorkloadSpec) (*WorkloadReport, error) {
	if err := network.CtxError(ctx); err != nil {
		return nil, fmt.Errorf("dcdht: %w", err)
	}
	return workload.Run(ctx, n.env, genericWorkloadClient{n}, spec)
}
