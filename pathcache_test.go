package dcdht

import (
	"context"
	"fmt"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dht"
)

// sumCacheStats aggregates the path-cache counters over every peer the
// network ever ran (departed peers keep their cumulative counts).
func sumCacheStats(n *SimNetwork) dht.PathCacheStats {
	var sum dht.PathCacheStats
	for _, p := range n.d.Peers {
		if p.Cache != nil {
			st := p.Cache.Stats()
			sum.Hits += st.Hits
			sum.Misses += st.Misses
			sum.Fallbacks += st.Fallbacks
			sum.Arcs += st.Arcs
		}
	}
	return sum
}

// TestPathCacheSafetyUnderChurnAndHeal is the path cache's safety
// acceptance test at the facade: with every peer's service ring behind
// the cache, a churn wave followed by a network split with heal must
// never let a stale cached NodeRef produce a wrong-owner read — the
// fallback-and-evict path (probe the cached owner, distrust it on any
// doubt, re-route through the ring) has to fire instead.
func TestPathCacheSafetyUnderChurnAndHeal(t *testing.T) {
	ctx := context.Background()
	// Inspection reconciles split-brain counters post-heal, exactly as
	// in the split-heal scenario test; the path cache must not change
	// any of those outcomes.
	n := NewSimNetwork(24, SimConfig{
		Replicas:    3,
		Seed:        13,
		PathCache:   64,
		FailureRate: Float(0),
		Inspect:     time.Minute,
	})
	defer n.Close()

	const keys = 6
	key := func(i int) Key { return Key(fmt.Sprintf("pc%d", i)) }
	for i := 0; i < keys; i++ {
		if _, err := n.Put(ctx, key(i), []byte(fmt.Sprintf("v0-%d", i))); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}
	// Repeat reads from a pinned issuer warm its cache arcs.
	for round := 0; round < 3; round++ {
		for i := 0; i < keys; i++ {
			if _, err := n.Get(ctx, key(i), WithIssuer(0)); err != nil {
				t.Fatalf("warm get %d: %v", i, err)
			}
		}
	}
	if st := sumCacheStats(n); st.Hits == 0 {
		t.Fatalf("cache never engaged during the warm reads: %+v", st)
	}

	// The churn wave: graceful departures with replacements, reads from
	// the pinned issuer in between so its cached arcs meet departed
	// owners. The run is seeded, so the loop's outcome replays exactly;
	// it keeps churning until the fallback path has provably fired.
	for wave := 0; wave < 20 && sumCacheStats(n).Fallbacks == 0; wave++ {
		for j := 0; j < 3; j++ {
			n.ChurnOne()
		}
		n.Advance(time.Minute)
		for i := 0; i < keys; i++ {
			// Errors are acceptable mid-churn; wrong data never is —
			// checked below once the overlay settles.
			n.Get(ctx, key(i), WithIssuer(0))
		}
	}
	if st := sumCacheStats(n); st.Fallbacks == 0 {
		t.Fatalf("churn never exercised the fallback-and-evict path: %+v", st)
	}

	// Split and heal on top of the churned overlay.
	sc := Scenario{Name: "pathcache-split-heal", Events: []Event{
		{At: time.Minute, Kind: EventPartition, Groups: []float64{0.6, 0.4}},
		{At: 4 * time.Minute, Kind: EventHeal},
	}}
	if err := n.PlayScenario(sc); err != nil {
		t.Fatalf("PlayScenario: %v", err)
	}
	n.Advance(2 * time.Minute)
	for i := 0; i < keys; i++ {
		// Reads during the split populate both sides' caches with arcs
		// the heal will invalidate.
		n.Get(ctx, key(i), WithIssuer(0))
		n.Get(ctx, key(i), WithIssuer(7))
	}
	n.Advance(15 * time.Minute)
	if !n.ScenarioDone() {
		t.Fatal("scenario events did not all apply")
	}

	// Settled: a fresh write then reads through many issuers' caches
	// must return exactly the current value — a stale cached ref that
	// slipped past its probe would surface here as wrong or old data.
	for i := 0; i < keys; i++ {
		payload := []byte(fmt.Sprintf("v1-%d", i))
		if _, err := n.Put(ctx, key(i), payload); err != nil {
			t.Fatalf("post-heal put %d: %v", i, err)
		}
		for probe := 0; probe < 4; probe++ {
			g, err := n.Get(ctx, key(i), WithIssuer(probe*3))
			if err != nil {
				t.Fatalf("post-heal get %d (issuer %d): %v", i, probe*3, err)
			}
			if !g.Current() || string(g.Data) != string(payload) {
				t.Fatalf("post-heal get %d (issuer %d): current=%v data=%q, want current %q",
					i, probe*3, g.Current(), g.Data, payload)
			}
		}
	}

	// Ring-layer check of the same invariant: every cached lookup the
	// pinned issuer resolves must land on a live node that claims the
	// target — never a wrong owner, no matter what the cache remembers.
	issuer := n.d.LivePeers()[0]
	for i := 0; i < 200; i++ {
		id := core.ID(uint64(i+1) * 0x9e3779b97f4a7c15)
		var ref dht.NodeRef
		var err error
		if !n.d.Do(func() { ref, _, err = issuer.Ring.Lookup(context.Background(), id) }) {
			t.Fatal("lookup stalled")
		}
		if err != nil {
			t.Fatalf("lookup %d failed on the settled overlay: %v", i, err)
		}
		var owner bool
		for _, p := range n.d.LivePeers() {
			if p.Node.Self().ID == ref.ID {
				owner = p.Node.OwnsID(id)
				break
			}
		}
		if !owner {
			t.Fatalf("lookup %d resolved %s, which is dead or does not claim the target", i, ref.ID)
		}
	}
}

// TestPathCacheChurnReplaysBitIdentical replays the cache-under-churn
// regime twice from one seed: the network's message count, the kernel's
// event count and the aggregated cache counters must all match exactly
// — the cache consumes no randomness and its probes ride the same
// deterministic transport as everything else.
func TestPathCacheChurnReplaysBitIdentical(t *testing.T) {
	run := func() (uint64, uint64, dht.PathCacheStats) {
		n := NewSimNetwork(20, SimConfig{Replicas: 3, Seed: 29, PathCache: 32, FailureRate: Float(0)})
		defer n.Close()
		ctx := context.Background()
		for i := 0; i < 4; i++ {
			n.Put(ctx, Key(fmt.Sprintf("rp%d", i)), []byte("v"))
		}
		for wave := 0; wave < 6; wave++ {
			for i := 0; i < 4; i++ {
				n.Get(ctx, Key(fmt.Sprintf("rp%d", i)), WithIssuer(0))
			}
			n.ChurnOne()
			n.Advance(time.Minute)
		}
		return n.d.Net.TotalMessages(), n.d.K.Events(), sumCacheStats(n)
	}
	msgs1, events1, st1 := run()
	msgs2, events2, st2 := run()
	if msgs1 != msgs2 || events1 != events2 || st1 != st2 {
		t.Fatalf("replay diverged: msgs %d vs %d, events %d vs %d, cache %+v vs %+v",
			msgs1, msgs2, events1, events2, st1, st2)
	}
	if st1.Hits == 0 {
		t.Fatal("cache never engaged")
	}
}
