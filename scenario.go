package dcdht

import (
	"fmt"
	"time"

	"repro/internal/scenario"
)

// Scenario is a scripted fault-and-condition schedule: a named sequence
// of timed events — churn waves, partitions and heals, link condition
// changes — that plays against a simulated network as virtual time
// advances. The same (scenario, seed) pair replays bit-identically:
// identical event trace, identical message counts, identical figures.
// Build one from events, or start from a builtin (BuiltinScenario).
type Scenario = scenario.Script

// Event is one scripted action at an offset from the moment the
// scenario starts playing. See the Kind constants for the actions and
// docs/SCENARIOS.md for the full schema.
type Event = scenario.Event

// EventKind names a scenario event type.
type EventKind = scenario.Kind

// The scenario event kinds.
const (
	// EventCrashWave crashes Count (or Frac of live) peers, spread over
	// the Over window; crashed peers lose replicas and counters.
	EventCrashWave = scenario.KindCrashWave
	// EventLeaveWave departs peers gracefully (with handoff).
	EventLeaveWave = scenario.KindLeaveWave
	// EventJoinWave joins fresh peers through live bootstraps.
	EventJoinWave = scenario.KindJoinWave
	// EventPartition splits the live peers into groups (fractions in
	// Groups) that cannot exchange messages.
	EventPartition = scenario.KindPartition
	// EventHeal removes the partition and re-introduces the sides so
	// the ring re-merges.
	EventHeal = scenario.KindHeal
	// EventConditions applies a LinkProfile to the links selected by
	// From/To (1-based partition group indexes; 0 = every peer).
	EventConditions = scenario.KindConditions
	// EventClearConditions restores the base link model everywhere.
	EventClearConditions = scenario.KindClearConditions
)

// LinkProfile reshapes the links a conditions event targets: one-way
// latency distribution (mean/variance, milliseconds), uniform jitter,
// i.i.d. message loss, and bandwidth (zero inherits the base model).
type LinkProfile = scenario.Profile

// ScenarioTrace is the replayable record of one scenario playback:
// every applied action with its virtual time and affected peers.
type ScenarioTrace = scenario.Trace

// ScenarioEvent is one applied action inside a ScenarioTrace.
type ScenarioEvent = scenario.Applied

// BuiltinScenarios lists the named scenarios shipped with the engine:
// calm, churn-wave, split-heal, lossy-wan, mass-crash.
func BuiltinScenarios() []string { return scenario.BuiltinNames() }

// BuiltinScenario returns a builtin scenario shaped to play over
// window: event times are fixed fractions of it, so the same shape
// scales from a quick test to an hours-long experiment.
func BuiltinScenario(name string, window time.Duration) (Scenario, error) {
	return scenario.Builtin(name, window)
}

// PlayScenario validates sc and starts playing it: events are scheduled
// in virtual time relative to now and apply as the simulation advances
// (Advance, or any operation that drives the clock). One scenario plays
// at a time; starting a second while one is mid-flight returns an
// error. The applied events are available from ScenarioTrace.
func (s *SimNetwork) PlayScenario(sc Scenario) error {
	if s.eng != nil && !s.eng.Done() {
		return fmt.Errorf("dcdht: scenario %q still playing", s.eng.Trace().Script)
	}
	eng, err := s.d.PlayScript(sc)
	if err != nil {
		return fmt.Errorf("dcdht: %w", err)
	}
	s.eng = eng
	return nil
}

// ScenarioTrace returns the applied-event record of the most recent
// PlayScenario (or SimConfig.Scenario) playback. The second result is
// false when no scenario has been played.
func (s *SimNetwork) ScenarioTrace() (ScenarioTrace, bool) {
	if s.eng == nil {
		return ScenarioTrace{}, false
	}
	return s.eng.Trace(), true
}

// ScenarioDone reports whether every event of the most recently played
// scenario has applied; false when no scenario was ever started.
func (s *SimNetwork) ScenarioDone() bool {
	return s.eng != nil && s.eng.Done()
}
