package dcdht

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// isBadOption classifies option-validation failures in these tests.
func isBadOption(err error) bool { return errors.Is(err, ErrBadOption) }

// startTestRing builds a small TCP ring on loopback and returns its
// nodes; the caller owns Close.
func startTestRing(t *testing.T, peers int, seed int64) []*Node {
	t.Helper()
	cfg := NodeConfig{
		Replicas:       5,
		Seed:           seed,
		StabilizeEvery: 100 * time.Millisecond,
		GraceDelay:     20 * time.Millisecond,
	}
	first, err := StartNode("127.0.0.1:0", cfg)
	if err != nil {
		t.Fatal(err)
	}
	first.CreateRing()
	nodes := []*Node{first}
	for i := 1; i < peers; i++ {
		nd, err := StartNode("127.0.0.1:0", cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := nd.Join(first.Addr()); err != nil {
			t.Fatalf("join %d: %v", i, err)
		}
		nodes = append(nodes, nd)
	}
	t.Cleanup(func() {
		for _, nd := range nodes {
			nd.Close()
		}
	})
	time.Sleep(time.Second) // let stabilization settle
	return nodes
}

func TestGatewayRejectsBadOptions(t *testing.T) {
	sim := NewSimNetwork(4, SimConfig{Replicas: 3, Seed: 7})
	defer sim.Close()
	gw, err := NewGateway([]Client{sim}, GatewayConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer gw.Close()
	ctx := context.Background()

	if _, err := gw.Put(ctx, "k", []byte("v"), WithIssuer(2)); !isBadOption(err) {
		t.Errorf("Put with WithIssuer: err = %v, want ErrBadOption", err)
	}
	if _, err := gw.Get(ctx, "k", WithAlgorithm(AlgBRK)); !isBadOption(err) {
		t.Errorf("Get with BRK: err = %v, want ErrBadOption", err)
	}
	if _, err := gw.LastTS(ctx, "k", WithIssuer(0)); !isBadOption(err) {
		t.Errorf("LastTS with WithIssuer: err = %v, want ErrBadOption", err)
	}
	if _, err := gw.PutMulti(ctx, []KV{{Key: "k", Data: nil}}, WithAlgorithm(AlgBRK)); !isBadOption(err) {
		t.Errorf("PutMulti with BRK: err = %v, want ErrBadOption", err)
	}
	if _, err := gw.GetMulti(ctx, []Key{"k"}, WithIssuer(1)); !isBadOption(err) {
		t.Errorf("GetMulti with WithIssuer: err = %v, want ErrBadOption", err)
	}
	if _, err := gw.Get(ctx, "k", WithConsistency(Bounded(-time.Second))); !isBadOption(err) {
		t.Errorf("Get with negative bound: err = %v, want ErrBadOption", err)
	}
}

// TestGatewayCoalescingHammerTCP is the -race half of the coalescing
// property test: concurrent sessions over a real TCP ring, through one
// gateway, mixing writes and session reads on a hot keyspace. Each
// session must observe read-your-writes (the gateway's coalescing floor
// check is what preserves it), and batch ops must keep per-key
// isolation.
func TestGatewayCoalescingHammerTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("TCP ring hammer in -short mode")
	}
	nodes := startTestRing(t, 3, 41)
	backends := make([]Client, len(nodes))
	for i, nd := range nodes {
		backends[i] = nd
	}
	gw, err := NewGateway(backends, GatewayConfig{Seed: 41})
	if err != nil {
		t.Fatal(err)
	}
	defer gw.Close()
	ctx := context.Background()

	keys := []Key{"gw-hot-0", "gw-hot-1"}
	for _, k := range keys {
		if _, err := gw.Put(ctx, k, []byte("seed")); err != nil {
			t.Fatalf("preload %s: %v", k, err)
		}
	}

	const workers, ops = 8, 12
	var wg sync.WaitGroup
	errs := make(chan error, workers*ops)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sess := gw.NewSession()
			lastPut := map[Key]Timestamp{}
			for i := 0; i < ops; i++ {
				k := keys[(w+i)%len(keys)]
				if i%4 == 3 {
					r, err := sess.Put(ctx, k, []byte(fmt.Sprintf("w%d-%d", w, i)))
					if err != nil {
						errs <- fmt.Errorf("w%d put: %w", w, err)
						continue
					}
					lastPut[k] = r.TS
				} else {
					r, err := sess.Get(ctx, k)
					if err != nil && !IsNoCurrent(err) {
						errs <- fmt.Errorf("w%d get: %w", w, err)
						continue
					}
					if r.TS.Less(lastPut[k]) {
						errs <- fmt.Errorf("w%d: read %v older than own write %v — read-your-writes broken",
							w, r.TS, lastPut[k])
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// Batched ops through the same pool: duplicates must not corrupt
	// per-key isolation.
	items := []KV{{Key: "gw-b0", Data: []byte("0")}, {Key: "gw-b1", Data: []byte("1")}}
	pres, err := gw.PutMulti(ctx, items)
	if err != nil {
		t.Fatalf("PutMulti: %v", err)
	}
	for i, r := range pres {
		if r.Err != nil {
			t.Errorf("PutMulti[%d]: %v", i, r.Err)
		}
	}
	gets, err := gw.GetMulti(ctx, []Key{"gw-b0", "gw-b0", "gw-b1"})
	if err != nil {
		t.Fatalf("GetMulti: %v", err)
	}
	want := []string{"0", "0", "1"}
	for i, r := range gets {
		if r.Err != nil {
			t.Errorf("GetMulti[%d]: %v", i, r.Err)
			continue
		}
		if string(r.Data) != want[i] {
			t.Errorf("GetMulti[%d] = %q, want %q", i, r.Data, want[i])
		}
	}

	s := gw.Stats()
	if s.BackendOps == 0 || s.Flights == 0 {
		t.Errorf("gateway stats look dead: %+v", s)
	}
	t.Logf("gateway stats: %+v", s)
}

func TestGatewayHTTP(t *testing.T) {
	sim := NewSimNetwork(6, SimConfig{Replicas: 3, Seed: 11})
	defer sim.Close()
	gw, err := NewGateway([]Client{sim}, GatewayConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer gw.Close()
	srv := httptest.NewServer(gw)
	defer srv.Close()

	do := func(method, path string, body string) (*http.Response, []byte) {
		t.Helper()
		req, err := http.NewRequest(method, srv.URL+path, strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := srv.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		data, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp, data
	}

	// Write, then read back at the default (proven) level.
	resp, body := do(http.MethodPut, "/v1/kv/http-key", "hello")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("PUT status %d: %s", resp.StatusCode, body)
	}
	var put GatewayPutResponse
	if err := json.Unmarshal(body, &put); err != nil {
		t.Fatalf("PUT body: %v", err)
	}
	if put.Stored == 0 || put.TS == (Timestamp{}) {
		t.Errorf("PUT response %+v", put)
	}

	resp, body = do(http.MethodGet, "/v1/kv/http-key", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET status %d: %s", resp.StatusCode, body)
	}
	var get GatewayGetResponse
	if err := json.Unmarshal(body, &get); err != nil {
		t.Fatalf("GET body: %v", err)
	}
	if string(get.Data) != "hello" || get.Currency != "proven" {
		t.Errorf("GET = %+v, want hello/proven", get)
	}

	// Bounded read: the PUT primed the gateway cache, so this is
	// within-bound at zero KTS cost.
	resp, body = do(http.MethodGet, "/v1/kv/http-key?consistency=bounded&bound=1m", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("bounded GET status %d: %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &get); err != nil {
		t.Fatal(err)
	}
	if get.Currency != "within-bound" {
		t.Errorf("bounded GET currency = %q, want within-bound", get.Currency)
	}

	// last_ts at eventual consistency: served from the gateway cache.
	resp, body = do(http.MethodGet, "/v1/last/http-key?consistency=eventual", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("last status %d: %s", resp.StatusCode, body)
	}
	var last GatewayLastTSResponse
	if err := json.Unmarshal(body, &last); err != nil {
		t.Fatal(err)
	}
	if last.TS != put.TS {
		t.Errorf("last_ts = %v, want the put's %v", last.TS, put.TS)
	}

	// Error surfaces.
	if resp, _ := do(http.MethodGet, "/v1/kv/http-key?consistency=sideways", ""); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad consistency: status %d, want 400", resp.StatusCode)
	}
	if resp, _ := do(http.MethodGet, "/v1/kv/http-key?consistency=bounded", ""); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bounded without bound: status %d, want 400", resp.StatusCode)
	}
	if resp, _ := do(http.MethodDelete, "/v1/kv/http-key", ""); resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("DELETE: status %d, want 405", resp.StatusCode)
	}
	if resp, _ := do(http.MethodGet, "/v2/nope", ""); resp.StatusCode != http.StatusNotFound {
		t.Errorf("bad route: status %d, want 404", resp.StatusCode)
	}
	if resp, _ := do(http.MethodPost, "/v1/kv/", ""); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty key: status %d, want 400", resp.StatusCode)
	}

	// Introspection routes.
	resp, body = do(http.MethodGet, "/debug/gateway", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/gateway status %d", resp.StatusCode)
	}
	var st GatewayStats
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatalf("/debug/gateway body: %v", err)
	}
	if st.BackendOps == 0 {
		t.Errorf("/debug/gateway reports zero backend ops: %+v", st)
	}
	resp, body = do(http.MethodGet, "/metrics", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	for _, fam := range []string{"dcdht_gw_ops_total", "dcdht_gw_http_requests_total", "dcdht_gw_cache_served_total"} {
		if !strings.Contains(string(body), fam) {
			t.Errorf("/metrics missing family %s", fam)
		}
	}
}
