package dcdht

import (
	"context"
	"encoding/json"
	"reflect"
	"testing"
	"time"
)

// runSimWorkload builds a fresh simulated network and runs one traced
// zipf workload on it — the acceptance scenario for seed-determinism.
func runSimWorkload(t *testing.T, seed int64) *WorkloadReport {
	t.Helper()
	net := NewSimNetwork(40, SimConfig{Seed: seed})
	defer net.Close()
	rep, err := net.RunWorkload(context.Background(), WorkloadSpec{
		Pattern:     WorkloadZipf,
		ReadRatio:   Float(0.9),
		Keys:        12,
		Ops:         40,
		Concurrency: 4,
		DataSize:    100,
		Trace:       true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// TestSimWorkloadDeterminism is the acceptance criterion: two runs with
// the same seed must produce identical operation sequences and
// identical latency histograms.
func TestSimWorkloadDeterminism(t *testing.T) {
	a := runSimWorkload(t, 1)
	b := runSimWorkload(t, 1)
	if !reflect.DeepEqual(a.Trace, b.Trace) {
		t.Fatal("same-seed replays issued different op sequences")
	}
	if !reflect.DeepEqual(a.ReadHist.Buckets(), b.ReadHist.Buckets()) ||
		!reflect.DeepEqual(a.WriteHist.Buckets(), b.WriteHist.Buckets()) {
		t.Fatal("same-seed replays produced different latency histograms")
	}
	aj, _ := json.Marshal(a)
	bj, _ := json.Marshal(b)
	if string(aj) != string(bj) {
		t.Fatalf("same-seed reports diverged:\n%s\n%s", aj, bj)
	}

	// A different seed must actually change the stream — otherwise the
	// equality above proves nothing.
	c := runSimWorkload(t, 2)
	if reflect.DeepEqual(a.Trace, c.Trace) {
		t.Fatal("different seeds replayed the identical op sequence")
	}
}

func TestSimWorkloadReport(t *testing.T) {
	rep := runSimWorkload(t, 3)
	if rep.Ops != 40 || rep.Reads.Ops+rep.Writes.Ops != 40 {
		t.Fatalf("ops accounting wrong: %+v", rep)
	}
	if rep.Reads.Ops == 0 || rep.Writes.Ops == 0 {
		t.Fatalf("0.9 read mix produced no reads or no writes: %+v", rep)
	}
	if rep.OpsPerSec <= 0 || rep.ElapsedSec <= 0 {
		t.Fatalf("throughput missing: %+v", rep)
	}
	if rep.Reads.P50Ms <= 0 || rep.Reads.P50Ms > rep.Reads.P95Ms || rep.Reads.P95Ms > rep.Reads.P99Ms {
		t.Fatalf("read quantiles broken: %+v", rep.Reads)
	}
	if rep.Workload != string(WorkloadZipf) || rep.ZipfS <= 1 {
		t.Fatalf("spec echo missing: %+v", rep)
	}
}

// TestSimWorkloadOpenLoop drives the open-loop driver through the
// public facade: ops are issued at the target rate in virtual time.
func TestSimWorkloadOpenLoop(t *testing.T) {
	net := NewSimNetwork(32, SimConfig{Seed: 4})
	defer net.Close()
	rep, err := net.RunWorkload(context.Background(), WorkloadSpec{
		Pattern:  WorkloadUniform,
		Keys:     8,
		Ops:      20,
		Rate:     2, // 2 ops per simulated second
		DataSize: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Ops != 20 || rep.TargetRate != 2 {
		t.Fatalf("open-loop run wrong: %+v", rep)
	}
	// 20 ops at 2/s dispatch over ~10 simulated seconds; the window
	// includes the drain of in-flight operations.
	if rep.ElapsedSec < 9 {
		t.Fatalf("open-loop pacing ignored: elapsed %.2fs", rep.ElapsedSec)
	}
}

func TestSimWorkloadExpiredContext(t *testing.T) {
	net := NewSimNetwork(16, SimConfig{Seed: 5})
	defer net.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := net.RunWorkload(ctx, WorkloadSpec{Ops: 10}); err == nil {
		t.Fatal("expired context accepted")
	}
}

// TestTCPWorkload runs the same engine against a real TCP ring: same
// spec type, same report schema, wall-clock latencies.
func TestTCPWorkload(t *testing.T) {
	if testing.Short() {
		t.Skip("tcp integration test")
	}
	const peers = 6
	cfg := NodeConfig{
		Replicas:       5,
		Seed:           7,
		StabilizeEvery: 100 * time.Millisecond,
		GraceDelay:     50 * time.Millisecond,
	}
	first, err := StartNode("127.0.0.1:0", cfg)
	if err != nil {
		t.Fatal(err)
	}
	first.CreateRing()
	nodes := []*Node{first}
	for i := 1; i < peers; i++ {
		nd, err := StartNode("127.0.0.1:0", cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := nd.Join(first.Addr()); err != nil {
			t.Fatalf("join %d: %v", i, err)
		}
		nodes = append(nodes, nd)
	}
	defer func() {
		for _, nd := range nodes {
			nd.Close()
		}
	}()
	time.Sleep(time.Second) // a few stabilization rounds

	// Through the generic entry point, which dispatches to the node's
	// native runner.
	rep, err := RunWorkload(context.Background(), nodes[2], WorkloadSpec{
		Pattern:     WorkloadScanRecent,
		ReadRatio:   Float(0.7),
		Keys:        6,
		Ops:         30,
		Concurrency: 3,
		DataSize:    64,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Ops != 30 {
		t.Fatalf("completed %d ops, want 30", rep.Ops)
	}
	if rep.Reads.OK+rep.Reads.Stale+rep.Reads.NotFound+rep.Reads.Errors != rep.Reads.Ops {
		t.Fatalf("read outcomes do not sum: %+v", rep.Reads)
	}
	if rep.Reads.Ops > 0 && rep.Reads.P50Ms <= 0 {
		t.Fatalf("wall-clock latency missing: %+v", rep.Reads)
	}
}
