package workload

import (
	"time"

	"repro/internal/dht"
	"repro/internal/stats"
)

// OpStats reports one operation kind's outcome counts and latency
// distribution. Latencies are in milliseconds of environment time —
// simulated milliseconds under simulation, wall milliseconds over TCP —
// with quantiles read from the log-bucketed histogram (~3% relative
// error; Max is exact).
type OpStats struct {
	// Ops counts completed operations of this kind, OK the ones that
	// returned a fully successful result.
	Ops int `json:"ops"`
	OK  int `json:"ok"`
	// Stale counts operations that fell back to the most-recent-available
	// replica (currency not provable); NotFound operations on absent
	// keys. Both outcomes surface on reads in practice, but each kind
	// keeps its own counters so no client behavior can cross-pollute the
	// accounting. Both returned data and their latency is recorded.
	Stale    int `json:"stale,omitempty"`
	NotFound int `json:"not_found,omitempty"`
	// Errors counts operations that failed outright (timeouts,
	// unreachable replica sets). Their latency is recorded too — a
	// timeout's cost is part of the tail.
	Errors int `json:"errors"`
	// Latency quantiles in milliseconds.
	MeanMs float64 `json:"mean_ms"`
	P50Ms  float64 `json:"p50_ms"`
	P95Ms  float64 `json:"p95_ms"`
	P99Ms  float64 `json:"p99_ms"`
	P999Ms float64 `json:"p999_ms"`
	MaxMs  float64 `json:"max_ms"`
	// OpsPerSec is this kind's completed throughput over the run.
	OpsPerSec float64 `json:"ops_per_sec"`
}

// Report is one workload run's outcome: the resolved spec echoed for
// provenance, aggregate throughput, and per-kind statistics. It
// serializes to the BENCH_workload.json schema (see docs/BENCHMARKS.md).
type Report struct {
	// Workload echoes the pattern; ReadRatio, ZipfS, Keys, Seed,
	// Concurrency and TargetRate echo the resolved spec so a JSON
	// record is self-describing.
	Workload    string  `json:"workload"`
	ReadRatio   float64 `json:"read_ratio"`
	ZipfS       float64 `json:"zipf_s,omitempty"`
	Keys        int     `json:"keys"`
	Seed        int64   `json:"seed"`
	Concurrency int     `json:"concurrency,omitempty"`
	TargetRate  float64 `json:"target_ops_per_sec,omitempty"`
	// ElapsedSec is the measured window in environment seconds; Ops the
	// total completed operations; OpsPerSec the aggregate throughput.
	ElapsedSec float64 `json:"elapsed_sec"`
	Ops        int     `json:"ops"`
	OpsPerSec  float64 `json:"ops_per_sec"`
	// EventualFrac/BoundedFrac echo a requested read-consistency mix;
	// ReadsEventual/ReadsBounded/ReadsCurrent count the completed reads
	// issued at each level (all zero for a mix-free spec, whose reads
	// are all provably current and counted by Reads alone).
	EventualFrac  float64 `json:"eventual_frac,omitempty"`
	BoundedFrac   float64 `json:"bounded_frac,omitempty"`
	BoundSec      float64 `json:"bound_sec,omitempty"`
	ReadsEventual int     `json:"reads_eventual,omitempty"`
	ReadsBounded  int     `json:"reads_bounded,omitempty"`
	ReadsCurrent  int     `json:"reads_current,omitempty"`
	// Reads and Writes split every counter and quantile by op kind.
	Reads  OpStats `json:"reads"`
	Writes OpStats `json:"writes"`
	// ReadHist and WriteHist are the underlying histograms (nanosecond
	// samples), exposed for merging and for the determinism tests.
	ReadHist  *stats.Histogram `json:"-"`
	WriteHist *stats.Histogram `json:"-"`
	// Trace is the issued operation sequence, recorded only when
	// Spec.Trace is set.
	Trace []Op `json:"-"`
}

// recorder accumulates per-kind outcomes during a run. The drivers
// serialize access (a mutex on real environments; the kernel under
// simulation).
type recorder struct {
	hist     [2]*stats.Histogram // indexed by OpKind, like every counter
	ok       [2]int
	errs     [2]int
	stale    [2]int
	notFound [2]int
	levels   [3]int // completed reads by dht.Level (mixed specs only)
	// honorLevels is set when the client actually routes reads through
	// LevelClient.GetWith: a plain client falls back to provably-current
	// Gets, which must be counted as such regardless of the generated
	// level, or the report would claim relaxed reads that never ran.
	honorLevels bool
	trace       []Op
}

func newRecorder() *recorder {
	return &recorder{hist: [2]*stats.Histogram{new(stats.Histogram), new(stats.Histogram)}}
}

// outcome classifies one completed operation.
type outcome uint8

const (
	outcomeOK outcome = iota
	outcomeStale
	outcomeNotFound
	outcomeError
)

// record adds one completed operation.
func (r *recorder) record(op Op, lat time.Duration, oc outcome) {
	kind := op.Kind
	r.hist[kind].Record(lat)
	if kind == OpGet {
		lvl := op.Level
		if !r.honorLevels {
			lvl = dht.LevelCurrent // fallback path: every read ran provably current
		}
		if int(lvl) < len(r.levels) {
			r.levels[lvl]++
		}
	}
	switch oc {
	case outcomeOK:
		r.ok[kind]++
	case outcomeStale:
		r.stale[kind]++
	case outcomeNotFound:
		r.notFound[kind]++
	default:
		r.errs[kind]++
	}
}

// report assembles the final Report for spec over a run of elapsed
// environment time.
func (r *recorder) report(spec Spec, elapsed time.Duration) *Report {
	rep := &Report{
		Workload:   string(spec.Pattern),
		ReadRatio:  spec.readRatio(),
		Keys:       spec.Keys,
		Seed:       spec.Seed,
		ElapsedSec: elapsed.Seconds(),
		ReadHist:   r.hist[OpGet],
		WriteHist:  r.hist[OpPut],
		Trace:      r.trace,
	}
	if spec.Pattern == Zipf {
		rep.ZipfS = spec.ZipfS
	}
	if spec.mixed() {
		rep.EventualFrac = spec.EventualFrac
		rep.BoundedFrac = spec.BoundedFrac
		rep.BoundSec = spec.Bound.Seconds()
		rep.ReadsEventual = r.levels[dht.LevelEventual]
		rep.ReadsBounded = r.levels[dht.LevelBounded]
		rep.ReadsCurrent = r.levels[dht.LevelCurrent]
	}
	if spec.Rate > 0 {
		rep.TargetRate = spec.Rate
	} else {
		rep.Concurrency = spec.Concurrency
	}
	rep.Reads = r.opStats(OpGet, elapsed)
	rep.Writes = r.opStats(OpPut, elapsed)
	rep.Ops = rep.Reads.Ops + rep.Writes.Ops
	if secs := elapsed.Seconds(); secs > 0 {
		rep.OpsPerSec = float64(rep.Ops) / secs
	}
	return rep
}

// opStats summarizes one kind's histogram and counters.
func (r *recorder) opStats(kind OpKind, elapsed time.Duration) OpStats {
	h := r.hist[kind]
	ms := func(v int64) float64 { return float64(v) / float64(time.Millisecond) }
	s := OpStats{
		Ops:      int(h.Count()),
		OK:       r.ok[kind],
		Stale:    r.stale[kind],
		NotFound: r.notFound[kind],
		Errors:   r.errs[kind],
		MeanMs:   h.Mean() / float64(time.Millisecond),
		P50Ms:    ms(h.Quantile(0.50)),
		P95Ms:    ms(h.Quantile(0.95)),
		P99Ms:    ms(h.Quantile(0.99)),
		P999Ms:   ms(h.Quantile(0.999)),
		MaxMs:    ms(h.Max()),
	}
	if secs := elapsed.Seconds(); secs > 0 {
		s.OpsPerSec = float64(s.Ops) / secs
	}
	return s
}
