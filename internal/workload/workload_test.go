package workload

import (
	"context"
	"fmt"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dht"
	"repro/internal/network"
)

func ratio(v float64) *float64 { return &v }

func drawOps(spec Spec, n int) []Op {
	g := NewGenerator(spec)
	ops := make([]Op, n)
	for i := range ops {
		ops[i] = g.Next()
	}
	return ops
}

func TestGeneratorDeterminism(t *testing.T) {
	for _, p := range Patterns() {
		spec := Spec{Pattern: p, Seed: 7, Keys: 40}
		a := drawOps(spec, 500)
		b := drawOps(spec, 500)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("%s: two generators with the same seed diverged", p)
		}
		c := drawOps(Spec{Pattern: p, Seed: 8, Keys: 40}, 500)
		if reflect.DeepEqual(a, c) {
			t.Fatalf("%s: different seeds produced identical streams", p)
		}
	}
}

func TestGeneratorReadRatio(t *testing.T) {
	for _, want := range []float64{0, 0.5, 0.9, 1} {
		ops := drawOps(Spec{Seed: 3, Keys: 20, ReadRatio: ratio(want)}, 4000)
		reads := 0
		for _, op := range ops {
			if op.Kind == OpGet {
				reads++
			}
		}
		got := float64(reads) / float64(len(ops))
		if got < want-0.05 || got > want+0.05 {
			t.Errorf("ReadRatio %.2f: observed %.3f", want, got)
		}
	}
}

func TestGeneratorZipfSkew(t *testing.T) {
	keys := 50
	ops := drawOps(Spec{Pattern: Zipf, Seed: 5, Keys: keys, ZipfS: 1.2}, 5000)
	counts := map[core.Key]int{}
	for _, op := range ops {
		counts[op.Key]++
	}
	hottest := 0
	for _, c := range counts {
		if c > hottest {
			hottest = c
		}
	}
	uniformShare := len(ops) / keys
	if hottest < 3*uniformShare {
		t.Errorf("zipf hottest key got %d ops, want > 3x the uniform share %d", hottest, uniformShare)
	}
}

func TestGeneratorHotKeyUpdate(t *testing.T) {
	keys := 100
	spec := Spec{Pattern: HotKeyUpdate, Seed: 11, Keys: keys, ReadRatio: ratio(0.5)}
	ops := drawOps(spec, 3000)
	hot := keys / 20
	writeKeys := map[core.Key]bool{}
	readKeys := map[core.Key]bool{}
	for _, op := range ops {
		if op.Kind == OpPut {
			writeKeys[op.Key] = true
		} else {
			readKeys[op.Key] = true
		}
	}
	if len(writeKeys) > hot {
		t.Errorf("hotkey-update wrote %d distinct keys, want <= hot set size %d", len(writeKeys), hot)
	}
	if len(readKeys) < keys/2 {
		t.Errorf("hotkey-update reads covered only %d distinct keys, want broad coverage", len(readKeys))
	}
}

func TestGeneratorScanRecent(t *testing.T) {
	spec := Spec{Pattern: ScanRecent, Seed: 13, Keys: 30, ReadRatio: ratio(0.5)}
	g := NewGenerator(spec)
	written := map[core.Key]bool{}
	for i := 0; i < spec.Keys; i++ {
		written[g.key(i)] = true // preload marks every key written
	}
	writes := 0
	var prev, cur core.Key
	for i := 0; i < 2000; i++ {
		op := g.Next()
		if op.Kind == OpPut {
			if writes > 0 && op.Key == prev {
				t.Fatalf("scan-recent wrote %q twice in a row; want a round-robin walk", op.Key)
			}
			prev = op.Key
			written[op.Key] = true
			writes++
			continue
		}
		cur = op.Key
		if !written[cur] {
			t.Fatalf("scan-recent read %q before it was ever written", cur)
		}
	}
	if writes == 0 {
		t.Fatal("no writes generated")
	}
}

func TestParsePattern(t *testing.T) {
	for _, p := range Patterns() {
		got, err := ParsePattern(string(p))
		if err != nil || got != p {
			t.Errorf("ParsePattern(%q) = %v, %v", p, got, err)
		}
	}
	if _, err := ParsePattern("nope"); err == nil {
		t.Error("ParsePattern accepted an unknown pattern")
	}
}

// fakeClient serves instantly from an in-memory map, optionally
// injecting classified failures.
type fakeClient struct {
	mu   sync.Mutex
	data map[core.Key][]byte
	fail func(op string, key core.Key) error
	puts int
	gets int
}

func newFakeClient() *fakeClient { return &fakeClient{data: map[core.Key][]byte{}} }

func (f *fakeClient) Put(ctx context.Context, key core.Key, data []byte) (dht.OpResult, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.puts++
	if f.fail != nil {
		if err := f.fail("put", key); err != nil {
			return dht.OpResult{}, err
		}
	}
	f.data[key] = data
	return dht.OpResult{Stored: 1}, nil
}

func (f *fakeClient) Get(ctx context.Context, key core.Key) (dht.OpResult, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.gets++
	if f.fail != nil {
		if err := f.fail("get", key); err != nil {
			return dht.OpResult{}, err
		}
	}
	d, ok := f.data[key]
	if !ok {
		return dht.OpResult{}, core.ErrNotFound
	}
	return dht.OpResult{Data: d, Currency: dht.CurrencyProven}, nil
}

func TestRunClosedLoop(t *testing.T) {
	env := network.NewRealEnv(1)
	defer env.Close()
	c := newFakeClient()
	rep, err := Run(context.Background(), env, c, Spec{
		Seed: 2, Keys: 10, Ops: 120, Concurrency: 4, DataSize: 32, ReadRatio: ratio(0.8),
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Ops != 120 {
		t.Fatalf("completed %d ops, want 120", rep.Ops)
	}
	if rep.Reads.Ops+rep.Writes.Ops != rep.Ops {
		t.Fatalf("per-kind ops %d+%d do not sum to %d", rep.Reads.Ops, rep.Writes.Ops, rep.Ops)
	}
	if rep.Reads.OK != rep.Reads.Ops || rep.Writes.OK != rep.Writes.Ops {
		t.Fatalf("unexpected non-OK outcomes: %+v %+v", rep.Reads, rep.Writes)
	}
	if rep.OpsPerSec <= 0 || rep.ElapsedSec <= 0 {
		t.Fatalf("throughput not reported: %+v", rep)
	}
	if c.puts < 10 {
		t.Fatalf("preload did not run: %d puts", c.puts)
	}
}

func TestRunOpenLoop(t *testing.T) {
	env := network.NewRealEnv(1)
	defer env.Close()
	c := newFakeClient()
	rep, err := Run(context.Background(), env, c, Spec{
		Seed: 2, Keys: 8, Ops: 50, Rate: 2000, DataSize: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Ops != 50 {
		t.Fatalf("completed %d ops, want 50", rep.Ops)
	}
	if rep.TargetRate != 2000 || rep.Concurrency != 0 {
		t.Fatalf("open-loop provenance wrong: %+v", rep)
	}
}

func TestRunClassifiesOutcomes(t *testing.T) {
	env := network.NewRealEnv(1)
	defer env.Close()
	c := newFakeClient()
	n := 0
	c.fail = func(op string, key core.Key) error {
		if op != "get" {
			return nil
		}
		n++
		switch n % 3 {
		case 0:
			return fmt.Errorf("stale: %w", core.ErrNoCurrentReplica)
		case 1:
			return fmt.Errorf("slow: %w", core.ErrTimeout)
		default:
			return nil
		}
	}
	rep, err := Run(context.Background(), env, c, Spec{
		Seed: 4, Keys: 6, Ops: 90, Concurrency: 2, DataSize: 16, ReadRatio: ratio(1),
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Reads.Stale == 0 || rep.Reads.Errors == 0 {
		t.Fatalf("outcome classification missed stale/error reads: %+v", rep.Reads)
	}
	if rep.Reads.OK+rep.Reads.Stale+rep.Reads.NotFound+rep.Reads.Errors != rep.Reads.Ops {
		t.Fatalf("read outcomes do not sum: %+v", rep.Reads)
	}
}

func TestRunTraceAndDurationBound(t *testing.T) {
	env := network.NewRealEnv(1)
	defer env.Close()
	c := newFakeClient()
	rep, err := Run(context.Background(), env, c, Spec{
		Seed: 9, Keys: 5, Ops: 40, Concurrency: 3, DataSize: 16, Trace: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Trace) != 40 {
		t.Fatalf("trace recorded %d ops, want 40", len(rep.Trace))
	}
	for _, op := range rep.Trace {
		if !strings.HasPrefix(string(op.Key), "wl-") {
			t.Fatalf("unexpected key %q in trace", op.Key)
		}
	}

	// A duration bound alone also terminates.
	rep2, err := Run(context.Background(), env, c, Spec{
		Seed: 9, Keys: 5, Duration: 50 * time.Millisecond, Concurrency: 2, DataSize: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Ops == 0 {
		t.Fatal("duration-bounded run completed no ops")
	}
}
