package workload

import (
	"context"
	"errors"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/dht"
	"repro/internal/network"
)

// Client is the minimal operation surface the drivers need: a Put and a
// Get. Both deployment facades adapt their richer dcdht.Client to it —
// the simulated network by issuing each operation from a
// deterministically chosen live peer, the TCP node from itself.
type Client interface {
	Put(ctx context.Context, key core.Key, data []byte) (dht.OpResult, error)
	Get(ctx context.Context, key core.Key) (dht.OpResult, error)
}

// LevelClient is optionally implemented by clients whose reads honor a
// per-operation consistency level. When a spec asks for a consistency
// mix and the client implements it, every read runs through GetWith at
// the level the generator assigned; otherwise reads fall back to the
// plain provably-current Get.
type LevelClient interface {
	Client
	GetWith(ctx context.Context, key core.Key, pol dht.ReadPolicy) (dht.OpResult, error)
}

// joinPoll is how often the drivers poll for worker completion — the
// fan-out/join shape portable across both environments (see
// network.GoJoin).
const joinPoll = 10 * time.Millisecond

// Run executes spec against c inside env and returns the report:
// closed-loop (Spec.Concurrency workers issuing back to back) by
// default, open-loop (operations issued at Spec.Rate regardless of
// completions) when Rate is positive. Latency is measured in
// environment time, so simulated runs report simulated latencies and
// replay bit-identically per seed.
//
// Under simulation Run must execute as a kernel process
// (exp.Deployment.RunWorkload and the dcdht facades arrange that); on a
// real environment any goroutine will do. Cancelling ctx stops issuing
// new operations at the next boundary; in-flight ones complete.
func Run(ctx context.Context, env network.Env, c Client, spec Spec) (*Report, error) {
	spec = spec.resolve()
	gen := NewGenerator(spec)
	if !spec.SkipPreload {
		if err := preload(ctx, env, c, gen); err != nil {
			return nil, err
		}
	}
	rec := newRecorder()
	_, rec.honorLevels = c.(LevelClient)
	start := env.Now()
	var err error
	if spec.Rate > 0 {
		err = runOpen(ctx, env, c, gen, rec, start)
	} else {
		err = runClosed(ctx, env, c, gen, rec, start)
	}
	if err != nil {
		return nil, err
	}
	return rec.report(spec, env.Now()-start), nil
}

// preload inserts every key once, untimed, with the closed-loop worker
// pool, so the measured run never reads an empty store.
func preload(ctx context.Context, env network.Env, c Client, gen *Generator) error {
	spec := gen.Spec()
	var mu sync.Mutex
	next := 0
	return network.GoJoin(env, spec.Concurrency, joinPoll, func(int) {
		for {
			if ctx.Err() != nil {
				return
			}
			mu.Lock()
			if next >= spec.Keys {
				mu.Unlock()
				return
			}
			i := next
			next++
			mu.Unlock()
			op := Op{Seq: -1 - i, Kind: OpPut, Key: gen.key(i)}
			c.Put(ctx, op.Key, gen.Payload(op)) // best effort; reads tolerate misses
		}
	})
}

// runClosed drives spec.Concurrency workers, each issuing the next
// generated operation as soon as its previous one completes — the
// classic fixed-concurrency driver, measuring service capacity.
func runClosed(ctx context.Context, env network.Env, c Client, gen *Generator, rec *recorder, start time.Duration) error {
	spec := gen.Spec()
	var mu sync.Mutex
	issued := 0
	return network.GoJoin(env, spec.Concurrency, joinPoll, func(int) {
		for {
			if ctx.Err() != nil {
				return
			}
			mu.Lock()
			if spec.Ops > 0 && issued >= spec.Ops {
				mu.Unlock()
				return
			}
			if spec.Duration > 0 && env.Now()-start >= spec.Duration {
				mu.Unlock()
				return
			}
			op := gen.Next()
			issued++
			if spec.Trace {
				rec.trace = append(rec.trace, op)
			}
			mu.Unlock()
			lat, oc := execute(ctx, env, c, gen, op)
			mu.Lock()
			rec.record(op, lat, oc)
			mu.Unlock()
		}
	})
}

// runOpen issues operations on a fixed schedule — one every 1/Rate of
// environment time — each on its own activity, then waits for the
// stragglers. Unlike the closed loop, a slow ring cannot throttle the
// arrival process, so queueing delay shows up in the tail quantiles.
func runOpen(ctx context.Context, env network.Env, c Client, gen *Generator, rec *recorder, start time.Duration) error {
	spec := gen.Spec()
	interval := time.Duration(float64(time.Second) / spec.Rate)
	if interval <= 0 {
		interval = time.Nanosecond
	}
	var mu sync.Mutex
	issued, done := 0, 0
	for {
		if ctx.Err() != nil {
			break
		}
		if spec.Ops > 0 && issued >= spec.Ops {
			break
		}
		if spec.Duration > 0 && env.Now()-start >= spec.Duration {
			break
		}
		op := gen.Next()
		issued++
		if spec.Trace {
			rec.trace = append(rec.trace, op)
		}
		env.Go(func() {
			lat, oc := execute(ctx, env, c, gen, op)
			mu.Lock()
			rec.record(op, lat, oc)
			done++
			mu.Unlock()
		})
		if err := env.Sleep(interval); err != nil {
			return err
		}
	}
	// Drain: wait for every issued operation to complete.
	for {
		mu.Lock()
		d := done
		mu.Unlock()
		if d >= issued {
			return nil
		}
		if err := env.Sleep(joinPoll); err != nil {
			return err
		}
	}
}

// execute performs one operation, timing it in environment time, and
// classifies the outcome.
func execute(ctx context.Context, env network.Env, c Client, gen *Generator, op Op) (time.Duration, outcome) {
	spec := gen.Spec()
	t0 := env.Now()
	var err error
	switch {
	case op.Kind == OpPut:
		_, err = c.Put(ctx, op.Key, gen.Payload(op))
	default:
		if lc, ok := c.(LevelClient); ok && spec.mixed() {
			_, err = lc.GetWith(ctx, op.Key, dht.ReadPolicy{Level: op.Level, Bound: spec.Bound})
		} else {
			_, err = c.Get(ctx, op.Key)
		}
	}
	lat := env.Now() - t0
	switch {
	case err == nil:
		return lat, outcomeOK
	case errors.Is(err, core.ErrNoCurrentReplica):
		return lat, outcomeStale
	case errors.Is(err, core.ErrNotFound):
		return lat, outcomeNotFound
	default:
		return lat, outcomeError
	}
}
