// Package workload is the deterministic load-generation engine: it
// turns a Spec (key-popularity pattern, read/write mix, driver shape)
// into a reproducible operation stream and drives it against any
// Put/Get client — the same spec replays bit-identically on the
// simulated network and generates real load on a TCP ring. Results are
// collected into log-bucketed latency histograms (internal/stats) and
// reported with per-op-type quantiles, throughput, error and staleness
// counts.
//
// The paper evaluates UMS under a single synthetic access pattern
// (uniform queries over a small working set); this package adds the
// YCSB-style axes DHT storage evaluations ask for — skewed key
// popularity, read-heavy vs write-heavy mixes, update hot spots and
// read-latest scans — so performance claims can be checked under
// realistic traffic, not just the paper's fixed figures.
package workload

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/core"
	"repro/internal/dht"
)

// Pattern names a key-popularity pattern.
type Pattern string

// The built-in patterns. Reads and writes draw keys as follows:
//
//   - Uniform: both uniform over the keyspace — the paper's own access
//     model, the baseline.
//   - Zipf: both Zipf-distributed with skew Spec.ZipfS, so a few hot
//     keys absorb most traffic (YCSB's "zipfian" request distribution).
//   - HotKeyUpdate: writes hammer a small hot set (1/20th of the
//     keyspace, at least one key) while reads stay uniform — stresses
//     KTS timestamp generation and replica freshness on contended keys.
//   - ScanRecent: writes walk the keyspace round-robin (a steady insert
//     stream) and reads prefer the most recently written keys (YCSB's
//     "latest" distribution) — stresses currency of fresh updates.
const (
	Uniform      Pattern = "uniform"
	Zipf         Pattern = "zipf"
	HotKeyUpdate Pattern = "hotkey-update"
	ScanRecent   Pattern = "scan-recent"
)

// Patterns lists the built-in patterns in plotting order.
func Patterns() []Pattern { return []Pattern{Uniform, Zipf, HotKeyUpdate, ScanRecent} }

// ParsePattern validates a pattern name from a CLI flag.
func ParsePattern(s string) (Pattern, error) {
	for _, p := range Patterns() {
		if s == string(p) {
			return p, nil
		}
	}
	return "", fmt.Errorf("workload: unknown pattern %q (want uniform, zipf, hotkey-update or scan-recent)", s)
}

// Spec is one workload configuration. The zero value is usable: it
// resolves to a uniform pattern with a 90% read mix, 50 keys, 8
// closed-loop workers and a 500-operation run.
type Spec struct {
	// Pattern selects the key-popularity pattern. Default Uniform.
	Pattern Pattern
	// Keys is the keyspace size. Default 50.
	Keys int
	// KeyPrefix namespaces the workload's keys. Default "wl-".
	KeyPrefix string
	// ReadRatio is the fraction of operations that are reads, clamped
	// to [0, 1]. nil selects 0.9 (a read-heavy mix); use a pointer so 0
	// — a pure write workload — stays expressible (dcdht.Float(0)).
	ReadRatio *float64
	// ZipfS is the Zipf skew exponent s for the Zipf pattern; larger is
	// more skewed. Values at or below 1 are clamped to 1.01 (math/rand's
	// Zipf generator requires s > 1). Default 1.1.
	ZipfS float64
	// DataSize is the value payload in bytes. Default 1000 (Table 1).
	DataSize int
	// Seed makes the operation stream reproducible. Default 1 (0 means
	// "unset", matching SimConfig.Seed).
	Seed int64
	// Concurrency is the closed-loop worker count. Default 8. Ignored
	// when Rate selects the open-loop driver.
	Concurrency int
	// Rate, when positive, selects the open-loop driver: operations are
	// issued at this target rate (ops per second of environment time —
	// simulated seconds under simulation, wall seconds over TCP)
	// regardless of completions, exposing queueing delay that a
	// closed-loop driver hides.
	Rate float64
	// Ops bounds the run by operation count; Duration bounds it by
	// environment time. Either may be set (whichever trips first stops
	// the run); when both are zero, Ops defaults to 500.
	Ops      int
	Duration time.Duration
	// EventualFrac and BoundedFrac shape the read consistency mix: the
	// fraction of reads issued at Eventual and Bounded consistency
	// respectively; the remainder runs provably current. Negative
	// values are clamped to 0; fractions summing past 1 are scaled
	// down proportionally. A 90%-eventual / 10%-current hot-read mix is
	// {EventualFrac: 0.9}.
	EventualFrac float64
	BoundedFrac  float64
	// Bound is the staleness bound for Bounded-consistency reads.
	// Default 5 minutes of environment time.
	Bound time.Duration
	// SkipPreload skips the initial untimed insert of every key. By
	// default the keyspace is preloaded so reads never miss on an empty
	// store.
	SkipPreload bool
	// Trace records the issued operation sequence into Report.Trace —
	// used by the determinism tests; costs memory proportional to Ops.
	Trace bool
}

// resolve fills defaults, returning a fully-specified copy.
func (s Spec) resolve() Spec {
	if s.Pattern == "" {
		s.Pattern = Uniform
	}
	if s.Keys <= 0 {
		s.Keys = 50
	}
	if s.KeyPrefix == "" {
		s.KeyPrefix = "wl-"
	}
	if s.ReadRatio == nil {
		r := 0.9
		s.ReadRatio = &r
	} else if *s.ReadRatio < 0 || *s.ReadRatio > 1 {
		r := *s.ReadRatio
		if r < 0 {
			r = 0
		} else {
			r = 1
		}
		s.ReadRatio = &r
	}
	if s.ZipfS <= 1 {
		if s.ZipfS == 0 {
			s.ZipfS = 1.1
		} else {
			s.ZipfS = 1.01
		}
	}
	if s.DataSize <= 0 {
		s.DataSize = 1000
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	if s.Concurrency <= 0 {
		s.Concurrency = 8
	}
	if s.Ops <= 0 && s.Duration <= 0 {
		s.Ops = 500
	}
	if s.EventualFrac < 0 {
		s.EventualFrac = 0
	}
	if s.BoundedFrac < 0 {
		s.BoundedFrac = 0
	}
	if sum := s.EventualFrac + s.BoundedFrac; sum > 1 {
		s.EventualFrac /= sum
		s.BoundedFrac /= sum
	}
	if s.Bound == 0 {
		s.Bound = 5 * time.Minute
	}
	return s
}

// mixed reports whether the spec asks for a non-default read
// consistency mix.
func (s Spec) mixed() bool { return s.EventualFrac > 0 || s.BoundedFrac > 0 }

// readRatio returns the resolved read fraction.
func (s Spec) readRatio() float64 { return *s.ReadRatio }

// OpKind distinguishes reads from writes.
type OpKind uint8

// The two operation kinds.
const (
	OpGet OpKind = iota
	OpPut
)

// String returns "get" or "put".
func (k OpKind) String() string {
	if k == OpPut {
		return "put"
	}
	return "get"
}

// Op is one generated operation: its position in the stream, its kind,
// its key and — for reads under a consistency mix — the consistency
// level it is issued at. Payloads are derived deterministically from
// (Key, Seq) by the driver, so an Op sequence fully determines a run's
// inputs.
type Op struct {
	Seq   int
	Kind  OpKind
	Key   core.Key
	Level dht.Level
}

// recentWindow bounds how far back the ScanRecent read bias looks.
const recentWindow = 16

// Generator produces the deterministic operation stream for a Spec. It
// consumes a single seeded RNG in Next-call order, so two generators
// built from the same spec emit identical sequences; callers that share
// one across workers must serialize Next (the drivers do).
type Generator struct {
	spec Spec
	rng  *rand.Rand
	zipf *rand.Zipf
	seq  int
	hot  int   // hot-set size for HotKeyUpdate
	next int   // round-robin write cursor for ScanRecent
	rec  []int // most recently written key indices, newest last
}

// NewGenerator builds a generator for spec (defaults resolved).
func NewGenerator(spec Spec) *Generator {
	spec = spec.resolve()
	rng := rand.New(rand.NewSource(spec.Seed))
	g := &Generator{
		spec: spec,
		rng:  rng,
		zipf: rand.NewZipf(rng, spec.ZipfS, 1, uint64(spec.Keys-1)),
		hot:  spec.Keys / 20,
	}
	if g.hot < 1 {
		g.hot = 1
	}
	if !spec.SkipPreload {
		// The driver preloads keys 0..Keys-1 in order before the
		// measured run; seed the recency window to match so ScanRecent
		// reads are well-defined from the first operation.
		for i := 0; i < spec.Keys; i++ {
			g.noteWrite(i)
		}
		g.next = 0
	}
	return g
}

// Spec returns the generator's resolved spec.
func (g *Generator) Spec() Spec { return g.spec }

// Next returns the next operation of the stream.
func (g *Generator) Next() Op {
	op := Op{Seq: g.seq}
	g.seq++
	if g.rng.Float64() < g.spec.readRatio() {
		op.Kind = OpGet
		op.Key = g.key(g.readIndex())
		op.Level = g.readLevel()
		return op
	}
	op.Kind = OpPut
	op.Key = g.key(g.writeIndex())
	return op
}

// readLevel draws the consistency level for a read per the spec's mix.
// A mix-free spec consumes no randomness here, so legacy specs keep
// their exact historical operation streams.
func (g *Generator) readLevel() dht.Level {
	if !g.spec.mixed() {
		return dht.LevelCurrent
	}
	draw := g.rng.Float64()
	switch {
	case draw < g.spec.EventualFrac:
		return dht.LevelEventual
	case draw < g.spec.EventualFrac+g.spec.BoundedFrac:
		return dht.LevelBounded
	default:
		return dht.LevelCurrent
	}
}

// readIndex draws the key index for a read.
func (g *Generator) readIndex() int {
	switch g.spec.Pattern {
	case Zipf:
		return int(g.zipf.Uint64())
	case ScanRecent:
		if len(g.rec) == 0 {
			return g.rng.Intn(g.spec.Keys)
		}
		// Geometric bias toward the newest write: step back one recency
		// slot with probability 1/2, bounded by the window.
		back := 0
		for back < len(g.rec)-1 && g.rng.Float64() < 0.5 {
			back++
		}
		return g.rec[len(g.rec)-1-back]
	default: // Uniform, HotKeyUpdate
		return g.rng.Intn(g.spec.Keys)
	}
}

// writeIndex draws the key index for a write and records it for the
// recency window.
func (g *Generator) writeIndex() int {
	var i int
	switch g.spec.Pattern {
	case Zipf:
		i = int(g.zipf.Uint64())
	case HotKeyUpdate:
		i = g.rng.Intn(g.hot)
	case ScanRecent:
		i = g.next
		g.next = (g.next + 1) % g.spec.Keys
	default: // Uniform
		i = g.rng.Intn(g.spec.Keys)
	}
	g.noteWrite(i)
	return i
}

// noteWrite appends i to the recency window.
func (g *Generator) noteWrite(i int) {
	g.rec = append(g.rec, i)
	if len(g.rec) > recentWindow {
		g.rec = g.rec[1:]
	}
}

// key renders the key for index i.
func (g *Generator) key(i int) core.Key {
	return core.Key(fmt.Sprintf("%s%04d", g.spec.KeyPrefix, i))
}

// Payload builds the deterministic value for op: the key and sequence
// number stamped into a buffer of the spec's DataSize.
func (g *Generator) Payload(op Op) []byte {
	b := make([]byte, g.spec.DataSize)
	copy(b, fmt.Sprintf("%s#%d", op.Key, op.Seq))
	return b
}
