package workload

import (
	"context"
	"testing"

	"repro/internal/core"
	"repro/internal/dht"
	"repro/internal/network"
)

// TestGeneratorConsistencyMix: with a mix configured, read levels are
// assigned deterministically in roughly the requested proportions, and
// writes never carry a relaxed level.
func TestGeneratorConsistencyMix(t *testing.T) {
	spec := Spec{Seed: 7, Keys: 20, EventualFrac: 0.6, BoundedFrac: 0.3}
	g1, g2 := NewGenerator(spec), NewGenerator(spec)
	counts := map[dht.Level]int{}
	const n = 4000
	for i := 0; i < n; i++ {
		op1, op2 := g1.Next(), g2.Next()
		if op1 != op2 {
			t.Fatalf("op %d diverged: %+v vs %+v", i, op1, op2)
		}
		if op1.Kind == OpPut {
			if op1.Level != dht.LevelCurrent {
				t.Fatalf("write carries read level %v", op1.Level)
			}
			continue
		}
		counts[op1.Level]++
	}
	reads := counts[dht.LevelCurrent] + counts[dht.LevelBounded] + counts[dht.LevelEventual]
	evFrac := float64(counts[dht.LevelEventual]) / float64(reads)
	bdFrac := float64(counts[dht.LevelBounded]) / float64(reads)
	if evFrac < 0.55 || evFrac > 0.65 {
		t.Errorf("eventual fraction %.3f, want ~0.6", evFrac)
	}
	if bdFrac < 0.25 || bdFrac > 0.35 {
		t.Errorf("bounded fraction %.3f, want ~0.3", bdFrac)
	}
	if counts[dht.LevelCurrent] == 0 {
		t.Error("no current reads in a 10% remainder")
	}
}

// TestGeneratorMixFreeStreamUnchanged: a spec without a mix consumes no
// extra randomness, so the historical operation streams (and every
// determinism baseline built on them) are preserved exactly.
func TestGeneratorMixFreeStreamUnchanged(t *testing.T) {
	plain := NewGenerator(Spec{Seed: 3, Keys: 10})
	mixed := NewGenerator(Spec{Seed: 3, Keys: 10, EventualFrac: 0.5})
	diverged := false
	for i := 0; i < 500; i++ {
		a, b := plain.Next(), mixed.Next()
		if a.Level != dht.LevelCurrent {
			t.Fatalf("mix-free op %d has level %v", i, a.Level)
		}
		if a.Seq != b.Seq || a.Kind != b.Kind || a.Key != b.Key {
			diverged = true
		}
	}
	if !diverged {
		t.Log("streams happened to agree; mix draw consumed no divergent randomness for this seed")
	}
}

// TestMixResolveClamps: negative fractions clamp to zero and
// over-committed mixes normalize to sum 1.
func TestMixResolveClamps(t *testing.T) {
	s := Spec{EventualFrac: -1, BoundedFrac: 0.5}.resolve()
	if s.EventualFrac != 0 || s.BoundedFrac != 0.5 {
		t.Fatalf("clamp: %+v", s)
	}
	s = Spec{EventualFrac: 0.9, BoundedFrac: 0.9}.resolve()
	if sum := s.EventualFrac + s.BoundedFrac; sum > 1.0001 || sum < 0.9999 {
		t.Fatalf("normalize: %+v (sum %v)", s, sum)
	}
	if s.Bound <= 0 {
		t.Fatalf("bound default missing: %+v", s)
	}
}

// TestRunMixFallbackCountsCurrent: against a client without GetWith
// every read runs the plain provably-current path, so the report must
// count them as current regardless of the generated levels — it never
// claims relaxed reads that did not happen.
func TestRunMixFallbackCountsCurrent(t *testing.T) {
	env := network.NewRealEnv(1)
	defer env.Close()
	c := newFakeClient() // plain Client: no LevelClient fast path
	rep, err := Run(context.Background(), env, c, Spec{
		Seed: 5, Keys: 10, Ops: 100, Concurrency: 4, DataSize: 16,
		ReadRatio: ratio(0.8), EventualFrac: 0.7, BoundedFrac: 0.2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.ReadsEventual != 0 || rep.ReadsBounded != 0 {
		t.Fatalf("fallback reads misreported as relaxed: %+v", rep)
	}
	if rep.ReadsCurrent != rep.Reads.Ops {
		t.Fatalf("current count %d != reads %d", rep.ReadsCurrent, rep.Reads.Ops)
	}
}

// levelRecordingClient counts the levels reads arrive at through the
// LevelClient fast path.
type levelRecordingClient struct {
	*fakeClient
	levels map[dht.Level]int
}

func (c *levelRecordingClient) GetWith(ctx context.Context, key core.Key, pol dht.ReadPolicy) (dht.OpResult, error) {
	c.fakeClient.mu.Lock()
	c.levels[pol.Level]++
	c.fakeClient.mu.Unlock()
	return c.fakeClient.Get(ctx, key)
}

// TestRunHonorsConsistencyMix: the driver routes mixed reads through
// LevelClient.GetWith and the report counts completed reads per level.
func TestRunHonorsConsistencyMix(t *testing.T) {
	env := network.NewRealEnv(1)
	defer env.Close()
	c := &levelRecordingClient{fakeClient: newFakeClient(), levels: map[dht.Level]int{}}
	rep, err := Run(context.Background(), env, c, Spec{
		Seed: 5, Keys: 10, Ops: 200, Concurrency: 4, DataSize: 16,
		ReadRatio: ratio(0.8), EventualFrac: 0.7, BoundedFrac: 0.2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.ReadsEventual == 0 || rep.ReadsBounded == 0 || rep.ReadsCurrent == 0 {
		t.Fatalf("per-level read counts missing: %+v", rep)
	}
	if got := rep.ReadsEventual + rep.ReadsBounded + rep.ReadsCurrent; got != rep.Reads.Ops {
		t.Fatalf("level counts sum %d != reads %d", got, rep.Reads.Ops)
	}
	if c.levels[dht.LevelEventual] != rep.ReadsEventual || c.levels[dht.LevelBounded] != rep.ReadsBounded {
		t.Fatalf("client saw %v, report says ev=%d bd=%d", c.levels, rep.ReadsEventual, rep.ReadsBounded)
	}
	if rep.EventualFrac != 0.7 || rep.BoundedFrac != 0.2 || rep.BoundSec <= 0 {
		t.Fatalf("mix echo missing: %+v", rep)
	}
}
