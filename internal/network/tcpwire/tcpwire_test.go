package tcpwire

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/network"
)

type ping struct{ N int }
type pong struct{ N int }

func init() {
	network.RegisterMessage(ping{}, pong{})
}

func newPair(t *testing.T) (*Endpoint, *Endpoint) {
	t.Helper()
	a, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	b, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { a.Close(); b.Close() })
	return a, b
}

func TestRoundTrip(t *testing.T) {
	a, b := newPair(t)
	b.Handle("ping", func(from network.Addr, req network.Message) (network.Message, error) {
		if from != a.Addr() {
			t.Errorf("from = %s, want %s", from, a.Addr())
		}
		return pong{N: req.(ping).N + 1}, nil
	})
	m := &network.Meter{}
	resp, err := a.Invoke(network.WithMeter(context.Background(), m), b.Addr(), "ping", ping{N: 41}, network.Call{})
	if err != nil {
		t.Fatal(err)
	}
	if resp.(pong).N != 42 {
		t.Fatalf("resp = %+v", resp)
	}
	if m.Msgs != 2 {
		t.Fatalf("meter = %+v", m)
	}
}

func TestConnectionReuse(t *testing.T) {
	a, b := newPair(t)
	var mu sync.Mutex
	conns := map[string]bool{}
	b.Handle("ping", func(from network.Addr, req network.Message) (network.Message, error) {
		return pong{N: req.(ping).N}, nil
	})
	for i := 0; i < 20; i++ {
		if _, err := a.Invoke(context.Background(), b.Addr(), "ping", ping{N: i}, network.Call{}); err != nil {
			t.Fatal(err)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	_ = conns // reuse is observable indirectly: sequential calls stay fast
}

func TestRemoteErrorTaxonomy(t *testing.T) {
	a, b := newPair(t)
	b.Handle("get", func(network.Addr, network.Message) (network.Message, error) {
		return nil, fmt.Errorf("nothing stored: %w", core.ErrNotFound)
	})
	_, err := a.Invoke(context.Background(), b.Addr(), "get", ping{}, network.Call{})
	if !errors.Is(err, core.ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
}

func TestUnknownMethod(t *testing.T) {
	a, b := newPair(t)
	_, err := a.Invoke(context.Background(), b.Addr(), "nope", ping{}, network.Call{})
	if !errors.Is(err, core.ErrUnreachable) {
		t.Fatalf("err = %v, want ErrUnreachable", err)
	}
}

func TestDialFailureIsUnreachable(t *testing.T) {
	a, _ := newPair(t)
	// A port with (almost certainly) nothing listening.
	_, err := a.Invoke(context.Background(), "127.0.0.1:1", "ping", ping{}, network.Call{Timeout: 500 * time.Millisecond})
	if !errors.Is(err, core.ErrUnreachable) && !errors.Is(err, core.ErrTimeout) {
		t.Fatalf("err = %v", err)
	}
}

func TestSlowHandlerTimesOut(t *testing.T) {
	a, b := newPair(t)
	b.Handle("slow", func(network.Addr, network.Message) (network.Message, error) {
		time.Sleep(2 * time.Second)
		return pong{}, nil
	})
	start := time.Now()
	_, err := a.Invoke(context.Background(), b.Addr(), "slow", ping{}, network.Call{Timeout: 200 * time.Millisecond})
	if !errors.Is(err, core.ErrTimeout) {
		t.Fatalf("err = %v, want timeout", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("timed out too slowly: %v", elapsed)
	}
}

func TestClosedEndpointRefusesCalls(t *testing.T) {
	a, b := newPair(t)
	a.Close()
	_, err := a.Invoke(context.Background(), b.Addr(), "ping", ping{}, network.Call{})
	if !errors.Is(err, core.ErrStopped) {
		t.Fatalf("err = %v", err)
	}
}

func TestCallToClosedPeer(t *testing.T) {
	a, b := newPair(t)
	b.Handle("ping", func(network.Addr, network.Message) (network.Message, error) {
		return pong{}, nil
	})
	if _, err := a.Invoke(context.Background(), b.Addr(), "ping", ping{}, network.Call{}); err != nil {
		t.Fatal(err)
	}
	b.Close()
	_, err := a.Invoke(context.Background(), b.Addr(), "ping", ping{N: 2}, network.Call{Timeout: 500 * time.Millisecond})
	if err == nil {
		t.Fatal("call to closed peer should fail")
	}
}

func TestConcurrentCalls(t *testing.T) {
	a, b := newPair(t)
	b.Handle("ping", func(from network.Addr, req network.Message) (network.Message, error) {
		return pong{N: req.(ping).N * 2}, nil
	})
	var wg sync.WaitGroup
	errs := make(chan error, 50)
	for i := 0; i < 50; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := a.Invoke(context.Background(), b.Addr(), "ping", ping{N: i}, network.Call{})
			if err != nil {
				errs <- err
				return
			}
			if resp.(pong).N != i*2 {
				errs <- fmt.Errorf("bad response for %d: %+v", i, resp)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestNestedInvokeAcrossThreeNodes(t *testing.T) {
	a, b := newPair(t)
	c, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.Handle("leaf", func(network.Addr, network.Message) (network.Message, error) {
		return pong{N: 7}, nil
	})
	b.Handle("mid", func(network.Addr, network.Message) (network.Message, error) {
		r, err := b.Invoke(context.Background(), c.Addr(), "leaf", ping{}, network.Call{})
		if err != nil {
			return nil, err
		}
		return pong{N: r.(pong).N + 1}, nil
	})
	r, err := a.Invoke(context.Background(), b.Addr(), "mid", ping{}, network.Call{})
	if err != nil {
		t.Fatal(err)
	}
	if r.(pong).N != 8 {
		t.Fatalf("resp = %+v", r)
	}
}

func TestRealEnvBasics(t *testing.T) {
	env := network.NewRealEnv(42)
	start := env.Now()
	if err := env.Sleep(10 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if env.Now()-start < 10*time.Millisecond {
		t.Fatal("sleep returned early")
	}
	done := make(chan struct{})
	env.Go(func() { close(done) })
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("Go never ran")
	}
	fired := make(chan struct{})
	env.After(5*time.Millisecond, func() { close(fired) })
	select {
	case <-fired:
	case <-time.After(time.Second):
		t.Fatal("After never fired")
	}
	tm := env.After(time.Hour, func() {})
	if !tm.Cancel() {
		t.Fatal("cancel of pending timer must succeed")
	}
	if env.Rand("a").Uint64() != network.NewRealEnv(42).Rand("a").Uint64() {
		t.Fatal("seeded env rand must be reproducible")
	}
	env.Close()
	if err := env.Sleep(time.Hour); !errors.Is(err, core.ErrStopped) {
		t.Fatalf("sleep after close = %v", err)
	}
	env.Close() // idempotent
}
