// Package tcpwire is the real transport: RPCs over TCP with gob framing
// and per-destination connection pooling. It backs the deployment mode of
// the reproduction — the stand-in for the paper's 64-node cluster — and
// runs the exact same protocol code as the simulated transport.
package tcpwire

import (
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/network"
	"repro/internal/obs"
)

// wireRequest is the frame a client sends for one call.
type wireRequest struct {
	Method string
	From   string
	Body   network.Message
}

// wireResponse is the frame a server returns.
type wireResponse struct {
	Body network.Message
	Code string
	Msg  string
}

// DefaultTimeout bounds calls that do not specify one.
const DefaultTimeout = 5 * time.Second

// maxIdlePerHost limits pooled idle connections per destination.
const maxIdlePerHost = 4

// Endpoint is a TCP attachment: a listener serving registered handlers
// plus an outbound connection pool.
type Endpoint struct {
	ln   net.Listener
	addr network.Addr

	mu       sync.Mutex
	handlers map[string]network.HandlerFunc
	pools    map[network.Addr]*connPool
	accepted map[net.Conn]bool
	closed   bool

	metrics netMetrics
}

// netMetrics holds the transport's counters. The fields are always live
// (the obs constructors are nil-registry safe), so the hot path never
// branches on whether instrumentation is enabled.
type netMetrics struct {
	dials    *obs.Counter
	accepts  *obs.Counter
	calls    *obs.Counter
	aborts   *obs.Counter
	inflight *obs.Gauge
}

func newNetMetrics(reg *obs.Registry) netMetrics {
	return netMetrics{
		dials: reg.Counter("dcdht_net_dials_total",
			"Outbound TCP connections dialed (pool misses)."),
		accepts: reg.Counter("dcdht_net_conns_accepted_total",
			"Inbound TCP connections accepted."),
		calls: reg.Counter("dcdht_net_calls_total",
			"RPC invocations attempted over TCP."),
		aborts: reg.Counter("dcdht_net_call_aborts_total",
			"Calls aborted mid-flight by deadline, cancellation or I/O error."),
		inflight: reg.Gauge("dcdht_net_inflight",
			"RPC invocations currently in flight."),
	}
}

var _ network.Endpoint = (*Endpoint)(nil)

// Listen opens an endpoint on hostport ("127.0.0.1:0" picks a free
// port; the chosen address is available via Addr).
func Listen(hostport string) (*Endpoint, error) {
	return ListenWith(hostport, nil)
}

// ListenWith opens an endpoint like Listen and registers its transport
// metrics (dials, accepted conns, in-flight calls, deadline aborts) in
// reg. A nil registry disables export; the counters still work so the
// call path is identical either way. The registry must be supplied here
// rather than after the fact because the accept loop starts immediately.
func ListenWith(hostport string, reg *obs.Registry) (*Endpoint, error) {
	ln, err := net.Listen("tcp", hostport)
	if err != nil {
		return nil, fmt.Errorf("tcpwire: listen %s: %w", hostport, err)
	}
	ep := &Endpoint{
		ln:       ln,
		addr:     network.Addr(ln.Addr().String()),
		handlers: make(map[string]network.HandlerFunc),
		pools:    make(map[network.Addr]*connPool),
		accepted: make(map[net.Conn]bool),
		metrics:  newNetMetrics(reg),
	}
	go ep.acceptLoop()
	return ep, nil
}

// Addr implements network.Endpoint.
func (ep *Endpoint) Addr() network.Addr { return ep.addr }

// Handle implements network.Endpoint.
func (ep *Endpoint) Handle(method string, h network.HandlerFunc) {
	ep.mu.Lock()
	defer ep.mu.Unlock()
	ep.handlers[method] = h
}

// Close implements network.Endpoint: it stops accepting, closes pooled
// connections and fails subsequent calls.
func (ep *Endpoint) Close() error {
	ep.mu.Lock()
	if ep.closed {
		ep.mu.Unlock()
		return nil
	}
	ep.closed = true
	pools := ep.pools
	ep.pools = map[network.Addr]*connPool{}
	accepted := ep.accepted
	ep.accepted = map[net.Conn]bool{}
	ep.mu.Unlock()
	err := ep.ln.Close()
	for _, p := range pools {
		p.closeAll()
	}
	for c := range accepted {
		c.Close()
	}
	return err
}

func (ep *Endpoint) isClosed() bool {
	ep.mu.Lock()
	defer ep.mu.Unlock()
	return ep.closed
}

func (ep *Endpoint) handler(method string) network.HandlerFunc {
	ep.mu.Lock()
	defer ep.mu.Unlock()
	return ep.handlers[method]
}

func (ep *Endpoint) acceptLoop() {
	for {
		conn, err := ep.ln.Accept()
		if err != nil {
			return // listener closed
		}
		ep.mu.Lock()
		if ep.closed {
			ep.mu.Unlock()
			conn.Close()
			return
		}
		ep.accepted[conn] = true
		ep.mu.Unlock()
		ep.metrics.accepts.Inc()
		go ep.serveConn(conn)
	}
}

// serveConn handles one inbound connection: a sequence of
// request/response exchanges (the client holds the connection exclusively
// per call, so frames never interleave).
func (ep *Endpoint) serveConn(conn net.Conn) {
	defer func() {
		conn.Close()
		ep.mu.Lock()
		delete(ep.accepted, conn)
		ep.mu.Unlock()
	}()
	dec := gob.NewDecoder(conn)
	enc := gob.NewEncoder(conn)
	for {
		var req wireRequest
		if err := dec.Decode(&req); err != nil {
			return
		}
		var resp wireResponse
		if h := ep.handler(req.Method); h == nil {
			resp.Code, resp.Msg = network.EncodeError(
				fmt.Errorf("tcpwire: no handler for %q: %w", req.Method, core.ErrUnreachable))
		} else {
			body, err := h(network.Addr(req.From), req.Body)
			resp.Body = body
			resp.Code, resp.Msg = network.EncodeError(err)
		}
		if err := enc.Encode(resp); err != nil {
			return
		}
	}
}

// Invoke implements network.Endpoint. The context is honored natively:
// an already-done context fails fast, its deadline caps the socket
// deadlines (dial, write and read), and a cancellation mid-flight
// aborts the in-progress I/O.
func (ep *Endpoint) Invoke(ctx context.Context, to network.Addr, method string, req network.Message, opt network.Call) (network.Message, error) {
	if ep.isClosed() {
		return nil, fmt.Errorf("tcpwire: %s: %w", ep.addr, core.ErrStopped)
	}
	if err := network.CtxError(ctx); err != nil {
		return nil, fmt.Errorf("tcpwire: %s->%s %s: %w", ep.addr, to, method, err)
	}
	timeout := network.Patience(ctx, opt.Timeout, DefaultTimeout)
	ep.metrics.calls.Inc()
	ep.metrics.inflight.Add(1)
	defer ep.metrics.inflight.Add(-1)
	pc, err := ep.getConn(ctx, to, timeout)
	if err != nil {
		if cerr := network.CtxError(ctx); cerr != nil {
			return nil, fmt.Errorf("tcpwire: %s->%s %s: %w", ep.addr, to, method, cerr)
		}
		return nil, err
	}
	meter := network.MeterFrom(ctx)
	meter.Count(network.SizeOf(req))

	pc.conn.SetDeadline(time.Now().Add(timeout))
	// A cancellation mid-flight yanks the socket deadline into the past,
	// which aborts the blocked encode/decode immediately.
	stopWatch := context.AfterFunc(ctx, func() { pc.conn.SetDeadline(time.Unix(1, 0)) })
	abort := func(ioErr error) error {
		ep.metrics.aborts.Inc()
		stopWatch()
		pc.close()
		if cerr := network.CtxError(ctx); cerr != nil {
			return fmt.Errorf("tcpwire: %s->%s %s: %w", ep.addr, to, method, cerr)
		}
		return mapNetErr(ep.addr, to, method, ioErr)
	}
	frame := wireRequest{Method: method, From: string(ep.addr), Body: req}
	if err := pc.enc.Encode(frame); err != nil {
		return nil, abort(err)
	}
	var resp wireResponse
	if err := pc.dec.Decode(&resp); err != nil {
		return nil, abort(err)
	}
	if !stopWatch() {
		// The cancellation watchdog already started: it may yank the
		// socket deadline at any moment, so this conn cannot be trusted
		// by a future lease — drop it instead of pooling.
		pc.close()
	} else {
		pc.conn.SetDeadline(time.Time{})
		ep.putConn(to, pc)
	}

	if resp.Code != "" {
		meter.Count(network.DefaultWireSize)
		return nil, network.DecodeError(resp.Code, resp.Msg)
	}
	meter.Count(network.SizeOf(resp.Body))
	return resp.Body, nil
}

// mapNetErr folds socket errors into the core taxonomy so protocol code
// treats simulated and real failures identically.
func mapNetErr(from, to network.Addr, method string, err error) error {
	var nerr net.Error
	if errors.As(err, &nerr) && nerr.Timeout() {
		return fmt.Errorf("tcpwire: %s->%s %s: %w", from, to, method, core.ErrTimeout)
	}
	return fmt.Errorf("tcpwire: %s->%s %s: %v: %w", from, to, method, err, core.ErrUnreachable)
}

// connPool keeps idle connections to one destination.
type connPool struct {
	mu   sync.Mutex
	idle []*persistConn
}

type persistConn struct {
	conn net.Conn
	enc  *gob.Encoder
	dec  *gob.Decoder
}

func (pc *persistConn) close() { pc.conn.Close() }

func (p *connPool) get() *persistConn {
	p.mu.Lock()
	defer p.mu.Unlock()
	if n := len(p.idle); n > 0 {
		pc := p.idle[n-1]
		p.idle = p.idle[:n-1]
		return pc
	}
	return nil
}

func (p *connPool) put(pc *persistConn) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.idle) >= maxIdlePerHost {
		return false
	}
	p.idle = append(p.idle, pc)
	return true
}

func (p *connPool) closeAll() {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, pc := range p.idle {
		pc.close()
	}
	p.idle = nil
}

func (ep *Endpoint) pool(to network.Addr) *connPool {
	ep.mu.Lock()
	defer ep.mu.Unlock()
	p := ep.pools[to]
	if p == nil {
		p = &connPool{}
		ep.pools[to] = p
	}
	return p
}

func (ep *Endpoint) getConn(ctx context.Context, to network.Addr, timeout time.Duration) (*persistConn, error) {
	if pc := ep.pool(to).get(); pc != nil {
		return pc, nil
	}
	d := net.Dialer{Timeout: timeout}
	ep.metrics.dials.Inc()
	conn, err := d.DialContext(ctx, "tcp", string(to))
	if err != nil {
		return nil, mapNetErr(ep.addr, to, "dial", err)
	}
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	return &persistConn{conn: conn, enc: gob.NewEncoder(conn), dec: gob.NewDecoder(conn)}, nil
}

func (ep *Endpoint) putConn(to network.Addr, pc *persistConn) {
	if ep.isClosed() || !ep.pool(to).put(pc) {
		pc.close()
	}
}
