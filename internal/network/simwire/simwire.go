// Package simwire is the simulated transport: it delivers RPCs between
// endpoints in virtual time on a simnet.Kernel, charging each message the
// latency and transmission delay of the paper's Table 1 network model
// (latency ~ N(200 ms, var 100), bandwidth ~ N(56 kbps, var 32)).
//
// Peers can be killed, which models the "fail" departure type: a killed
// endpoint silently drops traffic, so callers observe timeouts exactly as
// they would with a crashed peer.
//
// The link model is pluggable: a Conditions implementation decides every
// message's one-way delay and loss. The default Model keeps one
// deterministic RNG stream per directed link — all draws under one lock,
// so it is race-free by construction — and supports per-link Profile
// overrides (latency distribution, jitter, loss, bandwidth). On top of
// that the Network can be Partitioned into groups that cannot exchange
// messages until Heal, which is how the scenario engine scripts network
// splits.
package simwire

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/network"
	"repro/internal/simnet"
	"repro/internal/stats"
)

// Config parameterises the network model. Zero fields are completed from
// Table 1 of the paper.
type Config struct {
	// LatencyMS is the one-way message latency in milliseconds.
	LatencyMS stats.Normal
	// BandwidthKbps is the per-message link bandwidth in kilobits/s.
	BandwidthKbps stats.Normal
	// DefaultTimeout bounds Invoke round trips when the call does not
	// specify one. It is the failure detector's patience.
	DefaultTimeout time.Duration
}

// Table1 returns the paper's simulation parameters (Table 1).
func Table1() Config {
	return Config{
		LatencyMS:      stats.Normal{Mean: 200, Variance: 100, Min: 1},
		BandwidthKbps:  stats.Normal{Mean: 56, Variance: 32, Min: 8},
		DefaultTimeout: 2 * time.Second,
	}
}

// Cluster returns a profile for the 64-node 1 Gbps cluster of §5.1:
// sub-millisecond latency, effectively unconstrained bandwidth.
func Cluster() Config {
	return Config{
		LatencyMS:      stats.Normal{Mean: 0.3, Variance: 0.01, Min: 0.05},
		BandwidthKbps:  stats.Normal{Mean: 1e6, Variance: 0, Min: 1e6},
		DefaultTimeout: 250 * time.Millisecond,
	}
}

func (c Config) applyDefaults() Config {
	t1 := Table1()
	if c.LatencyMS.Mean == 0 {
		c.LatencyMS = t1.LatencyMS
	}
	if c.BandwidthKbps.Mean == 0 {
		c.BandwidthKbps = t1.BandwidthKbps
	}
	if c.DefaultTimeout == 0 {
		c.DefaultTimeout = t1.DefaultTimeout
	}
	return c
}

// Network owns the set of simulated endpoints, the pluggable link
// conditions model, and the partition state.
type Network struct {
	k   *simnet.Kernel
	cfg Config

	mu        sync.Mutex
	endpoints map[network.Addr]*Endpoint
	nextAddr  int
	totalMsgs uint64
	totalDrop uint64

	cond  Conditions
	model *Model // the default model when cond is ours, for SetProfile

	// partition maps an address to its group; addresses in different
	// groups cannot exchange messages. nil means no partition is active;
	// addresses absent from an active partition are unconstrained.
	partition map[network.Addr]int
}

// New builds a simulated network on kernel k with the default
// per-link conditions model.
func New(k *simnet.Kernel, cfg Config) *Network {
	cfg = cfg.applyDefaults()
	m := NewModel(k.NewRand, cfg)
	return &Network{
		k:         k,
		cfg:       cfg,
		endpoints: make(map[network.Addr]*Endpoint),
		cond:      m,
		model:     m,
	}
}

// Kernel returns the kernel driving this network.
func (n *Network) Kernel() *simnet.Kernel { return n.k }

// Env returns the simulation-backed execution environment.
func (n *Network) Env() network.Env { return Env(n.k) }

// Config returns the active network model.
func (n *Network) Config() Config { return n.cfg }

// Model returns the default conditions model so callers can layer
// per-link profiles onto it (SetProfile/ClearProfiles). It returns nil
// after SetConditions replaced the model with a custom implementation.
func (n *Network) Model() *Model {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.model
}

// SetConditions replaces the link conditions model wholesale. Passing a
// custom implementation detaches the default Model (Model() returns nil
// until another Model is installed). In-flight messages keep the delay
// they were planned with.
func (n *Network) SetConditions(c Conditions) {
	if c == nil {
		panic("simwire: nil Conditions")
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	n.cond = c
	if m, ok := c.(*Model); ok {
		n.model = m
	} else {
		n.model = nil
	}
}

// conditions returns the active model under the lock.
func (n *Network) conditions() Conditions {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.cond
}

// Partition splits the network: each listed group can only exchange
// messages within itself. Addresses not listed in any group (e.g. peers
// attached after the split) are unconstrained and reach everyone —
// model them explicitly if that matters. A new call replaces the
// previous partition; Heal removes it.
func (n *Network) Partition(groups ...[]network.Addr) {
	p := make(map[network.Addr]int)
	for gi, g := range groups {
		for _, a := range g {
			p[a] = gi
		}
	}
	n.mu.Lock()
	n.partition = p
	n.mu.Unlock()
}

// JoinGroupOf assigns addr to ref's partition group: a peer that joins
// the overlay during a split necessarily joined through a bootstrap on
// one side, and must share that side's fate — otherwise every churn
// replacement would bridge the partition. No-op when no partition is
// active or ref is unconstrained.
func (n *Network) JoinGroupOf(addr, ref network.Addr) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.partition == nil {
		return
	}
	if g, ok := n.partition[ref]; ok {
		n.partition[addr] = g
	}
}

// Heal removes the active partition; every pair of endpoints can
// exchange messages again (link profiles are untouched).
func (n *Network) Heal() {
	n.mu.Lock()
	n.partition = nil
	n.mu.Unlock()
}

// Reachable reports whether the active partition permits messages from
// a to b. It is true when no partition is active, when either address
// is unconstrained, or when both sit in the same group.
func (n *Network) Reachable(a, b network.Addr) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.reachableLocked(a, b)
}

func (n *Network) reachableLocked(a, b network.Addr) bool {
	if n.partition == nil {
		return true
	}
	ga, oka := n.partition[a]
	gb, okb := n.partition[b]
	return !oka || !okb || ga == gb
}

// TotalMessages returns the number of messages the network has carried.
func (n *Network) TotalMessages() uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.totalMsgs
}

// TotalDropped returns the number of messages dropped at dead endpoints.
func (n *Network) TotalDropped() uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.totalDrop
}

// NewEndpoint attaches a fresh endpoint. The empty name auto-assigns
// "simN".
func (n *Network) NewEndpoint(name string) *Endpoint {
	n.mu.Lock()
	defer n.mu.Unlock()
	if name == "" {
		name = fmt.Sprintf("sim%d", n.nextAddr)
	}
	n.nextAddr++
	addr := network.Addr(name)
	if _, exists := n.endpoints[addr]; exists {
		panic(fmt.Sprintf("simwire: duplicate endpoint %q", name))
	}
	ep := &Endpoint{
		net:      n,
		addr:     addr,
		handlers: make(map[string]network.HandlerFunc),
		alive:    true,
	}
	n.endpoints[addr] = ep
	return ep
}

// Remove detaches a dead endpoint so a restarted peer can re-attach
// under the same name — same address, hence same ring position. Only
// dead endpoints can be removed (a live one still owns its address);
// unknown addresses are ignored.
func (n *Network) Remove(addr network.Addr) {
	n.mu.Lock()
	defer n.mu.Unlock()
	ep := n.endpoints[addr]
	if ep == nil {
		return
	}
	if ep.isAlive() {
		panic(fmt.Sprintf("simwire: removing live endpoint %q", addr))
	}
	delete(n.endpoints, addr)
}

// Kill crashes the endpoint with the given address: it stops receiving
// and its in-flight replies are dropped. Unknown addresses are ignored.
func (n *Network) Kill(addr network.Addr) {
	n.mu.Lock()
	ep := n.endpoints[addr]
	n.mu.Unlock()
	if ep != nil {
		ep.setAlive(false)
	}
}

// Alive reports whether the endpoint exists and has not been killed or
// closed.
func (n *Network) Alive(addr network.Addr) bool {
	n.mu.Lock()
	ep := n.endpoints[addr]
	n.mu.Unlock()
	return ep != nil && ep.isAlive()
}

// Endpoint is one simulated peer's network attachment.
type Endpoint struct {
	net  *Network
	addr network.Addr

	mu       sync.Mutex
	handlers map[string]network.HandlerFunc
	alive    bool
}

var _ network.Endpoint = (*Endpoint)(nil)

// Addr implements network.Endpoint.
func (ep *Endpoint) Addr() network.Addr { return ep.addr }

// Handle implements network.Endpoint.
func (ep *Endpoint) Handle(method string, h network.HandlerFunc) {
	ep.mu.Lock()
	defer ep.mu.Unlock()
	ep.handlers[method] = h
}

// Close implements network.Endpoint; a closed endpoint behaves like a
// killed one.
func (ep *Endpoint) Close() error {
	ep.setAlive(false)
	return nil
}

func (ep *Endpoint) setAlive(v bool) {
	ep.mu.Lock()
	ep.alive = v
	ep.mu.Unlock()
}

func (ep *Endpoint) isAlive() bool {
	ep.mu.Lock()
	defer ep.mu.Unlock()
	return ep.alive
}

func (ep *Endpoint) handler(method string) network.HandlerFunc {
	ep.mu.Lock()
	defer ep.mu.Unlock()
	if !ep.alive {
		return nil
	}
	return ep.handlers[method]
}

// Invoke implements network.Endpoint. It must run inside a kernel
// process. A dead or missing destination produces core.ErrTimeout after
// the call's timeout (crash failures are indistinguishable from silence,
// as in a real network).
//
// Context mapping: a context that is already done fails fast with the
// matching core error, and a live deadline's remaining wall-clock budget
// is mapped onto a virtual-time timeout — the simulation's analogue of
// honoring the deadline. Deadline-free calls keep the configured
// timeout, so deterministic experiments stay bit-reproducible.
func (ep *Endpoint) Invoke(ctx context.Context, to network.Addr, method string, req network.Message, opt network.Call) (network.Message, error) {
	if !ep.isAlive() {
		return nil, fmt.Errorf("simwire: %s: %w", ep.addr, core.ErrStopped)
	}
	if err := network.CtxError(ctx); err != nil {
		return nil, fmt.Errorf("simwire: %s->%s %s: %w", ep.addr, to, method, err)
	}
	n := ep.net
	timeout := network.Patience(ctx, opt.Timeout, n.cfg.DefaultTimeout)
	meter := network.MeterFrom(ctx)
	reqSize := network.SizeOf(req)
	meter.Count(reqSize)
	n.countMsg()

	reply := n.k.NewFuture()
	reqDelay, reqLost := n.conditions().Plan(ep.addr, to, reqSize)
	if reqLost || !n.Reachable(ep.addr, to) {
		// Lost in flight or blocked by a partition: silence, the caller
		// times out — indistinguishable from a crashed destination.
		n.countDrop()
	} else {
		del := deliveryPool.Get().(*delivery)
		del.n, del.from, del.to, del.method = n, ep.addr, to, method
		del.req, del.reply = req, reply
		n.k.AfterProc(reqDelay, deliverRequest, del)
	}

	v, err := reply.Await(timeout)
	if err != nil {
		// The virtual-time wait may have been cut short by the caller's
		// deadline; report it in context terms when so.
		if cerr := network.CtxError(ctx); cerr != nil {
			err = cerr
		}
		return nil, fmt.Errorf("simwire: %s->%s %s: %w", ep.addr, to, method, err)
	}
	del := v.(*delivery)
	meter.Count(del.size)
	body, code, msg := del.body, del.code, del.msg
	del.release()
	if code != "" {
		return nil, network.DecodeError(code, msg)
	}
	return body, nil
}

// delivery carries one message (and later its response) through the
// simulated wire. Deliveries are pooled: the success path releases one
// back after the caller copied the response out, and every drop path
// releases on the spot. The one leak is a response that arrives after
// the caller timed out — the resolved-but-unread future keeps the
// delivery alive, so it must go to the garbage collector, never back to
// the pool.
type delivery struct {
	n      *Network
	from   network.Addr
	to     network.Addr
	method string
	req    network.Message
	reply  *simnet.Future
	// Response leg, filled by deliverRequest.
	body network.Message
	code string
	msg  string
	size int
}

var deliveryPool = sync.Pool{New: func() any { return new(delivery) }}

// release zeroes the delivery and returns it to the pool.
func (d *delivery) release() {
	*d = delivery{}
	deliveryPool.Put(d)
}

// deliverRequest runs as a kernel process when the request arrives at
// its destination: it serves the handler and schedules the response leg.
func deliverRequest(x any) {
	del := x.(*delivery)
	n := del.n
	// A partition that started while the message was in flight still
	// blocks delivery: no cross-partition message is ever handed to a
	// handler.
	if !n.Reachable(del.from, del.to) {
		n.countDrop()
		del.release()
		return
	}
	n.mu.Lock()
	dst := n.endpoints[del.to]
	n.mu.Unlock()
	if dst == nil || !dst.isAlive() {
		n.countDrop()
		del.release()
		return // silence; the caller times out
	}
	h := dst.handler(del.method)
	if h == nil {
		n.countDrop()
		del.release()
		return
	}
	res, err := h(del.from, del.req)
	// The reply travels back only if the destination survived serving
	// the request and the partition still permits it.
	if !dst.isAlive() {
		n.countDrop()
		del.release()
		return
	}
	code, msg := network.EncodeError(err)
	respSize := network.DefaultWireSize
	if err == nil {
		respSize = network.SizeOf(res)
	}
	n.countMsg()
	respDelay, respLost := n.conditions().Plan(del.to, del.from, respSize)
	if respLost || !n.Reachable(del.to, del.from) {
		n.countDrop()
		del.release()
		return
	}
	del.body, del.code, del.msg, del.size = res, code, msg, respSize
	// The response is a pure event: resolving a future never blocks, so
	// it needs no process of its own.
	n.k.AfterCall(respDelay, deliverResponse, del)
}

// deliverResponse runs inline on the kernel loop when the response
// arrives back at the caller.
func deliverResponse(x any) {
	del := x.(*delivery)
	if !del.n.Reachable(del.to, del.from) {
		del.n.countDrop()
		del.release()
		return
	}
	del.reply.Resolve(del)
}

func (n *Network) countMsg() {
	n.mu.Lock()
	n.totalMsgs++
	n.mu.Unlock()
}

func (n *Network) countDrop() {
	n.mu.Lock()
	n.totalDrop++
	n.mu.Unlock()
}

// Env adapts a kernel to network.Env so protocol code can run under
// simulation.
func Env(k *simnet.Kernel) network.Env { return simEnv{k} }

type simEnv struct{ k *simnet.Kernel }

func (e simEnv) Now() time.Duration          { return e.k.Now() }
func (e simEnv) Sleep(d time.Duration) error { return e.k.Sleep(d) }
func (e simEnv) Go(fn func())                { e.k.Go(fn) }
func (e simEnv) After(d time.Duration, fn func()) network.Canceler {
	return e.k.After(d, fn)
}
func (e simEnv) Rand(label string) *rand.Rand { return e.k.NewRand(label) }
