// Package simwire is the simulated transport: it delivers RPCs between
// endpoints in virtual time on a simnet.Kernel, charging each message the
// latency and transmission delay of the paper's Table 1 network model
// (latency ~ N(200 ms, var 100), bandwidth ~ N(56 kbps, var 32)).
//
// Peers can be killed, which models the "fail" departure type: a killed
// endpoint silently drops traffic, so callers observe timeouts exactly as
// they would with a crashed peer.
package simwire

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/network"
	"repro/internal/simnet"
	"repro/internal/stats"
)

// Config parameterises the network model. Zero fields are completed from
// Table 1 of the paper.
type Config struct {
	// LatencyMS is the one-way message latency in milliseconds.
	LatencyMS stats.Normal
	// BandwidthKbps is the per-message link bandwidth in kilobits/s.
	BandwidthKbps stats.Normal
	// DefaultTimeout bounds Invoke round trips when the call does not
	// specify one. It is the failure detector's patience.
	DefaultTimeout time.Duration
}

// Table1 returns the paper's simulation parameters (Table 1).
func Table1() Config {
	return Config{
		LatencyMS:      stats.Normal{Mean: 200, Variance: 100, Min: 1},
		BandwidthKbps:  stats.Normal{Mean: 56, Variance: 32, Min: 8},
		DefaultTimeout: 2 * time.Second,
	}
}

// Cluster returns a profile for the 64-node 1 Gbps cluster of §5.1:
// sub-millisecond latency, effectively unconstrained bandwidth.
func Cluster() Config {
	return Config{
		LatencyMS:      stats.Normal{Mean: 0.3, Variance: 0.01, Min: 0.05},
		BandwidthKbps:  stats.Normal{Mean: 1e6, Variance: 0, Min: 1e6},
		DefaultTimeout: 250 * time.Millisecond,
	}
}

func (c Config) applyDefaults() Config {
	t1 := Table1()
	if c.LatencyMS.Mean == 0 {
		c.LatencyMS = t1.LatencyMS
	}
	if c.BandwidthKbps.Mean == 0 {
		c.BandwidthKbps = t1.BandwidthKbps
	}
	if c.DefaultTimeout == 0 {
		c.DefaultTimeout = t1.DefaultTimeout
	}
	return c
}

// Network owns the set of simulated endpoints and the shared link model.
type Network struct {
	k   *simnet.Kernel
	cfg Config

	mu        sync.Mutex
	endpoints map[network.Addr]*Endpoint
	nextAddr  int
	totalMsgs uint64
	totalDrop uint64
}

// New builds a simulated network on kernel k.
func New(k *simnet.Kernel, cfg Config) *Network {
	return &Network{
		k:         k,
		cfg:       cfg.applyDefaults(),
		endpoints: make(map[network.Addr]*Endpoint),
	}
}

// Kernel returns the kernel driving this network.
func (n *Network) Kernel() *simnet.Kernel { return n.k }

// Env returns the simulation-backed execution environment.
func (n *Network) Env() network.Env { return Env(n.k) }

// Config returns the active network model.
func (n *Network) Config() Config { return n.cfg }

// TotalMessages returns the number of messages the network has carried.
func (n *Network) TotalMessages() uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.totalMsgs
}

// TotalDropped returns the number of messages dropped at dead endpoints.
func (n *Network) TotalDropped() uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.totalDrop
}

// NewEndpoint attaches a fresh endpoint. The empty name auto-assigns
// "simN".
func (n *Network) NewEndpoint(name string) *Endpoint {
	n.mu.Lock()
	defer n.mu.Unlock()
	if name == "" {
		name = fmt.Sprintf("sim%d", n.nextAddr)
	}
	n.nextAddr++
	addr := network.Addr(name)
	if _, exists := n.endpoints[addr]; exists {
		panic(fmt.Sprintf("simwire: duplicate endpoint %q", name))
	}
	ep := &Endpoint{
		net:      n,
		addr:     addr,
		handlers: make(map[string]network.HandlerFunc),
		alive:    true,
		rng:      n.k.NewRand("wire:" + name),
	}
	n.endpoints[addr] = ep
	return ep
}

// Kill crashes the endpoint with the given address: it stops receiving
// and its in-flight replies are dropped. Unknown addresses are ignored.
func (n *Network) Kill(addr network.Addr) {
	n.mu.Lock()
	ep := n.endpoints[addr]
	n.mu.Unlock()
	if ep != nil {
		ep.setAlive(false)
	}
}

// Alive reports whether the endpoint exists and has not been killed or
// closed.
func (n *Network) Alive(addr network.Addr) bool {
	n.mu.Lock()
	ep := n.endpoints[addr]
	n.mu.Unlock()
	return ep != nil && ep.isAlive()
}

// delay samples the one-way delay for a message of the given size using
// the sender's RNG stream (deterministic per sender).
func (n *Network) delay(rng *rand.Rand, bytes int) time.Duration {
	lat := n.cfg.LatencyMS.Sample(rng)
	bw := n.cfg.BandwidthKbps.Sample(rng)
	if bw <= 0 {
		bw = 1
	}
	// bytes*8 is bits; bandwidth in kbit/s equals bits/ms, so the
	// division yields transmission time in milliseconds directly.
	transMS := float64(bytes*8) / bw
	return time.Duration((lat + transMS) * float64(time.Millisecond))
}

// Endpoint is one simulated peer's network attachment.
type Endpoint struct {
	net  *Network
	addr network.Addr
	rng  *rand.Rand

	mu       sync.Mutex
	handlers map[string]network.HandlerFunc
	alive    bool
}

var _ network.Endpoint = (*Endpoint)(nil)

// Addr implements network.Endpoint.
func (ep *Endpoint) Addr() network.Addr { return ep.addr }

// Handle implements network.Endpoint.
func (ep *Endpoint) Handle(method string, h network.HandlerFunc) {
	ep.mu.Lock()
	defer ep.mu.Unlock()
	ep.handlers[method] = h
}

// Close implements network.Endpoint; a closed endpoint behaves like a
// killed one.
func (ep *Endpoint) Close() error {
	ep.setAlive(false)
	return nil
}

func (ep *Endpoint) setAlive(v bool) {
	ep.mu.Lock()
	ep.alive = v
	ep.mu.Unlock()
}

func (ep *Endpoint) isAlive() bool {
	ep.mu.Lock()
	defer ep.mu.Unlock()
	return ep.alive
}

func (ep *Endpoint) handler(method string) network.HandlerFunc {
	ep.mu.Lock()
	defer ep.mu.Unlock()
	if !ep.alive {
		return nil
	}
	return ep.handlers[method]
}

// Invoke implements network.Endpoint. It must run inside a kernel
// process. A dead or missing destination produces core.ErrTimeout after
// the call's timeout (crash failures are indistinguishable from silence,
// as in a real network).
//
// Context mapping: a context that is already done fails fast with the
// matching core error, and a live deadline's remaining wall-clock budget
// is mapped onto a virtual-time timeout — the simulation's analogue of
// honoring the deadline. Deadline-free calls keep the configured
// timeout, so deterministic experiments stay bit-reproducible.
func (ep *Endpoint) Invoke(ctx context.Context, to network.Addr, method string, req network.Message, opt network.Call) (network.Message, error) {
	if !ep.isAlive() {
		return nil, fmt.Errorf("simwire: %s: %w", ep.addr, core.ErrStopped)
	}
	if err := network.CtxError(ctx); err != nil {
		return nil, fmt.Errorf("simwire: %s->%s %s: %w", ep.addr, to, method, err)
	}
	n := ep.net
	timeout := network.Patience(ctx, opt.Timeout, n.cfg.DefaultTimeout)
	meter := network.MeterFrom(ctx)
	reqSize := network.SizeOf(req)
	meter.Count(reqSize)
	n.countMsg()

	reply := n.k.NewFuture()
	n.k.After(n.delay(ep.rng, reqSize), func() {
		n.mu.Lock()
		dst := n.endpoints[to]
		n.mu.Unlock()
		if dst == nil || !dst.isAlive() {
			n.countDrop()
			return // silence; the caller times out
		}
		h := dst.handler(method)
		if h == nil {
			n.countDrop()
			return
		}
		res, err := h(ep.addr, req)
		// The reply travels back only if the destination survived
		// serving the request.
		if !dst.isAlive() {
			n.countDrop()
			return
		}
		code, msg := network.EncodeError(err)
		respSize := network.DefaultWireSize
		if err == nil {
			respSize = network.SizeOf(res)
		}
		n.countMsg()
		n.k.After(n.delay(dst.rng, respSize), func() {
			reply.Resolve(simReply{body: res, code: code, msg: msg, size: respSize})
		})
	})

	v, err := reply.Await(timeout)
	if err != nil {
		// The virtual-time wait may have been cut short by the caller's
		// deadline; report it in context terms when so.
		if cerr := network.CtxError(ctx); cerr != nil {
			err = cerr
		}
		return nil, fmt.Errorf("simwire: %s->%s %s: %w", ep.addr, to, method, err)
	}
	r := v.(simReply)
	meter.Count(r.size)
	if r.code != "" {
		return nil, network.DecodeError(r.code, r.msg)
	}
	return r.body, nil
}

type simReply struct {
	body network.Message
	code string
	msg  string
	size int
}

func (n *Network) countMsg() {
	n.mu.Lock()
	n.totalMsgs++
	n.mu.Unlock()
}

func (n *Network) countDrop() {
	n.mu.Lock()
	n.totalDrop++
	n.mu.Unlock()
}

// Env adapts a kernel to network.Env so protocol code can run under
// simulation.
func Env(k *simnet.Kernel) network.Env { return simEnv{k} }

type simEnv struct{ k *simnet.Kernel }

func (e simEnv) Now() time.Duration          { return e.k.Now() }
func (e simEnv) Sleep(d time.Duration) error { return e.k.Sleep(d) }
func (e simEnv) Go(fn func())                { e.k.Go(fn) }
func (e simEnv) After(d time.Duration, fn func()) network.Canceler {
	return e.k.After(d, fn)
}
func (e simEnv) Rand(label string) *rand.Rand { return e.k.NewRand(label) }
