package simwire

import (
	"math/rand"
	"sync"
	"time"

	"repro/internal/network"
	"repro/internal/stats"
)

// Profile describes the conditions of one class of links: the one-way
// latency distribution, an extra uniform jitter, an i.i.d. message-loss
// probability, and the link bandwidth. A zero-Mean LatencyMS or
// BandwidthKbps inherits the network's base model, so a loss-only or
// jitter-only profile reshapes exactly what it names without restating
// Table 1.
type Profile struct {
	// LatencyMS is the one-way latency distribution in milliseconds; a
	// zero Mean inherits the base configuration (use a small positive
	// mean for a genuinely near-zero-latency link).
	LatencyMS stats.Normal
	// JitterMS adds a uniform draw from [0, JitterMS) milliseconds on
	// top of every sampled latency.
	JitterMS float64
	// Loss is the probability in [0, 1] that a message is silently
	// dropped in flight (the sender observes a timeout).
	Loss float64
	// BandwidthKbps overrides the per-message bandwidth model; a zero
	// Mean inherits the network's base configuration.
	BandwidthKbps stats.Normal
}

// withBase completes a profile from the base configuration: unnamed
// (zero-Mean) latency and bandwidth inherit the base model.
func (p Profile) withBase(base Config) Profile {
	if p.LatencyMS.Mean == 0 {
		p.LatencyMS = base.LatencyMS
	}
	if p.BandwidthKbps.Mean == 0 {
		p.BandwidthKbps = base.BandwidthKbps
	}
	return p
}

// Conditions decides every message's fate on the wire: its one-way
// delay and whether the network loses it. Implementations MUST be safe
// for concurrent use — handlers, repair sweeps and timer callbacks all
// reach the conditions model from their own goroutines — and SHOULD be
// deterministic per (seed, link, per-link message order) so simulations
// replay bit-identically.
type Conditions interface {
	// Plan returns the one-way delay for a message of the given size
	// from src to dst, and whether the message is lost in flight.
	Plan(src, dst network.Addr, bytes int) (delay time.Duration, lost bool)
}

// linkKey identifies one directed link.
type linkKey struct {
	src, dst network.Addr
}

// link is one directed link's private deterministic stream plus its
// resolved profile. Each link consumes only its own RNG, so the sample
// a message draws depends on that link's traffic order alone — not on
// which other peers happen to be talking (and, unlike a shared stream,
// it cannot be raced from two goroutines: all draws happen under the
// model lock).
type link struct {
	rng     *rand.Rand
	prof    Profile
	version uint64 // rules version the profile was resolved against
}

// rule is one SetProfile call: a directed link-set matcher plus the
// profile it applies. Later rules win.
type rule struct {
	from, to map[network.Addr]bool // nil matches any address
	prof     Profile
}

// Model is the default Conditions implementation: the base Config
// applied to every link, with per-link profile overrides layered on by
// SetProfile. All state — including every per-link RNG — is guarded by
// one mutex, which is what makes the model race-free by construction
// (the shared-latency-RNG data race this design replaced lived exactly
// here).
type Model struct {
	newRand func(label string) *rand.Rand
	base    Config

	mu      sync.Mutex
	links   map[linkKey]*link
	rules   []rule
	version uint64 // bumped on every rule change; links re-resolve lazily
}

var _ Conditions = (*Model)(nil)

// NewModel builds the default conditions model. newRand derives named
// deterministic RNG streams (normally simnet.Kernel.NewRand); each link
// gets its own stream the first time it carries traffic.
func NewModel(newRand func(label string) *rand.Rand, base Config) *Model {
	return &Model{
		newRand: newRand,
		base:    base.applyDefaults(),
		links:   make(map[linkKey]*link),
	}
}

// SetProfile applies a condition profile to every directed link whose
// source is in from and destination is in to; a nil slice matches any
// address, so SetProfile(nil, nil, p) reshapes the whole network. A
// non-nil empty slice matches nothing — an empty peer group must not
// collapse into the wildcard. Later calls win where they overlap. Safe
// to call while traffic flows; in-flight messages keep the delay they
// were planned with.
func (m *Model) SetProfile(from, to []network.Addr, p Profile) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.rules = append(m.rules, rule{from: addrSet(from), to: addrSet(to), prof: p})
	m.version++
}

// ClearProfiles removes every profile rule, restoring the base model on
// all links.
func (m *Model) ClearProfiles() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.rules = nil
	m.version++
}

func addrSet(addrs []network.Addr) map[network.Addr]bool {
	if addrs == nil {
		return nil // wildcard
	}
	s := make(map[network.Addr]bool, len(addrs))
	for _, a := range addrs {
		s[a] = true
	}
	return s
}

// Plan implements Conditions. The draw order per link is fixed —
// latency, jitter, loss — so a replayed simulation consumes each link
// stream identically.
func (m *Model) Plan(src, dst network.Addr, bytes int) (time.Duration, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	l := m.linkLocked(src, dst)
	p := l.prof
	lat := p.LatencyMS.Sample(l.rng)
	if p.JitterMS > 0 {
		lat += l.rng.Float64() * p.JitterMS
	}
	lost := l.rng.Float64() < p.Loss
	bw := p.BandwidthKbps.Sample(l.rng)
	if bw <= 0 {
		bw = 1
	}
	// bytes*8 is bits; bandwidth in kbit/s equals bits/ms, so the
	// division yields transmission time in milliseconds directly.
	transMS := float64(bytes*8) / bw
	return time.Duration((lat + transMS) * float64(time.Millisecond)), lost
}

// linkLocked returns the directed link's state, creating its stream and
// resolving its profile on first use or after a rule change. Caller
// holds m.mu.
//
// Link streams are splitmix64 sources seeded deterministically off the
// kernel's named-stream derivation: 16 bytes of state per link instead
// of math/rand's 607-word lagged Fibonacci, which matters because a
// full-scale churny run realizes a new directed link for every peer
// pair that ever talks (the per-link map is never evicted).
func (m *Model) linkLocked(src, dst network.Addr) *link {
	k := linkKey{src: src, dst: dst}
	l, ok := m.links[k]
	if !ok {
		seed := m.newRand("link:" + string(src) + ">" + string(dst)).Int63()
		l = &link{rng: rand.New(&splitmix64{x: uint64(seed)})}
		l.version = m.version + 1 // force profile resolution below
		m.links[k] = l
	}
	if l.version != m.version {
		l.prof = m.resolveLocked(src, dst)
		l.version = m.version
	}
	return l
}

// splitmix64 implements rand.Source64 in 8 bytes of state (Steele et
// al., "Fast Splittable Pseudorandom Number Generators"). Quality is
// ample for latency/loss draws, and the size is what keeps the
// per-link stream map cheap at full scale.
type splitmix64 struct{ x uint64 }

// Seed implements rand.Source.
func (s *splitmix64) Seed(seed int64) { s.x = uint64(seed) }

// Int63 implements rand.Source.
func (s *splitmix64) Int63() int64 { return int64(s.Uint64() >> 1) }

// Uint64 implements rand.Source64.
func (s *splitmix64) Uint64() uint64 {
	s.x += 0x9e3779b97f4a7c15
	z := s.x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// resolveLocked finds the active profile for a directed link: the last
// matching rule, or the base configuration. Caller holds m.mu.
func (m *Model) resolveLocked(src, dst network.Addr) Profile {
	for i := len(m.rules) - 1; i >= 0; i-- {
		r := m.rules[i]
		if (r.from == nil || r.from[src]) && (r.to == nil || r.to[dst]) {
			return r.prof.withBase(m.base)
		}
	}
	return Profile{LatencyMS: m.base.LatencyMS, BandwidthKbps: m.base.BandwidthKbps}
}
