package simwire

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/network"
	"repro/internal/simnet"
	"repro/internal/stats"
)

type echoReq struct {
	Text string
}

type echoResp struct {
	Text string
}

type bigMsg struct{ N int }

func (bigMsg) WireSize() int { return 7000 } // 56 kbit: one second at nominal bandwidth

// fixedConfig removes randomness from delays so tests can assert exact
// round-trip times: 100 ms latency, effectively infinite bandwidth.
func fixedConfig() Config {
	return Config{
		LatencyMS:      stats.Normal{Mean: 100, Variance: 0, Min: 100},
		BandwidthKbps:  stats.Normal{Mean: 1e9, Variance: 0, Min: 1e9},
		DefaultTimeout: 2 * time.Second,
	}
}

func TestInvokeRoundTrip(t *testing.T) {
	k := simnet.New(1)
	n := New(k, fixedConfig())
	a := n.NewEndpoint("a")
	b := n.NewEndpoint("b")
	b.Handle("echo", func(from network.Addr, req network.Message) (network.Message, error) {
		if from != "a" {
			t.Errorf("from = %s", from)
		}
		return echoResp{Text: "re:" + req.(echoReq).Text}, nil
	})
	var got string
	var rtt time.Duration
	k.Go(func() {
		start := k.Now()
		m := &network.Meter{}
		resp, err := a.Invoke(network.WithMeter(context.Background(), m), "b", "echo", echoReq{Text: "hi"}, network.Call{})
		if err != nil {
			t.Errorf("invoke: %v", err)
			return
		}
		got = resp.(echoResp).Text
		rtt = k.Now() - start
		if m.Msgs != 2 {
			t.Errorf("meter msgs = %d, want 2", m.Msgs)
		}
	})
	k.RunUntilIdle()
	if got != "re:hi" {
		t.Fatalf("got %q", got)
	}
	if rtt < 200*time.Millisecond || rtt > 210*time.Millisecond {
		t.Fatalf("rtt = %v, want ~200ms", rtt)
	}
	if n.TotalMessages() != 2 {
		t.Fatalf("network messages = %d", n.TotalMessages())
	}
}

func TestInvokeToDeadPeerTimesOut(t *testing.T) {
	k := simnet.New(1)
	n := New(k, fixedConfig())
	a := n.NewEndpoint("a")
	n.NewEndpoint("b") // no handlers, then killed
	n.Kill("b")
	var err error
	var elapsed time.Duration
	k.Go(func() {
		start := k.Now()
		_, err = a.Invoke(context.Background(), "b", "echo", echoReq{}, network.Call{Timeout: 500 * time.Millisecond})
		elapsed = k.Now() - start
	})
	k.RunUntilIdle()
	if !errors.Is(err, core.ErrTimeout) {
		t.Fatalf("err = %v, want timeout", err)
	}
	if elapsed != 500*time.Millisecond {
		t.Fatalf("elapsed = %v, want the timeout", elapsed)
	}
	if n.TotalDropped() != 1 {
		t.Fatalf("dropped = %d", n.TotalDropped())
	}
}

func TestInvokeUnknownMethodTimesOut(t *testing.T) {
	k := simnet.New(1)
	n := New(k, fixedConfig())
	a := n.NewEndpoint("a")
	n.NewEndpoint("b")
	var err error
	k.Go(func() {
		_, err = a.Invoke(context.Background(), "b", "nope", echoReq{}, network.Call{Timeout: 300 * time.Millisecond})
	})
	k.RunUntilIdle()
	if !errors.Is(err, core.ErrTimeout) {
		t.Fatalf("err = %v", err)
	}
}

func TestRemoteErrorCrossesWire(t *testing.T) {
	k := simnet.New(1)
	n := New(k, fixedConfig())
	a := n.NewEndpoint("a")
	b := n.NewEndpoint("b")
	b.Handle("get", func(network.Addr, network.Message) (network.Message, error) {
		return nil, fmt.Errorf("no replica here: %w", core.ErrNotFound)
	})
	var err error
	k.Go(func() {
		_, err = a.Invoke(context.Background(), "b", "get", echoReq{}, network.Call{})
	})
	k.RunUntilIdle()
	if !errors.Is(err, core.ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound across the wire", err)
	}
}

func TestBandwidthChargesLargeMessages(t *testing.T) {
	k := simnet.New(1)
	cfg := Config{
		LatencyMS:      stats.Normal{Mean: 100, Variance: 0, Min: 100},
		BandwidthKbps:  stats.Normal{Mean: 56, Variance: 0, Min: 56},
		DefaultTimeout: time.Hour,
	}
	n := New(k, cfg)
	a := n.NewEndpoint("a")
	b := n.NewEndpoint("b")
	b.Handle("put", func(network.Addr, network.Message) (network.Message, error) {
		return echoResp{}, nil
	})
	var rtt time.Duration
	k.Go(func() {
		start := k.Now()
		if _, err := a.Invoke(context.Background(), "b", "put", bigMsg{}, network.Call{}); err != nil {
			t.Errorf("invoke: %v", err)
		}
		rtt = k.Now() - start
	})
	k.RunUntilIdle()
	// Request: 100ms latency + 7000B*8/56kbps = 1000ms transmission.
	// Reply: 100ms + 200B*8/56 ≈ 28.6ms.
	want := 1228 * time.Millisecond
	if rtt < want-10*time.Millisecond || rtt > want+10*time.Millisecond {
		t.Fatalf("rtt = %v, want ~%v", rtt, want)
	}
}

func TestKillDuringServiceDropsReply(t *testing.T) {
	k := simnet.New(1)
	n := New(k, fixedConfig())
	a := n.NewEndpoint("a")
	b := n.NewEndpoint("b")
	b.Handle("slow", func(network.Addr, network.Message) (network.Message, error) {
		k.Sleep(time.Second)
		return echoResp{}, nil
	})
	// Kill b while it is serving.
	k.Go(func() {
		k.Sleep(600 * time.Millisecond)
		n.Kill("b")
	})
	var err error
	k.Go(func() {
		_, err = a.Invoke(context.Background(), "b", "slow", echoReq{}, network.Call{Timeout: 5 * time.Second})
	})
	k.RunUntilIdle()
	if !errors.Is(err, core.ErrTimeout) {
		t.Fatalf("err = %v, want timeout (reply dropped)", err)
	}
}

func TestNestedInvokeFromHandler(t *testing.T) {
	k := simnet.New(1)
	n := New(k, fixedConfig())
	a := n.NewEndpoint("a")
	b := n.NewEndpoint("b")
	c := n.NewEndpoint("c")
	c.Handle("leaf", func(network.Addr, network.Message) (network.Message, error) {
		return echoResp{Text: "leaf"}, nil
	})
	b.Handle("mid", func(from network.Addr, req network.Message) (network.Message, error) {
		r, err := b.Invoke(context.Background(), "c", "leaf", echoReq{}, network.Call{})
		if err != nil {
			return nil, err
		}
		return echoResp{Text: "mid+" + r.(echoResp).Text}, nil
	})
	var got string
	k.Go(func() {
		r, err := a.Invoke(context.Background(), "b", "mid", echoReq{}, network.Call{})
		if err != nil {
			t.Errorf("invoke: %v", err)
			return
		}
		got = r.(echoResp).Text
	})
	k.RunUntilIdle()
	if got != "mid+leaf" {
		t.Fatalf("got %q", got)
	}
}

func TestClosedCallerFailsFast(t *testing.T) {
	k := simnet.New(1)
	n := New(k, fixedConfig())
	a := n.NewEndpoint("a")
	n.NewEndpoint("b")
	a.Close()
	var err error
	k.Go(func() {
		_, err = a.Invoke(context.Background(), "b", "x", echoReq{}, network.Call{})
	})
	k.RunUntilIdle()
	if !errors.Is(err, core.ErrStopped) {
		t.Fatalf("err = %v", err)
	}
}

func TestDuplicateEndpointPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on duplicate endpoint name")
		}
	}()
	k := simnet.New(1)
	n := New(k, fixedConfig())
	n.NewEndpoint("dup")
	n.NewEndpoint("dup")
}

func TestAutoAddressing(t *testing.T) {
	k := simnet.New(1)
	n := New(k, fixedConfig())
	e1 := n.NewEndpoint("")
	e2 := n.NewEndpoint("")
	if e1.Addr() == e2.Addr() {
		t.Fatalf("auto addresses collide: %s", e1.Addr())
	}
	if !n.Alive(e1.Addr()) || n.Alive("nonexistent") {
		t.Fatal("Alive misreports")
	}
}

func TestTable1Defaults(t *testing.T) {
	cfg := Config{}.applyDefaults()
	if cfg.LatencyMS.Mean != 200 || cfg.BandwidthKbps.Mean != 56 {
		t.Fatalf("defaults = %+v", cfg)
	}
	if cfg.DefaultTimeout == 0 {
		t.Fatal("missing default timeout")
	}
}

func TestEnvImplementsNetworkEnv(t *testing.T) {
	k := simnet.New(3)
	env := Env(k)
	var woke time.Duration
	env.Go(func() {
		env.Sleep(time.Second)
		woke = env.Now()
	})
	canceled := env.After(2*time.Second, func() { t.Error("canceled timer fired") })
	env.Go(func() {
		env.Sleep(1500 * time.Millisecond)
		canceled.Cancel()
	})
	k.RunUntilIdle()
	if woke != time.Second {
		t.Fatalf("woke = %v", woke)
	}
	r1 := env.Rand("x").Uint64()
	r2 := Env(simnet.New(3)).Rand("x").Uint64()
	if r1 != r2 {
		t.Fatal("env rand streams must be seed-deterministic")
	}
}
