package simwire

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/network"
	"repro/internal/simnet"
	"repro/internal/stats"
)

// echoNet builds a network with two endpoints where b echoes.
func echoNet(t *testing.T, cfg Config) (*simnet.Kernel, *Network, *Endpoint, *Endpoint) {
	t.Helper()
	k := simnet.New(1)
	n := New(k, cfg)
	a := n.NewEndpoint("a")
	b := n.NewEndpoint("b")
	b.Handle("echo", func(from network.Addr, req network.Message) (network.Message, error) {
		return echoResp{Text: "re:" + req.(echoReq).Text}, nil
	})
	return k, n, a, b
}

// invoke runs one a->b echo inside the kernel and reports the outcome.
func invoke(k *simnet.Kernel, a *Endpoint, to network.Addr, timeout time.Duration) error {
	var err error
	k.Go(func() {
		_, err = a.Invoke(context.Background(), to, "echo", echoReq{Text: "x"}, network.Call{Timeout: timeout})
	})
	k.RunUntilIdle()
	return err
}

func TestPartitionBlocksDeliveryBothWaysAndHeals(t *testing.T) {
	k, n, a, b := echoNet(t, fixedConfig())
	a.Handle("echo", func(from network.Addr, req network.Message) (network.Message, error) {
		return echoResp{Text: "re:" + req.(echoReq).Text}, nil
	})

	n.Partition([]network.Addr{"a"}, []network.Addr{"b"})
	drops := n.TotalDropped()
	if err := invoke(k, a, "b", 300*time.Millisecond); !errors.Is(err, core.ErrTimeout) {
		t.Fatalf("a->b across partition: err = %v, want timeout", err)
	}
	if err := invoke(k, b, "a", 300*time.Millisecond); !errors.Is(err, core.ErrTimeout) {
		t.Fatalf("b->a across partition: err = %v, want timeout", err)
	}
	if got := n.TotalDropped() - drops; got != 2 {
		t.Fatalf("dropped %d messages across the partition, want 2", got)
	}
	if n.Reachable("a", "b") || n.Reachable("b", "a") {
		t.Fatal("Reachable must report the split")
	}

	// Same-group and unconstrained traffic still flows.
	c := n.NewEndpoint("c") // attached after the split: unconstrained
	c.Handle("echo", func(from network.Addr, req network.Message) (network.Message, error) {
		return echoResp{}, nil
	})
	if err := invoke(k, a, "c", time.Second); err != nil {
		t.Fatalf("a->c (unconstrained) failed: %v", err)
	}

	n.Heal()
	if err := invoke(k, a, "b", time.Second); err != nil {
		t.Fatalf("a->b after heal: %v", err)
	}
	if !n.Reachable("a", "b") {
		t.Fatal("Reachable must clear after heal")
	}
}

func TestPartitionMidFlightBlocksDelivery(t *testing.T) {
	k, n, a, _ := echoNet(t, fixedConfig())
	served := false
	// Partition 50ms after the message departs; it needs 100ms to arrive.
	k.Go(func() {
		k.Sleep(50 * time.Millisecond)
		n.Partition([]network.Addr{"a"}, []network.Addr{"b"})
	})
	var err error
	k.Go(func() {
		_, err = a.Invoke(context.Background(), "b", "echo", echoReq{}, network.Call{Timeout: 400 * time.Millisecond})
		served = true
	})
	k.RunUntilIdle()
	if !errors.Is(err, core.ErrTimeout) {
		t.Fatalf("mid-flight partition: err = %v, want timeout", err)
	}
	if !served {
		t.Fatal("caller never unblocked")
	}
}

func TestLossProfileDropsMessages(t *testing.T) {
	k, n, a, _ := echoNet(t, fixedConfig())
	n.Model().SetProfile(nil, nil, Profile{
		LatencyMS: stats.Normal{Mean: 100, Min: 100},
		Loss:      1,
	})
	if err := invoke(k, a, "b", 300*time.Millisecond); !errors.Is(err, core.ErrTimeout) {
		t.Fatalf("loss=1: err = %v, want timeout", err)
	}
	n.Model().ClearProfiles()
	if err := invoke(k, a, "b", time.Second); err != nil {
		t.Fatalf("after ClearProfiles: %v", err)
	}
}

func TestLinkProfileOverridesLatencyPerLink(t *testing.T) {
	k, n, a, b := echoNet(t, fixedConfig())
	c := n.NewEndpoint("c")
	c.Handle("echo", b.handler("echo"))
	// Only the a->b direction is degraded; a->c keeps the base 100ms.
	n.Model().SetProfile([]network.Addr{"a"}, []network.Addr{"b"}, Profile{
		LatencyMS: stats.Normal{Mean: 1000, Min: 1000},
	})
	measure := func(to network.Addr) time.Duration {
		var rtt time.Duration
		k.Go(func() {
			start := k.Now()
			if _, err := a.Invoke(context.Background(), to, "echo", echoReq{}, network.Call{Timeout: 5 * time.Second}); err != nil {
				t.Errorf("invoke %s: %v", to, err)
			}
			rtt = k.Now() - start
		})
		k.RunUntilIdle()
		return rtt
	}
	slow := measure("b") // 1000ms out + 100ms back
	fast := measure("c") // 100ms out + 100ms back
	if slow < 1050*time.Millisecond || slow > 1200*time.Millisecond {
		t.Fatalf("degraded link rtt = %v, want ~1100ms", slow)
	}
	if fast < 150*time.Millisecond || fast > 250*time.Millisecond {
		t.Fatalf("untouched link rtt = %v, want ~200ms", fast)
	}
}

// TestLossOnlyProfileKeepsBaseLatency pins the inheritance rule: a
// profile that names only Loss must not replace the base latency model
// (a zero-mean normal would clamp to ~1ms and silently turn a "lossy"
// WAN into a fast one).
func TestLossOnlyProfileKeepsBaseLatency(t *testing.T) {
	k := simnet.New(1)
	m := NewModel(k.NewRand, fixedConfig()) // base: exactly 100ms
	m.SetProfile(nil, nil, Profile{Loss: 0.5})
	for i := 0; i < 20; i++ {
		d, _ := m.Plan("a", "b", 200)
		if d < 100*time.Millisecond {
			t.Fatalf("loss-only profile dropped base latency: delay = %v", d)
		}
	}
}

// TestJoinGroupOfConfinesJoiner pins the churn-under-partition rule: a
// peer assigned to a side via JoinGroupOf cannot reach the other side,
// so replacements spawned during a split never bridge it.
func TestJoinGroupOfConfinesJoiner(t *testing.T) {
	k, n, a, _ := echoNet(t, fixedConfig())
	a.Handle("echo", func(from network.Addr, req network.Message) (network.Message, error) {
		return echoResp{}, nil
	})
	n.Partition([]network.Addr{"a"}, []network.Addr{"b"})
	c := n.NewEndpoint("c")
	c.Handle("echo", func(from network.Addr, req network.Message) (network.Message, error) {
		return echoResp{}, nil
	})
	n.JoinGroupOf("c", "a") // c joined through a: it lives on a's side
	if err := invoke(k, c, "a", time.Second); err != nil {
		t.Fatalf("c->a (same side): %v", err)
	}
	if err := invoke(k, c, "b", 300*time.Millisecond); !errors.Is(err, core.ErrTimeout) {
		t.Fatalf("c->b across the split: err = %v, want timeout", err)
	}
	n.Heal()
	if err := invoke(k, c, "b", time.Second); err != nil {
		t.Fatalf("c->b after heal: %v", err)
	}
}

// TestModelPlanConcurrencySafe hammers one Model from many real
// goroutines: the point of the per-link locked streams is that no
// concurrent access pattern — repair sweeps, timer callbacks, handlers —
// can race the RNG state (run under -race).
func TestModelPlanConcurrencySafe(t *testing.T) {
	k := simnet.New(1)
	m := NewModel(k.NewRand, Table1())
	m.SetProfile([]network.Addr{"p1"}, nil, Profile{
		LatencyMS: stats.Normal{Mean: 50, Min: 1},
		Loss:      0.1,
		JitterMS:  5,
	})
	var wg sync.WaitGroup
	links := []network.Addr{"p0", "p1", "p2", "p3"}
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			src := links[g%len(links)]
			for i := 0; i < 500; i++ {
				dst := links[(g+i)%len(links)]
				m.Plan(src, dst, 200+i)
				if i%100 == 0 && g == 0 {
					m.SetProfile([]network.Addr{src}, []network.Addr{dst}, Profile{
						LatencyMS: stats.Normal{Mean: float64(10 + i), Min: 1},
					})
				}
			}
		}()
	}
	wg.Wait()
}

// TestModelPlanDeterministicPerLink asserts the per-link streams: the
// sequence a link draws depends only on the seed and that link's own
// traffic order, so interleaving traffic on other links cannot perturb
// it — the property that makes whole-network replays bit-identical.
func TestModelPlanDeterministicPerLink(t *testing.T) {
	draw := func(withNoise bool) []time.Duration {
		m := NewModel(simnet.New(42).NewRand, Table1())
		var out []time.Duration
		for i := 0; i < 20; i++ {
			if withNoise {
				// Unrelated links drawing in between must not matter.
				m.Plan("x", "y", 300)
				m.Plan("y", "x", 300)
			}
			d, _ := m.Plan("a", "b", 200)
			out = append(out, d)
		}
		return out
	}
	clean, noisy := draw(false), draw(true)
	for i := range clean {
		if clean[i] != noisy[i] {
			t.Fatalf("draw %d: %v with noise vs %v without — link streams are not independent", i, noisy[i], clean[i])
		}
	}
}
