package network

import (
	"encoding/gob"
	"fmt"
	"hash/fnv"
	"math/rand"
	"sync"
	"time"

	"repro/internal/core"
)

// RealEnv implements Env on the wall clock with ordinary goroutines. It
// backs the TCP deployment (the paper's cluster experiments).
type RealEnv struct {
	start time.Time
	seed  int64

	mu     sync.Mutex
	closed bool
	done   chan struct{}
}

// NewRealEnv returns an Env bound to the wall clock. The seed makes the
// Rand streams reproducible; pass 0 to derive one from the clock.
func NewRealEnv(seed int64) *RealEnv {
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	return &RealEnv{start: time.Now(), seed: seed, done: make(chan struct{})}
}

// Now implements Env.
func (e *RealEnv) Now() time.Duration { return time.Since(e.start) }

// Sleep implements Env; it wakes early with core.ErrStopped if the
// environment is closed.
func (e *RealEnv) Sleep(d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-e.done:
		return core.ErrStopped
	}
}

// Go implements Env.
func (e *RealEnv) Go(fn func()) { go fn() }

// After implements Env.
func (e *RealEnv) After(d time.Duration, fn func()) Canceler {
	return &realTimer{t: time.AfterFunc(d, fn)}
}

// Rand implements Env.
func (e *RealEnv) Rand(label string) *rand.Rand {
	h := fnv.New64a()
	h.Write([]byte(label))
	return rand.New(rand.NewSource(e.seed ^ int64(h.Sum64())))
}

// Close releases sleepers. Safe to call more than once.
func (e *RealEnv) Close() {
	e.mu.Lock()
	defer e.mu.Unlock()
	if !e.closed {
		e.closed = true
		close(e.done)
	}
}

type realTimer struct{ t *time.Timer }

func (r *realTimer) Cancel() bool { return r.t.Stop() }

var (
	gobMu         sync.Mutex
	gobRegistered = map[string]bool{}
)

// RegisterMessage registers message types with encoding/gob for the TCP
// transport. It is idempotent per concrete type and safe to call from
// init functions in several packages.
func RegisterMessage(values ...Message) {
	gobMu.Lock()
	defer gobMu.Unlock()
	for _, v := range values {
		name := fmt.Sprintf("%T", v)
		if gobRegistered[name] {
			continue
		}
		gobRegistered[name] = true
		gob.Register(v)
	}
}
