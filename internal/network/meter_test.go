package network

import (
	"context"
	"sync"
	"testing"
)

// TestMeterContextRoundTrip covers the context plumbing every
// transport relies on: WithMeter attaches, MeterFrom retrieves, nil
// attaches nothing, and an unmetered context yields a nil meter whose
// methods are still safe to call.
func TestMeterContextRoundTrip(t *testing.T) {
	ctx := context.Background()
	if m := MeterFrom(ctx); m != nil {
		t.Fatalf("unmetered context returned %+v", m)
	}
	if got := WithMeter(ctx, nil); got != ctx {
		t.Fatal("WithMeter(nil) must return ctx unchanged")
	}
	var m Meter
	ctx = WithMeter(ctx, &m)
	if MeterFrom(ctx) != &m {
		t.Fatal("MeterFrom did not return the attached meter")
	}
	MeterFrom(ctx).Count(100)
	if m.Msgs != 1 || m.Bytes != 100 {
		t.Fatalf("charge through context: got %+v", m)
	}
}

// TestMeterSurvivesContextLayers asserts the meter is visible through
// later context derivations — values, cancellation — exactly as the
// protocol stack layers them (operation entry attaches the meter; the
// lookup and probe layers derive timeout contexts beneath it).
func TestMeterSurvivesContextLayers(t *testing.T) {
	var m Meter
	ctx := WithMeter(context.Background(), &m)
	type otherKey struct{}
	ctx = context.WithValue(ctx, otherKey{}, "unrelated")
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	MeterFrom(ctx).Count(7)
	if m.Msgs != 1 || m.Bytes != 7 {
		t.Fatalf("charge through derived context: got %+v", m)
	}
}

// TestMeterNestedShadowing: attaching an inner meter (one logical
// sub-operation) shadows the outer one — the inner operation's costs
// must not leak into the parent until the caller merges explicitly.
func TestMeterNestedShadowing(t *testing.T) {
	var outer, inner Meter
	ctx := WithMeter(context.Background(), &outer)
	sub := WithMeter(ctx, &inner)
	MeterFrom(sub).Count(10)
	MeterFrom(sub).Count(20)
	if outer.Msgs != 0 || outer.Bytes != 0 {
		t.Fatalf("inner charges leaked to outer: %+v", outer)
	}
	if inner.Msgs != 2 || inner.Bytes != 30 {
		t.Fatalf("inner meter: got %+v", inner)
	}
	// The parent absorbs the sub-operation when it chooses to.
	outer.Merge(inner)
	if outer.Msgs != 2 || outer.Bytes != 30 {
		t.Fatalf("merge: got %+v", outer)
	}
	// The original context still charges the outer meter.
	MeterFrom(ctx).Count(5)
	if outer.Msgs != 3 || outer.Bytes != 35 {
		t.Fatalf("outer meter after merge + charge: got %+v", outer)
	}
}

// TestMeterFanOutMerge is the PutMulti pattern: Meter is deliberately
// unsynchronized (one logical operation, one activity), so a fan-out
// must give every branch its own meter context and fold the counts
// after the join. This test runs the pattern under the race detector —
// per-branch meters, concurrent charging, merge at the barrier — and
// checks the totals are exact.
func TestMeterFanOutMerge(t *testing.T) {
	const branches = 16
	const chargesPer = 50

	var parent Meter
	ctx := WithMeter(context.Background(), &parent)

	subs := make([]Meter, branches)
	var wg sync.WaitGroup
	for i := 0; i < branches; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Each branch derives its own metered context from the
			// parent's, exactly like nodeMulti issuing one Put per key.
			bctx := WithMeter(ctx, &subs[i])
			for j := 0; j < chargesPer; j++ {
				MeterFrom(bctx).Count(8)
			}
		}(i)
	}
	wg.Wait()
	for i := range subs {
		parent.Merge(subs[i])
	}
	wantMsgs := branches * chargesPer
	wantBytes := wantMsgs * 8
	if parent.Msgs != wantMsgs || parent.Bytes != wantBytes {
		t.Fatalf("fan-out totals: got %+v, want %d msgs / %d bytes",
			parent, wantMsgs, wantBytes)
	}
}
