// Package network defines the execution-environment and transport
// abstractions all protocol code (Chord, CAN, KTS, UMS, BRK) is written
// against. The same protocol implementation runs in two worlds:
//
//   - simulated: internal/network/simwire delivers messages in virtual
//     time with the latency/bandwidth model of the paper's Table 1,
//     driven by the internal/simnet kernel (the SimJava replacement);
//   - real: internal/network/tcpwire delivers messages over TCP sockets,
//     the stand-in for the paper's 64-node cluster deployment.
//
// This mirrors the paper's methodology of validating the implementation
// on a cluster and studying scale-up in a calibrated simulator with one
// code base.
package network

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/core"
)

// Env abstracts time and concurrency. Under simulation the clock is
// virtual and processes are serialized deterministically; under the real
// environment these map onto the wall clock and plain goroutines.
type Env interface {
	// Now returns the elapsed time since the environment started.
	Now() time.Duration
	// Sleep blocks the calling activity for d. It returns
	// core.ErrStopped if the environment shut down while sleeping.
	Sleep(d time.Duration) error
	// Go runs fn as a new activity.
	Go(fn func())
	// After schedules fn to run as a new activity after d; the returned
	// Canceler can stop it before it fires.
	After(d time.Duration, fn func()) Canceler
	// Rand derives a named deterministic random stream.
	Rand(label string) *rand.Rand
}

// Canceler stops a pending timer.
type Canceler interface {
	// Cancel reports whether the timer was stopped before firing.
	Cancel() bool
}

// Addr identifies an endpoint: a simulated peer name or a TCP host:port.
type Addr string

// Message is an RPC payload. Concrete message types must be registered
// with RegisterMessage so the TCP transport can encode them, and should
// implement WireSizer when their size materially differs from
// DefaultWireSize (the simulator charges transmission time against the
// paper's 56 kbps links).
type Message any

// WireSizer reports an estimated encoded size in bytes.
type WireSizer interface {
	WireSize() int
}

// DefaultWireSize is the byte size charged for messages that do not
// implement WireSizer: a small protocol message with addresses, ids and
// a few integers.
const DefaultWireSize = 200

// SizeOf returns the accounted wire size of a message.
func SizeOf(m Message) int {
	if s, ok := m.(WireSizer); ok {
		return s.WireSize()
	}
	return DefaultWireSize
}

// HandlerFunc serves one RPC method on an endpoint. Handlers run as their
// own activity and may issue nested Invokes. Handlers must treat req as
// immutable.
type HandlerFunc func(from Addr, req Message) (Message, error)

// Call carries per-invocation options. Deadlines and cancellation come
// from the context passed to Invoke; Timeout is only the per-RPC
// patience a protocol grants one round trip (its failure-detection
// threshold), never an end-to-end budget.
type Call struct {
	// Timeout bounds the round trip; zero selects the transport default.
	// A context deadline that expires sooner always wins.
	Timeout time.Duration
}

// Endpoint is one peer's attachment to the network.
type Endpoint interface {
	// Addr returns this endpoint's address.
	Addr() Addr
	// Invoke performs a synchronous RPC. Under simulation it must be
	// called from an Env activity. The context's deadline caps the round
	// trip (mapped onto virtual time under simulation) and a context
	// already done fails fast with the matching core error. Message
	// costs are charged to the meter carried by ctx (see WithMeter).
	// Errors from the remote handler are reconstructed so errors.Is
	// works across the wire.
	Invoke(ctx context.Context, to Addr, method string, req Message, opt Call) (Message, error)
	// Handle registers the handler for a method name. Registration is
	// not safe to interleave with traffic; register before serving.
	Handle(method string, h HandlerFunc)
	// Close detaches the endpoint. Pending calls fail.
	Close() error
}

// meterCtxKey carries the per-operation Meter through call chains.
type meterCtxKey struct{}

// WithMeter returns a context that charges message costs of every
// Invoke and Lookup beneath it to m. One logical operation attaches one
// meter at its entry point; passing nil returns ctx unchanged.
func WithMeter(ctx context.Context, m *Meter) context.Context {
	if m == nil {
		return ctx
	}
	return context.WithValue(ctx, meterCtxKey{}, m)
}

// MeterFrom returns the meter ctx carries, or nil when the operation is
// unmetered. All Meter methods accept a nil receiver, so callers charge
// unconditionally: MeterFrom(ctx).Count(n).
func MeterFrom(ctx context.Context) *Meter {
	m, _ := ctx.Value(meterCtxKey{}).(*Meter)
	return m
}

// CtxError translates a context's termination into the core taxonomy:
// an expired deadline wraps both core.ErrTimeout and
// context.DeadlineExceeded so callers can classify with either; a
// cancellation passes through as context.Canceled. Returns nil while
// ctx is live.
func CtxError(ctx context.Context) error {
	err := ctx.Err()
	switch {
	case err == nil:
		return nil
	case errors.Is(err, context.DeadlineExceeded):
		return fmt.Errorf("%w: %w", core.ErrTimeout, err)
	default:
		return err
	}
}

// Patience resolves the effective timeout for one RPC: the call's
// timeout (or the transport default when zero), capped by the context's
// remaining deadline budget. The result is always positive — an already
// expired context must be rejected with CtxError before calling this.
func Patience(ctx context.Context, timeout, transportDefault time.Duration) time.Duration {
	if timeout <= 0 {
		timeout = transportDefault
	}
	if dl, ok := ctx.Deadline(); ok {
		if rem := time.Until(dl); rem < timeout {
			timeout = rem
		}
	}
	if timeout < time.Millisecond {
		timeout = time.Millisecond
	}
	return timeout
}

// GoJoin spawns n activities with env.Go and blocks the caller until
// all have finished, polling in environment time every poll — the only
// fan-out/join shape portable across the simulated and real
// environments (a sync.WaitGroup would block real goroutines, which
// deadlocks the simulation kernel). It returns early with the
// environment's error when the environment shuts down mid-join.
func GoJoin(env Env, n int, poll time.Duration, run func(i int)) error {
	if n == 0 {
		return nil
	}
	var mu sync.Mutex
	done := 0
	for i := 0; i < n; i++ {
		env.Go(func() {
			run(i)
			mu.Lock()
			done++
			mu.Unlock()
		})
	}
	for {
		mu.Lock()
		d := done
		mu.Unlock()
		if d == n {
			return nil
		}
		if err := env.Sleep(poll); err != nil {
			return err
		}
	}
}

// SleepCtx sleeps d of environment time, giving up when ctx is done.
// Under simulation the context's wall-clock deadline cannot interrupt a
// virtual-time sleep, so the check happens at both edges — which keeps
// retry loops from outliving their caller.
func SleepCtx(ctx context.Context, env Env, d time.Duration) error {
	if err := CtxError(ctx); err != nil {
		return err
	}
	if err := env.Sleep(d); err != nil {
		return err
	}
	return CtxError(ctx)
}

// Meter accumulates communication cost for a single logical operation.
// An operation runs within one activity, so Meter is not synchronized.
type Meter struct {
	Msgs  int
	Bytes int
}

// Count records one transmission of n bytes. Nil meters ignore counts.
func (m *Meter) Count(n int) {
	if m == nil {
		return
	}
	m.Msgs++
	m.Bytes += n
}

// Merge folds another meter's counts into m, used when a remote handler
// reports work it performed on the caller's behalf (e.g. indirect
// counter initialization). Nil meters ignore merges.
func (m *Meter) Merge(other Meter) {
	if m == nil {
		return
	}
	m.Msgs += other.Msgs
	m.Bytes += other.Bytes
}

// Error codes used to round-trip the core error taxonomy through
// transports.
const (
	codeNotFound       = "not_found"
	codeUnreachable    = "unreachable"
	codeTimeout        = "timeout"
	codeStopped        = "stopped"
	codeNoCurrent      = "no_current"
	codeNotResponsible = "not_responsible"
	codeOther          = "error"
)

// EncodeError flattens an error into a (code, message) pair for the wire.
func EncodeError(err error) (code, msg string) {
	if err == nil {
		return "", ""
	}
	switch {
	case errors.Is(err, core.ErrNotFound):
		return codeNotFound, err.Error()
	case errors.Is(err, core.ErrUnreachable):
		return codeUnreachable, err.Error()
	case errors.Is(err, core.ErrTimeout):
		return codeTimeout, err.Error()
	case errors.Is(err, core.ErrStopped):
		return codeStopped, err.Error()
	case errors.Is(err, core.ErrNoCurrentReplica):
		return codeNoCurrent, err.Error()
	case errors.Is(err, core.ErrNotResponsible):
		return codeNotResponsible, err.Error()
	default:
		return codeOther, err.Error()
	}
}

// DecodeError reconstructs an error from its wire form so errors.Is
// matches the core taxonomy on the caller's side.
func DecodeError(code, msg string) error {
	if code == "" {
		return nil
	}
	var base error
	switch code {
	case codeNotFound:
		base = core.ErrNotFound
	case codeUnreachable:
		base = core.ErrUnreachable
	case codeTimeout:
		base = core.ErrTimeout
	case codeStopped:
		base = core.ErrStopped
	case codeNoCurrent:
		base = core.ErrNoCurrentReplica
	case codeNotResponsible:
		base = core.ErrNotResponsible
	default:
		return errors.New(msg)
	}
	return fmt.Errorf("%s: %w", "remote", base)
}
