// Package network defines the execution-environment and transport
// abstractions all protocol code (Chord, CAN, KTS, UMS, BRK) is written
// against. The same protocol implementation runs in two worlds:
//
//   - simulated: internal/network/simwire delivers messages in virtual
//     time with the latency/bandwidth model of the paper's Table 1,
//     driven by the internal/simnet kernel (the SimJava replacement);
//   - real: internal/network/tcpwire delivers messages over TCP sockets,
//     the stand-in for the paper's 64-node cluster deployment.
//
// This mirrors the paper's methodology of validating the implementation
// on a cluster and studying scale-up in a calibrated simulator with one
// code base.
package network

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"repro/internal/core"
)

// Env abstracts time and concurrency. Under simulation the clock is
// virtual and processes are serialized deterministically; under the real
// environment these map onto the wall clock and plain goroutines.
type Env interface {
	// Now returns the elapsed time since the environment started.
	Now() time.Duration
	// Sleep blocks the calling activity for d. It returns
	// core.ErrStopped if the environment shut down while sleeping.
	Sleep(d time.Duration) error
	// Go runs fn as a new activity.
	Go(fn func())
	// After schedules fn to run as a new activity after d; the returned
	// Canceler can stop it before it fires.
	After(d time.Duration, fn func()) Canceler
	// Rand derives a named deterministic random stream.
	Rand(label string) *rand.Rand
}

// Canceler stops a pending timer.
type Canceler interface {
	// Cancel reports whether the timer was stopped before firing.
	Cancel() bool
}

// Addr identifies an endpoint: a simulated peer name or a TCP host:port.
type Addr string

// Message is an RPC payload. Concrete message types must be registered
// with RegisterMessage so the TCP transport can encode them, and should
// implement WireSizer when their size materially differs from
// DefaultWireSize (the simulator charges transmission time against the
// paper's 56 kbps links).
type Message any

// WireSizer reports an estimated encoded size in bytes.
type WireSizer interface {
	WireSize() int
}

// DefaultWireSize is the byte size charged for messages that do not
// implement WireSizer: a small protocol message with addresses, ids and
// a few integers.
const DefaultWireSize = 200

// SizeOf returns the accounted wire size of a message.
func SizeOf(m Message) int {
	if s, ok := m.(WireSizer); ok {
		return s.WireSize()
	}
	return DefaultWireSize
}

// HandlerFunc serves one RPC method on an endpoint. Handlers run as their
// own activity and may issue nested Invokes. Handlers must treat req as
// immutable.
type HandlerFunc func(from Addr, req Message) (Message, error)

// Call carries per-invocation options.
type Call struct {
	// Timeout bounds the round trip; zero selects the transport default.
	Timeout time.Duration
	// Meter, when non-nil, accumulates the messages and bytes this call
	// puts on the wire (request and reply each count as one message, as
	// the paper counts communication cost).
	Meter *Meter
}

// Endpoint is one peer's attachment to the network.
type Endpoint interface {
	// Addr returns this endpoint's address.
	Addr() Addr
	// Invoke performs a synchronous RPC. Under simulation it must be
	// called from an Env activity. Errors from the remote handler are
	// reconstructed so errors.Is works across the wire.
	Invoke(to Addr, method string, req Message, opt Call) (Message, error)
	// Handle registers the handler for a method name. Registration is
	// not safe to interleave with traffic; register before serving.
	Handle(method string, h HandlerFunc)
	// Close detaches the endpoint. Pending calls fail.
	Close() error
}

// Meter accumulates communication cost for a single logical operation.
// An operation runs within one activity, so Meter is not synchronized.
type Meter struct {
	Msgs  int
	Bytes int
}

// Count records one transmission of n bytes. Nil meters ignore counts.
func (m *Meter) Count(n int) {
	if m == nil {
		return
	}
	m.Msgs++
	m.Bytes += n
}

// Merge folds another meter's counts into m, used when a remote handler
// reports work it performed on the caller's behalf (e.g. indirect
// counter initialization). Nil meters ignore merges.
func (m *Meter) Merge(other Meter) {
	if m == nil {
		return
	}
	m.Msgs += other.Msgs
	m.Bytes += other.Bytes
}

// Error codes used to round-trip the core error taxonomy through
// transports.
const (
	codeNotFound       = "not_found"
	codeUnreachable    = "unreachable"
	codeTimeout        = "timeout"
	codeStopped        = "stopped"
	codeNoCurrent      = "no_current"
	codeNotResponsible = "not_responsible"
	codeOther          = "error"
)

// EncodeError flattens an error into a (code, message) pair for the wire.
func EncodeError(err error) (code, msg string) {
	if err == nil {
		return "", ""
	}
	switch {
	case errors.Is(err, core.ErrNotFound):
		return codeNotFound, err.Error()
	case errors.Is(err, core.ErrUnreachable):
		return codeUnreachable, err.Error()
	case errors.Is(err, core.ErrTimeout):
		return codeTimeout, err.Error()
	case errors.Is(err, core.ErrStopped):
		return codeStopped, err.Error()
	case errors.Is(err, core.ErrNoCurrentReplica):
		return codeNoCurrent, err.Error()
	case errors.Is(err, core.ErrNotResponsible):
		return codeNotResponsible, err.Error()
	default:
		return codeOther, err.Error()
	}
}

// DecodeError reconstructs an error from its wire form so errors.Is
// matches the core taxonomy on the caller's side.
func DecodeError(code, msg string) error {
	if code == "" {
		return nil
	}
	var base error
	switch code {
	case codeNotFound:
		base = core.ErrNotFound
	case codeUnreachable:
		base = core.ErrUnreachable
	case codeTimeout:
		base = core.ErrTimeout
	case codeStopped:
		base = core.ErrStopped
	case codeNoCurrent:
		base = core.ErrNoCurrentReplica
	case codeNotResponsible:
		base = core.ErrNotResponsible
	default:
		return errors.New(msg)
	}
	return fmt.Errorf("%s: %w", "remote", base)
}
