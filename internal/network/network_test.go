package network

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/core"
)

func TestErrorCodecRoundTrip(t *testing.T) {
	cases := []error{
		fmt.Errorf("wrapped: %w", core.ErrNotFound),
		fmt.Errorf("wrapped: %w", core.ErrUnreachable),
		fmt.Errorf("wrapped: %w", core.ErrTimeout),
		fmt.Errorf("wrapped: %w", core.ErrStopped),
		fmt.Errorf("wrapped: %w", core.ErrNoCurrentReplica),
		fmt.Errorf("wrapped: %w", core.ErrNotResponsible),
	}
	bases := []error{
		core.ErrNotFound, core.ErrUnreachable, core.ErrTimeout,
		core.ErrStopped, core.ErrNoCurrentReplica, core.ErrNotResponsible,
	}
	for i, err := range cases {
		code, msg := EncodeError(err)
		if code == "" {
			t.Fatalf("no code for %v", err)
		}
		back := DecodeError(code, msg)
		for j, base := range bases {
			if errors.Is(back, base) != (i == j) {
				t.Fatalf("decoded %v matches base %v incorrectly", back, base)
			}
		}
	}
}

func TestErrorCodecNil(t *testing.T) {
	if code, msg := EncodeError(nil); code != "" || msg != "" {
		t.Fatalf("nil error encoded as %q/%q", code, msg)
	}
	if err := DecodeError("", ""); err != nil {
		t.Fatalf("empty code decoded to %v", err)
	}
}

func TestErrorCodecOpaque(t *testing.T) {
	orig := errors.New("something domain-specific")
	code, msg := EncodeError(orig)
	back := DecodeError(code, msg)
	if back == nil || back.Error() != orig.Error() {
		t.Fatalf("opaque error lost: %v", back)
	}
	for _, base := range []error{core.ErrNotFound, core.ErrTimeout} {
		if errors.Is(back, base) {
			t.Fatalf("opaque error matches %v", base)
		}
	}
}

func TestMeterCounting(t *testing.T) {
	var m Meter
	m.Count(100)
	m.Count(50)
	if m.Msgs != 2 || m.Bytes != 150 {
		t.Fatalf("meter = %+v", m)
	}
	m.Merge(Meter{Msgs: 3, Bytes: 10})
	if m.Msgs != 5 || m.Bytes != 160 {
		t.Fatalf("after merge = %+v", m)
	}
}

func TestNilMeterSafe(t *testing.T) {
	var m *Meter
	m.Count(10) // must not panic
	m.Merge(Meter{Msgs: 1, Bytes: 1})
}

type sized struct{ n int }

func (s sized) WireSize() int { return s.n }

func TestSizeOf(t *testing.T) {
	if got := SizeOf(sized{n: 4096}); got != 4096 {
		t.Fatalf("sized = %d", got)
	}
	if got := SizeOf(struct{ X int }{}); got != DefaultWireSize {
		t.Fatalf("default = %d", got)
	}
}

func TestRegisterMessageIdempotent(t *testing.T) {
	type onceMsg struct{ A int }
	// Registering the same concrete type twice must not panic (gob
	// panics on duplicate registration; the wrapper deduplicates).
	RegisterMessage(onceMsg{})
	RegisterMessage(onceMsg{})
}
