package repair

import (
	"context"
	"fmt"
	"testing"
	"time"

	"repro/internal/chord"
	"repro/internal/core"
	"repro/internal/dht"
	"repro/internal/hashing"
	"repro/internal/kts"
	"repro/internal/network/simwire"
	"repro/internal/simnet"
	"repro/internal/stats"
	"repro/internal/ums"
)

// cluster is a small simulated ring with UMS + KTS + repair per peer.
type cluster struct {
	t       *testing.T
	k       *simnet.Kernel
	set     hashing.Set
	nodes   []*chord.Node
	ums     []*ums.Service
	repairs []*Service
}

func newCluster(t *testing.T, seed int64, n int, cfg Config) *cluster {
	t.Helper()
	k := simnet.New(seed)
	net := simwire.New(k, simwire.Config{
		LatencyMS:      stats.Normal{Mean: 5, Variance: 0, Min: 5},
		BandwidthKbps:  stats.Normal{Mean: 1e6, Variance: 0, Min: 1e6},
		DefaultTimeout: 250 * time.Millisecond,
	})
	c := &cluster{t: t, k: k, set: hashing.NewSet(5)}
	chordCfg := chord.Config{
		StabilizeEvery:  500 * time.Millisecond,
		FixFingersEvery: 400 * time.Millisecond,
		CheckPredEvery:  500 * time.Millisecond,
		RPCTimeout:      250 * time.Millisecond,
	}
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("peer%d", i)
		ep := net.NewEndpoint(name)
		nd := chord.New(net.Env(), ep, hashing.NodeID(name), chordCfg)
		ktsSvc := kts.New(nd, c.set, ums.Namespace, kts.Config{GraceDelay: -1, RPCTimeout: 2 * time.Second})
		u := ums.New(nd, c.set, ktsSvc)
		r := New(nd, c.set, ktsSvc, nd.Store(), ums.Namespace, cfg)
		u.SetReadRepair(r)
		c.nodes = append(c.nodes, nd)
		c.ums = append(c.ums, u)
		c.repairs = append(c.repairs, r)
	}
	chord.AssembleRing(c.nodes)
	for _, nd := range c.nodes {
		nd.Start()
	}
	c.settle(5 * time.Second)
	return c
}

func (c *cluster) do(fn func()) {
	c.t.Helper()
	done := false
	c.k.Go(func() {
		fn()
		done = true
	})
	for i := 0; i < 600 && !done; i++ {
		c.k.Run(c.k.Now() + 100*time.Millisecond)
	}
	if !done {
		c.t.Fatal("simulated operation did not complete")
	}
}

func (c *cluster) settle(d time.Duration) { c.k.Run(c.k.Now() + d) }

// owner returns the index of the node responsible for ring position id.
func (c *cluster) owner(id core.ID) int {
	for i, nd := range c.nodes {
		if nd.Alive() && nd.OwnsID(id) {
			return i
		}
	}
	c.t.Fatalf("no owner for %s", id)
	return -1
}

// replicaAt reads the replica of k under h directly from its host store.
func (c *cluster) replicaAt(k core.Key, h hashing.Func) (core.Value, bool) {
	host := c.owner(h.ID(k))
	return c.nodes[host].Store().Get(h.ID(k), dht.Qualifier(ums.Namespace, k, h.Name()))
}

// TestSweepHealsLostReplica wipes one replica host and checks that one
// anti-entropy round from a surviving host restores the replica with the
// current value.
func TestSweepHealsLostReplica(t *testing.T) {
	c := newCluster(t, 11, 12, Config{Every: time.Hour}) // manual rounds only
	defer c.k.Stop()
	key := core.Key("heal-me")

	c.do(func() {
		if _, err := c.ums[0].Insert(context.Background(), key, []byte("v1")); err != nil {
			t.Errorf("insert: %v", err)
		}
	})

	// Wipe the store of the peer hosting the replica under Hr[0]; the
	// replica is now missing, as after a crash + replacement join.
	h0 := c.set.Hr[0]
	victim := c.owner(h0.ID(key))
	c.nodes[victim].Store().Clear()
	if _, ok := c.replicaAt(key, h0); ok {
		t.Fatal("replica still present after wipe")
	}

	// Sweep from a surviving host of the same key (any peer whose store
	// still has it under some other hash function).
	sweeper := -1
	for i := range c.nodes {
		if i == victim {
			continue
		}
		keys, _ := c.repairs[i].hostedKeys()
		if len(keys) > 0 {
			sweeper = i
			break
		}
	}
	if sweeper < 0 {
		t.Fatal("no surviving replica host")
	}
	rng := c.k.NewRand("test-sweep")
	healed := 0
	c.do(func() { healed = c.repairs[sweeper].SweepOnce(rng) })
	if healed == 0 {
		t.Fatal("sweep healed nothing")
	}
	val, ok := c.replicaAt(key, h0)
	if !ok || string(val.Data) != "v1" {
		t.Fatalf("replica not restored: ok=%v val=%q", ok, val.Data)
	}
	st := c.repairs[sweeper].Stats()
	if st.Rounds != 1 || st.Healed == 0 || st.KeysScanned == 0 || st.Msgs == 0 {
		t.Fatalf("stats not recorded: %+v", st)
	}
}

// TestReadRepairNeverRegresses pushes a deliberately stale observation
// through ReadRepair and asserts no replica travels backwards in time —
// the PutIfNewer discipline the subsystem is built on.
func TestReadRepairNeverRegresses(t *testing.T) {
	c := newCluster(t, 12, 10, Config{ReadRepair: true})
	defer c.k.Stop()
	key := core.Key("no-regress")

	var oldTS, newTS core.Timestamp
	c.do(func() {
		r1, err := c.ums[0].Insert(context.Background(), key, []byte("old"))
		if err != nil {
			t.Errorf("insert v1: %v", err)
		}
		oldTS = r1.TS
		r2, err := c.ums[1].Insert(context.Background(), key, []byte("new"))
		if err != nil {
			t.Errorf("insert v2: %v", err)
		}
		newTS = r2.TS
	})
	if !oldTS.Less(newTS) {
		t.Fatalf("timestamps not ordered: %v vs %v", oldTS, newTS)
	}

	// A malicious/late observation: the OLD value claimed for every
	// replica position.
	c.repairs[2].ReadRepair(key, core.Value{Data: []byte("old"), TS: oldTS}, c.set.Hr)
	c.settle(10 * time.Second)

	for _, h := range c.set.Hr {
		if val, ok := c.replicaAt(key, h); ok && val.TS.Less(newTS) {
			t.Fatalf("replica under %s regressed to %v (%q)", h.Name(), val.TS, val.Data)
		}
	}
	if st := c.repairs[2].Stats(); st.ReadRepairs != 0 {
		t.Fatalf("stale pushes were counted as repairs: %+v", st)
	}
}

// TestReadRepairRestoresMissing checks the positive path: a retrieve that
// finds the current value refreshes a wiped replica position through the
// installed ReadRepairer.
func TestReadRepairRestoresMissing(t *testing.T) {
	c := newCluster(t, 13, 10, Config{ReadRepair: true})
	defer c.k.Stop()
	key := core.Key("refresh")

	c.do(func() {
		if _, err := c.ums[0].Insert(context.Background(), key, []byte("cur")); err != nil {
			t.Errorf("insert: %v", err)
		}
	})
	h0 := c.set.Hr[0]
	c.nodes[c.owner(h0.ID(key))].Store().Clear()

	// A retrieve observes the missing position and the current value; the
	// wired ReadRepairer refreshes it asynchronously.
	c.do(func() {
		if _, err := c.ums[3].Retrieve(context.Background(), key); err != nil {
			t.Errorf("retrieve: %v", err)
		}
	})
	c.settle(10 * time.Second)

	val, ok := c.replicaAt(key, h0)
	if !ok || string(val.Data) != "cur" {
		t.Fatalf("read-repair did not restore the replica: ok=%v val=%q", ok, val.Data)
	}
	total := Stats{}
	for _, r := range c.repairs {
		total.Add(r.Stats())
	}
	if total.ReadRepairs == 0 {
		t.Fatalf("no read-repair counted: %+v", total)
	}
}

// TestHostedKeysFiltersNamespace checks that the sweep only sees its own
// namespace and reports keys deterministically sorted.
func TestHostedKeysFiltersNamespace(t *testing.T) {
	c := newCluster(t, 14, 4, Config{Every: time.Hour})
	defer c.k.Stop()
	st := c.nodes[0].Store()
	id := c.set.Hr[0].ID("b-key")
	st.Put(id, dht.Qualifier(ums.Namespace, "b-key", "hr0"), core.Value{Data: []byte("x"), TS: core.TS(1)}, dht.PutOverwrite)
	st.Put(id, dht.Qualifier(ums.Namespace, "a-key", "hr0"), core.Value{Data: []byte("x"), TS: core.TS(1)}, dht.PutOverwrite)
	st.Put(id, dht.Qualifier("brk", "c-key", "hr0"), core.Value{Data: []byte("x"), TS: core.TS(1)}, dht.PutOverwrite)

	keys, info := c.repairs[0].hostedKeys()
	if len(keys) != 2 || keys[0] != "a-key" || keys[1] != "b-key" {
		t.Fatalf("hostedKeys = %v", keys)
	}
	if _, ok := info["c-key"]; ok {
		t.Fatal("foreign namespace leaked into the sweep")
	}
	if !info["a-key"].local["hr0"] {
		t.Fatal("locally hosted position not recorded")
	}
}
