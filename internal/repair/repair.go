// Package repair is the replica-maintenance subsystem: it keeps the
// probability of currency and availability from decaying between updates
// by refreshing replicas that churn destroyed.
//
// The paper's model (§2) loses a replica whenever its responsible
// departs, and nothing restores it until the next insert — which is
// exactly why the probability of currency degrades with the failure rate
// (Figures 11–12). This package adds the two classic countermeasures on
// top of the unchanged UMS/KTS protocols:
//
//   - anti-entropy sweep: each peer periodically walks the keys it hosts
//     replicas for, asks KTS for the key's last generated timestamp, and
//     re-pushes the freshest reachable value to the *current* replica set
//     rsp(k, h) for every h ∈ Hr. Pushes use dht.PutIfNewer, so a sweep
//     can only move replicas forward in time — a concurrent insert always
//     wins;
//   - read-repair: when a UMS retrieve observes stale or missing replicas
//     among the positions it probed, the subsystem asynchronously
//     refreshes exactly those positions with the value the retrieve
//     found. The refresh rides the retrieve's observation and costs no
//     extra reads.
//
// Both paths are driven through the network.Env abstraction, so under
// simulation every timer and refresh runs in deterministic virtual time
// (same seed, bit-identical schedule) while the TCP deployment gets real
// background goroutines from the same code.
package repair

import (
	"context"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/dht"
	"repro/internal/hashing"
	"repro/internal/kts"
	"repro/internal/network"
	"repro/internal/obs"
)

// Config tunes the subsystem. The zero value disables both mechanisms;
// services are cheap to construct unconditionally and activate per knob.
type Config struct {
	// Every is the anti-entropy sweep period; zero disables the sweep.
	// Each peer jitters its rounds (up to a quarter period) so sweeps do
	// not synchronize across the network.
	Every time.Duration
	// PerRound caps how many distinct keys one sweep round repairs; the
	// remaining keys rotate into later rounds. Default 8.
	PerRound int
	// ReadRepair enables opportunistic refresh of stale or missing
	// replicas observed by UMS retrieves.
	ReadRepair bool
	// Obs exports the maintenance Stats as scrape-time collector
	// functions (sweep rounds, heals, read-repairs, maintenance traffic).
	// Nil disables export.
	Obs *obs.Registry
}

func (c Config) withDefaults() Config {
	if c.PerRound == 0 {
		c.PerRound = 8
	}
	return c
}

// Enabled reports whether any maintenance mechanism is active.
func (c Config) Enabled() bool { return c.Every > 0 || c.ReadRepair }

// Stats counts the subsystem's work on one peer. All counters are
// cumulative since the service started.
type Stats struct {
	// Rounds is the number of completed sweep rounds.
	Rounds uint64
	// KeysScanned counts key repairs attempted by the sweep.
	KeysScanned uint64
	// Healed counts replicas the sweep actually restored or advanced
	// (pushes the responsible peer kept; rejected PutIfNewer pushes are
	// not heals).
	Healed uint64
	// ReadRepairs counts replicas restored or advanced by read-repair.
	ReadRepairs uint64
	// Msgs and Bytes are the communication cost of all maintenance
	// traffic this peer initiated (sweep reads and pushes, read-repair
	// pushes), measured with the same meters as foreground operations.
	Msgs  uint64
	Bytes uint64
	// Errors counts repair attempts abandoned on RPC or KTS failures.
	Errors uint64
}

// Add folds other into s; facades aggregate per-peer stats with it.
func (s *Stats) Add(other Stats) {
	s.Rounds += other.Rounds
	s.KeysScanned += other.KeysScanned
	s.Healed += other.Healed
	s.ReadRepairs += other.ReadRepairs
	s.Msgs += other.Msgs
	s.Bytes += other.Bytes
	s.Errors += other.Errors
}

// Service is the per-peer maintenance instance. It is constructed next
// to UMS with the same ring/set/KTS plumbing and reads the peer's
// LocalStore to discover which keys it hosts.
type Service struct {
	ring   dht.Ring
	set    hashing.Set
	ts     *kts.Service
	store  *dht.LocalStore
	client *dht.Client
	ns     string
	cfg    Config

	mu      sync.Mutex
	stats   Stats
	started bool
}

// New attaches a maintenance service to a peer. ns names the replica
// namespace to maintain (ums.Namespace for the UMS protocol); replicas
// stored by other services (e.g. BRK) are left alone. Call Start to
// launch the sweep.
func New(ring dht.Ring, set hashing.Set, ts *kts.Service, store *dht.LocalStore, ns string, cfg Config) *Service {
	s := &Service{
		ring:   ring,
		set:    set,
		ts:     ts,
		store:  store,
		client: dht.NewClient(ring, ns),
		ns:     ns,
		cfg:    cfg.withDefaults(),
	}
	// The subsystem already keeps cumulative Stats under its own lock;
	// the registry reads them at scrape time instead of double-counting
	// on the hot path. Per-peer registrations under a shared deployment
	// registry sum into cluster-wide series.
	stat := func(read func(Stats) uint64) func() float64 {
		return func() float64 { return float64(read(s.Stats())) }
	}
	cfg.Obs.CounterFunc("dcdht_repair_rounds_total",
		"Anti-entropy sweep rounds completed.", stat(func(st Stats) uint64 { return st.Rounds }))
	cfg.Obs.CounterFunc("dcdht_repair_keys_scanned_total",
		"Key repairs attempted by the sweep.", stat(func(st Stats) uint64 { return st.KeysScanned }))
	cfg.Obs.CounterFunc("dcdht_repair_healed_total",
		"Replicas restored or advanced by the sweep.", stat(func(st Stats) uint64 { return st.Healed }))
	cfg.Obs.CounterFunc("dcdht_repair_read_repairs_total",
		"Replicas restored or advanced by read-repair.", stat(func(st Stats) uint64 { return st.ReadRepairs }))
	cfg.Obs.CounterFunc("dcdht_repair_msgs_total",
		"Messages spent on maintenance traffic.", stat(func(st Stats) uint64 { return st.Msgs }))
	cfg.Obs.CounterFunc("dcdht_repair_bytes_total",
		"Bytes spent on maintenance traffic.", stat(func(st Stats) uint64 { return st.Bytes }))
	cfg.Obs.CounterFunc("dcdht_repair_errors_total",
		"Repair attempts abandoned on RPC or KTS failures.", stat(func(st Stats) uint64 { return st.Errors }))
	return s
}

// Config returns the effective configuration.
func (s *Service) Config() Config { return s.cfg }

// Stats returns a snapshot of the maintenance counters.
func (s *Service) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Start launches the periodic anti-entropy sweep (idempotent; a no-op
// when the sweep is disabled). Read-repair needs no loop — it is fed by
// retrieve observations — so Start only concerns the sweep.
func (s *Service) Start() {
	s.mu.Lock()
	if s.started || s.cfg.Every <= 0 {
		s.mu.Unlock()
		return
	}
	s.started = true
	s.mu.Unlock()

	env := s.ring.Env()
	rng := env.Rand("repair:" + string(s.ring.Self().Addr))
	env.Go(func() {
		for s.ring.Alive() {
			jitter := time.Duration(rng.Int63n(int64(s.cfg.Every)/4 + 1))
			if err := env.Sleep(s.cfg.Every + jitter); err != nil {
				return
			}
			if !s.ring.Alive() {
				return
			}
			s.SweepOnce(rng)
		}
	})
}

// SweepOnce runs one anti-entropy round: pick up to PerRound hosted keys
// (rotating start so the whole store is covered across rounds) and
// repair each. It returns the number of replicas healed this round.
// Exposed so tests and operators can force a round outside the timer.
func (s *Service) SweepOnce(rng interface{ Intn(int) int }) int {
	keys, local := s.hostedKeys()
	healed := 0
	if len(keys) > 0 {
		limit := s.cfg.PerRound
		if limit > len(keys) {
			limit = len(keys)
		}
		start := rng.Intn(len(keys))
		for i := 0; i < limit; i++ {
			k := keys[(start+i)%len(keys)]
			healed += s.repairKey(k, local[k])
		}
	}
	s.mu.Lock()
	s.stats.Rounds++
	s.mu.Unlock()
	return healed
}

// hostedKey is what the sweep knows about one locally hosted key: the
// freshest locally held value and which replica positions (by hash
// function name) this peer itself hosts — those need no network read.
type hostedKey struct {
	best  core.Value
	local map[string]bool
}

// hostedKeys snapshots the local store and returns the distinct keys of
// this service's namespace in sorted order (map iteration is not
// deterministic; the sort keeps simulated sweeps reproducible), plus the
// per-key local knowledge.
func (s *Service) hostedKeys() ([]core.Key, map[core.Key]hostedKey) {
	info := make(map[core.Key]hostedKey)
	for _, it := range s.store.Snapshot() {
		ns, k, hname, ok := dht.ParseQualifier(it.Qual)
		if !ok || ns != s.ns {
			continue
		}
		cur, seen := info[k]
		if !seen {
			cur.local = make(map[string]bool)
		}
		cur.local[hname] = true
		if !seen || cur.best.TS.Less(it.Val.TS) {
			cur.best = it.Val
		}
		info[k] = cur
	}
	keys := make([]core.Key, 0, len(info))
	for k := range info {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys, info
}

// repairKey heals one key: learn the last generated timestamp, locate
// the freshest reachable value, and re-push it to the current replica
// set. hk seeds the search with what this peer already hosts, so a sweep
// over healthy replicas costs one last_ts round trip and |Hr| pushes, no
// reads.
func (s *Service) repairKey(k core.Key, hk hostedKey) int {
	meter := &network.Meter{}
	ctx := network.WithMeter(context.Background(), meter)
	defer func() {
		s.mu.Lock()
		s.stats.Msgs += uint64(meter.Msgs)
		s.stats.Bytes += uint64(meter.Bytes)
		s.mu.Unlock()
	}()

	ts1, err := s.ts.LastTS(ctx, k)
	if err != nil {
		s.bump(func(st *Stats) { st.Errors++ })
		return 0
	}
	s.bump(func(st *Stats) { st.KeysScanned++ })

	// Find the freshest reachable value. The local replicas are free;
	// read the remaining positions only while the local best is older
	// than the last generated timestamp (a current local replica needs no
	// network reads at all).
	best := hk.best
	if best.TS.Less(ts1) {
		for _, h := range s.set.Hr {
			if hk.local[h.Name()] {
				continue // hosted here: already folded into best
			}
			val, gerr := s.client.GetH(ctx, k, h)
			if gerr != nil {
				continue // unavailable replica: the push below restores it
			}
			if best.TS.Less(val.TS) {
				best = val
			}
			if !best.TS.Less(ts1) {
				break // found a current replica; no point reading further
			}
		}
	}
	if best.Data == nil && best.TS.IsZero() {
		return 0 // nothing reachable to push
	}

	// Re-push to the current replica set. PutIfNewer makes the push
	// monotone: it restores lost replicas and advances stale ones, and is
	// rejected wherever an equal-or-newer replica already lives.
	healed := 0
	for _, h := range s.set.Hr {
		stored, perr := s.client.PutHStored(ctx, k, h, best, dht.PutIfNewer)
		switch {
		case perr != nil:
			s.bump(func(st *Stats) { st.Errors++ })
		case stored:
			healed++
		}
	}
	if healed > 0 {
		s.bump(func(st *Stats) { st.Healed += uint64(healed) })
	}
	return healed
}

// ReadRepair implements ums.ReadRepairer: asynchronously refresh the
// replica positions a retrieve observed as stale or missing with the
// value the retrieve returned. The push uses PutIfNewer, so a repair can
// never regress a replica that a concurrent insert advanced past the
// observation. Runs as its own activity; the caller's retrieve has
// already returned.
func (s *Service) ReadRepair(k core.Key, current core.Value, stale []hashing.Func) {
	if !s.cfg.ReadRepair || len(stale) == 0 || !s.ring.Alive() {
		return
	}
	// Copy the observation: the retrieve's buffers must not be shared
	// with an activity that outlives it.
	val := current.Clone()
	hs := make([]hashing.Func, len(stale))
	copy(hs, stale)
	s.ring.Env().Go(func() {
		meter := &network.Meter{}
		ctx := network.WithMeter(context.Background(), meter)
		repaired := 0
		for _, h := range hs {
			stored, err := s.client.PutHStored(ctx, k, h, val, dht.PutIfNewer)
			switch {
			case err != nil:
				s.bump(func(st *Stats) { st.Errors++ })
			case stored:
				repaired++
			}
		}
		s.mu.Lock()
		s.stats.ReadRepairs += uint64(repaired)
		s.stats.Msgs += uint64(meter.Msgs)
		s.stats.Bytes += uint64(meter.Bytes)
		s.mu.Unlock()
	})
}

// bump applies one locked mutation to the stats.
func (s *Service) bump(fn func(*Stats)) {
	s.mu.Lock()
	fn(&s.stats)
	s.mu.Unlock()
}
