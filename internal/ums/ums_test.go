package ums_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/ums"
)

// deploy builds a quiet 24-peer deployment for direct service tests.
func deploy(t *testing.T, seed int64) *exp.Deployment {
	t.Helper()
	sc := exp.Table1Scenario(exp.AlgUMSDirect, 24, seed)
	d := exp.NewDeployment(exp.DeployConfig{
		Peers:    24,
		Replicas: 5,
		Seed:     seed,
		Chord:    sc.Chord,
	})
	d.RunFor(time.Minute)
	return d
}

func TestInsertThenRetrieveIsCurrent(t *testing.T) {
	d := deploy(t, 1)
	ok := d.Do(func() {
		p := d.Peers[0]
		ins, err := p.UMS.Insert(context.Background(), "k", []byte("v1"))
		if err != nil {
			t.Errorf("insert: %v", err)
			return
		}
		if ins.Stored != 5 {
			t.Errorf("stored %d/5 replicas", ins.Stored)
		}
		if ins.TS != core.TS(1) {
			t.Errorf("first insert ts = %v", ins.TS)
		}
		// Retrieve from a different peer.
		r, err := d.Peers[7].UMS.Retrieve(context.Background(), "k")
		if err != nil {
			t.Errorf("retrieve: %v", err)
			return
		}
		if !r.Current() {
			t.Error("retrieve did not prove currency")
		}
		if string(r.Data) != "v1" {
			t.Errorf("data = %q", r.Data)
		}
		if r.Probed != 1 {
			t.Errorf("probed %d replicas; a fully current set needs 1", r.Probed)
		}
	})
	if !ok {
		t.Fatal("simulation stalled")
	}
}

func TestUpdateWinsOverStaleReplica(t *testing.T) {
	d := deploy(t, 2)
	ok := d.Do(func() {
		p := d.Peers[0]
		if _, err := p.UMS.Insert(context.Background(), "k", []byte("v1")); err != nil {
			t.Errorf("insert1: %v", err)
			return
		}
		if _, err := d.Peers[3].UMS.Insert(context.Background(), "k", []byte("v2")); err != nil {
			t.Errorf("insert2: %v", err)
			return
		}
		r, err := d.Peers[9].UMS.Retrieve(context.Background(), "k")
		if err != nil {
			t.Errorf("retrieve: %v", err)
			return
		}
		if string(r.Data) != "v2" || !r.Current() {
			t.Errorf("got %q current=%v, want current v2", r.Data, r.Current())
		}
		if r.TS != core.TS(2) {
			t.Errorf("ts = %v", r.TS)
		}
	})
	if !ok {
		t.Fatal("simulation stalled")
	}
}

func TestRetrieveNeverInserted(t *testing.T) {
	d := deploy(t, 3)
	d.Do(func() {
		_, err := d.Peers[0].UMS.Retrieve(context.Background(), "ghost")
		if !errors.Is(err, core.ErrNotFound) {
			t.Errorf("retrieve of never-inserted key: %v", err)
		}
	})
}

// Concurrent inserts from different peers: exactly one wins, and every
// retrieve decides the same winner (the paper's §3.2 guarantee that only
// the insert obtaining the latest timestamp persists).
func TestConcurrentInsertsSingleWinner(t *testing.T) {
	d := deploy(t, 4)
	results := make(chan core.Timestamp, 3)
	d.K.Go(func() {
		r, err := d.Peers[1].UMS.Insert(context.Background(), "hot", []byte("from-1"))
		if err == nil {
			results <- r.TS
		}
	})
	d.K.Go(func() {
		r, err := d.Peers[5].UMS.Insert(context.Background(), "hot", []byte("from-5"))
		if err == nil {
			results <- r.TS
		}
	})
	d.K.Go(func() {
		r, err := d.Peers[9].UMS.Insert(context.Background(), "hot", []byte("from-9"))
		if err == nil {
			results <- r.TS
		}
	})
	d.RunFor(5 * time.Minute)
	close(results)
	seen := map[core.Timestamp]bool{}
	var latest core.Timestamp
	for ts := range results {
		if seen[ts] {
			t.Fatalf("duplicate timestamp %v issued to concurrent inserts", ts)
		}
		seen[ts] = true
		latest = latest.Max(ts)
	}
	if len(seen) != 3 {
		t.Fatalf("expected 3 successful inserts, got %d", len(seen))
	}
	d.Do(func() {
		r, err := d.Peers[2].UMS.Retrieve(context.Background(), "hot")
		if err != nil {
			t.Errorf("retrieve: %v", err)
			return
		}
		if !r.Current() || r.TS != latest {
			t.Errorf("retrieve returned ts=%v current=%v, want latest %v", r.TS, r.Current(), latest)
		}
	})
}

// When every current replica is unavailable, retrieve returns the most
// recent available replica and flags it (Figure 2's data_mr path).
func TestRetrieveFallsBackToMostRecent(t *testing.T) {
	d := deploy(t, 5)
	key := core.Key("fallback")
	d.Do(func() {
		if _, err := d.Peers[0].UMS.Insert(context.Background(), key, []byte("old")); err != nil {
			t.Errorf("insert: %v", err)
		}
	})
	// Manually plant a newer timestamp in KTS by generating one more
	// (simulating an updater that obtained a timestamp and crashed
	// before storing any replica).
	d.Do(func() {
		if _, err := d.Peers[0].UMS.KTS().GenTS(context.Background(), key); err != nil {
			t.Errorf("gen: %v", err)
		}
	})
	d.Do(func() {
		r, err := d.Peers[4].UMS.Retrieve(context.Background(), key)
		if !ums.IsNoCurrent(err) {
			t.Errorf("want ErrNoCurrentReplica, got %v", err)
			return
		}
		if string(r.Data) != "old" {
			t.Errorf("fallback data = %q", r.Data)
		}
		if r.Current() {
			t.Error("fallback must not claim currency")
		}
		if r.Probed != 5 {
			t.Errorf("fallback should probe all replicas, probed %d", r.Probed)
		}
	})
}

// Theorem 1 in vivo: with all replicas current, retrieves probe exactly
// one replica; after killing a fraction of replica holders, the probe
// count rises but stays near 1/pt.
func TestProbeCountTracksAvailability(t *testing.T) {
	d := deploy(t, 6)
	keys := []core.Key{"p1", "p2", "p3", "p4", "p5", "p6"}
	d.Do(func() {
		for _, k := range keys {
			if _, err := d.Peers[0].UMS.Insert(context.Background(), k, []byte(k)); err != nil {
				t.Errorf("insert %s: %v", k, err)
			}
		}
	})
	total := 0
	d.Do(func() {
		for _, k := range keys {
			r, err := d.Peers[2].UMS.Retrieve(context.Background(), k)
			if err != nil {
				t.Errorf("retrieve %s: %v", k, err)
				continue
			}
			total += r.Probed
		}
	})
	if total != len(keys) {
		t.Fatalf("with pt=1 every retrieve must probe exactly once; total=%d", total)
	}
}
