package ums_test

import (
	"context"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dht"
	"repro/internal/ums"
)

// TestRetrieveEventualSkipsKTS: an eventual retrieve contacts no KTS
// responsible — it accepts the first reachable replica, costs strictly
// fewer messages than the provably-current path, and claims nothing.
func TestRetrieveEventualSkipsKTS(t *testing.T) {
	d := deploy(t, 11)
	key := core.Key("ev")
	d.Do(func() {
		if _, err := d.Peers[0].UMS.Insert(context.Background(), key, []byte("v1")); err != nil {
			t.Errorf("insert: %v", err)
		}
	})
	d.Do(func() {
		cur, err := d.Peers[3].UMS.Retrieve(context.Background(), key)
		if err != nil {
			t.Errorf("current retrieve: %v", err)
			return
		}
		ev, err := d.Peers[3].UMS.RetrieveWith(context.Background(), key, dht.ReadPolicy{Level: dht.LevelEventual})
		if err != nil {
			t.Errorf("eventual retrieve: %v", err)
			return
		}
		if string(ev.Data) != "v1" {
			t.Errorf("eventual data = %q", ev.Data)
		}
		if ev.Currency != dht.CurrencyUnknown || ev.Current() {
			t.Errorf("eventual verdict = %v, want unknown", ev.Currency)
		}
		if cur.Currency != dht.CurrencyProven || !cur.Current() {
			t.Errorf("current verdict = %v, want proven", cur.Currency)
		}
		if ev.Msgs >= cur.Msgs {
			t.Errorf("eventual cost %d msgs, current %d — the KTS round trip was not skipped", ev.Msgs, cur.Msgs)
		}
		if ev.Probed != 1 {
			t.Errorf("eventual probed %d, want 1", ev.Probed)
		}
	})
}

// TestRetrieveBoundedUsesWarmCache: after this peer wrote the key (its
// gen_ts warmed the last-ts cache), a bounded retrieve accepts the
// first replica at the cached floor with no KTS round trip and the
// WithinBound verdict; a cold peer falls back to the authoritative
// path and reports Proven.
func TestRetrieveBoundedUsesWarmCache(t *testing.T) {
	d := deploy(t, 12)
	key := core.Key("bd")
	writer, cold := d.Peers[0], d.Peers[9]
	d.Do(func() {
		if _, err := writer.UMS.Insert(context.Background(), key, []byte("v1")); err != nil {
			t.Errorf("insert: %v", err)
		}
	})
	pol := dht.ReadPolicy{Level: dht.LevelBounded, Bound: 10 * time.Minute}
	d.Do(func() {
		cur, err := cold.UMS.Retrieve(context.Background(), key)
		if err != nil {
			t.Errorf("current retrieve: %v", err)
			return
		}
		warm, err := writer.UMS.RetrieveWith(context.Background(), key, pol)
		if err != nil {
			t.Errorf("warm bounded retrieve: %v", err)
			return
		}
		if warm.Currency != dht.CurrencyWithinBound {
			t.Errorf("warm verdict = %v, want within-bound", warm.Currency)
		}
		if warm.Msgs >= cur.Msgs {
			t.Errorf("warm bounded cost %d msgs, current %d — the cache did not save the round trip", warm.Msgs, cur.Msgs)
		}
		if warm.Floor.IsZero() || warm.FloorAge < 0 {
			t.Errorf("warm evidence floor=%v age=%v", warm.Floor, warm.FloorAge)
		}
	})
	d.Do(func() {
		// A peer that never observed the key has no cached floor: the
		// bounded read pays the authoritative path and earns Proven.
		coldRes, err := d.Peers[5].UMS.RetrieveWith(context.Background(), key, pol)
		if err != nil {
			t.Errorf("cold bounded retrieve: %v", err)
			return
		}
		if coldRes.Currency != dht.CurrencyProven {
			t.Errorf("cold verdict = %v, want proven (authoritative fallback)", coldRes.Currency)
		}
	})
}

// TestRetrieveBoundedRespectsAge: a cache entry older than the bound
// does not satisfy a bounded read — the authoritative path runs.
func TestRetrieveBoundedRespectsAge(t *testing.T) {
	d := deploy(t, 13)
	key := core.Key("aged")
	d.Do(func() {
		if _, err := d.Peers[0].UMS.Insert(context.Background(), key, []byte("v1")); err != nil {
			t.Errorf("insert: %v", err)
		}
	})
	d.RunFor(5 * time.Minute) // let the writer's cache entry age out
	d.Do(func() {
		r, err := d.Peers[0].UMS.RetrieveWith(context.Background(), key,
			dht.ReadPolicy{Level: dht.LevelBounded, Bound: time.Minute})
		if err != nil {
			t.Errorf("bounded retrieve: %v", err)
			return
		}
		if r.Currency != dht.CurrencyProven {
			t.Errorf("verdict = %v, want proven: a %v-old cache entry must not satisfy a 1m bound", r.Currency, 5*time.Minute)
		}
	})
}

// TestRetrieveFloorEnforced: a session floor bounds every level from
// below — an eventual read whose replicas are all behind the floor
// falls back to most-recent-available with an error instead of
// returning a floor-violating success.
func TestRetrieveFloorEnforced(t *testing.T) {
	d := deploy(t, 14)
	key := core.Key("fl")
	var ts core.Timestamp
	d.Do(func() {
		r, err := d.Peers[0].UMS.Insert(context.Background(), key, []byte("v1"))
		if err != nil {
			t.Errorf("insert: %v", err)
			return
		}
		ts = r.TS
	})
	d.Do(func() {
		// Floor above anything stored: no level may return success.
		high := ts.Add(7)
		for _, pol := range []dht.ReadPolicy{
			{Level: dht.LevelEventual, Floor: high},
			{Level: dht.LevelCurrent, Floor: high, FloorFirst: true},
		} {
			r, err := d.Peers[6].UMS.RetrieveWith(context.Background(), key, pol)
			if !ums.IsNoCurrent(err) {
				t.Errorf("policy %+v: err = %v, want ErrNoCurrentReplica", pol, err)
				continue
			}
			if string(r.Data) != "v1" {
				t.Errorf("policy %+v: fallback data = %q", pol, r.Data)
			}
			if r.Currency != dht.CurrencyUnknown {
				t.Errorf("policy %+v: verdict = %v on a floor violation", pol, r.Currency)
			}
		}
		// Floor at the stored timestamp: the session fast path accepts
		// the first replica with zero KTS messages.
		r, err := d.Peers[6].UMS.RetrieveWith(context.Background(), key,
			dht.ReadPolicy{Floor: ts, FloorFirst: true})
		if err != nil {
			t.Errorf("floor-first retrieve: %v", err)
			return
		}
		if r.Currency != dht.CurrencySessionFloor {
			t.Errorf("floor-first verdict = %v, want session-floor", r.Currency)
		}
		if r.TS.Less(ts) {
			t.Errorf("floor violated: returned %v < floor %v", r.TS, ts)
		}
	})
}
