// Package ums implements the paper's Update Management Service (§3):
// insert stamps data with a KTS timestamp and replicates it at the peers
// responsible for the key under every replication hash function;
// retrieve asks KTS for the last generated timestamp and probes replica
// positions one at a time, returning the first replica that carries it —
// so, unlike the BRICKS baseline, it almost never needs to fetch all
// replicas (Theorem 1: E[probes] < 1/pt).
package ums

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/dht"
	"repro/internal/hashing"
	"repro/internal/kts"
	"repro/internal/network"
)

// Namespace is the storage namespace UMS replicas live in.
const Namespace = "ums"

// Service is the per-peer UMS instance. Any peer can run inserts and
// retrieves; the heavy lifting happens at the peers responsible for the
// key's replica positions and timestamping.
type Service struct {
	ring   dht.Ring
	set    hashing.Set
	ts     *kts.Service
	client *dht.Client
}

// New attaches a UMS instance to a peer, wiring it to the peer's KTS
// service. It also registers the KTS repair hook: when recovery or
// inspection raises a counter, the data stamped with the stale timestamp
// is reinserted under the corrected one (§4.2.2).
func New(ring dht.Ring, set hashing.Set, ts *kts.Service) *Service {
	s := &Service{
		ring:   ring,
		set:    set,
		ts:     ts,
		client: dht.NewClient(ring, Namespace),
	}
	ts.SetRepair(s.repair)
	return s
}

// KTS returns the timestamping service this UMS uses.
func (s *Service) KTS() *kts.Service { return s.ts }

// Insert implements Figure 2's insert(k, data): generate a timestamp,
// then send (k, {data, ts}) to rsp(k, h) for every h ∈ Hr. Peers keep
// the pair only if the timestamp is newer than what they hold, so of
// concurrent inserts exactly the one with the latest timestamp survives.
func (s *Service) Insert(ctx context.Context, k core.Key, data []byte) (res dht.OpResult, err error) {
	meter := &network.Meter{}
	ctx = network.WithMeter(ctx, meter)
	start := s.ring.Env().Now()
	defer func() {
		res.Elapsed = s.ring.Env().Now() - start
		res.Msgs, res.Bytes = meter.Msgs, meter.Bytes
	}()

	ts, err := s.ts.GenTS(ctx, k)
	if err != nil {
		return res, fmt.Errorf("ums: insert(%q): %w", k, err)
	}
	res.TS = ts
	val := core.Value{Data: data, TS: ts}
	for _, h := range s.set.Hr {
		if cerr := network.CtxError(ctx); cerr != nil {
			return res, fmt.Errorf("ums: insert(%q): %w", k, cerr)
		}
		if err := s.client.PutH(ctx, k, h, val, dht.PutIfNewer); err == nil {
			res.Stored++
		}
		// A failed put means that replica position is currently
		// unreachable; the insert proceeds — availability of that replica
		// simply suffers, which is the behaviour the analysis models.
	}
	if res.Stored == 0 {
		return res, fmt.Errorf("ums: insert(%q): no replica stored: %w", k, core.ErrUnreachable)
	}
	return res, nil
}

// Retrieve implements Figure 2's retrieve(k): fetch the last timestamp
// ts1 from KTS, then probe rsp(k, h) for each h ∈ Hr until a replica
// stamped ts1 appears. If none is reachable, the most recent available
// replica is returned together with core.ErrNoCurrentReplica.
func (s *Service) Retrieve(ctx context.Context, k core.Key) (res dht.OpResult, err error) {
	meter := &network.Meter{}
	ctx = network.WithMeter(ctx, meter)
	start := s.ring.Env().Now()
	defer func() {
		res.Elapsed = s.ring.Env().Now() - start
		res.Msgs, res.Bytes = meter.Msgs, meter.Bytes
	}()

	ts1, err := s.ts.LastTS(ctx, k)
	if err != nil {
		return res, fmt.Errorf("ums: retrieve(%q): %w", k, err)
	}
	if ts1.IsZero() {
		return res, fmt.Errorf("ums: retrieve(%q): never inserted: %w", k, core.ErrNotFound)
	}

	var dataMR []byte // most recent replica seen so far (Figure 2's data_mr)
	tsMR := core.TSZero
	for _, h := range s.set.Hr {
		if cerr := network.CtxError(ctx); cerr != nil {
			return res, fmt.Errorf("ums: retrieve(%q): %w", k, cerr)
		}
		res.Probed++
		val, err := s.client.GetH(ctx, k, h)
		if err != nil {
			continue // replica unavailable (peer down, data lost, stale lookup)
		}
		res.Retrieved++
		if val.TS == ts1 {
			// One current replica found: return it immediately.
			res.Data, res.TS, res.Current = val.Data, val.TS, true
			return res, nil
		}
		if tsMR.Less(val.TS) {
			dataMR, tsMR = val.Data, val.TS
		}
	}
	if dataMR == nil {
		return res, fmt.Errorf("ums: retrieve(%q): no replica available: %w", k, core.ErrNotFound)
	}
	res.Data, res.TS = dataMR, tsMR
	return res, fmt.Errorf("ums: retrieve(%q): returning most recent available: %w", k, core.ErrNoCurrentReplica)
}

// repair is the KTS repair hook (§4.2.2): after a counter correction,
// re-stamp the newest stored replica with the corrected timestamp so a
// subsequent retrieve can match last_ts again.
func (s *Service) repair(k core.Key, oldTS, newTS core.Timestamp) {
	env := s.ring.Env()
	env.Go(func() {
		ctx := context.Background()
		var best core.Value
		found := false
		for _, h := range s.set.Hr {
			if val, err := s.client.GetH(ctx, k, h); err == nil {
				if !found || best.TS.Less(val.TS) {
					best = val
					found = true
				}
			}
		}
		if !found || newTS.Less(best.TS) {
			return
		}
		reinsert := core.Value{Data: best.Data, TS: newTS}
		for _, h := range s.set.Hr {
			s.client.PutH(ctx, k, h, reinsert, dht.PutIfNewer)
		}
	})
}

// IsNoCurrent reports whether err is the "stale but available" outcome.
func IsNoCurrent(err error) bool { return errors.Is(err, core.ErrNoCurrentReplica) }
