// Package ums implements the paper's Update Management Service (§3):
// insert stamps data with a KTS timestamp and replicates it at the peers
// responsible for the key under every replication hash function;
// retrieve asks KTS for the last generated timestamp and probes replica
// positions one at a time, returning the first replica that carries it —
// so, unlike the BRICKS baseline, it almost never needs to fetch all
// replicas (Theorem 1: E[probes] < 1/pt).
package ums

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/dht"
	"repro/internal/hashing"
	"repro/internal/kts"
	"repro/internal/network"
	"repro/internal/obs"
)

// Namespace is the storage namespace UMS replicas live in.
const Namespace = "ums"

// ReadRepairer receives retrieve observations: the freshest value a
// retrieve returned plus the probed replica positions that were stale or
// missing. The replica-maintenance subsystem (internal/repair) implements
// it to refresh exactly those positions asynchronously; implementations
// must not block the caller.
type ReadRepairer interface {
	ReadRepair(k core.Key, current core.Value, stale []hashing.Func)
}

// Service is the per-peer UMS instance. Any peer can run inserts and
// retrieves; the heavy lifting happens at the peers responsible for the
// key's replica positions and timestamping.
type Service struct {
	ring    dht.Ring
	set     hashing.Set
	ts      *kts.Service
	client  *dht.Client
	repairs ReadRepairer // nil: read-repair disabled
	tracer  obs.Tracer   // nil: untraced unless the context carries one
}

// New attaches a UMS instance to a peer, wiring it to the peer's KTS
// service. It also registers the KTS repair hook: when recovery or
// inspection raises a counter, the data stamped with the stale timestamp
// is reinserted under the corrected one (§4.2.2).
func New(ring dht.Ring, set hashing.Set, ts *kts.Service) *Service {
	s := &Service{
		ring:   ring,
		set:    set,
		ts:     ts,
		client: dht.NewClient(ring, Namespace),
	}
	ts.SetRepair(s.repair)
	return s
}

// KTS returns the timestamping service this UMS uses.
func (s *Service) KTS() *kts.Service { return s.ts }

// SetReadRepair installs the read-repair sink. Install before serving
// traffic; retrieves read the field without synchronization.
func (s *Service) SetReadRepair(r ReadRepairer) { s.repairs = r }

// SetTracer installs the default op tracer, used when the operation's
// context does not carry one (obs.WithTracer wins). Install before
// serving traffic; operations read the field without synchronization.
func (s *Service) SetTracer(t obs.Tracer) { s.tracer = t }

// Insert implements Figure 2's insert(k, data): generate a timestamp,
// then send (k, {data, ts}) to rsp(k, h) for every h ∈ Hr. Peers keep
// the pair only if the timestamp is newer than what they hold, so of
// concurrent inserts exactly the one with the latest timestamp survives.
func (s *Service) Insert(ctx context.Context, k core.Key, data []byte) (res dht.OpResult, err error) {
	meter := &network.Meter{}
	ctx = network.WithMeter(ctx, meter)
	env := s.ring.Env()
	ctx, finish := dht.TraceOp(ctx, s.tracer, obs.Op{Op: "put", Alg: "ums", Key: string(k)})
	start := env.Now()
	defer func() {
		res.Elapsed = env.Now() - start
		res.Msgs, res.Bytes = meter.Msgs, meter.Bytes
		finish(&res, err)
	}()

	ktsStart := env.Now()
	ts, err := s.ts.GenTS(ctx, k)
	obs.PhasesFrom(ctx).Add(obs.PhaseKTS, env.Now()-ktsStart)
	if err != nil {
		return res, fmt.Errorf("ums: insert(%q): %w", k, err)
	}
	res.TS = ts
	return res, s.replicate(ctx, k, core.Value{Data: data, TS: ts}, &res)
}

// replicate sends val to rsp(k, h) for every h ∈ Hr, counting stored
// replicas into res.
func (s *Service) replicate(ctx context.Context, k core.Key, val core.Value, res *dht.OpResult) error {
	for _, h := range s.set.Hr {
		if cerr := network.CtxError(ctx); cerr != nil {
			return fmt.Errorf("ums: insert(%q): %w", k, cerr)
		}
		if err := s.client.PutH(ctx, k, h, val, dht.PutIfNewer); err == nil {
			res.Stored++
		}
		// A failed put means that replica position is currently
		// unreachable; the insert proceeds — availability of that replica
		// simply suffers, which is the behaviour the analysis models.
	}
	if res.Stored == 0 {
		return fmt.Errorf("ums: insert(%q): no replica stored: %w", k, core.ErrUnreachable)
	}
	return nil
}

// InsertWithTS is Insert for a caller that already holds the key's fresh
// timestamp — one slot of a batched gen_ts round: it replicates
// (k, {data, ts}) without a KTS round trip of its own.
func (s *Service) InsertWithTS(ctx context.Context, k core.Key, data []byte, ts core.Timestamp) (res dht.OpResult, err error) {
	meter := &network.Meter{}
	ctx = network.WithMeter(ctx, meter)
	env := s.ring.Env()
	ctx, finish := dht.TraceOp(ctx, s.tracer, obs.Op{Op: "put", Alg: "ums", Key: string(k)})
	start := env.Now()
	defer func() {
		res.Elapsed = env.Now() - start
		res.Msgs, res.Bytes = meter.Msgs, meter.Bytes
		finish(&res, err)
	}()
	res.TS = ts
	return res, s.replicate(ctx, k, core.Value{Data: data, TS: ts}, &res)
}

// InsertMulti inserts many keys with one KTS round per responsible: a
// batched gen_ts fetches every timestamp first (kts.GenTSBatch groups
// the keys by rsp(k, hts)), then the replica fan-outs run concurrently.
// Outcomes are per key, parallel to keys.
func (s *Service) InsertMulti(ctx context.Context, keys []core.Key, datas [][]byte) ([]dht.OpResult, []error) {
	n := len(keys)
	results := make([]dht.OpResult, n)
	errs := make([]error, n)
	tss, terrs := s.ts.GenTSBatch(ctx, keys)
	if jerr := network.GoJoin(s.ring.Env(), n, 10*time.Millisecond, func(i int) {
		if terrs[i] != nil {
			errs[i] = fmt.Errorf("ums: insert(%q): %w", keys[i], terrs[i])
			return
		}
		results[i], errs[i] = s.InsertWithTS(ctx, keys[i], datas[i], tss[i])
	}); jerr != nil {
		for i := range errs {
			if errs[i] == nil && results[i].TS.IsZero() {
				errs[i] = jerr
			}
		}
	}
	return results, errs
}

// RetrieveMulti retrieves many keys under one policy. At LevelCurrent
// the authoritative last_ts round is batched (one KTS message per
// responsible, kts.LastTSBatch) and each retrieve runs with the proof it
// came back with; the other levels have no KTS round to batch and
// simply fan out. Outcomes are per key, parallel to keys.
func (s *Service) RetrieveMulti(ctx context.Context, keys []core.Key, pol dht.ReadPolicy) ([]dht.OpResult, []error) {
	n := len(keys)
	results := make([]dht.OpResult, n)
	errs := make([]error, n)
	seen := make([]bool, n)
	var tss []core.Timestamp
	var terrs []error
	batched := pol.Level == dht.LevelCurrent && pol.KnownTS.IsZero() && !pol.FloorFirst
	if batched {
		tss, terrs = s.ts.LastTSBatch(ctx, keys)
	}
	if jerr := network.GoJoin(s.ring.Env(), n, 10*time.Millisecond, func(i int) {
		defer func() { seen[i] = true }()
		p := pol
		if batched {
			if terrs[i] != nil {
				errs[i] = fmt.Errorf("ums: retrieve(%q): %w", keys[i], terrs[i])
				return
			}
			if tss[i].IsZero() {
				errs[i] = fmt.Errorf("ums: retrieve(%q): never inserted: %w", keys[i], core.ErrNotFound)
				return
			}
			p.KnownTS = tss[i]
		}
		results[i], errs[i] = s.RetrieveWith(ctx, keys[i], p)
	}); jerr != nil {
		for i := range errs {
			if !seen[i] && errs[i] == nil {
				errs[i] = jerr
			}
		}
	}
	return results, errs
}

// Retrieve implements Figure 2's retrieve(k): fetch the last timestamp
// ts1 from KTS, then probe rsp(k, h) for each h ∈ Hr until a replica
// stamped ts1 appears. If none is reachable, the most recent available
// replica is returned together with core.ErrNoCurrentReplica. This is
// RetrieveWith at the default provably-current level.
func (s *Service) Retrieve(ctx context.Context, k core.Key) (dht.OpResult, error) {
	return s.RetrieveWith(ctx, k, dht.ReadPolicy{})
}

// RetrieveWith is retrieve(k) generalized over an acceptance predicate:
// instead of always requiring KTS's last_ts, probing stops at the first
// replica satisfying the requested consistency level —
//
//   - LevelCurrent: the authoritative last_ts, fetched from KTS first
//     (the paper's Figure 2; verdict Proven);
//   - LevelBounded: a cached last_ts no older than pol.Bound, when this
//     peer holds one, with no KTS round trip (verdict WithinBound);
//     otherwise the authoritative path runs and the answer refreshes
//     the cache;
//   - LevelEventual: the first reachable replica, no KTS round trip
//     (verdict Unknown).
//
// A non-zero pol.Floor (a session's per-key floor) is enforced at every
// level: no successful retrieve returns a replica older than it. With
// pol.FloorFirst the floor itself is the acceptance target — the
// session fast path: one probe typically, zero KTS messages, verdict
// SessionFloor.
//
// When no probed replica satisfies the predicate, the most recent
// available one is returned together with core.ErrNoCurrentReplica
// (Figure 2's data_mr path), and the probed set is handed to
// read-repair.
func (s *Service) RetrieveWith(ctx context.Context, k core.Key, pol dht.ReadPolicy) (res dht.OpResult, err error) {
	meter := &network.Meter{}
	ctx = network.WithMeter(ctx, meter)
	env := s.ring.Env()
	ctx, finish := dht.TraceOp(ctx, s.tracer,
		obs.Op{Op: "get", Alg: "ums", Level: pol.Level.String(), Key: string(k)})
	start := env.Now()
	defer func() {
		res.Elapsed = env.Now() - start
		res.Msgs, res.Bytes = meter.Msgs, meter.Bytes
		finish(&res, err)
	}()

	// Resolve the acceptance target: the timestamp a replica must reach
	// and the currency verdict an accepting replica earns.
	target := core.TSZero
	verdict := dht.CurrencyUnknown
	switch {
	case pol.FloorFirst && !pol.Floor.IsZero():
		// Session fast path: the floor is the bar; no KTS round trip.
		// If no reachable replica meets the floor the probe loop has
		// read every position, so an authoritative last_ts could not
		// surface a fresher replica either — fall through to data_mr.
		target, verdict = pol.Floor, dht.CurrencySessionFloor
		res.Floor = pol.Floor
	case pol.Level == dht.LevelEventual:
		// First reachable replica; a session floor still bounds below.
		target = pol.Floor
		if !pol.Floor.IsZero() {
			verdict = dht.CurrencySessionFloor
		}
		res.Floor = pol.Floor
	case pol.Level == dht.LevelBounded && s.cachedTarget(k, pol, &res):
		target, verdict = res.Floor, dht.CurrencyWithinBound
	case pol.Level == dht.LevelCurrent && !pol.KnownTS.IsZero():
		// The caller already holds the authoritative last_ts (a batched
		// KTS round fetched it): same proof, no second round trip.
		target = pol.KnownTS.Max(pol.Floor)
		verdict = dht.CurrencyProven
		res.Floor = target
	default:
		// LevelCurrent, or LevelBounded without a fresh enough cached
		// floor: the authoritative path (which also refreshes the
		// issuing peer's cache for the next bounded read).
		ktsStart := env.Now()
		ts1, lerr := s.ts.LastTS(ctx, k)
		obs.PhasesFrom(ctx).Add(obs.PhaseKTS, env.Now()-ktsStart)
		if lerr != nil {
			return res, fmt.Errorf("ums: retrieve(%q): %w", k, lerr)
		}
		if ts1.IsZero() {
			return res, fmt.Errorf("ums: retrieve(%q): never inserted: %w", k, core.ErrNotFound)
		}
		target = ts1.Max(pol.Floor)
		verdict = dht.CurrencyProven
		res.Floor = target
	}

	var dataMR []byte // most recent replica seen so far (Figure 2's data_mr)
	tsMR := core.TSZero
	var missed []observation // probed positions that did not meet the target
	for _, h := range s.set.Hr {
		if cerr := network.CtxError(ctx); cerr != nil {
			return res, fmt.Errorf("ums: retrieve(%q): %w", k, cerr)
		}
		res.Probed++
		probeStart := env.Now()
		val, gerr := s.client.GetH(ctx, k, h)
		obs.PhasesFrom(ctx).Add(obs.PhaseProbe, env.Now()-probeStart)
		if gerr != nil {
			missed = append(missed, observation{h: h, missing: true})
			continue // replica unavailable (peer down, data lost, stale lookup)
		}
		res.Retrieved++
		if !val.TS.Less(target) {
			// One acceptable replica found: return it immediately,
			// handing the stale positions seen on the way to
			// read-repair. A zero target (plain eventual) accepts the
			// first fetched replica.
			res.Data, res.TS, res.Currency = val.Data, val.TS, verdict
			s.readRepair(k, val, missed)
			return res, nil
		}
		missed = append(missed, observation{h: h, ts: val.TS})
		if tsMR.Less(val.TS) {
			dataMR, tsMR = val.Data, val.TS
		}
	}
	if dataMR == nil {
		return res, fmt.Errorf("ums: retrieve(%q): no replica available: %w", k, core.ErrNotFound)
	}
	// No replica met the predicate: still refresh the probed set with the
	// most recent available value — PutIfNewer only restores availability,
	// it can never push a replica backwards.
	s.readRepair(k, core.Value{Data: dataMR, TS: tsMR}, missed)
	res.Data, res.TS = dataMR, tsMR
	return res, fmt.Errorf("ums: retrieve(%q): returning most recent available: %w", k, core.ErrNoCurrentReplica)
}

// cachedTarget consults the issuing peer's last-ts cache for a bounded
// read. On a hit within the bound it loads the acceptance floor and its
// age into res and reports true; the retrieve then runs with no KTS
// round trip.
func (s *Service) cachedTarget(k core.Key, pol dht.ReadPolicy, res *dht.OpResult) bool {
	cts, age, ok := s.ts.Cached(k)
	if !ok || age > pol.Bound {
		return false
	}
	res.Floor, res.FloorAge = cts.Max(pol.Floor), age
	return true
}

// observation records one probed replica position that did not carry the
// sought timestamp: either nothing was readable there, or a value behind
// the target.
type observation struct {
	h       hashing.Func
	ts      core.Timestamp
	missing bool
}

// readRepair forwards a retrieve's observation to the installed sink, if
// any, keeping only the positions a PutIfNewer push of the returned
// value could actually improve — missing replicas and those strictly
// behind it (the position that supplied the value itself would reject
// the push). The sink refreshes asynchronously; the retrieve never
// waits.
func (s *Service) readRepair(k core.Key, current core.Value, obs []observation) {
	if s.repairs == nil {
		return
	}
	var stale []hashing.Func
	for _, o := range obs {
		if o.missing || o.ts.Less(current.TS) {
			stale = append(stale, o.h)
		}
	}
	if len(stale) == 0 {
		return
	}
	s.repairs.ReadRepair(k, current, stale)
}

// repair is the KTS repair hook (§4.2.2): after a counter correction,
// re-stamp the newest stored replica with the corrected timestamp so a
// subsequent retrieve can match last_ts again.
func (s *Service) repair(k core.Key, oldTS, newTS core.Timestamp) {
	env := s.ring.Env()
	env.Go(func() {
		ctx := context.Background()
		var best core.Value
		found := false
		for _, h := range s.set.Hr {
			if val, err := s.client.GetH(ctx, k, h); err == nil {
				if !found || best.TS.Less(val.TS) {
					best = val
					found = true
				}
			}
		}
		if !found || newTS.Less(best.TS) {
			return
		}
		reinsert := core.Value{Data: best.Data, TS: newTS}
		for _, h := range s.set.Hr {
			s.client.PutH(ctx, k, h, reinsert, dht.PutIfNewer)
		}
	})
}

// IsNoCurrent reports whether err is the "stale but available" outcome.
func IsNoCurrent(err error) bool { return errors.Is(err, core.ErrNoCurrentReplica) }
