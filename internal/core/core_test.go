package core

import (
	"math"
	"testing"
	"testing/quick"
)

func TestIDBetweenSimple(t *testing.T) {
	cases := []struct {
		id, a, b ID
		want     bool
	}{
		{5, 1, 10, true},
		{1, 1, 10, false},  // open at a
		{10, 1, 10, true},  // closed at b
		{11, 1, 10, false}, // outside
		{0, 10, 2, true},   // wraps past zero
		{11, 10, 2, true},  // wraps, just after a
		{2, 10, 2, true},   // wraps, at b
		{5, 10, 2, false},  // wraps, outside
		{7, 7, 7, true},    // degenerate: whole ring
		{math.MaxUint64, 10, 2, true},
	}
	for _, c := range cases {
		if got := c.id.Between(c.a, c.b); got != c.want {
			t.Errorf("Between(%d in (%d,%d]) = %v, want %v", c.id, c.a, c.b, got, c.want)
		}
	}
}

func TestIDInOpenInterval(t *testing.T) {
	cases := []struct {
		id, a, b ID
		want     bool
	}{
		{5, 1, 10, true},
		{1, 1, 10, false},
		{10, 1, 10, false},
		{0, 10, 2, true},
		{2, 10, 2, false},
		{10, 10, 2, false},
		{7, 7, 7, false}, // whole ring minus the endpoint
		{8, 7, 7, true},
	}
	for _, c := range cases {
		if got := c.id.InOpenInterval(c.a, c.b); got != c.want {
			t.Errorf("InOpenInterval(%d in (%d,%d)) = %v, want %v", c.id, c.a, c.b, got, c.want)
		}
	}
}

// Property: for distinct endpoints, every id is in exactly one of (a,b]
// and (b,a]. The two arcs partition the ring.
func TestIDBetweenPartitionsRing(t *testing.T) {
	f := func(id, a, b ID) bool {
		if a == b {
			return true // degenerate interval covers everything by definition
		}
		in1 := id.Between(a, b)
		in2 := id.Between(b, a)
		return in1 != in2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

// Property: shifting all three points by the same offset never changes
// interval membership (ring intervals are rotation invariant).
func TestIDBetweenRotationInvariant(t *testing.T) {
	f := func(id, a, b, shift ID) bool {
		return id.Between(a, b) == (id+shift).Between(a+shift, b+shift)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestTimestampOrder(t *testing.T) {
	if !TSZero.Less(TS(1)) {
		t.Fatal("zero must precede ts(1)")
	}
	if TS(1).Less(TS(1)) {
		t.Fatal("irreflexive")
	}
	hi := Timestamp{Hi: 1, Lo: 0}
	if !TS(math.MaxUint64).Less(hi) {
		t.Fatal("hi word dominates")
	}
	if got := TS(3).Compare(TS(3)); got != 0 {
		t.Fatalf("Compare equal = %d", got)
	}
	if got := TS(2).Compare(TS(3)); got != -1 {
		t.Fatalf("Compare less = %d", got)
	}
	if got := TS(4).Compare(TS(3)); got != 1 {
		t.Fatalf("Compare greater = %d", got)
	}
}

func TestTimestampNextCarries(t *testing.T) {
	v := Timestamp{Hi: 0, Lo: math.MaxUint64}
	n := v.Next()
	if n.Hi != 1 || n.Lo != 0 {
		t.Fatalf("carry failed: %+v", n)
	}
	if !v.Less(n) {
		t.Fatal("Next must increase")
	}
}

func TestTimestampAdd(t *testing.T) {
	v := Timestamp{Hi: 0, Lo: math.MaxUint64 - 1}
	if got := v.Add(3); got.Hi != 1 || got.Lo != 1 {
		t.Fatalf("Add carry: %+v", got)
	}
	if got := TS(5).Add(7); got != TS(12) {
		t.Fatalf("Add small: %v", got)
	}
}

// Property: Next is strictly monotonic and equals Add(1).
func TestTimestampNextMonotonic(t *testing.T) {
	f := func(hi, lo uint64) bool {
		v := Timestamp{Hi: hi, Lo: lo}
		n := v.Next()
		return v.Less(n) && n == v.Add(1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

// Property: Max is commutative and picks an upper bound.
func TestTimestampMax(t *testing.T) {
	f := func(a, b, c, d uint64) bool {
		x := Timestamp{Hi: a, Lo: b}
		y := Timestamp{Hi: c, Lo: d}
		m := x.Max(y)
		return m == y.Max(x) && !m.Less(x) && !m.Less(y)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestTimestampString(t *testing.T) {
	if got := TS(7).String(); got != "ts(7)" {
		t.Fatalf("String small = %q", got)
	}
	if got := (Timestamp{Hi: 2, Lo: 9}).String(); got != "ts(2:9)" {
		t.Fatalf("String large = %q", got)
	}
}

func TestValueClone(t *testing.T) {
	orig := Value{Data: []byte("abc"), TS: TS(4)}
	cl := orig.Clone()
	cl.Data[0] = 'z'
	if string(orig.Data) != "abc" {
		t.Fatal("Clone must not alias the original buffer")
	}
	if cl.TS != orig.TS {
		t.Fatal("Clone must keep the timestamp")
	}
	empty := Value{TS: TS(1)}.Clone()
	if empty.Data != nil || empty.TS != TS(1) {
		t.Fatalf("Clone of nil data: %+v", empty)
	}
}
