// Package can implements CAN, the Content-Addressable Network
// (Ratnasamy et al., SIGCOMM 2001) — the second DHT the paper discusses
// (§4.2.1.1): a d-dimensional coordinate space partitioned into zones,
// greedy routing between zone neighbors, zone splits on join and
// neighbor takeover on departure.
//
// The package exists to demonstrate the paper's claim that the direct
// counter-transfer algorithm applies beyond Chord: in CAN, too, the next
// responsible for a key is always a neighbor of the current responsible,
// so KTS counters move in O(1) messages on graceful handoffs. can.Node
// implements the same dht.Ring and dht.HandoverRegistrar contracts as
// chord.Node, so KTS/UMS/BRK run on it unchanged.
package can

import (
	"context"
	"fmt"
	"math"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/dht"
	"repro/internal/network"
	"repro/internal/obs"
	"repro/internal/store"
)

// D is the dimensionality of the coordinate space.
const D = 2

// Point is a location in [0,1)^D. Keys map to points by splitting their
// 64-bit ring ID into D fixed-point coordinates.
type Point [D]float64

// PointOf derives the coordinates for a ring position.
func PointOf(id core.ID) Point {
	const bits = 64 / D
	const scale = 1 << bits
	var p Point
	v := uint64(id)
	for i := 0; i < D; i++ {
		p[i] = float64(v&(scale-1)) / scale
		v >>= bits
	}
	return p
}

// Zone is a half-open box [Lo, Hi) in the coordinate space.
type Zone struct {
	Lo, Hi Point
}

// FullZone covers the whole space.
func FullZone() Zone {
	var z Zone
	for i := 0; i < D; i++ {
		z.Hi[i] = 1
	}
	return z
}

// Contains reports whether p lies in the zone.
func (z Zone) Contains(p Point) bool {
	for i := 0; i < D; i++ {
		if p[i] < z.Lo[i] || p[i] >= z.Hi[i] {
			return false
		}
	}
	return true
}

// Volume returns the zone's measure (its share of the key space).
func (z Zone) Volume() float64 {
	v := 1.0
	for i := 0; i < D; i++ {
		v *= z.Hi[i] - z.Lo[i]
	}
	return v
}

// Center returns the zone's midpoint.
func (z Zone) Center() Point {
	var c Point
	for i := 0; i < D; i++ {
		c[i] = (z.Lo[i] + z.Hi[i]) / 2
	}
	return c
}

// Split halves the zone along its longest dimension (ties: lowest
// index), returning the lower and upper halves — CAN's split rule.
func (z Zone) Split() (lower, upper Zone) {
	dim := 0
	size := z.Hi[0] - z.Lo[0]
	for i := 1; i < D; i++ {
		if s := z.Hi[i] - z.Lo[i]; s > size {
			dim, size = i, s
		}
	}
	mid := z.Lo[dim] + size/2
	lower, upper = z, z
	lower.Hi[dim] = mid
	upper.Lo[dim] = mid
	return lower, upper
}

// Abuts reports whether two zones are neighbors: they touch along
// exactly one dimension and overlap in all others.
func (z Zone) Abuts(o Zone) bool {
	touch := 0
	for i := 0; i < D; i++ {
		switch {
		case z.Hi[i] == o.Lo[i] || o.Hi[i] == z.Lo[i]:
			touch++
		case z.Lo[i] < o.Hi[i] && o.Lo[i] < z.Hi[i]:
			// overlapping extent in this dimension
		default:
			return false // disjoint with a gap
		}
	}
	return touch >= 1
}

// DistanceTo returns the Euclidean distance from p to the zone (zero if
// inside) — the greedy routing metric.
func (z Zone) DistanceTo(p Point) float64 {
	sum := 0.0
	for i := 0; i < D; i++ {
		switch {
		case p[i] < z.Lo[i]:
			d := z.Lo[i] - p[i]
			sum += d * d
		case p[i] >= z.Hi[i]:
			d := p[i] - z.Hi[i]
			sum += d * d
		}
	}
	return math.Sqrt(sum)
}

func (z Zone) String() string {
	return fmt.Sprintf("[%.3f,%.3f)x[%.3f,%.3f)", z.Lo[0], z.Hi[0], z.Lo[1], z.Hi[1])
}

// Config tunes the node.
type Config struct {
	// PingEvery is the neighbor liveness probe period. Default 30s.
	PingEvery time.Duration
	// RPCTimeout bounds protocol RPCs; zero uses the transport default.
	RPCTimeout time.Duration
	// MaxRouteSteps bounds one greedy walk. Default 256.
	MaxRouteSteps int
	// NoDataHandoff disables moving stored replicas on zone handoffs
	// (see chord.Config.NoDataHandoff — the paper's DHT model).
	NoDataHandoff bool
	// Store backs the local replica store; nil uses volatile memory.
	Store store.Store
	// Obs registers routing metrics; nil disables instrumentation.
	Obs *obs.Registry
}

func (c Config) withDefaults() Config {
	if c.PingEvery == 0 {
		c.PingEvery = 30 * time.Second
	}
	if c.MaxRouteSteps == 0 {
		c.MaxRouteSteps = 256
	}
	return c
}

// neighbor is this node's view of an adjacent peer. strikes counts
// consecutive failed probe rounds; takeover fires on the second strike,
// not the first, so the one-round-trip window of a graceful leave (the
// leaver goes silent before its Gone notices land) cannot trigger a
// spurious crash takeover that double-claims zones the designated
// successor already absorbed.
type neighbor struct {
	ref     dht.NodeRef
	zones   []Zone
	strikes int
}

// Node is one CAN peer. A node usually owns one zone; after taking over
// for a departed neighbor it may temporarily own several (the original
// protocol's "defragmentation" is deliberately left as background
// repair via re-splits on join).
type Node struct {
	env   network.Env
	ep    network.Endpoint
	cfg   Config
	self  dht.NodeRef
	store *dht.LocalStore

	mu        sync.Mutex
	zones     []Zone
	neighbors map[core.ID]*neighbor
	alive     bool
	started   bool
	handover  []dht.Handover
}

var _ dht.Ring = (*Node)(nil)
var _ dht.HandoverRegistrar = (*Node)(nil)
var _ dht.RingNode = (*Node)(nil)

// New creates a node. Call CreateSpace or Join before Start.
func New(env network.Env, ep network.Endpoint, id core.ID, cfg Config) *Node {
	n := &Node{
		env:       env,
		ep:        ep,
		cfg:       cfg.withDefaults(),
		self:      dht.NodeRef{ID: id, Addr: ep.Addr()},
		store:     dht.NewLocalStore(),
		neighbors: make(map[core.ID]*neighbor),
		alive:     true,
	}
	if cfg.Store != nil {
		n.store = dht.NewLocalStoreOn(cfg.Store)
	}
	if cfg.Obs != nil {
		cfg.Obs.GaugeFunc("dcdht_can_neighbors", "CAN neighbor-table entries on this node.",
			func() float64 {
				n.mu.Lock()
				defer n.mu.Unlock()
				return float64(len(n.neighbors))
			})
		cfg.Obs.GaugeFunc("dcdht_can_zones", "Zones currently owned by this node.",
			func() float64 {
				n.mu.Lock()
				defer n.mu.Unlock()
				return float64(len(n.zones))
			})
	}
	n.registerHandlers()
	dht.RegisterStore(ep, n.store, n.OwnsID)
	return n
}

// Self implements dht.Ring.
func (n *Node) Self() dht.NodeRef { return n.self }

// Endpoint implements dht.Ring.
func (n *Node) Endpoint() network.Endpoint { return n.ep }

// Env implements dht.Ring.
func (n *Node) Env() network.Env { return n.env }

// Store exposes the local replica store.
func (n *Node) Store() *dht.LocalStore { return n.store }

// Alive implements dht.Ring.
func (n *Node) Alive() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.alive
}

// RegisterHandover implements dht.HandoverRegistrar.
func (n *Node) RegisterHandover(h dht.Handover) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.handover = append(n.handover, h)
}

// OwnsID implements dht.Ring: the node is responsible for id iff the
// point of id lies in one of its zones.
func (n *Node) OwnsID(id core.ID) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	if !n.alive {
		return false
	}
	p := PointOf(id)
	for _, z := range n.zones {
		if z.Contains(p) {
			return true
		}
	}
	return false
}

// Zones returns a copy of the owned zones.
func (n *Node) Zones() []Zone {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]Zone, len(n.zones))
	copy(out, n.zones)
	return out
}

// Neighbors returns the current neighbor references.
func (n *Node) Neighbors() []dht.NodeRef {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]dht.NodeRef, 0, len(n.neighbors))
	for _, nb := range n.neighbors {
		out = append(out, nb.ref)
	}
	return out
}

// CreateSpace makes this node the first peer, owning the whole space.
func (n *Node) CreateSpace() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.zones = []Zone{FullZone()}
}

// CreateRing implements dht.RingNode; on CAN "the ring" is the
// coordinate space.
func (n *Node) CreateRing() { n.CreateSpace() }

// Nudge implements dht.RingNode, best-effort. CAN has no cheap
// cross-partition rendezvous: after a split both sides' zone sets still
// tile the full space, so re-merging ownership would need zone
// arbitration, not just a pointer nudge. Nudge therefore only
// re-announces this node's zones to its current neighborhood (refreshing
// peers whose view went stale during the partition); the conformance
// suite exercises heal re-merge only on substrates that declare support.
func (n *Node) Nudge(bootstrap network.Addr) error {
	if !n.Alive() {
		return core.ErrStopped
	}
	n.broadcastUpdate()
	return nil
}

// Crash models a failure: no handoff, the storage backing fails (for the
// CAN substrate's default volatile backing, state is lost).
func (n *Node) Crash() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.alive = false
	n.store.Crash()
}

// distanceTo returns the distance from the node's closest zone to p;
// callers hold n.mu.
func (n *Node) distanceToLocked(p Point) float64 {
	best := math.Inf(1)
	for _, z := range n.zones {
		if d := z.DistanceTo(p); d < best {
			best = d
		}
	}
	return best
}

// call invokes a protocol RPC with the node's per-hop patience; the
// caller's context carries the end-to-end deadline and the meter.
func (n *Node) call(ctx context.Context, to network.Addr, method string, req network.Message) (network.Message, error) {
	return n.ep.Invoke(ctx, to, method, req, network.Call{Timeout: n.cfg.RPCTimeout})
}
