package can

import (
	"context"
	"fmt"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/dht"
	"repro/internal/network"
)

// Join attaches this node: route to the owner of our point, ask it to
// split, adopt the ceded zone and state (replicas and KTS counters — the
// direct algorithm on CAN), then introduce ourselves to the
// neighborhood.
func (n *Node) Join(bootstrap network.Addr) error {
	target := PointOf(n.self.ID)
	// Route from the bootstrap to the owner of our point.
	cur := dht.NodeRef{Addr: bootstrap}
	for step := 0; step < n.cfg.MaxRouteSteps; step++ {
		raw, err := n.call(context.Background(), cur.Addr, methodRouteStep, RouteStepReq{Target: target})
		if err != nil {
			return fmt.Errorf("can: join routing via %s: %w", cur.Addr, err)
		}
		resp := raw.(RouteStepResp)
		if resp.Done {
			cur = resp.Next
			break
		}
		if resp.Next.IsZero() || resp.Next.Addr == cur.Addr {
			return fmt.Errorf("can: join routing stuck at %s: %w", cur.Addr, core.ErrUnreachable)
		}
		cur = resp.Next
	}

	raw, err := n.call(context.Background(), cur.Addr, methodSplit, SplitReq{NewNode: n.self})
	if err != nil {
		return fmt.Errorf("can: join split at %s: %w", cur.Addr, err)
	}
	resp := raw.(SplitResp)
	n.mu.Lock()
	n.zones = []Zone{resp.Zone}
	n.mu.Unlock()
	n.store.Absorb(resp.Items)
	n.acceptServices(resp.Services)
	for _, info := range resp.Neighbors {
		n.applyNeighborInfo(info)
	}
	n.broadcastUpdate()
	return nil
}

// Leave departs gracefully: the neighbor with the smallest total volume
// takes over our zones, replicas and counters (O(1) bulk messages —
// §4.2.1.1's point that the next responsible is a neighbor); everyone
// else learns who covers us now.
func (n *Node) Leave() error {
	n.mu.Lock()
	if !n.alive {
		n.mu.Unlock()
		return core.ErrStopped
	}
	n.alive = false
	zones := append([]Zone(nil), n.zones...)
	type cand struct {
		ref dht.NodeRef
		vol float64
	}
	var cands []cand
	var infos []NeighborInfo
	zonesByID := map[core.ID][]Zone{}
	for _, nb := range n.neighbors {
		v := 0.0
		for _, z := range nb.zones {
			v += z.Volume()
		}
		cands = append(cands, cand{ref: nb.ref, vol: v})
		infos = append(infos, NeighborInfo{Ref: nb.ref, Zones: append([]Zone(nil), nb.zones...)})
		zonesByID[nb.ref.ID] = append([]Zone(nil), nb.zones...)
	}
	n.mu.Unlock()
	if len(cands) == 0 {
		return nil // last node standing; the space dies with it
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].vol != cands[j].vol {
			return cands[i].vol < cands[j].vol
		}
		return cands[i].ref.ID < cands[j].ref.ID
	})
	takeover := cands[0].ref

	everything := func(core.ID) bool { return true }
	var items []dht.Item
	if !n.cfg.NoDataHandoff {
		items = n.store.CollectIf(everything, true)
	}
	req := TakeoverReq{
		From:      n.self,
		Zones:     zones,
		Items:     items,
		Services:  n.collectServices(everything),
		Neighbors: infos,
	}
	var firstErr error
	if _, err := n.call(context.Background(), takeover.Addr, methodTakeover, req); err != nil {
		firstErr = fmt.Errorf("can: leave takeover by %s: %w", takeover.Addr, err)
	}
	// Advertise the successor with its post-takeover zones (its own plus
	// ours), so the remaining neighbors adopt it instead of dropping it.
	succ := NeighborInfo{Ref: takeover, Zones: append(zonesByID[takeover.ID], zones...)}
	for _, c := range cands[1:] {
		if _, err := n.call(context.Background(), c.ref.Addr, methodGone, GoneReq{Departed: n.self, Successor: succ}); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("can: leave notice to %s: %w", c.ref.Addr, err)
		}
	}
	return firstErr
}

// Start launches neighbor liveness probing. When a neighbor dies, the
// probing node adopts its zones if it is the designated takeover peer
// (smallest volume, then smallest ID, among the dead peer's abutting
// neighbors as locally known) — CAN's TAKEOVER protocol simplified to a
// deterministic rule.
func (n *Node) Start() {
	n.mu.Lock()
	if n.started || !n.alive {
		n.mu.Unlock()
		return
	}
	n.started = true
	n.mu.Unlock()

	rng := n.env.Rand("can:" + string(n.self.Addr))
	n.env.Go(func() {
		for n.Alive() {
			d := n.cfg.PingEvery + time.Duration(rng.Int63n(int64(n.cfg.PingEvery)/4+1))
			if err := n.env.Sleep(d); err != nil {
				return
			}
			if !n.Alive() {
				return
			}
			n.probeNeighbors()
		}
	})
}

// probeNeighbors runs one round over the neighbor set, in ID order so a
// replay of the same seed probes in the same sequence. Each probe is a
// zone Update exchange rather than a bare ping: liveness checking and
// view anti-entropy in one message. The exchange is what lets a node
// whose view decayed during compound churn recover — any neighbor that
// still knows it keeps re-introducing itself (and its current zones)
// every period, so stale attributions converge instead of persisting as
// routing black holes.
func (n *Node) probeNeighbors() {
	n.mu.Lock()
	info := NeighborInfo{Ref: n.self, Zones: append([]Zone(nil), n.zones...)}
	refs := make([]*neighbor, 0, len(n.neighbors))
	for _, nb := range n.neighbors {
		refs = append(refs, nb)
	}
	n.mu.Unlock()
	sort.Slice(refs, func(i, j int) bool { return refs[i].ref.ID < refs[j].ref.ID })
	for _, nb := range refs {
		raw, err := n.call(context.Background(), nb.ref.Addr, methodUpdate, UpdateReq{Info: info})
		if err == nil {
			n.applyNeighborInfo(raw.(UpdateResp).Info)
			n.mu.Lock()
			if cur, ok := n.neighbors[nb.ref.ID]; ok {
				cur.strikes = 0
			}
			n.mu.Unlock()
			continue
		}
		n.mu.Lock()
		cur, ok := n.neighbors[nb.ref.ID]
		if ok {
			cur.strikes++
		}
		dead := ok && cur.strikes >= 2
		n.mu.Unlock()
		if dead {
			n.handleDeadNeighbor(nb)
		}
	}
}

// handleDeadNeighbor removes the dead peer and, if this node is the
// designated takeover peer, adopts the orphaned zones. The dead peer's
// store and counters are gone — the indirect algorithm will rebuild
// counters from replicas, exactly the failure path of §4.2.2.
//
// A detector that is NOT designated still attributes the dead zones to
// its view's designated peer: every ex-neighbor of the dead node probes
// it directly and runs this handler, and without the attribution the
// ones that do not abut the actual taker would be left with a black
// hole — greedy walks toward the orphaned region would bounce between
// live nodes that each believe somebody else is closer, a permanent
// routing loop. With it, every detector keeps a pointer covering the
// region; if its designee differs from the actual taker, the designee's
// own routing state carries the walk onward, and the taker's zone
// update corrects the view on the next broadcast.
func (n *Node) handleDeadNeighbor(dead *neighbor) {
	n.mu.Lock()
	delete(n.neighbors, dead.ref.ID)
	// Designated takeover: smallest (volume, ID) among the dead zone's
	// abutting peers in our local view, including ourselves.
	myVol := 0.0
	for _, z := range n.zones {
		myVol += z.Volume()
	}
	bestVol, bestID, bestRef := myVol, n.self.ID, n.self
	for _, nb := range n.neighbors {
		abuts := false
		for _, dz := range dead.zones {
			for _, z := range nb.zones {
				if z.Abuts(dz) {
					abuts = true
				}
			}
		}
		if !abuts {
			continue
		}
		v := 0.0
		for _, z := range nb.zones {
			v += z.Volume()
		}
		if v < bestVol || (v == bestVol && nb.ref.ID < bestID) {
			bestVol, bestID, bestRef = v, nb.ref.ID, nb.ref
		}
	}
	mine := bestID == n.self.ID
	if mine {
		n.zones = append(n.zones, dead.zones...)
	} else if nb, ok := n.neighbors[bestID]; ok {
		nb.zones = append(nb.zones, dead.zones...)
	} else {
		n.neighbors[bestID] = &neighbor{ref: bestRef, zones: append([]Zone(nil), dead.zones...)}
	}
	n.mu.Unlock()
	if mine {
		n.broadcastUpdate()
	}
}

// AssembleSpace wires fresh nodes into a valid partition
// administratively (tests and large simulations): nodes are inserted in
// ID order, each splitting the current owner of its point, then all
// neighbor tables are computed pairwise.
func AssembleSpace(nodes []*Node) {
	if len(nodes) == 0 {
		return
	}
	sorted := make([]*Node, len(nodes))
	copy(sorted, nodes)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].self.ID < sorted[j].self.ID })

	sorted[0].zones = []Zone{FullZone()}
	for _, nd := range sorted[1:] {
		p := PointOf(nd.self.ID)
		// Find the owner and the zone containing p.
		var owner *Node
		zi := -1
	search:
		for _, cand := range sorted {
			for i, z := range cand.zones {
				if len(cand.zones) > 0 && z.Contains(p) {
					owner, zi = cand, i
					break search
				}
			}
		}
		if owner == nil {
			panic("can: assemble found no owner — zones do not tile the space")
		}
		lower, upper := owner.zones[zi].Split()
		joinerZone, keptZone := lower, upper
		if upper.Contains(p) {
			joinerZone, keptZone = upper, lower
		}
		owner.zones[zi] = keptZone
		nd.zones = []Zone{joinerZone}
	}

	// Pairwise neighbor computation.
	for _, a := range sorted {
		a.neighbors = make(map[core.ID]*neighbor)
	}
	for i, a := range sorted {
		for _, b := range sorted[i+1:] {
			if a.abutsLocked(b.zones) {
				a.neighbors[b.self.ID] = &neighbor{ref: b.self, zones: append([]Zone(nil), b.zones...)}
				b.neighbors[a.self.ID] = &neighbor{ref: a.self, zones: append([]Zone(nil), a.zones...)}
			}
		}
	}
}
