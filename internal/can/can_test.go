package can

import (
	"context"
	"errors"
	"fmt"
	"math"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/core"
	"repro/internal/dht"
	"repro/internal/hashing"
	"repro/internal/network/simwire"
	"repro/internal/simnet"
	"repro/internal/stats"
)

func testCfg() Config {
	return Config{PingEvery: 500 * time.Millisecond, RPCTimeout: 200 * time.Millisecond}
}

type testSpace struct {
	t     *testing.T
	k     *simnet.Kernel
	net   *simwire.Network
	nodes []*Node
}

func newTestSpace(t *testing.T, seed int64) *testSpace {
	k := simnet.New(seed)
	net := simwire.New(k, simwire.Config{
		LatencyMS:      stats.Normal{Mean: 5, Variance: 0, Min: 5},
		BandwidthKbps:  stats.Normal{Mean: 1e6, Variance: 0, Min: 1e6},
		DefaultTimeout: 200 * time.Millisecond,
	})
	return &testSpace{t: t, k: k, net: net}
}

func (ts *testSpace) newNode(name string) *Node {
	ep := ts.net.NewEndpoint(name)
	return New(ts.net.Env(), ep, hashing.NodeID(name), testCfg())
}

func (ts *testSpace) do(fn func()) {
	ts.t.Helper()
	done := false
	ts.k.Go(func() {
		fn()
		done = true
	})
	for i := 0; i < 600 && !done; i++ {
		ts.k.Run(ts.k.Now() + 100*time.Millisecond)
	}
	if !done {
		ts.t.Fatal("simulated operation did not complete")
	}
}

func (ts *testSpace) settle(d time.Duration) { ts.k.Run(ts.k.Now() + d) }

// build creates n nodes by sequential protocol joins.
func (ts *testSpace) build(n int, start bool) {
	first := ts.newNode("cn0")
	first.CreateSpace()
	ts.nodes = append(ts.nodes, first)
	for i := 1; i < n; i++ {
		nd := ts.newNode(fmt.Sprintf("cn%d", i))
		ts.do(func() {
			if err := nd.Join(first.Self().Addr); err != nil {
				ts.t.Errorf("join cn%d: %v", i, err)
			}
		})
		ts.nodes = append(ts.nodes, nd)
	}
	if start {
		for _, nd := range ts.nodes {
			nd.Start()
		}
	}
}

// checkPartition asserts zones of live nodes tile the space: volumes sum
// to 1 and random points have exactly one owner.
func (ts *testSpace) checkPartition() {
	ts.t.Helper()
	vol := 0.0
	for _, nd := range ts.nodes {
		if !nd.Alive() {
			continue
		}
		for _, z := range nd.Zones() {
			vol += z.Volume()
		}
	}
	if math.Abs(vol-1) > 1e-9 {
		ts.t.Errorf("zone volumes sum to %.12f, want 1", vol)
	}
	rng := ts.k.NewRand("partition")
	for i := 0; i < 200; i++ {
		id := core.ID(rng.Uint64())
		owners := 0
		for _, nd := range ts.nodes {
			if nd.Alive() && nd.OwnsID(id) {
				owners++
			}
		}
		if owners != 1 {
			ts.t.Errorf("point %v has %d owners", PointOf(id), owners)
		}
	}
}

func TestZoneSplitGeometry(t *testing.T) {
	z := FullZone()
	lower, upper := z.Split()
	if lower.Volume()+upper.Volume() != z.Volume() {
		t.Fatal("split must preserve volume")
	}
	if !lower.Abuts(upper) {
		t.Fatal("halves must abut")
	}
	if lower.Contains(upper.Center()) || upper.Contains(lower.Center()) {
		t.Fatal("halves must be disjoint")
	}
}

// Property: splitting any zone yields two disjoint abutting halves whose
// volumes sum to the original, and every point stays covered by exactly
// one half.
func TestZoneSplitProperty(t *testing.T) {
	f := func(a, b, c, d uint16, seed uint64) bool {
		z := FullZone()
		// Shrink to a random sub-zone through a few deterministic splits.
		for i := 0; i < 4; i++ {
			lo, hi := z.Split()
			if (seed>>uint(i))&1 == 0 {
				z = lo
			} else {
				z = hi
			}
		}
		lo, hi := z.Split()
		if math.Abs(lo.Volume()+hi.Volume()-z.Volume()) > 1e-12 {
			return false
		}
		p := PointOf(core.ID(seed))
		if !z.Contains(p) {
			return true // point outside; nothing to check
		}
		inLo, inHi := lo.Contains(p), hi.Contains(p)
		return inLo != inHi
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestPointOfInUnitSquare(t *testing.T) {
	f := func(id core.ID) bool {
		p := PointOf(id)
		for i := 0; i < D; i++ {
			if p[i] < 0 || p[i] >= 1 {
				return false
			}
		}
		return FullZone().Contains(p)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestJoinsPartitionSpace(t *testing.T) {
	ts := newTestSpace(t, 1)
	ts.build(16, false)
	ts.checkPartition()
}

func TestAssembleSpacePartition(t *testing.T) {
	ts := newTestSpace(t, 2)
	for i := 0; i < 64; i++ {
		ts.nodes = append(ts.nodes, ts.newNode(fmt.Sprintf("cn%d", i)))
	}
	AssembleSpace(ts.nodes)
	ts.checkPartition()
}

func TestLookupFindsOwner(t *testing.T) {
	ts := newTestSpace(t, 3)
	ts.build(24, false)
	rng := ts.k.NewRand("targets")
	for i := 0; i < 40; i++ {
		target := core.ID(rng.Uint64())
		origin := ts.nodes[rng.Intn(len(ts.nodes))]
		var want *Node
		for _, nd := range ts.nodes {
			if nd.OwnsID(target) {
				want = nd
				break
			}
		}
		ts.do(func() {
			ref, _, err := origin.Lookup(context.Background(), target)
			if err != nil {
				t.Errorf("lookup: %v", err)
				return
			}
			if ref.ID != want.Self().ID {
				t.Errorf("lookup %v = %s, want %s", PointOf(target), ref.ID, want.Self().ID)
			}
		})
	}
}

func TestPutGetOnCAN(t *testing.T) {
	ts := newTestSpace(t, 4)
	ts.build(12, false)
	client := dht.NewClient(ts.nodes[3], "test")
	h := hashing.Salted{Salt: "h0"}
	ts.do(func() {
		val := core.Value{Data: []byte("can-data"), TS: core.TS(1)}
		if err := client.PutH(context.Background(), "key", h, val, dht.PutOverwrite); err != nil {
			t.Errorf("put: %v", err)
			return
		}
		got, err := client.GetH(context.Background(), "key", h)
		if err != nil {
			t.Errorf("get: %v", err)
			return
		}
		if string(got.Data) != "can-data" {
			t.Errorf("got %q", got.Data)
		}
	})
}

func TestGracefulLeaveHandsOver(t *testing.T) {
	ts := newTestSpace(t, 5)
	ts.build(10, false)
	client := dht.NewClient(ts.nodes[0], "test")
	h := hashing.Salted{Salt: "h0"}
	keys := make([]core.Key, 30)
	ts.do(func() {
		for i := range keys {
			keys[i] = core.Key(fmt.Sprintf("ck-%d", i))
			val := core.Value{Data: []byte(keys[i]), TS: core.TS(1)}
			if err := client.PutH(context.Background(), keys[i], h, val, dht.PutOverwrite); err != nil {
				t.Errorf("put: %v", err)
			}
		}
	})
	leaver := ts.nodes[4]
	ts.do(func() {
		if err := leaver.Leave(); err != nil {
			t.Errorf("leave: %v", err)
		}
	})
	ts.net.Kill(leaver.Self().Addr)
	ts.settle(2 * time.Second)
	ts.checkPartition()
	ts.do(func() {
		for _, k := range keys {
			got, err := client.GetH(context.Background(), k, h)
			if err != nil {
				t.Errorf("get %s after leave: %v", k, err)
				continue
			}
			if string(got.Data) != string(k) {
				t.Errorf("get %s = %q", k, got.Data)
			}
		}
	})
}

func TestFailureTakeover(t *testing.T) {
	ts := newTestSpace(t, 6)
	ts.build(10, true)
	ts.settle(2 * time.Second)
	victim := ts.nodes[5]
	victim.Crash()
	ts.net.Kill(victim.Self().Addr)
	ts.settle(5 * time.Second) // several ping rounds
	ts.checkPartition()
	// Lookups over the healed space still work.
	rng := ts.k.NewRand("post-fail")
	for i := 0; i < 15; i++ {
		target := core.ID(rng.Uint64())
		origin := ts.nodes[rng.Intn(len(ts.nodes))]
		if !origin.Alive() {
			continue
		}
		ts.do(func() {
			if _, _, err := origin.Lookup(context.Background(), target); err != nil {
				t.Errorf("post-failure lookup: %v", err)
			}
		})
	}
}

func TestCrashedNodeRefusesOps(t *testing.T) {
	ts := newTestSpace(t, 7)
	ts.build(3, false)
	nd := ts.nodes[1]
	nd.Crash()
	ts.do(func() {
		if _, _, err := nd.Lookup(context.Background(), 1); !errors.Is(err, core.ErrStopped) {
			t.Errorf("lookup from crashed: %v", err)
		}
		if err := nd.Leave(); !errors.Is(err, core.ErrStopped) {
			t.Errorf("leave of crashed: %v", err)
		}
	})
	if nd.OwnsID(1) {
		t.Fatal("crashed node owns nothing")
	}
}

func TestNeighborsAreSymmetricAfterAssemble(t *testing.T) {
	ts := newTestSpace(t, 8)
	for i := 0; i < 20; i++ {
		ts.nodes = append(ts.nodes, ts.newNode(fmt.Sprintf("cn%d", i)))
	}
	AssembleSpace(ts.nodes)
	byID := map[core.ID]*Node{}
	for _, nd := range ts.nodes {
		byID[nd.Self().ID] = nd
	}
	for _, nd := range ts.nodes {
		for _, ref := range nd.Neighbors() {
			other := byID[ref.ID]
			found := false
			for _, back := range other.Neighbors() {
				if back.ID == nd.Self().ID {
					found = true
				}
			}
			if !found {
				t.Fatalf("neighbor relation not symmetric: %s -> %s", nd.Self().ID, ref.ID)
			}
		}
	}
}
