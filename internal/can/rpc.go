package can

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/dht"
	"repro/internal/network"
)

// Protocol method names.
const (
	methodRouteStep = "can.RouteStep"
	methodSplit     = "can.Split"
	methodTakeover  = "can.Takeover"
	methodUpdate    = "can.Update"
	methodGone      = "can.Gone"
	methodPing      = "can.Ping"
	methodState     = "can.State"
)

// RouteStepReq advances a greedy walk toward Target.
type RouteStepReq struct {
	Target  Point
	Exclude []core.ID
}

// RouteStepResp concludes (Done: the responder owns the point) or names
// the next hop.
type RouteStepResp struct {
	Done bool
	Next dht.NodeRef
}

// SplitReq is a joiner asking the owner of its point to split.
type SplitReq struct{ NewNode dht.NodeRef }

// SplitResp carries the joiner's new zone, the ceded state, and the
// neighborhood to introduce itself to.
type SplitResp struct {
	Zone      Zone
	Items     []dht.Item
	Services  map[string]network.Message
	Neighbors []NeighborInfo
}

// WireSize charges the bulk payload.
func (r SplitResp) WireSize() int { return bulkSize(r.Items) }

// NeighborInfo advertises a peer and its zones.
type NeighborInfo struct {
	Ref   dht.NodeRef
	Zones []Zone
}

// TakeoverReq hands a departing node's zones to the takeover neighbor.
type TakeoverReq struct {
	From      dht.NodeRef
	Zones     []Zone
	Items     []dht.Item
	Services  map[string]network.Message
	Neighbors []NeighborInfo
}

// WireSize charges the bulk payload.
func (r TakeoverReq) WireSize() int { return bulkSize(r.Items) }

// TakeoverResp acknowledges a takeover.
type TakeoverResp struct{}

// UpdateReq advertises the sender's current zones to a neighbor.
type UpdateReq struct{ Info NeighborInfo }

// UpdateResp returns the receiver's own info so both sides stay fresh.
type UpdateResp struct{ Info NeighborInfo }

// GoneReq tells neighbors a peer left and who covers its zones now.
type GoneReq struct {
	Departed  dht.NodeRef
	Successor NeighborInfo
}

// GoneResp acknowledges a Gone.
type GoneResp struct{}

// PingReq probes liveness.
type PingReq struct{}

// PingResp acknowledges a ping.
type PingResp struct{}

// StateReq asks for a node's zones and neighbors (tests, diagnostics).
type StateReq struct{}

// StateResp is the snapshot.
type StateResp struct {
	Info      NeighborInfo
	Neighbors []NeighborInfo
}

func bulkSize(items []dht.Item) int {
	n := network.DefaultWireSize
	for _, it := range items {
		n += 40 + len(it.Qual) + len(it.Val.Data)
	}
	return n
}

func init() {
	network.RegisterMessage(
		RouteStepReq{}, RouteStepResp{}, SplitReq{}, SplitResp{},
		TakeoverReq{}, TakeoverResp{}, UpdateReq{}, UpdateResp{},
		GoneReq{}, GoneResp{}, PingReq{}, PingResp{},
		StateReq{}, StateResp{}, NeighborInfo{}, Zone{}, Point{},
	)
}

func (n *Node) registerHandlers() {
	n.ep.Handle(methodRouteStep, func(_ network.Addr, req network.Message) (network.Message, error) {
		if !n.Alive() {
			return nil, core.ErrStopped
		}
		r := req.(RouteStepReq)
		return n.routeStep(r.Target, toSet(r.Exclude)), nil
	})
	n.ep.Handle(methodPing, func(network.Addr, network.Message) (network.Message, error) {
		if !n.Alive() {
			return nil, core.ErrStopped
		}
		return PingResp{}, nil
	})
	n.ep.Handle(methodState, func(network.Addr, network.Message) (network.Message, error) {
		if !n.Alive() {
			return nil, core.ErrStopped
		}
		n.mu.Lock()
		defer n.mu.Unlock()
		resp := StateResp{Info: NeighborInfo{Ref: n.self, Zones: append([]Zone(nil), n.zones...)}}
		for _, nb := range n.neighbors {
			resp.Neighbors = append(resp.Neighbors, NeighborInfo{Ref: nb.ref, Zones: append([]Zone(nil), nb.zones...)})
		}
		return resp, nil
	})
	n.ep.Handle(methodSplit, func(_ network.Addr, req network.Message) (network.Message, error) {
		if !n.Alive() {
			return nil, core.ErrStopped
		}
		return n.handleSplit(req.(SplitReq))
	})
	n.ep.Handle(methodTakeover, func(_ network.Addr, req network.Message) (network.Message, error) {
		if !n.Alive() {
			return nil, core.ErrStopped
		}
		n.handleTakeover(req.(TakeoverReq))
		return TakeoverResp{}, nil
	})
	n.ep.Handle(methodUpdate, func(_ network.Addr, req network.Message) (network.Message, error) {
		if !n.Alive() {
			return nil, core.ErrStopped
		}
		n.applyNeighborInfo(req.(UpdateReq).Info)
		n.mu.Lock()
		defer n.mu.Unlock()
		return UpdateResp{Info: NeighborInfo{Ref: n.self, Zones: append([]Zone(nil), n.zones...)}}, nil
	})
	n.ep.Handle(methodGone, func(_ network.Addr, req network.Message) (network.Message, error) {
		if !n.Alive() {
			return nil, core.ErrStopped
		}
		r := req.(GoneReq)
		n.mu.Lock()
		delete(n.neighbors, r.Departed.ID)
		n.mu.Unlock()
		n.applyNeighborInfo(r.Successor)
		return GoneResp{}, nil
	})
}

func toSet(ids []core.ID) map[core.ID]bool {
	if len(ids) == 0 {
		return nil
	}
	m := make(map[core.ID]bool, len(ids))
	for _, id := range ids {
		m[id] = true
	}
	return m
}

// routeStep is one greedy hop: done if a local zone contains the target,
// otherwise the non-excluded neighbor closest to the target.
func (n *Node) routeStep(target Point, exclude map[core.ID]bool) RouteStepResp {
	n.mu.Lock()
	defer n.mu.Unlock()
	for _, z := range n.zones {
		if z.Contains(target) {
			return RouteStepResp{Done: true, Next: n.self}
		}
	}
	var best *neighbor
	bestDist := n.distanceToLocked(target)
	for _, nb := range n.neighbors {
		if exclude[nb.ref.ID] {
			continue
		}
		d := math_Inf
		for _, z := range nb.zones {
			if dz := z.DistanceTo(target); dz < d {
				d = dz
			}
		}
		if d < bestDist || (best == nil && d < math_Inf) {
			// Strictly decreasing distance prevents loops; if no
			// neighbor improves, fall back to the closest one anyway
			// (possible right after zone churn).
			if d < bestDist {
				best, bestDist = nb, d
			} else if best == nil {
				best, bestDist = nb, d
			}
		}
	}
	if best == nil {
		// No local zone contains the target and every neighbor is
		// excluded (or there are none): routing has no way forward.
		// Answering Done here would hand the caller a non-owner; a zero
		// Next tells it to give up on this path instead.
		return RouteStepResp{}
	}
	return RouteStepResp{Next: best.ref}
}

const math_Inf = 1e18

// applyNeighborInfo installs or refreshes a neighbor entry, dropping it
// if its zones no longer abut ours.
func (n *Node) applyNeighborInfo(info NeighborInfo) {
	if info.Ref.ID == n.self.ID || info.Ref.IsZero() {
		return
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.abutsLocked(info.Zones) {
		n.neighbors[info.Ref.ID] = &neighbor{ref: info.Ref, zones: info.Zones}
	} else {
		delete(n.neighbors, info.Ref.ID)
	}
}

// abutsLocked reports whether any of the zones touches any owned zone.
func (n *Node) abutsLocked(zones []Zone) bool {
	for _, mine := range n.zones {
		for _, z := range zones {
			if mine.Abuts(z) || mine == z {
				return true
			}
		}
	}
	return false
}

// handleSplit serves a joiner: split the zone containing its point, cede
// the half holding the point with all state in it, and introduce the
// neighborhood.
func (n *Node) handleSplit(req SplitReq) (SplitResp, error) {
	joinerPoint := PointOf(req.NewNode.ID)
	n.mu.Lock()
	zi := -1
	for i, z := range n.zones {
		if z.Contains(joinerPoint) {
			zi = i
			break
		}
	}
	if zi < 0 {
		n.mu.Unlock()
		return SplitResp{}, fmt.Errorf("can: split: %v not in my zones: %w", joinerPoint, core.ErrNotResponsible)
	}
	lower, upper := n.zones[zi].Split()
	joinerZone, keptZone := lower, upper
	if upper.Contains(joinerPoint) {
		joinerZone, keptZone = upper, lower
	}
	n.zones[zi] = keptZone
	// Neighborhood snapshot: our neighbors plus ourselves.
	infos := []NeighborInfo{{Ref: n.self, Zones: append([]Zone(nil), n.zones...)}}
	for _, nb := range n.neighbors {
		infos = append(infos, NeighborInfo{Ref: nb.ref, Zones: append([]Zone(nil), nb.zones...)})
	}
	n.mu.Unlock()

	ceded := func(id core.ID) bool { return joinerZone.Contains(PointOf(id)) }
	var items []dht.Item
	if !n.cfg.NoDataHandoff {
		items = n.store.CollectIf(ceded, true)
	}
	services := n.collectServices(ceded)
	// Refresh our own neighbors with the shrunk zone.
	n.broadcastUpdate()
	return SplitResp{Zone: joinerZone, Items: items, Services: services, Neighbors: infos}, nil
}

// handleTakeover absorbs a departing neighbor's zones and state.
func (n *Node) handleTakeover(req TakeoverReq) {
	n.mu.Lock()
	n.zones = append(n.zones, req.Zones...)
	delete(n.neighbors, req.From.ID)
	n.mu.Unlock()
	n.store.Absorb(req.Items)
	n.acceptServices(req.Services)
	for _, info := range req.Neighbors {
		n.applyNeighborInfo(info)
	}
	n.broadcastUpdate()
}

// broadcastUpdate advertises the current zones to every neighbor
// asynchronously and refreshes our view from their replies.
func (n *Node) broadcastUpdate() {
	n.mu.Lock()
	info := NeighborInfo{Ref: n.self, Zones: append([]Zone(nil), n.zones...)}
	targets := make([]dht.NodeRef, 0, len(n.neighbors))
	for _, nb := range n.neighbors {
		targets = append(targets, nb.ref)
	}
	n.mu.Unlock()
	for _, ref := range targets {
		ref := ref
		n.env.Go(func() {
			if raw, err := n.call(context.Background(), ref.Addr, methodUpdate, UpdateReq{Info: info}); err == nil {
				n.applyNeighborInfo(raw.(UpdateResp).Info)
			}
		})
	}
}

func (n *Node) collectServices(ceded func(core.ID) bool) map[string]network.Message {
	n.mu.Lock()
	hooks := make([]dht.Handover, len(n.handover))
	copy(hooks, n.handover)
	n.mu.Unlock()
	var out map[string]network.Message
	for _, h := range hooks {
		if msg := h.Collect(ceded); msg != nil {
			if out == nil {
				out = make(map[string]network.Message)
			}
			out[h.Name()] = msg
		}
	}
	return out
}

func (n *Node) acceptServices(payloads map[string]network.Message) {
	if len(payloads) == 0 {
		return
	}
	n.mu.Lock()
	hooks := make([]dht.Handover, len(n.handover))
	copy(hooks, n.handover)
	n.mu.Unlock()
	for _, h := range hooks {
		if msg, ok := payloads[h.Name()]; ok {
			h.Accept(msg)
		}
	}
}

// Lookup implements dht.Ring by iterative greedy routing. The context
// bounds the walk and carries the meter the hops are charged to.
func (n *Node) Lookup(ctx context.Context, target core.ID) (dht.NodeRef, int, error) {
	if !n.Alive() {
		return dht.NodeRef{}, 0, fmt.Errorf("can: lookup from dead node: %w", core.ErrStopped)
	}
	p := PointOf(target)
	exclude := map[core.ID]bool{}
	hops := 0
	var lastErr error
	for attempt := 0; attempt < 3; attempt++ {
		if err := network.CtxError(ctx); err != nil {
			return dht.NodeRef{}, hops, fmt.Errorf("can: lookup %v: %w", p, err)
		}
		ref, h, err := n.lookupOnce(ctx, p, exclude)
		hops += h
		if err == nil {
			return ref, hops, nil
		}
		lastErr = err
		if !errors.Is(err, core.ErrTimeout) && !errors.Is(err, core.ErrUnreachable) {
			break
		}
	}
	return dht.NodeRef{}, hops, fmt.Errorf("can: lookup %v: %w", p, lastErr)
}

func (n *Node) lookupOnce(ctx context.Context, target Point, exclude map[core.ID]bool) (dht.NodeRef, int, error) {
	cur := n.self
	hops := 0
	visited := map[core.ID]bool{}
	for step := 0; step < n.cfg.MaxRouteSteps; step++ {
		var resp RouteStepResp
		if cur.ID == n.self.ID {
			resp = n.routeStep(target, exclude)
		} else {
			if visited[cur.ID] {
				// cur is live but its view loops: it forwarded this walk
				// away once already, so it does not own the target.
				// Exclude it so the retry routes around the confusion
				// (stale zone attributions after compound churn).
				exclude[cur.ID] = true
				return dht.NodeRef{}, hops, fmt.Errorf("can: routing loop at %s: %w", cur.ID, core.ErrUnreachable)
			}
			visited[cur.ID] = true
			raw, err := n.call(ctx, cur.Addr, methodRouteStep,
				RouteStepReq{Target: target, Exclude: setToList(exclude)})
			hops++
			if err != nil {
				if errors.Is(err, core.ErrTimeout) || errors.Is(err, core.ErrStopped) ||
					errors.Is(err, core.ErrUnreachable) {
					exclude[cur.ID] = true
					return dht.NodeRef{}, hops, fmt.Errorf("can: peer %s dead during lookup: %w", cur.ID, core.ErrTimeout)
				}
				return dht.NodeRef{}, hops, err
			}
			resp = raw.(RouteStepResp)
		}
		if resp.Done {
			return resp.Next, hops, nil
		}
		if resp.Next.IsZero() || resp.Next.ID == cur.ID {
			// cur answered not-Done with nowhere to forward: it is a
			// proven non-owner at a dead end, so routing around it on
			// the retry is safe.
			if cur.ID != n.self.ID {
				exclude[cur.ID] = true
			}
			return dht.NodeRef{}, hops, fmt.Errorf("can: routing stuck at %s: %w", cur.ID, core.ErrUnreachable)
		}
		cur = resp.Next
	}
	return dht.NodeRef{}, hops, fmt.Errorf("can: routing exceeded %d steps: %w", n.cfg.MaxRouteSteps, core.ErrUnreachable)
}

func setToList(m map[core.ID]bool) []core.ID {
	if len(m) == 0 {
		return nil
	}
	out := make([]core.ID, 0, len(m))
	for id := range m {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
