// Package brk implements the baseline the paper compares against: the
// BRICKS approach (Knezevic et al., GLOBE 2005, the paper's [13]).
//
// BRICKS replicates data under multiple correlated keys and tracks
// currency with per-replica version numbers. Its two structural
// weaknesses — both demonstrated by this package's tests and measured by
// the evaluation harness — are:
//
//  1. a retrieve must fetch ALL replicas and pick the highest version, so
//     its cost scales linearly with the replication factor (Figures 9
//     and 10), and
//  2. concurrent updates can assign the same version number to different
//     data, making it impossible to decide which replica is current.
package brk

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/dht"
	"repro/internal/hashing"
	"repro/internal/network"
	"repro/internal/obs"
)

// Namespace is the storage namespace BRK replicas live in (kept apart
// from UMS replicas so both can run over one DHT deployment).
const Namespace = "brk"

// Service is the per-peer BRK instance. The paper's correlated keys are
// realised with the same replication hash functions Hr that UMS uses, so
// both algorithms place replicas identically and differ only in their
// update/retrieve protocols.
type Service struct {
	ring   dht.Ring
	set    hashing.Set
	client *dht.Client
	tracer obs.Tracer // nil: untraced unless the context carries one
}

// New attaches a BRK instance to a peer.
func New(ring dht.Ring, set hashing.Set) *Service {
	return &Service{ring: ring, set: set, client: dht.NewClient(ring, Namespace)}
}

// SetTracer installs the default op tracer, used when the operation's
// context does not carry one (obs.WithTracer wins). Install before
// serving traffic; operations read the field without synchronization.
func (s *Service) SetTracer(t obs.Tracer) { s.tracer = t }

// Insert performs a BRICKS update: read the replicas to learn the
// current highest version, then write every replica with version+1.
// Two concurrent inserts can read the same highest version and thus
// write the same new version — the undecidability the paper points out.
func (s *Service) Insert(ctx context.Context, k core.Key, data []byte) (res dht.OpResult, err error) {
	meter := &network.Meter{}
	ctx = network.WithMeter(ctx, meter)
	env := s.ring.Env()
	ctx, finish := dht.TraceOp(ctx, s.tracer, obs.Op{Op: "put", Alg: "brk", Key: string(k)})
	start := env.Now()
	defer func() {
		res.Elapsed = env.Now() - start
		res.Msgs, res.Bytes = meter.Msgs, meter.Bytes
		finish(&res, err)
	}()

	// Learn the highest stored version.
	highest := core.TSZero
	for _, h := range s.set.Hr {
		if cerr := network.CtxError(ctx); cerr != nil {
			return res, fmt.Errorf("brk: insert(%q): %w", k, cerr)
		}
		res.Probed++
		probeStart := env.Now()
		val, gerr := s.client.GetH(ctx, k, h)
		obs.PhasesFrom(ctx).Add(obs.PhaseProbe, env.Now()-probeStart)
		if gerr == nil {
			res.Retrieved++
			highest = highest.Max(val.TS)
		}
	}
	version := highest.Next()
	res.TS = version
	val := core.Value{Data: data, TS: version}
	for _, h := range s.set.Hr {
		if cerr := network.CtxError(ctx); cerr != nil {
			return res, fmt.Errorf("brk: insert(%q): %w", k, cerr)
		}
		// Version ties overwrite arbitrarily (PutIfNewerOrEqual): with
		// concurrent same-version writers, which data survives at each
		// replica is timing-dependent — the baseline's flaw.
		if err := s.client.PutH(ctx, k, h, val, dht.PutIfNewerOrEqual); err == nil {
			res.Stored++
		}
	}
	if res.Stored == 0 {
		return res, fmt.Errorf("brk: insert(%q): no replica stored: %w", k, core.ErrUnreachable)
	}
	return res, nil
}

// Retrieve fetches ALL replicas and returns one with the highest version
// — there is no way to stop early, because any unprobed replica might
// hold a higher version. With duplicate versions the returned data is
// whichever replica was fetched first, and currency cannot be decided.
func (s *Service) Retrieve(ctx context.Context, k core.Key) (res dht.OpResult, err error) {
	meter := &network.Meter{}
	ctx = network.WithMeter(ctx, meter)
	env := s.ring.Env()
	ctx, finish := dht.TraceOp(ctx, s.tracer, obs.Op{Op: "get", Alg: "brk", Key: string(k)})
	start := env.Now()
	defer func() {
		res.Elapsed = env.Now() - start
		res.Msgs, res.Bytes = meter.Msgs, meter.Bytes
		finish(&res, err)
	}()

	var best []byte
	bestVersion := core.TSZero
	for _, h := range s.set.Hr {
		if cerr := network.CtxError(ctx); cerr != nil {
			return res, fmt.Errorf("brk: retrieve(%q): %w", k, cerr)
		}
		res.Probed++
		probeStart := env.Now()
		val, err := s.client.GetH(ctx, k, h)
		obs.PhasesFrom(ctx).Add(obs.PhaseProbe, env.Now()-probeStart)
		if err != nil {
			continue
		}
		res.Retrieved++
		if best == nil || bestVersion.Less(val.TS) {
			best, bestVersion = val.Data, val.TS
		}
	}
	if best == nil {
		return res, fmt.Errorf("brk: retrieve(%q): no replica available: %w", k, core.ErrNotFound)
	}
	res.Data, res.TS = best, bestVersion
	// BRK cannot prove currency; the verdict stays Unknown by
	// construction (OpResult.Current() is therefore always false).
	return res, nil
}
