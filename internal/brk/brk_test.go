package brk_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/exp"
)

func deploy(t *testing.T, seed int64) *exp.Deployment {
	t.Helper()
	sc := exp.Table1Scenario(exp.AlgBRK, 24, seed)
	d := exp.NewDeployment(exp.DeployConfig{
		Peers:    24,
		Replicas: 5,
		Seed:     seed,
		Chord:    sc.Chord,
	})
	d.RunFor(time.Minute)
	return d
}

func TestInsertIncrementsVersion(t *testing.T) {
	d := deploy(t, 1)
	d.Do(func() {
		r1, err := d.Peers[0].BRK.Insert(context.Background(), "k", []byte("v1"))
		if err != nil {
			t.Errorf("insert1: %v", err)
			return
		}
		if r1.TS != core.TS(1) {
			t.Errorf("first version = %v", r1.TS)
		}
		r2, err := d.Peers[3].BRK.Insert(context.Background(), "k", []byte("v2"))
		if err != nil {
			t.Errorf("insert2: %v", err)
			return
		}
		if r2.TS != core.TS(2) {
			t.Errorf("second version = %v", r2.TS)
		}
		got, err := d.Peers[7].BRK.Retrieve(context.Background(), "k")
		if err != nil {
			t.Errorf("retrieve: %v", err)
			return
		}
		if string(got.Data) != "v2" || got.TS != core.TS(2) {
			t.Errorf("retrieve = %q v%v", got.Data, got.TS)
		}
	})
}

func TestRetrieveAlwaysProbesAllReplicas(t *testing.T) {
	d := deploy(t, 2)
	d.Do(func() {
		if _, err := d.Peers[0].BRK.Insert(context.Background(), "k", []byte("v")); err != nil {
			t.Errorf("insert: %v", err)
			return
		}
		r, err := d.Peers[5].BRK.Retrieve(context.Background(), "k")
		if err != nil {
			t.Errorf("retrieve: %v", err)
			return
		}
		if r.Probed != 5 {
			t.Errorf("probed %d, BRK must always probe |Hr|=5", r.Probed)
		}
		if r.Current() {
			t.Error("BRK must never prove currency")
		}
	})
}

func TestRetrieveMissingKey(t *testing.T) {
	d := deploy(t, 3)
	d.Do(func() {
		if _, err := d.Peers[0].BRK.Retrieve(context.Background(), "ghost"); !errors.Is(err, core.ErrNotFound) {
			t.Errorf("err = %v", err)
		}
	})
}

// The baseline's documented flaw (§1, §6): two concurrent updates read
// the same highest version and write the same new version, so replicas
// disagree on the data under one version number and currency becomes
// undecidable.
func TestConcurrentUpdatesCollideOnVersion(t *testing.T) {
	d := deploy(t, 4)
	d.Do(func() {
		if _, err := d.Peers[0].BRK.Insert(context.Background(), "flaw", []byte("base")); err != nil {
			t.Errorf("seed insert: %v", err)
		}
	})
	versions := make(chan core.Timestamp, 2)
	d.K.Go(func() {
		if r, err := d.Peers[1].BRK.Insert(context.Background(), "flaw", []byte("writer-A")); err == nil {
			versions <- r.TS
		}
	})
	d.K.Go(func() {
		if r, err := d.Peers[9].BRK.Insert(context.Background(), "flaw", []byte("writer-B")); err == nil {
			versions <- r.TS
		}
	})
	d.RunFor(5 * time.Minute)
	close(versions)
	var got []core.Timestamp
	for v := range versions {
		got = append(got, v)
	}
	if len(got) != 2 {
		t.Fatalf("expected both concurrent inserts to 'succeed', got %d", len(got))
	}
	if got[0] != got[1] {
		t.Fatalf("this schedule should collide versions, got %v and %v", got[0], got[1])
	}
	// Both writers believe they own version 2; which data a reader sees
	// is an accident of replica timing — BRK cannot tell.
	d.Do(func() {
		r, err := d.Peers[4].BRK.Retrieve(context.Background(), "flaw")
		if err != nil {
			t.Errorf("retrieve: %v", err)
			return
		}
		if r.TS != got[0] {
			t.Errorf("retrieved version %v, want the collided %v", r.TS, got[0])
		}
		if s := string(r.Data); s != "writer-A" && s != "writer-B" {
			t.Errorf("retrieved %q", s)
		}
	})
}
