package analysis

import (
	"math"
	"math/rand"
	"testing"
)

func TestPaperExamplePt035(t *testing.T) {
	// §3.3: "if at least 35% of available replicas are current then the
	// expected number of retrieved replicas is less than 3".
	e := ExpectedRetrievals(0.35, 10)
	if e >= 3 {
		t.Fatalf("E(X) at pt=0.35 = %.3f, paper promises < 3", e)
	}
	if b := UpperBound(0.35, 10); e >= b {
		t.Fatalf("E(X)=%.3f must be below bound %.3f", e, b)
	}
}

func TestPaperExampleIndirect(t *testing.T) {
	// §4.2.2: "if the probability of currency and availability is about
	// 30%, then by using 13 replication hash functions, ps is more than
	// 99%".
	if ps := IndirectSuccessProb(0.3, 13); ps <= 0.99 {
		t.Fatalf("ps(0.3, 13) = %.4f, paper promises > 0.99", ps)
	}
	if n := ReplicasForSuccess(0.3, 0.99); n != 13 {
		t.Fatalf("ReplicasForSuccess(0.3, 0.99) = %d, want 13", n)
	}
}

func TestExpectedRetrievalsEdges(t *testing.T) {
	if e := ExpectedRetrievals(1, 10); e != 1 {
		t.Fatalf("pt=1 ⇒ E=1, got %v", e)
	}
	if e := ExpectedRetrievals(0, 10); e != 10 {
		t.Fatalf("pt=0 ⇒ E=|Hr|, got %v", e)
	}
	if e := ExpectedRetrievals(0.5, 0); e != 0 {
		t.Fatalf("hr=0 ⇒ E=0, got %v", e)
	}
	// Monotone: higher pt, fewer probes.
	prev := math.Inf(1)
	for pt := 0.05; pt < 1; pt += 0.05 {
		e := ExpectedRetrievals(pt, 10)
		if e > prev {
			t.Fatalf("E(X) not monotone at pt=%.2f", pt)
		}
		prev = e
	}
}

func TestTheorem1BoundHolds(t *testing.T) {
	for _, hr := range []int{1, 5, 10, 20, 40} {
		for pt := 0.01; pt < 1; pt += 0.01 {
			e := ExpectedRetrievals(pt, hr)
			if e > UpperBound(pt, hr)+1e-9 {
				t.Fatalf("E(X)=%.4f exceeds min(1/pt,|Hr|)=%.4f at pt=%.2f hr=%d",
					e, UpperBound(pt, hr), pt, hr)
			}
		}
	}
}

func TestIndirectSuccessEdges(t *testing.T) {
	if ps := IndirectSuccessProb(0.5, 0); ps != 0 {
		t.Fatalf("hr=0: %v", ps)
	}
	if ps := IndirectSuccessProb(0, 10); ps != 0 {
		t.Fatalf("pt=0: %v", ps)
	}
	if ps := IndirectSuccessProb(1, 10); ps != 1 {
		t.Fatalf("pt=1: %v", ps)
	}
	// More replicas help.
	if IndirectSuccessProb(0.2, 5) >= IndirectSuccessProb(0.2, 20) {
		t.Fatal("ps must grow with |Hr|")
	}
}

func TestMonteCarloMatchesClosedForm(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, tc := range []struct {
		pt float64
		hr int
	}{{0.35, 10}, {0.1, 10}, {0.8, 5}, {0.05, 40}} {
		analytic := ExpectedRetrievals(tc.pt, tc.hr)
		mc := MonteCarloRetrievals(rng, tc.pt, tc.hr, 200000)
		if math.Abs(analytic-mc) > 0.05*analytic+0.02 {
			t.Fatalf("pt=%.2f hr=%d: analytic %.4f vs MC %.4f", tc.pt, tc.hr, analytic, mc)
		}
		ps := IndirectSuccessProb(tc.pt, tc.hr)
		mcPS := MonteCarloIndirectSuccess(rng, tc.pt, tc.hr, 200000)
		if math.Abs(ps-mcPS) > 0.01 {
			t.Fatalf("pt=%.2f hr=%d: ps %.4f vs MC %.4f", tc.pt, tc.hr, ps, mcPS)
		}
	}
}

func TestMonteCarloEdges(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	if MonteCarloRetrievals(rng, 0.5, 10, 0) != 0 {
		t.Fatal("zero trials must return 0")
	}
	if MonteCarloIndirectSuccess(rng, 0.5, 0, 100) != 0 {
		t.Fatal("hr=0 must return 0")
	}
}

func TestReplicasForSuccessEdges(t *testing.T) {
	if ReplicasForSuccess(0, 0.99) != 0 || ReplicasForSuccess(1, 0.99) != 0 {
		t.Fatal("degenerate pt")
	}
	if ReplicasForSuccess(0.3, 1) != math.MaxInt32 {
		t.Fatal("certainty needs unbounded replicas")
	}
	// Verify the returned count actually reaches the target.
	for _, pt := range []float64{0.1, 0.3, 0.5} {
		n := ReplicasForSuccess(pt, 0.999)
		if IndirectSuccessProb(pt, n) < 0.999 {
			t.Fatalf("pt=%.1f: %d replicas do not reach target", pt, n)
		}
		if n > 1 && IndirectSuccessProb(pt, n-1) >= 0.999 {
			t.Fatalf("pt=%.1f: %d not minimal", pt, n)
		}
	}
}
