// Package analysis implements the paper's probabilistic cost model
// (§3.3 and §4.2.2): the expected number of replicas UMS retrieves to
// find a current one, its 1/pt upper bound (Theorem 1), and the success
// probability of the indirect initialization algorithm. A Monte Carlo
// estimator cross-checks the closed forms and the simulator.
package analysis

import (
	"math"
	"math/rand"
)

// ExpectedRetrievals evaluates Equation 1: the expected number of
// replicas UMS retrieves, E(X) = Σ_{i=1..|Hr|} i · pt · (1-pt)^(i-1),
// for probability of currency-and-availability pt and |Hr| replicas.
//
// The sum is truncated at hr because UMS never probes more than |Hr|
// positions. Following the paper's expectation over the probe sequence,
// the tail case "no current replica found after |Hr| probes" costs hr
// probes with probability (1-pt)^hr.
func ExpectedRetrievals(pt float64, hr int) float64 {
	if hr <= 0 {
		return 0
	}
	if pt <= 0 {
		return float64(hr)
	}
	if pt >= 1 {
		return 1
	}
	e := 0.0
	for i := 1; i <= hr; i++ {
		e += float64(i) * pt * math.Pow(1-pt, float64(i-1))
	}
	// All-stale walks probe every replica position.
	e += float64(hr) * math.Pow(1-pt, float64(hr))
	return e
}

// UpperBound is Theorem 1's bound, E(X) < 1/pt, combined with Equation
// 5's cap at the number of replicas: min(1/pt, |Hr|).
func UpperBound(pt float64, hr int) float64 {
	if pt <= 0 {
		return float64(hr)
	}
	return math.Min(1/pt, float64(hr))
}

// IndirectSuccessProb is §4.2.2's ps = 1 - (1-pt)^|Hr|: the probability
// the indirect algorithm finds at least one current replica.
func IndirectSuccessProb(pt float64, hr int) float64 {
	if hr <= 0 {
		return 0
	}
	if pt <= 0 {
		return 0
	}
	if pt >= 1 {
		return 1
	}
	return 1 - math.Pow(1-pt, float64(hr))
}

// ReplicasForSuccess returns the smallest |Hr| that pushes ps above the
// target success probability, e.g. pt=0.3 and target 0.99 → 13 replicas
// (the paper's example).
func ReplicasForSuccess(pt, target float64) int {
	if pt <= 0 || pt >= 1 || target <= 0 {
		return 0
	}
	if target >= 1 {
		return math.MaxInt32
	}
	// 1-(1-pt)^n >= target  ⇔  n >= log(1-target)/log(1-pt)
	n := math.Log(1-target) / math.Log(1-pt)
	return int(math.Ceil(n))
}

// MonteCarloRetrievals simulates UMS's probe loop directly: each of the
// trials draws |Hr| replica states (current-and-available with
// probability pt) and counts probes until the first current replica (or
// hr when none exists). It returns the mean probe count.
func MonteCarloRetrievals(rng *rand.Rand, pt float64, hr, trials int) float64 {
	if trials <= 0 || hr <= 0 {
		return 0
	}
	total := 0
	for t := 0; t < trials; t++ {
		probes := hr // pessimistic: no current replica anywhere
		for i := 1; i <= hr; i++ {
			if rng.Float64() < pt {
				probes = i
				break
			}
		}
		total += probes
	}
	return float64(total) / float64(trials)
}

// MonteCarloIndirectSuccess estimates ps by sampling: one trial succeeds
// when at least one of the |Hr| replicas is current and available.
func MonteCarloIndirectSuccess(rng *rand.Rand, pt float64, hr, trials int) float64 {
	if trials <= 0 || hr <= 0 {
		return 0
	}
	ok := 0
	for t := 0; t < trials; t++ {
		for i := 0; i < hr; i++ {
			if rng.Float64() < pt {
				ok++
				break
			}
		}
	}
	return float64(ok) / float64(trials)
}
