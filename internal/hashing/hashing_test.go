package hashing

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/core"
)

func TestDeterminism(t *testing.T) {
	for _, f := range []Func{
		Salted{Salt: "x"},
		Universal{A: 12345, B: 6789, Tag: "u"},
	} {
		a := f.ID("some-key")
		b := f.ID("some-key")
		if a != b {
			t.Fatalf("%s: not deterministic: %v vs %v", f.Name(), a, b)
		}
	}
}

func TestFamiliesDiffer(t *testing.T) {
	set := NewSet(10)
	key := core.Key("agenda:room-12")
	seen := map[core.ID]string{}
	for _, f := range set.Hr {
		id := f.ID(key)
		if prev, dup := seen[id]; dup {
			t.Fatalf("functions %s and %s collide on %q", prev, f.Name(), key)
		}
		seen[id] = f.Name()
	}
	if _, dup := seen[set.HTS.ID(key)]; dup {
		t.Fatalf("hts collides with a replication function on %q", key)
	}
}

func TestFamilyNamesUnique(t *testing.T) {
	for _, fs := range [][]Func{
		NewSaltedFamily("hr", 30),
		NewUniversalFamily(7, 30),
	} {
		names := map[string]bool{}
		for _, f := range fs {
			if names[f.Name()] {
				t.Fatalf("duplicate name %q", f.Name())
			}
			names[f.Name()] = true
		}
	}
}

func TestUniversalFamilySeeded(t *testing.T) {
	a := NewUniversalFamily(42, 5)
	b := NewUniversalFamily(42, 5)
	for i := range a {
		if a[i].(Universal) != b[i].(Universal) {
			t.Fatalf("same seed must give identical family members at %d", i)
		}
	}
	c := NewUniversalFamily(43, 5)
	same := true
	for i := range a {
		if a[i].(Universal) != c[i].(Universal) {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds should give different families")
	}
}

// Spread: hashing many keys must fill the 64-bit ring roughly uniformly.
// We check that each of 16 equal ring sectors receives a sensible share.
func testSpread(t *testing.T, f Func) {
	t.Helper()
	const n = 32768
	const sectors = 16
	counts := make([]int, sectors)
	for i := 0; i < n; i++ {
		id := f.ID(core.Key(fmt.Sprintf("key-%d", i)))
		counts[uint64(id)>>60]++
	}
	want := float64(n) / sectors
	for s, c := range counts {
		if math.Abs(float64(c)-want) > want*0.25 {
			t.Fatalf("%s: sector %d has %d keys, want ~%.0f", f.Name(), s, c, want)
		}
	}
}

func TestSaltedSpread(t *testing.T)    { testSpread(t, Salted{Salt: "spread"}) }
func TestUniversalSpread(t *testing.T) { testSpread(t, NewUniversalFamily(9, 1)[0]) }

// Pairwise independence smoke test: for two random members of the
// universal family, the joint distribution of (h1(x) bucket, h2(x)
// bucket) over many keys should be close to the product of the marginals.
func TestUniversalPairwiseBuckets(t *testing.T) {
	fam := NewUniversalFamily(11, 2)
	const n = 65536
	const b = 4
	joint := [b][b]int{}
	for i := 0; i < n; i++ {
		k := core.Key(fmt.Sprintf("pk-%d", i))
		x := uint64(fam[0].ID(k)) >> 62
		y := uint64(fam[1].ID(k)) >> 62
		joint[x][y]++
	}
	want := float64(n) / (b * b)
	for i := 0; i < b; i++ {
		for j := 0; j < b; j++ {
			if math.Abs(float64(joint[i][j])-want) > want*0.2 {
				t.Fatalf("joint bucket (%d,%d) = %d, want ~%.0f", i, j, joint[i][j], want)
			}
		}
	}
}

func TestMulMod61(t *testing.T) {
	cases := []struct{ a, b, want uint64 }{
		{0, 12345, 0},
		{1, mersenne61 - 1, mersenne61 - 1},
		{2, mersenne61 - 1, mersenne61 - 2}, // 2(p-1) = 2p-2 ≡ p-2
		{mersenne61 - 1, mersenne61 - 1, 1}, // (p-1)^2 ≡ 1
	}
	for _, c := range cases {
		if got := mulMod61(c.a, c.b); got != c.want {
			t.Fatalf("mulMod61(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

// Property: mulMod61 agrees with big-integer arithmetic emulated via
// repeated folding for in-range operands, and stays in range.
func TestMulMod61InRange(t *testing.T) {
	f := func(a, b uint64) bool {
		a %= mersenne61
		b %= mersenne61
		got := mulMod61(a, b)
		return got < mersenne61
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10000}); err != nil {
		t.Fatal(err)
	}
}

// Property: mulMod61 is commutative and distributes over addition mod p.
func TestMulMod61Algebra(t *testing.T) {
	f := func(a, b, c uint64) bool {
		a %= mersenne61
		b %= mersenne61
		c %= mersenne61
		if mulMod61(a, b) != mulMod61(b, a) {
			return false
		}
		left := mulMod61(a, fold61(b+c))
		right := fold61(mulMod61(a, b) + mulMod61(a, c))
		return left == right
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10000}); err != nil {
		t.Fatal(err)
	}
}

func TestNodeIDDistinct(t *testing.T) {
	ids := map[core.ID]bool{}
	for i := 0; i < 1000; i++ {
		id := NodeID(fmt.Sprintf("10.0.0.%d:%d", i%256, 4000+i))
		if ids[id] {
			t.Fatalf("node id collision at %d", i)
		}
		ids[id] = true
	}
}

func TestNewUniversalSetSizes(t *testing.T) {
	set := NewUniversalSet(3, 13)
	if len(set.Hr) != 13 {
		t.Fatalf("|Hr| = %d", len(set.Hr))
	}
	if set.HTS == nil {
		t.Fatal("missing hts")
	}
}
