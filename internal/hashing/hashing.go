// Package hashing implements the hash machinery the paper assumes: a set
// H of pairwise independent hash functions over the DHT key space, from
// which the replication set Hr ⊂ H and the timestamping function hts are
// drawn (§3.1, §4.1). It also derives node identifiers for the DHT
// substrates.
//
// Two families are provided:
//
//   - Universal: the classic pairwise-independent construction
//     h(x) = ((a·x + b) mod p) over the Mersenne prime p = 2^61 - 1
//     (Luby, "Pseudorandomness and Cryptographic Applications", the
//     paper's reference [15]); and
//   - Salted: SHA-1 with a per-function salt, the pragmatic choice for
//     well-spread ring positions, used as the default.
//
// Both map application keys to 64-bit ring positions (core.ID).
package hashing

import (
	"crypto/sha1"
	"encoding/binary"
	"fmt"
	"math/bits"
	"math/rand"

	"repro/internal/core"
)

// Func is one hash function h ∈ H: it maps an application key to a ring
// position. rsp(k, h) is then the peer responsible for h.ID(k).
type Func interface {
	// ID returns the ring position for key k.
	ID(k core.Key) core.ID
	// Name identifies the function; replica storage is namespaced by it
	// so the same key replicated under different functions never
	// collides on a peer that happens to be responsible for several.
	Name() string
}

// mersenne61 is the prime modulus for the universal family.
const mersenne61 = (1 << 61) - 1

// fingerprint folds an application key into a 64-bit integer input for
// the arithmetic family (FNV-1a; only used as the x in a·x+b, the
// pairwise independence comes from the random a, b).
func fingerprint(k core.Key) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(k); i++ {
		h ^= uint64(k[i])
		h *= prime
	}
	return h
}

// mulMod61 computes (a * b) mod (2^61 - 1) using 128-bit intermediate
// arithmetic and Mersenne folding.
func mulMod61(a, b uint64) uint64 {
	hi, lo := bits.Mul64(a, b)
	// a*b = hi·2^64 + lo = hi·8·2^61 + lo ≡ hi·8 + lo (mod 2^61-1) after
	// folding each part down.
	r := fold61(lo) + fold61(hi*8)
	return fold61(r)
}

// fold61 reduces x modulo 2^61-1 (x < 2^63 keeps the sum in range).
func fold61(x uint64) uint64 {
	x = (x >> 61) + (x & mersenne61)
	if x >= mersenne61 {
		x -= mersenne61
	}
	return x
}

// Universal is one member of the pairwise-independent family
// h(x) = ((a·x + b) mod p) with 1 <= a < p, 0 <= b < p.
type Universal struct {
	A, B uint64
	Tag  string
}

// ID maps the key to a 64-bit ring position. The arithmetic yields a
// value in [0, 2^61-1); it is spread over the full 64-bit ring by a
// left shift of 3 (the low bits are refilled from the product so the ring
// remains well covered).
func (u Universal) ID(k core.Key) core.ID {
	x := fold61(fingerprint(k))
	v := fold61(mulMod61(u.A, x) + u.B)
	return core.ID(v<<3 | v>>58)
}

// Name implements Func.
func (u Universal) Name() string { return u.Tag }

// NewUniversalFamily draws n pairwise-independent functions from the
// universal family using the given seed. Functions drawn with the same
// seed are identical across runs.
func NewUniversalFamily(seed int64, n int) []Func {
	rng := rand.New(rand.NewSource(seed))
	fs := make([]Func, n)
	for i := range fs {
		a := uint64(rng.Int63n(mersenne61-1)) + 1 // a ∈ [1, p)
		b := uint64(rng.Int63n(mersenne61))       // b ∈ [0, p)
		fs[i] = Universal{A: a, B: b, Tag: fmt.Sprintf("u%d", i)}
	}
	return fs
}

// Salted hashes with SHA-1 over a salt prefix. Distinct salts give
// effectively independent functions with excellent spread.
type Salted struct {
	Salt string
}

// ID implements Func.
func (s Salted) ID(k core.Key) core.ID {
	h := sha1.New()
	h.Write([]byte(s.Salt))
	h.Write([]byte{0})
	h.Write([]byte(k))
	sum := h.Sum(nil)
	return core.ID(binary.BigEndian.Uint64(sum[:8]))
}

// Name implements Func.
func (s Salted) Name() string { return s.Salt }

// NewSaltedFamily builds n salted SHA-1 functions with the given prefix,
// e.g. prefix "hr" yields hr0..hr(n-1).
func NewSaltedFamily(prefix string, n int) []Func {
	fs := make([]Func, n)
	for i := range fs {
		fs[i] = Salted{Salt: fmt.Sprintf("%s%d", prefix, i)}
	}
	return fs
}

// Set bundles the hash functions one deployment uses: the replication
// functions Hr and the timestamping function hts. All peers must agree on
// the Set (it is part of the deployment configuration, like the DHT's
// own hash function).
type Set struct {
	// Hr are the replication hash functions; |Hr| is the replication
	// factor (Table 1 default: 10).
	Hr []Func
	// HTS is the timestamping hash function (§4.1.1).
	HTS Func
}

// NewSet builds the default (salted) hash set with nr replication
// functions.
func NewSet(nr int) Set {
	return Set{
		Hr:  NewSaltedFamily("hr", nr),
		HTS: Salted{Salt: "hts"},
	}
}

// NewUniversalSet builds a hash set from the arithmetic universal family,
// as the paper's reference [15] constructs it.
func NewUniversalSet(seed int64, nr int) Set {
	fam := NewUniversalFamily(seed, nr+1)
	return Set{Hr: fam[:nr], HTS: fam[nr]}
}

// NodeID derives a ring identifier for a peer from its address, the way
// Chord hashes IP:port pairs.
func NodeID(addr string) core.ID {
	return Salted{Salt: "node"}.ID(core.Key(addr))
}
