package dht

import (
	"time"

	"repro/internal/core"
)

// OpResult reports one insert or retrieve operation with the metrics the
// evaluation tracks: response time, communication cost (messages/bytes)
// and, for retrieves, how many replicas were probed before a current one
// was found — the paper's nums (§3.3).
type OpResult struct {
	// Data is the returned replica (retrieves only).
	Data []byte
	// TS is the timestamp/version attached to the operation's replica.
	TS core.Timestamp
	// Current reports whether the returned replica was provably current
	// (carried the last generated timestamp). BRK can never prove
	// currency; it reports Current when all replicas agreed on a single
	// maximum version.
	Current bool
	// Probed counts geth calls issued (the paper's nums for UMS; always
	// |Hr| for BRK).
	Probed int
	// Retrieved counts replicas actually obtained (available peers).
	Retrieved int
	// Stored counts replicas written (inserts only).
	Stored int
	// Msgs and Bytes are the operation's total communication cost,
	// including work the responsible of timestamping performed on the
	// caller's behalf.
	Msgs  int
	Bytes int
	// Elapsed is the operation's response time.
	Elapsed time.Duration
}
