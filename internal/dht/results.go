package dht

import (
	"time"

	"repro/internal/core"
)

// OpResult reports one insert or retrieve operation with the metrics the
// evaluation tracks: response time, communication cost (messages/bytes)
// and, for retrieves, how many replicas were probed before a current one
// was found — the paper's nums (§3.3).
type OpResult struct {
	// Data is the returned replica (retrieves only).
	Data []byte
	// TS is the timestamp/version attached to the operation's replica.
	TS core.Timestamp
	// Currency is the freshness verdict for the returned replica
	// (retrieves only): Proven when it carried KTS's last_ts,
	// WithinBound when it met a cached floor within the requested
	// staleness bound, SessionFloor when it met a session's per-key
	// floor, Unknown otherwise. BRK can never prove currency, so its
	// retrieves always report Unknown.
	Currency Currency
	// Floor is the timestamp evidence Currency was judged against: the
	// (possibly cached) last_ts for Proven/WithinBound, the session
	// floor for SessionFloor, zero for Unknown.
	Floor core.Timestamp
	// FloorAge is how old the Floor evidence was when the acceptance
	// decision used it: zero for a fresh KTS answer or a session floor,
	// the cache entry's age for WithinBound.
	FloorAge time.Duration
	// Probed counts geth calls issued (the paper's nums for UMS; always
	// |Hr| for BRK).
	Probed int
	// Retrieved counts replicas actually obtained (available peers).
	Retrieved int
	// Stored counts replicas written (inserts only).
	Stored int
	// Msgs and Bytes are the operation's total communication cost,
	// including work the responsible of timestamping performed on the
	// caller's behalf.
	Msgs  int
	Bytes int
	// Elapsed is the operation's response time.
	Elapsed time.Duration
}

// Current reports whether the returned replica was provably current —
// it carried (at least) the last timestamp KTS generated for the key.
// Kept as the compatibility accessor for the old `Current bool` field;
// Currency is the source of truth.
func (r OpResult) Current() bool { return r.Currency == CurrencyProven }
