package dht

import (
	"context"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/network"
	"repro/internal/obs"
)

// PathCacheConfig tunes a CachedRing.
type PathCacheConfig struct {
	// Capacity bounds the number of cached arcs; zero selects 128.
	Capacity int
	// ProbeTimeout is the patience granted one ownership probe; zero
	// selects 2s. A probe that times out is treated like a refusal: the
	// entry is evicted and the lookup falls back to the inner ring.
	ProbeTimeout time.Duration
	// Obs receives cache metrics when non-nil.
	Obs *obs.Registry
}

func (c *PathCacheConfig) defaults() {
	if c.Capacity <= 0 {
		c.Capacity = 128
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = 2 * time.Second
	}
}

// cacheArc records that every position on the arc [From, To] was owned
// by Ref when last verified. From is the smallest (most counter-
// clockwise) position this issuer has resolved to Ref; To is Ref's ring
// position. On a ring where a node owns the arc up to and including its
// own position, any id inside the recorded arc has the same owner — a
// later lookup of a nearby id is answered from the cache after a single
// confirmation probe instead of a full routing walk.
type cacheArc struct {
	From, To core.ID
	Ref      NodeRef
	lastUse  uint64
}

func (a *cacheArc) covers(id core.ID) bool {
	return id == a.From || id.Between(a.From, a.To)
}

// CachedRing wraps a Ring with a Kademlia-style lookup path cache: key
// arcs learned from prior lookups short-circuit routing to a single
// ownership probe. Correctness never rests on the cache — before a
// cached owner is used it is asked (MethodOwns) whether it still owns
// the position, and a refusal, timeout or dead peer evicts the entry
// and falls back to the inner ring's lookup. Even a probe that lies
// (answered just before a handover) is harmless: the store's own
// owns-check rejects misdirected puts/gets with ErrNotResponsible and
// the client re-resolves.
//
// CachedRing implements Ring and forwards handover registration, so it
// drops in wherever the services expect the substrate.
type CachedRing struct {
	inner Ring
	cfg   PathCacheConfig

	mu   sync.Mutex
	arcs []*cacheArc
	seq  uint64

	hits      *obs.Counter
	misses    *obs.Counter
	fallbacks *obs.Counter
}

var (
	_ Ring              = (*CachedRing)(nil)
	_ HandoverRegistrar = (*CachedRing)(nil)
)

// NewCachedRing wraps inner with a path cache.
func NewCachedRing(inner Ring, cfg PathCacheConfig) *CachedRing {
	cfg.defaults()
	c := &CachedRing{inner: inner, cfg: cfg}
	r := cfg.Obs
	c.hits = r.Counter("dcdht_pathcache_hits_total", "Lookups answered from the path cache (probe confirmed).")
	c.misses = r.Counter("dcdht_pathcache_misses_total", "Lookups with no covering cache arc.")
	c.fallbacks = r.Counter("dcdht_pathcache_fallbacks_total", "Cache arcs evicted after a failed or refused ownership probe.")
	r.GaugeFunc("dcdht_pathcache_arcs", "Cached lookup arcs currently held.", func() float64 {
		c.mu.Lock()
		defer c.mu.Unlock()
		return float64(len(c.arcs))
	})
	return c
}

// Inner returns the wrapped ring.
func (c *CachedRing) Inner() Ring { return c.inner }

func (c *CachedRing) Self() NodeRef              { return c.inner.Self() }
func (c *CachedRing) Endpoint() network.Endpoint { return c.inner.Endpoint() }
func (c *CachedRing) Env() network.Env           { return c.inner.Env() }
func (c *CachedRing) OwnsID(id core.ID) bool     { return c.inner.OwnsID(id) }
func (c *CachedRing) Alive() bool                { return c.inner.Alive() }

// RegisterHandover forwards to the substrate when it supports handover.
func (c *CachedRing) RegisterHandover(h Handover) {
	if r, ok := c.inner.(HandoverRegistrar); ok {
		r.RegisterHandover(h)
	}
}

// Lookup resolves id through the cache when a verified arc covers it,
// and through the inner ring otherwise. hops counts remote probes: a
// confirmed cache hit costs exactly one (zero when the cached owner is
// this peer), a miss costs the inner lookup's hops.
func (c *CachedRing) Lookup(ctx context.Context, id core.ID) (NodeRef, int, error) {
	if ref, hops, ok := c.tryCache(ctx, id); ok {
		return ref, hops, nil
	}
	ref, hops, err := c.inner.Lookup(ctx, id)
	if err == nil {
		c.learn(id, ref)
	}
	return ref, hops, err
}

// tryCache probes the covering arc, if any. It reports ok only when the
// cached owner confirmed ownership; every other outcome (no arc, probe
// failure, refusal) leaves the caller to the inner lookup.
func (c *CachedRing) tryCache(ctx context.Context, id core.ID) (NodeRef, int, bool) {
	c.mu.Lock()
	var arc *cacheArc
	for _, a := range c.arcs {
		if a.covers(id) {
			arc = a
			c.seq++
			a.lastUse = c.seq
			break
		}
	}
	c.mu.Unlock()
	if arc == nil {
		c.misses.Inc()
		return NodeRef{}, 0, false
	}
	ref := arc.Ref
	if ref.Addr == c.inner.Self().Addr {
		// Our own liveness view is free and authoritative.
		if c.inner.OwnsID(id) {
			c.hits.Inc()
			return c.inner.Self(), 0, true
		}
		c.evict(arc)
		return NodeRef{}, 0, false
	}
	resp, err := c.inner.Endpoint().Invoke(ctx, ref.Addr, MethodOwns,
		OwnsReq{RingID: id}, network.Call{Timeout: c.cfg.ProbeTimeout})
	if err != nil || !resp.(OwnsResp).Owns {
		c.evict(arc)
		return NodeRef{}, 0, false
	}
	c.hits.Inc()
	return ref, 1, true
}

// evict removes a stale arc and counts the fallback.
func (c *CachedRing) evict(arc *cacheArc) {
	c.fallbacks.Inc()
	c.mu.Lock()
	for i, a := range c.arcs {
		if a == arc {
			c.arcs = append(c.arcs[:i], c.arcs[i+1:]...)
			break
		}
	}
	c.mu.Unlock()
}

// learn records that id resolved to ref. An existing arc ending at the
// same owner widens to cover id; otherwise a new arc [id, ref.ID] is
// inserted, evicting the least recently used arc at capacity.
func (c *CachedRing) learn(id core.ID, ref NodeRef) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.seq++
	for _, a := range c.arcs {
		if a.Ref.Addr != ref.Addr || a.To != ref.ID {
			continue
		}
		a.lastUse = c.seq
		if !a.covers(id) {
			// id is counter-clockwise of the arc: widen toward it. The
			// owner's arc is contiguous, so everything between id and
			// the owner shares the owner.
			a.From = id
		}
		return
	}
	if len(c.arcs) >= c.cfg.Capacity {
		lru := 0
		for i := range c.arcs {
			if c.arcs[i].lastUse < c.arcs[lru].lastUse {
				lru = i
			}
		}
		c.arcs = append(c.arcs[:lru], c.arcs[lru+1:]...)
	}
	c.arcs = append(c.arcs, &cacheArc{From: id, To: ref.ID, Ref: ref, lastUse: c.seq})
}

// PathCacheStats is a point-in-time view of cache effectiveness.
type PathCacheStats struct {
	Hits, Misses, Fallbacks uint64
	Arcs                    int
}

// Stats returns current counters. Deterministic under simulation.
func (c *CachedRing) Stats() PathCacheStats {
	c.mu.Lock()
	arcs := len(c.arcs)
	c.mu.Unlock()
	return PathCacheStats{
		Hits:      c.hits.Value(),
		Misses:    c.misses.Value(),
		Fallbacks: c.fallbacks.Value(),
		Arcs:      arcs,
	}
}
