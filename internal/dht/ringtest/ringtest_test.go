package ringtest

import (
	"math"
	"testing"
	"time"

	"repro/internal/can"
	"repro/internal/chord"
	"repro/internal/core"
	"repro/internal/dht"
	"repro/internal/network"
	"repro/internal/onehop"
)

// The three substrates, each under the same sweep. A future ring only
// needs a Factory here to inherit the whole suite.

func chordFactory() Factory {
	return Factory{
		Name: "chord",
		New: func(env network.Env, ep network.Endpoint, id core.ID) dht.RingNode {
			return chord.New(env, ep, id, chord.Config{
				SuccessorListLen: 6,
				StabilizeEvery:   500 * time.Millisecond,
				FixFingersEvery:  300 * time.Millisecond,
				CheckPredEvery:   500 * time.Millisecond,
				RPCTimeout:       200 * time.Millisecond,
			})
		},
		Assemble: func(nodes []dht.RingNode) {
			concrete := make([]*chord.Node, len(nodes))
			for i, n := range nodes {
				concrete[i] = n.(*chord.Node)
			}
			chord.AssembleRing(concrete)
		},
		// Iterative chord resolves in ~log2(n)/2 probes from a full
		// finger table; 2.5·log2(n) rejects linear scans with slack for
		// unlucky ID distributions.
		MaxMeanHops:        func(n int) float64 { return 2.5 * math.Log2(float64(n)) },
		SupportsNudgeMerge: true,
	}
}

func canFactory() Factory {
	return Factory{
		Name: "can",
		New: func(env network.Env, ep network.Endpoint, id core.ID) dht.RingNode {
			return can.New(env, ep, id, can.Config{
				PingEvery:  500 * time.Millisecond,
				RPCTimeout: 200 * time.Millisecond,
			})
		},
		Assemble: func(nodes []dht.RingNode) {
			concrete := make([]*can.Node, len(nodes))
			for i, n := range nodes {
				concrete[i] = n.(*can.Node)
			}
			can.AssembleSpace(concrete)
		},
		// Greedy routing on a 2-d torus costs O(√n); 2.5·√n is the same
		// slack factor the chord bound uses.
		MaxMeanHops:        func(n int) float64 { return 2.5 * math.Sqrt(float64(n)) },
		SupportsNudgeMerge: false,
	}
}

func onehopFactory() Factory {
	return Factory{
		Name: "onehop",
		New: func(env network.Env, ep network.Endpoint, id core.ID) dht.RingNode {
			return onehop.New(env, ep, id, onehop.Config{
				PingEvery:  500 * time.Millisecond,
				RPCTimeout: 200 * time.Millisecond,
			})
		},
		Assemble: func(nodes []dht.RingNode) {
			concrete := make([]*onehop.Node, len(nodes))
			for i, n := range nodes {
				concrete[i] = n.(*onehop.Node)
			}
			onehop.AssembleRing(concrete)
		},
		// The whole point: one confirmation probe per lookup, self-owned
		// positions free. 1.1 is the issue's acceptance bound.
		MaxMeanHops:        func(n int) float64 { return 1.1 },
		SupportsNudgeMerge: true,
	}
}

func TestChordConformance(t *testing.T)  { Run(t, chordFactory()) }
func TestCANConformance(t *testing.T)    { Run(t, canFactory()) }
func TestOneHopConformance(t *testing.T) { Run(t, onehopFactory()) }
