// Package ringtest is the cross-implementation conformance suite for
// dht.RingNode substrates. Any ring — chord's O(log n) finger routing,
// can's d-dimensional zones, onehop's full-table event propagation, or
// a future substrate — plugs in through a Factory and gets the same
// sweep: ownership correctness against ground truth, hop-count bounds,
// lookup liveness under churn, and post-heal re-merge via Nudge. The
// suite runs on the deterministic simulation kernel, so a failure
// replays bit-identically from its seed.
package ringtest

import (
	"context"
	"fmt"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dht"
	"repro/internal/hashing"
	"repro/internal/network"
	"repro/internal/network/simwire"
	"repro/internal/simnet"
	"repro/internal/stats"
)

// Factory describes one ring implementation to the suite.
type Factory struct {
	// Name labels the sub-tests.
	Name string
	// New creates an unjoined node with the given identity. The factory
	// chooses its own protocol timers; they should be test-brisk
	// (hundreds of milliseconds, not the production tens of seconds).
	New func(env network.Env, ep network.Endpoint, id core.ID) dht.RingNode
	// Assemble wires freshly created nodes into a converged overlay
	// administratively, the way large simulations bootstrap.
	Assemble func(nodes []dht.RingNode)
	// MaxMeanHops bounds the acceptable mean lookup hop count on a
	// converged overlay of n nodes — the substrate's routing promise
	// (≤ 1.1 for a one-hop table, c·log n for chord, c·√n for 2-d CAN).
	MaxMeanHops func(n int) float64
	// SupportsNudgeMerge gates the post-heal re-merge test: true when
	// Nudge re-merges a healed partition (chord, onehop). CAN's zone
	// geometry has no cheap cross-partition arbitration, so it opts out.
	SupportsNudgeMerge bool
}

// Run executes the conformance sweep against one factory.
func Run(t *testing.T, f Factory) {
	t.Run("Ownership", func(t *testing.T) { testOwnership(t, f) })
	t.Run("HopBound", func(t *testing.T) { testHopBound(t, f) })
	t.Run("LookupUnderChurn", func(t *testing.T) { testLookupUnderChurn(t, f) })
	if f.SupportsNudgeMerge {
		t.Run("HealMerge", func(t *testing.T) { testHealMerge(t, f) })
	}
}

// cluster is the suite's miniature deployment: a simulated network and
// a set of ring nodes, with helpers to drive the kernel.
type cluster struct {
	t     *testing.T
	k     *simnet.Kernel
	net   *simwire.Network
	f     Factory
	nodes []dht.RingNode
	next  int
}

func newCluster(t *testing.T, f Factory, seed int64, n int) *cluster {
	k := simnet.New(seed)
	net := simwire.New(k, simwire.Config{
		LatencyMS:      stats.Normal{Mean: 5, Variance: 0, Min: 5},
		BandwidthKbps:  stats.Normal{Mean: 1e6, Variance: 0, Min: 1e6},
		DefaultTimeout: 200 * time.Millisecond,
	})
	c := &cluster{t: t, k: k, net: net, f: f}
	nodes := make([]dht.RingNode, n)
	for i := range nodes {
		nodes[i] = c.newNode()
	}
	f.Assemble(nodes)
	c.nodes = nodes
	return c
}

// newNode creates an unjoined node with a fresh name-derived identity.
func (c *cluster) newNode() dht.RingNode {
	name := fmt.Sprintf("ring-%s-%03d", c.f.Name, c.next)
	c.next++
	ep := c.net.NewEndpoint(name)
	return c.f.New(c.net.Env(), ep, hashing.NodeID(name))
}

// startAll launches every node's maintenance.
func (c *cluster) startAll() {
	for _, n := range c.nodes {
		n.Start()
	}
}

// do runs fn as a simulation activity and drives the kernel until it
// completes.
func (c *cluster) do(fn func()) {
	c.t.Helper()
	done := false
	c.k.Go(func() {
		fn()
		done = true
	})
	for i := 0; i < 600 && !done; i++ {
		c.k.Run(c.k.Now() + 100*time.Millisecond)
	}
	if !done {
		c.t.Fatal("ringtest: simulated operation did not complete")
	}
}

// settle advances virtual time by d so maintenance can run.
func (c *cluster) settle(d time.Duration) {
	c.k.Run(c.k.Now() + d)
}

// alive returns the live members.
func (c *cluster) alive() []dht.RingNode {
	var out []dht.RingNode
	for _, n := range c.nodes {
		if n.Alive() {
			out = append(out, n)
		}
	}
	return out
}

// byID returns the live node with the given identity, or nil.
func (c *cluster) byID(id core.ID) dht.RingNode {
	for _, n := range c.alive() {
		if n.Self().ID == id {
			return n
		}
	}
	return nil
}

// owner returns the unique live node claiming id, failing the test when
// ownership is not exactly-one. This is the suite's ground truth: the
// overlay's own OwnsID predicates, evaluated across the whole live
// population, must tile the ID space.
func (c *cluster) owner(id core.ID) dht.RingNode {
	c.t.Helper()
	var own dht.RingNode
	for _, n := range c.alive() {
		if !n.OwnsID(id) {
			continue
		}
		if own != nil {
			c.t.Fatalf("id %s claimed by both %s and %s", id, own.Self().ID, n.Self().ID)
		}
		own = n
	}
	if own == nil {
		c.t.Fatalf("id %s claimed by no live node", id)
	}
	return own
}

// testOwnership checks that on a converged overlay, Lookup agrees with
// the ground-truth owner for a large sample of random positions, from
// rotating issuers.
func testOwnership(t *testing.T, f Factory) {
	const peers = 24
	c := newCluster(t, f, 101, peers)
	rng := c.k.NewRand("ownership")
	const samples = 1000
	c.do(func() {
		for i := 0; i < samples; i++ {
			id := core.ID(rng.Uint64())
			want := c.owner(id).Self()
			issuer := c.nodes[i%len(c.nodes)]
			got, _, err := issuer.Lookup(context.Background(), id)
			if err != nil {
				t.Fatalf("lookup %s from %s: %v", id, issuer.Self().ID, err)
			}
			if got.ID != want.ID {
				t.Fatalf("lookup %s from %s resolved %s, ground truth %s",
					id, issuer.Self().ID, got.ID, want.ID)
			}
		}
	})
}

// testHopBound checks the substrate's routing promise: mean hops over a
// converged overlay stays within MaxMeanHops.
func testHopBound(t *testing.T, f Factory) {
	const peers = 32
	c := newCluster(t, f, 202, peers)
	rng := c.k.NewRand("hopbound")
	const samples = 200
	total := 0
	c.do(func() {
		for i := 0; i < samples; i++ {
			id := core.ID(rng.Uint64())
			issuer := c.nodes[rng.Intn(len(c.nodes))]
			_, hops, err := issuer.Lookup(context.Background(), id)
			if err != nil {
				t.Fatalf("lookup %s: %v", id, err)
			}
			total += hops
		}
	})
	mean := float64(total) / samples
	if limit := f.MaxMeanHops(peers); mean > limit {
		t.Fatalf("mean hops %.2f over %d peers exceeds the %s bound %.2f",
			mean, peers, f.Name, limit)
	}
}

// testLookupUnderChurn drives graceful leaves, crashes and joins
// through the overlay's real protocol paths and checks lookup liveness:
// every lookup must still resolve, and must land on a live node that
// itself claims the position. Strict exactly-one ownership is the
// converged-overlay property (testOwnership); mid-churn, substrates may
// transiently double-claim an arc while repair converges (CAN's crash
// takeover, chord mid-stabilization), and the store layer's own
// owns-check plus timestamp discipline carry correctness through that
// window.
func testLookupUnderChurn(t *testing.T, f Factory) {
	const peers = 16
	c := newCluster(t, f, 303, peers)
	c.startAll()
	c.settle(3 * time.Second)
	rng := c.k.NewRand("churn")

	for round := 0; round < 3; round++ {
		// One graceful leave and one crash per round.
		live := c.alive()
		leaver := live[rng.Intn(len(live))]
		c.do(func() {
			if err := leaver.Leave(); err != nil {
				t.Logf("leave: %v", err)
			}
		})
		live = c.alive()
		victim := live[rng.Intn(len(live))]
		victim.Crash()
		c.net.Kill(victim.Self().Addr)

		// One join through a live bootstrap.
		joiner := c.newNode()
		boot := c.alive()[0]
		c.do(func() {
			if err := joiner.Join(boot.Self().Addr); err != nil {
				t.Fatalf("join: %v", err)
			}
		})
		joiner.Start()
		c.nodes = append(c.nodes, joiner)

		// Let failure detectors and repair run, then verify. Liveness is
		// an *eventual* property: repair may need several detector
		// periods after a crash (CAN's takeover in particular), so a
		// failed sweep earns more settling before it counts against the
		// substrate.
		c.settle(5 * time.Second)
		var lastFail string
		for attempt := 0; ; attempt++ {
			lastFail = ""
			c.do(func() {
				for i := 0; i < 30 && lastFail == ""; i++ {
					id := core.ID(rng.Uint64())
					issuers := c.alive()
					issuer := issuers[rng.Intn(len(issuers))]
					got, _, err := issuer.Lookup(context.Background(), id)
					if err != nil {
						lastFail = fmt.Sprintf("lookup %s from %s: %v", id, issuer.Self().ID, err)
						return
					}
					resolved := c.byID(got.ID)
					if resolved == nil {
						lastFail = fmt.Sprintf("lookup %s resolved %s, not a live member", id, got.ID)
						return
					}
					if !resolved.OwnsID(id) {
						lastFail = fmt.Sprintf("lookup %s resolved %s, which does not claim it", id, got.ID)
					}
				}
			})
			if lastFail == "" {
				break
			}
			if attempt >= 4 {
				t.Fatalf("round %d: overlay never converged: %s", round, lastFail)
			}
			c.settle(10 * time.Second)
		}
	}
}

// testHealMerge splits the overlay into two partitions, lets each side
// converge alone, heals the network and nudges every node through a
// bootstrap on the first side — the deployment layer's rendezvous —
// then checks the merged overlay agrees on ownership again.
func testHealMerge(t *testing.T, f Factory) {
	const peers = 12
	c := newCluster(t, f, 404, peers)
	c.startAll()
	c.settle(3 * time.Second)

	var sideA, sideB []network.Addr
	for i, n := range c.nodes {
		if i < peers/2 {
			sideA = append(sideA, n.Self().Addr)
		} else {
			sideB = append(sideB, n.Self().Addr)
		}
	}
	c.net.Partition(sideA, sideB)
	// Long enough for every substrate's failure detector to route
	// around the unreachable half.
	c.settle(20 * time.Second)

	c.net.Heal()
	boot := c.nodes[0].Self().Addr
	c.do(func() {
		for _, n := range c.nodes[1:] {
			if !n.Alive() {
				continue
			}
			if err := n.Nudge(boot); err != nil {
				t.Logf("nudge %s: %v", n.Self().ID, err)
			}
		}
	})
	c.settle(20 * time.Second)

	rng := c.k.NewRand("healmerge")
	c.do(func() {
		for i := 0; i < 50; i++ {
			id := core.ID(rng.Uint64())
			want := c.owner(id).Self()
			issuer := c.nodes[i%len(c.nodes)]
			got, _, err := issuer.Lookup(context.Background(), id)
			if err != nil {
				t.Fatalf("post-heal lookup %s from %s: %v", id, issuer.Self().ID, err)
			}
			if got.ID != want.ID {
				t.Fatalf("post-heal lookup %s from %s resolved %s, ground truth %s",
					id, issuer.Self().ID, got.ID, want.ID)
			}
		}
	})
}
