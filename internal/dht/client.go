package dht

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/hashing"
	"repro/internal/network"
)

// Client performs puth/geth operations (§2.2) from one peer: it resolves
// rsp(k, h) through the ring's lookup service and invokes the store
// protocol on the responsible peer. One retry is allowed when the
// responsible moved between lookup and operation.
//
// Every operation takes a context: its deadline bounds the whole
// resolve-and-invoke sequence, its cancellation stops retries, and the
// meter it carries (network.WithMeter) is charged for every message.
type Client struct {
	ring Ring
	ns   string
}

// NewClient builds a client for the given namespace ("ums", "brk").
func NewClient(ring Ring, namespace string) *Client {
	return &Client{ring: ring, ns: namespace}
}

// Ring exposes the underlying ring (used by services for lookups).
func (c *Client) Ring() Ring { return c.ring }

// Namespace returns the client's storage namespace.
func (c *Client) Namespace() string { return c.ns }

// PutH stores val at rsp(k, h) — the paper's puth(k, data).
func (c *Client) PutH(ctx context.Context, k core.Key, h hashing.Func, val core.Value, mode PutMode) error {
	_, err := c.PutHStored(ctx, k, h, val, mode)
	return err
}

// PutHStored is PutH, additionally reporting whether the responsible
// actually kept the value — false when PutIfNewer (or PutIfNewerOrEqual)
// rejected a write that would travel backwards in time. The replica
// maintenance subsystem uses the report to count real heals instead of
// every push.
func (c *Client) PutHStored(ctx context.Context, k core.Key, h hashing.Func, val core.Value, mode PutMode) (bool, error) {
	rid := h.ID(k)
	req := PutReq{RingID: rid, Qual: Qualifier(c.ns, k, h.Name()), Val: val, Mode: mode}
	resp, err := c.invokeResponsible(ctx, rid, MethodPut, req)
	if err != nil {
		return false, fmt.Errorf("dht: puth %q via %s: %w", k, h.Name(), err)
	}
	return resp.(PutResp).Stored, nil
}

// GetH retrieves the replica of k stored at rsp(k, h) — the paper's
// geth(k).
func (c *Client) GetH(ctx context.Context, k core.Key, h hashing.Func) (core.Value, error) {
	rid := h.ID(k)
	req := GetReq{RingID: rid, Qual: Qualifier(c.ns, k, h.Name())}
	resp, err := c.invokeResponsible(ctx, rid, MethodGet, req)
	if err != nil {
		return core.Value{}, fmt.Errorf("dht: geth %q via %s: %w", k, h.Name(), err)
	}
	return resp.(GetResp).Val, nil
}

// invokeResponsible looks up the peer responsible for rid and invokes
// method on it, retrying the lookup once if responsibility moved.
func (c *Client) invokeResponsible(ctx context.Context, rid core.ID, method string, req network.Message) (network.Message, error) {
	var lastErr error
	for attempt := 0; attempt < 2; attempt++ {
		ref, _, err := c.ring.Lookup(ctx, rid)
		if err != nil {
			return nil, err
		}
		resp, err := c.ring.Endpoint().Invoke(ctx, ref.Addr, method, req, network.Call{})
		if err == nil {
			return resp, nil
		}
		lastErr = err
		// Responsibility moved or the peer died mid-operation: resolve
		// again once, then give up (the replica is simply unavailable).
		if !errors.Is(err, core.ErrNotResponsible) && !errors.Is(err, core.ErrTimeout) &&
			!errors.Is(err, core.ErrUnreachable) {
			return nil, err
		}
		if serr := network.SleepCtx(ctx, c.ring.Env(), 100*time.Millisecond); serr != nil {
			return nil, serr
		}
	}
	return nil, lastErr
}
