package dht

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/store"
)

// TestSnapshotAbsorbRoundTripThroughBacking moves a store's full
// contents into a second store running on an explicit backing, then back
// again, checking nothing is lost, duplicated or time-travelled in
// either direction.
func TestSnapshotAbsorbRoundTripThroughBacking(t *testing.T) {
	src := NewLocalStoreOn(store.NewMem())
	for i := 0; i < 20; i++ {
		qual := fmt.Sprintf("ums|k%d|hr0", i)
		src.Put(core.ID(i), qual, core.Value{Data: []byte{byte(i)}, TS: core.TS(uint64(i + 1))}, PutOverwrite)
	}

	dst := NewLocalStoreOn(store.NewMem())
	dst.Absorb(src.Snapshot())
	if dst.Len() != 20 || src.Len() != 20 {
		t.Fatalf("after absorb: src=%d dst=%d, want 20/20", src.Len(), dst.Len())
	}

	// Round-trip back into a third store and compare item by item.
	back := NewLocalStoreOn(store.NewMem())
	back.Absorb(dst.Snapshot())
	for i := 0; i < 20; i++ {
		qual := fmt.Sprintf("ums|k%d|hr0", i)
		v, ok := back.Get(core.ID(i), qual)
		if !ok || v.TS != core.TS(uint64(i+1)) || len(v.Data) != 1 || v.Data[0] != byte(i) {
			t.Fatalf("item %d after round-trip: %v %v", i, v, ok)
		}
	}
}

// TestAbsorbNewerWinsOnCollision absorbs over existing values: newer
// incoming timestamps must replace, older must not — a replica never
// travels backwards in time.
func TestAbsorbNewerWinsOnCollision(t *testing.T) {
	s := NewLocalStoreOn(store.NewMem())
	s.Put(1, "ums|k|hr0", core.Value{Data: []byte("mid"), TS: core.TS(5)}, PutOverwrite)

	s.Absorb([]Item{{RingID: 1, Qual: "ums|k|hr0", Val: core.Value{Data: []byte("old"), TS: core.TS(3)}}})
	if v, _ := s.Get(1, "ums|k|hr0"); string(v.Data) != "mid" {
		t.Fatalf("older absorb overwrote: %q", v.Data)
	}
	s.Absorb([]Item{{RingID: 1, Qual: "ums|k|hr0", Val: core.Value{Data: []byte("new"), TS: core.TS(9)}}})
	if v, _ := s.Get(1, "ums|k|hr0"); string(v.Data) != "new" || v.TS != core.TS(9) {
		t.Fatalf("newer absorb lost: %v", v)
	}
	if s.Len() != 1 {
		t.Fatalf("collisions created duplicates: len=%d", s.Len())
	}
}

// TestConcurrentPutDuringSnapshot hammers Put while snapshotting (run
// under -race). Every snapshot must be internally consistent: items it
// contains carry a timestamp that was actually written, and absorbing a
// snapshot into a fresh store never fails.
func TestConcurrentPutDuringSnapshot(t *testing.T) {
	s := NewLocalStoreOn(store.NewMem())
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 1; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				rid := core.ID(g*100 + i%50)
				s.Put(rid, "ums|k|hr0", core.Value{TS: core.TS(uint64(i))}, PutIfNewer)
			}
		}(g)
	}
	for round := 0; round < 50; round++ {
		snap := s.Snapshot()
		fresh := NewLocalStoreOn(store.NewMem())
		fresh.Absorb(snap)
		if fresh.Len() != len(snap) {
			t.Fatalf("round %d: absorbed %d of %d snapshot items", round, fresh.Len(), len(snap))
		}
		for _, it := range snap {
			if it.Val.TS.IsZero() {
				t.Fatalf("round %d: snapshot carries unwritten timestamp for %v", round, it.RingID)
			}
		}
	}
	close(stop)
	wg.Wait()
}

// TestLocalStoreOnWALSurvivesReopen runs the handover layer on a real
// disk backing: puts land in the log, and a second store opened on the
// same directory serves them.
func TestLocalStoreOnWALSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	w, err := store.OpenWAL(dir, store.WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	s := NewLocalStoreOn(w)
	s.Put(7, "ums|k|hr0", core.Value{Data: []byte("v"), TS: core.TS(3)}, PutOverwrite)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	w2, err := store.OpenWAL(dir, store.WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	s2 := NewLocalStoreOn(w2)
	if v, ok := s2.Get(7, "ums|k|hr0"); !ok || string(v.Data) != "v" || v.TS != core.TS(3) {
		t.Fatalf("after reopen: %v %v", v, ok)
	}
	// Crash loses nothing that was already on disk but kills the handle.
	s2.Crash()
	if _, ok := s2.Get(7, "ums|k|hr0"); ok {
		t.Fatal("crashed WAL handle still serves reads")
	}
}
