package dht

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/core"
)

func ts(v uint64) core.Timestamp { return core.TS(v) }

func val(s string, v uint64) core.Value {
	return core.Value{Data: []byte(s), TS: ts(v)}
}

// TestParseQualifier checks the round trip the repair subsystem depends
// on, including keys that themselves contain the separator.
func TestParseQualifier(t *testing.T) {
	for _, k := range []core.Key{"plain", "with|pipe", "a|b|c", ""} {
		q := Qualifier("ums", k, "hr3")
		ns, key, hname, ok := ParseQualifier(q)
		if !ok || ns != "ums" || key != k || hname != "hr3" {
			t.Fatalf("ParseQualifier(%q) = %q %q %q %v", q, ns, key, hname, ok)
		}
	}
	for _, bad := range []string{"", "nopipe", "one|pipe"} {
		if _, _, _, ok := ParseQualifier(bad); ok {
			t.Fatalf("ParseQualifier(%q) unexpectedly ok", bad)
		}
	}
}

// TestCollectIfSelectsAndRemoves covers the handover collection path: only
// items matching the predicate are returned, removal is honored, and the
// returned items do not alias the store's buffers.
func TestCollectIfSelectsAndRemoves(t *testing.T) {
	s := NewLocalStore()
	for i := 0; i < 10; i++ {
		s.Put(core.ID(i), fmt.Sprintf("ums|k%d|hr0", i), val(fmt.Sprintf("v%d", i), 1), PutOverwrite)
	}
	even := func(id core.ID) bool { return id%2 == 0 }

	// Non-destructive collection (a join's Transfer keeps going on error).
	peek := s.CollectIf(even, false)
	if len(peek) != 5 || s.Len() != 10 {
		t.Fatalf("peek collected %d, store has %d", len(peek), s.Len())
	}
	// Mutating a collected item must not corrupt the store.
	peek[0].Val.Data[0] = 'X'
	for _, it := range s.CollectIf(even, false) {
		if it.Val.Data[0] == 'X' {
			t.Fatal("collected item aliases the stored buffer")
		}
	}

	// Destructive collection (the ceding side of a handover).
	got := s.CollectIf(even, true)
	if len(got) != 5 || s.Len() != 5 {
		t.Fatalf("collected %d, store kept %d", len(got), s.Len())
	}
	for _, it := range got {
		if it.RingID%2 != 0 {
			t.Fatalf("collected non-matching item %v", it.RingID)
		}
		if _, ok := s.Get(it.RingID, it.Qual); ok {
			t.Fatalf("item %v still present after destructive collect", it.RingID)
		}
	}
	// The odd half must be untouched.
	for i := 1; i < 10; i += 2 {
		if _, ok := s.Get(core.ID(i), fmt.Sprintf("ums|k%d|hr0", i)); !ok {
			t.Fatalf("unrelated item %d lost", i)
		}
	}
}

// TestAbsorbNewerWins covers the qualifier-collision invariant: a replica
// must never travel backwards in time when handover batches land on a
// store that already has newer data (e.g. an update raced the transfer).
func TestAbsorbNewerWins(t *testing.T) {
	s := NewLocalStore()
	s.Put(1, "ums|k|hr0", val("newer", 5), PutOverwrite)

	s.Absorb([]Item{
		{RingID: 1, Qual: "ums|k|hr0", Val: val("stale", 3)},  // must lose
		{RingID: 1, Qual: "ums|k|hr1", Val: val("fresh", 4)},  // new qualifier, installs
		{RingID: 2, Qual: "ums|k2|hr0", Val: val("other", 1)}, // new position, installs
	})

	if v, _ := s.Get(1, "ums|k|hr0"); string(v.Data) != "newer" || v.TS != ts(5) {
		t.Fatalf("absorb regressed the replica to %q %v", v.Data, v.TS)
	}
	if v, ok := s.Get(1, "ums|k|hr1"); !ok || string(v.Data) != "fresh" {
		t.Fatalf("absorb dropped a non-colliding item: %q", v.Data)
	}
	if _, ok := s.Get(2, "ums|k2|hr0"); !ok {
		t.Fatal("absorb dropped a new position")
	}

	// The other direction: absorbing newer state overwrites older.
	s.Absorb([]Item{{RingID: 1, Qual: "ums|k|hr0", Val: val("newest", 9)}})
	if v, _ := s.Get(1, "ums|k|hr0"); string(v.Data) != "newest" {
		t.Fatalf("absorb failed to advance the replica: %q", v.Data)
	}
}

// TestCollectRoundTripPreservesState replays a full handover: collect an
// arc destructively, absorb it elsewhere, and verify nothing was lost or
// duplicated.
func TestCollectRoundTripPreservesState(t *testing.T) {
	from, to := NewLocalStore(), NewLocalStore()
	for i := 0; i < 20; i++ {
		from.Put(core.ID(i), fmt.Sprintf("ums|k%d|hr0", i), val(fmt.Sprintf("v%d", i), uint64(i+1)), PutOverwrite)
	}
	arc := func(id core.ID) bool { return id < 10 }
	to.Absorb(from.CollectIf(arc, true))
	if from.Len() != 10 || to.Len() != 10 {
		t.Fatalf("after handover: from=%d to=%d", from.Len(), to.Len())
	}
	for i := 0; i < 10; i++ {
		v, ok := to.Get(core.ID(i), fmt.Sprintf("ums|k%d|hr0", i))
		if !ok || string(v.Data) != fmt.Sprintf("v%d", i) {
			t.Fatalf("item %d mangled in flight: ok=%v %q", i, ok, v.Data)
		}
	}
}

// TestConcurrentPutDuringCollect hammers the store with writes while a
// collector repeatedly drains an arc — the shape of a Put racing a
// responsibility handover. Run under -race this guards the locking; the
// assertion guards that every written item ends up exactly one place:
// collected or still stored.
func TestConcurrentPutDuringCollect(t *testing.T) {
	s := NewLocalStore()
	const writers, perWriter = 4, 200
	arc := func(id core.ID) bool { return id%2 == 0 }

	var collected []Item
	stop := make(chan struct{})
	collectorDone := make(chan struct{})
	go func() {
		defer close(collectorDone)
		for {
			collected = append(collected, s.CollectIf(arc, true)...)
			select {
			case <-stop:
				// One final drain now that the writers are done.
				collected = append(collected, s.CollectIf(arc, true)...)
				return
			default:
			}
		}
	}()

	var writersWG sync.WaitGroup
	for w := 0; w < writers; w++ {
		writersWG.Add(1)
		go func(w int) {
			defer writersWG.Done()
			for i := 0; i < perWriter; i++ {
				id := core.ID(w*perWriter + i)
				s.Put(id, fmt.Sprintf("ums|w%d-%d|hr0", w, i), val("payload", uint64(i+1)), PutIfNewer)
			}
		}(w)
	}
	writersWG.Wait()
	close(stop)
	<-collectorDone

	// Every even-id item must be in collected exactly once; every odd-id
	// item must still be in the store.
	seen := map[string]int{}
	for _, it := range collected {
		if it.RingID%2 != 0 {
			t.Fatalf("collector got non-arc item %v", it.RingID)
		}
		seen[it.Qual]++
	}
	total := writers * perWriter
	inStore := s.Len()
	if len(seen)+inStore != total {
		t.Fatalf("items lost or duplicated: collected %d distinct + stored %d != %d",
			len(seen), inStore, total)
	}
	for q, n := range seen {
		if n != 1 {
			t.Fatalf("item %q collected %d times", q, n)
		}
	}
}
