package dht

import (
	"context"

	"repro/internal/obs"
)

// TraceOp begins one traced operation on behalf of ums/brk: it resolves
// the effective tracer (one carried by the context wins over the
// service default), emits OpStart, and attaches a phase accumulator to
// the context so the layers below (chord lookups, KTS round trips,
// replica probes) can charge their time slices. The returned finish
// closure emits OpEnd from the operation's final OpResult; callers
// invoke it from the same defer that fills Elapsed and the meter
// fields. With no tracer anywhere the call is free and finish is a
// no-op.
func TraceOp(ctx context.Context, def obs.Tracer, op obs.Op) (context.Context, func(res *OpResult, err error)) {
	tr := obs.TracerFrom(ctx)
	if tr == nil {
		tr = def
	}
	if tr == nil {
		return ctx, func(*OpResult, error) {}
	}
	tr.OpStart(op)
	ph := obs.NewPhases()
	ctx = obs.WithPhases(ctx, ph)
	return ctx, func(res *OpResult, err error) {
		e := obs.OpResult{
			Op:      op,
			Err:     err != nil,
			Elapsed: res.Elapsed,
			Msgs:    res.Msgs,
			Bytes:   res.Bytes,
			Phases:  ph.List(),
		}
		if op.Op == "get" {
			e.Verdict = res.Currency.String()
		}
		tr.OpEnd(e)
	}
}
