package dht

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/network"
	"repro/internal/network/simwire"
	"repro/internal/simnet"
)

func TestLocalStorePutModes(t *testing.T) {
	s := NewLocalStore()
	v1 := core.Value{Data: []byte("a"), TS: core.TS(1)}
	v2 := core.Value{Data: []byte("b"), TS: core.TS(2)}

	if !s.Put(1, "q", v2, PutIfNewer) {
		t.Fatal("first put must store")
	}
	if s.Put(1, "q", v1, PutIfNewer) {
		t.Fatal("stale put must be rejected")
	}
	if got, _ := s.Get(1, "q"); string(got.Data) != "b" {
		t.Fatalf("got %q", got.Data)
	}
	// Equal timestamps: IfNewer rejects, IfNewerOrEqual overwrites.
	same := core.Value{Data: []byte("c"), TS: core.TS(2)}
	if s.Put(1, "q", same, PutIfNewer) {
		t.Fatal("equal-ts put must be rejected by IfNewer")
	}
	if !s.Put(1, "q", same, PutIfNewerOrEqual) {
		t.Fatal("equal-ts put must pass IfNewerOrEqual")
	}
	if got, _ := s.Get(1, "q"); string(got.Data) != "c" {
		t.Fatalf("got %q", got.Data)
	}
	// Overwrite ignores timestamps entirely.
	if !s.Put(1, "q", v1, PutOverwrite) {
		t.Fatal("overwrite must always store")
	}
	if got, _ := s.Get(1, "q"); got.TS != core.TS(1) {
		t.Fatalf("overwrite lost: %v", got.TS)
	}
}

func TestLocalStoreIsolation(t *testing.T) {
	s := NewLocalStore()
	buf := []byte("mutable")
	s.Put(7, "q", core.Value{Data: buf, TS: core.TS(1)}, PutOverwrite)
	buf[0] = 'X'
	got, ok := s.Get(7, "q")
	if !ok || string(got.Data) != "mutable" {
		t.Fatalf("store aliased caller buffer: %q", got.Data)
	}
	got.Data[0] = 'Y'
	again, _ := s.Get(7, "q")
	if string(again.Data) != "mutable" {
		t.Fatal("get returned aliased buffer")
	}
}

func TestLocalStoreCollectAbsorb(t *testing.T) {
	s := NewLocalStore()
	for i := 0; i < 10; i++ {
		s.Put(core.ID(i), fmt.Sprintf("q%d", i), core.Value{Data: []byte{byte(i)}, TS: core.TS(1)}, PutOverwrite)
	}
	even := func(id core.ID) bool { return id%2 == 0 }
	items := s.CollectIf(even, true)
	if len(items) != 5 {
		t.Fatalf("collected %d items", len(items))
	}
	if s.Len() != 5 {
		t.Fatalf("store kept %d items", s.Len())
	}
	dst := NewLocalStore()
	dst.Absorb(items)
	if dst.Len() != 5 {
		t.Fatalf("absorbed %d items", dst.Len())
	}
	// Absorb must not go back in time: a newer local value survives.
	dst.Put(0, "q0", core.Value{Data: []byte("new"), TS: core.TS(9)}, PutOverwrite)
	dst.Absorb(items)
	if got, _ := dst.Get(0, "q0"); string(got.Data) != "new" {
		t.Fatalf("absorb regressed value to %q", got.Data)
	}
	// Collect without removal keeps originals.
	kept := s.CollectIf(func(core.ID) bool { return true }, false)
	if len(kept) != 5 || s.Len() != 5 {
		t.Fatal("non-removing collect must not mutate")
	}
	s.Clear()
	if s.Len() != 0 {
		t.Fatal("clear failed")
	}
}

// Property: a store behaves like a map keyed by (rid, qual) under
// overwrite puts.
func TestLocalStoreMapModel(t *testing.T) {
	f := func(ops []struct {
		Rid  uint8
		Qual uint8
		TS   uint8
	}) bool {
		s := NewLocalStore()
		model := map[string]core.Timestamp{}
		for _, op := range ops {
			rid := core.ID(op.Rid % 8)
			qual := fmt.Sprintf("q%d", op.Qual%4)
			ts := core.TS(uint64(op.TS))
			s.Put(rid, qual, core.Value{TS: ts}, PutOverwrite)
			model[fmt.Sprintf("%d|%s", rid, qual)] = ts
		}
		if s.Len() != len(model) {
			return false
		}
		for k, ts := range model {
			var rid core.ID
			var q string
			fmt.Sscanf(k, "%d|%s", &rid, &q)
			got, ok := s.Get(rid, q)
			if !ok || got.TS != ts {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQualifierDistinct(t *testing.T) {
	a := Qualifier("ums", "k", "h0")
	b := Qualifier("brk", "k", "h0")
	c := Qualifier("ums", "k", "h1")
	d := Qualifier("ums", "k2", "h0")
	seen := map[string]bool{a: true}
	for _, q := range []string{b, c, d} {
		if seen[q] {
			t.Fatalf("qualifier collision: %q", q)
		}
		seen[q] = true
	}
}

func TestRegisterStoreOwnershipGuard(t *testing.T) {
	k := simnet.New(1)
	net := simwire.New(k, simwire.Config{})
	ep := net.NewEndpoint("a")
	caller := net.NewEndpoint("b")
	store := NewLocalStore()
	owns := func(id core.ID) bool { return id < 100 }
	RegisterStore(ep, store, owns)

	var putErr, getErr, okErr error
	k.Go(func() {
		_, putErr = caller.Invoke(context.Background(), "a", MethodPut,
			PutReq{RingID: 500, Qual: "q", Val: core.Value{TS: core.TS(1)}}, network.Call{})
		_, getErr = caller.Invoke(context.Background(), "a", MethodGet, GetReq{RingID: 500, Qual: "q"}, network.Call{})
		_, okErr = caller.Invoke(context.Background(), "a", MethodPut,
			PutReq{RingID: 50, Qual: "q", Val: core.Value{TS: core.TS(1)}}, network.Call{})
	})
	k.RunUntilIdle()
	if !errors.Is(putErr, core.ErrNotResponsible) {
		t.Fatalf("put to non-owner: %v", putErr)
	}
	if !errors.Is(getErr, core.ErrNotResponsible) {
		t.Fatalf("get to non-owner: %v", getErr)
	}
	if okErr != nil {
		t.Fatalf("owned put failed: %v", okErr)
	}
	if store.Len() != 1 {
		t.Fatalf("store has %d items", store.Len())
	}
	// Missing key at an owned position is NotFound, not NotResponsible.
	var missErr error
	k.Go(func() {
		_, missErr = caller.Invoke(context.Background(), "a", MethodGet, GetReq{RingID: 60, Qual: "nope"}, network.Call{})
	})
	k.RunUntilIdle()
	if !errors.Is(missErr, core.ErrNotFound) || errors.Is(missErr, core.ErrNotResponsible) {
		t.Fatalf("missing key: %v", missErr)
	}
}

func TestNodeRefBasics(t *testing.T) {
	var zero NodeRef
	if !zero.IsZero() {
		t.Fatal("zero ref must report IsZero")
	}
	r := NodeRef{ID: 0xabc, Addr: "host:1"}
	if r.IsZero() {
		t.Fatal("non-zero ref misreported")
	}
	if r.String() == "" {
		t.Fatal("empty String")
	}
}
