package dht

import (
	"time"

	"repro/internal/core"
)

// Level is the consistency level a retrieve runs at — how current the
// returned replica must provably be. The paper's UMS always proves
// currency against KTS's last_ts (LevelCurrent here); the other levels
// trade currency for retrieval cost along the axis the paper's
// response-time-vs-currency evaluation measures.
type Level int

// The consistency levels, ordered from strongest to weakest guarantee.
const (
	// LevelCurrent is the paper's provably-current retrieve: ask KTS
	// for last_ts, probe replica positions until one carries it. The
	// default (and the zero value).
	LevelCurrent Level = iota
	// LevelBounded accepts a replica that is at most a given duration
	// stale: when the issuing peer holds a cached last_ts younger than
	// the bound, the retrieve skips the KTS round trip entirely and
	// accepts the first replica at or past the cached floor.
	LevelBounded
	// LevelEventual accepts the first reachable replica with no KTS
	// round trip at all — the cheapest read, no currency claim.
	LevelEventual
)

// String returns "current", "bounded" or "eventual".
func (l Level) String() string {
	switch l {
	case LevelBounded:
		return "bounded"
	case LevelEventual:
		return "eventual"
	default:
		return "current"
	}
}

// Currency is the verdict attached to a retrieve's result: what the
// operation can actually claim about the returned replica's freshness,
// together with the OpResult.Floor / OpResult.FloorAge evidence. It
// replaces the old lone `Current bool`; OpResult.Current() derives from
// it.
type Currency int

// The currency verdicts, ordered from weakest to strongest claim.
const (
	// CurrencyUnknown makes no freshness claim: an eventual read, or a
	// retrieve that fell back to the most recent available replica.
	CurrencyUnknown Currency = iota
	// CurrencySessionFloor: the replica is at least as fresh as the
	// session's per-key floor (read-your-writes / monotonic reads), but
	// was not checked against KTS.
	CurrencySessionFloor
	// CurrencyWithinBound: the replica is at or past a cached last_ts
	// whose age was within the requested staleness bound.
	CurrencyWithinBound
	// CurrencyProven: the replica carries (at least) the last timestamp
	// KTS generated for the key — the paper's provable currency.
	CurrencyProven
)

// String returns "unknown", "session-floor", "within-bound" or "proven".
func (c Currency) String() string {
	switch c {
	case CurrencySessionFloor:
		return "session-floor"
	case CurrencyWithinBound:
		return "within-bound"
	case CurrencyProven:
		return "proven"
	default:
		return "unknown"
	}
}

// ReadPolicy is the acceptance predicate a UMS retrieve runs under: the
// requested consistency level plus the session evidence that can
// cheapen it. The zero value is the paper's provably-current retrieve.
type ReadPolicy struct {
	// Level selects the consistency level.
	Level Level
	// Bound is LevelBounded's staleness allowance: a cached last_ts no
	// older than Bound may stand in for the authoritative one.
	Bound time.Duration
	// Floor is the session's per-key timestamp floor: a successful
	// retrieve must never return a replica older than it, at any level.
	// Zero means no session constraint.
	Floor core.Timestamp
	// FloorFirst marks a session's default read: satisfy the retrieve
	// from the first replica meeting Floor — skipping the KTS round
	// trip — before falling back to the level's own acceptance rule.
	// Only meaningful with a non-zero Floor.
	FloorFirst bool
	// KnownTS is an authoritative last_ts the caller already holds for
	// this key — typically from a batched KTS round serving a multi-get.
	// A LevelCurrent retrieve uses it as the proven acceptance target
	// without its own KTS round trip; the currency claim is unchanged
	// (verdict Proven), only who paid for the evidence moved.
	KnownTS core.Timestamp
}
