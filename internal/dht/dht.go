// Package dht holds what the two DHT substrates (chord, can) share and
// what the services (kts, ums, brk) consume: node references, the
// namespaced replica store each peer hosts, the put/get wire protocol,
// and the Ring interface that abstracts "find the peer responsible for a
// ring position".
//
// In the paper's terms (§2.1): Ring.Lookup implements the DHT's lookup
// service locating rsp(k, h); the Client's PutH and GetH are the puth and
// geth operations; replica placement applies each h ∈ Hr to the key.
package dht

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/network"
)

// NodeRef identifies a peer: its ring position and transport address.
type NodeRef struct {
	ID   core.ID
	Addr network.Addr
}

// IsZero reports an unset reference.
func (r NodeRef) IsZero() bool { return r.Addr == "" }

func (r NodeRef) String() string {
	return fmt.Sprintf("%s@%s", r.ID, r.Addr)
}

// Handover lets a service participate in responsibility transfers: when
// a peer cedes part of its key range (a joiner takes over, or the peer
// leaves gracefully), Collect must gather and remove the service state
// for the ceded positions; Accept installs state on the new responsible.
// KTS registers one of these to move its counters — the paper's direct
// initialization algorithm (§4.2.1).
type Handover interface {
	// Name routes the payload to the same service on the receiving peer.
	Name() string
	// Collect gathers and removes state for every ring position
	// satisfying ceded. It returns nil when there is nothing to move.
	Collect(ceded func(core.ID) bool) network.Message
	// Accept installs a payload produced by Collect on another peer.
	Accept(msg network.Message)
}

// HandoverRegistrar is implemented by substrates that support service
// state handover (both chord.Node and can.Node do).
type HandoverRegistrar interface {
	RegisterHandover(Handover)
}

// Ring is the lookup service a DHT substrate provides to the services
// layered on it. Implementations: chord.Node, can.Node.
type Ring interface {
	// Self returns this peer's reference.
	Self() NodeRef
	// Lookup finds the peer currently responsible for ring position id.
	// The context bounds the walk (deadline and cancellation) and
	// carries the meter routing messages are charged to. hops reports
	// routing steps.
	Lookup(ctx context.Context, id core.ID) (ref NodeRef, hops int, err error)
	// Endpoint returns this peer's transport attachment, on which
	// services register their own RPC methods.
	Endpoint() network.Endpoint
	// Env returns the execution environment (virtual or real time).
	Env() network.Env
	// OwnsID reports whether this peer is currently responsible for id.
	OwnsID(id core.ID) bool
	// Alive reports whether the peer is still part of the overlay.
	Alive() bool
}

// RingNode is the full lifecycle surface a DHT substrate exposes to the
// deployment layer: the lookup service plus membership operations. All
// three substrates (chord.Node, can.Node, onehop.Node) implement it, so
// harnesses and the public facade can swap rings without caring which
// overlay routes underneath.
type RingNode interface {
	Ring
	HandoverRegistrar
	// CreateRing bootstraps a new overlay with this node as its only
	// member.
	CreateRing()
	// Join inserts this node into the overlay reachable at bootstrap,
	// taking over its share of the key space.
	Join(bootstrap network.Addr) error
	// Leave departs gracefully, ceding state to the remaining members.
	Leave() error
	// Crash kills the node without ceremony: no handover, no goodbyes.
	Crash()
	// Start launches the substrate's background maintenance.
	Start()
	// Nudge points the node at a live peer so a partitioned or stale
	// overlay can re-merge — the post-heal rendezvous.
	Nudge(bootstrap network.Addr) error
	// Store returns the replica store this peer hosts.
	Store() *LocalStore
}

// PutMode selects the overwrite discipline of a store operation.
type PutMode int

const (
	// PutOverwrite replaces whatever is stored.
	PutOverwrite PutMode = iota
	// PutIfNewer stores only if the incoming timestamp is strictly
	// greater than the stored one — the rule UMS peers apply (§3.2) so
	// that of concurrent inserts only the latest timestamp survives.
	PutIfNewer
	// PutIfNewerOrEqual stores if the incoming timestamp is greater than
	// or equal to the stored one. BRK uses it: version ties overwrite
	// arbitrarily, which is exactly the baseline's documented flaw.
	PutIfNewerOrEqual
)

// PutReq asks a peer to store a replica under (RingID, Qual).
type PutReq struct {
	RingID core.ID
	Qual   string
	Val    core.Value
	Mode   PutMode
}

// WireSize charges the payload against the simulated bandwidth.
func (r PutReq) WireSize() int { return network.DefaultWireSize + len(r.Qual) + len(r.Val.Data) }

// PutResp acknowledges a store.
type PutResp struct {
	// Stored is false when PutIfNewer rejected a stale write.
	Stored bool
}

// GetReq fetches the replica stored under (RingID, Qual).
type GetReq struct {
	RingID core.ID
	Qual   string
}

// GetResp returns the replica.
type GetResp struct {
	Val core.Value
}

// WireSize charges the payload against the simulated bandwidth.
func (r GetResp) WireSize() int { return network.DefaultWireSize + len(r.Val.Data) }

// OwnsReq asks a peer whether it is currently responsible for a ring
// position. The path cache uses it as a one-message probe: before
// trusting a cached owner, ask the owner itself. The answer comes from
// the peer's live view, so a node that ceded the arc since the cache
// entry was learned answers false and the caller re-resolves.
type OwnsReq struct {
	RingID core.ID
}

// OwnsResp answers an ownership probe.
type OwnsResp struct {
	Owns bool
}

// Item is one stored replica, as moved in bulk during handovers.
type Item struct {
	RingID core.ID
	Qual   string
	Val    core.Value
}

func init() {
	network.RegisterMessage(PutReq{}, PutResp{}, GetReq{}, GetResp{}, Item{}, []Item(nil), NodeRef{},
		OwnsReq{}, OwnsResp{})
}

// Qualifier builds the storage qualifier for key k replicated under hash
// function hname in namespace ns ("ums", "brk", ...). Namespacing keeps
// UMS and BRK replicas of the same key apart, and hname keeps replicas
// apart when one peer is responsible for a key under several functions.
func Qualifier(ns string, k core.Key, hname string) string {
	return ns + "|" + string(k) + "|" + hname
}

// ParseQualifier inverts Qualifier. Namespaces and hash-function names
// never contain '|', so the first and last separators delimit the key
// even when the key itself contains one. The replica-maintenance
// subsystem uses this to recover the hosted keys from a LocalStore.
func ParseQualifier(q string) (ns string, k core.Key, hname string, ok bool) {
	first := strings.Index(q, "|")
	last := strings.LastIndex(q, "|")
	if first < 0 || last <= first {
		return "", "", "", false
	}
	return q[:first], core.Key(q[first+1 : last]), q[last+1:], true
}

// Methods registered by RegisterStore.
const (
	MethodPut  = "dht.Put"
	MethodGet  = "dht.Get"
	MethodOwns = "dht.Owns"
)
