package dht

import (
	"strings"
	"testing"

	"repro/internal/core"
)

// FuzzParseQualifier checks the Qualifier/ParseQualifier pair from both
// directions: legal (ns, key, hname) triples must round-trip exactly —
// keys may contain the separator — and arbitrary strings must parse
// without panicking, with every accepted parse re-qualifying to the
// original string.
func FuzzParseQualifier(f *testing.F) {
	f.Add("replica", "agenda:mon", "h3")
	f.Add("counter", "key|with|pipes", "h0")
	f.Add("", "", "")
	f.Add("ns|bad", "k", "h")
	f.Add("||", "|", "||")
	f.Fuzz(func(t *testing.T, ns, key, hname string) {
		// Forward: namespaces and hash names never contain the
		// separator (the parser's documented precondition).
		if !strings.Contains(ns, "|") && !strings.Contains(hname, "|") {
			q := Qualifier(ns, core.Key(key), hname)
			gotNS, gotKey, gotH, ok := ParseQualifier(q)
			if !ok {
				t.Fatalf("ParseQualifier(%q) rejected a generated qualifier", q)
			}
			if gotNS != ns || string(gotKey) != key || gotH != hname {
				t.Fatalf("round trip (%q,%q,%q) → %q → (%q,%q,%q)",
					ns, key, hname, q, gotNS, gotKey, gotH)
			}
		}
		// Backward: any accepted string re-qualifies to itself. The key
		// argument doubles as an arbitrary input string here.
		if pns, pk, ph, ok := ParseQualifier(key); ok {
			if rebuilt := Qualifier(pns, pk, ph); rebuilt != key {
				t.Fatalf("re-qualify %q → (%q,%q,%q) → %q", key, pns, pk, ph, rebuilt)
			}
		}
	})
}
