package dht

import (
	"context"
	"sort"
	"time"

	"repro/internal/network"
	"repro/internal/obs"
)

// RepublishConfig tunes a Republisher.
type RepublishConfig struct {
	// Every is the round period; zero disables the background loop
	// (RunOnce still works for tests and manual rounds).
	Every time.Duration
	// PerRound caps the replicas re-pushed per round so a large store
	// never floods the overlay in one burst; zero selects 16.
	PerRound int
	// RPCTimeout bounds each re-push; zero selects 2s.
	RPCTimeout time.Duration
	// Obs receives republish metrics when non-nil.
	Obs *obs.Registry
}

func (c *RepublishConfig) defaults() {
	if c.PerRound <= 0 {
		c.PerRound = 16
	}
	if c.RPCTimeout <= 0 {
		c.RPCTimeout = 2 * time.Second
	}
}

// Republisher periodically re-pushes locally stored replicas to the
// peer currently responsible for them — the Kademlia-style republish
// round that fixes "new nodes can't find old values": under the paper's
// data model a joiner takes over an arc without inheriting its data, so
// an old value becomes unreachable at its own position until somebody
// stores it again. Each round walks a bounded slice of the local store
// (rotating cursor, sorted order, deterministic under simulation),
// skips positions this peer still owns, and PutIfNewer-s the rest to
// their current owner. The local copy is kept: republish moves replicas
// forward in time, never destroys them, and the store's owns-check on
// the receiving side keeps misdirected pushes out.
type Republisher struct {
	ring  Ring
	store *LocalStore
	cfg   RepublishConfig

	cursor int

	rounds  *obs.Counter
	pushed  *obs.Counter
	skipped *obs.Counter
	fails   *obs.Counter
}

// NewRepublisher builds a republisher over ring's local store.
func NewRepublisher(ring Ring, st *LocalStore, cfg RepublishConfig) *Republisher {
	cfg.defaults()
	r := &Republisher{ring: ring, store: st, cfg: cfg}
	reg := cfg.Obs
	r.rounds = reg.Counter("dcdht_republish_rounds_total", "Republish rounds run.")
	r.pushed = reg.Counter("dcdht_republish_pushed_total", "Replicas re-pushed to their current owner.")
	r.skipped = reg.Counter("dcdht_republish_skipped_total", "Replicas skipped because this peer still owns them.")
	r.fails = reg.Counter("dcdht_republish_failures_total", "Re-pushes that failed (lookup or put error).")
	return r
}

// Start launches the background round loop. No-op when Every is zero.
func (r *Republisher) Start() {
	if r.cfg.Every <= 0 {
		return
	}
	env := r.ring.Env()
	rng := env.Rand("republish:" + string(r.ring.Self().Addr))
	env.Go(func() {
		for r.ring.Alive() {
			jitter := time.Duration(rng.Int63n(int64(r.cfg.Every)/4 + 1))
			if err := env.Sleep(r.cfg.Every + jitter); err != nil {
				return
			}
			if !r.ring.Alive() {
				return
			}
			r.RunOnce(context.Background())
		}
	})
}

// RunOnce performs one republish round and returns how many replicas
// were re-pushed. Exported so tests and harnesses can drive rounds
// explicitly.
func (r *Republisher) RunOnce(ctx context.Context) int {
	r.rounds.Inc()
	items := r.store.Snapshot()
	sort.Slice(items, func(i, j int) bool {
		if items[i].RingID != items[j].RingID {
			return items[i].RingID < items[j].RingID
		}
		return items[i].Qual < items[j].Qual
	})
	if len(items) == 0 {
		return 0
	}
	n := r.cfg.PerRound
	if n > len(items) {
		n = len(items)
	}
	start := r.cursor % len(items)
	r.cursor = (start + n) % len(items)

	self := r.ring.Self()
	ep := r.ring.Endpoint()
	pushed := 0
	for i := 0; i < n; i++ {
		it := items[(start+i)%len(items)]
		if r.ring.OwnsID(it.RingID) {
			r.skipped.Inc()
			continue
		}
		ref, _, err := r.ring.Lookup(ctx, it.RingID)
		if err != nil {
			r.fails.Inc()
			continue
		}
		if ref.Addr == self.Addr {
			r.skipped.Inc()
			continue
		}
		_, err = ep.Invoke(ctx, ref.Addr, MethodPut, PutReq{
			RingID: it.RingID, Qual: it.Qual, Val: it.Val, Mode: PutIfNewer,
		}, network.Call{Timeout: r.cfg.RPCTimeout})
		if err != nil {
			r.fails.Inc()
			continue
		}
		pushed++
		r.pushed.Inc()
	}
	return pushed
}

// Pushed returns the cumulative count of re-pushed replicas.
func (r *Republisher) Pushed() uint64 { return r.pushed.Value() }
