package dht

import (
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/network"
	"repro/internal/store"
)

// LocalStore is the replica store a peer hosts: (ring position,
// qualifier) → stamped value. Both DHT substrates embed one and move its
// contents during responsibility handovers.
//
// Since the durability subsystem landed, LocalStore is a thin
// concurrency and handover layer over a pluggable store.Store backing:
// its own mutex makes the read-modify-write of conditional puts and the
// collect-and-remove of handovers atomic, while where the bytes live —
// volatile map, write-ahead log, simulated depot — is the backing's
// business. A peer that crashes crashes its backing; with the default
// volatile Mem that discards every replica, which is what makes replicas
// unavailable and drives the paper's probability of currency and
// availability below 1. A durable backing instead survives into the
// §4.2.2 restart path.
// The lock is striped by ring-position arc (the top bits of the ID):
// conditional puts against different arcs proceed in parallel instead of
// serializing the closed-loop drivers on one mutex, while the
// read-modify-write per key stays atomic. Whole-store operations
// (handover collects, snapshots, clears) take every stripe in order.
type LocalStore struct {
	stripes [storeStripes]sync.Mutex
	backing store.Store
}

// storeStripes is the lock fan-out; a power of two so the stripe of an
// ID is a shift.
const storeStripes = 16

// stripeOf maps a ring position to its lock stripe by arc: IDs are
// uniform (hashes), so the top bits spread load evenly and keys on the
// same arc — which one responsible serves — share a stripe.
func stripeOf(rid core.ID) int {
	return int(uint64(rid) >> 60)
}

// lockAll acquires every stripe in index order (the only multi-stripe
// order used, so no deadlock) for whole-store operations.
func (s *LocalStore) lockAll() {
	for i := range s.stripes {
		s.stripes[i].Lock()
	}
}

func (s *LocalStore) unlockAll() {
	for i := range s.stripes {
		s.stripes[i].Unlock()
	}
}

// NewLocalStore returns an empty store on volatile memory — the
// pre-durability behaviour, and still the right default for peers whose
// death should lose everything.
func NewLocalStore() *LocalStore {
	return NewLocalStoreOn(store.NewMem())
}

// NewLocalStoreOn returns a store over the given backing. The backing
// may be shared with the peer's KTS service (replica items and counters
// form one recoverable unit), so it must be internally synchronized —
// every store.Store implementation is.
func NewLocalStoreOn(s store.Store) *LocalStore {
	return &LocalStore{backing: s}
}

// Backing exposes the storage layer, so a node can flush it on graceful
// shutdown or hand the same unit to its counter service.
func (s *LocalStore) Backing() store.Store {
	return s.backing
}

// Put stores val under (rid, qual) subject to mode. It reports whether
// the value was stored; a backing write failure counts as not stored.
func (s *LocalStore) Put(rid core.ID, qual string, val core.Value, mode PutMode) bool {
	st := stripeOf(rid)
	s.stripes[st].Lock()
	defer s.stripes[st].Unlock()
	old, exists := s.backing.GetItem(rid, qual)
	switch mode {
	case PutIfNewer:
		if exists && !old.TS.Less(val.TS) {
			return false
		}
	case PutIfNewerOrEqual:
		if exists && val.TS.Less(old.TS) {
			return false
		}
	}
	err := s.backing.PutItem(store.Item{RingID: rid, Qual: qual, Val: val.Clone()})
	return err == nil
}

// Get returns the value stored under (rid, qual).
func (s *LocalStore) Get(rid core.ID, qual string) (core.Value, bool) {
	st := stripeOf(rid)
	s.stripes[st].Lock()
	defer s.stripes[st].Unlock()
	v, ok := s.backing.GetItem(rid, qual)
	if !ok {
		return core.Value{}, false
	}
	return v.Clone(), true
}

// CollectIf returns every item whose ring position satisfies pred,
// removing them when remove is set. Handover paths use it: a Chord node
// collects the arc it is ceding; a CAN node collects a zone.
func (s *LocalStore) CollectIf(pred func(core.ID) bool, remove bool) []Item {
	s.lockAll()
	defer s.unlockAll()
	var out []Item
	s.backing.EachItem(func(it store.Item) bool {
		if pred(it.RingID) {
			out = append(out, Item{RingID: it.RingID, Qual: it.Qual, Val: it.Val.Clone()})
		}
		return true
	})
	if remove {
		for _, it := range out {
			s.backing.DeleteItem(it.RingID, it.Qual)
		}
	}
	return out
}

// Snapshot returns a copy of every stored item without removing
// anything. The iteration order is unspecified (map order); callers that
// need determinism must sort. The anti-entropy sweep snapshots the store
// once per round so repairs never hold the store lock across RPCs.
func (s *LocalStore) Snapshot() []Item {
	return s.CollectIf(func(core.ID) bool { return true }, false)
}

// Absorb installs items collected elsewhere, keeping the newer value on
// qualifier collisions (a replica must never travel backwards in time).
func (s *LocalStore) Absorb(items []Item) {
	for _, it := range items {
		s.Put(it.RingID, it.Qual, it.Val, PutIfNewer)
	}
}

// Len returns the number of stored replicas.
func (s *LocalStore) Len() int {
	s.lockAll()
	defer s.unlockAll()
	return s.backing.ItemCount()
}

// Clear removes every replica but leaves the backing (and any counters
// sharing it) alive. Tests use it to simulate replica loss in place.
func (s *LocalStore) Clear() {
	s.lockAll()
	defer s.unlockAll()
	var drop []store.Item
	s.backing.EachItem(func(it store.Item) bool {
		drop = append(drop, it)
		return true
	})
	for _, it := range drop {
		s.backing.DeleteItem(it.RingID, it.Qual)
	}
}

// Crash fails the backing the way SIGKILL would: a volatile backing
// loses everything, a durable one keeps whatever its sync policy had
// made stable.
func (s *LocalStore) Crash() {
	s.lockAll()
	defer s.unlockAll()
	s.backing.Crash()
}

// RegisterStore wires the put/get protocol for store onto ep. owns guards
// against stale lookups: a peer only accepts operations for positions it
// is currently responsible for, returning ErrNotResponsible otherwise so
// callers re-resolve (the DHT's mapping function m(k, h, t) changes over
// time, §2.1).
func RegisterStore(ep network.Endpoint, store *LocalStore, owns func(core.ID) bool) {
	ep.Handle(MethodPut, func(_ network.Addr, req network.Message) (network.Message, error) {
		r := req.(PutReq)
		if owns != nil && !owns(r.RingID) {
			return nil, fmt.Errorf("dht: put %s: %w", r.RingID, core.ErrNotResponsible)
		}
		stored := store.Put(r.RingID, r.Qual, r.Val, r.Mode)
		return PutResp{Stored: stored}, nil
	})
	ep.Handle(MethodOwns, func(_ network.Addr, req network.Message) (network.Message, error) {
		r := req.(OwnsReq)
		return OwnsResp{Owns: owns == nil || owns(r.RingID)}, nil
	})
	ep.Handle(MethodGet, func(_ network.Addr, req network.Message) (network.Message, error) {
		r := req.(GetReq)
		if owns != nil && !owns(r.RingID) {
			return nil, fmt.Errorf("dht: get %s: %w", r.RingID, core.ErrNotResponsible)
		}
		v, ok := store.Get(r.RingID, r.Qual)
		if !ok {
			return nil, fmt.Errorf("dht: get %s %q: %w", r.RingID, r.Qual, core.ErrNotFound)
		}
		return GetResp{Val: v}, nil
	})
}
