package dht

import (
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/network"
)

// LocalStore is the replica store a peer hosts: (ring position,
// qualifier) → stamped value. Both DHT substrates embed one and move its
// contents during responsibility handovers. A peer that crashes simply
// discards its store, which is what makes replicas unavailable and
// drives the paper's probability of currency and availability below 1.
type LocalStore struct {
	mu    sync.Mutex
	items map[core.ID]map[string]core.Value
}

// NewLocalStore returns an empty store.
func NewLocalStore() *LocalStore {
	return &LocalStore{items: make(map[core.ID]map[string]core.Value)}
}

// Put stores val under (rid, qual) subject to mode. It reports whether
// the value was stored.
func (s *LocalStore) Put(rid core.ID, qual string, val core.Value, mode PutMode) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	m := s.items[rid]
	if m == nil {
		m = make(map[string]core.Value)
		s.items[rid] = m
	}
	old, exists := m[qual]
	switch mode {
	case PutIfNewer:
		if exists && !old.TS.Less(val.TS) {
			return false
		}
	case PutIfNewerOrEqual:
		if exists && val.TS.Less(old.TS) {
			return false
		}
	}
	m[qual] = val.Clone()
	return true
}

// Get returns the value stored under (rid, qual).
func (s *LocalStore) Get(rid core.ID, qual string) (core.Value, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	m, ok := s.items[rid]
	if !ok {
		return core.Value{}, false
	}
	v, ok := m[qual]
	if !ok {
		return core.Value{}, false
	}
	return v.Clone(), true
}

// CollectIf returns every item whose ring position satisfies pred,
// removing them when remove is set. Handover paths use it: a Chord node
// collects the arc it is ceding; a CAN node collects a zone.
func (s *LocalStore) CollectIf(pred func(core.ID) bool, remove bool) []Item {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []Item
	for rid, m := range s.items {
		if !pred(rid) {
			continue
		}
		for qual, val := range m {
			out = append(out, Item{RingID: rid, Qual: qual, Val: val.Clone()})
		}
		if remove {
			delete(s.items, rid)
		}
	}
	return out
}

// Snapshot returns a copy of every stored item without removing
// anything. The iteration order is unspecified (map order); callers that
// need determinism must sort. The anti-entropy sweep snapshots the store
// once per round so repairs never hold the store lock across RPCs.
func (s *LocalStore) Snapshot() []Item {
	return s.CollectIf(func(core.ID) bool { return true }, false)
}

// Absorb installs items collected elsewhere, keeping the newer value on
// qualifier collisions (a replica must never travel backwards in time).
func (s *LocalStore) Absorb(items []Item) {
	for _, it := range items {
		s.Put(it.RingID, it.Qual, it.Val, PutIfNewer)
	}
}

// Len returns the number of stored replicas.
func (s *LocalStore) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, m := range s.items {
		n += len(m)
	}
	return n
}

// Clear discards everything (crash semantics).
func (s *LocalStore) Clear() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.items = make(map[core.ID]map[string]core.Value)
}

// RegisterStore wires the put/get protocol for store onto ep. owns guards
// against stale lookups: a peer only accepts operations for positions it
// is currently responsible for, returning ErrNotResponsible otherwise so
// callers re-resolve (the DHT's mapping function m(k, h, t) changes over
// time, §2.1).
func RegisterStore(ep network.Endpoint, store *LocalStore, owns func(core.ID) bool) {
	ep.Handle(MethodPut, func(_ network.Addr, req network.Message) (network.Message, error) {
		r := req.(PutReq)
		if owns != nil && !owns(r.RingID) {
			return nil, fmt.Errorf("dht: put %s: %w", r.RingID, core.ErrNotResponsible)
		}
		stored := store.Put(r.RingID, r.Qual, r.Val, r.Mode)
		return PutResp{Stored: stored}, nil
	})
	ep.Handle(MethodGet, func(_ network.Addr, req network.Message) (network.Message, error) {
		r := req.(GetReq)
		if owns != nil && !owns(r.RingID) {
			return nil, fmt.Errorf("dht: get %s: %w", r.RingID, core.ErrNotResponsible)
		}
		v, ok := store.Get(r.RingID, r.Qual)
		if !ok {
			return nil, fmt.Errorf("dht: get %s %q: %w", r.RingID, r.Qual, core.ErrNotFound)
		}
		return GetResp{Val: v}, nil
	})
}
