// Package perf is the deterministic benchmark subsystem: it defines the
// machine-readable perf figure (BENCH_perf.json), the measurement
// discipline that keeps it reproducible, and the validation invariants
// CI holds every regeneration to.
//
// The figure splits every metric into two classes:
//
//   - Deterministic fields — operation counts, messages per op, KTS
//     requests per op, simulated latency, kernel event counts — are
//     functions of the seed alone. Two runs at the same seed and scale
//     produce bit-identical values, so CI regenerates the figure twice
//     with timing stripped and byte-compares the files, then checks the
//     deterministic fields against the committed baseline exactly.
//
//   - Timing fields — wall-clock ops/sec, ns/event, allocs/op — depend
//     on the host and are never compared across machines. StripTiming
//     zeroes them for the byte-compare; the committed baseline keeps one
//     machine's numbers as a trajectory record, not a gate.
//
// The kernel benchmark (KernelBench) drives the sharded simulation
// kernel with synthetic self-rescheduling event chains — no protocol
// stack, pure scheduler — at deployment scales the protocol figures
// never reach (1k/10k/100k peers), isolating the event-queue hot path
// the rest of the suite sits on.
package perf

import (
	"fmt"
	"runtime"
	"time"
)

// SchemaV1 names the current perf figure schema; Validate rejects
// anything else so a stale baseline fails loudly.
const SchemaV1 = "dcdht-perf/v1"

// Figure is the machine-readable perf export (BENCH_perf.json).
type Figure struct {
	// Schema tags the layout (SchemaV1).
	Schema string `json:"schema"`
	// Seed and Full echo the run's provenance.
	Seed int64 `json:"seed"`
	Full bool  `json:"full"`
	// Ops holds one micro point per (algorithm, operation, level).
	Ops []OpPoint `json:"ops"`
	// Kernel holds the scheduler benchmark at each synthetic scale.
	Kernel []KernelPoint `json:"kernel"`
	// Macro is the end-to-end workload point (nil when skipped).
	Macro *MacroPoint `json:"macro,omitempty"`
}

// OpPoint measures one operation shape end to end through a simulated
// deployment: UMS or BRK, put or get, and for UMS gets the consistency
// level the read ran at.
type OpPoint struct {
	// Alg is "ums" or "brk"; Op is "put" or "get"; Level is the
	// consistency level for UMS gets ("current", "bounded", "eventual")
	// and empty otherwise — puts and BRK ops have no level axis.
	Alg   string `json:"alg"`
	Op    string `json:"op"`
	Level string `json:"level,omitempty"`

	// Deterministic fields: functions of the seed alone.
	OpsRun       int     `json:"ops_run"`
	MsgsPerOp    float64 `json:"msgs_per_op"`
	KTSReqsPerOp float64 `json:"kts_reqs_per_op"`
	SimLatencyMs float64 `json:"sim_latency_ms"`

	// Timing fields: host-dependent, zeroed by StripTiming.
	WallOpsPerSec float64 `json:"wall_ops_per_sec"`
	AllocsPerOp   float64 `json:"allocs_per_op"`
}

// key identifies an op point across runs for baseline comparison.
func (p OpPoint) key() string { return p.Alg + "/" + p.Op + "/" + p.Level }

// KernelPoint measures the bare simulation kernel at one synthetic
// deployment scale.
type KernelPoint struct {
	// Deterministic fields.
	Peers  int    `json:"peers"`
	Events uint64 `json:"events"`

	// Timing fields.
	EventsPerSec   float64 `json:"events_per_sec"`
	NsPerEvent     float64 `json:"ns_per_event"`
	AllocsPerEvent float64 `json:"allocs_per_event"`
}

// MacroPoint measures one closed-loop workload run end to end.
type MacroPoint struct {
	// Deterministic fields.
	Peers         int     `json:"peers"`
	Ops           int     `json:"ops"`
	Failed        int     `json:"failed"`
	SimElapsedSec float64 `json:"sim_elapsed_sec"`
	SimOpsPerSec  float64 `json:"sim_ops_per_sec"`
	// Timing fields.
	WallMs float64 `json:"wall_ms"`
}

// StripTiming zeroes every host-dependent field, leaving only the
// deterministic ones — after this, two same-seed runs marshal to
// byte-identical JSON.
func (f *Figure) StripTiming() {
	for i := range f.Ops {
		f.Ops[i].WallOpsPerSec = 0
		f.Ops[i].AllocsPerOp = 0
	}
	for i := range f.Kernel {
		f.Kernel[i].EventsPerSec = 0
		f.Kernel[i].NsPerEvent = 0
		f.Kernel[i].AllocsPerEvent = 0
	}
	if f.Macro != nil {
		f.Macro.WallMs = 0
	}
}

// Validate checks the figure's internal invariants: schema, shape, and
// the cost orderings the consistency model promises — relaxed reads
// must cost less than provably-current ones, eventual reads must never
// touch KTS, and every UMS write pays at least one timestamp grant.
func (f *Figure) Validate() error {
	if f.Schema != SchemaV1 {
		return fmt.Errorf("perf: schema %q, want %q", f.Schema, SchemaV1)
	}
	if len(f.Ops) == 0 {
		return fmt.Errorf("perf: empty op point set")
	}
	byKey := map[string]OpPoint{}
	for i, p := range f.Ops {
		if p.Alg != "ums" && p.Alg != "brk" {
			return fmt.Errorf("perf: op point %d: unknown alg %q", i, p.Alg)
		}
		if p.Op != "put" && p.Op != "get" {
			return fmt.Errorf("perf: op point %d: unknown op %q", i, p.Op)
		}
		switch p.Level {
		case "":
			if p.Alg == "ums" && p.Op == "get" {
				return fmt.Errorf("perf: op point %d: ums get without a level", i)
			}
		case "current", "bounded", "eventual":
			if p.Alg != "ums" || p.Op != "get" {
				return fmt.Errorf("perf: op point %d: level %q on %s %s", i, p.Level, p.Alg, p.Op)
			}
		default:
			return fmt.Errorf("perf: op point %d: unknown level %q", i, p.Level)
		}
		if p.OpsRun <= 0 {
			return fmt.Errorf("perf: op point %s ran no operations", p.key())
		}
		if p.MsgsPerOp <= 0 || p.SimLatencyMs < 0 || p.KTSReqsPerOp < 0 {
			return fmt.Errorf("perf: op point %s: implausible costs: msgs=%v lat=%v kts=%v",
				p.key(), p.MsgsPerOp, p.SimLatencyMs, p.KTSReqsPerOp)
		}
		if _, dup := byKey[p.key()]; dup {
			return fmt.Errorf("perf: duplicate op point %s", p.key())
		}
		byKey[p.key()] = p
	}
	// BRK has no timestamp service: any KTS traffic is a measurement bug.
	for _, p := range f.Ops {
		if p.Alg == "brk" && p.KTSReqsPerOp != 0 {
			return fmt.Errorf("perf: brk point %s reports KTS traffic (%v/op)", p.key(), p.KTSReqsPerOp)
		}
	}
	// UMS writes pay at least one gen_ts grant per insert.
	if put, ok := byKey["ums/put/"]; ok && put.KTSReqsPerOp < 1 {
		return fmt.Errorf("perf: ums put reports %v KTS reqs/op, want >= 1", put.KTSReqsPerOp)
	}
	// Level orderings, when all three UMS get levels are present.
	cur, ok1 := byKey["ums/get/current"]
	bnd, ok2 := byKey["ums/get/bounded"]
	ev, ok3 := byKey["ums/get/eventual"]
	if ok1 && ok2 && ok3 {
		if ev.KTSReqsPerOp != 0 {
			return fmt.Errorf("perf: eventual get touched KTS (%v reqs/op)", ev.KTSReqsPerOp)
		}
		if !(ev.MsgsPerOp < cur.MsgsPerOp) || !(bnd.MsgsPerOp < cur.MsgsPerOp) {
			return fmt.Errorf("perf: messages not strictly ordered: eventual %.2f / bounded %.2f vs current %.2f",
				ev.MsgsPerOp, bnd.MsgsPerOp, cur.MsgsPerOp)
		}
		if cur.KTSReqsPerOp < 1 {
			return fmt.Errorf("perf: current get reports %v KTS reqs/op, want >= 1", cur.KTSReqsPerOp)
		}
	}
	if len(f.Kernel) < 2 {
		return fmt.Errorf("perf: kernel sweep has %d points, want >= 2 scales", len(f.Kernel))
	}
	for i, p := range f.Kernel {
		if p.Peers <= 0 || p.Events == 0 {
			return fmt.Errorf("perf: kernel point %d: peers=%d events=%d", i, p.Peers, p.Events)
		}
		if i > 0 {
			prev := f.Kernel[i-1]
			if p.Peers <= prev.Peers {
				return fmt.Errorf("perf: kernel scales not increasing: %d after %d", p.Peers, prev.Peers)
			}
			if p.Events <= prev.Events {
				return fmt.Errorf("perf: kernel events not increasing with scale: %d@%d after %d@%d",
					p.Events, p.Peers, prev.Events, prev.Peers)
			}
		}
	}
	if f.Macro != nil {
		if f.Macro.Ops <= 0 {
			return fmt.Errorf("perf: macro point ran no operations")
		}
		if f.Macro.Failed*10 > f.Macro.Ops {
			return fmt.Errorf("perf: macro point failed %d of %d ops (>10%%)", f.Macro.Failed, f.Macro.Ops)
		}
		if f.Macro.SimElapsedSec <= 0 {
			return fmt.Errorf("perf: macro point reports no simulated window")
		}
	}
	return nil
}

// ValidateAgainst checks f against a committed baseline: the same point
// set, and every deterministic field bit-equal — the simulation is a
// function of the seed, so any drift is a behavior change that must
// come with a regenerated baseline. Timing fields are never compared.
func (f *Figure) ValidateAgainst(base *Figure) error {
	if err := f.Validate(); err != nil {
		return err
	}
	if f.Schema != base.Schema || f.Seed != base.Seed || f.Full != base.Full {
		return fmt.Errorf("perf: provenance drifted from baseline: schema=%q seed=%d full=%v, want %q/%d/%v",
			f.Schema, f.Seed, f.Full, base.Schema, base.Seed, base.Full)
	}
	if len(f.Ops) != len(base.Ops) {
		return fmt.Errorf("perf: %d op points, baseline has %d", len(f.Ops), len(base.Ops))
	}
	for i, p := range f.Ops {
		b := base.Ops[i]
		if p.key() != b.key() {
			return fmt.Errorf("perf: op point %d is %s, baseline has %s", i, p.key(), b.key())
		}
		if p.OpsRun != b.OpsRun || p.MsgsPerOp != b.MsgsPerOp ||
			p.KTSReqsPerOp != b.KTSReqsPerOp || p.SimLatencyMs != b.SimLatencyMs {
			return fmt.Errorf("perf: op point %s drifted from baseline: ops=%d msgs=%v kts=%v lat=%v, want %d/%v/%v/%v",
				p.key(), p.OpsRun, p.MsgsPerOp, p.KTSReqsPerOp, p.SimLatencyMs,
				b.OpsRun, b.MsgsPerOp, b.KTSReqsPerOp, b.SimLatencyMs)
		}
	}
	if len(f.Kernel) != len(base.Kernel) {
		return fmt.Errorf("perf: %d kernel points, baseline has %d", len(f.Kernel), len(base.Kernel))
	}
	for i, p := range f.Kernel {
		b := base.Kernel[i]
		if p.Peers != b.Peers || p.Events != b.Events {
			return fmt.Errorf("perf: kernel point %d drifted: %d peers / %d events, want %d/%d",
				i, p.Peers, p.Events, b.Peers, b.Events)
		}
	}
	if (f.Macro == nil) != (base.Macro == nil) {
		return fmt.Errorf("perf: macro point presence differs from baseline")
	}
	if f.Macro != nil {
		m, b := f.Macro, base.Macro
		if m.Peers != b.Peers || m.Ops != b.Ops || m.Failed != b.Failed ||
			m.SimElapsedSec != b.SimElapsedSec || m.SimOpsPerSec != b.SimOpsPerSec {
			return fmt.Errorf("perf: macro point drifted: %+v, want %+v", *m, *b)
		}
	}
	return nil
}

// Timing is one measured stretch of host work: wall seconds and heap
// allocations, normalized per operation by Measure.
type Timing struct {
	WallSeconds float64
	OpsPerSec   float64
	AllocsPerOp float64
}

// Measure runs fn — which performs ops operations — once, bracketed by
// wall clock and heap accounting. The caller provides determinism; this
// helper only attaches the host-dependent timing that StripTiming later
// removes. A GC runs first so the Mallocs delta reflects fn alone as
// closely as the runtime allows.
func Measure(ops int, fn func()) Timing {
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	start := time.Now()
	fn()
	wall := time.Since(start)
	runtime.ReadMemStats(&m1)
	t := Timing{WallSeconds: wall.Seconds()}
	if ops > 0 {
		t.AllocsPerOp = float64(m1.Mallocs-m0.Mallocs) / float64(ops)
		if wall > 0 {
			t.OpsPerSec = float64(ops) / wall.Seconds()
		}
	}
	return t
}
