package perf

import (
	"time"

	"repro/internal/simnet"
)

// KernelConfig shapes one scheduler benchmark run.
type KernelConfig struct {
	// Seed feeds the kernel; the event count is a pure function of
	// Peers and EventsPerPeer, so the seed only matters for provenance.
	Seed int64
	// Peers is the number of synthetic event chains — each stands in
	// for one simulated peer's maintenance timer.
	Peers int
	// EventsPerPeer is the chain length: how many times each peer's
	// timer fires before going quiet.
	EventsPerPeer int
}

// chain is one synthetic peer: a self-rescheduling kernel callback that
// fires left more times at a fixed per-peer period. The tick function
// is package-level and the chain travels as the callback argument, so a
// steady-state reschedule allocates nothing — the benchmark measures
// the scheduler, not closure creation.
type chain struct {
	k      *simnet.Kernel
	left   int
	period time.Duration
}

func tick(x any) {
	c := x.(*chain)
	if c.left--; c.left > 0 {
		c.k.AfterCall(c.period, tick, c)
	}
}

// KernelBench boots a fresh simulation kernel, schedules cfg.Peers
// self-rescheduling event chains with deliberately co-prime periods (so
// deadlines interleave across the queue shards rather than marching in
// lockstep), and drains the queue. The deterministic field is the total
// event count — exactly Peers x EventsPerPeer plus nothing, since
// chains are pure AfterCall events with no processes — and the timing
// fields record how fast this host dispatched them.
func KernelBench(cfg KernelConfig) KernelPoint {
	if cfg.Peers <= 0 {
		cfg.Peers = 1000
	}
	if cfg.EventsPerPeer <= 0 {
		cfg.EventsPerPeer = 10
	}
	k := simnet.New(cfg.Seed)
	defer k.Stop()

	chains := make([]chain, cfg.Peers)
	for i := range chains {
		chains[i] = chain{
			k:    k,
			left: cfg.EventsPerPeer,
			// Periods 1..17ms, skipping lockstep: neighbouring peers land
			// on different shards and different virtual instants.
			period: time.Duration(1+i%17) * time.Millisecond,
		}
	}

	point := KernelPoint{Peers: cfg.Peers}
	t := Measure(cfg.Peers*cfg.EventsPerPeer, func() {
		for i := range chains {
			c := &chains[i]
			k.AfterCall(c.period, tick, c)
		}
		k.RunUntilIdle()
	})
	point.Events = k.Events()
	if t.WallSeconds > 0 {
		point.EventsPerSec = float64(point.Events) / t.WallSeconds
		point.NsPerEvent = t.WallSeconds * 1e9 / float64(point.Events)
	}
	point.AllocsPerEvent = t.AllocsPerOp * float64(cfg.Peers*cfg.EventsPerPeer) / float64(point.Events)
	return point
}
