package perf

import (
	"encoding/json"
	"strings"
	"testing"
	"time"

	"repro/internal/simnet"
)

// validFigure builds a figure that satisfies every Validate invariant;
// tests mutate copies of it to probe individual checks.
func validFigure() *Figure {
	return &Figure{
		Schema: SchemaV1,
		Seed:   42,
		Ops: []OpPoint{
			{Alg: "ums", Op: "put", OpsRun: 40, MsgsPerOp: 30, KTSReqsPerOp: 1, SimLatencyMs: 80, WallOpsPerSec: 1000, AllocsPerOp: 50},
			{Alg: "ums", Op: "get", Level: "current", OpsRun: 40, MsgsPerOp: 12, KTSReqsPerOp: 1, SimLatencyMs: 60},
			{Alg: "ums", Op: "get", Level: "bounded", OpsRun: 40, MsgsPerOp: 4, KTSReqsPerOp: 0.1, SimLatencyMs: 20},
			{Alg: "ums", Op: "get", Level: "eventual", OpsRun: 40, MsgsPerOp: 3, KTSReqsPerOp: 0, SimLatencyMs: 15},
			{Alg: "brk", Op: "put", OpsRun: 40, MsgsPerOp: 25, SimLatencyMs: 70},
			{Alg: "brk", Op: "get", OpsRun: 40, MsgsPerOp: 18, SimLatencyMs: 65},
		},
		Kernel: []KernelPoint{
			{Peers: 1000, Events: 10000, EventsPerSec: 5e6},
			{Peers: 10000, Events: 100000, EventsPerSec: 4e6},
			{Peers: 100000, Events: 1000000, EventsPerSec: 3e6},
		},
		Macro: &MacroPoint{Peers: 48, Ops: 300, SimElapsedSec: 120, SimOpsPerSec: 2.5, WallMs: 900},
	}
}

func TestValidateAcceptsWellFormedFigure(t *testing.T) {
	if err := validFigure().Validate(); err != nil {
		t.Fatalf("valid figure rejected: %v", err)
	}
}

func TestValidateRejectsBrokenFigures(t *testing.T) {
	cases := []struct {
		name   string
		break_ func(*Figure)
		want   string
	}{
		{"schema", func(f *Figure) { f.Schema = "dcdht-perf/v0" }, "schema"},
		{"no ops", func(f *Figure) { f.Ops = nil }, "empty op point set"},
		{"bad alg", func(f *Figure) { f.Ops[0].Alg = "paxos" }, "unknown alg"},
		{"bad level", func(f *Figure) { f.Ops[1].Level = "snapshot" }, "unknown level"},
		{"level on put", func(f *Figure) { f.Ops[0].Level = "current" }, "level"},
		{"missing level", func(f *Figure) { f.Ops[1].Level = "" }, "without a level"},
		{"no ops run", func(f *Figure) { f.Ops[0].OpsRun = 0 }, "ran no operations"},
		{"brk kts", func(f *Figure) { f.Ops[4].KTSReqsPerOp = 2 }, "brk"},
		{"put without grant", func(f *Figure) { f.Ops[0].KTSReqsPerOp = 0.5 }, "want >= 1"},
		{"eventual kts", func(f *Figure) { f.Ops[3].KTSReqsPerOp = 1 }, "eventual get touched KTS"},
		{"ordering", func(f *Figure) { f.Ops[3].MsgsPerOp = 50 }, "not strictly ordered"},
		{"one kernel point", func(f *Figure) { f.Kernel = f.Kernel[:1] }, "kernel sweep"},
		{"kernel scale order", func(f *Figure) { f.Kernel[2].Peers = 10 }, "not increasing"},
		{"kernel event order", func(f *Figure) { f.Kernel[2].Events = 5 }, "events not increasing"},
		{"macro empty", func(f *Figure) { f.Macro.Ops = 0 }, "macro point ran no operations"},
		{"macro failures", func(f *Figure) { f.Macro.Failed = 200 }, ">10%"},
	}
	for _, tc := range cases {
		f := validFigure()
		tc.break_(f)
		err := f.Validate()
		if err == nil {
			t.Errorf("%s: broken figure accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

func TestValidateAgainstComparesOnlyDeterministicFields(t *testing.T) {
	base := validFigure()
	f := validFigure()
	// Timing drift between hosts must pass.
	f.Ops[0].WallOpsPerSec = 123456
	f.Ops[0].AllocsPerOp = 7
	f.Kernel[0].EventsPerSec = 1
	f.Macro.WallMs = 1e6
	if err := f.ValidateAgainst(base); err != nil {
		t.Fatalf("timing drift rejected: %v", err)
	}
	// Deterministic drift must fail.
	f = validFigure()
	f.Ops[1].MsgsPerOp++
	if err := f.ValidateAgainst(base); err == nil {
		t.Fatal("msgs_per_op drift accepted")
	}
	f = validFigure()
	f.Kernel[1].Events++
	if err := f.ValidateAgainst(base); err == nil {
		t.Fatal("kernel event drift accepted")
	}
	f = validFigure()
	f.Macro.SimOpsPerSec++
	if err := f.ValidateAgainst(base); err == nil {
		t.Fatal("macro drift accepted")
	}
	f = validFigure()
	f.Seed++
	if err := f.ValidateAgainst(base); err == nil {
		t.Fatal("seed drift accepted")
	}
}

func TestStripTimingProducesStableJSON(t *testing.T) {
	a, b := validFigure(), validFigure()
	// Pretend the two runs timed differently.
	a.Ops[0].WallOpsPerSec, b.Ops[0].WallOpsPerSec = 111, 222
	a.Kernel[0].NsPerEvent, b.Kernel[0].NsPerEvent = 3, 4
	a.Macro.WallMs, b.Macro.WallMs = 5, 6
	a.StripTiming()
	b.StripTiming()
	ja, _ := json.Marshal(a)
	jb, _ := json.Marshal(b)
	if string(ja) != string(jb) {
		t.Fatalf("stripped figures differ:\n%s\n%s", ja, jb)
	}
	if strings.Contains(string(ja), "111") {
		t.Fatal("timing survived StripTiming")
	}
}

func TestKernelBenchEventCountIsDeterministic(t *testing.T) {
	cfg := KernelConfig{Seed: 7, Peers: 500, EventsPerPeer: 8}
	a := KernelBench(cfg)
	b := KernelBench(cfg)
	if a.Events != b.Events {
		t.Fatalf("event counts differ across runs: %d vs %d", a.Events, b.Events)
	}
	if want := uint64(500 * 8); a.Events != want {
		t.Fatalf("events = %d, want exactly peers x chain length = %d", a.Events, want)
	}
	if a.Peers != 500 {
		t.Fatalf("peers = %d, want 500", a.Peers)
	}
}

func TestKernelBenchScalesEventsWithPeers(t *testing.T) {
	small := KernelBench(KernelConfig{Seed: 1, Peers: 100, EventsPerPeer: 5})
	large := KernelBench(KernelConfig{Seed: 1, Peers: 1000, EventsPerPeer: 5})
	if large.Events <= small.Events {
		t.Fatalf("events did not scale: %d at 100 peers vs %d at 1000", small.Events, large.Events)
	}
}

func TestMeasureNormalizesPerOp(t *testing.T) {
	var sink []*int
	tm := Measure(100, func() {
		for i := 0; i < 100; i++ {
			v := i
			sink = append(sink, &v)
		}
	})
	_ = sink
	if tm.WallSeconds <= 0 {
		t.Fatalf("wall seconds %v not positive", tm.WallSeconds)
	}
	if tm.AllocsPerOp <= 0 {
		t.Fatalf("allocs/op %v not positive for an allocating loop", tm.AllocsPerOp)
	}
	if tm.OpsPerSec <= 0 {
		t.Fatalf("ops/sec %v not positive", tm.OpsPerSec)
	}
}

// BenchmarkKernelDispatch is the bench-smoke entry point: one chain per
// iteration batch through the sharded kernel, reported as ns/event.
func BenchmarkKernelDispatch(b *testing.B) {
	k := simnet.New(1)
	defer k.Stop()
	c := &chain{k: k, left: b.N, period: time.Millisecond}
	b.ReportAllocs()
	b.ResetTimer()
	k.AfterCall(c.period, tick, c)
	k.RunUntilIdle()
}
