package exp

import (
	"encoding/json"
	"testing"
	"time"
)

// tinyRecoveryOptions keeps the tests fast: a small population still
// plays both crash waves and both full restart waves.
func tinyRecoveryOptions() (Options, RecoveryOptions) {
	return Options{Seed: 17}, RecoveryOptions{
		Peers:    30,
		Duration: 20 * time.Minute,
		Queries:  16,
	}
}

// TestRecoveryFigureDeterminism is the acceptance test the race job
// replays: both storage modes must replay bit-identically per seed —
// identical point JSON, including the event counts and every metric.
func TestRecoveryFigureDeterminism(t *testing.T) {
	o, ro := tinyRecoveryOptions()
	run := func() []byte {
		points, err := RecoveryComparison(o, ro)
		if err != nil {
			t.Fatal(err)
		}
		blob, err := json.Marshal(points)
		if err != nil {
			t.Fatal(err)
		}
		return blob
	}
	blob1 := run()
	blob2 := run()
	if string(blob1) != string(blob2) {
		t.Fatalf("recovery points diverged across replays:\n%s\nvs\n%s", blob1, blob2)
	}
}

// TestRecoveryFigureShapes checks the figure plumbing and the ordering
// the bench gate enforces: one point per mode, both waves played, and
// the durable mode at least as current — and no more lossy — than
// crash-and-forget on the same seed.
func TestRecoveryFigureShapes(t *testing.T) {
	o, ro := tinyRecoveryOptions()
	table, points, err := FigureRecovery(o, ro)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("points = %d, want 2 (crash-forget and durable)", len(points))
	}
	if points[0].Mode != "crash-forget" || points[1].Mode != "durable" {
		t.Fatalf("mode order = %q, %q", points[0].Mode, points[1].Mode)
	}
	for _, p := range points {
		if p.QueriesRun == 0 {
			t.Fatalf("mode %q ran no queries", p.Mode)
		}
		if p.Crashes == 0 || p.Restarts == 0 {
			t.Fatalf("mode %q: crashes=%d restarts=%d, want both waves played", p.Mode, p.Crashes, p.Restarts)
		}
		if p.Seed != points[0].Seed || p.Peers != points[0].Peers {
			t.Fatalf("modes diverge in provenance: %+v vs %+v", p, points[0])
		}
	}
	cf, du := points[0], points[1]
	if du.CurrentRate < cf.CurrentRate {
		t.Fatalf("durable currency %.3f below crash-forget %.3f on the same seed",
			du.CurrentRate, cf.CurrentRate)
	}
	if du.FailedQueries > cf.FailedQueries {
		t.Fatalf("durable failed %d queries, crash-forget only %d", du.FailedQueries, cf.FailedQueries)
	}
	if len(table.XS) != 2 {
		t.Fatalf("table rows = %v", table.XS)
	}
	if _, err := json.Marshal(points); err != nil {
		t.Fatalf("points not serializable: %v", err)
	}
}
