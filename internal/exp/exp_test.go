package exp

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// quickScenario is a small, fast configuration used across tests. The
// churn rate is per-capita equivalent to Table 1 (1/s at 10,000 peers
// would recycle a 60-peer network many times over in minutes).
func quickScenario(alg Algorithm, seed int64) Scenario {
	sc := Table1Scenario(alg, 60, seed)
	sc.Duration = 10 * time.Minute
	sc.Warmup = time.Minute
	sc.Keys = 8
	sc.Queries = 12
	sc.ChurnRate = 0.05
	sc.UpdateRate = 6 // time-compressed Table 1 update rate
	sc.Chord.StabilizeEvery = 10 * time.Second
	sc.Chord.FixFingersEvery = 15 * time.Second
	sc.Chord.CheckPredEvery = 10 * time.Second
	return sc
}

func TestRunScenarioUMSDirect(t *testing.T) {
	r := Run(quickScenario(AlgUMSDirect, 1))
	if r.QueriesRun == 0 {
		t.Fatal("no queries ran")
	}
	if r.QueriesFailed == r.QueriesRun {
		t.Fatalf("every query failed: %+v", r)
	}
	if r.RespTime.Mean() <= 0 {
		t.Fatal("no response time recorded")
	}
	if r.Msgs.Mean() <= 0 {
		t.Fatal("no message cost recorded")
	}
	if r.ChurnEvents == 0 {
		t.Fatal("churn process never fired")
	}
	if r.CurrentRate == 0 {
		t.Fatalf("UMS-Direct returned no provably current replica at all: %+v", r)
	}
	t.Logf("UMS-Direct: resp=%.2fs msgs=%.1f probes=%.2f current=%.0f%% churn=%d events=%d wall=%s",
		r.RespTime.Mean(), r.Msgs.Mean(), r.Probed.Mean(), 100*r.CurrentRate,
		r.ChurnEvents, r.SimEvents, r.WallTime)
}

func TestRunScenarioBRKProbesAllReplicas(t *testing.T) {
	r := Run(quickScenario(AlgBRK, 2))
	if r.QueriesRun == 0 {
		t.Fatal("no queries ran")
	}
	// BRK must always probe all |Hr| replica positions.
	if got := r.Probed.Mean(); got != 10 {
		t.Fatalf("BRK probed %.2f replicas on average, want exactly |Hr|=10", got)
	}
	if r.CurrentRate != 0 {
		t.Fatal("BRK must never prove currency")
	}
}

func TestUMSBeatsBRK(t *testing.T) {
	ums := Run(quickScenario(AlgUMSDirect, 3))
	brk := Run(quickScenario(AlgBRK, 3))
	if ums.Probed.Mean() >= brk.Probed.Mean() {
		t.Fatalf("UMS probed %.2f vs BRK %.2f — UMS should probe far fewer",
			ums.Probed.Mean(), brk.Probed.Mean())
	}
	if ums.RespTime.Mean() >= brk.RespTime.Mean() {
		t.Fatalf("UMS response %.2fs vs BRK %.2fs — the paper's headline result is inverted",
			ums.RespTime.Mean(), brk.RespTime.Mean())
	}
	if ums.Msgs.Mean() >= brk.Msgs.Mean() {
		t.Fatalf("UMS msgs %.1f vs BRK %.1f — communication cost should favor UMS",
			ums.Msgs.Mean(), brk.Msgs.Mean())
	}
	t.Logf("UMS-Direct resp=%.2fs msgs=%.1f | BRK resp=%.2fs msgs=%.1f",
		ums.RespTime.Mean(), ums.Msgs.Mean(), brk.RespTime.Mean(), brk.Msgs.Mean())
}

func TestScenarioDeterministic(t *testing.T) {
	a := Run(quickScenario(AlgUMSDirect, 7))
	b := Run(quickScenario(AlgUMSDirect, 7))
	if a.RespTime.Mean() != b.RespTime.Mean() || a.Msgs.Mean() != b.Msgs.Mean() ||
		a.ChurnEvents != b.ChurnEvents || a.SimEvents != b.SimEvents {
		t.Fatalf("same seed diverged:\n%+v\nvs\n%+v", a, b)
	}
}

func TestTableRenderAndCSV(t *testing.T) {
	tb := NewTable("T", "x", "y", []string{"a", "b"})
	tb.Set("1", "a", 1.5)
	tb.Set("1", "b", 2)
	tb.Set("2", "a", 100)
	tb.Notes = append(tb.Notes, "hello")
	var buf bytes.Buffer
	tb.Render(&buf)
	out := buf.String()
	for _, want := range []string{"T", "x", "a", "b", "1.50", "100", "hello"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
	buf.Reset()
	tb.CSV(&buf)
	csv := buf.String()
	if !strings.HasPrefix(csv, "x,a,b\n") {
		t.Fatalf("csv header: %q", csv)
	}
	if !strings.Contains(csv, "2,100,") {
		t.Fatalf("csv missing row with empty cell: %q", csv)
	}
	if _, ok := tb.Get("2", "b"); ok {
		t.Fatal("missing cell reported present")
	}
}

func TestAnalysisTables(t *testing.T) {
	o := Options{Seed: 1}
	ex := AnalysisExpectedRetrievals(o)
	if v, ok := ex.Get("0.35", "E(X) analytic"); !ok || v >= 3 {
		t.Fatalf("E(X) at 0.35 = %v (present=%v), paper promises < 3", v, ok)
	}
	ps := AnalysisIndirectSuccess(o)
	if v, ok := ps.Get("0.3", "|Hr|=13"); !ok || v <= 0.99 {
		t.Fatalf("ps(0.3,13) = %v, want > 0.99", v)
	}
}
