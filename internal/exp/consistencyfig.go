package exp

import (
	"context"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/dht"
	"repro/internal/repair"
	"repro/internal/stats"
	"repro/internal/ums"
)

// The consistency figure: the paper's response-time-vs-currency
// tradeoff generalized to the consistency-level spectrum. The same
// churny UMS-Direct deployment serves retrieves at each level —
// Current (provably current, the paper's Figure 2), Bounded (a cached
// last-ts floor within a staleness bound, usually no KTS round trip)
// and Eventual (first reachable replica, never a KTS round trip) —
// with replica maintenance off and on, measuring per level what the
// level buys (messages and latency saved) and what it costs (observed
// staleness against the harness's ground-truth update log).

// ConsistencyLevels lists the compared levels in plotting order.
var ConsistencyLevels = []string{"current", "bounded", "eventual"}

// ConsistencyOptions parameterizes the consistency figure beyond the
// shared exp.Options. The zero value runs every level at the quick
// scale.
type ConsistencyOptions struct {
	// Levels restricts the figure to a subset of ConsistencyLevels;
	// empty runs all three.
	Levels []string
	// Bound is the staleness bound for the bounded level. Default 5
	// minutes of simulated time.
	Bound time.Duration
	// Peers overrides the deployment size (default 120 quick / 1000
	// full).
	Peers int
	// Clients is the issuing client-pool size: queries and updates are
	// issued round-robin from this many designated peers, the way
	// application servers front a DHT — which is what lets bounded
	// reads find a warm last-ts cache. Default 4.
	Clients int
	// Queries is the number of measured retrieves per point (default
	// 60 quick / 200 full).
	Queries int
	// Duration is the measured window in simulated time (default 12m
	// quick / 1h full).
	Duration time.Duration
}

// resolve fills the option defaults against the shared options' scale.
func (co ConsistencyOptions) resolve(o Options) (ConsistencyOptions, error) {
	if len(co.Levels) == 0 {
		co.Levels = ConsistencyLevels
	}
	for _, l := range co.Levels {
		if _, err := parseLevel(l); err != nil {
			return co, err
		}
	}
	if co.Bound <= 0 {
		co.Bound = 5 * time.Minute
	}
	if co.Peers <= 0 {
		co.Peers = 120
		if o.Full {
			co.Peers = 1000
		}
	}
	if co.Clients <= 0 {
		co.Clients = 4
	}
	if co.Queries <= 0 {
		co.Queries = 60
		if o.Full {
			co.Queries = 200
		}
	}
	if co.Duration <= 0 {
		co.Duration = 12 * time.Minute
		if o.Full {
			co.Duration = time.Hour
		}
	}
	return co, nil
}

// parseLevel maps a level name to the UMS read level.
func parseLevel(name string) (dht.Level, error) {
	switch name {
	case "current":
		return dht.LevelCurrent, nil
	case "bounded":
		return dht.LevelBounded, nil
	case "eventual":
		return dht.LevelEventual, nil
	default:
		return 0, fmt.Errorf("exp: unknown consistency level %q (want current, bounded or eventual)", name)
	}
}

// ConsistencyPoint is one (level, repair) cell's outcome in
// machine-readable form; cmd/dcdht-bench serializes the set as
// BENCH_consistency.json (schema in docs/BENCHMARKS.md).
type ConsistencyPoint struct {
	Level    string  `json:"level"`
	Repair   bool    `json:"repair"`
	Peers    int     `json:"peers"`
	Clients  int     `json:"clients"`
	BoundSec float64 `json:"bound_sec,omitempty"`

	QueriesRun    int `json:"queries_run"`
	FailedQueries int `json:"failed_queries"`

	// Cost per retrieve.
	MsgsPerRetrieve   float64 `json:"msgs_per_retrieve"`
	RespTimeSec       float64 `json:"resp_time_sec"`
	ProbesPerRetrieve float64 `json:"probes_per_retrieve"`

	// Currency verdicts over the successful retrieves.
	Proven       int     `json:"proven"`
	WithinBound  int     `json:"within_bound"`
	SessionFloor int     `json:"session_floor"`
	Unknown      int     `json:"unknown"`
	ProvenRate   float64 `json:"proven_rate"`
	StaleReturns int     `json:"stale_returns"`

	// Observed staleness against the harness's ground truth: the
	// fraction of retrieves that returned data older than the last
	// successfully inserted timestamp, and how many versions behind
	// they were on average.
	ObservedStaleRate float64 `json:"observed_stale_rate"`
	VersionLagMean    float64 `json:"version_lag_mean"`

	// KTSCacheHits counts last-ts cache consults that found an entry
	// across the client pool (the mechanism behind bounded's savings).
	KTSCacheHits uint64 `json:"kts_cache_hits"`
	// ReplicasHealed is the maintenance subsystem's work (repair runs).
	ReplicasHealed uint64 `json:"replicas_healed"`
}

// consistencyRun measures one (level, repair) cell on a fresh
// deployment built from the shared seed; every random choice comes off
// named kernel streams, so the same options replay the identical point.
func consistencyRun(o Options, co ConsistencyOptions, levelName string, withRepair bool) ConsistencyPoint {
	level, err := parseLevel(levelName)
	if err != nil {
		panic(err) // resolve validated the names already
	}
	sc := Table1Scenario(AlgUMSDirect, co.Peers, o.seed())
	cfg := DeployConfig{
		Peers:          co.Peers,
		Replicas:       sc.Replicas,
		Seed:           o.seed(),
		Net:            sc.Net,
		Chord:          sc.Chord,
		PaperDataModel: true,
	}
	if withRepair {
		cfg.Repair = repair.Config{Every: 2 * time.Minute, PerRound: 8, ReadRepair: true}
	}
	d := NewDeployment(cfg)
	defer d.K.Stop()
	d.RunFor(sc.Warmup)

	point := ConsistencyPoint{
		Level:   levelName,
		Repair:  withRepair,
		Peers:   co.Peers,
		Clients: co.Clients,
	}
	if level == dht.LevelBounded {
		point.BoundSec = co.Bound.Seconds()
	}

	// The client pool: the first Clients peers of the deployment front
	// all traffic (queries and updates), like application servers in
	// front of a storage tier. A pool peer lost to churn falls through
	// to the next live one.
	pool := make([]*Peer, co.Clients)
	copy(pool, d.Peers[:min(co.Clients, len(d.Peers))])
	poolRng := d.K.NewRand("consistency-pool")
	clientPeer := func(i int) *Peer {
		for probe := 0; probe < len(pool); probe++ {
			if p := pool[(i+probe)%len(pool)]; p != nil && p.Alive() {
				return p
			}
		}
		return d.RandomLivePeer(poolRng)
	}

	// Ground truth: the last timestamp each key was successfully
	// inserted with. Mutated only inside kernel processes, which the
	// kernel serializes deterministically.
	keys := make([]core.Key, sc.Keys)
	lastTS := make(map[core.Key]core.Timestamp, sc.Keys)
	for i := range keys {
		keys[i] = core.Key(fmt.Sprintf("cons-%03d", i))
	}
	payload := func(k core.Key, gen int) []byte {
		b := make([]byte, sc.DataSize)
		copy(b, fmt.Sprintf("%s#%d", k, gen))
		return b
	}
	if ok := d.Do(func() {
		for i, k := range keys {
			if r, err := clientPeer(i).UMS.Insert(context.Background(), k, payload(k, 0)); err == nil {
				lastTS[k] = r.TS
			}
		}
	}); !ok {
		panic("exp: consistency figure: initial load did not complete")
	}

	endAt := d.K.Now() + co.Duration

	// Churn: Poisson departures with a high failure share, so replica
	// loss — the condition that separates the levels — actually occurs
	// within the window. Join-per-departure keeps the population.
	churnRng := d.K.NewRand("consistency-churn")
	churn := &stats.PoissonProcess{Rate: 0.05, Rng: d.K.NewRand("consistency-churn-times")}
	d.K.Go(func() {
		for {
			if err := d.Net.Env().Sleep(churn.Next()); err != nil {
				return
			}
			if d.K.Now() >= endAt {
				return
			}
			victim := d.RandomLivePeer(churnRng)
			if victim == nil {
				return
			}
			d.Depart(victim, stats.Bernoulli(churnRng, 0.3))
			d.SpawnJoin(churnRng)
		}
	})

	// Updates: one Poisson stream per key, issued from the pool (which
	// is what keeps the pool's last-ts caches warm, exactly as an
	// application tier's writes would).
	for i, k := range keys {
		i, k := i, k
		gen := 1
		updRng := d.K.NewRand(fmt.Sprintf("consistency-upd-%d", i))
		proc := &stats.PoissonProcess{Rate: 1.0 / 600, Rng: updRng}
		d.K.Go(func() {
			for {
				if err := d.Net.Env().Sleep(proc.Next()); err != nil {
					return
				}
				if d.K.Now() >= endAt {
					return
				}
				p := clientPeer(i + gen)
				if r, err := p.UMS.Insert(context.Background(), k, payload(k, gen)); err == nil {
					if lastTS[k].Less(r.TS) {
						lastTS[k] = r.TS
					}
				}
				gen++
			}
		})
	}

	// Queries at uniformly random times, round-robin over the pool, at
	// the cell's consistency level.
	var respTime, msgs, probes, lag stats.Summary
	staleObserved := 0
	qRng := d.K.NewRand("consistency-queries")
	queriesDone := 0
	for q := 0; q < co.Queries; q++ {
		q := q
		at := stats.UniformDuration(qRng, co.Duration)
		key := keys[qRng.Intn(len(keys))]
		d.K.After(at, func() {
			defer func() { queriesDone++ }()
			p := clientPeer(q)
			if p == nil {
				// No live peer to issue from: the query still ran (and
				// failed), keeping the verdict accounting exhaustive.
				point.QueriesRun++
				point.FailedQueries++
				return
			}
			pol := dht.ReadPolicy{Level: level, Bound: co.Bound}
			r, err := p.UMS.RetrieveWith(context.Background(), key, pol)
			point.QueriesRun++
			respTime.AddDuration(r.Elapsed)
			msgs.Add(float64(r.Msgs))
			probes.Add(float64(r.Probed))
			returned := false
			switch {
			case err == nil:
				returned = true
				switch r.Currency {
				case dht.CurrencyProven:
					point.Proven++
				case dht.CurrencyWithinBound:
					point.WithinBound++
				case dht.CurrencySessionFloor:
					point.SessionFloor++
				default:
					point.Unknown++
				}
			case ums.IsNoCurrent(err):
				point.StaleReturns++
				returned = true
			default:
				point.FailedQueries++
			}
			if returned {
				truth := lastTS[key]
				if r.TS.Less(truth) {
					staleObserved++
					if truth.Hi == r.TS.Hi {
						lag.Add(float64(truth.Lo - r.TS.Lo))
					}
				} else {
					lag.Add(0)
				}
			}
		})
	}

	// Drive the window plus slack for stragglers.
	d.K.Run(endAt + 2*time.Minute)
	for i := 0; i < 100 && queriesDone < co.Queries; i++ {
		d.K.Run(d.K.Now() + 10*time.Second)
	}

	point.MsgsPerRetrieve = msgs.Mean()
	point.RespTimeSec = respTime.Mean()
	point.ProbesPerRetrieve = probes.Mean()
	point.VersionLagMean = lag.Mean()
	if returned := point.QueriesRun - point.FailedQueries; returned > 0 {
		point.ObservedStaleRate = float64(staleObserved) / float64(returned)
	}
	if point.QueriesRun > 0 {
		point.ProvenRate = float64(point.Proven) / float64(point.QueriesRun)
	}
	for _, p := range pool {
		if p != nil {
			point.KTSCacheHits += p.KTS.CacheHits()
		}
	}
	point.ReplicasHealed = d.RepairStats().Healed
	return point
}

// ConsistencyComparison measures every requested level with replica
// maintenance off and on, each cell on a fresh same-seed deployment.
func ConsistencyComparison(o Options, co ConsistencyOptions) ([]ConsistencyPoint, error) {
	co, err := co.resolve(o)
	if err != nil {
		return nil, err
	}
	points := make([]ConsistencyPoint, 0, 2*len(co.Levels))
	for _, withRepair := range []bool{false, true} {
		for _, level := range co.Levels {
			p := consistencyRun(o, co, level, withRepair)
			points = append(points, p)
			o.progress("consistency-%-8s repair=%-5v msgs=%5.1f resp=%6.2fs proven=%3.0f%% stale=%3.0f%% lag=%.2f",
				level, withRepair, p.MsgsPerRetrieve, p.RespTimeSec,
				100*p.ProvenRate, 100*p.ObservedStaleRate, p.VersionLagMean)
		}
	}
	return points, nil
}

// FigureConsistency tabulates the comparison: per-retrieve cost and
// observed currency per level, with maintenance off and on.
func FigureConsistency(o Options, co ConsistencyOptions) (*Table, []ConsistencyPoint, error) {
	points, err := ConsistencyComparison(o, co)
	if err != nil {
		return nil, nil, err
	}
	t := NewTable("Consistency: retrieval cost vs observed currency by level (UMS-Direct)",
		"level", "cost / currency",
		[]string{"msgs", "resp (s)", "E(X) probes", "proven %", "stale %", "version lag"})
	for _, p := range points {
		row := p.Level
		if p.Repair {
			row += "+repair"
		}
		t.Set(row, "msgs", p.MsgsPerRetrieve)
		t.Set(row, "resp (s)", p.RespTimeSec)
		t.Set(row, "E(X) probes", p.ProbesPerRetrieve)
		t.Set(row, "proven %", 100*p.ProvenRate)
		t.Set(row, "stale %", 100*p.ObservedStaleRate)
		t.Set(row, "version lag", p.VersionLagMean)
	}
	t.Notes = append(t.Notes,
		"current proves currency against KTS last_ts; bounded accepts a cached floor within the bound (no KTS round trip on a warm cache);",
		"eventual takes the first reachable replica with no KTS contact — stale % and version lag are measured against the harness's ground-truth update log;",
		"queries and updates are issued round-robin from a small client pool, which is what keeps bounded's last-ts caches warm")
	return t, points, nil
}
