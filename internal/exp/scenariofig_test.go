package exp

import (
	"encoding/json"
	"reflect"
	"testing"
	"time"

	"repro/internal/scenario"
)

// tinyScenarioOptions keeps the determinism test fast: a small
// population and window still exercises every event kind.
func tinyScenarioOptions() (Options, ScenarioOptions) {
	return Options{Seed: 11}, ScenarioOptions{
		Names:    []string{scenario.SplitHeal, scenario.ChurnWave},
		Peers:    40,
		Duration: 8 * time.Minute,
		Queries:  8,
	}
}

// TestScenarioDeterminism is the acceptance test the race job replays:
// a scenario combining a churn wave and a partition/heal must replay
// bit-identically for a fixed seed — identical applied-event traces and
// identical figure JSON.
func TestScenarioDeterminism(t *testing.T) {
	o, so := tinyScenarioOptions()
	run := func() ([]byte, []*scenario.Trace) {
		names, err := so.names()
		if err != nil {
			t.Fatal(err)
		}
		var traces []*scenario.Trace
		points := make([]ScenarioPoint, 0)
		for _, name := range names {
			sc := scenarioBase(o, so)
			sc.Name = "determinism-" + name
			script, err := scenario.Builtin(name, sc.Duration)
			if err != nil {
				t.Fatal(err)
			}
			sc.Script = &script
			r := Run(sc)
			traces = append(traces, r.Trace)
			points = append(points, ScenarioPoint{
				Scenario:          name,
				Peers:             sc.Peers,
				EventsApplied:     len(r.Trace.Applied),
				QueriesRun:        r.QueriesRun,
				CurrentRate:       r.CurrentRate,
				ProbesPerRetrieve: r.Probed.Mean(),
				RespTimeSec:       r.RespTime.Mean(),
				MsgsPerRetrieve:   r.Msgs.Mean(),
				StaleReturns:      r.StaleReturns,
				FailedQueries:     r.QueriesFailed,
			})
		}
		blob, err := json.Marshal(points)
		if err != nil {
			t.Fatal(err)
		}
		return blob, traces
	}
	blob1, traces1 := run()
	blob2, traces2 := run()
	if string(blob1) != string(blob2) {
		t.Fatalf("figure JSON diverged across replays:\n%s\nvs\n%s", blob1, blob2)
	}
	if !reflect.DeepEqual(traces1, traces2) {
		t.Fatalf("scenario traces diverged across replays:\n%+v\nvs\n%+v", traces1, traces2)
	}
	for i, tr := range traces1 {
		if tr == nil || len(tr.Applied) == 0 {
			t.Fatalf("scenario %d applied no events", i)
		}
	}
}

// TestScenarioComparisonShapes checks the figure plumbing: one point
// per (scenario, repair mode), the table rows populated, and the
// repair-on run actually doing maintenance work under a crash-heavy
// scenario.
func TestScenarioComparisonShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("scenario comparison is minutes of simulated time")
	}
	o := Options{Seed: 5}
	so := ScenarioOptions{
		Names:    []string{scenario.MassCrash},
		Peers:    40,
		Duration: 8 * time.Minute,
		Queries:  8,
	}
	table, points, err := FigureScenario(o, so)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("points = %d, want 2 (off and on)", len(points))
	}
	for _, p := range points {
		if p.Scenario != scenario.MassCrash {
			t.Fatalf("point scenario = %q", p.Scenario)
		}
		if p.EventsApplied == 0 {
			t.Fatalf("mode %q applied no events", p.Repair)
		}
		if p.QueriesRun == 0 {
			t.Fatalf("mode %q ran no queries", p.Repair)
		}
	}
	if points[0].Repair != "off" || points[1].Repair != "on" {
		t.Fatalf("mode order = %q, %q", points[0].Repair, points[1].Repair)
	}
	if points[1].ReplicasHealed == 0 && points[1].ReadRepairs == 0 {
		t.Fatal("repair-on mode did no maintenance work under mass-crash")
	}
	if len(table.XS) != 2 {
		t.Fatalf("table rows = %v", table.XS)
	}
	if _, _, err := FigureScenario(o, ScenarioOptions{Names: []string{"bogus"}}); err == nil {
		t.Fatal("unknown scenario name accepted")
	}
}
