package exp

import (
	"fmt"
	"time"

	"repro/internal/scenario"
)

// The recovery figure: kill-and-restart waves played twice on the same
// seed — once with volatile peers (a restarted peer comes back blank,
// the paper's fail-stop "crash-and-forget" model) and once with durable
// stores (a restarted peer resumes its retained replicas and counters
// and runs the §4.2.2 recovery strategy). The paper's model only ever
// replaces a failed peer with an empty newcomer; this figure measures
// what a real deployment's write-ahead log wins back: queries that find
// their pre-crash replicas, timestamps that continue instead of
// re-initializing, and the stale/failed retrieves that disappear.

// RecoveryModes are the storage modes every recovery scenario runs
// under, in plotting order.
var RecoveryModes = []string{"crash-forget", "durable"}

// RecoveryOptions parameterises the recovery comparison beyond the
// shared exp.Options. The zero value runs the quick-mode scale.
type RecoveryOptions struct {
	// Peers overrides the deployment size (default: quick 120, full
	// basePeers).
	Peers int
	// Duration overrides the measured window per run.
	Duration time.Duration
	// Queries overrides the retrieves measured per run.
	Queries int
}

// RecoveryScriptName names the kill-and-restart script the figure plays.
const RecoveryScriptName = "kill-restart-waves"

// RecoveryScript builds the figure's script over a window: two
// crash waves, each followed by a restart wave that revives every
// downed peer. Between a crash and its restart the affected arcs are
// simply gone (no replacements join), so the window in between measures
// loss and the window after measures what restart brought back.
func RecoveryScript(w time.Duration) scenario.Script {
	f := func(frac float64) time.Duration { return time.Duration(float64(w) * frac) }
	return scenario.Script{Name: RecoveryScriptName, Events: []scenario.Event{
		{At: f(0.15), Kind: scenario.KindCrashWave, Frac: 0.35, Over: f(0.05)},
		{At: f(0.30), Kind: scenario.KindRestartWave, Frac: 1.0, Over: f(0.05)},
		{At: f(0.55), Kind: scenario.KindCrashWave, Frac: 0.35, Over: f(0.05)},
		{At: f(0.70), Kind: scenario.KindRestartWave, Frac: 1.0, Over: f(0.05)},
	}}
}

// RecoveryPoint is one (mode) outcome in machine-readable form;
// cmd/dcdht-bench serializes the pair as BENCH_recovery.json (schema in
// docs/BENCHMARKS.md).
type RecoveryPoint struct {
	Mode              string  `json:"mode"` // crash-forget | durable
	Peers             int     `json:"peers"`
	Seed              int64   `json:"seed"`
	DurationSec       float64 `json:"duration_sec"`
	EventsApplied     int     `json:"events_applied"`
	Crashes           int     `json:"crashes"`
	Restarts          int     `json:"restarts"`
	FailedRestarts    int     `json:"failed_restarts"`
	QueriesRun        int     `json:"queries_run"`
	CurrentRate       float64 `json:"current_rate"`
	ProbesPerRetrieve float64 `json:"probes_per_retrieve"` // observed E(X)
	RespTimeSec       float64 `json:"resp_time_sec"`
	MsgsPerRetrieve   float64 `json:"msgs_per_retrieve"`
	StaleReturns      int     `json:"stale_returns"`
	FailedQueries     int     `json:"failed_queries"`
	UpdatesFailed     int     `json:"updates_failed"`
}

// recoveryBase is the configuration both modes start from: UMS-Direct
// with background churn off, so the scripted kill-and-restart waves are
// the only failures and the mode contrast is pure storage.
func recoveryBase(o Options, ro RecoveryOptions) Scenario {
	peers := ro.Peers
	if peers <= 0 {
		peers = 120
		if o.Full {
			peers = o.basePeers()
		}
	}
	sc := Table1Scenario(AlgUMSDirect, peers, o.seed())
	sc.Duration = o.duration()
	if ro.Duration > 0 {
		sc.Duration = ro.Duration
	}
	sc.ChurnRate = 0
	sc.UpdateRate *= o.compress()
	// Sparse replication puts the figure in the loss regime: a 35% wave
	// has a real chance of taking out every replica of some key, which
	// is exactly the case where the storage mode decides the outcome.
	sc.Replicas = 3
	// Brisk ring maintenance: restart waves rejoin into arcs whose
	// neighbors just died, so stale fingers must heal inside the window.
	sc.Chord.StabilizeEvery = 5 * time.Second
	sc.Chord.FixFingersEvery = 5 * time.Second
	sc.Chord.CheckPredEvery = 5 * time.Second
	sc.Queries = 60
	if ro.Queries > 0 {
		sc.Queries = ro.Queries
	}
	return sc
}

// RecoveryComparison plays the identical kill-and-restart script on the
// same seed in both storage modes and returns one point per mode.
func RecoveryComparison(o Options, ro RecoveryOptions) ([]RecoveryPoint, error) {
	points := make([]RecoveryPoint, 0, len(RecoveryModes))
	for _, mode := range RecoveryModes {
		sc := recoveryBase(o, ro)
		sc.Name = fmt.Sprintf("recovery/%s", mode)
		sc.Durable = mode == "durable"
		script := RecoveryScript(sc.Duration)
		sc.Script = &script
		r := Run(sc)
		p := RecoveryPoint{
			Mode:              mode,
			Peers:             sc.Peers,
			Seed:              sc.Seed,
			DurationSec:       sc.Duration.Seconds(),
			QueriesRun:        r.QueriesRun,
			CurrentRate:       r.CurrentRate,
			ProbesPerRetrieve: r.Probed.Mean(),
			RespTimeSec:       r.RespTime.Mean(),
			MsgsPerRetrieve:   r.Msgs.Mean(),
			StaleReturns:      r.StaleReturns,
			FailedQueries:     r.QueriesFailed,
			UpdatesFailed:     r.UpdatesFailed,
		}
		if r.Trace != nil {
			p.EventsApplied = len(r.Trace.Applied)
			for _, a := range r.Trace.Applied {
				switch a.Kind {
				case scenario.KindCrashWave:
					p.Crashes++
				case scenario.KindRestartWave:
					if a.Note == "" {
						p.Restarts++
					} else {
						p.FailedRestarts++
					}
				}
			}
		}
		points = append(points, p)
		o.progress("%-24s crashes=%2d restarts=%2d current=%3.0f%% stale=%d failed=%d",
			sc.Name, p.Crashes, p.Restarts, 100*p.CurrentRate, p.StaleReturns, p.FailedQueries)
	}
	return points, nil
}

// FigureRecovery tabulates the comparison: currency, E(X), response
// time and loss per storage mode under identical kill-and-restart waves.
func FigureRecovery(o Options, ro RecoveryOptions) (*Table, []RecoveryPoint, error) {
	points, err := RecoveryComparison(o, ro)
	if err != nil {
		return nil, nil, err
	}
	t := NewTable("Recovery: crash-and-forget vs durable restart (UMS-Direct, kill-and-restart waves)",
		"mode", "effect",
		[]string{"current %", "E(X) probes", "resp (s)", "stale", "failed", "crashes", "restarts"})
	for _, p := range points {
		t.Set(p.Mode, "current %", 100*p.CurrentRate)
		t.Set(p.Mode, "E(X) probes", p.ProbesPerRetrieve)
		t.Set(p.Mode, "resp (s)", p.RespTimeSec)
		t.Set(p.Mode, "stale", float64(p.StaleReturns))
		t.Set(p.Mode, "failed", float64(p.FailedQueries))
		t.Set(p.Mode, "crashes", float64(p.Crashes))
		t.Set(p.Mode, "restarts", float64(p.Restarts))
	}
	t.Notes = append(t.Notes,
		"both modes play the identical kill-and-restart script on the same seed;",
		"crash-forget = the paper's model: a restarted peer returns blank (volatile store);",
		"durable = restarted peers resume retained replicas + KTS counters (internal/store),",
		"then run the §4.2.2 recovery strategy, so pre-crash data answers post-restart queries")
	return t, points, nil
}
