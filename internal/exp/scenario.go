package exp

import (
	"context"
	"fmt"
	"time"

	"repro/internal/can"
	"repro/internal/chord"
	"repro/internal/core"
	"repro/internal/dht"
	"repro/internal/kts"
	"repro/internal/network/simwire"
	"repro/internal/obs"
	"repro/internal/onehop"
	"repro/internal/repair"
	"repro/internal/scenario"
	"repro/internal/stats"
	"repro/internal/ums"
)

// Scenario is one experimental configuration: the knobs of Table 1 plus
// the algorithm under test and the measurement schedule.
type Scenario struct {
	Name      string
	Algorithm Algorithm

	// Topology.
	Peers    int
	Replicas int // |Hr|

	// Workload.
	Keys       int           // size of the replicated working set
	DataSize   int           // bytes per value
	Duration   time.Duration // measured experiment window
	Warmup     time.Duration // settle time before measurements
	Queries    int           // retrieve operations at uniform times (paper: 30)
	ChurnRate  float64       // peer departures per second (Table 1: 1)
	FailRate   float64       // fraction of departures that are failures (Table 1: 0.05)
	UpdateRate float64       // updates per key per hour (Table 1: 1)

	// Environment.
	Seed int64
	Net  simwire.Config
	// Ring picks the overlay substrate (zero value = RingChord).
	Ring   RingKind
	Chord  chord.Config
	CAN    can.Config
	OneHop onehop.Config
	// PathCache enables the per-peer lookup path cache with this many
	// arcs (0 = off); RepublishEvery/RepublishPerRound run the periodic
	// republisher (see DeployConfig).
	PathCache         int
	RepublishEvery    time.Duration
	RepublishPerRound int
	Grace             time.Duration
	Inspect           time.Duration
	// RLU enables the §4.3 Responsibility-Loss-Unaware KTS fallback
	// (ablation).
	RLU bool
	// DataHandoff re-enables replica handoff on responsibility changes
	// (ablation: the engineering improvement the paper's model omits).
	DataHandoff bool
	// Repair configures the replica-maintenance subsystem; the zero
	// value keeps it off (the paper's dynamics).
	Repair repair.Config
	// Durable backs every peer with a retained in-memory depot slot, so
	// scripted restart waves resume pre-crash replicas and counters
	// (the recovery figure's durable mode). Off = crash-and-forget.
	Durable bool
	// NoObs disables the deployment-wide metrics registry (see
	// DeployConfig.NoObs — it exists for the determinism proof, not as a
	// performance knob).
	NoObs bool
	// Script plays a scripted fault-and-condition scenario
	// (internal/scenario) over the measured window: event times are
	// relative to the end of warmup and initial load. Nil plays nothing.
	// Run panics on an invalid script — validate first when the script
	// comes from outside.
	Script *scenario.Script
}

// Table1Scenario returns the paper's default configuration (Table 1)
// scaled by peers; callers override individual fields per figure.
func Table1Scenario(alg Algorithm, peers int, seed int64) Scenario {
	return Scenario{
		Name:       fmt.Sprintf("%s/n=%d", alg, peers),
		Algorithm:  alg,
		Peers:      peers,
		Replicas:   10,
		Keys:       20,
		DataSize:   1000,
		Duration:   time.Hour,
		Warmup:     2 * time.Minute,
		Queries:    30,
		ChurnRate:  1,
		FailRate:   0.05,
		UpdateRate: 1,
		Seed:       seed,
		Net:        simwire.Table1(),
		Chord: chord.Config{
			StabilizeEvery:  30 * time.Second,
			FixFingersEvery: 45 * time.Second,
			CheckPredEvery:  30 * time.Second,
			RPCTimeout:      2 * time.Second,
		},
	}
}

// Result aggregates one scenario run.
type Result struct {
	Scenario Scenario

	RespTime stats.Summary // seconds per retrieve
	Msgs     stats.Summary // messages per retrieve
	Probed   stats.Summary // replicas probed per retrieve (nums)

	QueriesRun    int
	QueriesFailed int     // retrieve returned no data at all
	CurrentRate   float64 // fraction of retrieves that returned a provably current replica
	StaleReturns  int     // retrieves that fell back to most-recent-available

	UpdatesRun    int
	UpdatesFailed int
	ChurnEvents   int
	FailEvents    int

	// Repair aggregates the maintenance subsystem's work across all
	// peers (zero when the subsystem is off).
	Repair repair.Stats

	// Trace records the scripted scenario's applied events (nil when no
	// script ran). Bit-identical across replays of the same seed.
	Trace *scenario.Trace

	// Obs is the deployment-wide metrics snapshot taken at the end of the
	// run: op latency/msgs/verdicts, KTS cache behaviour, chord routing
	// and repair work, aggregated across every peer. All timings are
	// virtual, all counters deterministic — bit-identical across replays
	// of the same seed.
	Obs *obs.Snapshot

	TotalNetMsgs uint64 // every message the network carried
	SimEvents    uint64
	WallTime     time.Duration
}

// insert dispatches an insert through the scenario's algorithm. The
// harness drives virtual time and never abandons an operation, so ops
// run under a background context.
func (sc *Scenario) insert(p *Peer, k core.Key, data []byte) (dht.OpResult, error) {
	if sc.Algorithm == AlgBRK {
		return p.BRK.Insert(context.Background(), k, data)
	}
	return p.UMS.Insert(context.Background(), k, data)
}

// retrieve dispatches a retrieve through the scenario's algorithm.
func (sc *Scenario) retrieve(p *Peer, k core.Key) (dht.OpResult, error) {
	if sc.Algorithm == AlgBRK {
		return p.BRK.Retrieve(context.Background(), k)
	}
	return p.UMS.Retrieve(context.Background(), k)
}

// Run executes the scenario and returns aggregated metrics.
func Run(sc Scenario) *Result {
	wallStart := time.Now()
	cfg := DeployConfig{
		Peers:             sc.Peers,
		Replicas:          sc.Replicas,
		Seed:              sc.Seed,
		Net:               sc.Net,
		Ring:              sc.Ring,
		Chord:             sc.Chord,
		CAN:               sc.CAN,
		OneHop:            sc.OneHop,
		PathCache:         sc.PathCache,
		RepublishEvery:    sc.RepublishEvery,
		RepublishPerRound: sc.RepublishPerRound,
		GraceDelay:        sc.Grace,
		InspectEvery:      sc.Inspect,
		RLU:               sc.RLU,
		PaperDataModel:    !sc.DataHandoff,
		Repair:            sc.Repair,
		Durable:           sc.Durable,
		NoObs:             sc.NoObs,
	}
	if sc.Algorithm == AlgUMSIndirect {
		cfg.KTSMode = kts.ModeIndirect
	}
	d := NewDeployment(cfg)
	res := &Result{Scenario: sc}

	// Working set.
	keys := make([]core.Key, sc.Keys)
	for i := range keys {
		keys[i] = core.Key(fmt.Sprintf("data-%03d", i))
	}
	payload := func(rng interface{ Intn(int) int }, gen int, k core.Key) []byte {
		b := make([]byte, sc.DataSize)
		copy(b, fmt.Sprintf("%s#%d", k, gen))
		return b
	}

	// Let maintenance settle, then load the initial working set.
	d.RunFor(sc.Warmup)
	loadRng := d.K.NewRand("load")
	ok := d.Do(func() {
		for _, k := range keys {
			p := d.RandomLivePeer(loadRng)
			if _, err := sc.insert(p, k, payload(loadRng, 0, k)); err != nil {
				res.UpdatesFailed++
			}
		}
	})
	if !ok {
		panic("exp: initial load did not complete")
	}

	// Scripted scenario: events play out over the measured window,
	// relative to this moment (post-warmup, post-load).
	var eng *scenario.Engine
	if sc.Script != nil {
		var serr error
		eng, serr = d.PlayScript(*sc.Script)
		if serr != nil {
			panic(fmt.Sprintf("exp: scenario script: %v", serr))
		}
	}

	endAt := d.K.Now() + sc.Duration

	// Churn process: Poisson departures; each departure is a fail with
	// probability FailRate, otherwise a graceful leave; a replacement
	// joins immediately (population stays constant, as in §5.1).
	churnRng := d.K.NewRand("churn")
	if sc.ChurnRate > 0 {
		proc := &stats.PoissonProcess{Rate: sc.ChurnRate, Rng: d.K.NewRand("churn-times")}
		d.K.Go(func() {
			for {
				if err := d.Net.Env().Sleep(proc.Next()); err != nil {
					return
				}
				if d.K.Now() >= endAt {
					return
				}
				victim := d.RandomLivePeer(churnRng)
				if victim == nil {
					return
				}
				fail := stats.Bernoulli(churnRng, sc.FailRate)
				res.ChurnEvents++
				if fail {
					res.FailEvents++
				}
				d.Depart(victim, fail)
				d.SpawnJoin(churnRng)
			}
		})
	}

	// Update processes: one Poisson stream per key (Table 1: λ = 1/hour).
	if sc.UpdateRate > 0 {
		for i, k := range keys {
			k := k
			gen := 1
			updRng := d.K.NewRand(fmt.Sprintf("upd-%d", i))
			proc := &stats.PoissonProcess{Rate: sc.UpdateRate / 3600.0, Rng: updRng}
			d.K.Go(func() {
				for {
					if err := d.Net.Env().Sleep(proc.Next()); err != nil {
						return
					}
					if d.K.Now() >= endAt {
						return
					}
					p := d.RandomLivePeer(updRng)
					if p == nil {
						return
					}
					if _, err := sc.insert(p, k, payload(updRng, gen, k)); err != nil {
						res.UpdatesFailed++
					} else {
						res.UpdatesRun++
					}
					gen++
				}
			})
		}
	}

	// Queries at uniformly random times over the experiment window
	// (§5.1: "30 tests ... uniformly distributed over the total
	// experimental time").
	qRng := d.K.NewRand("queries")
	queriesDone := 0
	currentReturns := 0
	for q := 0; q < sc.Queries; q++ {
		at := stats.UniformDuration(qRng, sc.Duration)
		key := keys[qRng.Intn(len(keys))]
		d.K.After(at, func() {
			defer func() { queriesDone++ }()
			p := d.RandomLivePeer(qRng)
			if p == nil {
				res.QueriesFailed++
				return
			}
			r, err := sc.retrieve(p, key)
			res.QueriesRun++
			res.RespTime.AddDuration(r.Elapsed)
			res.Msgs.Add(float64(r.Msgs))
			res.Probed.Add(float64(r.Probed))
			switch {
			case err == nil:
				if r.Current() {
					currentReturns++
				}
			case ums.IsNoCurrent(err):
				res.StaleReturns++
			default:
				res.QueriesFailed++
			}
		})
	}

	// Drive the whole experiment, plus slack for in-flight operations.
	d.K.Run(endAt + 2*time.Minute)
	for i := 0; i < 100 && queriesDone < sc.Queries; i++ {
		d.K.Run(d.K.Now() + 10*time.Second)
	}

	if res.QueriesRun > 0 {
		// Fraction of retrieves returning a *provably* current replica.
		// BRK can never prove currency, so its rate is 0 by construction.
		res.CurrentRate = float64(currentReturns) / float64(res.QueriesRun)
	}
	res.Repair = d.RepairStats()
	if eng != nil {
		tr := eng.Trace()
		res.Trace = &tr
	}
	if d.Obs != nil {
		res.Obs = d.Obs.Snapshot()
	}
	res.TotalNetMsgs = d.Net.TotalMessages()
	res.SimEvents = d.K.Events()
	res.WallTime = time.Since(wallStart)
	d.K.Stop()
	return res
}
