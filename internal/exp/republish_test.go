package exp

import (
	"context"
	"fmt"
	"testing"
	"time"

	"repro/internal/chord"
	"repro/internal/core"
	"repro/internal/network/simwire"
	"repro/internal/stats"
)

// The republish regression: under the paper's data model a replica whose
// responsible arc is taken over by a fresh joiner is simply gone from
// the new owner's store — "new nodes can't find old values". The
// periodic republisher is the documented fix: peers still holding a
// replica they no longer own re-push it to the current responsible. One
// arm runs without it and must fail the retrieve; the identical arm with
// it must return the value provably current.

func republishArm(t *testing.T, republish bool) (core.Key, *Deployment) {
	t.Helper()
	cfg := DeployConfig{
		Peers:    10,
		Replicas: 1,
		Seed:     909,
		Net: simwire.Config{
			LatencyMS:      stats.Normal{Mean: 5, Variance: 0, Min: 5},
			BandwidthKbps:  stats.Normal{Mean: 1e6, Variance: 0, Min: 1e6},
			DefaultTimeout: 200 * time.Millisecond,
		},
		Chord: chord.Config{
			SuccessorListLen: 6,
			StabilizeEvery:   500 * time.Millisecond,
			FixFingersEvery:  300 * time.Millisecond,
			CheckPredEvery:   500 * time.Millisecond,
			RPCTimeout:       200 * time.Millisecond,
		},
		// The paper's DHT model: no replica handoff on responsibility
		// changes — exactly the gap republish exists to close.
		PaperDataModel: true,
	}
	if republish {
		cfg.RepublishEvery = 10 * time.Second
		cfg.RepublishPerRound = 64
	}
	d := NewDeployment(cfg)
	d.RunFor(5 * time.Second)

	// Insert a basket of candidate keys. Peer identities are name-derived
	// and the join sequence is deterministic, so whether one particular
	// key's arc rotates is fixed in advance — a basket guarantees some
	// key's responsibility lands on a newcomer, and both arms pick the
	// same one.
	keys := make([]core.Key, 16)
	for i := range keys {
		keys[i] = core.Key(fmt.Sprintf("republished-%02d", i))
	}
	if !d.Do(func() {
		for _, k := range keys {
			if _, err := d.Peers[0].UMS.Insert(context.Background(), k, []byte("v1")); err != nil {
				t.Errorf("insert %s: %v", k, err)
			}
		}
	}) {
		t.Fatal("insert stalled")
	}

	ownerOf := func(id core.ID) *Peer {
		for _, p := range d.LivePeers() {
			if p.Node.OwnsID(id) {
				return p
			}
		}
		return nil
	}
	orig := make([]*Peer, len(keys))
	for i, k := range keys {
		if orig[i] = ownerOf(d.Set.Hr[0].ID(k)); orig[i] == nil {
			t.Fatalf("no owner for %s", k)
		}
	}

	// Join fresh peers: newcomers split arcs, so some candidate's
	// position rotates to a node whose store never saw the insert.
	rng := d.K.NewRand("republish-joins")
	for i := 0; i < 30; i++ {
		if !d.Do(func() { d.SpawnJoin(rng) }) {
			t.Fatal("join stalled")
		}
		d.RunFor(3 * time.Second)
	}
	var key core.Key
	for i, k := range keys {
		cur := ownerOf(d.Set.Hr[0].ID(k))
		if cur != nil && cur != orig[i] {
			key = k
			break
		}
	}
	if key == "" {
		t.Fatal("no candidate key's responsibility rotated to a newcomer")
	}
	// Several republish periods (or, without the republisher, the same
	// idle stretch) before the read.
	d.RunFor(time.Minute)
	return key, d
}

func TestRepublishMakesOldValuesFindable(t *testing.T) {
	// Arm 1: no republisher. The rotated-in owner has no replica and the
	// retrieve must come back empty-handed.
	key, d := republishArm(t, false)
	if !d.Do(func() {
		res, err := d.LivePeers()[len(d.LivePeers())-1].UMS.Retrieve(context.Background(), key)
		if err == nil && len(res.Data) > 0 {
			t.Errorf("without republish the retrieve should fail, got %q (currency %v)", res.Data, res.Currency)
		}
	}) {
		t.Fatal("retrieve stalled")
	}
	d.K.Stop()

	// Arm 2: identical run with the republisher on. The old owner
	// re-pushed the replica to the rotated-in responsible, so a late
	// joiner reads it back provably current.
	key, d = republishArm(t, true)
	pushed := uint64(0)
	for _, p := range d.Peers {
		if p.Repub != nil {
			pushed += p.Repub.Pushed()
		}
	}
	if pushed == 0 {
		t.Error("republisher never pushed a replica")
	}
	if !d.Do(func() {
		res, err := d.LivePeers()[len(d.LivePeers())-1].UMS.Retrieve(context.Background(), key)
		if err != nil {
			t.Errorf("with republish the retrieve should succeed: %v", err)
			return
		}
		if string(res.Data) != "v1" {
			t.Errorf("retrieved %q, want %q", res.Data, "v1")
		}
		if !res.Current() {
			t.Errorf("retrieve not provably current: currency %v", res.Currency)
		}
	}) {
		t.Fatal("retrieve stalled")
	}
	d.K.Stop()
}
