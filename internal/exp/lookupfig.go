package exp

import (
	"context"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/network"
	"repro/internal/onehop"
)

// The lookup figure: the cost model's last big lever. Every UMS/BRK
// operation pays one ring lookup per replica, so routing hops dominate
// Get latency at scale. Three arms run the identical sample stream on
// same-seed deployments — plain chord, chord behind the lookup path
// cache, and the onehop full-table ring — and the figure compares mean
// hops, simulated latency, and the maintenance traffic each substrate
// pays for its routing state (the D1HT trade: O(1) lookups bought with
// O(n) membership-event fan-out under churn).

// LookupArm names one contender.
const (
	LookupArmChord  = "chord"
	LookupArmCache  = "chord+cache"
	LookupArmOneHop = "onehop"
)

// LookupArms lists the contenders in plotting order.
var LookupArms = []string{LookupArmChord, LookupArmCache, LookupArmOneHop}

// LookupOptions parameterizes the lookup figure beyond the shared
// exp.Options.
type LookupOptions struct {
	// Peers lists the deployment sizes; nil selects the default
	// (100/300/1000 quick, 100/1000/10000 full).
	Peers []int
	// Samples is the number of lookups measured per point (default 200).
	Samples int
	// CacheSize is the path-cache capacity for the cache arm
	// (default 256 arcs).
	CacheSize int
	// Warmup settles the assembled overlay before measuring
	// (default 30s simulated).
	Warmup time.Duration
	// MaintWindow is the churn-and-maintenance observation window whose
	// network traffic is charged to routing-state upkeep (default 60s).
	MaintWindow time.Duration
	// ChurnEvents is the number of graceful leave+join pairs played
	// inside the maintenance window (default 3) — what makes the onehop
	// event fan-out visible.
	ChurnEvents int
}

func (lo LookupOptions) withDefaults(full bool) LookupOptions {
	if len(lo.Peers) == 0 {
		lo.Peers = []int{100, 300, 1000}
		if full {
			lo.Peers = []int{100, 1000, 10000}
		}
	}
	if lo.Samples <= 0 {
		lo.Samples = 200
	}
	if lo.CacheSize <= 0 {
		lo.CacheSize = 256
	}
	if lo.Warmup <= 0 {
		lo.Warmup = 30 * time.Second
	}
	if lo.MaintWindow <= 0 {
		lo.MaintWindow = time.Minute
	}
	if lo.ChurnEvents <= 0 {
		lo.ChurnEvents = 3
	}
	return lo
}

// LookupPoint is one (arm, peers) measurement.
type LookupPoint struct {
	Arm     string `json:"arm"`
	Peers   int    `json:"peers"`
	Samples int    `json:"samples"`
	// MeanHops / MaxHops count remote probes per lookup as reported by
	// the ring (dead probes included — the pinned accounting contract).
	MeanHops float64 `json:"mean_hops"`
	MaxHops  int     `json:"max_hops"`
	// MeanLatencyMs is simulated wall time per lookup.
	MeanLatencyMs float64 `json:"mean_latency_ms"`
	// LookupMsgs is the metered message total for the sample stream.
	LookupMsgs int `json:"lookup_msgs"`
	// MaintMsgsPerPeerMin is routing-state upkeep traffic, normalized:
	// messages per peer per simulated minute over a window holding
	// ChurnEvents leave+join pairs.
	MaintMsgsPerPeerMin float64 `json:"maint_msgs_per_peer_min"`
	// WrongOwner counts lookups that resolved to a node which does not
	// claim the target — the figure's safety check; must be zero.
	WrongOwner int `json:"wrong_owner"`
	// CacheHitRate and StaleFallbacks describe the cache arm
	// (zero elsewhere).
	CacheHitRate   float64 `json:"cache_hit_rate"`
	StaleFallbacks uint64  `json:"stale_fallbacks"`
	// OneHopTableSize is the issuer's routing-table size on the onehop
	// arm (zero elsewhere) — the memory side of the trade.
	OneHopTableSize int `json:"onehop_table_size,omitempty"`
}

// LookupResult is the figure's machine-readable document
// (BENCH_lookup.json).
type LookupResult struct {
	Seed        int64         `json:"seed"`
	Samples     int           `json:"samples"`
	CacheSize   int           `json:"cache_size"`
	ChurnEvents int           `json:"churn_events"`
	Points      []LookupPoint `json:"points"`
}

// lookupDeployment builds one arm's deployment at the given size.
func lookupDeployment(arm string, peers int, seed int64, lo LookupOptions) *Deployment {
	sc := Table1Scenario(AlgUMSDirect, peers, seed)
	cfg := DeployConfig{
		Peers:    peers,
		Replicas: sc.Replicas,
		Seed:     seed,
		Net:      sc.Net,
		Chord:    sc.Chord,
	}
	switch arm {
	case LookupArmCache:
		cfg.PathCache = lo.CacheSize
	case LookupArmOneHop:
		cfg.Ring = RingOneHop
		cfg.OneHop = onehop.Config{
			PingEvery:  sc.Chord.CheckPredEvery,
			RPCTimeout: sc.Chord.RPCTimeout,
		}
	}
	return NewDeployment(cfg)
}

// measureLookupPoint runs one (arm, peers) cell: assemble, settle, play
// the churn window (charged to maintenance), re-settle, then meter the
// sample stream from a fixed issuer — the client's-eye view a path
// cache accelerates.
func measureLookupPoint(arm string, peers int, o Options, lo LookupOptions) (LookupPoint, error) {
	d := lookupDeployment(arm, peers, o.seed(), lo)
	defer d.K.Stop()
	pt := LookupPoint{Arm: arm, Peers: peers, Samples: lo.Samples}
	d.RunFor(lo.Warmup)

	// Maintenance window: graceful leave+join churn spread evenly, the
	// whole window's traffic charged to routing-state upkeep. No lookups
	// run here, so the delta is exactly what the substrate pays to keep
	// its tables current.
	churnRng := d.K.NewRand("lookup-churn")
	maintStart := d.Net.TotalMessages()
	slice := lo.MaintWindow / time.Duration(lo.ChurnEvents+1)
	for i := 0; i < lo.ChurnEvents; i++ {
		d.RunFor(slice)
		ok := d.Do(func() {
			if p := d.RandomLivePeer(churnRng); p != nil {
				d.Depart(p, false)
			}
			d.SpawnJoin(churnRng)
		})
		if !ok {
			return pt, fmt.Errorf("exp: lookup figure: churn stalled (%s, n=%d): %w", arm, peers, core.ErrTimeout)
		}
	}
	d.RunFor(slice)
	maintMsgs := d.Net.TotalMessages() - maintStart
	pt.MaintMsgsPerPeerMin = float64(maintMsgs) / float64(peers) /
		(float64(lo.MaintWindow) / float64(time.Minute))

	// Let every arm reconverge before measuring routing quality.
	d.RunFor(lo.Warmup)

	issuer := d.LivePeers()[0]
	rng := d.K.NewRand("lookup-samples")
	env := d.Net.Env()
	meter := &network.Meter{}
	var totalHops, latSamples int
	var totalLat time.Duration
	ok := d.Do(func() {
		ctx := network.WithMeter(context.Background(), meter)
		for i := 0; i < lo.Samples; i++ {
			id := core.ID(rng.Uint64())
			t0 := env.Now()
			ref, hops, err := issuer.Ring.Lookup(ctx, id)
			if err != nil {
				pt.WrongOwner++
				continue
			}
			totalLat += env.Now() - t0
			latSamples++
			totalHops += hops
			if hops > pt.MaxHops {
				pt.MaxHops = hops
			}
			resolved := lookupLiveByID(d, ref.ID)
			if resolved == nil || !resolved.Node.OwnsID(id) {
				pt.WrongOwner++
			}
		}
	})
	if !ok {
		return pt, fmt.Errorf("exp: lookup figure: sampling stalled (%s, n=%d): %w", arm, peers, core.ErrTimeout)
	}
	pt.MeanHops = float64(totalHops) / float64(lo.Samples)
	if latSamples > 0 {
		pt.MeanLatencyMs = float64(totalLat) / float64(time.Millisecond) / float64(latSamples)
	}
	pt.LookupMsgs = meter.Msgs
	if issuer.Cache != nil {
		st := issuer.Cache.Stats()
		if st.Hits+st.Misses > 0 {
			pt.CacheHitRate = float64(st.Hits) / float64(st.Hits+st.Misses)
		}
		pt.StaleFallbacks = st.Fallbacks
	}
	if hop, isOneHop := issuer.Node.(*onehop.Node); isOneHop {
		pt.OneHopTableSize = hop.TableSize()
	}
	return pt, nil
}

// lookupLiveByID returns the live peer with the given ring identity.
func lookupLiveByID(d *Deployment, id core.ID) *Peer {
	for _, p := range d.LivePeers() {
		if p.Node.Self().ID == id {
			return p
		}
	}
	return nil
}

// LookupComparison measures every (arm, peers) cell.
func LookupComparison(o Options, lo LookupOptions) (*LookupResult, error) {
	lo = lo.withDefaults(o.Full)
	res := &LookupResult{
		Seed:        o.seed(),
		Samples:     lo.Samples,
		CacheSize:   lo.CacheSize,
		ChurnEvents: lo.ChurnEvents,
	}
	for _, peers := range lo.Peers {
		for _, arm := range LookupArms {
			pt, err := measureLookupPoint(arm, peers, o, lo)
			if err != nil {
				return nil, err
			}
			res.Points = append(res.Points, pt)
			o.progress("lookup %-12s n=%-6d hops=%5.2f (max %2d) lat=%6.1fms maint=%7.1f msg/peer/min hit=%4.2f wrong=%d",
				pt.Arm, pt.Peers, pt.MeanHops, pt.MaxHops, pt.MeanLatencyMs,
				pt.MaintMsgsPerPeerMin, pt.CacheHitRate, pt.WrongOwner)
		}
	}
	return res, nil
}

// FigureLookup tabulates the head-to-head: hops, latency and
// maintenance traffic per substrate and scale.
func FigureLookup(o Options, lo LookupOptions) (*Table, *LookupResult, error) {
	res, err := LookupComparison(o, lo)
	if err != nil {
		return nil, nil, err
	}
	t := NewTable(
		"Lookup acceleration: chord vs chord+cache vs onehop (hops, latency, maintenance)",
		"arm/n", "measurement",
		[]string{"mean hops", "max hops", "latency ms", "maint msg/peer/min", "cache hit", "wrong owner"})
	for _, pt := range res.Points {
		row := fmt.Sprintf("%s/n=%d", pt.Arm, pt.Peers)
		t.Set(row, "mean hops", pt.MeanHops)
		t.Set(row, "max hops", float64(pt.MaxHops))
		t.Set(row, "latency ms", pt.MeanLatencyMs)
		t.Set(row, "maint msg/peer/min", pt.MaintMsgsPerPeerMin)
		t.Set(row, "cache hit", pt.CacheHitRate)
		t.Set(row, "wrong owner", float64(pt.WrongOwner))
	}
	t.Notes = append(t.Notes,
		"every arm replays the identical sample stream on a same-seed deployment; latencies are simulated ms;",
		fmt.Sprintf("maintenance traffic is the whole network's messages over a %d-event churn window, normalized per peer per minute;", res.ChurnEvents),
		"onehop buys its one-hop lookups with O(n) membership-event fan-out — visible in the maintenance column;",
		"the same seed replays this table bit-identically (lookup determinism test and CI double-run)")
	return t, res, nil
}
