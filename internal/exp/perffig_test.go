package exp

import (
	"encoding/json"
	"testing"
	"time"

	"repro/internal/perf"
)

// tinyPerfOptions keeps the perf figure test in CI time.
func tinyPerfOptions() PerfOptions {
	return PerfOptions{
		MicroOps:            6,
		Peers:               24,
		Bound:               10 * time.Minute,
		KernelPeers:         []int{50, 200},
		KernelEventsPerPeer: 3,
		MacroOps:            30,
		MacroConcurrency:    2,
	}
}

func TestFigurePerfValidatesAtToyScale(t *testing.T) {
	_, fig, err := FigurePerf(Options{Seed: 11}, tinyPerfOptions())
	if err != nil {
		t.Fatalf("FigurePerf: %v", err)
	}
	if err := fig.Validate(); err != nil {
		t.Fatalf("figure invalid: %v", err)
	}
	if len(fig.Ops) != 6 {
		t.Fatalf("op points = %d, want 6 (ums put/get x3 levels, brk put/get)", len(fig.Ops))
	}
	if fig.Macro == nil || fig.Macro.Ops == 0 {
		t.Fatal("macro point missing or empty")
	}
	// Timing fields must be populated on a live run (they are only
	// zeroed by an explicit StripTiming).
	if fig.Kernel[0].EventsPerSec == 0 {
		t.Fatal("kernel timing missing")
	}
}

// TestFigurePerfDeterministic regenerates the figure twice on one seed
// and demands the stripped exports match byte for byte — the property
// scripts/check_bench.sh holds the shipped binary to.
func TestFigurePerfDeterministic(t *testing.T) {
	run := func() []byte {
		_, fig, err := FigurePerf(Options{Seed: 23}, tinyPerfOptions())
		if err != nil {
			t.Fatalf("FigurePerf: %v", err)
		}
		fig.StripTiming()
		data, err := json.Marshal(fig)
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		return data
	}
	a := run()
	b := run()
	if string(a) != string(b) {
		t.Fatalf("same-seed perf figures differ:\n%s\n%s", a, b)
	}
}

// TestFigurePerfBaselineDrift proves ValidateAgainst catches a changed
// deterministic outcome: a different seed produces different costs.
func TestFigurePerfBaselineDrift(t *testing.T) {
	_, base, err := FigurePerf(Options{Seed: 11}, tinyPerfOptions())
	if err != nil {
		t.Fatalf("FigurePerf: %v", err)
	}
	_, other, err := FigurePerf(Options{Seed: 12}, tinyPerfOptions())
	if err != nil {
		t.Fatalf("FigurePerf: %v", err)
	}
	if err := other.ValidateAgainst(base); err == nil {
		t.Fatal("cross-seed figures validated against each other")
	}
	var perfCopy perf.Figure
	data, _ := json.Marshal(base)
	if err := json.Unmarshal(data, &perfCopy); err != nil {
		t.Fatalf("round trip: %v", err)
	}
	if err := perfCopy.ValidateAgainst(base); err != nil {
		t.Fatalf("JSON round trip failed baseline check: %v", err)
	}
}
