package exp

import (
	"context"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/dht"
	"repro/internal/perf"
	"repro/internal/workload"
)

// PerfOptions parameterizes the perf figure beyond the shared Options.
// Zero values select the quick/full defaults.
type PerfOptions struct {
	// MicroOps is the operation count per micro point (one point per
	// algorithm x op x level).
	MicroOps int
	// Peers is the deployment size the micro and macro points run on.
	Peers int
	// Bound is the staleness bound for the bounded-level micro reads.
	Bound time.Duration
	// KernelPeers are the synthetic scales for the scheduler benchmark.
	KernelPeers []int
	// KernelEventsPerPeer is each synthetic peer's chain length.
	KernelEventsPerPeer int
	// MacroOps bounds the end-to-end workload point; 0 skips quickly at
	// the default, negative skips the macro point entirely.
	MacroOps int
	// MacroConcurrency is the macro point's closed-loop worker count.
	MacroConcurrency int
}

func (po PerfOptions) withDefaults(full bool) PerfOptions {
	if po.MicroOps == 0 {
		if full {
			po.MicroOps = 200
		} else {
			po.MicroOps = 30
		}
	}
	if po.Peers == 0 {
		if full {
			po.Peers = 1000
		} else {
			po.Peers = 48
		}
	}
	if po.Bound == 0 {
		po.Bound = 10 * time.Minute
	}
	if len(po.KernelPeers) == 0 {
		// The 100k point stays in quick mode on purpose: booting 100k
		// synthetic peers and draining >= 1M events is the scale
		// acceptance check, and the bare kernel does it in well under a
		// second.
		po.KernelPeers = []int{1000, 10000, 100000}
	}
	if po.KernelEventsPerPeer == 0 {
		if full {
			po.KernelEventsPerPeer = 50
		} else {
			po.KernelEventsPerPeer = 10
		}
	}
	if po.MacroOps == 0 {
		if full {
			po.MacroOps = 1000000
		} else {
			po.MacroOps = 300
		}
	}
	if po.MacroConcurrency == 0 {
		if full {
			po.MacroConcurrency = 16
		} else {
			po.MacroConcurrency = 4
		}
	}
	return po
}

// FigurePerf measures the hot paths end to end: one micro point per
// (algorithm, op, level) through a warm simulated deployment, the bare
// kernel at synthetic 1k/10k/100k-peer scales, and one closed-loop
// macro workload. Deterministic fields (op counts, msgs/op, KTS
// reqs/op, simulated latency, kernel event counts) replay bit-for-bit
// per seed; timing fields are the host's and are stripped before CI
// byte-compares (see internal/perf).
func FigurePerf(o Options, po PerfOptions) (*Table, *perf.Figure, error) {
	po = po.withDefaults(o.Full)
	fig := &perf.Figure{Schema: perf.SchemaV1, Seed: o.seed(), Full: o.Full}

	sc := Table1Scenario(AlgUMSDirect, po.Peers, o.seed())
	d := NewDeployment(DeployConfig{
		Peers:    po.Peers,
		Replicas: sc.Replicas,
		Seed:     o.seed(),
		Net:      sc.Net,
		Chord:    sc.Chord,
	})
	defer d.K.Stop()
	d.RunFor(sc.Warmup)

	// All micro ops issue from one fixed peer: deterministic, and the
	// bounded level reads through the last_ts cache that peer's own
	// writes warmed — exactly the session shape the cache serves.
	issuer := d.Peers[0]
	keys := make([]core.Key, po.MicroOps)
	for i := range keys {
		keys[i] = core.Key(fmt.Sprintf("perf-k%03d", i))
	}

	// micro measures one operation shape: ops operations driven as a
	// single simulation process, KTS traffic read off the deployment
	// counters, wall time and allocations off the host clock.
	micro := func(alg, op, level string, fn func(i int) (dht.OpResult, error)) (perf.OpPoint, error) {
		g0, l0 := d.ktsRequests()
		t0 := d.K.Now()
		var msgs, failed int
		var opErr error
		tm := perf.Measure(po.MicroOps, func() {
			if !d.Do(func() {
				for i := 0; i < po.MicroOps; i++ {
					r, err := fn(i)
					if err != nil {
						failed++
						opErr = err
						continue
					}
					msgs += r.Msgs
				}
			}) {
				opErr = fmt.Errorf("exp: perf micro %s/%s stalled: %w", alg, op, core.ErrTimeout)
				failed = po.MicroOps
			}
		})
		if failed > 0 {
			return perf.OpPoint{}, fmt.Errorf("exp: perf micro %s/%s/%s: %d/%d ops failed: %w",
				alg, op, level, failed, po.MicroOps, opErr)
		}
		g1, l1 := d.ktsRequests()
		p := perf.OpPoint{
			Alg:           alg,
			Op:            op,
			Level:         level,
			OpsRun:        po.MicroOps,
			MsgsPerOp:     float64(msgs) / float64(po.MicroOps),
			KTSReqsPerOp:  (g1 - g0 + l1 - l0) / float64(po.MicroOps),
			SimLatencyMs:  float64((d.K.Now() - t0).Milliseconds()) / float64(po.MicroOps),
			WallOpsPerSec: tm.OpsPerSec,
			AllocsPerOp:   tm.AllocsPerOp,
		}
		o.progress("perf-micro %-4s %-3s %-8s  msgs/op=%6.2f kts/op=%5.2f simlat=%6.1fms  %8.0f ops/s wall",
			alg, op, level, p.MsgsPerOp, p.KTSReqsPerOp, p.SimLatencyMs, p.WallOpsPerSec)
		return p, nil
	}

	data := []byte("perf-payload")
	points := []struct {
		alg, op, level string
		fn             func(i int) (dht.OpResult, error)
	}{
		{"ums", "put", "", func(i int) (dht.OpResult, error) {
			return issuer.UMS.Insert(context.Background(), keys[i], data)
		}},
		{"ums", "get", "current", func(i int) (dht.OpResult, error) {
			return issuer.UMS.RetrieveWith(context.Background(), keys[i], dht.ReadPolicy{Level: dht.LevelCurrent})
		}},
		{"ums", "get", "bounded", func(i int) (dht.OpResult, error) {
			return issuer.UMS.RetrieveWith(context.Background(), keys[i], dht.ReadPolicy{Level: dht.LevelBounded, Bound: po.Bound})
		}},
		{"ums", "get", "eventual", func(i int) (dht.OpResult, error) {
			return issuer.UMS.RetrieveWith(context.Background(), keys[i], dht.ReadPolicy{Level: dht.LevelEventual})
		}},
		{"brk", "put", "", func(i int) (dht.OpResult, error) {
			return issuer.BRK.Insert(context.Background(), keys[i], data)
		}},
		{"brk", "get", "", func(i int) (dht.OpResult, error) {
			return issuer.BRK.Retrieve(context.Background(), keys[i])
		}},
	}
	for _, pt := range points {
		p, err := micro(pt.alg, pt.op, pt.level, pt.fn)
		if err != nil {
			return nil, nil, err
		}
		fig.Ops = append(fig.Ops, p)
	}

	// The bare-kernel sweep: no protocol stack, just the sharded event
	// queue at scales the deployment figures never reach.
	for _, n := range po.KernelPeers {
		kp := perf.KernelBench(perf.KernelConfig{
			Seed:          o.seed(),
			Peers:         n,
			EventsPerPeer: po.KernelEventsPerPeer,
		})
		o.progress("perf-kernel n=%6d  events=%8d  %10.0f ev/s  %6.1f ns/ev  %5.2f allocs/ev",
			kp.Peers, kp.Events, kp.EventsPerSec, kp.NsPerEvent, kp.AllocsPerEvent)
		fig.Kernel = append(fig.Kernel, kp)
	}

	// The macro point: a closed-loop uniform workload through the same
	// deployment, issued from random live peers like the workload figure.
	if po.MacroOps > 0 {
		spec := workload.Spec{
			Pattern:     workload.Uniform,
			Keys:        32,
			KeyPrefix:   "perfwl-",
			Ops:         po.MacroOps,
			Concurrency: po.MacroConcurrency,
			Seed:        o.seed(),
		}
		var rep *workload.Report
		var err error
		tm := perf.Measure(po.MacroOps, func() {
			rep, err = d.RunWorkload(context.Background(), spec)
		})
		if err != nil {
			return nil, nil, fmt.Errorf("exp: perf macro workload: %w", err)
		}
		fig.Macro = &perf.MacroPoint{
			Peers:         po.Peers,
			Ops:           rep.Ops,
			Failed:        rep.Reads.Errors + rep.Writes.Errors,
			SimElapsedSec: rep.ElapsedSec,
			SimOpsPerSec:  rep.OpsPerSec,
			WallMs:        tm.WallSeconds * 1000,
		}
		o.progress("perf-macro ops=%d failed=%d sim=%.1fs (%.1f ops/s sim)  wall=%.0fms",
			fig.Macro.Ops, fig.Macro.Failed, fig.Macro.SimElapsedSec, fig.Macro.SimOpsPerSec, fig.Macro.WallMs)
	}

	if err := fig.Validate(); err != nil {
		return nil, nil, err
	}

	t := NewTable(
		fmt.Sprintf("Perf: hot-path costs (n=%d, %d ops/point, seed %d)", po.Peers, po.MicroOps, o.seed()),
		"point", "cost",
		[]string{"msgs/op", "kts reqs/op", "sim lat ms", "wall ops/s", "allocs/op"})
	for _, p := range fig.Ops {
		row := p.Alg + " " + p.Op
		if p.Level != "" {
			row += " " + p.Level
		}
		t.Set(row, "msgs/op", p.MsgsPerOp)
		t.Set(row, "kts reqs/op", p.KTSReqsPerOp)
		t.Set(row, "sim lat ms", p.SimLatencyMs)
		t.Set(row, "wall ops/s", p.WallOpsPerSec)
		t.Set(row, "allocs/op", p.AllocsPerOp)
	}
	for _, kp := range fig.Kernel {
		row := fmt.Sprintf("kernel n=%d", kp.Peers)
		t.Set(row, "msgs/op", float64(kp.Events))
		t.Set(row, "wall ops/s", kp.EventsPerSec)
		t.Set(row, "allocs/op", kp.AllocsPerEvent)
	}
	return t, fig, nil
}
