package exp

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"
)

// tinyConsistency is the toy scale the determinism and acceptance
// assertions run at: 6 deployments in well under a second.
func tinyConsistency() (Options, ConsistencyOptions) {
	return Options{Seed: 42},
		ConsistencyOptions{Peers: 40, Queries: 24, Duration: 8 * time.Minute, Clients: 3}
}

// TestConsistencyFigureDeterminism replays the figure twice on the same
// seed and requires the serialized points to match bit for bit — the
// BENCH_consistency.json a CI run writes is exactly reproducible.
func TestConsistencyFigureDeterminism(t *testing.T) {
	run := func() []byte {
		o, co := tinyConsistency()
		points, err := ConsistencyComparison(o, co)
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(points)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		t.Fatalf("same seed, different figure JSON:\n%s\n---\n%s", a, b)
	}
}

// TestConsistencyLevelsOrdering is the acceptance criterion in vivo: on
// the same seed, Eventual and Bounded retrieves cost strictly fewer
// messages and strictly less response time than Current, in both repair
// modes, while Current reports Proven for every retrieve that found a
// current replica at all (everything that neither fell back stale nor
// failed).
func TestConsistencyLevelsOrdering(t *testing.T) {
	o, co := tinyConsistency()
	points, err := ConsistencyComparison(o, co)
	if err != nil {
		t.Fatal(err)
	}
	byKey := map[string]ConsistencyPoint{}
	for _, p := range points {
		key := p.Level
		if p.Repair {
			key += "+repair"
		}
		byKey[key] = p
	}
	for _, suffix := range []string{"", "+repair"} {
		cur, ok1 := byKey["current"+suffix]
		bnd, ok2 := byKey["bounded"+suffix]
		ev, ok3 := byKey["eventual"+suffix]
		if !ok1 || !ok2 || !ok3 {
			t.Fatalf("missing level points in %v", byKey)
		}
		for _, p := range []ConsistencyPoint{cur, bnd, ev} {
			if p.QueriesRun == 0 {
				t.Fatalf("%s%s ran no queries", p.Level, suffix)
			}
		}
		if !(ev.MsgsPerRetrieve < cur.MsgsPerRetrieve) || !(bnd.MsgsPerRetrieve < cur.MsgsPerRetrieve) {
			t.Errorf("messages%s: eventual %.2f / bounded %.2f not strictly below current %.2f",
				suffix, ev.MsgsPerRetrieve, bnd.MsgsPerRetrieve, cur.MsgsPerRetrieve)
		}
		if !(ev.RespTimeSec < cur.RespTimeSec) || !(bnd.RespTimeSec < cur.RespTimeSec) {
			t.Errorf("latency%s: eventual %.3fs / bounded %.3fs not strictly below current %.3fs",
				suffix, ev.RespTimeSec, bnd.RespTimeSec, cur.RespTimeSec)
		}
		// Current proves currency whenever a current replica was
		// reachable: every run is either Proven, an explicit stale
		// fallback, or a failure — never an unproven success.
		if cur.Proven+cur.StaleReturns+cur.FailedQueries != cur.QueriesRun {
			t.Errorf("current%s: proven %d + stale %d + failed %d != run %d",
				suffix, cur.Proven, cur.StaleReturns, cur.FailedQueries, cur.QueriesRun)
		}
		if cur.WithinBound+cur.SessionFloor+cur.Unknown != 0 {
			t.Errorf("current%s: weaker verdicts on the provably-current level: %+v", suffix, cur)
		}
		// Bounded must actually have exercised the cache fast path.
		if bnd.WithinBound == 0 {
			t.Errorf("bounded%s: no within-bound verdicts — the cache never satisfied a read", suffix)
		}
		if ev.Proven+ev.WithinBound+ev.SessionFloor != 0 {
			t.Errorf("eventual%s: claimed currency it cannot have: %+v", suffix, ev)
		}
	}
}
