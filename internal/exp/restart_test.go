package exp

import (
	"context"
	"reflect"
	"sort"
	"testing"
	"time"

	"repro/internal/chord"
	"repro/internal/core"
	"repro/internal/dht"
	"repro/internal/ums"
)

// holdsReplica reports whether p's store has any replica of k.
func holdsReplica(d *Deployment, p *Peer, k core.Key) bool {
	for _, h := range d.Set.Hr {
		if _, ok := p.Node.Store().Get(h.ID(k), dht.Qualifier(ums.Namespace, k, h.Name())); ok {
			return true
		}
	}
	return false
}

// holdsCounter reports whether p's durable backing journaled k's counter
// (only meaningful under Durable, where the KTS journal is wired).
func holdsCounter(p *Peer, k core.Key) bool {
	for _, c := range p.Node.Store().Backing().Counters() {
		if c.Key == k {
			return true
		}
	}
	return false
}

// crashKeyHolders builds a small ring, inserts key twice, then crashes
// every peer holding one of its replicas (and, under durable, its
// counter). It returns the deployment, the crashed names and the last
// granted timestamp.
func crashKeyHolders(t *testing.T, durable bool, key core.Key) (*Deployment, []string, core.Timestamp) {
	t.Helper()
	d := NewDeployment(DeployConfig{
		Peers:    10,
		Replicas: 3,
		Seed:     42,
		Durable:  durable,
		// Brisk maintenance so the ring re-converges quickly (in virtual
		// time) after the crash and restart waves.
		Chord: chord.Config{StabilizeEvery: 2 * time.Second, FixFingersEvery: 3 * time.Second},
	})
	d.RunFor(time.Minute)

	var last core.Timestamp
	ok := d.Do(func() {
		p := d.LivePeers()[0]
		if _, err := p.UMS.Insert(context.Background(), key, []byte("v1")); err != nil {
			t.Errorf("insert 1: %v", err)
			return
		}
		r, err := p.UMS.Insert(context.Background(), key, []byte("v2"))
		if err != nil {
			t.Errorf("insert 2: %v", err)
			return
		}
		last = r.TS
	})
	if !ok || t.Failed() {
		t.Fatal("setup inserts did not complete")
	}

	var doomed []*Peer
	for _, p := range d.LivePeers() {
		if holdsReplica(d, p, key) || (durable && holdsCounter(p, key)) {
			doomed = append(doomed, p)
		}
	}
	if len(doomed) == 0 {
		t.Fatal("no peer holds the key")
	}
	var names []string
	d.Do(func() {
		for _, p := range doomed {
			names = append(names, p.Name)
			d.Depart(p, true)
		}
	})
	d.RunFor(5 * time.Minute) // let the survivors purge the dead from their tables
	return d, names, last
}

// restartAll revives the named peers one at a time, with a stabilization
// gap between revivals so each join routes over a converged ring.
func restartAll(t *testing.T, d *Deployment, names []string) {
	t.Helper()
	rng := d.K.NewRand("restart-test")
	for _, name := range names {
		name := name
		d.Do(func() {
			if d.RestartWithState(name, rng) == nil {
				t.Errorf("restart %s failed", name)
			}
		})
		d.RunFor(time.Minute)
	}
	if t.Failed() {
		t.FailNow()
	}
}

// TestRestartWithStateDurable is the sim analogue of the node acceptance
// test: crash every holder of a key, restart them with retained state,
// and the deployment serves the pre-crash value and continues the
// counter exactly where it left off.
func TestRestartWithStateDurable(t *testing.T) {
	key := core.Key("doc")
	d, names, last := crashKeyHolders(t, true, key)

	got := d.RestartablePeers()
	sortedCopy := func(s []string) []string {
		out := append([]string(nil), s...)
		sort.Strings(out)
		return out
	}
	if !reflect.DeepEqual(sortedCopy(got), sortedCopy(names)) {
		t.Fatalf("restartable = %v, want the crashed %v", got, names)
	}

	restartAll(t, d, names)
	if left := d.RestartablePeers(); len(left) != 0 {
		t.Fatalf("still restartable after revival: %v", left)
	}
	d.RunFor(time.Minute)

	var res dht.OpResult
	ok := d.Do(func() {
		p := d.LivePeers()[0]
		var err error
		res, err = p.UMS.Retrieve(context.Background(), key)
		if err != nil {
			t.Errorf("retrieve after restart: %v", err)
		}
	})
	if !ok || t.Failed() {
		t.FailNow()
	}
	if string(res.Data) != "v2" || res.TS != last {
		t.Fatalf("after restart got %q @ %v, want %q @ %v", res.Data, res.TS, "v2", last)
	}

	// The revived responsible continues its counter: the next grant is
	// exactly last+1, not a fresh start and not an indirect re-init gap.
	var next core.Timestamp
	ok = d.Do(func() {
		p := d.LivePeers()[0]
		r, err := p.UMS.Insert(context.Background(), key, []byte("v3"))
		if err != nil {
			t.Errorf("insert after restart: %v", err)
			return
		}
		next = r.TS
	})
	if !ok || t.Failed() {
		t.FailNow()
	}
	if next != last.Next() {
		t.Fatalf("post-restart ts = %v, want exactly %v", next, last.Next())
	}
}

// TestRestartWithStateVolatile pins the baseline the recovery figure
// compares against: without Durable a restarted peer comes back blank,
// so a key whose holders all crashed stays lost.
func TestRestartWithStateVolatile(t *testing.T) {
	key := core.Key("doc")
	d, names, _ := crashKeyHolders(t, false, key)

	restartAll(t, d, names)
	d.RunFor(time.Minute)

	ok := d.Do(func() {
		p := d.LivePeers()[0]
		if res, err := p.UMS.Retrieve(context.Background(), key); err == nil {
			t.Errorf("crash-and-forget restart served %q @ %v, want a miss", res.Data, res.TS)
		}
	})
	if !ok {
		t.Fatal("retrieve did not complete")
	}
}
