package exp

import (
	"fmt"
	"io"
	"strings"
)

// Table is one figure's data: an x axis and one series of y values per
// algorithm, rendered the way the paper plots it.
type Table struct {
	Title  string
	XLabel string
	YLabel string
	Series []string
	XS     []string
	// Cells[x][series] = value; missing cells render as "-".
	Cells map[string]map[string]float64
	// Notes carry run metadata (seed, scale, wall time).
	Notes []string
}

// NewTable prepares an empty table with the given series order.
func NewTable(title, xlabel, ylabel string, series []string) *Table {
	return &Table{
		Title:  title,
		XLabel: xlabel,
		YLabel: ylabel,
		Series: series,
		Cells:  make(map[string]map[string]float64),
	}
}

// Set records one measurement.
func (t *Table) Set(x, series string, v float64) {
	if _, seen := t.Cells[x]; !seen {
		t.XS = append(t.XS, x)
		t.Cells[x] = make(map[string]float64)
	}
	t.Cells[x][series] = v
}

// Get returns the cell value and whether it is present.
func (t *Table) Get(x, series string) (float64, bool) {
	row, ok := t.Cells[x]
	if !ok {
		return 0, false
	}
	v, ok := row[series]
	return v, ok
}

// Render writes a fixed-width text table.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "%s\n", t.Title)
	fmt.Fprintf(w, "  y: %s\n", t.YLabel)
	widths := make([]int, len(t.Series)+1)
	widths[0] = len(t.XLabel)
	for _, x := range t.XS {
		if len(x) > widths[0] {
			widths[0] = len(x)
		}
	}
	for i, s := range t.Series {
		widths[i+1] = len(s)
		for _, x := range t.XS {
			if v, ok := t.Get(x, s); ok {
				if n := len(formatCell(v)); n > widths[i+1] {
					widths[i+1] = n
				}
			}
		}
	}
	line := func(parts []string) {
		row := make([]string, len(parts))
		for i, p := range parts {
			row[i] = fmt.Sprintf("%*s", widths[i], p)
		}
		fmt.Fprintf(w, "  %s\n", strings.Join(row, "  "))
	}
	header := append([]string{t.XLabel}, t.Series...)
	line(header)
	sep := make([]string, len(header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, x := range t.XS {
		parts := []string{x}
		for _, s := range t.Series {
			if v, ok := t.Get(x, s); ok {
				parts = append(parts, formatCell(v))
			} else {
				parts = append(parts, "-")
			}
		}
		line(parts)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
}

// CSV writes the table as comma-separated values.
func (t *Table) CSV(w io.Writer) {
	cols := append([]string{t.XLabel}, t.Series...)
	fmt.Fprintln(w, strings.Join(cols, ","))
	for _, x := range t.XS {
		parts := []string{x}
		for _, s := range t.Series {
			if v, ok := t.Get(x, s); ok {
				parts = append(parts, fmt.Sprintf("%g", v))
			} else {
				parts = append(parts, "")
			}
		}
		fmt.Fprintln(w, strings.Join(parts, ","))
	}
}

func formatCell(v float64) string {
	switch {
	case v == float64(int64(v)) && v < 1e6:
		return fmt.Sprintf("%.0f", v)
	case v >= 100:
		return fmt.Sprintf("%.0f", v)
	case v >= 1:
		return fmt.Sprintf("%.2f", v)
	default:
		return fmt.Sprintf("%.4f", v)
	}
}
