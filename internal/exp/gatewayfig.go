package exp

import (
	"context"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/dht"
	"repro/internal/gateway"
	"repro/internal/workload"
)

// The gateway figure: the front-end tier's currency/cost trade under
// hot-key skew. Two arms run the identical Zipf workload spec on
// deployments built from the same seed — one issuing every operation
// directly from random peers (the paper's harness shape), one issuing
// through a gateway pooled over a few backend peers — and the figure
// compares KTS traffic, hot-key coalescing, and latency quantiles.

// GatewayOptions parameterizes the gateway figure beyond the shared
// exp.Options.
type GatewayOptions struct {
	// Backends is the gateway's backend pool size (default 4).
	Backends int
	// ZipfS is the Zipf skew exponent; the default 1.6 concentrates
	// most reads on a handful of hot keys (well past a 0.99 skew).
	ZipfS float64
	// Concurrency is the closed-loop worker count (default 24): the
	// concurrency is what gives same-key reads the chance to overlap
	// and coalesce.
	Concurrency int
	// Ops bounds each arm by operation count (default 600) so both
	// arms execute exactly the same generated stream.
	Ops int
	// Keys is the keyspace size (default 8; small keeps it hot).
	Keys int
	// ReadRatio is the read fraction; nil selects the default 0.9.
	ReadRatio *float64
	// BoundedFrac and EventualFrac shape the read consistency mix
	// (defaults 0.15 and 0.05; the remainder reads at Current).
	BoundedFrac  float64
	EventualFrac float64
	// Bound is the staleness bound for the Bounded fraction (default 30s).
	Bound time.Duration
	// Peers overrides the deployment size (default 100 quick / 400 full).
	Peers int
}

func (gwo GatewayOptions) withDefaults(full bool) GatewayOptions {
	if gwo.Backends <= 0 {
		gwo.Backends = 4
	}
	if gwo.ZipfS == 0 {
		gwo.ZipfS = 1.6
	}
	if gwo.Concurrency <= 0 {
		gwo.Concurrency = 24
	}
	if gwo.Ops <= 0 {
		gwo.Ops = 600
	}
	if gwo.Keys <= 0 {
		gwo.Keys = 8
	}
	if gwo.Bound <= 0 {
		gwo.Bound = 30 * time.Second
	}
	if gwo.Peers <= 0 {
		gwo.Peers = 100
		if full {
			gwo.Peers = 400
		}
	}
	return gwo
}

// spec translates the options into the one workload spec both arms run.
func (gwo GatewayOptions) spec(seed int64) workload.Spec {
	return workload.Spec{
		Pattern:      workload.Zipf,
		Seed:         seed,
		ReadRatio:    gwo.ReadRatio,
		ZipfS:        gwo.ZipfS,
		Concurrency:  gwo.Concurrency,
		Ops:          gwo.Ops,
		Keys:         gwo.Keys,
		BoundedFrac:  gwo.BoundedFrac,
		EventualFrac: gwo.EventualFrac,
		Bound:        gwo.Bound,
	}
}

// GatewayArm is one arm's outcome: the workload report plus the KTS
// traffic the whole deployment generated while serving it, and — for
// the gateway arm — the gateway's own coalescing and cache counters.
type GatewayArm struct {
	Arm string `json:"arm"`
	workload.Report
	// KTSGenTS / KTSLastTS count client-side KTS requests issued
	// deployment-wide during the arm (dcdht_kts_*_requests_total).
	KTSGenTS  float64 `json:"kts_gents_requests"`
	KTSLastTS float64 `json:"kts_lastts_requests"`
	// Gateway carries the gateway arm's coalescing/cache counters.
	Gateway *gateway.Stats `json:"gateway,omitempty"`
	// CoalescingFactor is reads-served-per-backend-read on the
	// coalescing path: (flights + coalesced) / flights.
	CoalescingFactor float64 `json:"coalescing_factor,omitempty"`
}

// GatewayResult is the figure's machine-readable document
// (BENCH_gateway.json).
type GatewayResult struct {
	Peers    int     `json:"peers"`
	Backends int     `json:"backends"`
	ZipfS    float64 `json:"zipf_s"`
	Seed     int64   `json:"seed"`
	Direct   GatewayArm
	GW       GatewayArm `json:"gateway_arm"`
	// KTSSavedPct is the percentage of the direct arm's KTS requests
	// the gateway arm avoided.
	KTSSavedPct float64 `json:"kts_saved_pct"`
}

// peerBackend adapts one simulated peer to the gateway backend
// interface.
type peerBackend struct{ p *Peer }

func (b peerBackend) Insert(ctx context.Context, k core.Key, data []byte) (dht.OpResult, error) {
	return b.p.UMS.Insert(ctx, k, data)
}

func (b peerBackend) Retrieve(ctx context.Context, k core.Key, pol dht.ReadPolicy) (dht.OpResult, error) {
	return b.p.UMS.RetrieveWith(ctx, k, pol)
}

func (b peerBackend) LastTS(ctx context.Context, k core.Key) (core.Timestamp, error) {
	return b.p.KTS.LastTS(ctx, k)
}

// gatewayClient adapts the gateway to the workload engine's client.
type gatewayClient struct{ g *gateway.Gateway }

func (c gatewayClient) Put(ctx context.Context, key core.Key, data []byte) (dht.OpResult, error) {
	return c.g.Insert(ctx, key, data)
}

func (c gatewayClient) Get(ctx context.Context, key core.Key) (dht.OpResult, error) {
	return c.g.Retrieve(ctx, key, dht.ReadPolicy{})
}

func (c gatewayClient) GetWith(ctx context.Context, key core.Key, pol dht.ReadPolicy) (dht.OpResult, error) {
	return c.g.Retrieve(ctx, key, pol)
}

// ktsRequests reads the deployment-wide client-side KTS request
// counters.
func (d *Deployment) ktsRequests() (gents, lastts float64) {
	snap := d.Obs.Snapshot()
	return snap.Get("dcdht_kts_gents_requests_total").Total(),
		snap.Get("dcdht_kts_lastts_requests_total").Total()
}

// GatewayComparison runs the two arms on same-seed deployments and
// returns the paired outcome.
func GatewayComparison(o Options, gwo GatewayOptions) (*GatewayResult, error) {
	gwo = gwo.withDefaults(o.Full)
	spec := gwo.spec(o.seed())
	res := &GatewayResult{
		Peers:    gwo.Peers,
		Backends: gwo.Backends,
		ZipfS:    gwo.ZipfS,
		Seed:     o.seed(),
	}

	newDeployment := func() *Deployment {
		sc := Table1Scenario(AlgUMSDirect, gwo.Peers, o.seed())
		d := NewDeployment(DeployConfig{
			Peers:    gwo.Peers,
			Replicas: sc.Replicas,
			Seed:     o.seed(),
			Net:      sc.Net,
			Chord:    sc.Chord,
		})
		d.RunFor(sc.Warmup)
		return d
	}

	// Arm 1: direct issue from random live peers.
	d := newDeployment()
	rep, err := d.RunWorkload(context.Background(), spec)
	if err != nil {
		d.K.Stop()
		return nil, fmt.Errorf("exp: gateway figure, direct arm: %w", err)
	}
	res.Direct = GatewayArm{Arm: "direct", Report: *rep}
	res.Direct.KTSGenTS, res.Direct.KTSLastTS = d.ktsRequests()
	d.K.Stop()
	o.progress("gateway-direct   ops=%5d %6.2f ops/s  read p50=%7.0fms p99=%7.0fms  kts=%5.0f",
		rep.Ops, rep.OpsPerSec, rep.Reads.P50Ms, rep.Reads.P99Ms,
		res.Direct.KTSGenTS+res.Direct.KTSLastTS)

	// Arm 2: the same spec through a gateway pooled over the first
	// Backends peers, on a fresh same-seed deployment.
	d = newDeployment()
	pool := make([]gateway.Backend, gwo.Backends)
	for i := 0; i < gwo.Backends; i++ {
		pool[i] = peerBackend{p: d.Peers[i%len(d.Peers)]}
	}
	gw, err := gateway.New(pool, gateway.Config{Env: d.Net.Env(), Obs: d.Obs})
	if err != nil {
		d.K.Stop()
		return nil, fmt.Errorf("exp: gateway figure: %w", err)
	}
	rep, err = d.RunWorkloadWith(context.Background(), spec, gatewayClient{g: gw})
	if err != nil {
		d.K.Stop()
		return nil, fmt.Errorf("exp: gateway figure, gateway arm: %w", err)
	}
	st := gw.Stats()
	res.GW = GatewayArm{Arm: "gateway", Report: *rep, Gateway: &st}
	res.GW.KTSGenTS, res.GW.KTSLastTS = d.ktsRequests()
	if st.Flights > 0 {
		res.GW.CoalescingFactor = float64(st.Flights+st.Coalesced) / float64(st.Flights)
	}
	d.K.Stop()

	direct := res.Direct.KTSGenTS + res.Direct.KTSLastTS
	through := res.GW.KTSGenTS + res.GW.KTSLastTS
	if direct > 0 {
		res.KTSSavedPct = 100 * (direct - through) / direct
	}
	o.progress("gateway-pooled   ops=%5d %6.2f ops/s  read p50=%7.0fms p99=%7.0fms  kts=%5.0f  coalesce=%.2fx saved=%.1f%%",
		rep.Ops, rep.OpsPerSec, rep.Reads.P50Ms, rep.Reads.P99Ms,
		through, res.GW.CoalescingFactor, res.KTSSavedPct)
	return res, nil
}

// FigureGateway tabulates the comparison: per-arm throughput, latency
// quantiles, KTS traffic, and the gateway's coalescing and cache work.
func FigureGateway(o Options, gwo GatewayOptions) (*Table, *GatewayResult, error) {
	res, err := GatewayComparison(o, gwo)
	if err != nil {
		return nil, nil, err
	}
	t := NewTable(
		fmt.Sprintf("Gateway: hot-key coalescing front-end vs direct issue (Zipf s=%.2f, %d backends)",
			res.ZipfS, res.Backends),
		"arm", "workload outcome",
		[]string{"ops/s", "read p50", "read p99", "kts reqs", "flights", "coalesced", "coalesce x", "cache served"})
	for _, arm := range []*GatewayArm{&res.Direct, &res.GW} {
		t.Set(arm.Arm, "ops/s", arm.OpsPerSec)
		t.Set(arm.Arm, "read p50", arm.Reads.P50Ms)
		t.Set(arm.Arm, "read p99", arm.Reads.P99Ms)
		t.Set(arm.Arm, "kts reqs", arm.KTSGenTS+arm.KTSLastTS)
		if arm.Gateway != nil {
			t.Set(arm.Arm, "flights", float64(arm.Gateway.Flights))
			t.Set(arm.Arm, "coalesced", float64(arm.Gateway.Coalesced))
			t.Set(arm.Arm, "coalesce x", arm.CoalescingFactor)
			t.Set(arm.Arm, "cache served", float64(arm.Gateway.CacheServedGets+arm.Gateway.CacheServedLastTS))
		}
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("both arms run the identical %d-op Zipf spec on same-seed deployments; latencies are simulated ms;", res.Direct.Ops),
		fmt.Sprintf("the gateway arm saved %.1f%% of the direct arm's KTS requests (coalescing %.2fx on the hot keys);",
			res.KTSSavedPct, res.GW.CoalescingFactor),
		"the same seed replays this table bit-identically (gateway determinism test and CI double-run)")
	return t, res, nil
}
