package exp

import (
	"context"
	"time"

	"repro/internal/workload"
)

// The workload figure: YCSB-style load generation against a simulated
// UMS-Direct deployment. Where the paper's figures measure 30 queries
// at uniform times, this figure drives sustained traffic with skewed
// key popularity and explicit read/write mixes, and reports the latency
// *distribution* (p50/p95/p99/p999 from log-bucketed histograms) per
// op type instead of a single mean — the shape production capacity
// planning actually needs.

// WorkloadOptions parameterizes the workload figure beyond the shared
// exp.Options. The zero value runs every pattern with a 90% read mix
// under the closed-loop driver.
type WorkloadOptions struct {
	// Pattern restricts the figure to one pattern; empty or "all" runs
	// every built-in pattern as one series each.
	Pattern string
	// ReadRatio is the read fraction in [0, 1]; nil selects the default
	// 0.9. A pointer so 0 — a pure-write workload — stays expressible,
	// like SimConfig.FailureRate.
	ReadRatio *float64
	// ZipfS is the Zipf skew exponent (>1) for the zipf pattern.
	ZipfS float64
	// Rate, when positive, selects the open-loop driver at this many
	// ops per simulated second; otherwise the closed-loop driver runs
	// Concurrency workers.
	Rate        float64
	Concurrency int
	// Duration bounds each run in simulated time; Ops by operation
	// count. Defaults: 2 simulated minutes, unbounded ops.
	Duration time.Duration
	Ops      int
	// Peers overrides the deployment size (default 200 quick / 2000
	// full).
	Peers int
	// Keys overrides the keyspace size (default 50).
	Keys int
}

// WorkloadPoint is one pattern's outcome in machine-readable form;
// cmd/dcdht-bench serializes the set as BENCH_workload.json.
type WorkloadPoint struct {
	Peers int `json:"peers"`
	workload.Report
}

// workloadPatterns resolves the pattern selection.
func (wo WorkloadOptions) patterns() ([]workload.Pattern, error) {
	if wo.Pattern == "" || wo.Pattern == "all" {
		return workload.Patterns(), nil
	}
	p, err := workload.ParsePattern(wo.Pattern)
	if err != nil {
		return nil, err
	}
	return []workload.Pattern{p}, nil
}

// spec translates the options into a workload spec for one pattern.
func (wo WorkloadOptions) spec(p workload.Pattern, seed int64) workload.Spec {
	spec := workload.Spec{
		Pattern:     p,
		Seed:        seed,
		ReadRatio:   wo.ReadRatio,
		ZipfS:       wo.ZipfS,
		Rate:        wo.Rate,
		Concurrency: wo.Concurrency,
		Duration:    wo.Duration,
		Ops:         wo.Ops,
		Keys:        wo.Keys,
	}
	if spec.Duration <= 0 && spec.Ops <= 0 {
		spec.Duration = 2 * time.Minute
	}
	return spec
}

// WorkloadComparison runs the selected patterns, each against a fresh
// deployment built from the same seed, and returns one point per
// pattern.
func WorkloadComparison(o Options, wo WorkloadOptions) ([]WorkloadPoint, error) {
	patterns, err := wo.patterns()
	if err != nil {
		return nil, err
	}
	peers := wo.Peers
	if peers <= 0 {
		peers = 200
		if o.Full {
			peers = 2000
		}
	}
	points := make([]WorkloadPoint, 0, len(patterns))
	for _, p := range patterns {
		sc := Table1Scenario(AlgUMSDirect, peers, o.seed())
		d := NewDeployment(DeployConfig{
			Peers:    peers,
			Replicas: sc.Replicas,
			Seed:     o.seed(),
			Net:      sc.Net,
			Chord:    sc.Chord,
		})
		d.RunFor(sc.Warmup) // let ring maintenance settle before loading
		rep, err := d.RunWorkload(context.Background(), wo.spec(p, o.seed()))
		d.K.Stop()
		if err != nil {
			return nil, err
		}
		points = append(points, WorkloadPoint{Peers: peers, Report: *rep})
		o.progress("workload-%-16s ops=%5d %6.2f ops/s  read p50=%7.0fms p99=%7.0fms  write p99=%7.0fms stale=%d err=%d",
			p, rep.Ops, rep.OpsPerSec, rep.Reads.P50Ms, rep.Reads.P99Ms,
			rep.Writes.P99Ms, rep.Reads.Stale, rep.Reads.Errors+rep.Writes.Errors)
	}
	return points, nil
}

// FigureWorkload tabulates the comparison: throughput and latency
// quantiles per op type for each pattern.
func FigureWorkload(o Options, wo WorkloadOptions) (*Table, []WorkloadPoint, error) {
	points, err := WorkloadComparison(o, wo)
	if err != nil {
		return nil, nil, err
	}
	t := NewTable("Workload: throughput and latency quantiles by access pattern (UMS-Direct)",
		"workload", "latency (ms) / throughput",
		[]string{"ops/s", "read p50", "read p95", "read p99", "write p99", "stale", "errors"})
	for _, p := range points {
		t.Set(p.Workload, "ops/s", p.OpsPerSec)
		t.Set(p.Workload, "read p50", p.Reads.P50Ms)
		t.Set(p.Workload, "read p95", p.Reads.P95Ms)
		t.Set(p.Workload, "read p99", p.Reads.P99Ms)
		t.Set(p.Workload, "write p99", p.Writes.P99Ms)
		t.Set(p.Workload, "stale", float64(p.Reads.Stale))
		t.Set(p.Workload, "errors", float64(p.Reads.Errors+p.Writes.Errors))
	}
	if len(points) > 0 {
		driver := "closed loop"
		if points[0].TargetRate > 0 {
			driver = "open loop"
		}
		t.Notes = append(t.Notes,
			"latencies are simulated milliseconds under the Table 1 WAN model, quantiles from log-bucketed histograms;",
			driver+" driver; the same spec and seed replay bit-identically (workload determinism tests)")
	}
	return t, points, nil
}
