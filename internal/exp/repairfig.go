package exp

import (
	"time"

	"repro/internal/repair"
)

// The replica-maintenance comparison: the same churny UMS-Direct workload
// run with maintenance off, with the anti-entropy sweep alone, and with
// sweep plus read-repair. It extends the paper's Figure 11 axis — where
// currency degrades with the failure rate because nothing refreshes
// replicas between updates — by measuring how much of that degradation
// the maintenance subsystem wins back, and what it costs in messages.

// RepairModes names the three compared configurations, in plotting order.
var RepairModes = []string{"off", "sweep", "sweep+read-repair"}

// repairConfigFor maps a mode name to the subsystem configuration used
// by the comparison. The sweep period is chosen against the compressed
// quick-mode clock so several rounds fit between churn events.
func repairConfigFor(mode string) repair.Config {
	switch mode {
	case "sweep":
		return repair.Config{Every: 2 * time.Minute, PerRound: 8}
	case "sweep+read-repair":
		return repair.Config{Every: 2 * time.Minute, PerRound: 8, ReadRepair: true}
	default:
		return repair.Config{}
	}
}

// RepairPoint is one mode's outcome in machine-readable form;
// cmd/dcdht-bench serializes the set as BENCH_repair.json so the
// currency/cost trajectory is tracked across commits.
type RepairPoint struct {
	Mode              string  `json:"mode"`
	Peers             int     `json:"peers"`
	FailRate          float64 `json:"fail_rate"`
	QueriesRun        int     `json:"queries_run"`
	CurrentRate       float64 `json:"current_rate"`
	ProbesPerRetrieve float64 `json:"probes_per_retrieve"` // observed E(X)
	RespTimeSec       float64 `json:"resp_time_sec"`
	MsgsPerRetrieve   float64 `json:"msgs_per_retrieve"`
	StaleReturns      int     `json:"stale_returns"`
	FailedQueries     int     `json:"failed_queries"`
	ReplicasHealed    uint64  `json:"replicas_healed"`
	ReadRepairs       uint64  `json:"read_repairs"`
	MaintenanceMsgs   uint64  `json:"maintenance_msgs"`
	MaintenanceBytes  uint64  `json:"maintenance_bytes"`
}

// RepairComparison runs the three modes on the same seed and workload.
// The failure share is raised above Table 1's 5% so replica loss — the
// condition maintenance exists for — actually occurs within the window.
func RepairComparison(o Options) []RepairPoint {
	points := make([]RepairPoint, 0, len(RepairModes))
	for _, mode := range RepairModes {
		sc := ablationScenario(o, AlgUMSDirect)
		sc.Name = "repair-" + mode
		sc.FailRate = 0.3
		sc.Repair = repairConfigFor(mode)
		r := Run(sc)
		points = append(points, RepairPoint{
			Mode:              mode,
			Peers:             sc.Peers,
			FailRate:          sc.FailRate,
			QueriesRun:        r.QueriesRun,
			CurrentRate:       r.CurrentRate,
			ProbesPerRetrieve: r.Probed.Mean(),
			RespTimeSec:       r.RespTime.Mean(),
			MsgsPerRetrieve:   r.Msgs.Mean(),
			StaleReturns:      r.StaleReturns,
			FailedQueries:     r.QueriesFailed,
			ReplicasHealed:    r.Repair.Healed,
			ReadRepairs:       r.Repair.ReadRepairs,
			MaintenanceMsgs:   r.Repair.Msgs,
			MaintenanceBytes:  r.Repair.Bytes,
		})
		o.progress("%-24s current=%.0f%% probes=%4.2f resp=%6.2fs healed=%d readrep=%d",
			sc.Name, 100*r.CurrentRate, r.Probed.Mean(), r.RespTime.Mean(),
			r.Repair.Healed, r.Repair.ReadRepairs)
	}
	return points
}

// FigureRepair tabulates the comparison: probability of currency, E(X)
// (replicas probed), stale fallbacks and the maintenance work performed,
// per mode.
func FigureRepair(o Options) (*Table, []RepairPoint) {
	points := RepairComparison(o)
	t := NewTable("Repair: currency and E(X) under sustained churn (UMS-Direct, 30% failures)",
		"repair", "effect",
		[]string{"current %", "E(X) probes", "stale returns", "healed", "maint msgs"})
	for _, p := range points {
		t.Set(p.Mode, "current %", 100*p.CurrentRate)
		t.Set(p.Mode, "E(X) probes", p.ProbesPerRetrieve)
		t.Set(p.Mode, "stale returns", float64(p.StaleReturns))
		t.Set(p.Mode, "healed", float64(p.ReplicasHealed))
		t.Set(p.Mode, "maint msgs", float64(p.MaintenanceMsgs))
	}
	t.Notes = append(t.Notes,
		"off reproduces the paper's decay: crashed peers' replicas stay lost until the next update;",
		"the sweep re-pushes current values to the live replica set (PutIfNewer, monotone);",
		"read-repair additionally refreshes stale/missing replicas observed by each retrieve")
	return t, points
}
