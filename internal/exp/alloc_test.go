package exp

import (
	"context"
	"testing"

	"repro/internal/core"
	"repro/internal/dht"
)

// TestEventualGetAllocsPinned is an allocation regression gate on the
// cheapest read path: an Eventual-level retrieve through a warm
// deployment, including the d.Do driver overhead, currently costs
// ~40 heap objects. The pin has 2x headroom — it exists to catch a
// hot-path rewrite that starts boxing per-op state, not to fight
// single-object noise.
func TestEventualGetAllocsPinned(t *testing.T) {
	sc := Table1Scenario(AlgUMSDirect, 24, 7)
	d := NewDeployment(DeployConfig{
		Peers:    24,
		Replicas: sc.Replicas,
		Seed:     7,
		Net:      sc.Net,
		Chord:    sc.Chord,
	})
	defer d.K.Stop()
	d.RunFor(sc.Warmup)
	p := d.Peers[0]
	key := core.Key("alloc-k")
	if !d.Do(func() {
		if _, err := p.UMS.Insert(context.Background(), key, []byte("v")); err != nil {
			t.Errorf("insert: %v", err)
		}
	}) {
		t.Fatal("insert stalled")
	}
	pol := dht.ReadPolicy{Level: dht.LevelEventual}
	// Warm pools, caches and the kernel free list before pinning.
	for i := 0; i < 5; i++ {
		d.Do(func() { p.UMS.RetrieveWith(context.Background(), key, pol) })
	}
	allocs := testing.AllocsPerRun(50, func() {
		if !d.Do(func() {
			if _, err := p.UMS.RetrieveWith(context.Background(), key, pol); err != nil {
				t.Errorf("get: %v", err)
			}
		}) {
			t.Error("get stalled")
		}
	})
	if allocs > 80 {
		t.Errorf("eventual get allocates %.1f objects/op, pinned at 80", allocs)
	}
}
