package exp

import (
	"fmt"
	"time"

	"repro/internal/repair"
	"repro/internal/scenario"
)

// The scenario figure: the same UMS-Direct workload driven through the
// scripted fault scenarios of internal/scenario — correlated churn
// waves, a 60/40 partition with heal, a degraded lossy WAN, a mass
// crash — each with the replica-maintenance subsystem off and on. Where
// the paper's figures vary one scalar knob (uniform churn, failure
// rate), this figure varies the *shape* of adversity and measures what
// it costs in currency, E(X) probes and response time, and how much of
// it maintenance wins back.

// ScenarioRepairModes are the repair configurations each scenario runs
// under, in plotting order.
var ScenarioRepairModes = []string{"off", "on"}

// scenarioRepairConfigFor maps a mode to the subsystem configuration
// (the "on" setting matches the repair figure's sweep+read-repair).
func scenarioRepairConfigFor(mode string) repair.Config {
	if mode == "on" {
		return repairConfigFor("sweep+read-repair")
	}
	return repair.Config{}
}

// ScenarioOptions parameterises the scenario comparison beyond the
// shared exp.Options. The zero value runs every builtin scenario at the
// quick-mode scale.
type ScenarioOptions struct {
	// Names restricts the comparison; empty or ["all"] runs every
	// builtin script.
	Names []string
	// Peers overrides the deployment size (default: quick 400, full
	// basePeers).
	Peers int
	// Duration overrides the measured window per run.
	Duration time.Duration
	// Queries overrides the retrieves measured per run.
	Queries int
}

func (so ScenarioOptions) names() ([]string, error) {
	if len(so.Names) == 0 || (len(so.Names) == 1 && so.Names[0] == "all") {
		return scenario.BuiltinNames(), nil
	}
	for _, n := range so.Names {
		if _, err := scenario.Builtin(n, time.Hour); err != nil {
			return nil, err
		}
	}
	return so.Names, nil
}

// ScenarioPoint is one (scenario, repair mode) outcome in
// machine-readable form; cmd/dcdht-bench serializes the set as
// BENCH_scenario.json (schema in docs/BENCHMARKS.md).
type ScenarioPoint struct {
	Scenario          string  `json:"scenario"`
	Repair            string  `json:"repair"` // off | on (sweep+read-repair)
	Peers             int     `json:"peers"`
	Seed              int64   `json:"seed"`
	DurationSec       float64 `json:"duration_sec"`
	EventsApplied     int     `json:"events_applied"`
	QueriesRun        int     `json:"queries_run"`
	CurrentRate       float64 `json:"current_rate"`
	ProbesPerRetrieve float64 `json:"probes_per_retrieve"` // observed E(X)
	RespTimeSec       float64 `json:"resp_time_sec"`
	MsgsPerRetrieve   float64 `json:"msgs_per_retrieve"`
	StaleReturns      int     `json:"stale_returns"`
	FailedQueries     int     `json:"failed_queries"`
	ChurnEvents       int     `json:"churn_events"`
	ReplicasHealed    uint64  `json:"replicas_healed"`
	ReadRepairs       uint64  `json:"read_repairs"`
	MaintenanceMsgs   uint64  `json:"maintenance_msgs"`
}

// scenarioBase is the shared configuration every (scenario, mode) run
// starts from: UMS-Direct with the paper's background churn kept on, so
// the scripted events land on top of realistic steady-state dynamics.
func scenarioBase(o Options, so ScenarioOptions) Scenario {
	peers := so.Peers
	if peers <= 0 {
		peers = 400
		if o.Full {
			peers = o.basePeers()
		}
	}
	sc := Table1Scenario(AlgUMSDirect, peers, o.seed())
	sc.Duration = o.duration()
	if so.Duration > 0 {
		sc.Duration = so.Duration
	}
	sc.ChurnRate = o.churnFor(peers)
	sc.UpdateRate *= o.compress()
	if so.Queries > 0 {
		sc.Queries = so.Queries
	} else {
		sc.Queries = 60 // double the paper's 30: scenarios bend the tail
	}
	return sc
}

// ScenarioComparison runs each selected scenario with maintenance off
// and on, on the same seed, and returns one point per (scenario, mode).
func ScenarioComparison(o Options, so ScenarioOptions) ([]ScenarioPoint, error) {
	names, err := so.names()
	if err != nil {
		return nil, err
	}
	points := make([]ScenarioPoint, 0, len(names)*len(ScenarioRepairModes))
	for _, name := range names {
		for _, mode := range ScenarioRepairModes {
			sc := scenarioBase(o, so)
			sc.Name = fmt.Sprintf("scenario-%s/repair-%s", name, mode)
			sc.Repair = scenarioRepairConfigFor(mode)
			script, err := scenario.Builtin(name, sc.Duration)
			if err != nil {
				return nil, err
			}
			sc.Script = &script
			r := Run(sc)
			applied := 0
			if r.Trace != nil {
				applied = len(r.Trace.Applied)
			}
			points = append(points, ScenarioPoint{
				Scenario:          name,
				Repair:            mode,
				Peers:             sc.Peers,
				Seed:              sc.Seed,
				DurationSec:       sc.Duration.Seconds(),
				EventsApplied:     applied,
				QueriesRun:        r.QueriesRun,
				CurrentRate:       r.CurrentRate,
				ProbesPerRetrieve: r.Probed.Mean(),
				RespTimeSec:       r.RespTime.Mean(),
				MsgsPerRetrieve:   r.Msgs.Mean(),
				StaleReturns:      r.StaleReturns,
				FailedQueries:     r.QueriesFailed,
				ChurnEvents:       r.ChurnEvents,
				ReplicasHealed:    r.Repair.Healed,
				ReadRepairs:       r.Repair.ReadRepairs,
				MaintenanceMsgs:   r.Repair.Msgs,
			})
			o.progress("%-32s events=%2d current=%3.0f%% probes=%4.2f resp=%6.2fs stale=%d failed=%d healed=%d",
				sc.Name, applied, 100*r.CurrentRate, r.Probed.Mean(),
				r.RespTime.Mean(), r.StaleReturns, r.QueriesFailed, r.Repair.Healed)
		}
	}
	return points, nil
}

// FigureScenario tabulates the comparison: currency, E(X), response
// time and failure counts per (scenario, repair mode).
func FigureScenario(o Options, so ScenarioOptions) (*Table, []ScenarioPoint, error) {
	points, err := ScenarioComparison(o, so)
	if err != nil {
		return nil, nil, err
	}
	t := NewTable("Scenarios: currency and cost under scripted faults (UMS-Direct, repair off vs on)",
		"scenario/repair", "effect",
		[]string{"current %", "E(X) probes", "resp (s)", "stale", "failed", "events", "healed"})
	for _, p := range points {
		row := p.Scenario + "/" + p.Repair
		t.Set(row, "current %", 100*p.CurrentRate)
		t.Set(row, "E(X) probes", p.ProbesPerRetrieve)
		t.Set(row, "resp (s)", p.RespTimeSec)
		t.Set(row, "stale", float64(p.StaleReturns))
		t.Set(row, "failed", float64(p.FailedQueries))
		t.Set(row, "events", float64(p.EventsApplied))
		t.Set(row, "healed", float64(p.ReplicasHealed))
	}
	t.Notes = append(t.Notes,
		"scripted scenarios (internal/scenario) on top of the paper's background churn;",
		"calm is the control; split-heal exercises the partition/heal path incl. ring re-merge;",
		"repair on = anti-entropy sweep + read-repair, same knobs as the repair figure;",
		"repair trades failed queries for available (sometimes stale) returns: after the hts",
		"responsible crashes, indirect init leaves last_ts past every replica until the next",
		"insert, so healed replicas count as stale, not provably current (see README repair notes)")
	return t, points, nil
}
