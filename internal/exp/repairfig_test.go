package exp

import (
	"testing"
	"time"

	"repro/internal/repair"
)

// TestRepairScenarioSmoke runs one tiny churny scenario with the full
// maintenance subsystem on, keeping the bench-scale RepairComparison
// honest (it shares this code path).
func TestRepairScenarioSmoke(t *testing.T) {
	sc := Table1Scenario(AlgUMSDirect, 40, 5)
	sc.Name = "repair-smoke"
	sc.Duration = 8 * time.Minute
	sc.Warmup = 30 * time.Second
	sc.Keys = 4
	sc.Queries = 8
	sc.ChurnRate = 0.05
	sc.FailRate = 0.5
	sc.UpdateRate = 6
	sc.Repair = repair.Config{Every: 30 * time.Second, PerRound: 4, ReadRepair: true}

	r := Run(sc)
	if r.QueriesRun == 0 {
		t.Fatal("repair scenario ran no queries")
	}
	if r.Repair.Rounds == 0 {
		t.Fatalf("maintenance never swept: %+v", r.Repair)
	}
	if r.Repair.Msgs == 0 {
		t.Fatalf("maintenance sent no traffic: %+v", r.Repair)
	}

	// The subsystem must stay inert when unconfigured.
	sc.Repair = repair.Config{}
	sc.Queries = 4
	if r := Run(sc); r.Repair != (repair.Stats{}) {
		t.Fatalf("repair off but stats non-zero: %+v", r.Repair)
	}
}
