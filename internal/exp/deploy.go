// Package exp is the evaluation harness: it builds simulated deployments
// (Chord + KTS + UMS + BRK per peer), drives the paper's Table 1
// workload — Poisson churn with join-per-departure, Poisson per-key
// updates, queries at uniformly random times — and regenerates every
// figure of §5 as a table of series.
package exp

import (
	"context"
	"fmt"
	"time"

	"repro/internal/brk"
	"repro/internal/can"
	"repro/internal/chord"
	"repro/internal/core"
	"repro/internal/dht"
	"repro/internal/hashing"
	"repro/internal/kts"
	"repro/internal/network/simwire"
	"repro/internal/obs"
	"repro/internal/onehop"
	"repro/internal/repair"
	"repro/internal/simnet"
	"repro/internal/store"
	"repro/internal/ums"
	"repro/internal/workload"
)

// Algorithm names one of the three compared protocols.
type Algorithm string

// The paper's three contenders (§5.1).
const (
	AlgBRK         Algorithm = "BRK"
	AlgUMSIndirect Algorithm = "UMS-Indirect"
	AlgUMSDirect   Algorithm = "UMS-Direct"
)

// Algorithms lists the contenders in the paper's plotting order.
var Algorithms = []Algorithm{AlgBRK, AlgUMSIndirect, AlgUMSDirect}

// RingKind selects the overlay substrate a deployment runs on.
type RingKind string

// The three substrates behind dht.RingNode.
const (
	RingChord  RingKind = "chord"
	RingCAN    RingKind = "can"
	RingOneHop RingKind = "onehop"
)

// Peer bundles one simulated peer's substrate and services.
type Peer struct {
	Name string
	EP   *simwire.Endpoint
	// Node is the substrate node (chord, can or onehop).
	Node dht.RingNode
	// Ring is the service-facing lookup surface: Node itself, or the
	// path cache wrapped around it when the deployment enables one.
	Ring   dht.Ring
	Cache  *dht.CachedRing  // nil unless Cfg.PathCache > 0
	Repub  *dht.Republisher // nil unless Cfg.RepublishEvery > 0
	KTS    *kts.Service
	UMS    *ums.Service
	BRK    *brk.Service
	Repair *repair.Service // nil when the maintenance subsystem is off
}

// Alive reports whether the peer is still part of the overlay.
func (p *Peer) Alive() bool { return p.Node.Alive() }

// DeployConfig parameterises a simulated deployment.
type DeployConfig struct {
	Peers    int
	Replicas int // |Hr|
	Seed     int64
	Net      simwire.Config
	// Ring picks the substrate; zero value means RingChord, keeping
	// every pre-existing call site unchanged.
	Ring   RingKind
	Chord  chord.Config
	CAN    can.Config    // used when Ring == RingCAN
	OneHop onehop.Config // used when Ring == RingOneHop
	// PathCache wraps each peer's service-facing ring in a lookup path
	// cache with this many arcs (0 = off).
	PathCache int
	// RepublishEvery runs each peer's periodic republisher at this
	// period (0 = off); RepublishPerRound bounds one round's pushes.
	RepublishEvery    time.Duration
	RepublishPerRound int
	KTSMode           kts.InitMode
	// GraceDelay for the indirect algorithm; zero uses the KTS default.
	GraceDelay time.Duration
	// InspectEvery enables KTS periodic inspection.
	InspectEvery time.Duration
	// KTSTimeout bounds gen_ts/last_ts round trips. A timestamp request
	// can legitimately take many ring RPCs of server-side work (indirect
	// initialization), so it needs far more patience than one protocol
	// probe; zero derives 15x the Chord RPC timeout.
	KTSTimeout time.Duration
	// RLU enables the Responsibility-Loss-Unaware KTS fallback of §4.3
	// (drop the counter after every generated timestamp) — an ablation.
	RLU bool
	// PaperDataModel disables replica handoff on responsibility changes,
	// matching the paper's DHT model (§2): a replica whose responsible
	// departs is unavailable until the next update re-inserts it. This
	// is what makes the probability of currency and availability decay
	// between updates — the dynamic behind Figures 7–12. KTS counters
	// still move (the direct algorithm is about counters, §4.2.1).
	PaperDataModel bool
	// Repair configures the replica-maintenance subsystem (anti-entropy
	// sweep + read-repair). The zero value keeps it off, preserving the
	// paper's dynamics; the repair figures and scenarios switch it on.
	Repair repair.Config
	// Durable backs every peer with a retained depot slot keyed by peer
	// name — the simulation analogue of a real node's -data-dir, kept
	// deterministically in memory so replays stay bit-identical. A crash
	// keeps the slot, and RestartWithState resumes from it: recovered
	// replicas and counters feed the §4.2.2 restart path. Without it a
	// restarted peer comes back blank (crash-and-forget).
	Durable bool
	// NoObs disables the deployment-wide metrics registry. The default
	// (instrumented) is deterministic — metrics consume no RNG stream and
	// time only virtual clocks — so this switch exists for the test that
	// proves exactly that by comparing instrumented and uninstrumented
	// replays, not as a performance knob.
	NoObs bool
}

func (c DeployConfig) ktsTimeout() time.Duration {
	if c.KTSTimeout != 0 {
		return c.KTSTimeout
	}
	if c.Chord.RPCTimeout != 0 {
		return 15 * c.Chord.RPCTimeout
	}
	return 30 * time.Second
}

// Deployment is a running simulated network of peers.
type Deployment struct {
	Cfg   DeployConfig
	K     *simnet.Kernel
	Net   *simwire.Network
	Set   hashing.Set
	Peers []*Peer      // all peers ever created; filter with Alive
	Depot *store.Depot // nil unless Cfg.Durable
	// Obs is the deployment-wide metrics registry: every peer registers
	// the same families, so counters aggregate cluster-wide at scrape
	// time. Nil when Cfg.NoObs.
	Obs *obs.Registry

	tracer   obs.Tracer // shared MetricsTracer; nil when Cfg.NoObs
	nextName int
}

// NewDeployment builds cfg.Peers peers, assembles the ring
// administratively and starts maintenance. The churn process later
// exercises the protocol join/leave/fail paths.
func NewDeployment(cfg DeployConfig) *Deployment {
	k := simnet.New(cfg.Seed)
	cfg.Chord.NoDataHandoff = cfg.PaperDataModel
	cfg.CAN.NoDataHandoff = cfg.PaperDataModel
	cfg.OneHop.NoDataHandoff = cfg.PaperDataModel
	if cfg.Ring == "" {
		cfg.Ring = RingChord
	}
	d := &Deployment{
		Cfg: cfg,
		K:   k,
		Net: simwire.New(k, cfg.Net),
		Set: hashing.NewSet(cfg.Replicas),
	}
	if cfg.Durable {
		d.Depot = store.NewDepot()
	}
	if !cfg.NoObs {
		d.Obs = obs.NewRegistry()
		d.tracer = obs.NewMetricsTracer(d.Obs)
	}
	nodes := make([]dht.RingNode, 0, cfg.Peers)
	for i := 0; i < cfg.Peers; i++ {
		p := d.newPeer()
		d.Peers = append(d.Peers, p)
		nodes = append(nodes, p.Node)
	}
	assembleRing(cfg.Ring, nodes)
	for _, p := range d.Peers {
		p.Node.Start()
		if p.Repub != nil {
			p.Repub.Start()
		}
	}
	return d
}

// assembleRing wires the freshly created nodes administratively, per
// substrate.
func assembleRing(kind RingKind, nodes []dht.RingNode) {
	switch kind {
	case RingCAN:
		concrete := make([]*can.Node, len(nodes))
		for i, n := range nodes {
			concrete[i] = n.(*can.Node)
		}
		can.AssembleSpace(concrete)
	case RingOneHop:
		concrete := make([]*onehop.Node, len(nodes))
		for i, n := range nodes {
			concrete[i] = n.(*onehop.Node)
		}
		onehop.AssembleRing(concrete)
	default:
		concrete := make([]*chord.Node, len(nodes))
		for i, n := range nodes {
			concrete[i] = n.(*chord.Node)
		}
		chord.AssembleRing(concrete)
	}
}

// newPeer creates a peer under the next fresh name (not joined).
func (d *Deployment) newPeer() *Peer {
	name := fmt.Sprintf("peer%d", d.nextName)
	d.nextName++
	return d.newPeerNamed(name)
}

// newPeerNamed creates a peer with all services attached (not joined).
// Under Durable the peer's storage is its depot slot — re-using a dead
// peer's name resumes that peer's retained state.
func (d *Deployment) newPeerNamed(name string) *Peer {
	ep := d.Net.NewEndpoint(name)
	var backing store.Store
	if d.Depot != nil {
		backing = d.Depot.Open(name)
	}
	var node dht.RingNode
	switch d.Cfg.Ring {
	case RingCAN:
		canCfg := d.Cfg.CAN
		canCfg.Obs = d.Obs
		canCfg.Store = backing
		node = can.New(d.Net.Env(), ep, hashing.NodeID(name), canCfg)
	case RingOneHop:
		hopCfg := d.Cfg.OneHop
		hopCfg.Obs = d.Obs
		hopCfg.Store = backing
		node = onehop.New(d.Net.Env(), ep, hashing.NodeID(name), hopCfg)
	default:
		chordCfg := d.Cfg.Chord
		chordCfg.Obs = d.Obs
		chordCfg.Store = backing
		node = chord.New(d.Net.Env(), ep, hashing.NodeID(name), chordCfg)
	}
	// The service-facing lookup surface: the node itself, or the path
	// cache wrapped around it. Services route reads and writes through
	// it; the substrate's own protocol traffic stays on the inner ring.
	var ring dht.Ring = node
	var cache *dht.CachedRing
	if d.Cfg.PathCache > 0 {
		cache = dht.NewCachedRing(node, dht.PathCacheConfig{
			Capacity: d.Cfg.PathCache,
			Obs:      d.Obs,
		})
		ring = cache
	}
	ktsCfg := kts.Config{
		Mode:         d.Cfg.KTSMode,
		GraceDelay:   d.Cfg.GraceDelay,
		InspectEvery: d.Cfg.InspectEvery,
		RPCTimeout:   d.Cfg.ktsTimeout(),
		RLU:          d.Cfg.RLU,
		Obs:          d.Obs,
		Persist:      backing,
	}
	ktsSvc := kts.New(ring, d.Set, ums.Namespace, ktsCfg)
	if backing != nil {
		// Seed the counter service with what the slot retained, so a
		// restarted responsible continues above every pre-crash grant.
		for _, c := range backing.Counters() {
			ktsSvc.SeedCounters([]kts.CounterEntry{{Key: c.Key, TS: c.TS}})
		}
	}
	p := &Peer{
		Name:  name,
		EP:    ep,
		Node:  node,
		Ring:  ring,
		Cache: cache,
		KTS:   ktsSvc,
		UMS:   ums.New(ring, d.Set, ktsSvc),
		BRK:   brk.New(ring, d.Set),
	}
	if d.tracer != nil {
		p.UMS.SetTracer(d.tracer)
		p.BRK.SetTracer(d.tracer)
	}
	if d.Cfg.Repair.Enabled() {
		rcfg := d.Cfg.Repair
		rcfg.Obs = d.Obs
		p.Repair = repair.New(ring, d.Set, ktsSvc, node.Store(), ums.Namespace, rcfg)
		p.UMS.SetReadRepair(p.Repair)
		p.Repair.Start()
	}
	if d.Cfg.RepublishEvery > 0 {
		p.Repub = dht.NewRepublisher(ring, node.Store(), dht.RepublishConfig{
			Every:    d.Cfg.RepublishEvery,
			PerRound: d.Cfg.RepublishPerRound,
			Obs:      d.Obs,
		})
	}
	return p
}

// RandomLivePeer picks a live peer uniformly using the given stream.
func (d *Deployment) RandomLivePeer(rng interface{ Intn(int) int }) *Peer {
	live := d.LivePeers()
	if len(live) == 0 {
		return nil
	}
	return live[rng.Intn(len(live))]
}

// LivePeers returns the currently live peers.
func (d *Deployment) LivePeers() []*Peer {
	out := make([]*Peer, 0, len(d.Peers))
	for _, p := range d.Peers {
		if p.Alive() {
			out = append(out, p)
		}
	}
	return out
}

// Depart removes a peer: gracefully (Leave, with key and counter
// handoff) or by failure (Crash, state lost). Must run inside a kernel
// process.
func (d *Deployment) Depart(p *Peer, fail bool) {
	if fail {
		p.Node.Crash()
		d.Net.Kill(p.EP.Addr())
		return
	}
	p.Node.Leave()
	d.Net.Kill(p.EP.Addr())
}

// SpawnJoin creates a fresh peer and joins it through a live bootstrap,
// keeping the population constant after departures (as in the paper's
// churn model). Under heavy churn a join can catch a dying bootstrap, so
// a couple of fresh bootstraps are tried before giving up. A peer that
// joins during an active network partition is confined to its
// bootstrap's side — churn replacements must not bridge a split. Must
// run inside a kernel process. Returns nil if every attempt fails.
func (d *Deployment) SpawnJoin(rng interface{ Intn(int) int }) *Peer {
	for attempt := 0; attempt < 3; attempt++ {
		boot := d.RandomLivePeer(rng)
		if boot == nil {
			return nil
		}
		p := d.newPeer()
		// Assign the partition side before the join traffic flows, so
		// even the join RPCs cannot cross the split.
		d.Net.JoinGroupOf(p.EP.Addr(), boot.EP.Addr())
		if err := p.Node.Join(boot.Node.Self().Addr); err != nil {
			p.Node.Crash()
			d.Net.Kill(p.EP.Addr())
			continue
		}
		p.Node.Start()
		if p.Repub != nil {
			p.Repub.Start()
		}
		d.Peers = append(d.Peers, p)
		return p
	}
	return nil
}

// RestartablePeers lists the names of peers that are down but could be
// restarted (dead, and not already superseded by a newer incarnation of
// the same name).
func (d *Deployment) RestartablePeers() []string {
	latest := make(map[string]*Peer, len(d.Peers))
	var order []string
	for _, p := range d.Peers {
		if _, seen := latest[p.Name]; !seen {
			order = append(order, p.Name)
		}
		latest[p.Name] = p
	}
	var out []string
	for _, name := range order {
		if !latest[name].Alive() {
			out = append(out, name)
		}
	}
	return out
}

// RestartWithState restarts a dead peer under its original name: the
// old endpoint is detached, a new incarnation attaches at the same
// address (hence the same ring position), joins through a live
// bootstrap and — under Durable — resumes from the retained depot slot,
// then runs the §4.2.2 recovery strategy so counters that moved on get
// corrected. Without Durable the peer comes back blank: restart-as-new,
// the crash-and-forget baseline. Must run inside a kernel process.
// Returns nil when the peer is unknown, still alive, or no bootstrap is
// reachable.
func (d *Deployment) RestartWithState(name string, rng interface{ Intn(int) int }) *Peer {
	var old *Peer
	for _, p := range d.Peers {
		if p.Name == name {
			old = p
		}
	}
	if old == nil || old.Alive() {
		return nil
	}
	d.Net.Remove(old.EP.Addr())
	// Like SpawnJoin, a join can route through a peer that is itself
	// still down (stale fingers survive a while), so a few bootstraps
	// are tried; a failed incarnation is torn down to free the name.
	var p *Peer
	for attempt := 0; attempt < 3; attempt++ {
		boot := d.RandomLivePeer(rng)
		if boot == nil {
			return nil
		}
		cand := d.newPeerNamed(name)
		d.Net.JoinGroupOf(cand.EP.Addr(), boot.EP.Addr())
		if err := cand.Node.Join(boot.Node.Self().Addr); err != nil {
			cand.Node.Crash()
			d.Net.Kill(cand.EP.Addr())
			d.Net.Remove(cand.EP.Addr())
			continue
		}
		p = cand
		break
	}
	if p == nil {
		return nil
	}
	p.Node.Start()
	if p.Repub != nil {
		p.Repub.Start()
	}
	d.Peers = append(d.Peers, p)
	if d.Depot != nil {
		// Recovery strategy: ship the recovered counters to whoever is
		// responsible now. Bounded so a half-partitioned ring cannot
		// wedge the restart.
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		p.KTS.RecoverTo(ctx)
		cancel()
	}
	return p
}

// RepairStats aggregates the maintenance counters over every peer ever
// created — departed peers' heals still happened and still count.
func (d *Deployment) RepairStats() repair.Stats {
	var total repair.Stats
	for _, p := range d.Peers {
		if p.Repair != nil {
			total.Add(p.Repair.Stats())
		}
	}
	return total
}

// workloadClient adapts the deployment to the workload engine's Client:
// each operation is issued through UMS from a live peer drawn off a
// dedicated deterministic stream, mirroring how the paper's harness
// issues queries from random peers.
type workloadClient struct {
	d   *Deployment
	rng interface{ Intn(int) int }
}

func (c workloadClient) Put(ctx context.Context, key core.Key, data []byte) (dht.OpResult, error) {
	p := c.d.RandomLivePeer(c.rng)
	if p == nil {
		return dht.OpResult{}, fmt.Errorf("exp: no live peer: %w", core.ErrUnreachable)
	}
	return p.UMS.Insert(ctx, key, data)
}

func (c workloadClient) Get(ctx context.Context, key core.Key) (dht.OpResult, error) {
	p := c.d.RandomLivePeer(c.rng)
	if p == nil {
		return dht.OpResult{}, fmt.Errorf("exp: no live peer: %w", core.ErrUnreachable)
	}
	return p.UMS.Retrieve(ctx, key)
}

// GetWith implements workload.LevelClient: a read at an explicit
// consistency level, so workload specs with a consistency mix exercise
// the UMS acceptance predicate end to end.
func (c workloadClient) GetWith(ctx context.Context, key core.Key, pol dht.ReadPolicy) (dht.OpResult, error) {
	p := c.d.RandomLivePeer(c.rng)
	if p == nil {
		return dht.OpResult{}, fmt.Errorf("exp: no live peer: %w", core.ErrUnreachable)
	}
	return p.UMS.RetrieveWith(ctx, key, pol)
}

// RunWorkload drives a workload spec against the deployment as a
// simulation process: the generator's operation stream, the issuing
// peers and every latency sample all run in virtual time, so the same
// seed replays the identical report bit for bit. Unlike Do, the kernel
// is driven until the run finishes however long the spec's window is;
// a run only aborts if the simulation goes completely silent (no
// events at all for a sustained stretch of virtual time — with ring
// maintenance timers alive that means a genuine stall).
func (d *Deployment) RunWorkload(ctx context.Context, spec workload.Spec) (*workload.Report, error) {
	return d.RunWorkloadWith(ctx, spec, workloadClient{d: d, rng: d.K.NewRand("workload-issuer")})
}

// RunWorkloadWith is RunWorkload against an arbitrary workload client —
// the gateway figure drives the same spec through a front-end tier and
// through direct peer issue, on deployments built from the same seed.
func (d *Deployment) RunWorkloadWith(ctx context.Context, spec workload.Spec, cl workload.Client) (*workload.Report, error) {
	var rep *workload.Report
	var err error
	done := false
	d.K.Go(func() {
		rep, err = workload.Run(ctx, d.Net.Env(), cl, spec)
		done = true
	})
	idle := 0
	for !done {
		if d.K.Run(d.K.Now()+time.Hour) == 0 {
			if idle++; idle > 100 {
				return nil, fmt.Errorf("exp: workload stalled: %w", core.ErrTimeout)
			}
		} else {
			idle = 0
		}
	}
	return rep, err
}

// Do runs fn as a simulation process and drives the kernel until it
// completes. Intended for setup and synchronous test operations.
func (d *Deployment) Do(fn func()) bool {
	done := false
	d.K.Go(func() {
		fn()
		done = true
	})
	for i := 0; i < 100000 && !done; i++ {
		d.K.Run(d.K.Now() + time.Second)
	}
	return done
}

// RunFor advances simulated time by dt.
func (d *Deployment) RunFor(dt time.Duration) {
	d.K.Run(d.K.Now() + dt)
}
