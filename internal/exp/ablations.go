package exp

import (
	"fmt"
	"time"
)

// Ablations beyond the paper's figures (DESIGN.md §6): each isolates one
// design decision DESIGN.md calls out and measures what it buys.

// ablationScenario is the shared baseline: UMS at the quick/full base
// population under the Table 1 workload (time-compressed in quick mode).
func ablationScenario(o Options, alg Algorithm) Scenario {
	sc := Table1Scenario(alg, o.basePeers(), o.seed())
	sc.Duration = o.duration()
	sc.ChurnRate = o.churnFor(sc.Peers)
	sc.UpdateRate *= o.compress()
	return sc
}

// AblationRLU compares RLA operation (counters survive until
// responsibility actually moves) against the §4.3 RLU fallback (drop the
// counter after every generated timestamp). RLU forces an indirect
// initialization per insert, which the response time of both inserts and
// retrieves pays for.
func AblationRLU(o Options) *Table {
	t := NewTable("Ablation (§4.3): RLA vs RLU counter management (UMS-Direct)",
		"mode", "per-retrieve cost", []string{"resp (s)", "msgs", "stale returns"})
	for _, rlu := range []bool{false, true} {
		sc := ablationScenario(o, AlgUMSDirect)
		sc.Name = fmt.Sprintf("ablation-rlu=%v", rlu)
		sc.RLU = rlu
		r := Run(sc)
		x := "RLA (normal)"
		if rlu {
			x = "RLU fallback"
		}
		t.Set(x, "resp (s)", r.RespTime.Mean())
		t.Set(x, "msgs", r.Msgs.Mean())
		t.Set(x, "stale returns", float64(r.StaleReturns))
		o.progress("%-24s resp=%6.2fs msgs=%5.1f stale=%d", sc.Name,
			r.RespTime.Mean(), r.Msgs.Mean(), r.StaleReturns)
	}
	t.Notes = append(t.Notes,
		"RLU is the fallback for DHTs that cannot detect responsibility loss (§4.3);",
		"Chord and CAN are RLA, so the fallback only costs — it never helps them")
	return t
}

// AblationGraceDelay sweeps the indirect algorithm's pre-read wait
// (§4.2.2's "waits a while"): too short risks missing in-flight commits,
// longer only adds latency to every counter re-initialization.
func AblationGraceDelay(o Options) *Table {
	t := NewTable("Ablation (§4.2.2): indirect-init grace delay (UMS-Indirect)",
		"grace", "per-retrieve cost", []string{"resp (s)", "stale returns", "failed"})
	for _, grace := range []time.Duration{0, 500 * time.Millisecond, 2 * time.Second, 8 * time.Second} {
		sc := ablationScenario(o, AlgUMSIndirect)
		sc.Name = fmt.Sprintf("ablation-grace=%s", grace)
		sc.Grace = grace
		if grace == 0 {
			sc.Grace = -1 // explicit "no wait" (0 selects the default)
		}
		r := Run(sc)
		t.Set(grace.String(), "resp (s)", r.RespTime.Mean())
		t.Set(grace.String(), "stale returns", float64(r.StaleReturns))
		t.Set(grace.String(), "failed", float64(r.QueriesFailed))
		o.progress("%-24s resp=%6.2fs stale=%d failed=%d", sc.Name,
			r.RespTime.Mean(), r.StaleReturns, r.QueriesFailed)
	}
	return t
}

// AblationSuccessorList sweeps Chord's successor-list length under an
// elevated failure rate: the list is the ring's failure budget, and
// retrieval reliability collapses when it is too short.
func AblationSuccessorList(o Options) *Table {
	t := NewTable("Ablation: Chord successor-list length under 50% failures (UMS-Direct)",
		"list len", "reliability", []string{"resp (s)", "failed queries", "stale returns"})
	for _, l := range []int{2, 4, 8, 16} {
		sc := ablationScenario(o, AlgUMSDirect)
		sc.Name = fmt.Sprintf("ablation-succs=%d", l)
		sc.FailRate = 0.5
		sc.Chord.SuccessorListLen = l
		r := Run(sc)
		x := fmt.Sprint(l)
		t.Set(x, "resp (s)", r.RespTime.Mean())
		t.Set(x, "failed queries", float64(r.QueriesFailed))
		t.Set(x, "stale returns", float64(r.StaleReturns))
		o.progress("%-24s resp=%6.2fs failed=%d stale=%d", sc.Name,
			r.RespTime.Mean(), r.QueriesFailed, r.StaleReturns)
	}
	return t
}

// AblationDataHandoff contrasts the paper's DHT model (replicas do NOT
// move with responsibility; availability decays between updates) with
// the engineering extension this library enables by default (graceful
// handoffs move replicas). It quantifies how much currency the handoff
// buys — and why the paper's probabilistic analysis assumes pt < 1.
func AblationDataHandoff(o Options) *Table {
	t := NewTable("Ablation: replica handoff on responsibility change (UMS-Direct)",
		"data model", "effect", []string{"resp (s)", "probes", "current %"})
	for _, handoff := range []bool{false, true} {
		sc := ablationScenario(o, AlgUMSDirect)
		sc.Name = fmt.Sprintf("ablation-handoff=%v", handoff)
		sc.DataHandoff = handoff
		r := Run(sc)
		x := "paper model (no handoff)"
		if handoff {
			x = "with handoff"
		}
		t.Set(x, "resp (s)", r.RespTime.Mean())
		t.Set(x, "probes", r.Probed.Mean())
		t.Set(x, "current %", 100*r.CurrentRate)
		o.progress("%-28s resp=%6.2fs probes=%4.2f current=%.0f%%", sc.Name,
			r.RespTime.Mean(), r.Probed.Mean(), 100*r.CurrentRate)
	}
	t.Notes = append(t.Notes,
		"the paper's model loses a replica whenever its responsible departs;",
		"handing replicas over on graceful leaves keeps pt near 1 between updates")
	return t
}
