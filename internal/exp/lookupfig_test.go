package exp

import (
	"encoding/json"
	"testing"
	"time"
)

// toyLookupOptions shrinks the lookup figure to test scale: one small
// deployment size, few samples, generous settle windows so every
// substrate reconverges after the churn window.
func toyLookupOptions() LookupOptions {
	return LookupOptions{
		Peers:       []int{24},
		Samples:     40,
		CacheSize:   64,
		Warmup:      2 * time.Minute,
		MaintWindow: time.Minute,
		ChurnEvents: 2,
	}
}

func pointFor(t *testing.T, res *LookupResult, arm string, peers int) LookupPoint {
	t.Helper()
	for _, pt := range res.Points {
		if pt.Arm == arm && pt.Peers == peers {
			return pt
		}
	}
	t.Fatalf("no point for arm %q peers %d", arm, peers)
	return LookupPoint{}
}

// TestLookupFigureOrderings checks the figure's claims at toy scale:
// lookups always land on the true owner, onehop stays at ~one hop and
// strictly below chord, and the path cache never costs more hops than
// the plain ring it wraps.
func TestLookupFigureOrderings(t *testing.T) {
	res, err := LookupComparison(Options{Seed: 7}, toyLookupOptions())
	if err != nil {
		t.Fatalf("lookup comparison: %v", err)
	}
	for _, pt := range res.Points {
		if pt.WrongOwner != 0 {
			t.Errorf("%s/n=%d: %d lookups missed the true owner", pt.Arm, pt.Peers, pt.WrongOwner)
		}
	}
	peers := res.Points[0].Peers
	chord := pointFor(t, res, LookupArmChord, peers)
	cache := pointFor(t, res, LookupArmCache, peers)
	onehop := pointFor(t, res, LookupArmOneHop, peers)
	if onehop.MeanHops > 1.1 {
		t.Errorf("onehop mean hops %.2f exceeds the 1.1 promise", onehop.MeanHops)
	}
	if onehop.MeanHops >= chord.MeanHops {
		t.Errorf("onehop mean hops %.2f not strictly below chord's %.2f", onehop.MeanHops, chord.MeanHops)
	}
	if cache.MeanHops > chord.MeanHops {
		t.Errorf("cache arm mean hops %.2f worse than plain chord's %.2f", cache.MeanHops, chord.MeanHops)
	}
	if cache.CacheHitRate == 0 {
		t.Error("cache arm reports a zero hit rate — the cache never engaged")
	}
}

// TestLookupFigureDeterminism replays the whole figure twice from the
// same seed and requires byte-identical JSON — the property the CI
// double-run step enforces on the shipped artifact.
func TestLookupFigureDeterminism(t *testing.T) {
	run := func() []byte {
		res, err := LookupComparison(Options{Seed: 11}, toyLookupOptions())
		if err != nil {
			t.Fatalf("lookup comparison: %v", err)
		}
		b, err := json.Marshal(res)
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		return b
	}
	a, b := run(), run()
	if string(a) != string(b) {
		t.Fatalf("lookup figure is not deterministic:\n%s\n%s", a, b)
	}
}
