package exp

import (
	"context"
	"testing"
	"time"
)

// TestWholeNetworkDeterminism replays a full deployment — churn, joins,
// service traffic — and asserts the network-level counters are
// bit-identical: the foundation of reproducible experiments.
func TestWholeNetworkDeterminism(t *testing.T) {
	run := func() (uint64, uint64, int) {
		d := NewDeployment(DeployConfig{
			Peers:          40,
			Replicas:       5,
			Seed:           1234,
			Chord:          Table1Scenario(AlgUMSDirect, 40, 1).Chord,
			PaperDataModel: true,
		})
		defer d.K.Stop()
		d.RunFor(time.Minute)
		rng := d.K.NewRand("drive")
		d.Do(func() {
			for i := 0; i < 5; i++ {
				p := d.RandomLivePeer(rng)
				p.UMS.Insert(context.Background(), "det-key", []byte("payload"))
				victim := d.RandomLivePeer(rng)
				d.Depart(victim, i%2 == 0)
				d.SpawnJoin(rng)
			}
			for i := 0; i < 5; i++ {
				p := d.RandomLivePeer(rng)
				p.UMS.Retrieve(context.Background(), "det-key")
			}
		})
		d.RunFor(time.Minute)
		return d.Net.TotalMessages(), d.K.Events(), len(d.LivePeers())
	}
	m1, e1, p1 := run()
	m2, e2, p2 := run()
	if m1 != m2 || e1 != e2 || p1 != p2 {
		t.Fatalf("replay diverged: msgs %d vs %d, events %d vs %d, peers %d vs %d",
			m1, m2, e1, e2, p1, p2)
	}
	if m1 == 0 || e1 == 0 {
		t.Fatal("deployment produced no traffic")
	}
}

// TestAblationsSmoke runs each ablation at a tiny scale to keep the
// long-running bench versions honest (they share this code).
func TestAblationsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation smoke test")
	}
	tiny := Options{Seed: 3}
	// Shrink by running the underlying scenarios directly at small scale.
	for _, build := range []func(Options) *Table{
		AblationRLU, AblationGraceDelay, AblationSuccessorList, AblationDataHandoff,
	} {
		_ = build // signature check only; the full runs live in bench
	}
	// One real tiny run per knob:
	base := Table1Scenario(AlgUMSDirect, 40, tiny.seed())
	base.Duration = 5 * time.Minute
	base.Warmup = 30 * time.Second
	base.Keys = 4
	base.Queries = 6
	base.ChurnRate = 0.05
	base.UpdateRate = 6

	rlu := base
	rlu.RLU = true
	if r := Run(rlu); r.QueriesRun == 0 {
		t.Fatal("RLU scenario ran no queries")
	}

	handoff := base
	handoff.DataHandoff = true
	r := Run(handoff)
	if r.QueriesRun == 0 {
		t.Fatal("handoff scenario ran no queries")
	}
	if r.CurrentRate == 0 {
		t.Fatal("with data handoff, some retrieves must be provably current")
	}

	short := base
	short.Algorithm = AlgUMSIndirect
	short.Grace = -1 // explicit "no wait" (0 selects the default)
	if r := Run(short); r.QueriesRun == 0 {
		t.Fatal("grace scenario ran no queries")
	}

	succ := base
	succ.FailRate = 0.5
	succ.Chord.SuccessorListLen = 2
	if r := Run(succ); r.QueriesRun == 0 {
		t.Fatal("successor-list scenario ran no queries")
	}
}
