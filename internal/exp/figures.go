package exp

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/analysis"
	"repro/internal/network/simwire"
)

// Options scales the figure sweeps. Quick mode (the default, used by
// `go test -bench`) runs scaled-down peer counts and windows so every
// figure regenerates in minutes; Full mode reproduces the paper's axes
// (10,000 peers, 3-hour windows).
type Options struct {
	Full bool
	Seed int64
	// Verbose receives per-run progress lines when non-nil.
	Progress func(string)
}

func (o Options) seed() int64 {
	if o.Seed == 0 {
		return 42
	}
	return o.Seed
}

func (o Options) progress(format string, args ...any) {
	if o.Progress != nil {
		o.Progress(fmt.Sprintf(format, args...))
	}
}

// scalePoints returns the x axis for the scale-up figures (7 and 8).
func (o Options) scalePoints() []int {
	if o.Full {
		return []int{2000, 4000, 6000, 8000, 10000}
	}
	return []int{250, 500, 1000, 2000}
}

// clusterPoints returns the x axis for Figure 6 (the 64-node cluster).
func (o Options) clusterPoints() []int {
	return []int{10, 20, 30, 40, 50, 60}
}

// replicaPoints returns the x axis for Figures 9 and 10.
func (o Options) replicaPoints() []int {
	if o.Full {
		return []int{5, 10, 15, 20, 25, 30, 35, 40}
	}
	return []int{5, 10, 20, 40}
}

// failurePoints returns the x axis for Figure 11 (failure rate %).
func (o Options) failurePoints() []int {
	if o.Full {
		return []int{5, 10, 20, 30, 40, 50, 60, 70, 80, 90}
	}
	return []int{5, 20, 50, 90}
}

// updatePoints returns the x axis for Figure 12 (updates per hour).
func (o Options) updatePoints() []float64 {
	return []float64{0.0625, 0.125, 0.25, 0.5, 1, 2, 4}
}

// basePeers is the fixed population for the non-scale figures.
func (o Options) basePeers() int {
	if o.Full {
		return 10000
	}
	return 1000
}

// compress is the time-compression factor of quick mode: the paper's
// 3-hour workload is squeezed into 30 minutes by scaling the churn and
// update rates 6x while leaving the network model untouched, so per-key
// turnover and staleness match the paper's conditions and response
// times stay directly comparable.
func (o Options) compress() float64 {
	if o.Full {
		return 1
	}
	return 6
}

// churnFor returns the departure rate for a population. Full mode uses
// Table 1's absolute λ = 1/s (the paper runs 2000–10000 peers). Quick
// mode keeps the same per-capita churn — 1/s at 10000 peers — because an
// absolute 1/s on a few hundred peers recycles the whole network several
// times per experiment, which the paper's populations never experience;
// the quick-mode rate is then time-compressed (see compress).
func (o Options) churnFor(peers int) float64 {
	if o.Full {
		return 1
	}
	return float64(peers) / 10000 * o.compress()
}

func (o Options) duration() time.Duration {
	if o.Full {
		return 3 * time.Hour
	}
	return 30 * time.Minute
}

func algNames() []string {
	out := make([]string, len(Algorithms))
	for i, a := range Algorithms {
		out[i] = string(a)
	}
	return out
}

// runPoint executes one scenario and feeds two tables (response time and
// messages) at column x.
func runPoint(sc Scenario, x string, respTable, msgTable *Table, o Options) *Result {
	r := Run(sc)
	if respTable != nil {
		respTable.Set(x, string(sc.Algorithm), r.RespTime.Mean())
	}
	if msgTable != nil {
		msgTable.Set(x, string(sc.Algorithm), r.Msgs.Mean())
	}
	o.progress("%-24s x=%-6s resp=%6.2fs msgs=%5.1f probes=%4.2f current=%.0f%% churn=%d wall=%s",
		sc.Name, x, r.RespTime.Mean(), r.Msgs.Mean(), r.Probed.Mean(),
		100*r.CurrentRate, r.ChurnEvents, r.WallTime.Round(time.Millisecond))
	return r
}

// Figure6 reproduces the cluster experiment (response time vs number of
// peers, 10–64 peers, §5.2 "Experimental Results"): the cluster network
// profile replaces Table 1's WAN model, exactly as the paper's 1 Gbps
// cluster replaced the simulated network.
func Figure6(o Options) *Table {
	t := NewTable("Figure 6: response time vs peers (cluster profile)",
		"peers", "response time (s)", algNames())
	for _, n := range o.clusterPoints() {
		for _, alg := range Algorithms {
			sc := Table1Scenario(alg, n, o.seed())
			sc.Name = fmt.Sprintf("fig6/%s", alg)
			sc.Net = simwire.Cluster()
			sc.Chord.RPCTimeout = 250 * time.Millisecond
			sc.Chord.StabilizeEvery = 2 * time.Second
			sc.Chord.FixFingersEvery = 2 * time.Second
			sc.Chord.CheckPredEvery = 2 * time.Second
			sc.Duration = 10 * time.Minute
			sc.Warmup = 30 * time.Second
			sc.Queries = 60 // cheap on a LAN; averages out churn spikes
			// LAN-scale constants: commits land in milliseconds, and a
			// 64-node cluster sees occasional restarts, not Table 1's
			// planetary churn.
			sc.Grace = 10 * time.Millisecond
			sc.ChurnRate = 0.005
			runPoint(sc, fmt.Sprint(n), t, nil, o)
		}
	}
	t.Notes = append(t.Notes,
		"cluster profile: ~0.3ms LAN latency instead of Table 1's 200ms WAN model",
		"paper shape: BRK > UMS-Indirect > UMS-Direct, logarithmic growth")
	return t
}

// Figures7And8 reproduce the scale-up study: response time (Fig 7) and
// communication cost (Fig 8) vs number of peers under Table 1.
func Figures7And8(o Options) (*Table, *Table) {
	t7 := NewTable("Figure 7: response time vs peers (simulation)",
		"peers", "response time (s)", algNames())
	t8 := NewTable("Figure 8: communication cost vs peers (simulation)",
		"peers", "messages per retrieve", algNames())
	for _, n := range o.scalePoints() {
		for _, alg := range Algorithms {
			sc := Table1Scenario(alg, n, o.seed())
			sc.Name = fmt.Sprintf("fig7+8/%s", alg)
			sc.Duration = o.duration()
			sc.ChurnRate = o.churnFor(n)
			sc.UpdateRate *= o.compress()
			runPoint(sc, fmt.Sprint(n), t7, t8, o)
		}
	}
	note := "paper shape: logarithmic growth; BRK highest, UMS-Direct lowest"
	t7.Notes = append(t7.Notes, note)
	t8.Notes = append(t8.Notes, note)
	return t7, t8
}

// Figures9And10 reproduce the replication-factor study: response time
// (Fig 9) and communication cost (Fig 10) vs |Hr| at a fixed population.
func Figures9And10(o Options) (*Table, *Table) {
	t9 := NewTable(fmt.Sprintf("Figure 9: response time vs replicas (%d peers)", o.basePeers()),
		"replicas", "response time (s)", algNames())
	t10 := NewTable(fmt.Sprintf("Figure 10: communication cost vs replicas (%d peers)", o.basePeers()),
		"replicas", "messages per retrieve", algNames())
	for _, hr := range o.replicaPoints() {
		for _, alg := range Algorithms {
			sc := Table1Scenario(alg, o.basePeers(), o.seed())
			sc.Name = fmt.Sprintf("fig9+10/%s", alg)
			sc.Replicas = hr
			sc.Duration = o.duration()
			sc.ChurnRate = o.churnFor(sc.Peers)
			sc.UpdateRate *= o.compress()
			runPoint(sc, fmt.Sprint(hr), t9, t10, o)
		}
	}
	note := "paper shape: strong growth for BRK, slight for UMS-Indirect, flat for UMS-Direct"
	t9.Notes = append(t9.Notes, note)
	t10.Notes = append(t10.Notes, note)
	return t9, t10
}

// Figure11 reproduces the failure study: response time vs failure rate.
func Figure11(o Options) *Table {
	t := NewTable(fmt.Sprintf("Figure 11: response time vs failure rate (%d peers)", o.basePeers()),
		"fail%", "response time (s)", algNames())
	for _, fr := range o.failurePoints() {
		for _, alg := range Algorithms {
			sc := Table1Scenario(alg, o.basePeers(), o.seed())
			sc.Name = fmt.Sprintf("fig11/%s", alg)
			sc.FailRate = float64(fr) / 100
			sc.Duration = o.duration()
			sc.ChurnRate = o.churnFor(sc.Peers)
			sc.UpdateRate *= o.compress()
			runPoint(sc, fmt.Sprint(fr), t, nil, o)
		}
	}
	t.Notes = append(t.Notes,
		"paper shape: all rise with failures; UMS-Direct converges to UMS-Indirect at high rates")
	return t
}

// Figure12 reproduces the update-frequency study: response time vs
// updates per hour, for the two UMS variants (the paper omits BRK here).
func Figure12(o Options) *Table {
	series := []string{string(AlgUMSIndirect), string(AlgUMSDirect)}
	t := NewTable(fmt.Sprintf("Figure 12: response time vs update frequency (%d peers)", o.basePeers()),
		"upd/h", "response time (s)", series)
	for _, uf := range o.updatePoints() {
		for _, alg := range []Algorithm{AlgUMSIndirect, AlgUMSDirect} {
			sc := Table1Scenario(alg, o.basePeers(), o.seed())
			sc.Name = fmt.Sprintf("fig12/%s", alg)
			sc.UpdateRate = uf * o.compress()
			sc.Duration = o.duration()
			sc.ChurnRate = o.churnFor(sc.Peers)
			runPoint(sc, fmt.Sprintf("%g", uf), t, nil, o)
		}
	}
	t.Notes = append(t.Notes,
		"paper shape: response time falls as updates become more frequent (fresher replicas => higher pt)")
	return t
}

// AnalysisExpectedRetrievals tabulates §3.3: E(X) closed form, the
// 1/pt bound, and a Monte Carlo cross-check over pt.
func AnalysisExpectedRetrievals(o Options) *Table {
	t := NewTable("Analysis (§3.3): expected replicas retrieved vs pt (|Hr|=10)",
		"pt", "E(X)", []string{"E(X) analytic", "min(1/pt,|Hr|) bound", "Monte Carlo"})
	rng := rand.New(rand.NewSource(o.seed()))
	for _, pt := range []float64{0.05, 0.1, 0.2, 0.35, 0.5, 0.65, 0.8, 0.95} {
		x := fmt.Sprintf("%.2f", pt)
		t.Set(x, "E(X) analytic", analysis.ExpectedRetrievals(pt, 10))
		t.Set(x, "min(1/pt,|Hr|) bound", analysis.UpperBound(pt, 10))
		t.Set(x, "Monte Carlo", analysis.MonteCarloRetrievals(rng, pt, 10, 200000))
	}
	t.Notes = append(t.Notes, "paper example: pt=0.35 => E(X) < 3")
	return t
}

// AnalysisIndirectSuccess tabulates §4.2.2: ps = 1-(1-pt)^|Hr|.
func AnalysisIndirectSuccess(o Options) *Table {
	t := NewTable("Analysis (§4.2.2): indirect algorithm success probability",
		"pt", "ps", []string{"|Hr|=5", "|Hr|=10", "|Hr|=13", "|Hr|=30"})
	for _, pt := range []float64{0.1, 0.2, 0.3, 0.5, 0.7} {
		x := fmt.Sprintf("%.1f", pt)
		for _, hr := range []int{5, 10, 13, 30} {
			t.Set(x, fmt.Sprintf("|Hr|=%d", hr), analysis.IndirectSuccessProb(pt, hr))
		}
	}
	t.Notes = append(t.Notes, "paper example: pt=0.3, |Hr|=13 => ps > 99%")
	return t
}
