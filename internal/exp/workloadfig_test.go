package exp

import (
	"context"
	"encoding/json"
	"reflect"
	"testing"
	"time"

	"repro/internal/workload"
)

// workloadTestOptions keeps the figure fast enough for `go test`.
func workloadTestOptions() (Options, WorkloadOptions) {
	ratio := 0.8
	return Options{Seed: 5}, WorkloadOptions{
		Peers:       32,
		Keys:        12,
		Ops:         40,
		Concurrency: 3,
		ReadRatio:   &ratio,
	}
}

func TestFigureWorkload(t *testing.T) {
	o, wo := workloadTestOptions()
	wo.Pattern = string(workload.Zipf)
	table, points, err := FigureWorkload(o, wo)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 1 {
		t.Fatalf("got %d points, want 1", len(points))
	}
	p := points[0]
	if p.Workload != string(workload.Zipf) || p.Peers != 32 {
		t.Fatalf("point provenance wrong: %+v", p)
	}
	if p.Ops != 40 || p.Reads.Ops+p.Writes.Ops != 40 {
		t.Fatalf("ops accounting wrong: %+v", p)
	}
	if p.OpsPerSec <= 0 || p.Reads.P50Ms <= 0 {
		t.Fatalf("throughput/latency missing: %+v", p)
	}
	if p.Reads.P50Ms > p.Reads.P95Ms || p.Reads.P95Ms > p.Reads.P99Ms {
		t.Fatalf("read quantiles not monotone: %+v", p.Reads)
	}
	if v, ok := table.Get(string(workload.Zipf), "ops/s"); !ok || v != p.OpsPerSec {
		t.Fatalf("table row missing or wrong: %v %v", v, ok)
	}
	if _, err := json.Marshal(points); err != nil {
		t.Fatalf("points not serializable: %v", err)
	}
}

func TestFigureWorkloadRejectsUnknownPattern(t *testing.T) {
	o, wo := workloadTestOptions()
	wo.Pattern = "bogus"
	if _, _, err := FigureWorkload(o, wo); err == nil {
		t.Fatal("unknown pattern accepted")
	}
}

// TestDeploymentWorkloadDeterminism is the sim-mode acceptance check at
// the exp layer: the same seed must replay the identical operation
// sequence and identical latency histograms.
func TestDeploymentWorkloadDeterminism(t *testing.T) {
	run := func() *workload.Report {
		sc := Table1Scenario(AlgUMSDirect, 32, 9)
		d := NewDeployment(DeployConfig{
			Peers: 32, Replicas: sc.Replicas, Seed: 9, Net: sc.Net, Chord: sc.Chord,
		})
		defer d.K.Stop()
		d.RunFor(2 * time.Minute)
		rep, err := d.RunWorkload(context.Background(), workload.Spec{
			Pattern: workload.ScanRecent, Seed: 9, Keys: 10, Ops: 30,
			Concurrency: 3, DataSize: 64, Trace: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a.Trace, b.Trace) {
		t.Fatal("op sequences diverged across same-seed replays")
	}
	if !reflect.DeepEqual(a.ReadHist.Buckets(), b.ReadHist.Buckets()) ||
		!reflect.DeepEqual(a.WriteHist.Buckets(), b.WriteHist.Buckets()) {
		t.Fatal("latency histograms diverged across same-seed replays")
	}
	aj, _ := json.Marshal(a)
	bj, _ := json.Marshal(b)
	if string(aj) != string(bj) {
		t.Fatalf("reports diverged:\n%s\n%s", aj, bj)
	}
}
