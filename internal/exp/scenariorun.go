package exp

import (
	"math/rand"

	"repro/internal/network"
	"repro/internal/network/simwire"
	"repro/internal/scenario"
	"repro/internal/stats"
)

// scenarioTarget adapts a Deployment to scenario.Target: waves map onto
// Depart/SpawnJoin, partitions and link profiles onto the simwire
// network, and heal re-introduces the sides so the ring re-merges.
type scenarioTarget struct {
	d       *Deployment
	joinRng *rand.Rand
}

var _ scenario.Target = (*scenarioTarget)(nil)

// LivePeers returns live peer names in creation order — deterministic,
// which the engine's victim selection relies on.
func (t *scenarioTarget) LivePeers() []string {
	live := t.d.LivePeers()
	names := make([]string, len(live))
	for i, p := range live {
		names[i] = p.Name
	}
	return names
}

// peer resolves a name to the peer, nil when unknown or departed.
func (t *scenarioTarget) peer(name string) *Peer {
	for _, p := range t.d.Peers {
		if p.Name == name && p.Alive() {
			return p
		}
	}
	return nil
}

// Crash implements scenario.Target.
func (t *scenarioTarget) Crash(name string) {
	if p := t.peer(name); p != nil {
		t.d.Depart(p, true)
	}
}

// Leave implements scenario.Target.
func (t *scenarioTarget) Leave(name string) {
	if p := t.peer(name); p != nil {
		t.d.Depart(p, false)
	}
}

// Join implements scenario.Target.
func (t *scenarioTarget) Join() string {
	p := t.d.SpawnJoin(t.joinRng)
	if p == nil {
		return ""
	}
	return p.Name
}

// Restartable implements scenario.Target: the crashed peers whose
// identities are free to resume, latest incarnation only.
func (t *scenarioTarget) Restartable() []string {
	return t.d.RestartablePeers()
}

// Restart implements scenario.Target: the peer rejoins at its old name
// (and, under a durable deployment, resumes its retained store).
func (t *scenarioTarget) Restart(name string) bool {
	return t.d.RestartWithState(name, t.joinRng) != nil
}

// Partition implements scenario.Target.
func (t *scenarioTarget) Partition(groups [][]string) {
	t.d.Net.Partition(toAddrGroups(groups)...)
}

// Heal implements scenario.Target: it removes the partition and nudges
// every live peer through a bootstrap from the next former group, the
// rendezvous without which the stabilized sides would stay disjoint
// rings forever.
func (t *scenarioTarget) Heal(groups [][]string) {
	t.d.Net.Heal()
	if len(groups) < 2 {
		return
	}
	env := t.d.Net.Env()
	for gi, g := range groups {
		boot := t.firstLive(groups[(gi+1)%len(groups)])
		if boot == nil {
			continue
		}
		bootAddr := boot.EP.Addr()
		for _, name := range g {
			p := t.peer(name)
			if p == nil {
				continue
			}
			node := p.Node
			env.Go(func() { node.Nudge(bootAddr) })
		}
	}
}

// firstLive returns the first live peer named in g.
func (t *scenarioTarget) firstLive(g []string) *Peer {
	for _, name := range g {
		if p := t.peer(name); p != nil {
			return p
		}
	}
	return nil
}

// SetLinkProfile implements scenario.Target: the profile applies to
// both directions between the selected sets. A custom Conditions model
// (Network.SetConditions) detaches the default model; profiles are then
// silently ignored.
func (t *scenarioTarget) SetLinkProfile(from, to []string, p scenario.Profile) {
	m := t.d.Net.Model()
	if m == nil {
		return
	}
	prof := toSimwireProfile(p)
	fromA, toA := toAddrs(from), toAddrs(to)
	m.SetProfile(fromA, toA, prof)
	m.SetProfile(toA, fromA, prof)
}

// ClearLinkProfiles implements scenario.Target.
func (t *scenarioTarget) ClearLinkProfiles() {
	if m := t.d.Net.Model(); m != nil {
		m.ClearProfiles()
	}
}

func toAddrs(names []string) []network.Addr {
	if names == nil {
		return nil
	}
	out := make([]network.Addr, len(names))
	for i, n := range names {
		out[i] = network.Addr(n)
	}
	return out
}

func toAddrGroups(groups [][]string) [][]network.Addr {
	out := make([][]network.Addr, len(groups))
	for i, g := range groups {
		out[i] = toAddrs(g)
	}
	return out
}

// toSimwireProfile translates the scenario's scalar profile into the
// transport's distribution form. Latency draws are clamped at 1ms like
// the Table 1 model; a zero bandwidth inherits the base model.
func toSimwireProfile(p scenario.Profile) simwire.Profile {
	out := simwire.Profile{
		LatencyMS: stats.Normal{Mean: p.LatencyMeanMS, Variance: p.LatencyVarMS, Min: 1},
		JitterMS:  p.JitterMS,
		Loss:      p.Loss,
	}
	if p.BandwidthKbps > 0 {
		out.BandwidthKbps = stats.Normal{Mean: p.BandwidthKbps, Min: 1}
	}
	return out
}

// PlayScript starts scripted scenario playback against this deployment:
// events are scheduled in virtual time relative to now and apply as the
// kernel advances. The returned engine exposes the applied-event Trace.
func (d *Deployment) PlayScript(s scenario.Script) (*scenario.Engine, error) {
	eng := scenario.NewEngine(d.Net.Env(), &scenarioTarget{
		d:       d,
		joinRng: d.K.NewRand("scenario-join"),
	})
	if err := eng.Play(s); err != nil {
		return nil, err
	}
	return eng, nil
}
