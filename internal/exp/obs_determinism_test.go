package exp

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"repro/internal/scenario"
)

// obsRun plays one scripted scenario figure run and returns the applied
// -event trace and metrics snapshot as JSON, plus the simulation's raw
// activity counters.
func obsRun(t *testing.T, noObs bool) (trace, snap []byte, msgs, events uint64) {
	t.Helper()
	sc := scenarioBase(Options{Seed: 29}, ScenarioOptions{
		Peers:    40,
		Duration: 8 * time.Minute,
		Queries:  8,
	})
	sc.Name = "obs-determinism"
	sc.NoObs = noObs
	script, err := scenario.Builtin(scenario.ChurnWave, sc.Duration)
	if err != nil {
		t.Fatal(err)
	}
	sc.Script = &script
	r := Run(sc)
	if r.QueriesRun == 0 {
		t.Fatal("scenario ran no queries")
	}
	trace, err = json.Marshal(r.Trace)
	if err != nil {
		t.Fatal(err)
	}
	snap, err = json.Marshal(r.Obs)
	if err != nil {
		t.Fatal(err)
	}
	return trace, snap, r.TotalNetMsgs, r.SimEvents
}

// TestObsDeterminism is the observability layer's acceptance test: a
// scripted scenario figure replayed twice with instrumentation enabled
// must produce bit-identical traces AND bit-identical metrics
// snapshots, and the instrumented run must march through the exact same
// simulation as an uninstrumented one — proof that metrics and tracing
// consume no RNG stream and read only virtual clocks.
func TestObsDeterminism(t *testing.T) {
	tr1, snap1, msgs1, ev1 := obsRun(t, false)
	tr2, snap2, msgs2, ev2 := obsRun(t, false)
	if !bytes.Equal(tr1, tr2) {
		t.Fatalf("instrumented replay diverged: trace\n%s\nvs\n%s", tr1, tr2)
	}
	if !bytes.Equal(snap1, snap2) {
		t.Fatalf("metrics snapshot not deterministic:\n%s\nvs\n%s", snap1, snap2)
	}
	if msgs1 != msgs2 || ev1 != ev2 {
		t.Fatalf("replay diverged: msgs %d vs %d, events %d vs %d", msgs1, msgs2, ev1, ev2)
	}
	if string(snap1) == "null" || len(snap1) < 100 {
		t.Fatalf("instrumented run produced no metrics snapshot: %s", snap1)
	}

	// Instrumentation off: the simulation itself must be untouched.
	tr3, snap3, msgs3, ev3 := obsRun(t, true)
	if !bytes.Equal(tr1, tr3) {
		t.Fatalf("instrumentation perturbed the scenario trace:\n%s\nvs\n%s", tr1, tr3)
	}
	if msgs1 != msgs3 || ev1 != ev3 {
		t.Fatalf("instrumentation perturbed the simulation: msgs %d vs %d, events %d vs %d",
			msgs1, msgs3, ev1, ev3)
	}
	if string(snap3) != "null" {
		t.Fatalf("NoObs run still produced a snapshot: %s", snap3)
	}
}
