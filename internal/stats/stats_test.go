package stats

import (
	"math"
	"math/rand"
	"testing"
	"time"
)

func TestNormalMoments(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d := Normal{Mean: 200, Variance: 100}
	n := 200000
	sum, ss := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := d.Sample(rng)
		sum += v
		ss += v * v
	}
	mean := sum / float64(n)
	variance := ss/float64(n) - mean*mean
	if math.Abs(mean-200) > 0.5 {
		t.Fatalf("mean = %.3f, want ~200", mean)
	}
	if math.Abs(variance-100) > 3 {
		t.Fatalf("variance = %.3f, want ~100", variance)
	}
}

func TestNormalClamped(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	// A distribution whose mass is mostly negative must clamp at Min.
	d := Normal{Mean: -100, Variance: 1, Min: 0}
	for i := 0; i < 1000; i++ {
		if v := d.Sample(rng); v < 0 {
			t.Fatalf("sample %v below Min", v)
		}
	}
	d2 := Normal{Mean: 10, Variance: 0.01, Min: 9.5}
	for i := 0; i < 1000; i++ {
		if v := d2.Sample(rng); v < 9.5 {
			t.Fatalf("sample %v below explicit Min", v)
		}
	}
}

func TestExponentialMean(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	d := Exponential{Rate: 4}
	n := 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += d.Sample(rng)
	}
	mean := sum / float64(n)
	if math.Abs(mean-0.25) > 0.005 {
		t.Fatalf("mean = %.4f, want ~0.25", mean)
	}
}

func TestPoissonProcessRate(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	// λ = 1/s: expect ~3600 events per simulated hour.
	p := &PoissonProcess{Rate: 1, Rng: rng}
	var elapsed time.Duration
	events := 0
	horizon := time.Hour
	for {
		elapsed += p.Next()
		if elapsed > horizon {
			break
		}
		events++
	}
	if events < 3300 || events > 3900 {
		t.Fatalf("events in 1h = %d, want ~3600", events)
	}
}

func TestPoissonProcessZeroRate(t *testing.T) {
	p := &PoissonProcess{Rate: 0, Rng: rand.New(rand.NewSource(5))}
	if d := p.Next(); d < time.Duration(math.MaxInt64) {
		t.Fatalf("zero-rate process must never fire, got %v", d)
	}
}

func TestPoissonCountMean(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for _, lambda := range []float64{0.5, 3, 40, 800} {
		n := 20000
		sum := 0
		for i := 0; i < n; i++ {
			sum += PoissonCount(rng, lambda)
		}
		mean := float64(sum) / float64(n)
		if math.Abs(mean-lambda) > 0.05*lambda+0.05 {
			t.Fatalf("lambda=%v: mean = %.3f", lambda, mean)
		}
	}
	if PoissonCount(rng, 0) != 0 {
		t.Fatal("lambda=0 must yield 0")
	}
}

func TestBernoulli(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	hits := 0
	n := 100000
	for i := 0; i < n; i++ {
		if Bernoulli(rng, 0.05) {
			hits++
		}
	}
	frac := float64(hits) / float64(n)
	if math.Abs(frac-0.05) > 0.005 {
		t.Fatalf("bernoulli(0.05) hit rate %.4f", frac)
	}
}

func TestUniformDuration(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 1000; i++ {
		d := UniformDuration(rng, time.Minute)
		if d < 0 || d >= time.Minute {
			t.Fatalf("out of range: %v", d)
		}
	}
	if UniformDuration(rng, 0) != 0 {
		t.Fatal("zero range must return 0")
	}
}

func TestSummaryBasics(t *testing.T) {
	var s Summary
	if s.Mean() != 0 || s.StdDev() != 0 || s.Min() != 0 || s.Max() != 0 || s.Percentile(50) != 0 {
		t.Fatal("empty summary must report zeros")
	}
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(v)
	}
	if got := s.Mean(); got != 5 {
		t.Fatalf("mean = %v", got)
	}
	if got := s.StdDev(); math.Abs(got-2.138) > 0.01 {
		t.Fatalf("stddev = %v", got)
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Fatalf("min/max = %v/%v", s.Min(), s.Max())
	}
	if got := s.Percentile(50); got != 4 {
		t.Fatalf("p50 = %v", got)
	}
	if got := s.Percentile(100); got != 9 {
		t.Fatalf("p100 = %v", got)
	}
	if got := s.Percentile(0); got != 2 {
		t.Fatalf("p0 = %v", got)
	}
	if s.N() != 8 {
		t.Fatalf("n = %d", s.N())
	}
}

func TestSummaryAddDuration(t *testing.T) {
	var s Summary
	s.AddDuration(1500 * time.Millisecond)
	if got := s.Mean(); got != 1.5 {
		t.Fatalf("AddDuration mean = %v, want 1.5s", got)
	}
}

func TestSummaryString(t *testing.T) {
	var s Summary
	s.Add(1)
	s.Add(3)
	if got := s.String(); got != "2.000 ± 1.414 (n=2)" {
		t.Fatalf("String = %q", got)
	}
}
