// Package stats provides the random distributions and summary statistics
// the evaluation needs: the normal latency/bandwidth model of Table 1,
// the Poisson processes that time churn and updates, and mean/stddev/
// percentile summaries for reporting results.
//
// All sampling is driven by explicit *rand.Rand sources so simulations
// are reproducible from a seed.
package stats

import (
	"math"
	"math/rand"
	"time"
)

// Normal is a normal distribution parameterised like Table 1 of the
// paper: by mean and *variance* (not standard deviation).
type Normal struct {
	Mean     float64
	Variance float64
	// Min clamps samples from below; physical quantities such as latency
	// and bandwidth cannot be negative. Zero means "clamp at zero".
	Min float64
}

// Sample draws one value, clamped at d.Min.
func (d Normal) Sample(rng *rand.Rand) float64 {
	v := d.Mean + rng.NormFloat64()*math.Sqrt(d.Variance)
	if v < d.Min {
		return d.Min
	}
	return v
}

// Exponential is an exponential distribution with the given rate (events
// per unit time). Inter-arrival times of a Poisson process with rate
// lambda are Exponential{Rate: lambda}.
type Exponential struct {
	Rate float64
}

// Sample draws one inter-arrival time (same unit as 1/Rate).
func (d Exponential) Sample(rng *rand.Rand) float64 {
	return rng.ExpFloat64() / d.Rate
}

// PoissonProcess generates the event times of a homogeneous Poisson
// process, as the paper uses for peer departures (λ = 1/s) and updates
// (λ = 1/h). Next returns the delay until the following event.
type PoissonProcess struct {
	// Rate is in events per second.
	Rate float64
	Rng  *rand.Rand
}

// Next returns the time until the next event as a duration.
func (p *PoissonProcess) Next() time.Duration {
	if p.Rate <= 0 {
		return time.Duration(math.MaxInt64)
	}
	secs := p.Rng.ExpFloat64() / p.Rate
	return time.Duration(secs * float64(time.Second))
}

// PoissonCount draws the number of events of a Poisson process with the
// given expectation (Knuth's algorithm for small lambda, normal
// approximation for large). Used by tests to cross-check processes.
func PoissonCount(rng *rand.Rand, lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	if lambda > 500 {
		// Normal approximation; good to well under a percent out here.
		v := lambda + math.Sqrt(lambda)*rng.NormFloat64()
		if v < 0 {
			return 0
		}
		return int(v + 0.5)
	}
	l := math.Exp(-lambda)
	k := 0
	p := 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// Uniform draws an integer uniformly from [0, n). It exists so workload
// code reads declaratively.
func Uniform(rng *rand.Rand, n int) int { return rng.Intn(n) }

// UniformDuration draws a duration uniformly from [0, d).
func UniformDuration(rng *rand.Rand, d time.Duration) time.Duration {
	if d <= 0 {
		return 0
	}
	return time.Duration(rng.Int63n(int64(d)))
}

// Bernoulli returns true with probability p.
func Bernoulli(rng *rand.Rand, p float64) bool { return rng.Float64() < p }
