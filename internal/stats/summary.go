package stats

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Summary accumulates scalar observations and reports the usual moments.
// The experiment harness records one observation per query (the paper
// averages 30 queries per configuration).
type Summary struct {
	values []float64
}

// Add records one observation.
func (s *Summary) Add(v float64) { s.values = append(s.values, v) }

// AddDuration records a duration in seconds, the unit the paper's figures
// use on their y axes.
func (s *Summary) AddDuration(d time.Duration) { s.Add(d.Seconds()) }

// N returns the number of observations.
func (s *Summary) N() int { return len(s.values) }

// Mean returns the arithmetic mean, or 0 for an empty summary.
func (s *Summary) Mean() float64 {
	if len(s.values) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range s.values {
		sum += v
	}
	return sum / float64(len(s.values))
}

// StdDev returns the sample standard deviation (n-1 denominator).
func (s *Summary) StdDev() float64 {
	n := len(s.values)
	if n < 2 {
		return 0
	}
	m := s.Mean()
	ss := 0.0
	for _, v := range s.values {
		d := v - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(n-1))
}

// Min returns the smallest observation, or 0 for an empty summary.
func (s *Summary) Min() float64 {
	if len(s.values) == 0 {
		return 0
	}
	m := s.values[0]
	for _, v := range s.values[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

// Max returns the largest observation, or 0 for an empty summary.
func (s *Summary) Max() float64 {
	if len(s.values) == 0 {
		return 0
	}
	m := s.values[0]
	for _, v := range s.values[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// Percentile returns the p-th percentile (0 <= p <= 100) using
// nearest-rank on a sorted copy. Empty summaries return 0.
func (s *Summary) Percentile(p float64) float64 {
	n := len(s.values)
	if n == 0 {
		return 0
	}
	sorted := make([]float64, n)
	copy(sorted, s.values)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[n-1]
	}
	rank := int(math.Ceil(p/100*float64(n))) - 1
	if rank < 0 {
		rank = 0
	}
	return sorted[rank]
}

// String renders "mean ± stddev (n)".
func (s *Summary) String() string {
	return fmt.Sprintf("%.3f ± %.3f (n=%d)", s.Mean(), s.StdDev(), s.N())
}
