package stats

import (
	"fmt"
	"math/bits"
	"strings"
	"time"
)

// The histogram's bucket layout is HDR-style log-linear over int64
// nanoseconds: values below 2^linBits land in exact unit-width buckets,
// and every octave [2^t, 2^(t+1)) above that is split into 2^subShift
// linear sub-buckets, bounding the relative quantile error at
// 2^-subShift (~3.1%) while covering nanoseconds to centuries in a few
// kilobytes of counters.
const (
	histLinBits  = 6                 // exact buckets below 2^6 ns
	histSubShift = 5                 // 32 sub-buckets per octave
	histLinCount = 1 << histLinBits  // 64 exact buckets
	histSubCount = 1 << histSubShift // 32
	histOctaves  = 63 - histLinBits  // octaves above the linear region
	histBuckets  = histLinCount + histOctaves*histSubCount
)

// Histogram is a fixed-memory log-bucketed latency histogram: Record is
// O(1) and allocation-free, quantiles are read with bounded (~3%)
// relative error, and two histograms fed the same samples are equal
// field for field — which is what lets the workload determinism tests
// compare whole distributions across simulation replays. The zero value
// is ready to use. A Histogram is not safe for concurrent use; callers
// that share one across goroutines must serialize access (under simnet
// the kernel already does).
type Histogram struct {
	counts [histBuckets]uint64
	total  uint64
	sum    int64 // exact sum of recorded values, for Mean
	min    int64 // exact observed extremes (quantiles are bucketed)
	max    int64
}

// histIndex maps a non-negative value to its bucket.
func histIndex(v int64) int {
	u := uint64(v)
	if u < histLinCount {
		return int(u)
	}
	top := bits.Len64(u) - 1 // >= histLinBits
	if top > 62 {
		top = 62 // clamp absurd values into the last octave
		u = 1<<63 - 1
	}
	sub := (u - 1<<uint(top)) >> uint(top-histSubShift)
	return histLinCount + (top-histLinBits)*histSubCount + int(sub)
}

// histUpper returns the exclusive upper bound of bucket i.
func histUpper(i int) int64 {
	if i < histLinCount {
		return int64(i) + 1
	}
	i -= histLinCount
	top := histLinBits + i/histSubCount
	sub := int64(i%histSubCount) + 1
	return 1<<uint(top) + sub<<uint(top-histSubShift)
}

// Record adds one duration sample. Negative durations clamp to zero.
func (h *Histogram) Record(d time.Duration) { h.RecordValue(int64(d)) }

// RecordValue adds one raw sample (the unit is the caller's; the
// workload engine records nanoseconds). Negative values clamp to zero.
func (h *Histogram) RecordValue(v int64) {
	if v < 0 {
		v = 0
	}
	if h.total == 0 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.counts[histIndex(v)]++
	h.total++
	h.sum += v
}

// Count returns the number of recorded samples.
func (h *Histogram) Count() uint64 { return h.total }

// Min returns the smallest recorded value exactly, or 0 when empty.
func (h *Histogram) Min() int64 {
	if h.total == 0 {
		return 0
	}
	return h.min
}

// Max returns the largest recorded value exactly, or 0 when empty.
func (h *Histogram) Max() int64 {
	if h.total == 0 {
		return 0
	}
	return h.max
}

// Mean returns the exact arithmetic mean, or 0 when empty.
func (h *Histogram) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.total)
}

// Quantile returns the q-th quantile (0 <= q <= 1) as the upper bound
// of the bucket holding the nearest-rank sample, clamped to the exact
// observed extremes — so Quantile(0) == Min, Quantile(1) == Max, and
// the result never exceeds any recorded maximum. Empty histograms
// return 0. Because ranks walk one cumulative scan, quantiles are
// monotone in q by construction.
func (h *Histogram) Quantile(q float64) int64 {
	if h.total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(q * float64(h.total))
	if rank == 0 {
		return h.min
	}
	if rank >= h.total {
		rank = h.total - 1
	}
	var cum uint64
	for i := 0; i < histBuckets; i++ {
		cum += h.counts[i]
		if cum > rank {
			v := histUpper(i) - 1 // largest value the bucket can hold
			if v > h.max {
				v = h.max
			}
			if v < h.min {
				v = h.min
			}
			return v
		}
	}
	return h.max
}

// QuantileDuration returns Quantile interpreted as a duration, for
// histograms recorded with Record.
func (h *Histogram) QuantileDuration(q float64) time.Duration {
	return time.Duration(h.Quantile(q))
}

// Merge folds other's samples into h. Merging an empty histogram is a
// no-op; the exact min/max/sum/mean survive the merge.
func (h *Histogram) Merge(other *Histogram) {
	if other == nil || other.total == 0 {
		return
	}
	if h.total == 0 || other.min < h.min {
		h.min = other.min
	}
	if other.max > h.max {
		h.max = other.max
	}
	for i, c := range other.counts {
		h.counts[i] += c
	}
	h.total += other.total
	h.sum += other.sum
}

// Bucket is one populated histogram bucket, for export and equality
// checks: Upper is the bucket's exclusive upper bound, Count how many
// samples it holds.
type Bucket struct {
	Upper int64
	Count uint64
}

// Buckets returns the populated buckets in ascending value order. Two
// histograms fed identical samples return identical slices, which the
// determinism tests rely on.
func (h *Histogram) Buckets() []Bucket {
	var out []Bucket
	for i, c := range h.counts {
		if c != 0 {
			out = append(out, Bucket{Upper: histUpper(i), Count: c})
		}
	}
	return out
}

// String renders a compact one-line summary with the quantiles the
// workload reports use.
func (h *Histogram) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "n=%d mean=%.0f p50=%d p95=%d p99=%d p999=%d max=%d",
		h.total, h.Mean(), h.Quantile(0.50), h.Quantile(0.95),
		h.Quantile(0.99), h.Quantile(0.999), h.Max())
	return b.String()
}
