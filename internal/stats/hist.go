package stats

import (
	"fmt"
	"math/bits"
	"strings"
	"sync"
	"time"
)

// The histogram's bucket layout is HDR-style log-linear over int64
// nanoseconds: values below 2^linBits land in exact unit-width buckets,
// and every octave [2^t, 2^(t+1)) above that is split into 2^subShift
// linear sub-buckets, bounding the relative quantile error at
// 2^-subShift (~3.1%) while covering nanoseconds to centuries in a few
// kilobytes of counters.
const (
	histLinBits  = 6                 // exact buckets below 2^6 ns
	histSubShift = 5                 // 32 sub-buckets per octave
	histLinCount = 1 << histLinBits  // 64 exact buckets
	histSubCount = 1 << histSubShift // 32
	histOctaves  = 63 - histLinBits  // octaves above the linear region
	histBuckets  = histLinCount + histOctaves*histSubCount
)

// Histogram is a fixed-memory log-bucketed latency histogram: Record is
// O(1) and allocation-free, quantiles are read with bounded (~3%)
// relative error, and two histograms fed the same samples are equal
// sample for sample — which is what lets the workload determinism tests
// compare whole distributions across simulation replays. The zero value
// is ready to use. All methods are safe for concurrent use: writers
// serialize on an internal mutex, and scrapers read a consistent copy
// via Snapshot, so a metrics endpoint never races the workload driver.
// Histograms must not be copied by value; share them by pointer.
type Histogram struct {
	mu     sync.Mutex
	counts [histBuckets]uint64
	total  uint64
	sum    int64 // exact sum of recorded values, for Mean
	min    int64 // exact observed extremes (quantiles are bucketed)
	max    int64
}

// histIndex maps a non-negative value to its bucket.
func histIndex(v int64) int {
	u := uint64(v)
	if u < histLinCount {
		return int(u)
	}
	top := bits.Len64(u) - 1 // >= histLinBits
	if top > 62 {
		top = 62 // clamp absurd values into the last octave
		u = 1<<63 - 1
	}
	sub := (u - 1<<uint(top)) >> uint(top-histSubShift)
	return histLinCount + (top-histLinBits)*histSubCount + int(sub)
}

// histUpper returns the exclusive upper bound of bucket i.
func histUpper(i int) int64 {
	if i < histLinCount {
		return int64(i) + 1
	}
	i -= histLinCount
	top := histLinBits + i/histSubCount
	sub := int64(i%histSubCount) + 1
	return 1<<uint(top) + sub<<uint(top-histSubShift)
}

// Record adds one duration sample. Negative durations clamp to zero.
func (h *Histogram) Record(d time.Duration) { h.RecordValue(int64(d)) }

// RecordValue adds one raw sample (the unit is the caller's; the
// workload engine records nanoseconds). Negative values clamp to zero.
func (h *Histogram) RecordValue(v int64) {
	if v < 0 {
		v = 0
	}
	h.mu.Lock()
	if h.total == 0 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.counts[histIndex(v)]++
	h.total++
	h.sum += v
	h.mu.Unlock()
}

// Count returns the number of recorded samples.
func (h *Histogram) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.total
}

// Sum returns the exact sum of all recorded values, or 0 when empty;
// the Prometheus exposition's histogram _sum line comes from here.
func (h *Histogram) Sum() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// Min returns the smallest recorded value exactly, or 0 when empty.
func (h *Histogram) Min() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.total == 0 {
		return 0
	}
	return h.min
}

// Max returns the largest recorded value exactly, or 0 when empty.
func (h *Histogram) Max() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.total == 0 {
		return 0
	}
	return h.max
}

// Mean returns the exact arithmetic mean, or 0 when empty.
func (h *Histogram) Mean() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.total == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.total)
}

// Quantile returns the q-th quantile (0 <= q <= 1) as the upper bound
// of the bucket holding the nearest-rank sample, clamped to the exact
// observed extremes — so Quantile(0) == Min, Quantile(1) == Max, and
// the result never exceeds any recorded maximum. Empty histograms
// return 0. Because ranks walk one cumulative scan, quantiles are
// monotone in q by construction.
func (h *Histogram) Quantile(q float64) int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(q * float64(h.total))
	if rank == 0 {
		return h.min
	}
	if rank >= h.total {
		rank = h.total - 1
	}
	var cum uint64
	for i := 0; i < histBuckets; i++ {
		cum += h.counts[i]
		if cum > rank {
			v := histUpper(i) - 1 // largest value the bucket can hold
			if v > h.max {
				v = h.max
			}
			if v < h.min {
				v = h.min
			}
			return v
		}
	}
	return h.max
}

// QuantileDuration returns Quantile interpreted as a duration, for
// histograms recorded with Record.
func (h *Histogram) QuantileDuration(q float64) time.Duration {
	return time.Duration(h.Quantile(q))
}

// Merge folds other's samples into h. Merging an empty histogram is a
// no-op; the exact min/max/sum/mean survive the merge. The fold works
// on a snapshot of other, so the two histograms' locks are never held
// together (h.Merge(h) is a harmless self-doubling, not a deadlock).
func (h *Histogram) Merge(other *Histogram) {
	if other == nil {
		return
	}
	o := other.Snapshot()
	if o.total == 0 {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.total == 0 || o.min < h.min {
		h.min = o.min
	}
	if o.max > h.max {
		h.max = o.max
	}
	for i, c := range o.counts {
		h.counts[i] += c
	}
	h.total += o.total
	h.sum += o.sum
}

// Snapshot returns an independent copy of the histogram taken under the
// lock: concurrent RecordValue calls never race a scrape, and the copy
// can be read without further synchronization. Snapshotting nil or an
// empty histogram returns an empty histogram.
func (h *Histogram) Snapshot() *Histogram {
	out := &Histogram{}
	if h == nil {
		return out
	}
	h.mu.Lock()
	out.counts = h.counts
	out.total = h.total
	out.sum = h.sum
	out.min = h.min
	out.max = h.max
	h.mu.Unlock()
	return out
}

// Bucket is one populated histogram bucket, for export and equality
// checks: Upper is the bucket's exclusive upper bound, Count how many
// samples it holds.
type Bucket struct {
	Upper int64
	Count uint64
}

// Buckets returns the populated buckets in ascending value order. Two
// histograms fed identical samples return identical slices, which the
// determinism tests rely on.
func (h *Histogram) Buckets() []Bucket {
	h.mu.Lock()
	defer h.mu.Unlock()
	var out []Bucket
	for i, c := range h.counts {
		if c != 0 {
			out = append(out, Bucket{Upper: histUpper(i), Count: c})
		}
	}
	return out
}

// String renders a compact one-line summary with the quantiles the
// workload reports use.
func (h *Histogram) String() string {
	s := h.Snapshot()
	var b strings.Builder
	fmt.Fprintf(&b, "n=%d mean=%.0f p50=%d p95=%d p99=%d p999=%d max=%d",
		s.total, s.Mean(), s.Quantile(0.50), s.Quantile(0.95),
		s.Quantile(0.99), s.Quantile(0.999), s.Max())
	return b.String()
}
