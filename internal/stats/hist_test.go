package stats

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"time"
)

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.Count() != 0 || h.Min() != 0 || h.Max() != 0 || h.Mean() != 0 {
		t.Fatalf("empty histogram reports non-zero aggregates: %s", h.String())
	}
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if v := h.Quantile(q); v != 0 {
			t.Fatalf("empty histogram Quantile(%v) = %d, want 0", q, v)
		}
	}
	if b := h.Buckets(); len(b) != 0 {
		t.Fatalf("empty histogram has buckets: %v", b)
	}
}

func TestHistogramSingleSample(t *testing.T) {
	var h Histogram
	h.Record(1234567 * time.Nanosecond)
	if h.Count() != 1 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Min() != 1234567 || h.Max() != 1234567 {
		t.Fatalf("min/max = %d/%d, want exact sample", h.Min(), h.Max())
	}
	if h.Mean() != 1234567 {
		t.Fatalf("mean = %f", h.Mean())
	}
	for _, q := range []float64{0, 0.5, 0.95, 0.999, 1} {
		if v := h.Quantile(q); v != 1234567 {
			t.Fatalf("Quantile(%v) = %d, want the single sample (clamped to max)", q, v)
		}
	}
}

func TestHistogramBucketBoundaries(t *testing.T) {
	// Below the linear region every value is exact.
	for _, v := range []int64{0, 1, 31, 62, 63} {
		var h Histogram
		h.RecordValue(v)
		if got := h.Quantile(0.5); got != v {
			t.Errorf("exact bucket: Quantile(0.5) of %d = %d", v, got)
		}
	}
	// At and above 2^6 values are bucketed with <= 1/32 relative error.
	// A far-out sentinel keeps the exact min/max clamps from masking the
	// bucket bound under test.
	for _, v := range []int64{64, 65, 127, 128, 1 << 20, 1<<20 + 1, 1<<40 - 1, 1 << 40} {
		var h Histogram
		h.RecordValue(v)
		h.RecordValue(v)
		h.RecordValue(1 << 50)
		got := h.Quantile(0.5)
		if got < v || got > v+v/32+1 {
			t.Errorf("bucketed: Quantile(0.5) of %d = %d, want within +3.2%%", v, got)
		}
	}
	// Negative durations clamp to zero instead of corrupting the layout.
	var h Histogram
	h.Record(-5 * time.Second)
	if h.Min() != 0 || h.Max() != 0 || h.Quantile(1) != 0 {
		t.Errorf("negative sample not clamped: %s", h.String())
	}
}

func TestHistogramPercentileMonotonicity(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	var h Histogram
	n := 20000
	values := make([]int64, n)
	for i := range values {
		// Long-tailed latencies: microseconds to tens of seconds.
		v := int64(1000 * (1 + rng.ExpFloat64()*float64(rng.Intn(20000))))
		values[i] = v
		h.RecordValue(v)
	}
	qs := []float64{0, 0.1, 0.25, 0.5, 0.9, 0.95, 0.99, 0.999, 1}
	prev := int64(-1)
	for _, q := range qs {
		v := h.Quantile(q)
		if v < prev {
			t.Fatalf("quantiles not monotone: Quantile(%v) = %d < previous %d", q, v, prev)
		}
		if v < h.Min() || v > h.Max() {
			t.Fatalf("Quantile(%v) = %d outside [min=%d, max=%d]", q, v, h.Min(), h.Max())
		}
		prev = v
	}
	// Bucketed quantiles stay within the layout's relative error of the
	// exact nearest-rank percentile.
	sort.Slice(values, func(i, j int) bool { return values[i] < values[j] })
	for _, q := range []float64{0.5, 0.9, 0.99} {
		exact := values[int(q*float64(n))]
		got := h.Quantile(q)
		if got < exact || got > exact+exact/16+2 {
			t.Errorf("Quantile(%v) = %d, exact %d: outside bucket-error bound", q, got, exact)
		}
	}
}

func TestHistogramMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var all, a, b Histogram
	for i := 0; i < 5000; i++ {
		v := int64(rng.Intn(1_000_000_000))
		all.RecordValue(v)
		if i%2 == 0 {
			a.RecordValue(v)
		} else {
			b.RecordValue(v)
		}
	}
	a.Merge(&b)
	a.Merge(nil)          // no-op
	a.Merge(&Histogram{}) // empty no-op
	if a.Count() != all.Count() || a.Min() != all.Min() || a.Max() != all.Max() || a.Mean() != all.Mean() {
		t.Fatalf("merge lost aggregates: %s vs %s", a.String(), all.String())
	}
	if !reflect.DeepEqual(a.Buckets(), all.Buckets()) {
		t.Fatal("merged buckets differ from single-feed buckets")
	}
	for _, q := range []float64{0.5, 0.95, 0.999} {
		if a.Quantile(q) != all.Quantile(q) {
			t.Fatalf("merged Quantile(%v) differs", q)
		}
	}
}
