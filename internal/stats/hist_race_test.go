package stats

import (
	"sync"
	"testing"
)

// TestHistogramConcurrentObserveSnapshot hammers one histogram with
// parallel writers while scrapers snapshot it, the exact shape of a
// Prometheus scrape racing the workload driver. Run with -race this
// proves the internal lock covers every path; without -race it still
// checks that no sample is lost and every snapshot is internally
// consistent (count == sum of bucket counts).
func TestHistogramConcurrentObserveSnapshot(t *testing.T) {
	const (
		writers = 8
		scrapes = 200
		perG    = 5000
	)
	h := &Histogram{}
	var wg sync.WaitGroup
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				h.RecordValue(int64(g*perG + i))
			}
		}(g)
	}
	// Scrapers run concurrently with the writers: snapshots, quantiles,
	// merges and string rendering must all be safe mid-write.
	for s := 0; s < 2; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sink := &Histogram{}
			for i := 0; i < scrapes; i++ {
				snap := h.Snapshot()
				var inBuckets uint64
				for _, b := range snap.Buckets() {
					inBuckets += b.Count
				}
				if inBuckets != snap.Count() {
					t.Errorf("torn snapshot: buckets sum %d, count %d", inBuckets, snap.Count())
					return
				}
				_ = h.Quantile(0.99)
				_ = h.String()
				sink.Merge(h)
			}
		}()
	}
	wg.Wait()

	if got, want := h.Count(), uint64(writers*perG); got != want {
		t.Fatalf("lost samples: count %d, want %d", got, want)
	}
	snap := h.Snapshot()
	if snap.Count() != h.Count() || snap.Sum() != h.Sum() || snap.Max() != h.Max() {
		t.Fatalf("quiescent snapshot differs: %v vs %v", snap, h)
	}
}
