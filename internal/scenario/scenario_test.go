package scenario

import (
	"fmt"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/network/simwire"
	"repro/internal/simnet"
)

func TestValidateRejectsBadScripts(t *testing.T) {
	cases := []struct {
		name string
		s    Script
		want string // substring of the error
	}{
		{"unknown kind", Script{Events: []Event{{Kind: "meteor"}}}, "unknown kind"},
		{"negative time", Script{Events: []Event{{At: -time.Second, Kind: KindHeal}}}, "negative event time"},
		{"wave without size", Script{Events: []Event{{Kind: KindCrashWave}}}, "Count > 0 or Frac"},
		{"wave frac too big", Script{Events: []Event{{Kind: KindCrashWave, Frac: 1.5}}}, "Frac"},
		{"partition one group", Script{Events: []Event{{Kind: KindPartition, Groups: []float64{1}}}}, "at least two"},
		{"partition bad fraction", Script{Events: []Event{{Kind: KindPartition, Groups: []float64{1, 0}}}}, "positive"},
		{"heal without partition", Script{Events: []Event{{Kind: KindHeal}}}, "without a preceding partition"},
		{"conditions without profile", Script{Events: []Event{{Kind: KindConditions}}}, "needs a Profile"},
		{"loss out of range", Script{Events: []Event{{Kind: KindConditions,
			Profile: &Profile{Loss: 1.5}}}}, "Loss"},
		{"negative group index", Script{Events: []Event{{Kind: KindConditions, From: -1,
			Profile: &Profile{LatencyMeanMS: 10}}}}, "negative group index"},
		{"group ref without partition", Script{Events: []Event{{Kind: KindConditions, From: 1,
			Profile: &Profile{LatencyMeanMS: 10}}}}, "without a preceding partition"},
		{"group ref out of range", Script{Events: []Event{
			{Kind: KindPartition, Groups: []float64{1, 1}},
			{At: time.Second, Kind: KindConditions, From: 3, Profile: &Profile{LatencyMeanMS: 10}},
		}}, "outside the partition"},
	}
	for _, tc := range cases {
		err := tc.s.Validate()
		if err == nil {
			t.Errorf("%s: Validate accepted the script", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
	// Order independence: a heal scripted before (in slice order) but
	// after (in time) its partition is fine.
	ok := Script{Name: "ok", Events: []Event{
		{At: 2 * time.Minute, Kind: KindHeal},
		{At: time.Minute, Kind: KindPartition, Groups: []float64{0.6, 0.4}},
	}}
	if err := ok.Validate(); err != nil {
		t.Errorf("time-ordered heal rejected: %v", err)
	}
}

func TestBuiltinsValidateAndScale(t *testing.T) {
	for _, name := range BuiltinNames() {
		s, err := Builtin(name, 30*time.Minute)
		if err != nil {
			t.Fatalf("Builtin(%q): %v", name, err)
		}
		if s.Name != name {
			t.Errorf("Builtin(%q).Name = %q", name, s.Name)
		}
		if err := s.Validate(); err != nil {
			t.Errorf("builtin %q invalid: %v", name, err)
		}
		for _, ev := range s.Events {
			if ev.At > 30*time.Minute {
				t.Errorf("builtin %q schedules past the window: %v", name, ev.At)
			}
		}
	}
	if _, err := Builtin("no-such", time.Hour); err == nil {
		t.Fatal("unknown builtin accepted")
	}
	if _, err := Builtin(ChurnWave, 0); err == nil {
		t.Fatal("zero window accepted")
	}
}

// fakeTarget records every call; peers are synthetic names.
type fakeTarget struct {
	mu    sync.Mutex
	alive map[string]bool
	dead  []string // crashed peers, restartable, crash order
	next  int
	log   []string

	partitioned [][]string
	healed      [][]string
	profiles    []string
	cleared     int
}

func newFakeTarget(n int) *fakeTarget {
	t := &fakeTarget{alive: make(map[string]bool)}
	for i := 0; i < n; i++ {
		t.alive[fmt.Sprintf("p%03d", i)] = true
		t.next = i + 1
	}
	return t
}

func (f *fakeTarget) LivePeers() []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]string, 0, len(f.alive))
	for i := 0; i < f.next; i++ {
		name := fmt.Sprintf("p%03d", i)
		if f.alive[name] {
			out = append(out, name)
		}
	}
	return out
}

func (f *fakeTarget) logf(format string, args ...any) {
	f.log = append(f.log, fmt.Sprintf(format, args...))
}

func (f *fakeTarget) Crash(p string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	delete(f.alive, p)
	f.dead = append(f.dead, p)
	f.logf("crash %s", p)
}

func (f *fakeTarget) Restartable() []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]string, len(f.dead))
	copy(out, f.dead)
	return out
}

func (f *fakeTarget) Restart(p string) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	for i, name := range f.dead {
		if name == p {
			f.dead = append(f.dead[:i], f.dead[i+1:]...)
			f.alive[p] = true
			f.logf("restart %s", p)
			return true
		}
	}
	return false
}

func (f *fakeTarget) Leave(p string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	delete(f.alive, p)
	f.logf("leave %s", p)
}

func (f *fakeTarget) Join() string {
	f.mu.Lock()
	defer f.mu.Unlock()
	name := fmt.Sprintf("p%03d", f.next)
	f.next++
	f.alive[name] = true
	f.logf("join %s", name)
	return name
}

func (f *fakeTarget) Partition(groups [][]string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.partitioned = groups
	f.logf("partition %d groups", len(groups))
}

func (f *fakeTarget) Heal(groups [][]string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.healed = groups
	f.logf("heal")
}

func (f *fakeTarget) SetLinkProfile(from, to []string, p Profile) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.profiles = append(f.profiles, fmt.Sprintf("profile %d>%d loss=%g", len(from), len(to), p.Loss))
	f.logf("profile")
}

func (f *fakeTarget) ClearLinkProfiles() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.cleared++
	f.logf("clear")
}

// playScript runs one script to completion on a fresh kernel + fake
// target and returns the trace and the target.
func playScript(t *testing.T, seed int64, peers int, s Script) (Trace, *fakeTarget) {
	t.Helper()
	k := simnet.New(seed)
	ft := newFakeTarget(peers)
	eng := NewEngine(simwire.Env(k), ft)
	if err := eng.Play(s); err != nil {
		t.Fatalf("Play: %v", err)
	}
	k.RunUntilIdle()
	if !eng.Done() {
		t.Fatal("engine not done after the queue drained")
	}
	return eng.Trace(), ft
}

func TestEngineAppliesScript(t *testing.T) {
	s := Script{Name: "mixed", Events: []Event{
		{At: time.Minute, Kind: KindCrashWave, Count: 5, Over: 30 * time.Second},
		{At: 2 * time.Minute, Kind: KindPartition, Groups: []float64{0.5, 0.5}},
		{At: 3 * time.Minute, Kind: KindConditions, From: 1, To: 2, Profile: &Profile{LatencyMeanMS: 300, Loss: 0.2}},
		{At: 4 * time.Minute, Kind: KindHeal},
		{At: 5 * time.Minute, Kind: KindJoinWave, Count: 3},
		{At: 6 * time.Minute, Kind: KindClearConditions},
	}}
	tr, ft := playScript(t, 1, 40, s)

	counts := map[Kind]int{}
	for _, a := range tr.Applied {
		counts[a.Kind]++
		if a.At < 0 {
			t.Fatalf("negative applied time: %+v", a)
		}
	}
	want := map[Kind]int{
		KindCrashWave: 5, KindPartition: 1, KindConditions: 1,
		KindHeal: 1, KindJoinWave: 3, KindClearConditions: 1,
	}
	for k, n := range want {
		if counts[k] != n {
			t.Errorf("applied %s %d times, want %d (trace: %+v)", k, counts[k], n, tr.Applied)
		}
	}
	if len(ft.LivePeers()) != 40-5+3 {
		t.Fatalf("live peers = %d, want 38", len(ft.LivePeers()))
	}
	if len(ft.partitioned) != 2 {
		t.Fatalf("partition groups = %d", len(ft.partitioned))
	}
	if got := len(ft.partitioned[0]) + len(ft.partitioned[1]); got != 35 {
		t.Fatalf("partition covered %d peers, want all 35 live at the split", got)
	}
	if ft.healed == nil {
		t.Fatal("heal never reached the target")
	}
	if ft.cleared != 1 {
		t.Fatalf("cleared %d times", ft.cleared)
	}
	// The group-targeted profile resolved to real peer lists.
	if len(ft.profiles) != 1 || !strings.Contains(ft.profiles[0], "loss=0.2") {
		t.Fatalf("profiles = %v", ft.profiles)
	}
	// Crash wave spread: victims fire across [1m, 1m30s], not all at 1m.
	var crashTimes []time.Duration
	for _, a := range tr.Applied {
		if a.Kind == KindCrashWave {
			crashTimes = append(crashTimes, a.At)
		}
	}
	if crashTimes[0] == crashTimes[len(crashTimes)-1] {
		t.Fatalf("wave not spread over the window: %v", crashTimes)
	}
}

// TestEngineRestartWave pins the restart kind: victims come from the
// dead population (not the live one), each restart revives exactly one
// crashed peer, and a wave on an all-alive system records the miss
// instead of inventing peers.
func TestEngineRestartWave(t *testing.T) {
	s := Script{Name: "restarts", Events: []Event{
		{At: time.Minute, Kind: KindCrashWave, Count: 4},
		{At: 2 * time.Minute, Kind: KindRestartWave, Count: 2, Over: 30 * time.Second},
		// Frac of the restartable population: 2 dead remain, so 1.0 → 2.
		{At: 3 * time.Minute, Kind: KindRestartWave, Frac: 1.0},
		// Nothing left to restart: the engine must note the miss.
		{At: 4 * time.Minute, Kind: KindRestartWave, Count: 1},
	}}
	tr, ft := playScript(t, 3, 20, s)

	var restarted []string
	misses := 0
	for _, a := range tr.Applied {
		if a.Kind != KindRestartWave {
			continue
		}
		if a.Note == "no restartable peers" {
			misses++
			continue
		}
		if a.Note != "" {
			t.Fatalf("restart failed: %+v", a)
		}
		restarted = append(restarted, a.Peers...)
	}
	if len(restarted) != 4 {
		t.Fatalf("restarted %v, want the 4 crashed peers back", restarted)
	}
	if misses != 1 {
		t.Fatalf("recorded %d restartable-miss notes, want 1", misses)
	}
	if n := len(ft.LivePeers()); n != 20 {
		t.Fatalf("live peers = %d, want all 20 back", n)
	}
	if left := ft.Restartable(); len(left) != 0 {
		t.Fatalf("still restartable after full revival: %v", left)
	}
	// Each restarted name was a crash victim — never a fresh identity.
	crashed := map[string]bool{}
	for _, a := range tr.Applied {
		if a.Kind == KindCrashWave {
			crashed[a.Peers[0]] = true
		}
	}
	for _, name := range restarted {
		if !crashed[name] {
			t.Fatalf("restarted %s which never crashed", name)
		}
	}
}

func TestEngineTraceReplaysBitIdentical(t *testing.T) {
	s := Script{Name: "replay", Events: []Event{
		{At: 30 * time.Second, Kind: KindCrashWave, Frac: 0.2, Over: time.Minute},
		{At: 2 * time.Minute, Kind: KindPartition, Groups: []float64{0.6, 0.4}},
		{At: 3 * time.Minute, Kind: KindHeal},
		{At: 4 * time.Minute, Kind: KindJoinWave, Frac: 0.25, Over: 30 * time.Second},
	}}
	tr1, ft1 := playScript(t, 7, 50, s)
	tr2, ft2 := playScript(t, 7, 50, s)
	if !reflect.DeepEqual(tr1, tr2) {
		t.Fatalf("traces diverged:\n%+v\nvs\n%+v", tr1, tr2)
	}
	if !reflect.DeepEqual(ft1.log, ft2.log) {
		t.Fatalf("target call logs diverged:\n%v\nvs\n%v", ft1.log, ft2.log)
	}
	// A different seed must pick different victims (overwhelmingly).
	tr3, _ := playScript(t, 8, 50, s)
	if reflect.DeepEqual(tr1, tr3) {
		t.Fatal("different seeds replayed the identical trace")
	}
	if len(tr1.Applied) == 0 {
		t.Fatal("empty trace")
	}
}

func TestEnginePlayTwiceRejected(t *testing.T) {
	k := simnet.New(1)
	eng := NewEngine(simwire.Env(k), newFakeTarget(5))
	// Unnamed scripts are legal (Validate does not require a name) and
	// must still complete and guard re-entry.
	if err := eng.Play(Script{Events: []Event{{Kind: KindJoinWave, Count: 1}}}); err != nil {
		t.Fatalf("first Play: %v", err)
	}
	if err := eng.Play(Script{Name: "two"}); err == nil {
		t.Fatal("second Play accepted")
	}
	k.RunUntilIdle()
	if !eng.Done() {
		t.Fatal("unnamed script never reports Done")
	}
}

// TestConditionsOnEmptyGroupAppliesNothing pins the empty-group guard:
// a partition over a tiny population can clamp a trailing group to zero
// peers, and a conditions event targeting it must apply to nothing —
// not collapse into the every-link wildcard.
func TestConditionsOnEmptyGroupAppliesNothing(t *testing.T) {
	s := Script{Name: "empty-group", Events: []Event{
		{At: time.Second, Kind: KindPartition, Groups: []float64{0.9, 0.1}},
		{At: 2 * time.Second, Kind: KindConditions, From: 2, Profile: &Profile{Loss: 0.5}},
	}}
	tr, ft := playScript(t, 1, 3, s) // 3 peers: group 2 clamps to empty
	if len(ft.profiles) != 0 {
		t.Fatalf("profile applied despite empty target group: %v", ft.profiles)
	}
	found := false
	for _, a := range tr.Applied {
		if a.Kind == KindConditions && strings.Contains(a.Note, "skipped") {
			found = true
		}
	}
	if !found {
		t.Fatalf("skip not recorded in trace: %+v", tr.Applied)
	}
}
