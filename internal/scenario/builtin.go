package scenario

import (
	"fmt"
	"sort"
	"time"
)

// Builtin scripts: the library of named scenarios the bench binary and
// the docs' worked examples run. Each is parameterised by the window it
// plays over, so the same shape scales from a quick test to a paper-
// length experiment. Event times are fractions of the window.

// The builtin script names.
const (
	// Calm plays no events — the control every comparison includes.
	Calm = "calm"
	// ChurnWave crashes a quarter of the peers in a burst, then
	// back-fills with fresh joins: a correlated-failure flash crowd.
	ChurnWave = "churn-wave"
	// SplitHeal partitions the network 60/40 mid-run and heals it: the
	// split-brain regime (independent timestamping on both sides).
	SplitHeal = "split-heal"
	// LossyWAN degrades every link to a congested WAN — doubled latency,
	// heavy jitter, 5% message loss — for the middle of the run.
	LossyWAN = "lossy-wan"
	// MassCrash fails half the network at one instant with no
	// replacement until late recovery joins.
	MassCrash = "mass-crash"
)

// builtin constructs one named script over a window.
var builtin = map[string]func(window time.Duration) Script{
	Calm: func(time.Duration) Script {
		return Script{Name: Calm}
	},
	ChurnWave: func(w time.Duration) Script {
		return Script{Name: ChurnWave, Events: []Event{
			{At: frac(w, 0.20), Kind: KindCrashWave, Frac: 0.25, Over: frac(w, 0.10)},
			{At: frac(w, 0.40), Kind: KindJoinWave, Frac: 0.33, Over: frac(w, 0.10)},
		}}
	},
	SplitHeal: func(w time.Duration) Script {
		return Script{Name: SplitHeal, Events: []Event{
			{At: frac(w, 0.25), Kind: KindPartition, Groups: []float64{0.6, 0.4}},
			{At: frac(w, 0.60), Kind: KindHeal},
		}}
	},
	LossyWAN: func(w time.Duration) Script {
		return Script{Name: LossyWAN, Events: []Event{
			{At: frac(w, 0.20), Kind: KindConditions, Profile: &Profile{
				LatencyMeanMS: 400,
				LatencyVarMS:  400,
				JitterMS:      100,
				Loss:          0.05,
			}},
			{At: frac(w, 0.80), Kind: KindClearConditions},
		}}
	},
	MassCrash: func(w time.Duration) Script {
		return Script{Name: MassCrash, Events: []Event{
			{At: frac(w, 0.30), Kind: KindCrashWave, Frac: 0.5},
			{At: frac(w, 0.60), Kind: KindJoinWave, Frac: 1.0, Over: frac(w, 0.15)},
		}}
	},
}

func frac(w time.Duration, f float64) time.Duration {
	return time.Duration(float64(w) * f)
}

// BuiltinNames lists the builtin scripts in stable order.
func BuiltinNames() []string {
	names := make([]string, 0, len(builtin))
	for n := range builtin {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Builtin returns the named builtin script shaped to play over window.
func Builtin(name string, window time.Duration) (Script, error) {
	mk, ok := builtin[name]
	if !ok {
		return Script{}, fmt.Errorf("scenario: unknown builtin %q (have %v)", name, BuiltinNames())
	}
	if window <= 0 {
		return Script{}, fmt.Errorf("scenario: builtin %q needs a positive window, got %s", name, window)
	}
	return mk(window), nil
}
