// Package scenario is the scripted fault-and-condition engine: it drives
// a running deployment through a timed sequence of events — churn waves
// (crash/leave/join, mass-crash), network partitions (split and heal
// between peer groups), and link condition changes (latency
// distribution, jitter, message loss, bandwidth) — replayable
// bit-identically per seed.
//
// The paper validates UMS/KTS under a single failure model (uniform
// fail-stop departure rates); this package opens the scenario axis:
// correlated failures, split-brain partitions and degraded WANs, the
// regimes related work (Leslie's reliable DHT storage, DistHash) stresses
// replicated DHTs under.
//
// Determinism. A Script names no peers — events say "crash 25% of the
// live peers", and the Engine resolves victims at fire time from the
// target's deterministic live-peer order using one named RNG stream.
// Under the simulation kernel every event fires at an exact virtual
// time and processes are serialized, so the same (script, seed) pair
// replays the identical event trace, message count and figure output,
// bit for bit. The Trace records what actually happened for comparison.
package scenario

import (
	"fmt"
	"sort"
	"time"
)

// Kind names one event type. The set is closed; Validate rejects
// anything else.
type Kind string

// The event kinds.
const (
	// KindCrashWave crashes Count (or Frac of live) peers, spread evenly
	// over the Over window (all at once when zero). Crashed peers lose
	// their replicas and counters — the paper's "fail" departure.
	KindCrashWave Kind = "crash-wave"
	// KindLeaveWave departs peers gracefully (with key and counter
	// handoff), same knobs as a crash wave.
	KindLeaveWave Kind = "leave-wave"
	// KindJoinWave joins Count (or Frac of live) fresh peers through
	// random live bootstraps, spread over the Over window.
	KindJoinWave Kind = "join-wave"
	// KindRestartWave restarts Count (or Frac of the restartable) dead
	// peers at their old identities, spread over the Over window. On a
	// durable deployment a restarted peer resumes from its retained
	// state and runs the §4.2.2 recovery path; on a volatile one it
	// comes back blank — restart-as-new.
	KindRestartWave Kind = "restart-wave"
	// KindPartition splits the live peers into len(Groups) groups sized
	// by the Groups fractions (normalized). Peers in different groups
	// cannot exchange messages; a peer that joins during the split is
	// confined to its bootstrap's side (replacements never bridge the
	// partition). A new partition replaces the previous one.
	KindPartition Kind = "partition"
	// KindHeal removes the active partition and re-introduces the sides
	// to each other so the overlay can re-merge.
	KindHeal Kind = "heal"
	// KindConditions applies Profile to the links selected by From/To
	// (1-based partition-group indexes; 0, the zero value, means every
	// peer). Later conditions win where they overlap.
	KindConditions Kind = "conditions"
	// KindClearConditions removes every applied profile, restoring the
	// network's base link model.
	KindClearConditions Kind = "clear-conditions"
)

// Profile reshapes the links it is applied to. Latencies are one-way
// milliseconds; the zero BandwidthKbps inherits the network's base
// bandwidth model.
type Profile struct {
	// LatencyMeanMS and LatencyVarMS parameterise the normal one-way
	// latency distribution (mean and variance, like the paper's Table
	// 1). A zero mean inherits the base latency model entirely, so a
	// loss- or jitter-only profile degrades exactly what it names.
	LatencyMeanMS float64 `json:"latency_mean_ms"`
	LatencyVarMS  float64 `json:"latency_var_ms,omitempty"`
	// JitterMS adds a uniform draw from [0, JitterMS) per message.
	JitterMS float64 `json:"jitter_ms,omitempty"`
	// Loss is the i.i.d. message-loss probability in [0, 1].
	Loss float64 `json:"loss,omitempty"`
	// BandwidthKbps is the mean link bandwidth; zero inherits the base.
	BandwidthKbps float64 `json:"bandwidth_kbps,omitempty"`
}

// Event is one scripted action at a point in scenario time.
type Event struct {
	// At is the event's offset from the moment the script starts
	// playing (for experiment runs: after warmup and initial load).
	At time.Duration `json:"at"`
	// Kind selects the action; the remaining fields parameterise it.
	Kind Kind `json:"kind"`

	// Count is the absolute number of peers a wave affects. When zero,
	// Frac of the live population (at fire time) is used instead.
	Count int `json:"count,omitempty"`
	// Frac is the fraction of live peers a wave affects, in (0, 1].
	Frac float64 `json:"frac,omitempty"`
	// Over spreads a wave's individual actions evenly across this
	// window; zero applies them all at the event time.
	Over time.Duration `json:"over,omitempty"`

	// Groups sizes a partition's sides as fractions of the live
	// population (normalized, so [6, 4] and [0.6, 0.4] agree).
	Groups []float64 `json:"groups,omitempty"`

	// From and To select the links a conditions profile applies to, as
	// 1-based indexes into the most recent partition's groups; 0 — the
	// zero value, so omitted fields are safe — selects every peer.
	// Profiles apply symmetrically (both directions).
	From int `json:"from,omitempty"`
	To   int `json:"to,omitempty"`
	// Profile is the condition profile a KindConditions event applies.
	Profile *Profile `json:"profile,omitempty"`
}

// Script is a named, ordered sequence of events.
type Script struct {
	Name   string  `json:"name"`
	Events []Event `json:"events"`
}

// Validate checks the script: known kinds, wave sizes, partition group
// fractions, conditions profiles and group references. It returns the
// first problem found.
func (s Script) Validate() error {
	groupsDefined := -1 // size of the last partition's Groups, -1 = none yet
	for i, ev := range sorted(s.Events) {
		at := func(format string, args ...any) error {
			return fmt.Errorf("scenario %q event %d (%s at %s): %s",
				s.Name, i, ev.Kind, ev.At, fmt.Sprintf(format, args...))
		}
		if ev.At < 0 {
			return at("negative event time")
		}
		switch ev.Kind {
		case KindCrashWave, KindLeaveWave, KindJoinWave, KindRestartWave:
			if ev.Count < 0 {
				return at("negative Count")
			}
			if ev.Count == 0 && (ev.Frac <= 0 || ev.Frac > 1) {
				return at("wave needs Count > 0 or Frac in (0, 1], got Count=%d Frac=%g", ev.Count, ev.Frac)
			}
			if ev.Over < 0 {
				return at("negative Over window")
			}
		case KindPartition:
			if len(ev.Groups) < 2 {
				return at("partition needs at least two Groups")
			}
			for _, g := range ev.Groups {
				if g <= 0 {
					return at("partition group fractions must be positive, got %v", ev.Groups)
				}
			}
			groupsDefined = len(ev.Groups)
		case KindHeal:
			if groupsDefined < 0 {
				return at("heal without a preceding partition")
			}
		case KindConditions:
			if ev.Profile == nil {
				return at("conditions event needs a Profile")
			}
			if ev.Profile.Loss < 0 || ev.Profile.Loss > 1 {
				return at("profile Loss %g outside [0, 1]", ev.Profile.Loss)
			}
			if ev.Profile.LatencyMeanMS < 0 || ev.Profile.LatencyVarMS < 0 ||
				ev.Profile.JitterMS < 0 || ev.Profile.BandwidthKbps < 0 {
				return at("negative profile parameter")
			}
			for _, g := range []int{ev.From, ev.To} {
				if g < 0 {
					return at("negative group index %d (0 means every peer, groups are 1-based)", g)
				}
				if g > 0 && groupsDefined < 0 {
					return at("group-targeted conditions without a preceding partition")
				}
				if g > 0 && g > groupsDefined {
					return at("group index %d outside the partition's %d groups", g, groupsDefined)
				}
			}
		case KindClearConditions:
			// no knobs
		default:
			return at("unknown kind")
		}
	}
	return nil
}

// sorted returns the events ordered by At, ties kept in script order —
// the order the engine applies them in.
func sorted(events []Event) []Event {
	out := make([]Event, len(events))
	copy(out, events)
	sort.SliceStable(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}

// Applied is one trace entry: an action the engine actually performed.
type Applied struct {
	// At is the virtual time the action fired, relative to when the
	// script started playing.
	At time.Duration `json:"at"`
	// Kind is the event kind; waves record one entry per affected peer.
	Kind Kind `json:"kind"`
	// Peers lists the affected peers: a wave's victim or joiner, a
	// partition's group sizes via Note instead.
	Peers []string `json:"peers,omitempty"`
	// Note carries human-readable detail (group sizes, profile target).
	Note string `json:"note,omitempty"`
}

// Trace is the replayable record of one script playback. Two runs of
// the same script on the same seed must produce identical traces — the
// determinism tests compare them field by field.
type Trace struct {
	Script  string    `json:"script"`
	Applied []Applied `json:"applied"`
}
