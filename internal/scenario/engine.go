package scenario

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/network"
)

// Target is the surface a deployment exposes to the engine. All methods
// are called from environment activities (kernel processes under
// simulation), one event at a time. Peers are named by address.
type Target interface {
	// LivePeers returns the live peers in a deterministic order.
	LivePeers() []string
	// Crash fails one peer: its state is lost and its traffic drops.
	Crash(peer string)
	// Leave departs one peer gracefully (key and counter handoff).
	Leave(peer string)
	// Join spawns and joins one fresh peer, returning its name, or ""
	// when no bootstrap was reachable.
	Join() string
	// Restartable returns the names of dead peers that could restart, in
	// a deterministic order.
	Restartable() []string
	// Restart brings one dead peer back at its old identity (resuming
	// retained durable state when the deployment keeps any). It reports
	// whether the restart completed.
	Restart(peer string) bool
	// Partition splits the network so peers in different groups cannot
	// exchange messages; a new call replaces the previous split.
	Partition(groups [][]string)
	// Heal removes the partition. The former groups are passed so the
	// target can re-introduce the sides to each other (a stabilized
	// overlay cannot re-merge disjoint rings on its own).
	Heal(groups [][]string)
	// SetLinkProfile applies p to the links from×to, both directions;
	// nil slices select every peer.
	SetLinkProfile(from, to []string, p Profile)
	// ClearLinkProfiles removes every applied profile.
	ClearLinkProfiles()
}

// Engine plays scripts against a target in environment time.
type Engine struct {
	env    network.Env
	target Target
	rng    *rand.Rand

	mu      sync.Mutex
	played  bool          // Play was called (scripts may be unnamed)
	start   time.Duration // env time the script started playing
	trace   Trace
	groups  [][]string // membership of the most recent partition
	pending int        // scheduled actions not yet applied
}

// NewEngine binds an engine to a target. The engine draws every random
// decision (wave victims, partition membership) from the environment's
// "scenario" stream, so playback is deterministic per seed.
func NewEngine(env network.Env, target Target) *Engine {
	return &Engine{env: env, target: target, rng: env.Rand("scenario")}
}

// Play validates s and schedules its events relative to now, returning
// immediately; the events apply as the clock advances. Play may be
// called once per engine.
func (e *Engine) Play(s Script) error {
	if err := s.Validate(); err != nil {
		return err
	}
	e.mu.Lock()
	if e.played {
		e.mu.Unlock()
		return fmt.Errorf("scenario: engine already playing %q", e.trace.Script)
	}
	e.played = true
	e.trace.Script = s.Name
	e.start = e.env.Now()
	events := sorted(s.Events)
	e.pending = len(events)
	e.mu.Unlock()
	for _, ev := range events {
		ev := ev
		e.env.After(ev.At, func() {
			defer e.done()
			e.apply(ev)
		})
	}
	return nil
}

// Trace snapshots the applied-event record.
func (e *Engine) Trace() Trace {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := Trace{Script: e.trace.Script, Applied: make([]Applied, len(e.trace.Applied))}
	copy(out.Applied, e.trace.Applied)
	return out
}

// Done reports whether every scheduled action has applied.
func (e *Engine) Done() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.played && e.pending == 0
}

func (e *Engine) done() {
	e.mu.Lock()
	e.pending--
	e.mu.Unlock()
}

// now returns the current scenario-relative time.
func (e *Engine) now() time.Duration {
	e.mu.Lock()
	start := e.start
	e.mu.Unlock()
	return e.env.Now() - start
}

func (e *Engine) record(kind Kind, peers []string, note string) {
	at := e.now()
	e.mu.Lock()
	e.trace.Applied = append(e.trace.Applied, Applied{At: at, Kind: kind, Peers: peers, Note: note})
	e.mu.Unlock()
}

// apply performs one event now.
func (e *Engine) apply(ev Event) {
	switch ev.Kind {
	case KindCrashWave, KindLeaveWave, KindJoinWave, KindRestartWave:
		e.wave(ev)
	case KindPartition:
		e.partition(ev)
	case KindHeal:
		e.mu.Lock()
		groups := e.groups
		e.mu.Unlock()
		e.target.Heal(groups)
		e.record(KindHeal, nil, fmt.Sprintf("%d groups rejoined", len(groups)))
	case KindConditions:
		e.conditions(ev)
	case KindClearConditions:
		e.target.ClearLinkProfiles()
		e.record(KindClearConditions, nil, "")
	}
}

// wave resolves the affected count from the live population at fire
// time, then applies the per-peer actions: all at once, or spread
// evenly across the Over window.
func (e *Engine) wave(ev Event) {
	n := ev.Count
	if n == 0 {
		// A restart wave's fraction is of the restartable (dead)
		// population; the other waves scale with the live one.
		pop := e.target.LivePeers()
		if ev.Kind == KindRestartWave {
			pop = e.target.Restartable()
		}
		n = int(float64(len(pop))*ev.Frac + 0.5)
	}
	if n < 1 {
		n = 1
	}
	if ev.Over <= 0 || n == 1 {
		for i := 0; i < n; i++ {
			e.waveOne(ev.Kind)
		}
		return
	}
	spacing := ev.Over / time.Duration(n-1)
	e.mu.Lock()
	e.pending += n - 1 // the first fires inline below
	e.mu.Unlock()
	for i := 1; i < n; i++ {
		i := i
		e.env.After(time.Duration(i)*spacing, func() {
			defer e.done()
			e.waveOne(ev.Kind)
		})
	}
	e.waveOne(ev.Kind)
}

// waveOne applies one wave action: crash or depart a victim drawn from
// the live set, or join one fresh peer.
func (e *Engine) waveOne(kind Kind) {
	if kind == KindJoinWave {
		name := e.target.Join()
		if name == "" {
			e.record(kind, nil, "join failed: no reachable bootstrap")
			return
		}
		e.record(kind, []string{name}, "")
		return
	}
	if kind == KindRestartWave {
		down := e.target.Restartable()
		if len(down) == 0 {
			e.record(kind, nil, "no restartable peers")
			return
		}
		victim := down[e.rng.Intn(len(down))]
		if !e.target.Restart(victim) {
			e.record(kind, []string{victim}, "restart failed")
			return
		}
		e.record(kind, []string{victim}, "")
		return
	}
	live := e.target.LivePeers()
	if len(live) == 0 {
		e.record(kind, nil, "no live peers")
		return
	}
	victim := live[e.rng.Intn(len(live))]
	if kind == KindCrashWave {
		e.target.Crash(victim)
	} else {
		e.target.Leave(victim)
	}
	e.record(kind, []string{victim}, "")
}

// partition shuffles the live peers deterministically and splits them
// into groups sized by the normalized fractions.
func (e *Engine) partition(ev Event) {
	live := e.target.LivePeers()
	shuffled := make([]string, len(live))
	copy(shuffled, live)
	e.rng.Shuffle(len(shuffled), func(i, j int) {
		shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
	})
	var total float64
	for _, g := range ev.Groups {
		total += g
	}
	groups := make([][]string, len(ev.Groups))
	next := 0
	for gi, frac := range ev.Groups {
		size := int(float64(len(shuffled))*frac/total + 0.5)
		if gi == len(ev.Groups)-1 || next+size > len(shuffled) {
			size = len(shuffled) - next
		}
		groups[gi] = shuffled[next : next+size]
		next += size
	}
	e.mu.Lock()
	e.groups = groups
	e.mu.Unlock()
	e.target.Partition(groups)
	sizes := make([]int, len(groups))
	for i, g := range groups {
		sizes[i] = len(g)
	}
	e.record(KindPartition, nil, fmt.Sprintf("group sizes %v", sizes))
}

// conditions resolves the 1-based group indexes (0 = every peer) to
// peer lists and applies the profile symmetrically.
func (e *Engine) conditions(ev Event) {
	resolve := func(g int) []string {
		if g <= 0 {
			return nil
		}
		e.mu.Lock()
		defer e.mu.Unlock()
		if g > len(e.groups) {
			return nil
		}
		return e.groups[g-1]
	}
	from, to := resolve(ev.From), resolve(ev.To)
	// A targeted group that resolved empty (clamped away on a tiny
	// population) must apply to nothing — passed down, an empty list
	// would read as the match-any wildcard and degrade every link.
	if (ev.From > 0 && len(from) == 0) || (ev.To > 0 && len(to) == 0) {
		e.record(KindConditions, nil,
			fmt.Sprintf("skipped: links %s>%s target an empty group", groupName(ev.From), groupName(ev.To)))
		return
	}
	e.target.SetLinkProfile(from, to, *ev.Profile)
	note := fmt.Sprintf("links %s>%s: latency %g±%gms jitter %gms loss %g%%",
		groupName(ev.From), groupName(ev.To),
		ev.Profile.LatencyMeanMS, ev.Profile.LatencyVarMS,
		ev.Profile.JitterMS, 100*ev.Profile.Loss)
	e.record(KindConditions, nil, note)
}

func groupName(g int) string {
	if g <= 0 {
		return "all"
	}
	return fmt.Sprintf("group%d", g)
}
