package chord

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dht"
	"repro/internal/hashing"
	"repro/internal/network"
	"repro/internal/network/simwire"
	"repro/internal/simnet"
	"repro/internal/stats"
)

// testCfg keeps protocol timers short so tests converge quickly.
func testCfg() Config {
	return Config{
		SuccessorListLen: 6,
		StabilizeEvery:   500 * time.Millisecond,
		FixFingersEvery:  300 * time.Millisecond,
		CheckPredEvery:   500 * time.Millisecond,
		RPCTimeout:       200 * time.Millisecond,
	}
}

// fastNet has deterministic 5 ms latency links.
func fastNet(k *simnet.Kernel) *simwire.Network {
	return simwire.New(k, simwire.Config{
		LatencyMS:      stats.Normal{Mean: 5, Variance: 0, Min: 5},
		BandwidthKbps:  stats.Normal{Mean: 1e6, Variance: 0, Min: 1e6},
		DefaultTimeout: 200 * time.Millisecond,
	})
}

type testRing struct {
	t     *testing.T
	k     *simnet.Kernel
	net   *simwire.Network
	nodes []*Node
}

func newTestRing(t *testing.T, seed int64) *testRing {
	k := simnet.New(seed)
	return &testRing{t: t, k: k, net: fastNet(k)}
}

// newNode creates a node with a name-derived ID, not yet joined.
func (tr *testRing) newNode(name string) *Node {
	ep := tr.net.NewEndpoint(name)
	return New(tr.net.Env(), ep, hashing.NodeID(name), testCfg())
}

// do runs fn as a simulation process and drives the kernel until it
// completes.
func (tr *testRing) do(fn func()) {
	tr.t.Helper()
	done := false
	tr.k.Go(func() {
		fn()
		done = true
	})
	for i := 0; i < 600 && !done; i++ {
		tr.k.Run(tr.k.Now() + 100*time.Millisecond)
	}
	if !done {
		tr.t.Fatal("simulated operation did not complete")
	}
}

// settle advances the simulation by d to let maintenance run.
func (tr *testRing) settle(d time.Duration) {
	tr.k.Run(tr.k.Now() + d)
}

// build creates n nodes: the first creates the ring, the rest join
// sequentially through it.
func (tr *testRing) build(n int, start bool) {
	first := tr.newNode("node0")
	first.CreateRing()
	tr.nodes = append(tr.nodes, first)
	for i := 1; i < n; i++ {
		nd := tr.newNode(fmt.Sprintf("node%d", i))
		tr.do(func() {
			if err := nd.Join(first.Self().Addr); err != nil {
				tr.t.Errorf("join node%d: %v", i, err)
			}
		})
		tr.nodes = append(tr.nodes, nd)
	}
	if start {
		for _, nd := range tr.nodes {
			nd.Start()
		}
	}
}

// aliveSorted returns the live nodes in ring order.
func (tr *testRing) aliveSorted() []*Node {
	var out []*Node
	for _, nd := range tr.nodes {
		if nd.Alive() {
			out = append(out, nd)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Self().ID < out[j].Self().ID })
	return out
}

// wantResponsible returns the node that should own id: the first live
// node clockwise from id.
func (tr *testRing) wantResponsible(id core.ID) *Node {
	sorted := tr.aliveSorted()
	for _, nd := range sorted {
		if nd.Self().ID >= id {
			return nd
		}
	}
	return sorted[0]
}

// checkRing asserts that successors and predecessors form the sorted
// cycle of live nodes.
func (tr *testRing) checkRing() {
	tr.t.Helper()
	sorted := tr.aliveSorted()
	n := len(sorted)
	for i, nd := range sorted {
		wantSucc := sorted[(i+1)%n].Self().ID
		if got := nd.Successor().ID; got != wantSucc {
			tr.t.Errorf("node %s successor = %s, want %s", nd.Self().ID, got, wantSucc)
		}
		wantPred := sorted[(i-1+n)%n].Self().ID
		if got := nd.Predecessor(); got.IsZero() || got.ID != wantPred {
			tr.t.Errorf("node %s predecessor = %v, want %s", nd.Self().ID, got, wantPred)
		}
	}
}

func TestSingletonRing(t *testing.T) {
	tr := newTestRing(t, 1)
	tr.build(1, false)
	nd := tr.nodes[0]
	tr.do(func() {
		ref, hops, err := nd.Lookup(context.Background(), 12345)
		if err != nil {
			t.Errorf("lookup: %v", err)
		}
		if ref.ID != nd.Self().ID {
			t.Errorf("singleton lookup returned %v", ref)
		}
		if hops != 0 {
			t.Errorf("hops = %d, want 0", hops)
		}
	})
	if !nd.OwnsID(987654) {
		t.Fatal("singleton must own everything")
	}
}

func TestSequentialJoinsFormRing(t *testing.T) {
	tr := newTestRing(t, 2)
	tr.build(8, true)
	tr.settle(10 * time.Second)
	tr.checkRing()
}

func TestLookupFindsCorrectResponsible(t *testing.T) {
	tr := newTestRing(t, 3)
	tr.build(16, true)
	tr.settle(15 * time.Second)
	tr.checkRing()
	rng := tr.k.NewRand("targets")
	for i := 0; i < 40; i++ {
		target := core.ID(rng.Uint64())
		origin := tr.nodes[rng.Intn(len(tr.nodes))]
		want := tr.wantResponsible(target).Self().ID
		tr.do(func() {
			ref, _, err := origin.Lookup(context.Background(), target)
			if err != nil {
				t.Errorf("lookup %s: %v", target, err)
				return
			}
			if ref.ID != want {
				t.Errorf("lookup %s from %s = %s, want %s", target, origin.Self().ID, ref.ID, want)
			}
		})
	}
}

func TestLookupHopsLogarithmic(t *testing.T) {
	tr := newTestRing(t, 4)
	tr.build(48, true)
	tr.settle(30 * time.Second) // enough rounds to fix most fingers
	rng := tr.k.NewRand("hops")
	total := 0
	const samples = 60
	for i := 0; i < samples; i++ {
		target := core.ID(rng.Uint64())
		origin := tr.nodes[rng.Intn(len(tr.nodes))]
		tr.do(func() {
			_, hops, err := origin.Lookup(context.Background(), target)
			if err != nil {
				t.Errorf("lookup: %v", err)
				return
			}
			total += hops
		})
	}
	avg := float64(total) / samples
	// log2(48) ≈ 5.6; allow generous slack but reject linear scans.
	if avg > 2.5*math.Log2(48) {
		t.Fatalf("average hops = %.1f, too high for 48 nodes", avg)
	}
}

func TestMeterCountsLookupMessages(t *testing.T) {
	tr := newTestRing(t, 5)
	tr.build(24, true)
	tr.settle(20 * time.Second)
	rng := tr.k.NewRand("meter")
	target := core.ID(rng.Uint64())
	origin := tr.nodes[5]
	tr.do(func() {
		m := &network.Meter{}
		_, hops, err := origin.Lookup(network.WithMeter(context.Background(), m), target)
		if err != nil {
			t.Errorf("lookup: %v", err)
			return
		}
		if m.Msgs != 2*hops {
			t.Errorf("meter = %d msgs for %d hops, want %d", m.Msgs, hops, 2*hops)
		}
	})
}

func TestPutGetAcrossRing(t *testing.T) {
	tr := newTestRing(t, 6)
	tr.build(12, true)
	tr.settle(10 * time.Second)
	client := dht.NewClient(tr.nodes[3], "test")
	h := hashing.Salted{Salt: "h0"}
	tr.do(func() {
		val := core.Value{Data: []byte("payload"), TS: core.TS(7)}
		if err := client.PutH(context.Background(), "some-key", h, val, dht.PutOverwrite); err != nil {
			t.Errorf("put: %v", err)
			return
		}
		got, err := client.GetH(context.Background(), "some-key", h)
		if err != nil {
			t.Errorf("get: %v", err)
			return
		}
		if string(got.Data) != "payload" || got.TS != core.TS(7) {
			t.Errorf("got %+v", got)
		}
	})
	// The replica must live on the responsible node only.
	owner := tr.wantResponsible(h.ID("some-key"))
	if owner.Store().Len() != 1 {
		t.Fatalf("owner stores %d items, want 1", owner.Store().Len())
	}
}

func TestPutIfNewerRejectsStale(t *testing.T) {
	tr := newTestRing(t, 7)
	tr.build(6, true)
	tr.settle(5 * time.Second)
	client := dht.NewClient(tr.nodes[0], "test")
	h := hashing.Salted{Salt: "h0"}
	tr.do(func() {
		newer := core.Value{Data: []byte("new"), TS: core.TS(5)}
		older := core.Value{Data: []byte("old"), TS: core.TS(3)}
		if err := client.PutH(context.Background(), "k", h, newer, dht.PutIfNewer); err != nil {
			t.Errorf("put newer: %v", err)
		}
		if err := client.PutH(context.Background(), "k", h, older, dht.PutIfNewer); err != nil {
			t.Errorf("put older: %v", err)
		}
		got, err := client.GetH(context.Background(), "k", h)
		if err != nil {
			t.Errorf("get: %v", err)
			return
		}
		if string(got.Data) != "new" {
			t.Errorf("stale write overwrote newer replica: %q", got.Data)
		}
	})
}

func TestJoinTransfersKeys(t *testing.T) {
	tr := newTestRing(t, 8)
	tr.build(8, true)
	tr.settle(8 * time.Second)
	client := dht.NewClient(tr.nodes[0], "test")

	// Spread 50 keys across the ring.
	keys := make([]core.Key, 50)
	h := hashing.Salted{Salt: "h0"}
	tr.do(func() {
		for i := range keys {
			keys[i] = core.Key(fmt.Sprintf("key-%d", i))
			val := core.Value{Data: []byte(keys[i]), TS: core.TS(1)}
			if err := client.PutH(context.Background(), keys[i], h, val, dht.PutOverwrite); err != nil {
				t.Errorf("put %s: %v", keys[i], err)
			}
		}
	})

	// A new node joins; every key must remain reachable and the keys in
	// the joiner's arc must have moved to it.
	nd := tr.newNode("latecomer")
	tr.do(func() {
		if err := nd.Join(tr.nodes[0].Self().Addr); err != nil {
			t.Errorf("join: %v", err)
		}
	})
	nd.Start()
	tr.nodes = append(tr.nodes, nd)
	tr.settle(5 * time.Second)

	tr.do(func() {
		for _, k := range keys {
			got, err := client.GetH(context.Background(), k, h)
			if err != nil {
				t.Errorf("get %s after join: %v", k, err)
				continue
			}
			if string(got.Data) != string(k) {
				t.Errorf("get %s = %q", k, got.Data)
			}
		}
	})
	owned := 0
	for _, k := range keys {
		if nd.OwnsID(h.ID(k)) {
			owned++
			if _, ok := nd.Store().Get(h.ID(k), dht.Qualifier("test", k, h.Name())); !ok {
				t.Errorf("joiner owns %s but does not store it", k)
			}
		}
	}
	t.Logf("joiner took over %d/50 keys", owned)
}

func TestGracefulLeaveHandsOffKeys(t *testing.T) {
	tr := newTestRing(t, 9)
	tr.build(10, true)
	tr.settle(8 * time.Second)
	client := dht.NewClient(tr.nodes[0], "test")
	h := hashing.Salted{Salt: "h0"}

	keys := make([]core.Key, 40)
	tr.do(func() {
		for i := range keys {
			keys[i] = core.Key(fmt.Sprintf("lk-%d", i))
			val := core.Value{Data: []byte(keys[i]), TS: core.TS(1)}
			if err := client.PutH(context.Background(), keys[i], h, val, dht.PutOverwrite); err != nil {
				t.Errorf("put: %v", err)
			}
		}
	})

	// Pick a non-client node that owns at least one key and make it leave.
	leaver := tr.nodes[4]
	tr.do(func() {
		if err := leaver.Leave(); err != nil {
			t.Errorf("leave: %v", err)
		}
	})
	tr.net.Kill(leaver.Self().Addr)
	tr.settle(5 * time.Second)

	tr.do(func() {
		for _, k := range keys {
			got, err := client.GetH(context.Background(), k, h)
			if err != nil {
				t.Errorf("get %s after leave: %v", k, err)
				continue
			}
			if string(got.Data) != string(k) {
				t.Errorf("get %s = %q", k, got.Data)
			}
		}
	})
	tr.checkRing()
}

func TestCrashLosesDataButRingHeals(t *testing.T) {
	tr := newTestRing(t, 10)
	tr.build(12, true)
	tr.settle(10 * time.Second)
	client := dht.NewClient(tr.nodes[0], "test")
	h := hashing.Salted{Salt: "h0"}

	keys := make([]core.Key, 40)
	tr.do(func() {
		for i := range keys {
			keys[i] = core.Key(fmt.Sprintf("ck-%d", i))
			val := core.Value{Data: []byte(keys[i]), TS: core.TS(1)}
			if err := client.PutH(context.Background(), keys[i], h, val, dht.PutOverwrite); err != nil {
				t.Errorf("put: %v", err)
			}
		}
	})

	victim := tr.nodes[7]
	victimOwned := 0
	for _, k := range keys {
		if victim.OwnsID(h.ID(k)) {
			victimOwned++
		}
	}
	victim.Crash()
	tr.net.Kill(victim.Self().Addr)
	tr.settle(15 * time.Second) // several stabilize+checkPred rounds
	tr.checkRing()

	lost := 0
	tr.do(func() {
		for _, k := range keys {
			if _, err := client.GetH(context.Background(), k, h); err != nil {
				if errors.Is(err, core.ErrNotFound) {
					lost++
					continue
				}
				t.Errorf("get %s after crash: %v", k, err)
			}
		}
	})
	if lost != victimOwned {
		t.Errorf("lost %d keys, victim owned %d", lost, victimOwned)
	}
	t.Logf("crash lost %d/40 keys (victim's share)", lost)
}

func TestAssembleRingInvariants(t *testing.T) {
	tr := newTestRing(t, 11)
	for i := 0; i < 32; i++ {
		tr.nodes = append(tr.nodes, tr.newNode(fmt.Sprintf("node%d", i)))
	}
	AssembleRing(tr.nodes)
	tr.checkRing()

	// Lookups work immediately with assembled fingers.
	rng := tr.k.NewRand("asm")
	for i := 0; i < 30; i++ {
		target := core.ID(rng.Uint64())
		origin := tr.nodes[rng.Intn(len(tr.nodes))]
		want := tr.wantResponsible(target).Self().ID
		tr.do(func() {
			ref, hops, err := origin.Lookup(context.Background(), target)
			if err != nil {
				t.Errorf("lookup: %v", err)
				return
			}
			if ref.ID != want {
				t.Errorf("lookup %s = %s, want %s", target, ref.ID, want)
			}
			if hops > 2*int(math.Log2(32))+2 {
				t.Errorf("assembled ring lookup took %d hops", hops)
			}
		})
	}
}

// Handover hook recording calls, for transfer tests.
type recordingHook struct {
	name      string
	collected int
	accepted  int
	payload   string
}

type hookPayload struct{ Marker string }

func init() { network.RegisterMessage(hookPayload{}) }

func (r *recordingHook) Name() string { return r.name }
func (r *recordingHook) Collect(ceded func(core.ID) bool) network.Message {
	r.collected++
	return hookPayload{Marker: r.payload}
}
func (r *recordingHook) Accept(msg network.Message) {
	r.accepted++
	if msg.(hookPayload).Marker == "" {
		panic("empty handover payload")
	}
}

func TestHandoverHooksFireOnJoinAndLeave(t *testing.T) {
	tr := newTestRing(t, 12)
	tr.build(4, true)
	hooks := make([]*recordingHook, len(tr.nodes))
	for i, nd := range tr.nodes {
		hooks[i] = &recordingHook{name: "svc", payload: fmt.Sprintf("from-%d", i)}
		nd.RegisterHandover(hooks[i])
	}
	tr.settle(3 * time.Second)

	// Join: the joiner's successor must collect; the joiner must accept.
	nd := tr.newNode("hooked")
	joinHook := &recordingHook{name: "svc", payload: "joiner"}
	nd.RegisterHandover(joinHook)
	tr.do(func() {
		if err := nd.Join(tr.nodes[0].Self().Addr); err != nil {
			t.Errorf("join: %v", err)
		}
	})
	collected := 0
	for _, h := range hooks {
		collected += h.collected
	}
	if collected == 0 {
		t.Fatal("no hook collected on join")
	}
	if joinHook.accepted == 0 {
		t.Fatal("joiner accepted nothing")
	}

	// Leave: the leaver collects, its successor accepts.
	nd.Start()
	tr.nodes = append(tr.nodes, nd)
	tr.settle(3 * time.Second)
	before := 0
	for _, h := range hooks {
		before += h.accepted
	}
	tr.do(func() {
		if err := nd.Leave(); err != nil {
			t.Errorf("leave: %v", err)
		}
	})
	tr.net.Kill(nd.Self().Addr)
	if joinHook.collected == 0 {
		t.Fatal("leaver did not collect")
	}
	after := 0
	for _, h := range hooks {
		after += h.accepted
	}
	if after <= before {
		t.Fatal("successor did not accept the leaver's state")
	}
}

func TestChurnConvergence(t *testing.T) {
	tr := newTestRing(t, 13)
	tr.build(20, true)
	tr.settle(10 * time.Second)

	rng := tr.k.NewRand("churn")
	nextName := 100
	// 30 churn events: join, leave or crash.
	for i := 0; i < 30; i++ {
		tr.settle(time.Duration(rng.Intn(1500)) * time.Millisecond)
		alive := tr.aliveSorted()
		switch {
		case rng.Intn(3) == 0 && len(alive) > 8: // crash
			victim := alive[rng.Intn(len(alive))]
			victim.Crash()
			tr.net.Kill(victim.Self().Addr)
		case rng.Intn(2) == 0 && len(alive) > 8: // graceful leave
			leaver := alive[rng.Intn(len(alive))]
			tr.do(func() { leaver.Leave() })
			tr.net.Kill(leaver.Self().Addr)
		default: // join
			nd := tr.newNode(fmt.Sprintf("churn%d", nextName))
			nextName++
			boot := alive[rng.Intn(len(alive))]
			tr.do(func() {
				if err := nd.Join(boot.Self().Addr); err != nil {
					t.Logf("join during churn failed (tolerated): %v", err)
					nd.Crash()
					tr.net.Kill(nd.Self().Addr)
				}
			})
			if nd.Alive() {
				nd.Start()
				tr.nodes = append(tr.nodes, nd)
			}
		}
	}
	// Let the ring converge, then verify invariants and lookups.
	tr.settle(30 * time.Second)
	tr.checkRing()
	for i := 0; i < 20; i++ {
		target := core.ID(rng.Uint64())
		alive := tr.aliveSorted()
		origin := alive[rng.Intn(len(alive))]
		want := tr.wantResponsible(target).Self().ID
		tr.do(func() {
			ref, _, err := origin.Lookup(context.Background(), target)
			if err != nil {
				t.Errorf("post-churn lookup: %v", err)
				return
			}
			if ref.ID != want {
				t.Errorf("post-churn lookup %s = %s, want %s", target, ref.ID, want)
			}
		})
	}
}

func TestOwnsIDRanges(t *testing.T) {
	tr := newTestRing(t, 14)
	tr.build(5, true)
	tr.settle(5 * time.Second)
	sorted := tr.aliveSorted()
	for i, nd := range sorted {
		pred := sorted[(i-1+len(sorted))%len(sorted)]
		inside := pred.Self().ID + 1
		if !nd.OwnsID(inside) {
			t.Errorf("node %s must own %s", nd.Self().ID, core.ID(inside))
		}
		if nd.OwnsID(pred.Self().ID) {
			t.Errorf("node %s must not own its predecessor's ID", nd.Self().ID)
		}
		if !nd.OwnsID(nd.Self().ID) {
			t.Errorf("node %s must own its own ID", nd.Self().ID)
		}
	}
}

func TestCrashedNodeRefusesOperations(t *testing.T) {
	tr := newTestRing(t, 15)
	tr.build(3, false)
	nd := tr.nodes[1]
	nd.Crash()
	tr.do(func() {
		if _, _, err := nd.Lookup(context.Background(), 1); !errors.Is(err, core.ErrStopped) {
			t.Errorf("lookup from crashed node: %v", err)
		}
		if err := nd.Leave(); !errors.Is(err, core.ErrStopped) {
			t.Errorf("leave of crashed node: %v", err)
		}
	})
	if nd.OwnsID(1) {
		t.Fatal("crashed node must not own anything")
	}
	if nd.Store().Len() != 0 {
		t.Fatal("crash must clear the store")
	}
}
