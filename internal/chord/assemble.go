package chord

import (
	"sort"

	"repro/internal/core"
	"repro/internal/dht"
)

// AssembleRing wires a set of fresh nodes into a perfect ring
// administratively: exact predecessors, successor lists and finger
// tables, with no protocol traffic. Large simulations start from an
// assembled ring (building 10,000 peers by sequential joins would
// dominate the experiment), then churn exercises the real join/leave/fail
// paths — the same methodology the paper's simulator uses.
func AssembleRing(nodes []*Node) {
	if len(nodes) == 0 {
		return
	}
	sorted := make([]*Node, len(nodes))
	copy(sorted, nodes)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].self.ID < sorted[j].self.ID })

	n := len(sorted)
	refs := make([]dht.NodeRef, n)
	for i, nd := range sorted {
		refs[i] = nd.self
	}

	// successorOf returns the first node whose ID >= id (wrapping).
	successorOf := func(id core.ID) dht.NodeRef {
		lo := sort.Search(n, func(i int) bool { return refs[i].ID >= id })
		if lo == n {
			lo = 0
		}
		return refs[lo]
	}

	for i, nd := range sorted {
		nd.mu.Lock()
		nd.pred = refs[(i-1+n)%n]
		listLen := nd.cfg.SuccessorListLen
		succs := make([]dht.NodeRef, 0, listLen)
		for j := 1; j <= listLen && j < n+1; j++ {
			succs = append(succs, refs[(i+j)%n])
		}
		if len(succs) == 0 {
			succs = []dht.NodeRef{nd.self}
		}
		nd.setSuccessorsLocked(succs)
		for b := 0; b < M; b++ {
			target := nd.self.ID + core.ID(uint64(1)<<uint(b))
			nd.fingers[b] = successorOf(target)
		}
		nd.mu.Unlock()
	}
}
