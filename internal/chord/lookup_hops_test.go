package chord

import (
	"context"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/network"
)

// TestLookupHopsCountRetriedDeadProbes pins the hop-accounting contract
// of Lookup across retried dead-hop exclusion paths: hops must count
// every remote probe actually made — including probes of peers that
// turned out dead — not just the probes of the attempt that finally
// succeeded. The lookup figure's honesty rests on this: a retry that
// reset the counter would make routing under churn look cheaper than
// the traffic the network carried.
//
// Topology (explicit IDs, no maintenance running, so routing state is
// exactly what AssembleRing installed):
//
//	A=100 → B=200 → C=300 → D=400, target t=350 ∈ (C, D]
//
// Clean, A routes t via its closest preceding finger C in one probe.
// With C crashed: attempt 1 probes C (dead, 1 probe), excludes it;
// attempt 2 routes via B (1 probe), whose successor list skips C and
// answers D. Total probes = 2, and Lookup must report exactly that.
func TestLookupHopsCountRetriedDeadProbes(t *testing.T) {
	tr := newTestRing(t, 77)
	ids := []core.ID{100, 200, 300, 400}
	names := []string{"hopA", "hopB", "hopC", "hopD"}
	nodes := make([]*Node, len(ids))
	for i := range ids {
		ep := tr.net.NewEndpoint(names[i])
		nodes[i] = New(tr.net.Env(), ep, ids[i], testCfg())
	}
	AssembleRing(nodes)
	a, c, d := nodes[0], nodes[2], nodes[3]
	const target = core.ID(350)

	// Clean path: one probe (C answers Done: D owns (300, 400]).
	tr.do(func() {
		ref, hops, err := a.Lookup(context.Background(), target)
		if err != nil {
			t.Fatalf("clean lookup: %v", err)
		}
		if ref.ID != d.Self().ID {
			t.Fatalf("clean lookup resolved %s, want %s", ref.ID, d.Self().ID)
		}
		if hops != 1 {
			t.Fatalf("clean lookup took %d hops, want 1", hops)
		}
	})

	// Kill C silently: the probe of C must still be counted.
	c.Crash()
	tr.net.Kill(c.Self().Addr)
	tr.settle(time.Second)

	tr.do(func() {
		m := &network.Meter{}
		ref, hops, err := a.Lookup(network.WithMeter(context.Background(), m), target)
		if err != nil {
			t.Fatalf("lookup with dead hop: %v", err)
		}
		if ref.ID != d.Self().ID {
			t.Fatalf("lookup with dead hop resolved %s, want %s", ref.ID, d.Self().ID)
		}
		if hops != 2 {
			t.Fatalf("lookup with dead hop reported %d hops, want 2 (dead probe of C + live probe of B)", hops)
		}
		// The meter corroborates: the dead probe sent a request that got
		// no reply, the live probe a full round trip.
		if m.Msgs < hops || m.Msgs > 2*hops {
			t.Errorf("meter counted %d msgs for %d probes, outside [%d, %d]", m.Msgs, hops, hops, 2*hops)
		}
	})

}
