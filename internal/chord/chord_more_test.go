package chord

import (
	"context"
	"fmt"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dht"
	"repro/internal/hashing"
)

// TestAssembledFingersExact verifies the administrative ring constructor
// computes the textbook finger table: finger[i] = successor(self + 2^i).
func TestAssembledFingersExact(t *testing.T) {
	tr := newTestRing(t, 21)
	for i := 0; i < 24; i++ {
		tr.nodes = append(tr.nodes, tr.newNode(fmt.Sprintf("node%d", i)))
	}
	AssembleRing(tr.nodes)
	sorted := tr.aliveSorted()
	succOf := func(id core.ID) core.ID {
		for _, nd := range sorted {
			if nd.Self().ID >= id {
				return nd.Self().ID
			}
		}
		return sorted[0].Self().ID
	}
	for _, nd := range tr.nodes {
		nd.mu.Lock()
		for b := 0; b < M; b++ {
			target := nd.self.ID + core.ID(uint64(1)<<uint(b))
			if got, want := nd.fingers[b].ID, succOf(target); got != want {
				nd.mu.Unlock()
				t.Fatalf("node %s finger[%d] = %s, want %s", nd.self.ID, b, got, want)
			}
		}
		nd.mu.Unlock()
	}
}

// TestStabilizationConvergesWithoutHints disables the join-time
// SuccCandidate shortcut by linking a node with a deliberately stale
// successor and letting periodic stabilization repair it.
func TestStabilizationConvergesWithoutHints(t *testing.T) {
	tr := newTestRing(t, 22)
	tr.build(6, true)
	tr.settle(5 * time.Second)
	tr.checkRing()

	// Corrupt one node's successor pointer to a distant (but live) peer;
	// stabilize must walk it back to the true successor.
	sorted := tr.aliveSorted()
	victim := sorted[0]
	distant := sorted[3]
	victim.setSuccessors([]dht.NodeRef{distant.Self()})
	tr.settle(10 * time.Second)
	tr.checkRing()
}

// TestNoDataHandoffLeavesReplicasBehind verifies the paper's data model:
// with handoff disabled, a graceful leave hands over counters but NOT
// replicas, so the data becomes unavailable at that position.
func TestNoDataHandoffLeavesReplicasBehind(t *testing.T) {
	tr := newTestRing(t, 23)
	cfg := testCfg()
	cfg.NoDataHandoff = true
	first := tr.newNodeWith("node0", cfg)
	first.CreateRing()
	tr.nodes = append(tr.nodes, first)
	for i := 1; i < 8; i++ {
		nd := tr.newNodeWith(fmt.Sprintf("node%d", i), cfg)
		tr.do(func() {
			if err := nd.Join(first.Self().Addr); err != nil {
				t.Errorf("join: %v", err)
			}
		})
		tr.nodes = append(tr.nodes, nd)
	}
	for _, nd := range tr.nodes {
		nd.Start()
	}
	tr.settle(5 * time.Second)

	h := hashing.Salted{Salt: "h0"}
	client := dht.NewClient(tr.nodes[0], "test")
	keys := make([]core.Key, 30)
	tr.do(func() {
		for i := range keys {
			keys[i] = core.Key(fmt.Sprintf("nk-%d", i))
			val := core.Value{Data: []byte(keys[i]), TS: core.TS(1)}
			if err := client.PutH(context.Background(), keys[i], h, val, dht.PutOverwrite); err != nil {
				t.Errorf("put: %v", err)
			}
		}
	})

	leaver := tr.nodes[4]
	leaverOwned := 0
	for _, k := range keys {
		if leaver.OwnsID(h.ID(k)) {
			leaverOwned++
		}
	}
	if leaverOwned == 0 {
		t.Skip("leaver owned no test keys at this seed")
	}
	tr.do(func() {
		if err := leaver.Leave(); err != nil {
			t.Errorf("leave: %v", err)
		}
	})
	tr.net.Kill(leaver.Self().Addr)
	tr.settle(5 * time.Second)

	lost := 0
	tr.do(func() {
		for _, k := range keys {
			if _, err := client.GetH(context.Background(), k, h); err != nil {
				lost++
			}
		}
	})
	if lost != leaverOwned {
		t.Fatalf("lost %d replicas, leaver owned %d — paper model must not hand data over", lost, leaverOwned)
	}
}

// newNodeWith creates a node with an explicit config (helper for the
// NoDataHandoff tests).
func (tr *testRing) newNodeWith(name string, cfg Config) *Node {
	ep := tr.net.NewEndpoint(name)
	return New(tr.net.Env(), ep, hashing.NodeID(name), cfg)
}

// TestLookupFromEveryNode runs a lookup for one target from every peer;
// all must agree on the responsible.
func TestLookupFromEveryNode(t *testing.T) {
	tr := newTestRing(t, 24)
	tr.build(14, true)
	tr.settle(10 * time.Second)
	target := core.ID(0xdeadbeefcafef00d)
	want := tr.wantResponsible(target).Self().ID
	for _, nd := range tr.nodes {
		nd := nd
		tr.do(func() {
			ref, _, err := nd.Lookup(context.Background(), target)
			if err != nil {
				t.Errorf("lookup from %s: %v", nd.Self().ID, err)
				return
			}
			if ref.ID != want {
				t.Errorf("lookup from %s = %s, want %s", nd.Self().ID, ref.ID, want)
			}
		})
	}
}
