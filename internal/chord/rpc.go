package chord

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/dht"
	"repro/internal/network"
)

// Protocol method names.
const (
	methodState    = "chord.State"
	methodFindStep = "chord.FindStep"
	methodNotify   = "chord.Notify"
	methodSuccCand = "chord.SuccCandidate"
	methodPing     = "chord.Ping"
	methodTransfer = "chord.Transfer"
	methodAbsorb   = "chord.Absorb"
	methodPredGone = "chord.PredLeaving"
)

// StateReq asks a node for its view of the ring around itself.
type StateReq struct{}

// StateResp is the node's neighborhood snapshot.
type StateResp struct {
	Self  dht.NodeRef
	Pred  dht.NodeRef
	Succs []dht.NodeRef
}

// FindStepReq advances an iterative lookup by one step.
type FindStepReq struct {
	Target core.ID
	// Exclude lists peers the caller observed dead during this lookup.
	Exclude []core.ID
}

// FindStepResp either concludes the lookup (Done: Next is the
// responsible) or names the next node to ask.
type FindStepResp struct {
	Done bool
	Next dht.NodeRef
}

// NotifyReq tells a node about a possible (closer) predecessor.
type NotifyReq struct{ Candidate dht.NodeRef }

// NotifyResp acknowledges a Notify.
type NotifyResp struct{}

// SuccCandidateReq tells a node about a possible (closer) successor;
// joiners send it to their predecessor-to-be so the ring converges
// without waiting a stabilization round.
type SuccCandidateReq struct{ Candidate dht.NodeRef }

// SuccCandidateResp acknowledges a SuccCandidate.
type SuccCandidateResp struct{}

// PingReq probes liveness.
type PingReq struct{}

// PingResp acknowledges a ping.
type PingResp struct{}

// TransferReq is sent by a joiner to its successor-to-be: "I am your new
// predecessor; hand over my arc".
type TransferReq struct{ NewNode dht.NodeRef }

// TransferResp carries the ceded replicas and service state, plus ring
// bootstrap information for the joiner.
type TransferResp struct {
	Items    []dht.Item
	Services map[string]network.Message
	// Pred is the joiner's predecessor (the responder's previous one).
	Pred dht.NodeRef
	// Succs seeds the joiner's successor list.
	Succs []dht.NodeRef
	// Fingers seeds the joiner's finger table; entries are validated on
	// use, so a stale copy only costs extra hops, never correctness.
	Fingers []dht.NodeRef
}

// WireSize charges the bulk payload against the bandwidth model.
func (r TransferResp) WireSize() int { return bulkSize(r.Items) }

// AbsorbReq pushes replicas and service state to the node that is (or is
// becoming) responsible for them. It serves both graceful leaves and the
// opportunistic push when a node discovers a closer predecessor.
type AbsorbReq struct {
	From     dht.NodeRef
	Items    []dht.Item
	Services map[string]network.Message
	// NewPred, when set with Departing, is the leaver's predecessor: the
	// receiver adopts it if the leaver was its predecessor.
	NewPred dht.NodeRef
	// Departing marks From as leaving the ring.
	Departing bool
}

// WireSize charges the bulk payload against the bandwidth model.
func (r AbsorbReq) WireSize() int { return bulkSize(r.Items) }

// AbsorbResp acknowledges an Absorb.
type AbsorbResp struct{}

// PredLeavingReq tells a node its successor is departing and names the
// replacements (the leaver's successor list).
type PredLeavingReq struct {
	Departing    dht.NodeRef
	Replacements []dht.NodeRef
}

// PredLeavingResp acknowledges a PredLeaving.
type PredLeavingResp struct{}

func bulkSize(items []dht.Item) int {
	n := network.DefaultWireSize
	for _, it := range items {
		n += 40 + len(it.Qual) + len(it.Val.Data)
	}
	return n
}

func init() {
	network.RegisterMessage(
		StateReq{}, StateResp{},
		FindStepReq{}, FindStepResp{},
		NotifyReq{}, NotifyResp{},
		SuccCandidateReq{}, SuccCandidateResp{},
		PingReq{}, PingResp{},
		TransferReq{}, TransferResp{},
		AbsorbReq{}, AbsorbResp{},
		PredLeavingReq{}, PredLeavingResp{},
		map[string]network.Message{},
	)
}

// registerHandlers wires the protocol onto the node's endpoint.
func (n *Node) registerHandlers() {
	n.ep.Handle(methodState, func(network.Addr, network.Message) (network.Message, error) {
		if !n.Alive() {
			return nil, core.ErrStopped
		}
		pred, succs := n.snapshot()
		return StateResp{Self: n.self, Pred: pred, Succs: succs}, nil
	})

	n.ep.Handle(methodFindStep, func(_ network.Addr, req network.Message) (network.Message, error) {
		if !n.Alive() {
			return nil, core.ErrStopped
		}
		r := req.(FindStepReq)
		return n.findStep(r.Target, toSet(r.Exclude)), nil
	})

	n.ep.Handle(methodPing, func(network.Addr, network.Message) (network.Message, error) {
		if !n.Alive() {
			return nil, core.ErrStopped
		}
		return PingResp{}, nil
	})

	n.ep.Handle(methodNotify, func(_ network.Addr, req network.Message) (network.Message, error) {
		if !n.Alive() {
			return nil, core.ErrStopped
		}
		n.notify(req.(NotifyReq).Candidate)
		return NotifyResp{}, nil
	})

	n.ep.Handle(methodSuccCand, func(_ network.Addr, req network.Message) (network.Message, error) {
		if !n.Alive() {
			return nil, core.ErrStopped
		}
		cand := req.(SuccCandidateReq).Candidate
		n.mu.Lock()
		if cand.ID.InOpenInterval(n.self.ID, n.succs[0].ID) {
			n.setSuccessorsLocked(append([]dht.NodeRef{cand}, n.succs...))
		}
		n.mu.Unlock()
		return SuccCandidateResp{}, nil
	})

	n.ep.Handle(methodTransfer, func(_ network.Addr, req network.Message) (network.Message, error) {
		if !n.Alive() {
			return nil, core.ErrStopped
		}
		return n.handleTransfer(req.(TransferReq)), nil
	})

	n.ep.Handle(methodAbsorb, func(_ network.Addr, req network.Message) (network.Message, error) {
		if !n.Alive() {
			return nil, core.ErrStopped
		}
		n.handleAbsorb(req.(AbsorbReq))
		return AbsorbResp{}, nil
	})

	n.ep.Handle(methodPredGone, func(_ network.Addr, req network.Message) (network.Message, error) {
		if !n.Alive() {
			return nil, core.ErrStopped
		}
		r := req.(PredLeavingReq)
		n.mu.Lock()
		// Splice the departing successor out, falling back to its own
		// successor list.
		merged := make([]dht.NodeRef, 0, len(n.succs)+len(r.Replacements))
		for _, s := range n.succs {
			if s.ID == r.Departing.ID {
				merged = append(merged, r.Replacements...)
			} else {
				merged = append(merged, s)
			}
		}
		n.setSuccessorsLocked(merged)
		n.mu.Unlock()
		return PredLeavingResp{}, nil
	})
}

func toSet(ids []core.ID) map[core.ID]bool {
	if len(ids) == 0 {
		return nil
	}
	m := make(map[core.ID]bool, len(ids))
	for _, id := range ids {
		m[id] = true
	}
	return m
}

// findStep implements one iterative lookup step (also used locally for
// step zero, costing no message).
func (n *Node) findStep(target core.ID, exclude map[core.ID]bool) FindStepResp {
	n.mu.Lock()
	defer n.mu.Unlock()
	// First successor the caller still believes alive.
	succ := n.self
	for _, s := range n.succs {
		if !exclude[s.ID] {
			succ = s
			break
		}
	}
	if target.Between(n.self.ID, succ.ID) {
		return FindStepResp{Done: true, Next: succ}
	}
	next := n.closestPrecedingLocked(target, exclude)
	if next.ID == n.self.ID {
		// Nothing better than ourselves: the successor is our best
		// answer even though the interval check failed (converging ring).
		return FindStepResp{Done: true, Next: succ}
	}
	return FindStepResp{Next: next}
}

// closestPrecedingLocked scans fingers (highest first) and the successor
// list for the closest peer strictly preceding target.
func (n *Node) closestPrecedingLocked(target core.ID, exclude map[core.ID]bool) dht.NodeRef {
	best := n.self
	consider := func(r dht.NodeRef) {
		if r.IsZero() || exclude[r.ID] || r.ID == n.self.ID {
			return
		}
		if !r.ID.InOpenInterval(n.self.ID, target) {
			return
		}
		// Closest = the one whose ID is farthest along toward target,
		// i.e. best so far precedes it.
		if best.ID == n.self.ID || r.ID.InOpenInterval(best.ID, target) {
			best = r
		}
	}
	for i := M - 1; i >= 0; i-- {
		consider(n.fingers[i])
	}
	for _, s := range n.succs {
		consider(s)
	}
	return best
}

// notify handles "candidate might be your predecessor". When the
// predecessor moves closer, this node has ceded the arc
// (oldPred, candidate] — it pushes any state it still holds for that arc
// to the new responsible (the RLA behaviour of §4.3, and the direct
// counter handoff when the transfer path was missed).
func (n *Node) notify(candidate dht.NodeRef) {
	n.mu.Lock()
	if candidate.ID == n.self.ID {
		n.mu.Unlock()
		return
	}
	adopt := n.pred.IsZero() || candidate.ID.InOpenInterval(n.pred.ID, n.self.ID)
	if !adopt {
		n.mu.Unlock()
		return
	}
	oldPred := n.pred
	n.pred = candidate
	n.mu.Unlock()

	ceded := func(id core.ID) bool {
		if oldPred.IsZero() {
			return !id.Between(candidate.ID, n.self.ID)
		}
		return id.Between(oldPred.ID, candidate.ID)
	}
	n.pushState(candidate, ceded, false, dht.NodeRef{})
}

// handleTransfer serves a joiner pulling its arc: adopt it as
// predecessor, cede replicas and service state, and seed its tables.
func (n *Node) handleTransfer(req TransferReq) TransferResp {
	n.mu.Lock()
	oldPred := n.pred
	joiner := req.NewNode
	// Adopt the joiner as predecessor if it is closer (or we had none).
	if n.pred.IsZero() || joiner.ID.InOpenInterval(n.pred.ID, n.self.ID) {
		n.pred = joiner
	}
	// Snapshot the list for the joiner before considering the joiner
	// itself as a successor candidate (a node must not be seeded with
	// itself as its own backup successor).
	succs := make([]dht.NodeRef, len(n.succs))
	copy(succs, n.succs)
	// A joiner is also a successor candidate: essential when this node
	// still believes it is its own successor (ring bootstrap).
	if n.succs[0].ID == n.self.ID || joiner.ID.InOpenInterval(n.self.ID, n.succs[0].ID) {
		n.setSuccessorsLocked(append([]dht.NodeRef{joiner}, n.succs...))
	}
	fingers := make([]dht.NodeRef, M)
	copy(fingers, n.fingers[:])
	n.mu.Unlock()

	ceded := func(id core.ID) bool {
		if oldPred.IsZero() {
			return !id.Between(joiner.ID, n.self.ID)
		}
		return id.Between(oldPred.ID, joiner.ID)
	}
	var items []dht.Item
	if !n.cfg.NoDataHandoff {
		items = n.store.CollectIf(ceded, true)
	}
	services := n.collectServices(ceded)
	return TransferResp{
		Items:    items,
		Services: services,
		Pred:     oldPred,
		Succs:    append([]dht.NodeRef{n.self}, succs...),
		Fingers:  fingers,
	}
}

// handleAbsorb installs pushed state; on a departure it also repairs the
// predecessor pointer.
func (n *Node) handleAbsorb(req AbsorbReq) {
	n.store.Absorb(req.Items)
	n.acceptServices(req.Services)
	if req.Departing {
		n.mu.Lock()
		if !n.pred.IsZero() && n.pred.ID == req.From.ID {
			n.pred = req.NewPred
		}
		// Drop the leaver from the successor list if present.
		var keep []dht.NodeRef
		for _, s := range n.succs {
			if s.ID != req.From.ID {
				keep = append(keep, s)
			}
		}
		n.setSuccessorsLocked(keep)
		n.mu.Unlock()
	}
}

// collectServices gathers handover payloads for the ceded range.
func (n *Node) collectServices(ceded func(core.ID) bool) map[string]network.Message {
	n.mu.Lock()
	hooks := make([]dht.Handover, len(n.handover))
	copy(hooks, n.handover)
	n.mu.Unlock()
	var out map[string]network.Message
	for _, h := range hooks {
		if msg := h.Collect(ceded); msg != nil {
			if out == nil {
				out = make(map[string]network.Message)
			}
			out[h.Name()] = msg
		}
	}
	return out
}

// acceptServices routes handover payloads to local services.
func (n *Node) acceptServices(payloads map[string]network.Message) {
	if len(payloads) == 0 {
		return
	}
	n.mu.Lock()
	hooks := make([]dht.Handover, len(n.handover))
	copy(hooks, n.handover)
	n.mu.Unlock()
	for _, h := range hooks {
		if msg, ok := payloads[h.Name()]; ok {
			h.Accept(msg)
		}
	}
}

// pushState asynchronously sends replicas and service state for a ceded
// arc to its new responsible.
func (n *Node) pushState(to dht.NodeRef, ceded func(core.ID) bool, departing bool, newPred dht.NodeRef) {
	var items []dht.Item
	if !n.cfg.NoDataHandoff {
		items = n.store.CollectIf(ceded, true)
	}
	services := n.collectServices(ceded)
	if len(items) == 0 && len(services) == 0 && !departing {
		return
	}
	req := AbsorbReq{From: n.self, Items: items, Services: services, Departing: departing, NewPred: newPred}
	n.env.Go(func() {
		if _, err := n.call(context.Background(), to.Addr, methodAbsorb, req); err != nil {
			// The new responsible is unreachable; nothing to do — the
			// state is lost exactly as if this node had crashed, and the
			// indirect algorithm will recover counters.
			_ = fmt.Sprintf("absorb push to %s failed: %v", to.Addr, err)
		}
	})
}
