package chord

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/dht"
	"repro/internal/network"
	"repro/internal/obs"
)

// Lookup implements dht.Ring: it finds the peer responsible for target by
// iterative routing from this node, restarting with an exclusion set when
// it runs into dead peers. hops counts remote routing steps, so the
// communication cost of a lookup is 2*hops messages (request + reply per
// step), the paper's cret = O(log n). The context bounds the whole walk
// and carries the meter the hops are charged to.
func (n *Node) Lookup(ctx context.Context, target core.ID) (ref dht.NodeRef, hops int, err error) {
	if !n.Alive() {
		return dht.NodeRef{}, 0, fmt.Errorf("chord: lookup from dead node: %w", core.ErrStopped)
	}
	n.metrics.lookups.Inc()
	start := n.env.Now()
	defer func() {
		// Routing time is charged to the surrounding operation's lookup
		// phase; the hop count feeds the per-node routing histogram.
		obs.PhasesFrom(ctx).Add(obs.PhaseLookup, n.env.Now()-start)
		if err == nil {
			n.metrics.hops.ObserveValue(int64(hops))
		} else {
			n.metrics.lookupFails.Inc()
		}
	}()
	exclude := map[core.ID]bool{}
	var lastErr error
	for attempt := 0; attempt <= n.cfg.LookupRetries; attempt++ {
		if cerr := network.CtxError(ctx); cerr != nil {
			return dht.NodeRef{}, hops, fmt.Errorf("chord: lookup %s: %w", target, cerr)
		}
		r, h, lerr := n.lookupOnce(ctx, target, exclude)
		hops += h
		if lerr == nil {
			return r, hops, nil
		}
		lastErr = lerr
		if !errors.Is(lerr, core.ErrTimeout) && !errors.Is(lerr, core.ErrUnreachable) {
			break
		}
		// A peer died mid-lookup; it is now excluded — try again.
	}
	return dht.NodeRef{}, hops, fmt.Errorf("chord: lookup %s: %w", target, lastErr)
}

// lookupOnce performs one routing walk. Peers that time out are added to
// exclude so the retry routes around them.
func (n *Node) lookupOnce(ctx context.Context, target core.ID, exclude map[core.ID]bool) (dht.NodeRef, int, error) {
	cur := n.self
	hops := 0
	visited := map[core.ID]bool{}
	for step := 0; step < n.cfg.MaxLookupSteps; step++ {
		var resp FindStepResp
		if cur.ID == n.self.ID {
			resp = n.findStep(target, exclude)
		} else {
			if visited[cur.ID] {
				return dht.NodeRef{}, hops, fmt.Errorf("chord: routing loop at %s for %s: %w",
					cur.ID, target, core.ErrUnreachable)
			}
			visited[cur.ID] = true
			raw, err := n.call(ctx, cur.Addr, methodFindStep,
				FindStepReq{Target: target, Exclude: setToList(exclude)})
			hops++
			if err != nil {
				// Dead peers are silence on the simulated transport
				// (timeout) and connection refusals on TCP (unreachable);
				// either way, route around them.
				if errors.Is(err, core.ErrTimeout) || errors.Is(err, core.ErrStopped) ||
					errors.Is(err, core.ErrUnreachable) {
					exclude[cur.ID] = true
					return dht.NodeRef{}, hops, fmt.Errorf("chord: peer %s dead during lookup: %w",
						cur.ID, core.ErrTimeout)
				}
				return dht.NodeRef{}, hops, err
			}
			resp = raw.(FindStepResp)
		}
		if resp.Done {
			return resp.Next, hops, nil
		}
		if resp.Next.IsZero() || resp.Next.ID == cur.ID {
			return cur, hops, nil
		}
		cur = resp.Next
	}
	return dht.NodeRef{}, hops, fmt.Errorf("chord: lookup for %s exceeded %d steps: %w",
		target, n.cfg.MaxLookupSteps, core.ErrUnreachable)
}

func setToList(m map[core.ID]bool) []core.ID {
	if len(m) == 0 {
		return nil
	}
	out := make([]core.ID, 0, len(m))
	for id := range m {
		out = append(out, id)
	}
	return out
}
