package chord

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/dht"
	"repro/internal/network"
)

// Join attaches this node to the ring reachable through bootstrap: it
// resolves its successor, pulls its arc (replicas and service counters —
// the direct algorithm's handoff), seeds its tables, and nudges its
// predecessor so the ring converges without waiting for stabilization.
func (n *Node) Join(bootstrap network.Addr) error {
	ctx := context.Background()
	// Resolve our successor through the bootstrap peer, restarting with
	// an exclusion set when the walk runs into dead peers — the same
	// route-around Lookup does. A join during churn (or a restarted node
	// rejoining its own crashed neighborhood) would otherwise be steered
	// into the same stale finger on every attempt.
	exclude := map[core.ID]bool{}
	var succ dht.NodeRef
	var err error
	for attempt := 0; ; attempt++ {
		succ, err = n.joinWalk(ctx, bootstrap, exclude)
		if err == nil {
			break
		}
		dead := errors.Is(err, core.ErrTimeout) || errors.Is(err, core.ErrStopped) ||
			errors.Is(err, core.ErrUnreachable)
		if !dead || attempt >= n.cfg.LookupRetries {
			return err
		}
	}
	if succ.ID == n.self.ID {
		// ID collision: with 64-bit hashed IDs this is effectively
		// impossible; treat as a failed join.
		return fmt.Errorf("chord: id collision on join: %w", core.ErrUnreachable)
	}

	// Pull our arc from the successor (replicas + service state).
	raw, err := n.call(ctx, succ.Addr, methodTransfer, TransferReq{NewNode: n.self})
	if err != nil {
		return fmt.Errorf("chord: join transfer from %s: %w", succ.Addr, err)
	}
	tr := raw.(TransferResp)

	n.mu.Lock()
	n.pred = tr.Pred
	n.setSuccessorsLocked(tr.Succs)
	for i, f := range tr.Fingers {
		if i < M {
			n.fingers[i] = f
		}
	}
	n.mu.Unlock()
	n.store.Absorb(tr.Items)
	n.acceptServices(tr.Services)

	// Tell our predecessor we are its successor candidate so inserts
	// routed through it reach us immediately.
	if !tr.Pred.IsZero() {
		n.env.Go(func() {
			n.call(context.Background(), tr.Pred.Addr, methodSuccCand, SuccCandidateReq{Candidate: n.self})
		})
	}
	return nil
}

// joinWalk routes one successor resolution for this node's own ID from
// the bootstrap, honoring exclude. A hop that times out is added to
// exclude so the caller's retry routes around it; a repeated hop means
// the walk is cycling through stale state and aborts.
func (n *Node) joinWalk(ctx context.Context, bootstrap network.Addr, exclude map[core.ID]bool) (dht.NodeRef, error) {
	raw, err := n.call(ctx, bootstrap, methodFindStep,
		FindStepReq{Target: n.self.ID, Exclude: setToList(exclude)})
	if err != nil {
		return dht.NodeRef{}, fmt.Errorf("chord: join via %s: %w", bootstrap, err)
	}
	step := raw.(FindStepResp)
	cur := step.Next
	visited := map[core.ID]bool{}
	for !step.Done {
		if visited[cur.ID] {
			return dht.NodeRef{}, fmt.Errorf("chord: join routing loop at %s: %w", cur.ID, core.ErrUnreachable)
		}
		visited[cur.ID] = true
		raw, err = n.call(ctx, cur.Addr, methodFindStep,
			FindStepReq{Target: n.self.ID, Exclude: setToList(exclude)})
		if err != nil {
			if errors.Is(err, core.ErrTimeout) || errors.Is(err, core.ErrStopped) ||
				errors.Is(err, core.ErrUnreachable) {
				exclude[cur.ID] = true
			}
			return dht.NodeRef{}, fmt.Errorf("chord: join routing via %s: %w", cur.Addr, err)
		}
		step = raw.(FindStepResp)
		if step.Next.IsZero() || (!step.Done && step.Next.ID == cur.ID) {
			break
		}
		cur = step.Next
	}
	if step.Next.IsZero() {
		return dht.NodeRef{}, fmt.Errorf("chord: join found no successor: %w", core.ErrUnreachable)
	}
	return step.Next, nil
}

// Nudge re-introduces this node to the ring reachable through bootstrap
// — the rendezvous step after a network partition heals. During a split
// each side stabilizes into its own ring; once disjoint, no periodic
// message ever crosses them, so stabilization alone cannot re-merge
// (every deployed DHT needs an out-of-band rendezvous here). Nudge
// routes a lookup for this node's own successor position through the
// bootstrap's ring, adopts the result as a successor candidate when it
// sits closer than the current successor, and notifies it — with every
// healed peer nudged through the other side, each node learns its true
// global successor and stabilization converges the merged ring.
func (n *Node) Nudge(bootstrap network.Addr) error {
	if !n.Alive() {
		return core.ErrStopped
	}
	ctx := context.Background()
	target := n.self.ID + 1
	// Bounded, loop-guarded walk (like lookupOnce, but rooted at the
	// bootstrap, not at this node — routing must happen on the *other*
	// ring): post-heal routing state is exactly when stale fingers can
	// form cycles, so an unguarded walk could spin forever.
	raw, err := n.call(ctx, bootstrap, methodFindStep, FindStepReq{Target: target})
	if err != nil {
		return fmt.Errorf("chord: nudge via %s: %w", bootstrap, err)
	}
	step := raw.(FindStepResp)
	cur := step.Next
	visited := map[core.ID]bool{}
	for hop := 0; !step.Done && hop < n.cfg.MaxLookupSteps; hop++ {
		if visited[cur.ID] {
			break // routing loop mid-merge; cur is still a usable candidate
		}
		visited[cur.ID] = true
		raw, err = n.call(ctx, cur.Addr, methodFindStep, FindStepReq{Target: target})
		if err != nil {
			return fmt.Errorf("chord: nudge routing via %s: %w", cur.Addr, err)
		}
		step = raw.(FindStepResp)
		if step.Next.IsZero() || (!step.Done && step.Next.ID == cur.ID) {
			break
		}
		cur = step.Next
	}
	cand := step.Next
	if cand.IsZero() || cand.ID == n.self.ID {
		return nil
	}
	n.mu.Lock()
	if len(n.succs) > 0 && cand.ID.InOpenInterval(n.self.ID, n.succs[0].ID) {
		n.setSuccessorsLocked(append([]dht.NodeRef{cand}, n.succs...))
	}
	n.mu.Unlock()
	// Tell the candidate about us either way: if we sit between it and
	// its predecessor it adopts us, which is how the other ring learns
	// this side exists.
	_, err = n.call(ctx, cand.Addr, methodNotify, NotifyReq{Candidate: n.self})
	return err
}

// Leave departs gracefully (§4.2.1's "normal" departure): the node hands
// its entire arc — replicas and KTS counters — to its successor in O(1)
// messages and tells its predecessor to splice it out. Afterwards the
// node is dead.
func (n *Node) Leave() error {
	n.mu.Lock()
	if !n.alive {
		n.mu.Unlock()
		return core.ErrStopped
	}
	n.alive = false // stop accepting protocol traffic
	pred := n.pred
	succs := make([]dht.NodeRef, len(n.succs))
	copy(succs, n.succs)
	n.mu.Unlock()

	var firstErr error
	if len(succs) > 0 && succs[0].ID != n.self.ID {
		everything := func(core.ID) bool { return true }
		var items []dht.Item
		if !n.cfg.NoDataHandoff {
			items = n.store.CollectIf(everything, true)
		}
		services := n.collectServices(everything)
		req := AbsorbReq{From: n.self, Items: items, Services: services, Departing: true, NewPred: pred}
		if _, err := n.call(context.Background(), succs[0].Addr, methodAbsorb, req); err != nil {
			firstErr = fmt.Errorf("chord: leave handoff to %s: %w", succs[0].Addr, err)
		}
	}
	if !pred.IsZero() && pred.ID != n.self.ID {
		req := PredLeavingReq{Departing: n.self, Replacements: succs}
		if _, err := n.call(context.Background(), pred.Addr, methodPredGone, req); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("chord: leave notice to %s: %w", pred.Addr, err)
		}
	}
	return firstErr
}

// Start launches the periodic maintenance tasks: stabilize (successor
// repair + notify), finger repair, and predecessor liveness checks. Each
// node jitters its period so rounds do not synchronize.
func (n *Node) Start() {
	n.mu.Lock()
	if n.started || !n.alive {
		n.mu.Unlock()
		return
	}
	n.started = true
	n.mu.Unlock()

	// Each task derives its own jitter stream: on the real deployment the
	// three loops run as concurrent goroutines, and a shared rand.Rand is
	// not synchronized.
	task := func(label string, period time.Duration, run func()) {
		rng := n.env.Rand("chord-" + label + ":" + string(n.self.Addr))
		n.env.Go(func() {
			for n.Alive() {
				jitter := time.Duration(rng.Int63n(int64(period)/4 + 1))
				if err := n.env.Sleep(period + jitter); err != nil {
					return
				}
				if !n.Alive() {
					return
				}
				run()
			}
		})
	}
	task("stabilize", n.cfg.StabilizeEvery, n.stabilize)
	task("fingers", n.cfg.FixFingersEvery, n.fixNextFinger)
	task("checkpred", n.cfg.CheckPredEvery, n.checkPredecessor)
}

// stabilize is Chord's core repair: find the first live successor, adopt
// its predecessor if closer, refresh the successor list and notify.
func (n *Node) stabilize() {
	n.metrics.stabilizeRounds.Inc()
	_, succs := n.snapshot()
	var succ dht.NodeRef
	var state StateResp
	found := false
	sawOther := false
	dead := map[core.ID]bool{}
	for _, s := range succs {
		if s.ID == n.self.ID {
			continue
		}
		sawOther = true
		raw, err := n.call(context.Background(), s.Addr, methodState, StateReq{})
		if err != nil {
			dead[s.ID] = true
			continue
		}
		succ = s
		state = raw.(StateResp)
		found = true
		break
	}
	if !found {
		if !sawOther {
			return // singleton ring, nothing to repair
		}
		// The whole successor list is unreachable; try to rejoin through
		// the finger table, verifying the candidate is actually alive.
		if ref, _, err := n.Lookup(context.Background(), n.self.ID+1); err == nil && ref.ID != n.self.ID {
			if _, err := n.call(context.Background(), ref.Addr, methodState, StateReq{}); err == nil {
				n.setSuccessors([]dht.NodeRef{ref})
				return
			}
		}
		// Nobody reachable: degrade to a singleton; future Notify and
		// SuccCandidate messages re-link us.
		n.setSuccessors([]dht.NodeRef{n.self})
		return
	}

	// Adopt succ's predecessor when it sits between us and succ.
	if !state.Pred.IsZero() && state.Pred.ID.InOpenInterval(n.self.ID, succ.ID) && !dead[state.Pred.ID] {
		if raw, err := n.call(context.Background(), state.Pred.Addr, methodState, StateReq{}); err == nil {
			succ = state.Pred
			state = raw.(StateResp)
		}
	}

	// Refresh the successor list: succ followed by its list.
	n.setSuccessors(append([]dht.NodeRef{succ}, state.Succs...))

	// Tell succ about us.
	n.env.Go(func() {
		n.call(context.Background(), succ.Addr, methodNotify, NotifyReq{Candidate: n.self})
	})
}

// fixNextFinger repairs one finger (round robin), the classic
// fix_fingers task.
func (n *Node) fixNextFinger() {
	n.mu.Lock()
	i := n.nextFix
	n.nextFix = (n.nextFix + 1) % M
	n.mu.Unlock()
	target := n.self.ID + core.ID(uint64(1)<<uint(i))
	ref, _, err := n.Lookup(context.Background(), target)
	if err != nil {
		n.metrics.fingerFixFails.Inc()
		return
	}
	n.mu.Lock()
	n.fingers[i] = ref
	n.mu.Unlock()
}

// checkPredecessor clears a dead predecessor so Notify can install a new
// one (and so OwnsID degrades to "assume responsible" instead of pointing
// at a ghost).
func (n *Node) checkPredecessor() {
	pred, _ := n.snapshot()
	if pred.IsZero() || pred.ID == n.self.ID {
		return
	}
	if _, err := n.call(context.Background(), pred.Addr, methodPing, PingReq{}); err != nil {
		if errors.Is(err, core.ErrTimeout) || errors.Is(err, core.ErrStopped) || errors.Is(err, core.ErrUnreachable) {
			n.mu.Lock()
			if n.pred.ID == pred.ID {
				n.pred = dht.NodeRef{}
			}
			n.mu.Unlock()
		}
	}
}
