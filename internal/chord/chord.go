// Package chord implements the Chord DHT (Stoica et al., SIGCOMM 2001),
// the substrate on which the paper implements UMS and KTS (§5.1):
// a 64-bit identifier ring with successor lists, finger tables, periodic
// stabilization, graceful leaves with key handoff, and crash failures
// detected by timeout.
//
// The implementation is deliberately faithful on the points the paper
// relies on:
//
//   - the next responsible for a key is always a neighbor of the current
//     responsible (§4.2.1.1), which makes the direct counter-transfer
//     algorithm O(1) messages;
//   - Chord is Responsibility-Loss Aware (§4.3): a peer detects that a
//     joiner took over part of its arc (Transfer/Notify) and hands over
//     stored replicas and service state (KTS counters) at that moment;
//   - crashed peers lose their store, so replica availability degrades
//     with the failure rate exactly as the paper's model assumes.
//
// Lookups are iterative and caller-driven so the querying peer observes
// every routing hop, which is how the evaluation counts communication
// cost.
package chord

import (
	"context"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/dht"
	"repro/internal/network"
	"repro/internal/obs"
	"repro/internal/store"
)

// M is the identifier width in bits: the ring has 2^64 positions.
const M = 64

// Config tunes protocol behaviour. Zero fields take defaults.
type Config struct {
	// SuccessorListLen is the resilience of the ring under failures
	// (Chord keeps the r nearest successors). Default 8.
	SuccessorListLen int
	// StabilizeEvery is the period of the stabilize task. Default 30s.
	StabilizeEvery time.Duration
	// FixFingersEvery is the period of the finger-repair task (one
	// finger per tick, round robin). Default 45s.
	FixFingersEvery time.Duration
	// CheckPredEvery is the period of the predecessor liveness probe.
	// Default 30s.
	CheckPredEvery time.Duration
	// RPCTimeout bounds every protocol RPC; zero uses the transport
	// default (the failure-detection patience).
	RPCTimeout time.Duration
	// MaxLookupSteps bounds one routing walk. Default 3*M.
	MaxLookupSteps int
	// LookupRetries is how many times a lookup restarts from the local
	// node after hitting a dead peer (excluding it). Default 3.
	LookupRetries int
	// NoDataHandoff disables moving stored replicas on responsibility
	// changes (joins, graceful leaves). Service state (KTS counters)
	// still moves — that is the paper's direct algorithm. The paper's
	// DHT model (§2) has no data handoff: a replica whose responsible
	// departs becomes unavailable until the next update re-inserts it,
	// which is exactly what drives the probability of currency and
	// availability below 1. The evaluation harness enables this flag;
	// library deployments keep handoff on by default.
	NoDataHandoff bool
	// Store, when non-nil, backs the node's replica store (and, if the
	// deployment shares the unit, its KTS counters). Nil keeps the
	// volatile default: a crash loses everything, the paper's fail-stop
	// model. A durable backing (store.WAL, the sim depot) instead
	// survives into the §4.2.2 restart path.
	Store store.Store
	// Obs receives routing metrics (lookup hop counts and failures,
	// stabilize rounds, finger-fix failures). Nil disables export; the
	// metrics are still maintained but unregistered.
	Obs *obs.Registry
}

func (c Config) withDefaults() Config {
	if c.SuccessorListLen == 0 {
		c.SuccessorListLen = 8
	}
	if c.StabilizeEvery == 0 {
		c.StabilizeEvery = 30 * time.Second
	}
	if c.FixFingersEvery == 0 {
		c.FixFingersEvery = 45 * time.Second
	}
	if c.CheckPredEvery == 0 {
		c.CheckPredEvery = 30 * time.Second
	}
	if c.MaxLookupSteps == 0 {
		c.MaxLookupSteps = 3 * M
	}
	if c.LookupRetries == 0 {
		c.LookupRetries = 3
	}
	return c
}

// Node is one Chord peer.
type Node struct {
	env   network.Env
	ep    network.Endpoint
	cfg   Config
	self  dht.NodeRef
	store *dht.LocalStore

	mu       sync.Mutex
	pred     dht.NodeRef // zero when unknown
	succs    []dht.NodeRef
	fingers  [M]dht.NodeRef
	nextFix  int
	alive    bool
	started  bool
	handover []dht.Handover

	metrics chordMetrics
}

var _ dht.RingNode = (*Node)(nil)

// chordMetrics are the ring's routing/maintenance observables. They use
// only atomic counters and the locked histogram — never the clock or a
// random stream — so instrumentation cannot perturb a simulation replay.
type chordMetrics struct {
	hops            *obs.Histogram
	lookups         *obs.Counter
	lookupFails     *obs.Counter
	stabilizeRounds *obs.Counter
	fingerFixFails  *obs.Counter
}

func newChordMetrics(r *obs.Registry) chordMetrics {
	return chordMetrics{
		hops: r.ValueHistogram("dcdht_chord_lookup_hops",
			"Remote routing steps per completed lookup."),
		lookups: r.Counter("dcdht_chord_lookups_total",
			"Lookups issued from this node."),
		lookupFails: r.Counter("dcdht_chord_lookup_failures_total",
			"Lookups that exhausted retries without resolving a responsible."),
		stabilizeRounds: r.Counter("dcdht_chord_stabilize_rounds_total",
			"Stabilize task rounds executed."),
		fingerFixFails: r.Counter("dcdht_chord_finger_fix_failures_total",
			"Finger-repair lookups that failed (stale finger kept)."),
	}
}

// New creates a node with the given identity on an endpoint. Call
// CreateRing or Join before Start.
func New(env network.Env, ep network.Endpoint, id core.ID, cfg Config) *Node {
	n := &Node{
		env:     env,
		ep:      ep,
		cfg:     cfg.withDefaults(),
		self:    dht.NodeRef{ID: id, Addr: ep.Addr()},
		alive:   true,
		metrics: newChordMetrics(cfg.Obs),
	}
	if cfg.Store != nil {
		n.store = dht.NewLocalStoreOn(cfg.Store)
	} else {
		n.store = dht.NewLocalStore()
	}
	n.succs = []dht.NodeRef{n.self}
	n.registerHandlers()
	dht.RegisterStore(ep, n.store, n.OwnsID)
	return n
}

// Self implements dht.Ring.
func (n *Node) Self() dht.NodeRef { return n.self }

// Endpoint implements dht.Ring.
func (n *Node) Endpoint() network.Endpoint { return n.ep }

// Env implements dht.Ring.
func (n *Node) Env() network.Env { return n.env }

// Store exposes the local replica store (tests and handover paths).
func (n *Node) Store() *dht.LocalStore { return n.store }

// Config returns the effective configuration.
func (n *Node) Config() Config { return n.cfg }

// Alive implements dht.Ring.
func (n *Node) Alive() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.alive
}

// RegisterHandover attaches a service to responsibility transfers.
func (n *Node) RegisterHandover(h dht.Handover) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.handover = append(n.handover, h)
}

// OwnsID implements dht.Ring: the node is responsible for id iff id lies
// in (pred, self]. With no known predecessor the node assumes
// responsibility (single-node ring or still converging).
func (n *Node) OwnsID(id core.ID) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	if !n.alive {
		return false
	}
	if n.pred.IsZero() {
		return true
	}
	return id.Between(n.pred.ID, n.self.ID)
}

// Predecessor returns the current predecessor (zero if unknown).
func (n *Node) Predecessor() dht.NodeRef {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.pred
}

// Successor returns the immediate successor.
func (n *Node) Successor() dht.NodeRef {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.succs[0]
}

// SuccessorList returns a copy of the successor list.
func (n *Node) SuccessorList() []dht.NodeRef {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]dht.NodeRef, len(n.succs))
	copy(out, n.succs)
	return out
}

// CreateRing initialises this node as the first of a new ring.
func (n *Node) CreateRing() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.pred = dht.NodeRef{}
	n.succs = []dht.NodeRef{n.self}
}

// snapshot returns (pred, succs copy) under the lock.
func (n *Node) snapshot() (dht.NodeRef, []dht.NodeRef) {
	n.mu.Lock()
	defer n.mu.Unlock()
	succs := make([]dht.NodeRef, len(n.succs))
	copy(succs, n.succs)
	return n.pred, succs
}

// setSuccessors installs a new successor list, deduplicated and
// truncated to the configured length, never empty (falls back to self).
func (n *Node) setSuccessors(refs []dht.NodeRef) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.setSuccessorsLocked(refs)
}

func (n *Node) setSuccessorsLocked(refs []dht.NodeRef) {
	seen := map[core.ID]bool{}
	out := make([]dht.NodeRef, 0, n.cfg.SuccessorListLen)
	for _, r := range refs {
		if r.IsZero() || seen[r.ID] {
			continue
		}
		seen[r.ID] = true
		out = append(out, r)
		if len(out) == n.cfg.SuccessorListLen {
			break
		}
	}
	if len(out) == 0 {
		out = append(out, n.self)
	}
	n.succs = out
}

// Crash models a failure: the node vanishes without any handoff and its
// storage backing fails as under SIGKILL — a volatile backing loses the
// store and counters, a durable one keeps whatever its sync policy made
// stable. The caller is responsible for also killing the transport
// endpoint (the simulated network's Kill).
func (n *Node) Crash() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.alive = false
	n.store.Crash()
}

// call invokes a protocol RPC with the node's per-hop patience; the
// caller's context carries the end-to-end deadline and the meter.
func (n *Node) call(ctx context.Context, to network.Addr, method string, req network.Message) (network.Message, error) {
	return n.ep.Invoke(ctx, to, method, req, network.Call{Timeout: n.cfg.RPCTimeout})
}
