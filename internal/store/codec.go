package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"repro/internal/core"
)

// On-disk record encoding, shared by the write-ahead log and the
// snapshot file (docs/STORAGE.md documents the format).
//
// Every record is framed as
//
//	uint32  payload length (little-endian)
//	uint32  CRC-32C (Castagnoli) of the payload
//	bytes   payload
//
// and the payload starts with a one-byte opcode followed by the
// operation's fields, all little-endian, strings and data length-
// prefixed with uint32.

const (
	opPutItem    = byte(1) // rid u64 | qual | ts hi u64 | ts lo u64 | data
	opDelItem    = byte(2) // rid u64 | qual
	opPutCounter = byte(3) // key | ts hi u64 | ts lo u64
	opDelCounter = byte(4) // key
)

// maxRecord bounds one record's payload: larger length prefixes are
// treated as corruption, not allocation requests.
const maxRecord = 1 << 28

// crcTable is the Castagnoli polynomial table (hardware-accelerated on
// common platforms).
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// frameOverhead is the byte cost of one record frame.
const frameOverhead = 8

type encoder struct{ buf []byte }

func (e *encoder) reset()    { e.buf = e.buf[:0] }
func (e *encoder) op(b byte) { e.buf = append(e.buf, b) }
func (e *encoder) u64(v uint64) {
	e.buf = binary.LittleEndian.AppendUint64(e.buf, v)
}
func (e *encoder) bytes(b []byte) {
	e.buf = binary.LittleEndian.AppendUint32(e.buf, uint32(len(b)))
	e.buf = append(e.buf, b...)
}

// encodePutItem appends an item-put payload to e.
func (e *encoder) encodePutItem(it Item) {
	e.op(opPutItem)
	e.u64(uint64(it.RingID))
	e.bytes([]byte(it.Qual))
	e.u64(it.Val.TS.Hi)
	e.u64(it.Val.TS.Lo)
	e.bytes(it.Val.Data)
}

// encodeDelItem appends an item-delete payload to e.
func (e *encoder) encodeDelItem(rid core.ID, qual string) {
	e.op(opDelItem)
	e.u64(uint64(rid))
	e.bytes([]byte(qual))
}

// encodePutCounter appends a counter-put payload to e.
func (e *encoder) encodePutCounter(k core.Key, ts core.Timestamp) {
	e.op(opPutCounter)
	e.bytes([]byte(k))
	e.u64(ts.Hi)
	e.u64(ts.Lo)
}

// encodeDelCounter appends a counter-delete payload to e.
func (e *encoder) encodeDelCounter(k core.Key) {
	e.op(opDelCounter)
	e.bytes([]byte(k))
}

type decoder struct {
	buf []byte
	off int
	err error
}

func (d *decoder) fail(what string) {
	if d.err == nil {
		d.err = fmt.Errorf("truncated %s field: %w", what, errCorrupt())
	}
}

func (d *decoder) u64(what string) uint64 {
	if d.err != nil || d.off+8 > len(d.buf) {
		d.fail(what)
		return 0
	}
	v := binary.LittleEndian.Uint64(d.buf[d.off:])
	d.off += 8
	return v
}

func (d *decoder) bytes(what string) []byte {
	if d.err != nil || d.off+4 > len(d.buf) {
		d.fail(what)
		return nil
	}
	n := int(binary.LittleEndian.Uint32(d.buf[d.off:]))
	d.off += 4
	if n < 0 || d.off+n > len(d.buf) {
		d.fail(what)
		return nil
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b
}

// applyRecord decodes one payload and applies it to m. The payload's
// frame CRC has already been verified; a malformed payload is still
// corruption (a CRC collision or an encoder bug), never tolerated.
func applyRecord(m *Mem, payload []byte) error {
	if len(payload) == 0 {
		return fmt.Errorf("empty record: %w", errCorrupt())
	}
	d := decoder{buf: payload, off: 1}
	switch payload[0] {
	case opPutItem:
		rid := core.ID(d.u64("ring id"))
		qual := string(d.bytes("qualifier"))
		ts := core.Timestamp{Hi: d.u64("ts hi"), Lo: d.u64("ts lo")}
		data := d.bytes("data")
		if d.err != nil {
			return d.err
		}
		// Copy out of the read buffer: Mem keeps the slice.
		val := core.Value{Data: append([]byte(nil), data...), TS: ts}
		if len(data) == 0 {
			val.Data = nil
		}
		return m.PutItem(Item{RingID: rid, Qual: qual, Val: val})
	case opDelItem:
		rid := core.ID(d.u64("ring id"))
		qual := string(d.bytes("qualifier"))
		if d.err != nil {
			return d.err
		}
		return m.DeleteItem(rid, qual)
	case opPutCounter:
		k := core.Key(d.bytes("key"))
		ts := core.Timestamp{Hi: d.u64("ts hi"), Lo: d.u64("ts lo")}
		if d.err != nil {
			return d.err
		}
		return m.PutCounter(k, ts)
	case opDelCounter:
		k := core.Key(d.bytes("key"))
		if d.err != nil {
			return d.err
		}
		return m.DeleteCounter(k)
	default:
		return fmt.Errorf("unknown record opcode %d: %w", payload[0], errCorrupt())
	}
}

// frame wraps payload in the length+CRC frame, appending to dst.
func frame(dst, payload []byte) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(payload)))
	dst = binary.LittleEndian.AppendUint32(dst, crc32.Checksum(payload, crcTable))
	return append(dst, payload...)
}
