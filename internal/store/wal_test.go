package store

import (
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
)

func item(rid uint64, qual, data string, ts uint64) Item {
	return Item{RingID: core.ID(rid), Qual: qual, Val: core.Value{Data: []byte(data), TS: core.TS(ts)}}
}

// openT opens a WAL or fails the test.
func openT(t *testing.T, dir string, opt WALOptions) *WAL {
	t.Helper()
	w, err := OpenWAL(dir, opt)
	if err != nil {
		t.Fatalf("OpenWAL(%s): %v", dir, err)
	}
	return w
}

func TestWALEmptyLogReplay(t *testing.T) {
	dir := t.TempDir()
	w := openT(t, dir, WALOptions{})
	if rec := w.Recovered(); rec.Items != 0 || rec.Counters != 0 || rec.Records != 0 || rec.TornTail {
		t.Fatalf("fresh dir recovered %+v, want all zero", rec)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Re-open the now header-only log: still empty, still clean.
	w = openT(t, dir, WALOptions{})
	defer w.Close()
	if rec := w.Recovered(); rec.Items != 0 || rec.Counters != 0 || rec.TornTail {
		t.Fatalf("empty log recovered %+v, want all zero", rec)
	}
}

func TestWALRoundTrip(t *testing.T) {
	dir := t.TempDir()
	w := openT(t, dir, WALOptions{})
	if err := w.PutItem(item(7, "ums|k|h1", "v1", 3)); err != nil {
		t.Fatal(err)
	}
	if err := w.PutItem(item(9, "ums|k|h2", "v2", 4)); err != nil {
		t.Fatal(err)
	}
	if err := w.DeleteItem(9, "ums|k|h2"); err != nil {
		t.Fatal(err)
	}
	if err := w.PutCounter("k", core.TS(4)); err != nil {
		t.Fatal(err)
	}
	if err := w.PutCounter("gone", core.TS(9)); err != nil {
		t.Fatal(err)
	}
	if err := w.DeleteCounter("gone"); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	w = openT(t, dir, WALOptions{})
	defer w.Close()
	rec := w.Recovered()
	if rec.Items != 1 || rec.Counters != 1 || rec.Records != 6 {
		t.Fatalf("recovered %+v, want 1 item, 1 counter, 6 records", rec)
	}
	v, ok := w.GetItem(7, "ums|k|h1")
	if !ok || string(v.Data) != "v1" || v.TS != core.TS(3) {
		t.Fatalf("item = %v %v", v, ok)
	}
	if _, ok := w.GetItem(9, "ums|k|h2"); ok {
		t.Fatal("deleted item resurrected")
	}
	cs := w.Counters()
	if len(cs) != 1 || cs[0].Key != "k" || cs[0].TS != core.TS(4) {
		t.Fatalf("counters = %v", cs)
	}
}

func TestWALTornFinalRecordTolerated(t *testing.T) {
	dir := t.TempDir()
	w := openT(t, dir, WALOptions{})
	for i := uint64(1); i <= 5; i++ {
		if err := w.PutCounter("k", core.TS(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Tear the last record: chop a few bytes off the file's tail, the
	// way a crash mid-append does.
	path := filepath.Join(dir, walName)
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, fi.Size()-3); err != nil {
		t.Fatal(err)
	}

	w = openT(t, dir, WALOptions{})
	rec := w.Recovered()
	if !rec.TornTail {
		t.Fatal("torn tail not reported")
	}
	if rec.Records != 4 || rec.Counters != 1 {
		t.Fatalf("recovered %+v, want the 4 intact records", rec)
	}
	if cs := w.Counters(); len(cs) != 1 || cs[0].TS != core.TS(4) {
		t.Fatalf("counter after torn tail = %v, want ts(4)", cs)
	}
	// The torn bytes must be gone: appending and re-opening replays clean.
	if err := w.PutCounter("k", core.TS(6)); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	w = openT(t, dir, WALOptions{})
	defer w.Close()
	if rec := w.Recovered(); rec.TornTail || rec.Records != 5 {
		t.Fatalf("after truncate+append recovered %+v", rec)
	}
	if cs := w.Counters(); len(cs) != 1 || cs[0].TS != core.TS(6) {
		t.Fatalf("counter = %v, want ts(6)", cs)
	}
}

func TestWALMidLogCorruptionRejected(t *testing.T) {
	dir := t.TempDir()
	w := openT(t, dir, WALOptions{})
	for i := uint64(1); i <= 8; i++ {
		if err := w.PutCounter("k", core.TS(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Flip one payload byte in an early record: the CRC fails with valid
	// data after it — real corruption, not a torn tail.
	path := filepath.Join(dir, walName)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	off := len(walMagicStr) + frameOverhead + 2 // inside record 0's payload
	data[off] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	_, err = OpenWAL(dir, WALOptions{})
	if !errors.Is(err, ErrCorruptLog) {
		t.Fatalf("mid-log corruption: err = %v, want ErrCorruptLog", err)
	}
	if !errors.Is(err, ErrStore) {
		t.Fatalf("corruption must also classify as ErrStore, got %v", err)
	}
}

func TestWALSnapshotPlusTailReplay(t *testing.T) {
	dir := t.TempDir()
	w := openT(t, dir, WALOptions{})
	if err := w.PutItem(item(1, "ums|a|h1", "old", 1)); err != nil {
		t.Fatal(err)
	}
	if err := w.PutItem(item(2, "ums|b|h1", "keep", 2)); err != nil {
		t.Fatal(err)
	}
	if err := w.PutCounter("a", core.TS(1)); err != nil {
		t.Fatal(err)
	}
	// Snapshot, then write a tail the snapshot does not contain.
	if err := w.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := w.PutItem(item(1, "ums|a|h1", "new", 5)); err != nil {
		t.Fatal(err)
	}
	if err := w.PutCounter("a", core.TS(5)); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	w = openT(t, dir, WALOptions{})
	defer w.Close()
	rec := w.Recovered()
	if rec.Items != 2 || rec.Counters != 1 {
		t.Fatalf("recovered %+v, want 2 items + 1 counter", rec)
	}
	if rec.Records != 2 {
		t.Fatalf("recovered %d log records, want only the 2 post-snapshot ones", rec.Records)
	}
	if v, ok := w.GetItem(1, "ums|a|h1"); !ok || string(v.Data) != "new" || v.TS != core.TS(5) {
		t.Fatalf("tail must override snapshot: %v %v", v, ok)
	}
	if v, ok := w.GetItem(2, "ums|b|h1"); !ok || string(v.Data) != "keep" {
		t.Fatalf("snapshot item lost: %v %v", v, ok)
	}
	if cs := w.Counters(); len(cs) != 1 || cs[0].TS != core.TS(5) {
		t.Fatalf("counter = %v, want ts(5)", cs)
	}
}

func TestWALAutoCompactionKeepsState(t *testing.T) {
	dir := t.TempDir()
	w := openT(t, dir, WALOptions{CompactEvery: 16})
	for i := uint64(1); i <= 100; i++ {
		if err := w.PutCounter("k", core.TS(i)); err != nil {
			t.Fatal(err)
		}
		if err := w.PutItem(item(3, "ums|k|h1", "v", i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, snapName)); err != nil {
		t.Fatalf("no snapshot after 200 records with CompactEvery=16: %v", err)
	}
	w = openT(t, dir, WALOptions{CompactEvery: 16})
	defer w.Close()
	if cs := w.Counters(); len(cs) != 1 || cs[0].TS != core.TS(100) {
		t.Fatalf("counter = %v, want ts(100)", cs)
	}
	if v, ok := w.GetItem(3, "ums|k|h1"); !ok || v.TS != core.TS(100) {
		t.Fatalf("item = %v %v, want ts(100)", v, ok)
	}
}

func TestWALCorruptSnapshotRejected(t *testing.T) {
	dir := t.TempDir()
	w := openT(t, dir, WALOptions{})
	if err := w.PutCounter("k", core.TS(1)); err != nil {
		t.Fatal(err)
	}
	if err := w.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, snapName)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenWAL(dir, WALOptions{}); !errors.Is(err, ErrCorruptLog) {
		t.Fatalf("corrupt snapshot: err = %v, want ErrCorruptLog", err)
	}
}

func TestWALBadDataDir(t *testing.T) {
	dir := t.TempDir()
	file := filepath.Join(dir, "actually-a-file")
	if err := os.WriteFile(file, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := OpenWAL(file, WALOptions{})
	if !errors.Is(err, ErrStore) {
		t.Fatalf("bad data dir: err = %v, want ErrStore", err)
	}
	if errors.Is(err, ErrCorruptLog) {
		t.Fatalf("an unusable dir is not log corruption: %v", err)
	}
}

// TestWALCounterMonotonicityAcrossTwoRestarts drives concurrent counter
// appends (run under -race), crashes, recovers, repeats — after each
// recovery the counter must be at least the highest value generated
// before the crash, so a responsible re-seeded from the store can never
// re-issue a timestamp. SyncAlways makes every append stable, so "at
// least" tightens to "exactly".
func TestWALCounterMonotonicityAcrossTwoRestarts(t *testing.T) {
	dir := t.TempDir()
	high := core.TSZero
	for restart := 0; restart < 2; restart++ {
		w := openT(t, dir, WALOptions{Policy: SyncAlways})
		if cs := w.Counters(); restart > 0 {
			if len(cs) != 1 || cs[0].TS.Less(high) {
				t.Fatalf("restart %d: recovered %v, want >= %v", restart, cs, high)
			}
			high = cs[0].TS
		}
		// Concurrent generators: each bumps the shared counter past the
		// other's last write, like racing gen_ts handlers.
		var mu sync.Mutex
		next := high
		var wg sync.WaitGroup
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < 50; i++ {
					mu.Lock()
					next = next.Next()
					ts := next
					mu.Unlock()
					if err := w.PutCounter("k", ts); err != nil {
						t.Error(err)
						return
					}
				}
			}()
		}
		wg.Wait()
		high = next
		w.Crash() // no graceful flush: SyncAlways must have persisted everything
	}
	w := openT(t, dir, WALOptions{})
	defer w.Close()
	cs := w.Counters()
	if len(cs) != 1 || cs[0].TS.Less(high) {
		t.Fatalf("after two crash-restarts: %v, want >= %v", cs, high)
	}
}

// TestWALCrashDropsUnsyncedBatch shows the SyncBatch trade-off: records
// buffered past the last sync die with the process, while the synced
// prefix survives.
func TestWALCrashDropsUnsyncedBatch(t *testing.T) {
	dir := t.TempDir()
	w := openT(t, dir, WALOptions{Policy: SyncBatch, BatchInterval: time.Hour})
	if err := w.PutCounter("k", core.TS(1)); err != nil {
		t.Fatal(err)
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := w.PutCounter("k", core.TS(2)); err != nil {
		t.Fatal(err)
	}
	w.Crash()

	w = openT(t, dir, WALOptions{})
	defer w.Close()
	cs := w.Counters()
	if len(cs) != 1 || cs[0].TS != core.TS(1) {
		t.Fatalf("recovered %v, want only the synced ts(1)", cs)
	}
}

func TestDepotSurvivesCrashAndResumes(t *testing.T) {
	d := NewDepot()
	s := d.Open("peer0")
	if err := s.PutItem(item(7, "ums|k|h1", "v", 3)); err != nil {
		t.Fatal(err)
	}
	if err := s.PutCounter("k", core.TS(3)); err != nil {
		t.Fatal(err)
	}
	s.Crash()
	if _, ok := s.GetItem(7, "ums|k|h1"); ok {
		t.Fatal("crashed handle still serves reads")
	}
	if err := s.PutCounter("k", core.TS(9)); err != nil {
		t.Fatal(err)
	}

	if !d.Has("peer0") {
		t.Fatal("depot forgot the crashed peer's slot")
	}
	r := d.Open("peer0")
	if v, ok := r.GetItem(7, "ums|k|h1"); !ok || string(v.Data) != "v" {
		t.Fatalf("restart-with-state item = %v %v", v, ok)
	}
	if cs := r.Counters(); len(cs) != 1 || cs[0].TS != core.TS(3) {
		t.Fatalf("restart counters = %v (the post-crash write must not have landed)", cs)
	}
	d.Drop("peer0")
	if d.Has("peer0") {
		t.Fatal("dropped slot still present")
	}
	if f := d.Open("peer0"); f.ItemCount() != 0 {
		t.Fatal("dropped slot not empty on re-open")
	}
}

func TestMemCrashLosesEverything(t *testing.T) {
	m := NewMem()
	if err := m.PutItem(item(1, "q", "v", 1)); err != nil {
		t.Fatal(err)
	}
	if err := m.PutCounter("k", core.TS(1)); err != nil {
		t.Fatal(err)
	}
	m.Crash()
	if m.ItemCount() != 0 || len(m.Counters()) != 0 {
		t.Fatal("Mem.Crash must lose everything")
	}
}
