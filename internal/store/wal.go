package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/core"
)

// File names inside a data directory. The snapshot is replaced
// atomically (write tmp, fsync, rename); the log is append-only and
// truncated back to its header right after a snapshot lands.
const (
	walName      = "wal.dcdht"
	snapName     = "snapshot.dcdht"
	snapTmpName  = "snapshot.tmp"
	walMagicStr  = "DCWAL1\n\x00"
	snapMagicStr = "DCSNAP1\n"
)

// SyncPolicy selects when appended records reach stable storage — the
// durability/throughput trade-off of docs/STORAGE.md.
type SyncPolicy int

const (
	// SyncOS (the default) writes every record through to the operating
	// system immediately but leaves fsync to the OS page cache (and to
	// snapshots and Close). A process crash loses nothing; a machine
	// crash can lose the unflushed suffix.
	SyncOS SyncPolicy = iota
	// SyncAlways fsyncs after every append: a generated timestamp or
	// accepted replica is on stable storage before the operation
	// acknowledges. Safest, slowest.
	SyncAlways
	// SyncBatch buffers appends and flushes+fsyncs on a background
	// ticker (WALOptions.BatchInterval). A crash loses at most one
	// interval of records. The recovery protocol (§4.2.2) tolerates
	// lost counter tail-records: the current responsible corrects
	// upward from the replicas, so this is the recommended default for
	// serving nodes.
	SyncBatch
)

// String names the policy the way the -fsync flag spells it.
func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncBatch:
		return "batch"
	default:
		return "os"
	}
}

// ParseSyncPolicy inverts String; it accepts "always", "batch" and "os".
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "always":
		return SyncAlways, nil
	case "batch":
		return SyncBatch, nil
	case "os", "":
		return SyncOS, nil
	}
	return SyncOS, fmt.Errorf("unknown fsync policy %q (want always, batch or os): %w", s, ErrStore)
}

// WALOptions tunes a disk-backed store. The zero value is usable.
type WALOptions struct {
	// Policy is the fsync policy. Default SyncOS.
	Policy SyncPolicy
	// BatchInterval is the SyncBatch flush period. Default 50ms.
	BatchInterval time.Duration
	// CompactEvery triggers a snapshot + log truncation after this many
	// appended records. Default 8192.
	CompactEvery int
}

func (o WALOptions) withDefaults() WALOptions {
	if o.BatchInterval <= 0 {
		o.BatchInterval = 50 * time.Millisecond
	}
	if o.CompactEvery <= 0 {
		o.CompactEvery = 8192
	}
	return o
}

// Recovered summarises what OpenWAL reconstructed from disk.
type Recovered struct {
	// Items and Counters are the recovered state's sizes.
	Items, Counters int
	// Records is how many log records replayed (not counting the
	// snapshot's).
	Records int
	// TornTail reports that the log ended in a torn record — the
	// expected shape of a mid-append crash — which was truncated away.
	TornTail bool
}

// WAL is the disk-backed Store: current state in memory (a Mem), every
// mutation appended to a CRC-framed write-ahead log, state snapshotted
// and the log truncated every CompactEvery records. Opening a directory
// replays snapshot + log, tolerating a torn final record and rejecting
// anything corrupt before it.
type WAL struct {
	dir string
	opt WALOptions

	mu     sync.Mutex
	mem    *Mem
	logF   *os.File
	buf    []byte // pending (unflushed) frames — SyncBatch only
	enc    encoder
	recs   int // records appended since the last snapshot
	closed bool
	rec    Recovered
	stats  WALStats

	flushStop chan struct{} // SyncBatch flusher shutdown, nil otherwise
	flushDone chan struct{}
}

var _ Store = (*WAL)(nil)

// OpenWAL opens (creating if needed) the durable store in dir and
// recovers its state. Errors wrap ErrStore; unrecoverable mid-log or
// snapshot corruption also wraps ErrCorruptLog. A torn final log record
// is truncated away silently (Recovered reports it), because that is
// what a crash mid-append leaves behind.
func OpenWAL(dir string, opt WALOptions) (*WAL, error) {
	w := &WAL{dir: dir, opt: opt.withDefaults(), mem: NewMem()}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("data dir %s: %v: %w", dir, err, ErrStore)
	}
	// A tmp snapshot is a snapshot that never landed: ignore and remove.
	os.Remove(filepath.Join(dir, snapTmpName))
	if err := w.loadSnapshot(); err != nil {
		return nil, err
	}
	if err := w.replayLog(); err != nil {
		return nil, err
	}
	w.rec.Items = w.mem.ItemCount()
	w.rec.Counters = len(w.mem.Counters())
	if w.opt.Policy == SyncBatch {
		w.flushStop = make(chan struct{})
		w.flushDone = make(chan struct{})
		go w.flusher(w.flushStop, w.flushDone)
	}
	return w, nil
}

// Recovered reports what opening the directory reconstructed.
func (w *WAL) Recovered() Recovered {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.rec
}

// WALStats counts the log's disk activity since open — the raw material
// for the dcdht_store_wal_* metric families.
type WALStats struct {
	// Appends is the number of records framed and appended (buffered
	// appends under SyncBatch count when framed, not when flushed).
	Appends uint64
	// Fsyncs counts successful fsync calls on the log and snapshot
	// files, the price of the chosen durability policy.
	Fsyncs uint64
	// Compactions counts snapshot+truncate cycles.
	Compactions uint64
}

// Stats returns a snapshot of the disk-activity counters.
func (w *WAL) Stats() WALStats {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.stats
}

// Dir returns the data directory.
func (w *WAL) Dir() string { return w.dir }

// loadSnapshot seeds the in-memory state from the snapshot file, if one
// exists. The snapshot is written atomically, so any damage inside it is
// real corruption, never a torn write.
func (w *WAL) loadSnapshot() error {
	path := filepath.Join(w.dir, snapName)
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("snapshot %s: %v: %w", path, err, ErrStore)
	}
	if len(data) < len(snapMagicStr) || string(data[:len(snapMagicStr)]) != snapMagicStr {
		return fmt.Errorf("snapshot %s: bad magic: %w", path, errCorrupt())
	}
	off := len(snapMagicStr)
	for off < len(data) {
		payload, next, ok, torn := nextFrame(data, off)
		if !ok || torn {
			return fmt.Errorf("snapshot %s: damaged record at offset %d: %w", path, off, errCorrupt())
		}
		if err := applyRecord(w.mem, payload); err != nil {
			return fmt.Errorf("snapshot %s: record at offset %d: %w", path, off, err)
		}
		off = next
	}
	return nil
}

// replayLog applies the write-ahead log on top of the snapshot state,
// truncating a torn tail and opening the file for appending.
func (w *WAL) replayLog() error {
	path := filepath.Join(w.dir, walName)
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return fmt.Errorf("wal %s: %v: %w", path, err, ErrStore)
	}
	data, err := io.ReadAll(f)
	if err != nil {
		f.Close()
		return fmt.Errorf("wal %s: %v: %w", path, err, ErrStore)
	}
	valid := 0 // byte offset of the end of the valid prefix
	switch {
	case len(data) == 0:
		// Brand-new log: stamp the header.
		if _, err := f.Write([]byte(walMagicStr)); err != nil {
			f.Close()
			return fmt.Errorf("wal %s: write header: %v: %w", path, err, ErrStore)
		}
		valid = len(walMagicStr)
	case len(data) < len(walMagicStr) && string(data) == walMagicStr[:len(data)]:
		// Torn mid-header (crash during creation): rewrite it.
		if err := f.Truncate(0); err == nil {
			_, err = f.WriteAt([]byte(walMagicStr), 0)
		}
		if err != nil {
			f.Close()
			return fmt.Errorf("wal %s: rewrite header: %v: %w", path, err, ErrStore)
		}
		w.rec.TornTail = true
		valid = len(walMagicStr)
	case len(data) < len(walMagicStr) || string(data[:len(walMagicStr)]) != walMagicStr:
		f.Close()
		return fmt.Errorf("wal %s: bad magic: %w", path, errCorrupt())
	default:
		off := len(walMagicStr)
		valid = off
		for off < len(data) {
			payload, next, ok, torn := nextFrame(data, off)
			if torn {
				w.rec.TornTail = true
				break
			}
			if !ok {
				f.Close()
				return fmt.Errorf("wal %s: corrupt record at offset %d (%d valid records before it): %w",
					path, off, w.rec.Records, errCorrupt())
			}
			if err := applyRecord(w.mem, payload); err != nil {
				f.Close()
				return fmt.Errorf("wal %s: record at offset %d: %w", path, off, err)
			}
			w.rec.Records++
			off = next
			valid = off
		}
	}
	if valid < len(data) || w.rec.TornTail {
		if err := f.Truncate(int64(valid)); err != nil {
			f.Close()
			return fmt.Errorf("wal %s: truncate torn tail: %v: %w", path, err, ErrStore)
		}
	}
	if _, err := f.Seek(int64(valid), io.SeekStart); err != nil {
		f.Close()
		return fmt.Errorf("wal %s: %v: %w", path, err, ErrStore)
	}
	w.logF = f
	w.recs = w.rec.Records
	return nil
}

// nextFrame parses one frame starting at off. ok=false means corruption;
// torn=true means the data simply ends mid-frame (tolerable only at the
// log's tail). next is the offset just past the frame.
func nextFrame(data []byte, off int) (payload []byte, next int, ok, torn bool) {
	rest := data[off:]
	if len(rest) < frameOverhead {
		return nil, off, false, true
	}
	n := int(binary.LittleEndian.Uint32(rest))
	sum := binary.LittleEndian.Uint32(rest[4:])
	if n > maxRecord {
		// An insane length prefix: garbage. If nothing follows the
		// header it is indistinguishable from a torn write.
		return nil, off, false, len(rest) <= frameOverhead+n
	}
	if len(rest) < frameOverhead+n {
		return nil, off, false, true
	}
	payload = rest[frameOverhead : frameOverhead+n]
	if crc32.Checksum(payload, crcTable) != sum {
		// A bad checksum at the exact tail is a torn write; anywhere
		// else it is corruption.
		return nil, off, false, len(rest) == frameOverhead+n
	}
	return payload, off + frameOverhead + n, true, false
}

// errCorrupt builds the double-classed corruption error: callers match
// either ErrStore (any storage failure) or ErrCorruptLog (specifically
// unrecoverable log damage).
func errCorrupt() error {
	return fmt.Errorf("%w: %w", ErrStore, ErrCorruptLog)
}

// ---- appends -----------------------------------------------------------

// append frames the encoder's payload, writes it per the sync policy and
// triggers compaction when due. Caller holds w.mu.
func (w *WAL) appendLocked() error {
	if w.closed {
		return fmt.Errorf("append to closed store: %w", ErrStore)
	}
	framed := frame(nil, w.enc.buf)
	switch w.opt.Policy {
	case SyncBatch:
		w.buf = append(w.buf, framed...)
	default:
		if _, err := w.logF.Write(framed); err != nil {
			return fmt.Errorf("wal append: %v: %w", err, ErrStore)
		}
		if w.opt.Policy == SyncAlways {
			if err := w.logF.Sync(); err != nil {
				return fmt.Errorf("wal fsync: %v: %w", err, ErrStore)
			}
			w.stats.Fsyncs++
		}
	}
	w.stats.Appends++
	w.recs++
	if w.recs >= w.opt.CompactEvery {
		return w.compactLocked()
	}
	return nil
}

// PutItem implements Store.
func (w *WAL) PutItem(it Item) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.mem.PutItem(it); err != nil {
		return err
	}
	w.enc.reset()
	w.enc.encodePutItem(it)
	return w.appendLocked()
}

// DeleteItem implements Store.
func (w *WAL) DeleteItem(rid core.ID, qual string) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.mem.DeleteItem(rid, qual); err != nil {
		return err
	}
	w.enc.reset()
	w.enc.encodeDelItem(rid, qual)
	return w.appendLocked()
}

// PutCounter implements Store.
func (w *WAL) PutCounter(k core.Key, ts core.Timestamp) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.mem.PutCounter(k, ts); err != nil {
		return err
	}
	w.enc.reset()
	w.enc.encodePutCounter(k, ts)
	return w.appendLocked()
}

// DeleteCounter implements Store.
func (w *WAL) DeleteCounter(k core.Key) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.mem.DeleteCounter(k); err != nil {
		return err
	}
	w.enc.reset()
	w.enc.encodeDelCounter(k)
	return w.appendLocked()
}

// live returns the in-memory state, or nil once the handle has crashed
// or closed — a dead process serves nothing, whatever its disk holds.
func (w *WAL) live() *Mem {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return nil
	}
	return w.mem
}

// GetItem implements Store (served from memory).
func (w *WAL) GetItem(rid core.ID, qual string) (core.Value, bool) {
	if m := w.live(); m != nil {
		return m.GetItem(rid, qual)
	}
	return core.Value{}, false
}

// EachItem implements Store (served from memory).
func (w *WAL) EachItem(fn func(Item) bool) {
	if m := w.live(); m != nil {
		m.EachItem(fn)
	}
}

// ItemCount implements Store (served from memory).
func (w *WAL) ItemCount() int {
	if m := w.live(); m != nil {
		return m.ItemCount()
	}
	return 0
}

// Counters implements Store (served from memory).
func (w *WAL) Counters() []Counter {
	if m := w.live(); m != nil {
		return m.Counters()
	}
	return nil
}

// ---- sync, compaction, shutdown ----------------------------------------

// flusher is the SyncBatch background task. The channels come in as
// arguments because stopFlusherLocked nils the struct fields.
func (w *WAL) flusher(stop <-chan struct{}, done chan<- struct{}) {
	defer close(done)
	t := time.NewTicker(w.opt.BatchInterval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			w.Sync()
		case <-stop:
			return
		}
	}
}

// Sync implements Store: pending frames hit the file and the file hits
// stable storage.
func (w *WAL) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.syncLocked()
}

func (w *WAL) syncLocked() error {
	if w.closed {
		return nil
	}
	if len(w.buf) > 0 {
		if _, err := w.logF.Write(w.buf); err != nil {
			return fmt.Errorf("wal flush: %v: %w", err, ErrStore)
		}
		w.buf = w.buf[:0]
	}
	if err := w.logF.Sync(); err != nil {
		return fmt.Errorf("wal fsync: %v: %w", err, ErrStore)
	}
	w.stats.Fsyncs++
	return nil
}

// Compact snapshots the current state and truncates the log, regardless
// of the CompactEvery budget.
func (w *WAL) Compact() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return fmt.Errorf("compact closed store: %w", ErrStore)
	}
	return w.compactLocked()
}

// compactLocked writes snapshot.tmp, fsyncs it, renames it over the
// snapshot, fsyncs the directory, then truncates the log back to its
// header. A crash at any point leaves either the old snapshot + full
// log or the new snapshot + (possibly still full) log — both replay to
// the same state, because log records are idempotent overwrites.
func (w *WAL) compactLocked() error {
	var e encoder
	e.buf = append(e.buf, snapMagicStr...)
	var rec []byte
	var scratch encoder
	w.mem.EachItem(func(it Item) bool {
		scratch.reset()
		scratch.encodePutItem(it)
		rec = frame(rec[:0], scratch.buf)
		e.buf = append(e.buf, rec...)
		return true
	})
	for _, c := range w.mem.Counters() {
		scratch.reset()
		scratch.encodePutCounter(c.Key, c.TS)
		rec = frame(rec[:0], scratch.buf)
		e.buf = append(e.buf, rec...)
	}

	tmp := filepath.Join(w.dir, snapTmpName)
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("snapshot tmp: %v: %w", err, ErrStore)
	}
	if _, err := f.Write(e.buf); err == nil {
		err = f.Sync()
		if err == nil {
			w.stats.Fsyncs++
		}
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return fmt.Errorf("snapshot write: %v: %w", err, ErrStore)
	}
	if err := os.Rename(tmp, filepath.Join(w.dir, snapName)); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("snapshot rename: %v: %w", err, ErrStore)
	}
	syncDir(w.dir)

	// The snapshot has landed: drop pending frames (they are inside it)
	// and reset the log to just its header.
	w.buf = w.buf[:0]
	if err := w.logF.Truncate(int64(len(walMagicStr))); err != nil {
		return fmt.Errorf("wal truncate: %v: %w", err, ErrStore)
	}
	if _, err := w.logF.Seek(int64(len(walMagicStr)), io.SeekStart); err != nil {
		return fmt.Errorf("wal seek: %v: %w", err, ErrStore)
	}
	if err := w.logF.Sync(); err != nil {
		return fmt.Errorf("wal fsync: %v: %w", err, ErrStore)
	}
	w.stats.Fsyncs++
	w.stats.Compactions++
	w.recs = 0
	return nil
}

// syncDir fsyncs a directory so a rename inside it is durable. Best
// effort: some platforms reject directory fsync.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
}

// Crash implements Store: the handle dies exactly the way SIGKILL would
// kill a process — pending unsynced frames are dropped on the floor, the
// file is released with no flush, and the on-disk state is whatever the
// sync policy had already made stable. Tests and the simulation use it
// to exercise recovery honestly.
func (w *WAL) Crash() {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return
	}
	w.closed = true
	w.stopFlusherLocked()
	w.buf = nil
	w.logF.Close()
}

// Close implements Store: flush, fsync, release.
func (w *WAL) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return nil
	}
	err := w.syncLocked()
	w.closed = true
	w.stopFlusherLocked()
	if cerr := w.logF.Close(); err == nil && cerr != nil {
		err = fmt.Errorf("wal close: %v: %w", cerr, ErrStore)
	}
	return err
}

func (w *WAL) stopFlusherLocked() {
	if w.flushStop == nil {
		return
	}
	close(w.flushStop)
	w.flushStop = nil
	// Wait outside the lock would be cleaner, but the flusher's Sync
	// only blocks on w.mu briefly and checks closed first.
	w.mu.Unlock()
	<-w.flushDone
	w.mu.Lock()
}
