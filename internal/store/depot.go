package store

import (
	"sync"

	"repro/internal/core"
)

// Depot models the durable media of a simulated cluster: one retained
// state per peer name, kept deterministically in memory. A peer opens
// its slot at birth, writes through it while alive, and can crash at any
// moment — the depot keeps the slot, so a later restart-with-state
// resumes exactly where the "disk" was. This is what lets the scenario
// engine's restart-wave events and the recovery figure model the paper's
// §4.2.2 restart path without touching a real filesystem (which would
// break bit-identical replay).
//
// A DepotStore behaves like a WAL under SyncAlways: every write is
// immediately stable. Crash only kills the handle; the retained state
// survives untouched.
type Depot struct {
	mu    sync.Mutex
	slots map[string]*Mem
}

// NewDepot returns an empty depot.
func NewDepot() *Depot {
	return &Depot{slots: make(map[string]*Mem)}
}

// Open returns the durable store for the named peer, creating an empty
// slot on first open and resuming the retained state on every later one.
func (d *Depot) Open(name string) *DepotStore {
	d.mu.Lock()
	defer d.mu.Unlock()
	slot, ok := d.slots[name]
	if !ok {
		slot = NewMem()
		d.slots[name] = slot
	}
	return &DepotStore{slot: slot}
}

// Has reports whether the named peer has a retained slot with any state.
func (d *Depot) Has(name string) bool {
	d.mu.Lock()
	slot, ok := d.slots[name]
	d.mu.Unlock()
	return ok && (slot.ItemCount() > 0 || len(slot.Counters()) > 0)
}

// Drop discards the named peer's slot — the disk itself died.
func (d *Depot) Drop(name string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	delete(d.slots, name)
}

// DepotStore is one peer's handle onto its depot slot. After Crash or
// Close the handle goes inert: reads come back empty and writes are
// dropped, but the depot's retained slot is untouched either way.
type DepotStore struct {
	mu   sync.Mutex
	dead bool
	slot *Mem
}

var _ Store = (*DepotStore)(nil)

// live returns the slot, or nil when the handle is dead.
func (s *DepotStore) live() *Mem {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.dead {
		return nil
	}
	return s.slot
}

// PutItem implements Store.
func (s *DepotStore) PutItem(it Item) error {
	if m := s.live(); m != nil {
		return m.PutItem(it)
	}
	return nil
}

// GetItem implements Store.
func (s *DepotStore) GetItem(rid core.ID, qual string) (core.Value, bool) {
	if m := s.live(); m != nil {
		return m.GetItem(rid, qual)
	}
	return core.Value{}, false
}

// DeleteItem implements Store.
func (s *DepotStore) DeleteItem(rid core.ID, qual string) error {
	if m := s.live(); m != nil {
		return m.DeleteItem(rid, qual)
	}
	return nil
}

// EachItem implements Store.
func (s *DepotStore) EachItem(fn func(Item) bool) {
	if m := s.live(); m != nil {
		m.EachItem(fn)
	}
}

// ItemCount implements Store.
func (s *DepotStore) ItemCount() int {
	if m := s.live(); m != nil {
		return m.ItemCount()
	}
	return 0
}

// PutCounter implements Store.
func (s *DepotStore) PutCounter(k core.Key, ts core.Timestamp) error {
	if m := s.live(); m != nil {
		return m.PutCounter(k, ts)
	}
	return nil
}

// DeleteCounter implements Store.
func (s *DepotStore) DeleteCounter(k core.Key) error {
	if m := s.live(); m != nil {
		return m.DeleteCounter(k)
	}
	return nil
}

// Counters implements Store.
func (s *DepotStore) Counters() []Counter {
	if m := s.live(); m != nil {
		return m.Counters()
	}
	return nil
}

// Sync implements Store: depot writes are stable the moment they land.
func (s *DepotStore) Sync() error { return nil }

// Crash implements Store: the handle dies, the retained slot survives —
// the simulation's disk outlives the simulated process.
func (s *DepotStore) Crash() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.dead = true
}

// Close implements Store.
func (s *DepotStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.dead = true
	return nil
}
