package store

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
)

// counterFrame builds one framed PutCounter record, for seeding the
// fuzzer with well-formed log bytes.
func counterFrame(k core.Key, ts core.Timestamp) []byte {
	var e encoder
	e.reset()
	e.encodePutCounter(k, ts)
	return frame(nil, e.buf)
}

// FuzzWALReplay throws arbitrary bytes at the recovery path as the
// write-ahead log's on-disk content. Whatever the bytes, OpenWAL must
// not panic; failures must wrap ErrStore; and a successful recovery
// must be stable — closing and reopening the directory reproduces the
// exact same state with no new torn tail, and the log stays appendable.
func FuzzWALReplay(f *testing.F) {
	valid := append([]byte(walMagicStr), counterFrame("agenda:mon", core.TS(7))...)
	valid = append(valid, counterFrame("agenda:tue", core.TS(9))...)
	f.Add([]byte{})
	f.Add([]byte(walMagicStr))
	f.Add([]byte(walMagicStr[:3])) // torn mid-header
	f.Add([]byte("NOTAWAL!"))
	f.Add(valid)
	f.Add(valid[:len(valid)-3]) // torn tail
	tampered := append([]byte{}, valid...)
	tampered[len(walMagicStr)+9] ^= 0xff // corrupt first record's payload
	f.Add(tampered)
	huge := append([]byte(walMagicStr), 0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0) // insane length prefix
	f.Add(huge)

	f.Fuzz(func(t *testing.T, log []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, walName), log, 0o644); err != nil {
			t.Fatal(err)
		}
		w, err := OpenWAL(dir, WALOptions{})
		if err != nil {
			if !errors.Is(err, ErrStore) {
				t.Fatalf("open error does not wrap ErrStore: %v", err)
			}
			return
		}
		rec := w.Recovered()
		items, counters := w.ItemCount(), len(w.Counters())
		if rec.Items != items || rec.Counters != counters {
			t.Fatalf("Recovered reports %d/%d, state holds %d/%d",
				rec.Items, rec.Counters, items, counters)
		}
		// The recovered log must accept appends.
		if err := w.PutCounter("fuzz-probe", core.TS(1)); err != nil {
			t.Fatalf("append after recovery: %v", err)
		}
		if err := w.Close(); err != nil {
			t.Fatalf("close: %v", err)
		}

		// Reopen: recovery already truncated any torn tail, so the second
		// open must see a clean log with identical state plus the probe.
		w2, err := OpenWAL(dir, WALOptions{})
		if err != nil {
			t.Fatalf("reopen of a recovered dir failed: %v", err)
		}
		defer w2.Close()
		if w2.Recovered().TornTail {
			t.Fatal("second open still reports a torn tail")
		}
		if got := w2.ItemCount(); got != items {
			t.Fatalf("reopen items = %d, want %d", got, items)
		}
		if got := len(w2.Counters()); got != counters+1 {
			t.Fatalf("reopen counters = %d, want %d", got, counters+1)
		}
		if _, ok := findCounter(w2, "fuzz-probe"); !ok {
			t.Fatal("probe counter lost across reopen")
		}
	})
}

// findCounter scans the store's counters for a key.
func findCounter(w *WAL, k core.Key) (core.Timestamp, bool) {
	for _, c := range w.Counters() {
		if c.Key == k {
			return c.TS, true
		}
	}
	return core.Timestamp{}, false
}
