// Package store is the durable storage subsystem: the pluggable
// persistence unit behind a peer's replica store and KTS counters.
//
// The paper's recovery strategy (§4.2.2: a restarted responsible ships
// its counters back so timestamp monotonicity survives failures) only
// means something when a peer can come back with state. A Store persists
// exactly the two things that strategy needs, in one recoverable unit:
//
//   - replica items — the (ring position, qualifier, stamped value)
//     triples the peer hosts (dht.LocalStore is a thin concurrency and
//     handover layer over this interface);
//   - KTS counters — the per-key timestamps of the Valid Counters Set,
//     journaled on every mutation so a restart re-seeds the VCS instead
//     of re-deriving counters from replicas.
//
// Implementations:
//
//   - Mem: map-backed, volatile — the pre-durability behaviour. A crash
//     loses everything, which is the paper's fail-stop departure model.
//   - WAL: disk-backed — an append-only write-ahead log with CRC-framed
//     records, periodic snapshot + log truncation, crash-safe replay on
//     open and a configurable fsync policy (see wal.go).
//   - Depot/DepotStore: the simulation's durable media — per-peer state
//     retained deterministically in memory across crashes, so scenarios
//     can model restart-with-state without touching a real disk.
package store

import (
	"errors"

	"repro/internal/core"
)

// Typed errors. Every failure the subsystem reports wraps ErrStore, so
// callers can classify any storage problem with one errors.Is; log
// corruption additionally wraps ErrCorruptLog.
var (
	// ErrStore is the class of every storage-subsystem failure: an
	// unusable data directory, an I/O error, a corrupt file.
	ErrStore = errors.New("store: storage error")

	// ErrCorruptLog reports unrecoverable corruption in the middle of a
	// write-ahead log or snapshot. A torn final record — the expected
	// shape of a mid-append crash — is tolerated and truncated, never
	// reported as this error; anything before the tail must be intact.
	ErrCorruptLog = errors.New("store: corrupt log")
)

// Item is one stored replica: the (ring position, qualifier, stamped
// value) triple a peer hosts.
type Item struct {
	RingID core.ID
	Qual   string
	Val    core.Value
}

// Counter is one persisted KTS counter: the last timestamp this peer
// generated for a key it is (or was) responsible for.
type Counter struct {
	Key core.Key
	TS  core.Timestamp
}

// Store persists one peer's recoverable state. Implementations are safe
// for concurrent use: the replica path (dht.LocalStore) and the counter
// path (kts.Service) hold separate locks and share one Store.
//
// Mutations on a durable implementation are journaled; how soon they hit
// stable storage is the fsync policy's business. Sync forces everything
// buffered down; Close syncs and releases. Crash models abrupt peer
// death — volatile state is dropped and only what the policy already
// made stable survives — so tests and the simulation can exercise the
// recovery path honestly.
type Store interface {
	// PutItem records the replica stored under (it.RingID, it.Qual),
	// overwriting any previous value.
	PutItem(it Item) error
	// GetItem returns the replica stored under (rid, qual).
	GetItem(rid core.ID, qual string) (core.Value, bool)
	// DeleteItem removes the replica stored under (rid, qual). Deleting
	// an absent item is not an error.
	DeleteItem(rid core.ID, qual string) error
	// EachItem visits every stored item in unspecified order; fn
	// returning false stops the walk. The walk holds the store's lock:
	// do not call back into the store from fn.
	EachItem(fn func(Item) bool)
	// ItemCount returns the number of stored items.
	ItemCount() int

	// PutCounter records the KTS counter for k.
	PutCounter(k core.Key, ts core.Timestamp) error
	// DeleteCounter removes the counter for k (responsibility ceded).
	DeleteCounter(k core.Key) error
	// Counters returns every persisted counter, in unspecified order.
	Counters() []Counter

	// Sync forces buffered records to stable storage.
	Sync() error
	// Crash models abrupt peer death: buffered (not yet stable) records
	// are dropped, resources are released, and the store handle becomes
	// inert. What survives is implementation-defined: nothing for Mem,
	// the synced prefix for WAL, everything for DepotStore.
	Crash()
	// Close flushes and releases the store.
	Close() error
}
