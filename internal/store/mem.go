package store

import (
	"sync"

	"repro/internal/core"
)

// Mem is the map-backed, volatile Store: the behaviour every peer had
// before the durability subsystem existed. A crash discards everything,
// which is exactly the paper's fail-stop departure model — replicas and
// counters die with the peer.
//
// Mem is internally synchronized because the replica path and the
// counter path reach it under different locks.
type Mem struct {
	mu       sync.Mutex
	items    map[core.ID]map[string]core.Value
	counters map[core.Key]core.Timestamp
}

var _ Store = (*Mem)(nil)

// NewMem returns an empty volatile store.
func NewMem() *Mem {
	return &Mem{
		items:    make(map[core.ID]map[string]core.Value),
		counters: make(map[core.Key]core.Timestamp),
	}
}

// PutItem implements Store.
func (m *Mem) PutItem(it Item) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	q := m.items[it.RingID]
	if q == nil {
		q = make(map[string]core.Value)
		m.items[it.RingID] = q
	}
	q[it.Qual] = it.Val
	return nil
}

// GetItem implements Store.
func (m *Mem) GetItem(rid core.ID, qual string) (core.Value, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	q, ok := m.items[rid]
	if !ok {
		return core.Value{}, false
	}
	v, ok := q[qual]
	return v, ok
}

// DeleteItem implements Store.
func (m *Mem) DeleteItem(rid core.ID, qual string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if q, ok := m.items[rid]; ok {
		delete(q, qual)
		if len(q) == 0 {
			delete(m.items, rid)
		}
	}
	return nil
}

// EachItem implements Store.
func (m *Mem) EachItem(fn func(Item) bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for rid, q := range m.items {
		for qual, val := range q {
			if !fn(Item{RingID: rid, Qual: qual, Val: val}) {
				return
			}
		}
	}
}

// ItemCount implements Store.
func (m *Mem) ItemCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	for _, q := range m.items {
		n += len(q)
	}
	return n
}

// PutCounter implements Store.
func (m *Mem) PutCounter(k core.Key, ts core.Timestamp) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.counters[k] = ts
	return nil
}

// DeleteCounter implements Store.
func (m *Mem) DeleteCounter(k core.Key) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.counters, k)
	return nil
}

// Counters implements Store.
func (m *Mem) Counters() []Counter {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Counter, 0, len(m.counters))
	for k, ts := range m.counters {
		out = append(out, Counter{Key: k, TS: ts})
	}
	return out
}

// Sync implements Store: memory is never any more stable than it is.
func (m *Mem) Sync() error { return nil }

// Crash implements Store: everything volatile is lost.
func (m *Mem) Crash() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.items = make(map[core.ID]map[string]core.Value)
	m.counters = make(map[core.Key]core.Timestamp)
}

// Close implements Store.
func (m *Mem) Close() error { return nil }
