package kts

import (
	"context"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dht"
	"repro/internal/network"
)

// stubRing is the minimal dht.Ring for exercising the client-side cache
// without an overlay: real wall-clock environment, no lookups.
type stubRing struct{ env network.Env }

func (r stubRing) Self() dht.NodeRef { return dht.NodeRef{} }
func (r stubRing) Lookup(ctx context.Context, id core.ID) (dht.NodeRef, int, error) {
	return dht.NodeRef{}, 0, context.Canceled
}
func (r stubRing) Endpoint() network.Endpoint { return nil }
func (r stubRing) Env() network.Env           { return r.env }
func (r stubRing) OwnsID(id core.ID) bool     { return false }
func (r stubRing) Alive() bool                { return true }

// TestLastTSCacheRaceHammer drives the last-ts cache from many
// goroutines at once — the TCP-transport shape, where concurrent client
// calls note observations while bounded reads consult them. Run under
// -race this is the memory-safety check; the assertions pin the cache's
// two semantic invariants: newest-wins (a reader never sees a timestamp
// older than one already noted for its key before its consult began)
// and non-negative ages.
func TestLastTSCacheRaceHammer(t *testing.T) {
	env := network.NewRealEnv(1)
	defer env.Close()
	s := &Service{ring: stubRing{env: env}, cfg: Config{}.withDefaults(), metrics: newKTSMetrics(nil)}

	const writers, readers, keys, rounds = 8, 8, 4, 400
	keyOf := func(i int) core.Key { return core.Key([]byte{'k', byte('0' + i%keys)}) }

	// floors[k] is a monotone lower bound on what has been noted for k:
	// writers publish it BEFORE noting, so any consult that starts
	// afterwards must see at least that timestamp.
	var floorMu sync.Mutex
	floors := map[core.Key]core.Timestamp{}

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				k := keyOf(w + i)
				ts := core.TS(uint64(i*writers + w + 1))
				floorMu.Lock()
				if floors[k].Less(ts) {
					floors[k] = ts
				}
				floorMu.Unlock()
				s.noteLastTS(k, ts)
				// Stale and zero observations must never regress the entry.
				s.noteLastTS(k, core.TS(1))
				s.noteLastTS(k, core.TSZero)
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				k := keyOf(r + i)
				floorMu.Lock()
				floor := floors[k]
				floorMu.Unlock()
				ts, age, ok := s.Cached(k)
				if !ok {
					if !floor.IsZero() {
						t.Errorf("key %s: no cache entry after %v was noted", k, floor)
					}
					continue
				}
				if ts.Less(floor) {
					t.Errorf("key %s: cached %v regressed below noted %v — newest-wins broken", k, ts, floor)
				}
				if age < 0 {
					t.Errorf("key %s: negative age %v", k, age)
				}
			}
		}(r)
	}
	wg.Wait()

	// Quiesced: every key holds exactly its final floor, and ages only
	// grow between consecutive consults of an unchanged entry.
	for i := 0; i < keys; i++ {
		k := keyOf(i)
		ts, age1, ok := s.Cached(k)
		if !ok || ts != floors[k] {
			t.Errorf("key %s: final cached = %v ok=%v, want %v", k, ts, ok, floors[k])
		}
		time.Sleep(2 * time.Millisecond)
		if _, age2, _ := s.Cached(k); age2 < age1 {
			t.Errorf("key %s: age went backwards %v → %v", k, age1, age2)
		}
	}
	if s.CacheHits() == 0 {
		t.Error("hammer produced zero cache hits")
	}
}
