package kts

import (
	"context"
	"fmt"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dht"
	"repro/internal/network"
)

// keysSharingResponsible returns count distinct keys that resolve to the
// same responsible, plus that responsible's node index.
func (c *cluster) keysSharingResponsible(count int) ([]core.Key, int) {
	byOwner := make(map[int][]core.Key)
	for i := 0; i < 4096; i++ {
		k := core.Key(fmt.Sprintf("bk%04d", i))
		idx := c.responsibleFor(k)
		byOwner[idx] = append(byOwner[idx], k)
		if len(byOwner[idx]) == count {
			return byOwner[idx], idx
		}
	}
	c.t.Fatalf("no %d keys sharing a responsible among 4096 probes", count)
	return nil, -1
}

// GenTSBatch and LastTSBatch must agree with the single-key calls on
// every counter: same start-at-one, same increments, same last_ts view,
// regardless of how the keys spread over responsibles.
func TestBatchMatchesSingleKeyCounters(t *testing.T) {
	c := newCluster(t, 11, 8, Config{Mode: ModeDirect})
	c.settle(2 * time.Second)
	keys := make([]core.Key, 10)
	for i := range keys {
		keys[i] = core.Key(fmt.Sprintf("bm%d", i))
	}
	c.do(func() {
		ctx := context.Background()
		for want := uint64(1); want <= 2; want++ {
			out, errs := c.svc().GenTSBatch(ctx, keys)
			for i := range keys {
				if errs[i] != nil {
					t.Errorf("batch gen #%d %q: %v", want, keys[i], errs[i])
				} else if out[i] != core.TS(want) {
					t.Errorf("batch gen #%d %q = %v", want, keys[i], out[i])
				}
			}
		}
		// A single-key gen interleaves with the batched ones.
		if ts, err := c.svc().GenTS(ctx, keys[3]); err != nil || ts != core.TS(3) {
			t.Errorf("single gen after batches = %v, %v", ts, err)
		}
		// last_ts: batched view matches, including a never-stamped key.
		probe := append(append([]core.Key{}, keys...), core.Key("bm-never"))
		out, errs := c.svc().LastTSBatch(ctx, probe)
		for i, k := range probe {
			want := core.TS(2)
			if k == keys[3] {
				want = core.TS(3)
			}
			if k == "bm-never" {
				want = core.TSZero
			}
			if errs[i] != nil || out[i] != want {
				t.Errorf("batch last_ts %q = %v, %v; want %v", k, out[i], errs[i], want)
			}
		}
	})
}

// A batch whose keys share a responsible must cost one RPC round — the
// same message count as a single-key call — not one round per key.
func TestBatchCostsOneRoundPerResponsible(t *testing.T) {
	c := newCluster(t, 12, 8, Config{Mode: ModeDirect})
	c.settle(2 * time.Second)
	keys, owner := c.keysSharingResponsible(4)
	// Issue from a peer that is NOT the responsible so the round trips
	// hit the wire.
	caller := c.services[(owner+1)%len(c.services)]
	c.do(func() {
		ctx := context.Background()
		// Warm every counter first so neither measured pass pays the
		// one-time indirect initialization (replica reads) — what's left
		// is lookups plus the KTS rounds themselves.
		if _, errs := caller.GenTSBatch(ctx, keys); errs[0] != nil {
			t.Fatalf("warm batch: %v", errs[0])
		}
		var singles, batch network.Meter
		for _, k := range keys {
			if _, err := caller.GenTS(network.WithMeter(ctx, &singles), k); err != nil {
				t.Fatalf("single gen %q: %v", k, err)
			}
		}
		_, errs := caller.GenTSBatch(network.WithMeter(ctx, &batch), keys)
		for i, err := range errs {
			if err != nil {
				t.Fatalf("batch gen %q: %v", keys[i], err)
			}
		}
		// Both passes resolve the same responsibles; the batch collapses
		// the four KTS rounds into one, so it must be strictly cheaper.
		if batch.Msgs == 0 || batch.Msgs >= singles.Msgs {
			t.Errorf("batch of %d keys cost %d msgs, %d single-key calls cost %d — batching must beat fan-out",
				len(keys), batch.Msgs, len(keys), singles.Msgs)
		}
	})
}

// A batch issued by the responsible itself skips the KTS round trip
// entirely (served locally), so it costs strictly less than the same
// warm batch from any other peer — the residual is ring-lookup traffic
// only.
func TestBatchServedLocallyIsFree(t *testing.T) {
	c := newCluster(t, 13, 8, Config{Mode: ModeDirect})
	c.settle(2 * time.Second)
	keys, owner := c.keysSharingResponsible(3)
	remote := c.services[(owner+1)%len(c.services)]
	c.do(func() {
		ctx := context.Background()
		// Warm the counters (the one-time indirect initialization reads
		// replicas over the wire even when served locally).
		if _, errs := c.services[owner].GenTSBatch(ctx, keys); errs[0] != nil {
			t.Fatalf("warm batch: %v", errs[0])
		}
		var local, wire network.Meter
		out, errs := c.services[owner].GenTSBatch(network.WithMeter(ctx, &local), keys)
		for i := range keys {
			if errs[i] != nil || out[i] != core.TS(2) {
				t.Errorf("local batch gen %q = %v, %v", keys[i], out[i], errs[i])
			}
		}
		if _, errs := remote.GenTSBatch(network.WithMeter(ctx, &wire), keys); errs[0] != nil {
			t.Fatalf("remote batch: %v", errs[0])
		}
		if local.Msgs >= wire.Msgs {
			t.Errorf("local batch cost %d msgs, remote %d — the local serve must skip the KTS round",
				local.Msgs, wire.Msgs)
		}
	})
}

// After a responsible crashes and the ring heals, a batch spanning the
// moved keys and untouched ones must succeed for every key, with the
// moved counters indirectly re-initialized above their last stamp.
func TestBatchAfterResponsibleCrash(t *testing.T) {
	c := newCluster(t, 14, 10, Config{Mode: ModeDirect})
	c.settle(2 * time.Second)
	moved, owner := c.keysSharingResponsible(2)
	other := core.Key("bc-other")
	if c.responsibleFor(other) == owner {
		other = core.Key("bc-other2")
	}
	keys := append(append([]core.Key{}, moved...), other)

	// Stamp every key and store replicas carrying the stamps, as UMS
	// would — the indirect algorithm reads these after the crash.
	client := dht.NewClient(c.nodes[(owner+1)%len(c.nodes)], "ums")
	c.do(func() {
		ctx := context.Background()
		out, errs := c.svc().GenTSBatch(ctx, keys)
		for i, k := range keys {
			if errs[i] != nil {
				t.Fatalf("pre-crash gen %q: %v", k, errs[i])
			}
			for _, h := range c.set.Hr {
				client.PutH(ctx, k, h, core.Value{Data: []byte("v"), TS: out[i]}, dht.PutIfNewer)
			}
		}
	})

	c.nodes[owner].Crash()
	c.net.Kill(c.nodes[owner].Self().Addr)
	c.settle(5 * time.Second) // ring heals

	c.do(func() {
		out, errs := c.svc().GenTSBatch(context.Background(), keys)
		for i, k := range keys {
			if errs[i] != nil {
				t.Errorf("post-crash batch gen %q: %v", k, errs[i])
				continue
			}
			// Moved keys re-initialize indirectly (tsm+1), so the first
			// gen after the crash returns tsm+2; the untouched key just
			// increments.
			want := core.TS(3)
			if k == other {
				want = core.TS(2)
			}
			if out[i] != want {
				t.Errorf("post-crash gen %q = %v; want %v", k, out[i], want)
			}
		}
	})
}

// A cancelled context fails every slot of the batch without touching
// the wire.
func TestBatchCancelledContext(t *testing.T) {
	c := newCluster(t, 15, 8, Config{Mode: ModeDirect})
	c.settle(2 * time.Second)
	keys := []core.Key{"bx0", "bx1", "bx2"}
	c.do(func() {
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		_, errs := c.svc().GenTSBatch(ctx, keys)
		for i, err := range errs {
			if err == nil {
				t.Errorf("key %q succeeded under a cancelled context", keys[i])
			}
		}
	})
}

// The batch messages charge the bandwidth model proportionally to their
// payload, like every other wire message.
func TestBatchWireSizesScale(t *testing.T) {
	small := BatchReq{Keys: []core.Key{"a"}}
	big := BatchReq{Keys: []core.Key{"a", "b", "c", "d"}}
	if small.WireSize() <= 0 || big.WireSize() <= small.WireSize() {
		t.Errorf("BatchReq wire sizes: small %d, big %d", small.WireSize(), big.WireSize())
	}
	rs := BatchResp{TS: make([]core.Timestamp, 1), Code: []string{""}, Msg: []string{""}}
	rb := BatchResp{TS: make([]core.Timestamp, 4), Code: make([]string, 4), Msg: make([]string, 4)}
	if rs.WireSize() <= 0 || rb.WireSize() <= rs.WireSize() {
		t.Errorf("BatchResp wire sizes: small %d, big %d", rs.WireSize(), rb.WireSize())
	}
	cb := CounterBatch{Entries: []CounterEntry{{Key: "k", TS: core.TS(1)}}}
	if cb.WireSize() <= 0 {
		t.Errorf("CounterBatch wire size %d", cb.WireSize())
	}
}
