package kts

import (
	"context"
	"testing"
	"time"

	"repro/internal/core"
)

// TestLastTSCacheObservesClientCalls: the issuing service caches the
// answers of its own gen_ts/last_ts calls, with ages that grow with
// environment time and reset on re-confirmation.
func TestLastTSCacheObservesClientCalls(t *testing.T) {
	c := newCluster(t, 1, 8, Config{})
	c.settle(3 * time.Second)

	issuer := c.svc()
	if _, _, ok := issuer.Cached("k"); ok {
		t.Fatal("cache hit before any call")
	}

	var ts1 core.Timestamp
	c.do(func() {
		var err error
		if ts1, err = issuer.GenTS(context.Background(), "k"); err != nil {
			t.Errorf("gen_ts: %v", err)
		}
	})
	cts, age, ok := issuer.Cached("k")
	if !ok || cts != ts1 {
		t.Fatalf("cached = %v ok=%v, want the generated %v", cts, ok, ts1)
	}
	if age < 0 {
		t.Fatalf("negative age %v", age)
	}

	// Age grows with (virtual) time...
	c.settle(10 * time.Second)
	_, age2, _ := issuer.Cached("k")
	if age2 < 10*time.Second {
		t.Fatalf("age %v did not grow across 10s", age2)
	}
	// ...and a fresh authoritative answer resets it, even when the
	// timestamp itself is unchanged (the authority re-confirmed it).
	c.do(func() {
		if _, err := issuer.LastTS(context.Background(), "k"); err != nil {
			t.Errorf("last_ts: %v", err)
		}
	})
	cts, age3, ok := issuer.Cached("k")
	if !ok || cts != ts1 || age3 >= age2 {
		t.Fatalf("after re-confirmation: ts=%v age=%v (was %v), want same ts with a reset age", cts, age3, age2)
	}

	if issuer.CacheHits() == 0 {
		t.Fatal("cache hits not counted")
	}
}

// TestLastTSCacheNeverMovesBackwards: an older observation cannot
// overwrite a newer cached timestamp.
func TestLastTSCacheNeverMovesBackwards(t *testing.T) {
	c := newCluster(t, 2, 8, Config{})
	c.settle(3 * time.Second)
	issuer := c.svc()

	issuer.noteLastTS("k", core.TS(5))
	issuer.noteLastTS("k", core.TS(3)) // stale observation: ignored
	if cts, _, _ := issuer.Cached("k"); cts != core.TS(5) {
		t.Fatalf("cache moved backwards to %v", cts)
	}
	issuer.noteLastTS("k", core.TS(9))
	if cts, _, _ := issuer.Cached("k"); cts != core.TS(9) {
		t.Fatalf("cache did not advance: %v", cts)
	}
	// A zero timestamp (never stamped) is not worth caching.
	issuer.noteLastTS("fresh", core.TSZero)
	if _, _, ok := issuer.Cached("fresh"); ok {
		t.Fatal("zero timestamp was cached")
	}
}
