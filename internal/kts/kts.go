// Package kts implements the paper's Key-based Timestamping Service
// (§4): distributed generation of monotonically increasing per-key
// timestamps using local counters at the peer responsible for
// rsp(k, hts).
//
// Monotonicity rests on counter initialization across responsibility
// changes:
//
//   - direct algorithm (§4.2.1): on graceful handoffs the substrate moves
//     the counters to the next responsible in O(1) messages (the service
//     registers a dht.Handover);
//   - indirect algorithm (§4.2.2): after failures — or always, in
//     ModeIndirect — the new responsible reconstructs the counter by
//     reading the replicas stored in the DHT and taking max(ts)+1, after
//     a grace delay that lets in-flight timestamps commit;
//   - recovery (§4.2.2): a restarted responsible ships its counters to
//     the current responsible, which corrects upward;
//   - periodic inspection (§4.2.2): the responsible re-reads replicas and
//     raises counters that initialization under-estimated.
package kts

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/dht"
	"repro/internal/hashing"
	"repro/internal/network"
	"repro/internal/obs"
)

// InitMode selects the counter initialization strategy — the UMS-Direct /
// UMS-Indirect axis of §5.
type InitMode int

const (
	// ModeDirect transfers counters on graceful handoffs and falls back
	// to the indirect algorithm when a counter never arrived (fail case,
	// or a brand-new key).
	ModeDirect InitMode = iota
	// ModeIndirect never transfers counters: every responsibility change
	// re-initializes from the replicas in the DHT.
	ModeIndirect
)

func (m InitMode) String() string {
	if m == ModeIndirect {
		return "indirect"
	}
	return "direct"
}

// Config tunes the service.
type Config struct {
	// Mode is the initialization strategy.
	Mode InitMode
	// GraceDelay is how long the indirect algorithm waits before reading
	// replicas, so timestamps granted by the previous responsible can be
	// committed (§4.2.2 "it waits a while"). Default 500ms; a negative
	// value means "no wait" (the zero value selects the default, so an
	// explicit zero wait needs its own spelling).
	GraceDelay time.Duration
	// InspectEvery enables periodic inspection with the given period;
	// zero disables it.
	InspectEvery time.Duration
	// InspectPerRound caps how many counters one inspection round
	// re-reads. Default 4.
	InspectPerRound int
	// RLU enables the Responsibility-Loss-Unaware fallback of §4.3: the
	// counter is discarded after every generated timestamp, so every
	// gen_ts pays an initialization. Only for DHTs that cannot detect
	// responsibility loss; Chord and CAN are RLA, so this exists as an
	// ablation.
	RLU bool
	// RPCTimeout is the service's per-call patience: a gen_ts/last_ts
	// round trip can legitimately take many ring RPCs of server-side
	// work, so it needs more slack than one protocol probe. A caller
	// context with a sooner deadline always wins; zero uses the
	// transport default.
	RPCTimeout time.Duration
	// LookupRetries is how often gen_ts/last_ts re-resolve the
	// responsible when it moved or died mid-call. Default 3.
	LookupRetries int
	// Persist, when non-nil, journals every counter mutation so a
	// restarted peer can ship its pre-crash counters back to the current
	// responsible (§4.2.2's recovery strategy). Typically the store.Store
	// backing the peer's replica store, so replicas and counters form one
	// recoverable unit. gen_ts refuses to acknowledge a timestamp whose
	// journal write failed — durable monotonicity over availability.
	Persist CounterLog
	// Obs receives timestamping metrics (grants, initializations, cache
	// hits/misses/age, journal write failures, live counter count). Nil
	// disables export; the metrics are still maintained but unregistered.
	Obs *obs.Registry
}

// CounterLog is the slice of a storage backing the service journals
// counters through; store.Store satisfies it.
type CounterLog interface {
	PutCounter(k core.Key, ts core.Timestamp) error
	DeleteCounter(k core.Key) error
}

func (c Config) withDefaults() Config {
	if c.GraceDelay == 0 {
		c.GraceDelay = 500 * time.Millisecond
	} else if c.GraceDelay < 0 {
		c.GraceDelay = 0
	}
	if c.InspectPerRound == 0 {
		c.InspectPerRound = 4
	}
	if c.LookupRetries == 0 {
		c.LookupRetries = 3
	}
	return c
}

// Service methods registered on the endpoint.
const (
	MethodGenTS       = "kts.GenTS"
	MethodLastTS      = "kts.LastTS"
	MethodGenTSBatch  = "kts.GenTSBatch"
	MethodLastTSBatch = "kts.LastTSBatch"
	MethodRecover     = "kts.Recover"
)

// GenTSReq asks the responsible of timestamping for a new timestamp —
// the TSR message of §4.1.1.
type GenTSReq struct{ Key core.Key }

// GenTSResp carries the generated timestamp plus the communication cost
// the responsible spent on the caller's behalf (indirect initialization).
type GenTSResp struct {
	TS   core.Timestamp
	Cost network.Meter
}

// LastTSReq asks for the last timestamp generated for a key.
type LastTSReq struct{ Key core.Key }

// LastTSResp carries the last timestamp (zero when the key has never
// been stamped) and the server-side cost.
type LastTSResp struct {
	TS   core.Timestamp
	Cost network.Meter
}

// BatchReq asks the responsible for timestamps (gen_ts) or last
// timestamps (last_ts) for a whole group of keys it serves — the
// one-round-per-replica-set fan-in behind PutMulti/GetMulti. The keys
// necessarily share a responsible at resolution time; ones that moved
// since come back with a per-key ErrNotResponsible so the caller
// re-resolves just those.
type BatchReq struct{ Keys []core.Key }

// WireSize charges the batch proportionally to its keys.
func (r BatchReq) WireSize() int {
	n := network.DefaultWireSize
	for _, k := range r.Keys {
		n += 8 + len(k)
	}
	return n
}

// BatchResp carries per-key outcomes, parallel to the request's Keys:
// Code[i] is empty on success (TS[i] valid) or a network error code.
type BatchResp struct {
	TS   []core.Timestamp
	Code []string
	Msg  []string
	Cost network.Meter
}

// WireSize charges the response proportionally to its entries.
func (r BatchResp) WireSize() int {
	n := network.DefaultWireSize + 24*len(r.TS)
	for i := range r.Code {
		n += len(r.Code[i]) + len(r.Msg[i])
	}
	return n
}

// CounterEntry is one (key, counter) pair moved by handover or recovery.
type CounterEntry struct {
	Key core.Key
	TS  core.Timestamp
}

// CounterBatch is the handover payload of the direct algorithm.
type CounterBatch struct{ Entries []CounterEntry }

// WireSize charges the batch against the bandwidth model.
func (b CounterBatch) WireSize() int {
	n := network.DefaultWireSize
	for _, e := range b.Entries {
		n += 24 + len(e.Key)
	}
	return n
}

// RecoverReq is the recovery strategy's message: a restarted former
// responsible ships the counters it held before failing.
type RecoverReq struct{ Entries []CounterEntry }

// RecoverResp reports how many counters the receiver corrected.
type RecoverResp struct{ Corrected int }

func init() {
	network.RegisterMessage(
		GenTSReq{}, GenTSResp{}, LastTSReq{}, LastTSResp{},
		BatchReq{}, BatchResp{},
		CounterBatch{}, RecoverReq{}, RecoverResp{},
	)
}

// RepairFunc is invoked when recovery or inspection raises a counter:
// UMS registers one to re-stamp the data stored under the stale
// timestamp (§4.2.2's "reinserts the data ... with the correct value").
type RepairFunc func(k core.Key, oldTS, newTS core.Timestamp)

// Service is the per-peer KTS instance.
type Service struct {
	ring   dht.Ring
	set    hashing.Set
	client *dht.Client // reads the replica namespace for indirect init
	cfg    Config

	// mu guards vcs and the statistics (required on the TCP transport;
	// under simulation execution is already serialized).
	mu  sync.Mutex
	vcs *VCS

	// cache holds the last-ts answers this peer has observed as a
	// client (from its own gen_ts and last_ts calls), each with the
	// environment time it was observed at. It powers bounded-staleness
	// reads: a retrieve may accept a replica at or past a cached floor
	// whose age is within its bound, with no KTS round trip. It keeps
	// its own striped locks, decoupled from mu, so hot bounded reads
	// never contend with the server-side counter work.
	cache lastTSCache

	onRepair RepairFunc

	// statistics
	generated      uint64
	indirectInits  uint64
	directArrivals uint64
	cacheHits      atomic.Uint64

	metrics ktsMetrics
}

// lastTSCache is the client-side last-ts cache, striped by key hash:
// concurrent drivers consulting or refreshing floors for different keys
// proceed in parallel instead of serializing on the service mutex.
type lastTSCache struct {
	stripes [cacheStripes]cacheShard
}

type cacheShard struct {
	mu sync.Mutex
	m  map[core.Key]cacheEntry
}

// cacheStripes is the cache's lock fan-out (a power of two).
const cacheStripes = 16

// shardOf picks a key's stripe by FNV-1a, independent of the ring
// hashes so cache contention does not correlate with replica placement.
func (c *lastTSCache) shardOf(k core.Key) *cacheShard {
	h := uint32(2166136261)
	for i := 0; i < len(k); i++ {
		h ^= uint32(k[i])
		h *= 16777619
	}
	return &c.stripes[h&(cacheStripes-1)]
}

// get returns the entry for k, if any.
func (c *lastTSCache) get(k core.Key) (cacheEntry, bool) {
	s := c.shardOf(k)
	s.mu.Lock()
	e, ok := s.m[k]
	s.mu.Unlock()
	return e, ok
}

// note records an observation; newer timestamps win, equal ones refresh
// the age. Each stripe holds its share of the global cap.
func (c *lastTSCache) note(k core.Key, ts core.Timestamp, at time.Duration) {
	s := c.shardOf(k)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.m == nil {
		s.m = make(map[core.Key]cacheEntry)
	}
	if e, ok := s.m[k]; ok {
		if ts.Less(e.ts) {
			return
		}
	} else if len(s.m) >= cacheCap/cacheStripes {
		// Only a genuinely new key can grow the stripe past its cap;
		// overwriting an existing entry never evicts a warm floor.
		for victim := range s.m {
			delete(s.m, victim)
			break
		}
	}
	s.m[k] = cacheEntry{ts: ts, at: at}
}

// ktsMetrics export the timestamping-side of the currency/cost trade:
// how often timestamps are granted, how counters get (re)initialized,
// how well the client-side last-ts cache serves bounded reads, and
// whether the durability journal ever refused a grant.
type ktsMetrics struct {
	grants         *obs.Counter
	indirectInits  *obs.Counter
	directArrivals *obs.Counter
	cacheHits      *obs.Counter
	cacheMisses    *obs.Counter
	cacheAge       *obs.Histogram
	journalFails   *obs.Counter
	recoveries     *obs.Counter
	genTSReqs      *obs.Counter
	lastTSReqs     *obs.Counter
}

func newKTSMetrics(r *obs.Registry) ktsMetrics {
	return ktsMetrics{
		grants: r.Counter("dcdht_kts_grants_total",
			"Timestamps granted by gen_ts on this responsible."),
		indirectInits: r.Counter("dcdht_kts_indirect_inits_total",
			"Counters initialized by reading replicas (Figure 5)."),
		directArrivals: r.Counter("dcdht_kts_direct_arrivals_total",
			"Counters received through direct handover batches."),
		cacheHits: r.Counter("dcdht_kts_cache_hits_total",
			"last-ts cache consults that found an entry."),
		cacheMisses: r.Counter("dcdht_kts_cache_misses_total",
			"last-ts cache consults that found nothing."),
		cacheAge: r.DurationHistogram("dcdht_kts_cache_age_seconds",
			"Age of last-ts cache entries at consult time."),
		journalFails: r.Counter("dcdht_kts_journal_failures_total",
			"Counter journal writes that failed (grants refused)."),
		recoveries: r.Counter("dcdht_kts_recover_corrections_total",
			"Counters corrected upward by the §4.2.2 recovery strategy."),
		genTSReqs: r.Counter("dcdht_kts_gents_requests_total",
			"Client-side gen_ts requests issued against the KTS tier."),
		lastTSReqs: r.Counter("dcdht_kts_lastts_requests_total",
			"Client-side last_ts requests issued against the KTS tier."),
	}
}

// cacheEntry is one observed last-ts with its observation time.
type cacheEntry struct {
	ts core.Timestamp
	at time.Duration
}

// cacheCap bounds the last-ts cache. Eviction order is arbitrary, so
// the cap is set far above any simulated working set — determinism is
// only at risk for clients tracking more than 64k hot keys per peer.
const cacheCap = 1 << 16

// New attaches a KTS service to a peer. replicaNS names the namespace in
// which UMS stores stamped replicas (indirect initialization reads it).
// If the ring supports handovers the service registers itself so
// counters travel with responsibility (the direct algorithm).
func New(ring dht.Ring, set hashing.Set, replicaNS string, cfg Config) *Service {
	s := &Service{
		ring:    ring,
		set:     set,
		client:  dht.NewClient(ring, replicaNS),
		cfg:     cfg.withDefaults(),
		vcs:     NewVCS(),
		metrics: newKTSMetrics(cfg.Obs),
	}
	cfg.Obs.GaugeFunc("dcdht_kts_counters",
		"Valid counters currently held (cluster-wide under a shared registry).",
		func() float64 {
			if !s.ring.Alive() {
				return 0
			}
			return float64(s.VCSLen())
		})
	s.registerHandlers()
	if r, ok := ring.(dht.HandoverRegistrar); ok {
		r.RegisterHandover(s)
	}
	if s.cfg.InspectEvery > 0 {
		s.startInspection()
	}
	return s
}

// persistPut journals k's counter; callers hold s.mu. A nil journal is
// a no-op (volatile peers).
func (s *Service) persistPut(k core.Key, ts core.Timestamp) error {
	if s.cfg.Persist == nil {
		return nil
	}
	if err := s.cfg.Persist.PutCounter(k, ts); err != nil {
		return fmt.Errorf("kts: persist counter %q: %w", k, err)
	}
	return nil
}

// persistDelete journals a counter removal; callers hold s.mu. Removal
// failures are tolerated: a resurrected counter can only be too high,
// which never breaks monotonicity.
func (s *Service) persistDelete(k core.Key) {
	if s.cfg.Persist != nil {
		s.cfg.Persist.DeleteCounter(k)
	}
}

// SeedCounters installs counters recovered from a durable store,
// max-merged with anything already present. A restarted node calls this
// before serving, then runs RecoverTo so the counters also reach
// whoever is responsible now.
func (s *Service) SeedCounters(entries []CounterEntry) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, e := range entries {
		if cur, ok := s.vcs.Get(e.Key); !ok || cur.Less(e.TS) {
			s.vcs.Put(e.Key, e.TS)
		}
	}
}

// SetRepair installs the repair callback (UMS wires itself in).
func (s *Service) SetRepair(fn RepairFunc) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.onRepair = fn
}

// VCSLen reports the number of valid counters held (tests, stats).
func (s *Service) VCSLen() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.vcs.Len()
}

// Stats reports service counters.
func (s *Service) Stats() (generated, indirectInits, directArrivals uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.generated, s.indirectInits, s.directArrivals
}

// Cached returns the freshest last-ts this peer has observed for k as a
// client, together with the observation's age. ok is false when the
// peer has never seen a timestamp for k. The caller decides whether the
// age is acceptable (bounded-staleness reads compare it to their
// bound); a successful consult counts as a cache hit.
func (s *Service) Cached(k core.Key) (ts core.Timestamp, age time.Duration, ok bool) {
	now := s.ring.Env().Now()
	e, ok := s.cache.get(k)
	if !ok {
		s.metrics.cacheMisses.Inc()
		return core.TSZero, 0, false
	}
	s.cacheHits.Add(1)
	age = now - e.at
	s.metrics.cacheHits.Inc()
	s.metrics.cacheAge.Observe(age)
	return e.ts, age, true
}

// CacheHits reports how many Cached consults found an entry.
func (s *Service) CacheHits() uint64 {
	return s.cacheHits.Load()
}

// noteLastTS records an observed last-ts for k at the current
// environment time. Newer observations win; an equal timestamp
// refreshes the entry's age (the authority re-confirmed it).
func (s *Service) noteLastTS(k core.Key, ts core.Timestamp) {
	if ts.IsZero() {
		return
	}
	s.cache.note(k, ts, s.ring.Env().Now())
}

// ---- client-side operations -------------------------------------------

// GenTS generates the next timestamp for k: it locates rsp(k, hts) and
// sends it a timestamp request. This is the paper's KTS.gen_ts(k). The
// context bounds the call and carries the operation's meter.
func (s *Service) GenTS(ctx context.Context, k core.Key) (core.Timestamp, error) {
	s.metrics.genTSReqs.Inc()
	resp, err := s.callResponsible(ctx, MethodGenTS, GenTSReq{Key: k}, k)
	if err != nil {
		return core.TSZero, fmt.Errorf("kts: gen_ts(%q): %w", k, err)
	}
	r := resp.(GenTSResp)
	network.MeterFrom(ctx).Merge(r.Cost)
	// A freshly generated timestamp IS the key's last_ts at this
	// moment: cache it so the writer's subsequent bounded reads (and
	// read-your-writes through a session) skip the KTS round trip.
	s.noteLastTS(k, r.TS)
	return r.TS, nil
}

// LastTS returns the last timestamp generated for k (zero when none) —
// the paper's KTS.last_ts(k).
func (s *Service) LastTS(ctx context.Context, k core.Key) (core.Timestamp, error) {
	s.metrics.lastTSReqs.Inc()
	resp, err := s.callResponsible(ctx, MethodLastTS, LastTSReq{Key: k}, k)
	if err != nil {
		return core.TSZero, fmt.Errorf("kts: last_ts(%q): %w", k, err)
	}
	r := resp.(LastTSResp)
	network.MeterFrom(ctx).Merge(r.Cost)
	s.noteLastTS(k, r.TS)
	return r.TS, nil
}

// GenTSBatch generates timestamps for many keys in one KTS round per
// responsible: keys are grouped by rsp(k, hts) and each group travels as
// a single gen_ts batch message instead of |keys| independent round
// trips. Outcomes are per key (out[i], errs[i] parallel to keys); keys
// whose responsible moved or died mid-call are retried individually like
// the single-key path. This is PutMulti's fan-in.
func (s *Service) GenTSBatch(ctx context.Context, keys []core.Key) ([]core.Timestamp, []error) {
	s.metrics.genTSReqs.Add(uint64(len(keys)))
	out, errs := s.batchCall(ctx, MethodGenTSBatch, keys)
	for i, k := range keys {
		if errs[i] == nil {
			// A freshly generated timestamp IS the key's last_ts.
			s.noteLastTS(k, out[i])
		} else {
			errs[i] = fmt.Errorf("kts: gen_ts(%q): %w", k, errs[i])
		}
	}
	return out, errs
}

// LastTSBatch fetches last timestamps for many keys in one KTS round per
// responsible — GetMulti's fan-in. Outcomes are per key; a zero
// timestamp with a nil error means the key was never stamped.
func (s *Service) LastTSBatch(ctx context.Context, keys []core.Key) ([]core.Timestamp, []error) {
	s.metrics.lastTSReqs.Add(uint64(len(keys)))
	out, errs := s.batchCall(ctx, MethodLastTSBatch, keys)
	for i, k := range keys {
		if errs[i] == nil {
			s.noteLastTS(k, out[i])
		} else {
			errs[i] = fmt.Errorf("kts: last_ts(%q): %w", k, errs[i])
		}
	}
	return out, errs
}

// retryableCallErr reports whether a per-key or transport error means
// "re-resolve the responsible and try again" (the same set the
// single-key path retries on).
func retryableCallErr(err error) bool {
	return errors.Is(err, core.ErrNotResponsible) || errors.Is(err, core.ErrTimeout) ||
		errors.Is(err, core.ErrUnreachable)
}

// batchCall is the grouped analogue of callResponsible: resolve every
// key's responsible, batch the keys per responsible, and issue one RPC
// per group — the local group is served free of charge. Keys that come
// back with a retryable outcome re-resolve on the next attempt.
func (s *Service) batchCall(ctx context.Context, method string, keys []core.Key) ([]core.Timestamp, []error) {
	n := len(keys)
	out := make([]core.Timestamp, n)
	errs := make([]error, n)
	pending := make([]int, 0, n)
	for i := range keys {
		pending = append(pending, i)
	}
	for attempt := 0; attempt <= s.cfg.LookupRetries && len(pending) > 0; attempt++ {
		if attempt > 0 {
			// A responsible moved or died: give the ring a beat to
			// converge before re-resolving.
			if serr := network.SleepCtx(ctx, s.ring.Env(), 200*time.Millisecond); serr != nil {
				for _, i := range pending {
					errs[i] = serr
				}
				return out, errs
			}
		}
		if err := network.CtxError(ctx); err != nil {
			for _, i := range pending {
				errs[i] = err
			}
			return out, errs
		}
		// Group the pending keys by responsible, preserving first-seen
		// order so the round's RPC sequence is deterministic.
		var order []network.Addr
		groups := make(map[network.Addr][]int)
		for _, i := range pending {
			ref, _, err := s.ring.Lookup(ctx, s.set.HTS.ID(keys[i]))
			if err != nil {
				errs[i] = err
				continue
			}
			if _, seen := groups[ref.Addr]; !seen {
				order = append(order, ref.Addr)
			}
			groups[ref.Addr] = append(groups[ref.Addr], i)
		}
		var next []int
		for _, addr := range order {
			idx := groups[addr]
			req := BatchReq{Keys: make([]core.Key, len(idx))}
			for j, i := range idx {
				req.Keys[j] = keys[i]
			}
			var resp network.Message
			var err error
			if addr == s.ring.Self().Addr {
				// We are the responsible: serve locally, free of charge.
				resp, err = s.serveLocal(method, req)
			} else {
				resp, err = s.ring.Endpoint().Invoke(ctx, addr, method, req, network.Call{
					Timeout: s.cfg.RPCTimeout,
				})
			}
			if err != nil {
				// The whole group shares the transport outcome.
				for _, i := range idx {
					errs[i] = err
					if retryableCallErr(err) {
						next = append(next, i)
					}
				}
				continue
			}
			r := resp.(BatchResp)
			network.MeterFrom(ctx).Merge(r.Cost)
			for j, i := range idx {
				if r.Code[j] == "" {
					out[i], errs[i] = r.TS[j], nil
					continue
				}
				errs[i] = network.DecodeError(r.Code[j], r.Msg[j])
				if retryableCallErr(errs[i]) {
					next = append(next, i)
				}
			}
		}
		pending = next
	}
	return out, errs
}

// callResponsible resolves rsp(k, hts) and invokes a method on it,
// re-resolving when responsibility moved or the peer died mid-call.
func (s *Service) callResponsible(ctx context.Context, method string, req network.Message, k core.Key) (network.Message, error) {
	id := s.set.HTS.ID(k)
	var lastErr error
	for attempt := 0; attempt <= s.cfg.LookupRetries; attempt++ {
		if err := network.CtxError(ctx); err != nil {
			return nil, err
		}
		ref, _, err := s.ring.Lookup(ctx, id)
		if err != nil {
			return nil, err
		}
		var resp network.Message
		if ref.Addr == s.ring.Self().Addr {
			// We are the responsible: serve locally, free of charge.
			resp, err = s.serveLocal(method, req)
		} else {
			resp, err = s.ring.Endpoint().Invoke(ctx, ref.Addr, method, req, network.Call{
				Timeout: s.cfg.RPCTimeout,
			})
		}
		if err == nil {
			return resp, nil
		}
		lastErr = err
		if !errors.Is(err, core.ErrNotResponsible) && !errors.Is(err, core.ErrTimeout) &&
			!errors.Is(err, core.ErrUnreachable) {
			return nil, err
		}
		// The responsible moved or died: give the ring a beat to
		// converge before re-resolving.
		if serr := network.SleepCtx(ctx, s.ring.Env(), 200*time.Millisecond); serr != nil {
			return nil, serr
		}
	}
	return nil, lastErr
}

func (s *Service) serveLocal(method string, req network.Message) (network.Message, error) {
	switch method {
	case MethodGenTS:
		return s.handleGenTS(req.(GenTSReq))
	case MethodLastTS:
		return s.handleLastTS(req.(LastTSReq))
	case MethodGenTSBatch:
		return s.handleBatch(req.(BatchReq), true), nil
	case MethodLastTSBatch:
		return s.handleBatch(req.(BatchReq), false), nil
	case MethodRecover:
		return s.handleRecover(req.(RecoverReq)), nil
	default:
		return nil, fmt.Errorf("kts: unknown local method %q", method)
	}
}

// ---- server-side handlers ----------------------------------------------

func (s *Service) registerHandlers() {
	ep := s.ring.Endpoint()
	ep.Handle(MethodGenTS, func(_ network.Addr, req network.Message) (network.Message, error) {
		return s.handleGenTS(req.(GenTSReq))
	})
	ep.Handle(MethodLastTS, func(_ network.Addr, req network.Message) (network.Message, error) {
		return s.handleLastTS(req.(LastTSReq))
	})
	ep.Handle(MethodGenTSBatch, func(_ network.Addr, req network.Message) (network.Message, error) {
		return s.handleBatch(req.(BatchReq), true), nil
	})
	ep.Handle(MethodLastTSBatch, func(_ network.Addr, req network.Message) (network.Message, error) {
		return s.handleBatch(req.(BatchReq), false), nil
	})
	ep.Handle(MethodRecover, func(_ network.Addr, req network.Message) (network.Message, error) {
		return s.handleRecover(req.(RecoverReq)), nil
	})
}

// handleBatch serves a grouped gen_ts/last_ts request: each key runs the
// ordinary single-key handler concurrently (so indirect initializations
// overlap their grace delays exactly as independent requests would) and
// lands its outcome in the response slot matching the request's order.
// Per-key failures — above all ErrNotResponsible for keys that moved
// since the caller resolved — travel back as error codes, never failing
// the keys this peer still serves.
func (s *Service) handleBatch(req BatchReq, gen bool) BatchResp {
	n := len(req.Keys)
	resp := BatchResp{
		TS:   make([]core.Timestamp, n),
		Code: make([]string, n),
		Msg:  make([]string, n),
	}
	costs := make([]network.Meter, n)
	joinErr := network.GoJoin(s.ring.Env(), n, 10*time.Millisecond, func(i int) {
		var r network.Message
		var err error
		if gen {
			r, err = s.handleGenTS(GenTSReq{Key: req.Keys[i]})
		} else {
			r, err = s.handleLastTS(LastTSReq{Key: req.Keys[i]})
		}
		if err != nil {
			resp.Code[i], resp.Msg[i] = network.EncodeError(err)
			return
		}
		if gen {
			g := r.(GenTSResp)
			resp.TS[i], costs[i] = g.TS, g.Cost
		} else {
			l := r.(LastTSResp)
			resp.TS[i], costs[i] = l.TS, l.Cost
		}
	})
	if joinErr != nil {
		// The environment shut down mid-batch: fail the slots that never
		// produced an outcome.
		for i := range resp.Code {
			if resp.Code[i] == "" && resp.TS[i].IsZero() {
				resp.Code[i], resp.Msg[i] = network.EncodeError(joinErr)
			}
		}
	}
	for _, c := range costs {
		resp.Cost.Merge(c)
	}
	return resp
}

// handleGenTS implements Figure 4: ensure the counter exists (initialize
// if not), increment, return.
func (s *Service) handleGenTS(req GenTSReq) (network.Message, error) {
	k := req.Key
	if err := s.checkResponsible(k); err != nil {
		return nil, err
	}
	var cost network.Meter
	c, err := s.ensureCounter(network.WithMeter(context.Background(), &cost), k)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	// Re-read under the lock: a concurrent gen_ts or an arriving direct
	// handover may have advanced the counter while we initialized.
	if cur, ok := s.vcs.Get(k); ok && c.Less(cur) {
		c = cur
	}
	next := c.Next()
	s.vcs.Put(k, next)
	perr := s.persistPut(k, next)
	s.generated++
	if s.cfg.RLU {
		// RLU strategy (§4.3): assume responsibility is lost after every
		// generation, so remove the counter (the next gen_ts must
		// re-initialize).
		s.vcs.Delete(k)
		s.persistDelete(k)
	}
	s.mu.Unlock()
	if perr != nil {
		// The in-memory counter already advanced (safe — gaps never break
		// monotonicity) but the journal missed the grant: refuse to hand
		// out a timestamp that would not survive our own restart.
		s.metrics.journalFails.Inc()
		return nil, perr
	}
	s.metrics.grants.Inc()
	return GenTSResp{TS: next, Cost: cost}, nil
}

// handleLastTS implements last_ts: like gen_ts but without incrementing.
func (s *Service) handleLastTS(req LastTSReq) (network.Message, error) {
	k := req.Key
	if err := s.checkResponsible(k); err != nil {
		return nil, err
	}
	var cost network.Meter
	c, err := s.ensureCounter(network.WithMeter(context.Background(), &cost), k)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	if cur, ok := s.vcs.Get(k); ok && c.Less(cur) {
		c = cur
	}
	s.mu.Unlock()
	return LastTSResp{TS: c, Cost: cost}, nil
}

// handleRecover implements the recovery strategy: correct counters upward
// from a restarted responsible's snapshot and trigger repairs for data
// stamped with under-estimated counters.
func (s *Service) handleRecover(req RecoverReq) RecoverResp {
	corrected := 0
	type repairJob struct {
		key          core.Key
		oldTS, newTS core.Timestamp
	}
	var repairs []repairJob
	s.mu.Lock()
	repair := s.onRepair
	for _, e := range req.Entries {
		cur, ok := s.vcs.Get(e.Key)
		if !ok {
			// We have not touched this key yet; adopt the snapshot.
			s.vcs.Put(e.Key, e.TS)
			s.persistPut(e.Key, e.TS)
			corrected++
			continue
		}
		if cur.Less(e.TS) {
			// We initialized too low and may have issued duplicate-range
			// timestamps; jump past the snapshot and repair stored data.
			fixed := e.TS.Max(cur.Add(1))
			s.vcs.Put(e.Key, fixed)
			s.persistPut(e.Key, fixed)
			repairs = append(repairs, repairJob{key: e.Key, oldTS: cur, newTS: fixed})
			corrected++
		}
	}
	s.mu.Unlock()
	s.metrics.recoveries.Add(uint64(corrected))
	if repair != nil {
		for _, r := range repairs {
			repair(r.key, r.oldTS, r.newTS)
		}
	}
	return RecoverResp{Corrected: corrected}
}

// checkResponsible rejects requests for keys whose hts position this
// peer does not own (a stale lookup routed here).
func (s *Service) checkResponsible(k core.Key) error {
	if !s.ring.Alive() {
		return core.ErrStopped
	}
	if !s.ring.OwnsID(s.set.HTS.ID(k)) {
		return fmt.Errorf("kts: %s does not own hts(%q): %w", s.ring.Self().ID, k, core.ErrNotResponsible)
	}
	return nil
}

// ensureCounter returns the counter for k, initializing it if absent.
// Initialization is the indirect algorithm (Figure 5); in ModeDirect it
// only runs when no transferred counter arrived (failure of the previous
// responsible, or a brand-new key — indistinguishable cases). The
// server-side communication cost lands on the meter ctx carries, so it
// can be reported back to the requesting peer.
func (s *Service) ensureCounter(ctx context.Context, k core.Key) (core.Timestamp, error) {
	s.mu.Lock()
	if ts, ok := s.vcs.Get(k); ok {
		s.mu.Unlock()
		return ts, nil
	}
	s.mu.Unlock()

	init, err := s.indirectInit(ctx, k)
	if err != nil {
		return core.TSZero, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if cur, ok := s.vcs.Get(k); ok {
		// Lost a race with a concurrent initialization or an arriving
		// handover; keep the larger value.
		init = init.Max(cur)
	}
	s.vcs.Put(k, init)
	if err := s.persistPut(k, init); err != nil {
		s.metrics.journalFails.Inc()
		return core.TSZero, err
	}
	s.indirectInits++
	s.metrics.indirectInits.Inc()
	return init, nil
}

// indirectInit is Figure 5: wait the grace delay, read the replica
// stored at rsp(k, h) for every h ∈ Hr, and return max(ts)+1 — or zero
// when no replica exists anywhere (a never-stamped key).
//
// The |Hr| reads are issued concurrently: the paper prices the algorithm
// in messages (O(|Hr|·cret), unchanged here) and reports only a slight
// response-time impact of the replication factor on UMS-Indirect
// (Figure 9), which matches concurrent reads, not a sequential walk.
func (s *Service) indirectInit(ctx context.Context, k core.Key) (core.Timestamp, error) {
	env := s.ring.Env()
	if s.cfg.GraceDelay > 0 {
		if err := env.Sleep(s.cfg.GraceDelay); err != nil {
			return core.TSZero, err
		}
	}
	type probe struct {
		val   core.Value
		err   error
		meter network.Meter
	}
	results := make([]probe, len(s.set.Hr))
	err := network.GoJoin(env, len(s.set.Hr), 50*time.Millisecond, func(i int) {
		var p probe
		p.val, p.err = s.client.GetH(network.WithMeter(ctx, &p.meter), k, s.set.Hr[i])
		results[i] = p
	})
	if err != nil {
		return core.TSZero, err
	}
	cost := network.MeterFrom(ctx)
	tsm := core.TSZero
	found := false
	for _, p := range results {
		cost.Merge(p.meter)
		if p.err != nil {
			continue // unavailable or missing replica: skip (Figure 5 keeps going)
		}
		found = true
		tsm = tsm.Max(p.val.TS)
	}
	if !found {
		return core.TSZero, nil
	}
	return tsm.Next(), nil
}

// ---- handover (direct algorithm) ---------------------------------------

// Name implements dht.Handover.
func (s *Service) Name() string { return "kts" }

// Collect implements dht.Handover: remove counters for ceded hts
// positions (VCS rule 3). In ModeDirect the removed counters are shipped
// to the next responsible; in ModeIndirect they are simply dropped, so
// the next responsible re-initializes from replicas.
func (s *Service) Collect(ceded func(core.ID) bool) network.Message {
	s.mu.Lock()
	defer s.mu.Unlock()
	var batch CounterBatch
	var doomed []core.Key
	s.vcs.Each(func(k core.Key, ts core.Timestamp) bool {
		if ceded(s.set.HTS.ID(k)) {
			doomed = append(doomed, k)
			batch.Entries = append(batch.Entries, CounterEntry{Key: k, TS: ts})
		}
		return true
	})
	for _, k := range doomed {
		s.vcs.Delete(k)
		s.persistDelete(k)
	}
	if s.cfg.Mode == ModeIndirect || len(batch.Entries) == 0 {
		return nil
	}
	return batch
}

// Accept implements dht.Handover: install transferred counters,
// max-merged with anything already present.
func (s *Service) Accept(msg network.Message) {
	batch, ok := msg.(CounterBatch)
	if !ok {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.cfg.Mode == ModeIndirect {
		return
	}
	for _, e := range batch.Entries {
		if cur, ok := s.vcs.Get(e.Key); !ok || cur.Less(e.TS) {
			s.vcs.Put(e.Key, e.TS)
			s.persistPut(e.Key, e.TS)
		}
	}
	s.directArrivals += uint64(len(batch.Entries))
	s.metrics.directArrivals.Add(uint64(len(batch.Entries)))
}

// RecoverTo sends this peer's counters to the current responsible(s) —
// the recovery strategy run by a restarted peer. Each counter is routed
// to rsp(k, hts) at call time.
func (s *Service) RecoverTo(ctx context.Context) (corrected int, err error) {
	s.mu.Lock()
	entries := make([]CounterEntry, 0, s.vcs.Len())
	s.vcs.Each(func(k core.Key, ts core.Timestamp) bool {
		entries = append(entries, CounterEntry{Key: k, TS: ts})
		return true
	})
	s.mu.Unlock()
	for _, e := range entries {
		resp, cerr := s.callResponsible(ctx, MethodRecover, RecoverReq{Entries: []CounterEntry{e}}, e.Key)
		if cerr != nil {
			err = cerr
			continue
		}
		corrected += resp.(RecoverResp).Corrected
	}
	return corrected, err
}

// ---- periodic inspection ------------------------------------------------

// startInspection launches the periodic inspection task: each round it
// re-reads the replicas for a few held counters and corrects counters
// that are lower than the highest stored timestamp.
func (s *Service) startInspection() {
	env := s.ring.Env()
	rng := env.Rand("kts-inspect:" + string(s.ring.Self().Addr))
	// One pick stream for the whole loop: re-deriving it per round would
	// replay the same sequence and pin every round to the same start.
	pick := env.Rand("kts-inspect-pick:" + string(s.ring.Self().Addr))
	env.Go(func() {
		for s.ring.Alive() {
			if err := env.Sleep(s.cfg.InspectEvery + time.Duration(rng.Int63n(int64(s.cfg.InspectEvery)/4+1))); err != nil {
				return
			}
			if !s.ring.Alive() {
				return
			}
			s.inspectOnce(pick)
		}
	})
}

// inspectOnce checks up to InspectPerRound counters against the DHT.
func (s *Service) inspectOnce(rng interface{ Intn(int) int }) {
	s.mu.Lock()
	keys := s.vcs.Keys()
	repair := s.onRepair
	s.mu.Unlock()
	if len(keys) == 0 {
		return
	}
	limit := s.cfg.InspectPerRound
	if limit > len(keys) {
		limit = len(keys)
	}
	start := rng.Intn(len(keys))
	for i := 0; i < limit; i++ {
		k := keys[(start+i)%len(keys)]
		if !s.ring.OwnsID(s.set.HTS.ID(k)) {
			continue
		}
		highest := core.TSZero
		for _, h := range s.set.Hr {
			if val, err := s.client.GetH(context.Background(), k, h); err == nil {
				highest = highest.Max(val.TS)
			}
		}
		s.mu.Lock()
		cur, ok := s.vcs.Get(k)
		corrected := false
		if ok && cur.Less(highest) {
			s.vcs.Put(k, highest)
			s.persistPut(k, highest)
			corrected = true
		}
		s.mu.Unlock()
		if corrected && repair != nil {
			repair(k, cur, highest)
		}
	}
}
