package kts

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/chord"
	"repro/internal/core"
	"repro/internal/dht"
	"repro/internal/hashing"
	"repro/internal/network"
	"repro/internal/network/simwire"
	"repro/internal/simnet"
	"repro/internal/stats"
)

// cluster bundles a simulated Chord ring with a KTS service per node.
type cluster struct {
	t        *testing.T
	k        *simnet.Kernel
	net      *simwire.Network
	set      hashing.Set
	nodes    []*chord.Node
	services []*Service
}

func newCluster(t *testing.T, seed int64, n int, cfg Config) *cluster {
	k := simnet.New(seed)
	net := simwire.New(k, simwire.Config{
		LatencyMS:      stats.Normal{Mean: 5, Variance: 0, Min: 5},
		BandwidthKbps:  stats.Normal{Mean: 1e6, Variance: 0, Min: 1e6},
		DefaultTimeout: 250 * time.Millisecond,
	})
	c := &cluster{t: t, k: k, net: net, set: hashing.NewSet(5)}
	chordCfg := chord.Config{
		StabilizeEvery:  500 * time.Millisecond,
		FixFingersEvery: 400 * time.Millisecond,
		CheckPredEvery:  500 * time.Millisecond,
		RPCTimeout:      250 * time.Millisecond,
	}
	if cfg.GraceDelay == 0 {
		cfg.GraceDelay = 10 * time.Millisecond
	}
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("peer%d", i)
		ep := net.NewEndpoint(name)
		nd := chord.New(net.Env(), ep, hashing.NodeID(name), chordCfg)
		c.nodes = append(c.nodes, nd)
		c.services = append(c.services, New(nd, c.set, "ums", cfg))
	}
	chord.AssembleRing(c.nodes)
	for _, nd := range c.nodes {
		nd.Start()
	}
	return c
}

func (c *cluster) do(fn func()) {
	c.t.Helper()
	done := false
	c.k.Go(func() {
		fn()
		done = true
	})
	for i := 0; i < 600 && !done; i++ {
		c.k.Run(c.k.Now() + 100*time.Millisecond)
	}
	if !done {
		c.t.Fatal("simulated operation did not complete")
	}
}

func (c *cluster) settle(d time.Duration) { c.k.Run(c.k.Now() + d) }

// svc returns any live service to issue requests from.
func (c *cluster) svc() *Service {
	for i, nd := range c.nodes {
		if nd.Alive() {
			return c.services[i]
		}
	}
	c.t.Fatal("no live service")
	return nil
}

// responsibleFor returns the index of the live node owning hts(k).
func (c *cluster) responsibleFor(k core.Key) int {
	id := c.set.HTS.ID(k)
	for i, nd := range c.nodes {
		if nd.Alive() && nd.OwnsID(id) {
			return i
		}
	}
	c.t.Fatalf("no responsible for %q", k)
	return -1
}

func TestGenTSStartsAtOneAndIncrements(t *testing.T) {
	c := newCluster(t, 1, 8, Config{Mode: ModeDirect})
	c.settle(2 * time.Second)
	c.do(func() {
		for want := uint64(1); want <= 5; want++ {
			ts, err := c.svc().GenTS(context.Background(), "fresh-key")
			if err != nil {
				t.Errorf("gen_ts: %v", err)
				return
			}
			if ts != core.TS(want) {
				t.Errorf("gen_ts #%d = %v", want, ts)
			}
		}
	})
}

func TestLastTSFollowsGenTS(t *testing.T) {
	c := newCluster(t, 2, 8, Config{Mode: ModeDirect})
	c.settle(2 * time.Second)
	c.do(func() {
		if ts, err := c.svc().LastTS(context.Background(), "nokey"); err != nil || !ts.IsZero() {
			t.Errorf("last_ts of never-stamped key = %v, %v", ts, err)
		}
		for i := 0; i < 3; i++ {
			if _, err := c.svc().GenTS(context.Background(), "k1"); err != nil {
				t.Errorf("gen_ts: %v", err)
			}
		}
		ts, err := c.svc().LastTS(context.Background(), "k1")
		if err != nil || ts != core.TS(3) {
			t.Errorf("last_ts = %v, %v; want ts(3)", ts, err)
		}
		// last_ts must not consume timestamps.
		ts2, err := c.svc().LastTS(context.Background(), "k1")
		if err != nil || ts2 != core.TS(3) {
			t.Errorf("repeated last_ts = %v, %v", ts2, err)
		}
	})
}

func TestTimestampsForDifferentKeysIndependent(t *testing.T) {
	c := newCluster(t, 3, 8, Config{Mode: ModeDirect})
	c.settle(2 * time.Second)
	c.do(func() {
		for i := 0; i < 3; i++ {
			c.svc().GenTS(context.Background(), "ka")
		}
		ts, err := c.svc().GenTS(context.Background(), "kb")
		if err != nil || ts != core.TS(1) {
			t.Errorf("first gen for kb = %v, %v (keys must not share counters)", ts, err)
		}
	})
}

// Monotonicity across a graceful handoff: the direct algorithm must move
// the counter to the next responsible.
func TestDirectTransferOnGracefulLeave(t *testing.T) {
	c := newCluster(t, 4, 10, Config{Mode: ModeDirect})
	c.settle(2 * time.Second)
	key := core.Key("stable-key")
	var before core.Timestamp
	c.do(func() {
		for i := 0; i < 4; i++ {
			ts, err := c.svc().GenTS(context.Background(), key)
			if err != nil {
				t.Errorf("gen: %v", err)
				return
			}
			before = ts
		}
	})

	// The responsible leaves gracefully.
	idx := c.responsibleFor(key)
	c.do(func() {
		if err := c.nodes[idx].Leave(); err != nil {
			t.Errorf("leave: %v", err)
		}
	})
	c.net.Kill(c.nodes[idx].Self().Addr)
	c.settle(3 * time.Second)

	// The new responsible continues the sequence without re-initializing
	// (no replicas exist, so indirect init would restart at 1 — direct
	// transfer is the only way to continue).
	c.do(func() {
		ts, err := c.svc().GenTS(context.Background(), key)
		if err != nil {
			t.Errorf("gen after leave: %v", err)
			return
		}
		if !before.Less(ts) {
			t.Errorf("monotonicity violated: %v then %v", before, ts)
		}
		if ts != before.Next() {
			t.Errorf("direct transfer should continue exactly: got %v after %v", ts, before)
		}
	})
	_, _, arrivals := c.services[c.responsibleFor(key)].Stats()
	if arrivals == 0 {
		t.Error("new responsible reports no direct counter arrivals")
	}
}

// Monotonicity across a crash: with replicas stored in the DHT, the
// indirect algorithm reconstructs a safe (strictly higher) counter.
func TestIndirectInitAfterCrash(t *testing.T) {
	c := newCluster(t, 5, 10, Config{Mode: ModeDirect})
	c.settle(2 * time.Second)
	key := core.Key("crash-key")

	// Generate timestamps AND store a replica carrying the latest one,
	// as UMS would (the indirect algorithm reads these).
	client := dht.NewClient(c.nodes[0], "ums")
	var last core.Timestamp
	c.do(func() {
		for i := 0; i < 3; i++ {
			ts, err := c.svc().GenTS(context.Background(), key)
			if err != nil {
				t.Errorf("gen: %v", err)
				return
			}
			last = ts
			for _, h := range c.set.Hr {
				client.PutH(context.Background(), key, h, core.Value{Data: []byte("v"), TS: ts}, dht.PutIfNewer)
			}
		}
	})

	idx := c.responsibleFor(key)
	c.nodes[idx].Crash()
	c.net.Kill(c.nodes[idx].Self().Addr)
	c.settle(5 * time.Second) // ring heals

	c.do(func() {
		ts, err := c.svc().GenTS(context.Background(), key)
		if err != nil {
			t.Errorf("gen after crash: %v", err)
			return
		}
		if !last.Less(ts) {
			t.Errorf("monotonicity violated after crash: %v then %v", last, ts)
		}
		// Indirect init: counter = tsm+1 = last+1, gen returns last+2.
		if ts != last.Add(2) {
			t.Errorf("indirect init should yield tsm+2 on first gen: got %v after %v", ts, last)
		}
	})
}

// ModeIndirect must not transfer counters even on graceful leaves.
func TestModeIndirectDropsCountersOnLeave(t *testing.T) {
	c := newCluster(t, 6, 10, Config{Mode: ModeIndirect})
	c.settle(2 * time.Second)
	key := core.Key("ind-key")
	client := dht.NewClient(c.nodes[0], "ums")
	var last core.Timestamp
	c.do(func() {
		for i := 0; i < 3; i++ {
			ts, err := c.svc().GenTS(context.Background(), key)
			if err != nil {
				t.Errorf("gen: %v", err)
				return
			}
			last = ts
			for _, h := range c.set.Hr {
				client.PutH(context.Background(), key, h, core.Value{Data: []byte("v"), TS: ts}, dht.PutIfNewer)
			}
		}
	})
	idx := c.responsibleFor(key)
	c.do(func() {
		if err := c.nodes[idx].Leave(); err != nil {
			t.Errorf("leave: %v", err)
		}
	})
	c.net.Kill(c.nodes[idx].Self().Addr)
	c.settle(3 * time.Second)

	c.do(func() {
		ts, err := c.svc().GenTS(context.Background(), key)
		if err != nil {
			t.Errorf("gen: %v", err)
			return
		}
		if !last.Less(ts) {
			t.Errorf("monotonicity violated: %v then %v", last, ts)
		}
		// Indirect re-init from replicas: tsm+1 then +1 → last+2.
		if ts != last.Add(2) {
			t.Errorf("expected indirect re-init (+2), got %v after %v", ts, last)
		}
	})
	newIdx := c.responsibleFor(key)
	_, inits, arrivals := c.services[newIdx].Stats()
	if arrivals != 0 {
		t.Error("ModeIndirect must not receive direct transfers")
	}
	if inits == 0 {
		t.Error("ModeIndirect should have re-initialized indirectly")
	}
}

// The global monotonicity property (Theorem 2 + Lemma 1): across churn,
// every sequence of timestamps per key is strictly increasing.
func TestMonotonicityUnderChurn(t *testing.T) {
	for _, mode := range []InitMode{ModeDirect, ModeIndirect} {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			c := newCluster(t, 7, 14, Config{Mode: mode})
			c.settle(2 * time.Second)
			client := dht.NewClient(c.nodes[0], "ums")
			keys := []core.Key{"m1", "m2", "m3"}
			lastSeen := map[core.Key]core.Timestamp{}
			rng := c.k.NewRand("churn")
			nextPeer := 100

			genAll := func() {
				for _, k := range keys {
					ts, err := c.svc().GenTS(context.Background(), k)
					if err != nil {
						continue // responsible mid-transition: acceptable, no violation
					}
					if prev, ok := lastSeen[k]; ok && !prev.Less(ts) {
						t.Errorf("%s: %q got %v after %v", mode, k, ts, prev)
					}
					lastSeen[k] = ts
					for _, h := range c.set.Hr {
						client.PutH(context.Background(), k, h, core.Value{Data: []byte("x"), TS: ts}, dht.PutIfNewer)
					}
				}
			}

			for round := 0; round < 12; round++ {
				c.do(genAll)
				c.settle(time.Second)
				// Churn: alternate graceful leaves and joins; every third
				// round crash instead.
				var alive []*chord.Node
				for _, nd := range c.nodes {
					if nd.Alive() {
						alive = append(alive, nd)
					}
				}
				if len(alive) > 6 {
					victim := alive[rng.Intn(len(alive))]
					if round%3 == 2 {
						victim.Crash()
						c.net.Kill(victim.Self().Addr)
					} else {
						c.do(func() { victim.Leave() })
						c.net.Kill(victim.Self().Addr)
					}
				}
				// A replacement joins.
				name := fmt.Sprintf("late%d", nextPeer)
				nextPeer++
				ep := c.net.NewEndpoint(name)
				nd := chord.New(c.net.Env(), ep, hashing.NodeID(name), c.nodes[0].Config())
				svc := New(nd, c.set, "ums", Config{Mode: mode, GraceDelay: 10 * time.Millisecond})
				var boot *chord.Node
				for _, cand := range c.nodes {
					if cand.Alive() {
						boot = cand
						break
					}
				}
				c.do(func() {
					if err := nd.Join(boot.Self().Addr); err != nil {
						t.Logf("join failed (tolerated): %v", err)
						nd.Crash()
						c.net.Kill(ep.Addr())
					}
				})
				if nd.Alive() {
					nd.Start()
					c.nodes = append(c.nodes, nd)
					c.services = append(c.services, svc)
				}
				c.settle(2 * time.Second)
			}
		})
	}
}

func TestRLUModeReinitializesEveryTime(t *testing.T) {
	c := newCluster(t, 8, 8, Config{Mode: ModeDirect, RLU: true})
	c.settle(2 * time.Second)
	key := core.Key("rlu-key")
	client := dht.NewClient(c.nodes[0], "ums")
	var prev core.Timestamp
	c.do(func() {
		for i := 0; i < 4; i++ {
			ts, err := c.svc().GenTS(context.Background(), key)
			if err != nil {
				t.Errorf("gen: %v", err)
				return
			}
			if i > 0 && !prev.Less(ts) {
				t.Errorf("RLU monotonicity violated: %v then %v", prev, ts)
			}
			prev = ts
			for _, h := range c.set.Hr {
				client.PutH(context.Background(), key, h, core.Value{Data: []byte("x"), TS: ts}, dht.PutIfNewer)
			}
		}
	})
	idx := c.responsibleFor(key)
	if n := c.services[idx].VCSLen(); n != 0 {
		t.Fatalf("RLU must drop counters after generation; VCS has %d", n)
	}
	_, inits, _ := c.services[idx].Stats()
	if inits < 4 {
		t.Fatalf("RLU should re-init per gen; inits = %d", inits)
	}
}

func TestRecoveryCorrectsLowCounters(t *testing.T) {
	c := newCluster(t, 9, 8, Config{Mode: ModeDirect})
	c.settle(2 * time.Second)
	key := core.Key("rec-key")
	idx := c.responsibleFor(key)
	svc := c.services[idx]

	// Simulate a failed former responsible that had issued ts(10): the
	// current responsible initialized low (no replicas → starts at 0).
	var repaired []string
	svc.SetRepair(func(k core.Key, oldTS, newTS core.Timestamp) {
		repaired = append(repaired, fmt.Sprintf("%s:%v->%v", k, oldTS, newTS))
	})
	c.do(func() {
		if ts, err := c.svc().GenTS(context.Background(), key); err != nil || ts != core.TS(1) {
			t.Errorf("initial gen = %v, %v", ts, err)
		}
	})
	resp, err := svc.handleRecover(RecoverReq{Entries: []CounterEntry{{Key: key, TS: core.TS(10)}}}), error(nil)
	if err != nil || resp.Corrected != 1 {
		t.Fatalf("recover: %+v, %v", resp, err)
	}
	c.do(func() {
		ts, err := c.svc().GenTS(context.Background(), key)
		if err != nil {
			t.Errorf("gen after recover: %v", err)
			return
		}
		if !core.TS(10).Less(ts) {
			t.Errorf("recovery did not raise the counter: %v", ts)
		}
	})
	if len(repaired) != 1 {
		t.Fatalf("repair callback fired %d times", len(repaired))
	}
}

func TestRecoverToRoutesCounters(t *testing.T) {
	c := newCluster(t, 10, 8, Config{Mode: ModeDirect})
	c.settle(2 * time.Second)
	key := core.Key("route-key")

	// A "restarted" peer holds a snapshot with a high counter and runs
	// the recovery strategy; the current responsible must adopt it.
	restarted := c.services[0]
	restarted.mu.Lock()
	restarted.vcs.Put(key, core.TS(42))
	restarted.mu.Unlock()
	c.do(func() {
		corrected, err := restarted.RecoverTo(context.Background())
		if err != nil {
			t.Errorf("recover-to: %v", err)
		}
		if corrected == 0 {
			t.Error("recovery corrected nothing")
		}
	})
	c.do(func() {
		ts, err := c.svc().GenTS(context.Background(), key)
		if err != nil {
			t.Errorf("gen: %v", err)
			return
		}
		if !core.TS(42).Less(ts) {
			t.Errorf("counter not adopted: %v", ts)
		}
	})
}

func TestPeriodicInspectionRaisesCounter(t *testing.T) {
	c := newCluster(t, 11, 8, Config{Mode: ModeDirect, InspectEvery: time.Second})
	c.settle(2 * time.Second)
	key := core.Key("inspect-key")
	client := dht.NewClient(c.nodes[0], "ums")

	// Store replicas with ts(50) directly (as if a previous responsible
	// issued it), while the current responsible believes the counter is
	// low.
	c.do(func() {
		if _, err := c.svc().GenTS(context.Background(), key); err != nil {
			t.Errorf("gen: %v", err)
		}
		for _, h := range c.set.Hr {
			client.PutH(context.Background(), key, h, core.Value{Data: []byte("x"), TS: core.TS(50)}, dht.PutIfNewer)
		}
	})
	c.settle(5 * time.Second) // several inspection rounds
	c.do(func() {
		ts, err := c.svc().LastTS(context.Background(), key)
		if err != nil {
			t.Errorf("last: %v", err)
			return
		}
		if ts.Less(core.TS(50)) {
			t.Errorf("inspection did not raise counter: %v", ts)
		}
	})
}

func TestNotResponsibleRejected(t *testing.T) {
	c := newCluster(t, 12, 8, Config{Mode: ModeDirect})
	c.settle(2 * time.Second)
	key := core.Key("nr-key")
	idx := c.responsibleFor(key)
	var wrong *Service
	for i := range c.nodes {
		if i != idx {
			wrong = c.services[i]
			break
		}
	}
	c.do(func() {
		_, err := wrong.handleGenTS(GenTSReq{Key: key})
		if !errors.Is(err, core.ErrNotResponsible) {
			t.Errorf("wrong peer accepted a TSR: %v", err)
		}
	})
}

func TestGenTSCostAccounting(t *testing.T) {
	c := newCluster(t, 13, 10, Config{Mode: ModeDirect})
	c.settle(2 * time.Second)
	c.do(func() {
		m := &network.Meter{}
		if _, err := c.svc().GenTS(network.WithMeter(context.Background(), m), "cost-key"); err != nil {
			t.Errorf("gen: %v", err)
			return
		}
		// At minimum: the indirect init for a fresh key reads |Hr|=5
		// positions. The meter must reflect server-side work.
		if m.Msgs < 5 {
			t.Errorf("meter = %d msgs; server-side init not accounted", m.Msgs)
		}
	})
}
