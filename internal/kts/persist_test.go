package kts

import (
	"context"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/store"
)

// TestCounterJournalAndSeedAcrossRestart drives the §4.2.2 recovery data
// path: every granted timestamp lands in the journal, and a fresh
// service seeded from that journal keeps granting strictly increasing
// timestamps without ever falling back to indirect initialization.
func TestCounterJournalAndSeedAcrossRestart(t *testing.T) {
	journal := store.NewMem()
	c := newCluster(t, 7, 1, Config{Mode: ModeDirect, Persist: journal})
	c.settle(2 * time.Second)
	var last core.Timestamp
	c.do(func() {
		for i := 0; i < 5; i++ {
			ts, err := c.svc().GenTS(context.Background(), "k")
			if err != nil {
				t.Errorf("gen_ts: %v", err)
				return
			}
			last = ts
		}
	})
	if last != core.TS(5) {
		t.Fatalf("last granted = %v, want ts(5)", last)
	}
	cs := journal.Counters()
	if len(cs) != 1 || cs[0].Key != "k" || cs[0].TS != core.TS(5) {
		t.Fatalf("journal = %v, want k@ts(5)", cs)
	}

	// "Restart": a brand-new cluster with empty state, seeded from what
	// the journal retained. The key has no replicas anywhere, so without
	// the seed the counter would restart at 1 and re-issue old values.
	c2 := newCluster(t, 8, 1, Config{Mode: ModeDirect})
	var entries []CounterEntry
	for _, cnt := range journal.Counters() {
		entries = append(entries, CounterEntry{Key: cnt.Key, TS: cnt.TS})
	}
	c2.services[0].SeedCounters(entries)
	c2.settle(2 * time.Second)
	c2.do(func() {
		ts, err := c2.svc().GenTS(context.Background(), "k")
		if err != nil {
			t.Errorf("gen_ts after restart: %v", err)
			return
		}
		if !last.Less(ts) {
			t.Errorf("post-restart ts %v not above pre-crash %v", ts, last)
		}
		if ts != last.Next() {
			t.Errorf("post-restart ts = %v, want exactly %v (no gap from re-init)", ts, last.Next())
		}
	})
	_, inits, _ := c2.services[0].Stats()
	if inits != 0 {
		t.Fatalf("seeded service ran %d indirect inits, want 0", inits)
	}
}

// TestRLUDeletesJournalEntry checks the ablation mode keeps the journal
// in step: a counter discarded after each grant must also leave the
// journal, so a restart re-initializes rather than resuming a counter
// the live service itself would not have had.
func TestRLUDeletesJournalEntry(t *testing.T) {
	journal := store.NewMem()
	c := newCluster(t, 9, 1, Config{Mode: ModeDirect, RLU: true, Persist: journal})
	c.settle(2 * time.Second)
	c.do(func() {
		if _, err := c.svc().GenTS(context.Background(), "k"); err != nil {
			t.Errorf("gen_ts: %v", err)
		}
	})
	if cs := journal.Counters(); len(cs) != 0 {
		t.Fatalf("journal = %v, want empty under RLU", cs)
	}
}
