package kts

import (
	"errors"
	"hash/fnv"

	"repro/internal/core"
)

var (
	errOrder = errors.New("kts: VCS violates BST key order")
	errHeap  = errors.New("kts: VCS violates treap heap order")
	errSize  = errors.New("kts: VCS size does not match node count")
)

// VCS is the Valid Counters Set of §4.1.2: the per-peer set of counters
// this peer may use for timestamp generation. The paper prescribes a
// binary search tree "such that given a key k seeking c(p,k) can be done
// rapidly"; we implement a treap — a BST ordered by key whose rotations
// are driven by per-key hash priorities, giving expected O(log n)
// operations without rebalancing bookkeeping.
//
// VCS is not synchronized; the owning Service serializes access.
type VCS struct {
	root *vcsNode
	size int
}

type vcsNode struct {
	key      core.Key
	priority uint64
	ts       core.Timestamp
	left     *vcsNode
	right    *vcsNode
}

// NewVCS returns an empty set (rule 1 of §4.1.2: a joining peer starts
// with VCS = ∅).
func NewVCS() *VCS { return &VCS{} }

// priorityOf derives a deterministic heap priority from the key, so the
// tree shape is reproducible and expected-balanced. The FNV digest is
// passed through a splitmix64 finalizer: similar keys ("key-0001",
// "key-0002", ...) otherwise yield correlated priorities and a skewed
// tree.
func priorityOf(k core.Key) uint64 {
	h := fnv.New64a()
	h.Write([]byte(k))
	x := h.Sum64()
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Len returns the number of valid counters.
func (v *VCS) Len() int { return v.size }

// Get returns the counter for k.
func (v *VCS) Get(k core.Key) (core.Timestamp, bool) {
	n := v.root
	for n != nil {
		switch {
		case k < n.key:
			n = n.left
		case k > n.key:
			n = n.right
		default:
			return n.ts, true
		}
	}
	return core.TSZero, false
}

// Put inserts or updates the counter for k (rule 2: initialization adds
// the counter to the set).
func (v *VCS) Put(k core.Key, ts core.Timestamp) {
	var updated bool
	v.root, updated = v.put(v.root, k, ts)
	if !updated {
		v.size++
	}
}

func (v *VCS) put(n *vcsNode, k core.Key, ts core.Timestamp) (*vcsNode, bool) {
	if n == nil {
		return &vcsNode{key: k, priority: priorityOf(k), ts: ts}, false
	}
	switch {
	case k < n.key:
		var updated bool
		n.left, updated = v.put(n.left, k, ts)
		if n.left.priority > n.priority {
			n = rotateRight(n)
		}
		return n, updated
	case k > n.key:
		var updated bool
		n.right, updated = v.put(n.right, k, ts)
		if n.right.priority > n.priority {
			n = rotateLeft(n)
		}
		return n, updated
	default:
		n.ts = ts
		return n, true
	}
}

// Delete removes the counter for k (rule 3: responsibility loss
// invalidates the counter), reporting whether it existed.
func (v *VCS) Delete(k core.Key) bool {
	var deleted bool
	v.root, deleted = v.del(v.root, k)
	if deleted {
		v.size--
	}
	return deleted
}

func (v *VCS) del(n *vcsNode, k core.Key) (*vcsNode, bool) {
	if n == nil {
		return nil, false
	}
	switch {
	case k < n.key:
		var deleted bool
		n.left, deleted = v.del(n.left, k)
		return n, deleted
	case k > n.key:
		var deleted bool
		n.right, deleted = v.del(n.right, k)
		return n, deleted
	default:
		// Rotate the node down until it is a leaf, then drop it.
		switch {
		case n.left == nil:
			return n.right, true
		case n.right == nil:
			return n.left, true
		case n.left.priority > n.right.priority:
			n = rotateRight(n)
			var deleted bool
			n.right, deleted = v.del(n.right, k)
			return n, deleted
		default:
			n = rotateLeft(n)
			var deleted bool
			n.left, deleted = v.del(n.left, k)
			return n, deleted
		}
	}
}

// Each visits every counter in key order; fn returning false stops the
// walk early.
func (v *VCS) Each(fn func(k core.Key, ts core.Timestamp) bool) {
	var walk func(n *vcsNode) bool
	walk = func(n *vcsNode) bool {
		if n == nil {
			return true
		}
		return walk(n.left) && fn(n.key, n.ts) && walk(n.right)
	}
	walk(v.root)
}

// Keys returns every counter key in sorted order.
func (v *VCS) Keys() []core.Key {
	out := make([]core.Key, 0, v.size)
	v.Each(func(k core.Key, _ core.Timestamp) bool {
		out = append(out, k)
		return true
	})
	return out
}

func rotateRight(n *vcsNode) *vcsNode {
	l := n.left
	n.left = l.right
	l.right = n
	return l
}

func rotateLeft(n *vcsNode) *vcsNode {
	r := n.right
	n.right = r.left
	r.left = n
	return r
}

// checkInvariants validates BST order and heap priorities; tests use it.
func (v *VCS) checkInvariants() error {
	count := 0
	var check func(n *vcsNode, min, max *core.Key) error
	check = func(n *vcsNode, min, max *core.Key) error {
		if n == nil {
			return nil
		}
		count++
		if min != nil && n.key <= *min {
			return errOrder
		}
		if max != nil && n.key >= *max {
			return errOrder
		}
		if n.left != nil && n.left.priority > n.priority {
			return errHeap
		}
		if n.right != nil && n.right.priority > n.priority {
			return errHeap
		}
		if err := check(n.left, min, &n.key); err != nil {
			return err
		}
		return check(n.right, &n.key, max)
	}
	if err := check(v.root, nil, nil); err != nil {
		return err
	}
	if count != v.size {
		return errSize
	}
	return nil
}
