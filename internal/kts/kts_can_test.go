package kts

// The paper argues (§4.2.1.1) that the direct counter-initialization
// algorithm applies to CAN as well as Chord, because in both DHTs the
// next responsible for a key is a neighbor of the current responsible.
// These tests run the same KTS service on the CAN substrate and verify
// the claim end to end.

import (
	"context"
	"fmt"
	"testing"
	"time"

	"repro/internal/can"
	"repro/internal/core"
	"repro/internal/dht"
	"repro/internal/hashing"
	"repro/internal/network/simwire"
	"repro/internal/simnet"
	"repro/internal/stats"
)

type canCluster struct {
	t        *testing.T
	k        *simnet.Kernel
	net      *simwire.Network
	set      hashing.Set
	nodes    []*can.Node
	services []*Service
}

func newCANCluster(t *testing.T, seed int64, n int, cfg Config) *canCluster {
	k := simnet.New(seed)
	net := simwire.New(k, simwire.Config{
		LatencyMS:      stats.Normal{Mean: 5, Variance: 0, Min: 5},
		BandwidthKbps:  stats.Normal{Mean: 1e6, Variance: 0, Min: 1e6},
		DefaultTimeout: 250 * time.Millisecond,
	})
	c := &canCluster{t: t, k: k, net: net, set: hashing.NewSet(5)}
	canCfg := can.Config{PingEvery: 500 * time.Millisecond, RPCTimeout: 250 * time.Millisecond}
	if cfg.GraceDelay == 0 {
		cfg.GraceDelay = 10 * time.Millisecond
	}
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("canpeer%d", i)
		ep := net.NewEndpoint(name)
		nd := can.New(net.Env(), ep, hashing.NodeID(name), canCfg)
		c.nodes = append(c.nodes, nd)
		c.services = append(c.services, New(nd, c.set, "ums", cfg))
	}
	can.AssembleSpace(c.nodes)
	for _, nd := range c.nodes {
		nd.Start()
	}
	return c
}

func (c *canCluster) do(fn func()) {
	c.t.Helper()
	done := false
	c.k.Go(func() {
		fn()
		done = true
	})
	for i := 0; i < 600 && !done; i++ {
		c.k.Run(c.k.Now() + 100*time.Millisecond)
	}
	if !done {
		c.t.Fatal("simulated operation did not complete")
	}
}

func (c *canCluster) settle(d time.Duration) { c.k.Run(c.k.Now() + d) }

func (c *canCluster) responsibleFor(k core.Key) int {
	id := c.set.HTS.ID(k)
	for i, nd := range c.nodes {
		if nd.Alive() && nd.OwnsID(id) {
			return i
		}
	}
	c.t.Fatalf("no responsible for %q", k)
	return -1
}

func TestGenTSOnCAN(t *testing.T) {
	c := newCANCluster(t, 1, 12, Config{Mode: ModeDirect})
	c.settle(time.Second)
	c.do(func() {
		for want := uint64(1); want <= 4; want++ {
			ts, err := c.services[3].GenTS(context.Background(), "can-key")
			if err != nil {
				t.Errorf("gen_ts: %v", err)
				return
			}
			if ts != core.TS(want) {
				t.Errorf("gen_ts #%d = %v", want, ts)
			}
		}
		last, err := c.services[7].LastTS(context.Background(), "can-key")
		if err != nil || last != core.TS(4) {
			t.Errorf("last_ts = %v, %v", last, err)
		}
	})
}

// Direct transfer on CAN: a graceful leave must move the counter to the
// takeover neighbor, continuing the sequence exactly.
func TestDirectTransferOnCANLeave(t *testing.T) {
	c := newCANCluster(t, 2, 12, Config{Mode: ModeDirect})
	c.settle(time.Second)
	key := core.Key("can-stable")
	var before core.Timestamp
	c.do(func() {
		for i := 0; i < 3; i++ {
			ts, err := c.services[0].GenTS(context.Background(), key)
			if err != nil {
				t.Errorf("gen: %v", err)
				return
			}
			before = ts
		}
	})
	idx := c.responsibleFor(key)
	c.do(func() {
		if err := c.nodes[idx].Leave(); err != nil {
			t.Errorf("leave: %v", err)
		}
	})
	c.net.Kill(c.nodes[idx].Self().Addr)
	c.settle(2 * time.Second)

	c.do(func() {
		ts, err := c.services[c.responsibleFor(key)].GenTS(context.Background(), key)
		if err != nil {
			t.Errorf("gen after leave: %v", err)
			return
		}
		if ts != before.Next() {
			t.Errorf("direct transfer on CAN should continue exactly: got %v after %v", ts, before)
		}
	})
	newIdx := c.responsibleFor(key)
	_, _, arrivals := c.services[newIdx].Stats()
	if arrivals == 0 {
		t.Error("takeover neighbor reports no direct counter arrivals")
	}
}

// Indirect recovery on CAN after a crash, using replicas stored in the
// CAN like UMS would.
func TestIndirectInitOnCANCrash(t *testing.T) {
	c := newCANCluster(t, 3, 12, Config{Mode: ModeDirect})
	c.settle(time.Second)
	key := core.Key("can-crash")
	client := dht.NewClient(c.nodes[0], "ums")
	var last core.Timestamp
	c.do(func() {
		for i := 0; i < 3; i++ {
			ts, err := c.services[0].GenTS(context.Background(), key)
			if err != nil {
				t.Errorf("gen: %v", err)
				return
			}
			last = ts
			for _, h := range c.set.Hr {
				client.PutH(context.Background(), key, h, core.Value{Data: []byte("v"), TS: ts}, dht.PutIfNewer)
			}
		}
	})
	idx := c.responsibleFor(key)
	c.nodes[idx].Crash()
	c.net.Kill(c.nodes[idx].Self().Addr)
	c.settle(5 * time.Second) // ping rounds + takeover

	c.do(func() {
		ts, err := c.services[c.responsibleFor(key)].GenTS(context.Background(), key)
		if err != nil {
			t.Errorf("gen after crash: %v", err)
			return
		}
		if !last.Less(ts) {
			t.Errorf("monotonicity violated on CAN: %v then %v", last, ts)
		}
	})
}
