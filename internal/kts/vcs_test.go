package kts

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/core"
)

func TestVCSBasics(t *testing.T) {
	v := NewVCS()
	if _, ok := v.Get("missing"); ok {
		t.Fatal("empty VCS returned a counter")
	}
	v.Put("a", core.TS(1))
	v.Put("b", core.TS(2))
	v.Put("a", core.TS(3)) // update, not insert
	if v.Len() != 2 {
		t.Fatalf("len = %d, want 2", v.Len())
	}
	if ts, ok := v.Get("a"); !ok || ts != core.TS(3) {
		t.Fatalf("a = %v, %v", ts, ok)
	}
	if !v.Delete("a") {
		t.Fatal("delete existing failed")
	}
	if v.Delete("a") {
		t.Fatal("delete of missing key reported true")
	}
	if v.Len() != 1 {
		t.Fatalf("len after delete = %d", v.Len())
	}
	if err := v.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestVCSKeysSorted(t *testing.T) {
	v := NewVCS()
	for _, k := range []core.Key{"pear", "apple", "zebra", "mango", "fig"} {
		v.Put(k, core.TS(1))
	}
	keys := v.Keys()
	if !sort.SliceIsSorted(keys, func(i, j int) bool { return keys[i] < keys[j] }) {
		t.Fatalf("keys not sorted: %v", keys)
	}
	if len(keys) != 5 {
		t.Fatalf("keys = %v", keys)
	}
}

func TestVCSEachEarlyStop(t *testing.T) {
	v := NewVCS()
	for i := 0; i < 20; i++ {
		v.Put(core.Key(fmt.Sprintf("k%02d", i)), core.TS(uint64(i)))
	}
	visited := 0
	v.Each(func(core.Key, core.Timestamp) bool {
		visited++
		return visited < 5
	})
	if visited != 5 {
		t.Fatalf("visited %d, want 5", visited)
	}
}

// Property: a VCS behaves exactly like a map under a random operation
// sequence, and treap invariants hold throughout.
func TestVCSMatchesMapModel(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		v := NewVCS()
		model := map[core.Key]core.Timestamp{}
		for op := 0; op < 400; op++ {
			k := core.Key(fmt.Sprintf("key-%d", rng.Intn(60)))
			switch rng.Intn(3) {
			case 0: // put
				ts := core.TS(rng.Uint64())
				v.Put(k, ts)
				model[k] = ts
			case 1: // delete
				_, inModel := model[k]
				if v.Delete(k) != inModel {
					return false
				}
				delete(model, k)
			case 2: // get
				ts, ok := v.Get(k)
				wantTS, wantOK := model[k]
				if ok != wantOK || (ok && ts != wantTS) {
					return false
				}
			}
			if v.Len() != len(model) {
				return false
			}
		}
		if err := v.checkInvariants(); err != nil {
			return false
		}
		// Full contents agree.
		got := map[core.Key]core.Timestamp{}
		v.Each(func(k core.Key, ts core.Timestamp) bool {
			got[k] = ts
			return true
		})
		if len(got) != len(model) {
			return false
		}
		for k, ts := range model {
			if got[k] != ts {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestVCSLargeBalance(t *testing.T) {
	v := NewVCS()
	const n = 20000
	for i := 0; i < n; i++ {
		v.Put(core.Key(fmt.Sprintf("key-%08d", i)), core.TS(uint64(i)))
	}
	if v.Len() != n {
		t.Fatalf("len = %d", v.Len())
	}
	if err := v.checkInvariants(); err != nil {
		t.Fatal(err)
	}
	// The treap should be roughly balanced: depth well under linear.
	depth := 0
	var measure func(node *vcsNode, d int)
	measure = func(node *vcsNode, d int) {
		if node == nil {
			return
		}
		if d > depth {
			depth = d
		}
		measure(node.left, d+1)
		measure(node.right, d+1)
	}
	measure(v.root, 1)
	if depth > 80 { // ~4.6x log2(20000); far from linear
		t.Fatalf("treap depth %d for %d keys", depth, n)
	}
}
