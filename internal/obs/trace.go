package obs

import (
	"context"
	"sort"
	"sync"
	"time"
)

// Op identifies one client-visible operation for tracing. Fields are
// plain strings so obs stays import-free of the protocol packages: Alg
// is "ums" or "brk", Level a dht.Level string ("" for inserts), Key the
// application key.
type Op struct {
	Op    string // "get" | "put"
	Alg   string // "ums" | "brk"
	Level string // consistency level, "" when not applicable
	Key   string
}

// OpResult is the completion event for one operation: the verdict the
// currency resolution reached, the meter's communication cost, the
// end-to-end latency, and the per-phase decomposition accumulated by
// the Phases carrier (lookup/probe/kts). Phases overlap by design —
// lookup time is charged inside the probe or kts phase that needed the
// lookup — so they do not sum to Elapsed.
type OpResult struct {
	Op
	Verdict string // dht.Currency string; "" for inserts
	Err     bool
	Elapsed time.Duration
	Msgs    int
	Bytes   int
	Phases  []Phase
}

// Phase is one named slice of an operation's time.
type Phase struct {
	Name string
	D    time.Duration
}

// Phase names used by the instrumented layers.
const (
	PhaseLookup = "lookup" // DHT lookup round trips (chord.Lookup)
	PhaseProbe  = "probe"  // replica probe round trips (ums GetH / brk fetches)
	PhaseKTS    = "kts"    // timestamping round trips (GenTS / LastTS)
)

// Tracer observes operation lifecycles. Implementations must be safe
// for concurrent use (real nodes trace from many goroutines) and must
// not consume randomness or wall-clock time, so tracing never perturbs
// a simulation replay.
type Tracer interface {
	// OpStart fires when the operation enters ums/brk.
	OpStart(op Op)
	// OpEnd fires exactly once per OpStart, after the result (including
	// failure) is known.
	OpEnd(res OpResult)
}

// tracerCtxKey carries the Tracer through call chains, parallel to
// network.WithMeter.
type tracerCtxKey struct{}

// WithTracer returns a context whose operations beneath report to t;
// passing nil returns ctx unchanged.
func WithTracer(ctx context.Context, t Tracer) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, tracerCtxKey{}, t)
}

// TracerFrom returns the tracer ctx carries, or nil when untraced.
func TracerFrom(ctx context.Context) Tracer {
	t, _ := ctx.Value(tracerCtxKey{}).(Tracer)
	return t
}

// Phases accumulates named time slices for the operation that attached
// it (WithPhases). It is mutex-guarded: one op's phases are normally
// recorded sequentially, but fan-out paths may charge concurrently.
type Phases struct {
	mu sync.Mutex
	d  map[string]time.Duration
}

// NewPhases returns an empty accumulator.
func NewPhases() *Phases { return &Phases{d: map[string]time.Duration{}} }

// Add charges d to the named phase. Nil accumulators ignore charges, so
// callers charge unconditionally: PhasesFrom(ctx).Add(...).
func (p *Phases) Add(name string, d time.Duration) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.d[name] += d
	p.mu.Unlock()
}

// List returns the accumulated phases sorted by name (deterministic for
// traces and tests).
func (p *Phases) List() []Phase {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	out := make([]Phase, 0, len(p.d))
	for name, d := range p.d {
		out = append(out, Phase{Name: name, D: d})
	}
	p.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// phasesCtxKey carries the Phases accumulator through call chains.
type phasesCtxKey struct{}

// WithPhases returns a context charging phase timings beneath it to p;
// passing nil returns ctx unchanged.
func WithPhases(ctx context.Context, p *Phases) context.Context {
	if p == nil {
		return ctx
	}
	return context.WithValue(ctx, phasesCtxKey{}, p)
}

// PhasesFrom returns the accumulator ctx carries, or nil. Nil is safe
// to Add to.
func PhasesFrom(ctx context.Context) *Phases {
	p, _ := ctx.Value(phasesCtxKey{}).(*Phases)
	return p
}

// MetricsTracer is the standard Tracer: it folds op events into a
// registry's op-level metric families. Core families (get/put × ums/brk
// at level "current") are pre-registered at zero so a freshly started
// node's /metrics already exposes them — operators alert on families,
// not on their first sample.
type MetricsTracer struct {
	lat      *HistogramVec
	phase    *HistogramVec
	msgs     *CounterVec
	bytes    *CounterVec
	errs     *CounterVec
	verdicts *CounterVec
	inflight *Gauge
}

// NewMetricsTracer builds the standard metrics sink on r. Safe on a nil
// registry (events are counted into unregistered metrics).
func NewMetricsTracer(r *Registry) *MetricsTracer {
	t := &MetricsTracer{
		lat: r.DurationHistogramVec("dcdht_op_duration_seconds",
			"End-to-end latency of client operations.", "op", "alg", "level"),
		phase: r.DurationHistogramVec("dcdht_op_phase_duration_seconds",
			"Operation time by phase (lookup/probe/kts); phases overlap, they do not sum to op duration.", "phase"),
		msgs: r.CounterVec("dcdht_op_msgs_total",
			"Messages charged to client operations.", "op", "alg"),
		bytes: r.CounterVec("dcdht_op_bytes_total",
			"Bytes charged to client operations.", "op", "alg"),
		errs: r.CounterVec("dcdht_op_errors_total",
			"Client operations that returned an error.", "op", "alg"),
		verdicts: r.CounterVec("dcdht_op_verdicts_total",
			"Currency verdicts of retrieves, by consistency level.", "level", "verdict"),
		inflight: r.Gauge("dcdht_ops_inflight",
			"Client operations currently executing."),
	}
	// Pre-register the core label universe at zero.
	for _, alg := range []string{"ums", "brk"} {
		t.lat.With("get", alg, "current")
		t.lat.With("put", alg, "")
		t.msgs.With("get", alg)
		t.msgs.With("put", alg)
		t.errs.With("get", alg)
		t.errs.With("put", alg)
	}
	t.verdicts.With("current", "proven")
	t.phase.With(PhaseLookup)
	t.phase.With(PhaseProbe)
	t.phase.With(PhaseKTS)
	return t
}

// OpStart implements Tracer.
func (t *MetricsTracer) OpStart(Op) { t.inflight.Add(1) }

// OpEnd implements Tracer.
func (t *MetricsTracer) OpEnd(res OpResult) {
	t.inflight.Add(-1)
	t.lat.With(res.Op.Op, res.Alg, res.Level).Observe(res.Elapsed)
	t.msgs.With(res.Op.Op, res.Alg).Add(uint64(res.Msgs))
	t.bytes.With(res.Op.Op, res.Alg).Add(uint64(res.Bytes))
	if res.Err {
		t.errs.With(res.Op.Op, res.Alg).Inc()
	}
	if res.Verdict != "" {
		t.verdicts.With(res.Level, res.Verdict).Inc()
	}
	for _, ph := range res.Phases {
		t.phase.With(ph.Name).Observe(ph.D)
	}
}

// Fanout broadcasts events to several tracers — a deployment can feed
// its metrics registry and a test recorder at once.
type Fanout []Tracer

// OpStart implements Tracer.
func (f Fanout) OpStart(op Op) {
	for _, t := range f {
		t.OpStart(op)
	}
}

// OpEnd implements Tracer.
func (f Fanout) OpEnd(res OpResult) {
	for _, t := range f {
		t.OpEnd(res)
	}
}
