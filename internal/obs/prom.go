package obs

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// The exposition bucket ladders. The internal stats.Histogram keeps
// ~3%-accurate log-linear buckets; the exposition collapses them onto a
// fixed, human-scaled ladder so every node exports the same le bounds
// and cross-node aggregation works. durationLadder is in seconds and
// spans the sim's sub-millisecond hops to multi-minute timeouts;
// valueLadder covers small integer distributions (chord hops, probe
// counts).
var (
	durationLadder = []float64{
		0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
		0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60, 120, 300,
	}
	valueLadder = []float64{0, 1, 2, 3, 4, 5, 6, 8, 10, 12, 16, 24, 32, 48, 64, 128}
)

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return v
}

// fmtValue renders a sample value the way Prometheus expects: integers
// without an exponent, everything else in shortest round-trip form.
func fmtValue(v float64) string {
	if v == float64(int64(v)) {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// labelString renders {k="v",...} with keys sorted, or "" when empty.
// extra appends one preformatted pair (the histogram le label).
func labelString(labels map[string]string, extra string) string {
	if len(labels) == 0 && extra == "" {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(keys)+1)
	for _, k := range keys {
		parts = append(parts, fmt.Sprintf(`%s=%q`, k, escapeLabel(labels[k])))
	}
	if extra != "" {
		parts = append(parts, extra)
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// WriteTo renders the snapshot in Prometheus text exposition format
// (version 0.0.4): one # HELP/# TYPE header per family, then every
// series; histograms expand into cumulative _bucket lines with le
// labels plus _sum and _count. The output is deterministic: families,
// series and labels are already sorted in the snapshot.
func (s *Snapshot) WriteTo(w io.Writer) (int64, error) {
	var n int64
	emit := func(format string, args ...any) error {
		m, err := fmt.Fprintf(w, format, args...)
		n += int64(m)
		return err
	}
	for _, f := range s.Families {
		if f.Help != "" {
			if err := emit("# HELP %s %s\n", f.Name, strings.ReplaceAll(f.Help, "\n", " ")); err != nil {
				return n, err
			}
		}
		if err := emit("# TYPE %s %s\n", f.Name, f.Kind); err != nil {
			return n, err
		}
		for _, ser := range f.Series {
			if f.Kind == KindHistogram {
				h := ser.Hist
				if h == nil {
					continue
				}
				for _, b := range h.Buckets {
					le := fmt.Sprintf(`le=%q`, fmtValue(b.LE))
					if err := emit("%s_bucket%s %d\n", f.Name, labelString(ser.Labels, le), b.Count); err != nil {
						return n, err
					}
				}
				if err := emit("%s_bucket%s %d\n", f.Name, labelString(ser.Labels, `le="+Inf"`), h.Count); err != nil {
					return n, err
				}
				if err := emit("%s_sum%s %s\n", f.Name, labelString(ser.Labels, ""), fmtValue(h.Sum)); err != nil {
					return n, err
				}
				if err := emit("%s_count%s %d\n", f.Name, labelString(ser.Labels, ""), h.Count); err != nil {
					return n, err
				}
				continue
			}
			if err := emit("%s%s %s\n", f.Name, labelString(ser.Labels, ""), fmtValue(ser.Value)); err != nil {
				return n, err
			}
		}
	}
	return n, nil
}

// WritePrometheus scrapes the registry and renders it as Prometheus
// text exposition. Safe on a nil registry (writes nothing).
func (r *Registry) WritePrometheus(w io.Writer) error {
	_, err := r.Snapshot().WriteTo(w)
	return err
}

// Handler returns an http.Handler serving GET /metrics-style scrapes of
// this registry.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}
