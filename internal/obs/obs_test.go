package obs

import (
	"context"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

// feed applies one fixed series of updates to a registry.
func feed(r *Registry) {
	c := r.Counter("test_ops_total", "ops")
	c.Add(41)
	c.Inc()
	r.Gauge("test_level", "level").Set(-7)
	v := r.CounterVec("test_verdicts_total", "verdicts", "level", "verdict")
	v.With("current", "proven").Add(3)
	v.With("eventual", "unknown").Inc()
	h := r.DurationHistogram("test_latency_seconds", "latency")
	h.Observe(1500 * time.Microsecond)
	h.Observe(80 * time.Millisecond)
	h.Observe(2 * time.Second)
	r.ValueHistogram("test_hops", "hops").ObserveValue(3)
	r.CounterFunc("test_func_total", "func counter", func() float64 { return 5 })
	r.CounterFunc("test_func_total", "func counter", func() float64 { return 2 })
}

func TestRegistrySnapshotDeterministic(t *testing.T) {
	a, b := NewRegistry(), NewRegistry()
	feed(a)
	feed(b)
	ja, err := json.Marshal(a.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	jb, _ := json.Marshal(b.Snapshot())
	if string(ja) != string(jb) {
		t.Fatalf("snapshots differ across identical feeds:\n%s\n%s", ja, jb)
	}
	snap := a.Snapshot()
	if got := snap.Get("test_ops_total").Total(); got != 42 {
		t.Fatalf("counter total = %v, want 42", got)
	}
	if got := snap.Get("test_func_total").Total(); got != 7 {
		t.Fatalf("func counter sums registrations: got %v, want 7", got)
	}
	if got := snap.Get("test_verdicts_total").Total(); got != 4 {
		t.Fatalf("verdict total = %v, want 4", got)
	}
	hist := snap.Get("test_latency_seconds").Series[0].Hist
	if hist.Count != 3 || hist.Sum < 2.08 || hist.Sum > 2.082 {
		t.Fatalf("histogram count/sum wrong: %+v", hist)
	}
}

func TestPrometheusExposition(t *testing.T) {
	r := NewRegistry()
	feed(r)
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE test_ops_total counter",
		"test_ops_total 42",
		"# TYPE test_level gauge",
		"test_level -7",
		`test_verdicts_total{level="current",verdict="proven"} 3`,
		"# TYPE test_latency_seconds histogram",
		`test_latency_seconds_bucket{le="+Inf"} 3`,
		"test_latency_seconds_count 3",
		"test_func_total 7",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q in:\n%s", want, out)
		}
	}
	// Cumulative buckets must be monotone and end at the sample count.
	var last uint64
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, "test_latency_seconds_bucket") {
			continue
		}
		var c uint64
		if _, err := parseUint(strings.Fields(line)[1]); err != nil {
			t.Fatalf("bad bucket line %q: %v", line, err)
		}
		c, _ = parseUint(strings.Fields(line)[1])
		if c < last {
			t.Fatalf("bucket counts not monotone at %q", line)
		}
		last = c
	}
	if last != 3 {
		t.Fatalf("+Inf bucket = %d, want 3", last)
	}
}

func parseUint(s string) (uint64, error) {
	var v uint64
	for _, r := range s {
		if r < '0' || r > '9' {
			return 0, &json.UnsupportedValueError{}
		}
		v = v*10 + uint64(r-'0')
	}
	return v, nil
}

func TestNilRegistrySafe(t *testing.T) {
	var r *Registry
	r.Counter("a_total", "a").Inc()
	r.Gauge("g", "g").Set(1)
	r.DurationHistogram("h_seconds", "h").Observe(time.Millisecond)
	r.CounterVec("v_total", "v", "l").With("x").Inc()
	r.CounterFunc("f_total", "f", func() float64 { return 1 })
	if err := r.WritePrometheus(&strings.Builder{}); err != nil {
		t.Fatal(err)
	}
	if got := len(r.Snapshot().Families); got != 0 {
		t.Fatalf("nil registry exported %d families", got)
	}
	NewMetricsTracer(nil).OpEnd(OpResult{Op: Op{Op: "get", Alg: "ums"}})
}

func TestTracerAndPhasesContext(t *testing.T) {
	ctx := context.Background()
	if TracerFrom(ctx) != nil || PhasesFrom(ctx) != nil {
		t.Fatal("empty context must carry nothing")
	}
	PhasesFrom(ctx).Add(PhaseLookup, time.Second) // nil-safe
	r := NewRegistry()
	mt := NewMetricsTracer(r)
	ctx = WithTracer(ctx, mt)
	if TracerFrom(ctx) != mt {
		t.Fatal("tracer did not round-trip")
	}
	p := NewPhases()
	ctx = WithPhases(ctx, p)
	PhasesFrom(ctx).Add(PhaseLookup, 2*time.Millisecond)
	PhasesFrom(ctx).Add(PhaseKTS, time.Millisecond)
	PhasesFrom(ctx).Add(PhaseLookup, time.Millisecond)
	list := p.List()
	if len(list) != 2 || list[0].Name != PhaseKTS || list[1].D != 3*time.Millisecond {
		t.Fatalf("phase accumulation wrong: %+v", list)
	}

	mt.OpStart(Op{Op: "get", Alg: "ums", Level: "current", Key: "k"})
	mt.OpEnd(OpResult{
		Op:      Op{Op: "get", Alg: "ums", Level: "current", Key: "k"},
		Verdict: "proven", Elapsed: 5 * time.Millisecond,
		Msgs: 7, Bytes: 1400, Phases: list,
	})
	snap := r.Snapshot()
	if got := snap.Get("dcdht_op_msgs_total").Total(); got != 7 {
		t.Fatalf("msgs total = %v", got)
	}
	if got := snap.Get("dcdht_op_verdicts_total").Total(); got != 1 {
		t.Fatalf("verdicts = %v", got)
	}
	if got := snap.Get("dcdht_ops_inflight").Total(); got != 0 {
		t.Fatalf("inflight = %v", got)
	}
	// Pre-registered families are visible before any sample lands.
	fresh := NewRegistry()
	NewMetricsTracer(fresh)
	var sb strings.Builder
	_ = fresh.WritePrometheus(&sb)
	for _, fam := range []string{"dcdht_op_duration_seconds", "dcdht_op_verdicts_total", "dcdht_op_errors_total"} {
		if !strings.Contains(sb.String(), "# TYPE "+fam) {
			t.Fatalf("fresh tracer does not pre-register %s", fam)
		}
	}
}

// TestConcurrentScrape hammers a registry with writers while scraping;
// meaningful under -race.
func TestConcurrentScrape(t *testing.T) {
	r := NewRegistry()
	mt := NewMetricsTracer(r)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				mt.OpStart(Op{Op: "get", Alg: "ums", Level: "current"})
				mt.OpEnd(OpResult{
					Op:      Op{Op: "get", Alg: "ums", Level: "current"},
					Verdict: "proven", Elapsed: time.Duration(i) * time.Microsecond, Msgs: 1,
				})
				r.Counter("hammer_total", "x").Inc()
			}
		}()
	}
	for s := 0; s < 2; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				var sb strings.Builder
				if err := r.WritePrometheus(&sb); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if got := r.Snapshot().Get("hammer_total").Total(); got != 2000 {
		t.Fatalf("lost increments: %v", got)
	}
}
